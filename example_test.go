package ntbshmem_test

// Runnable documentation examples (go doc / godoc render these; `go test`
// verifies their output). Being on a deterministic virtual clock, even
// the timed behaviours are stable enough to assert.

import (
	"fmt"

	ntbshmem "repro"
)

// The smallest complete program: a put, a barrier, a read-back.
func Example() {
	cfg := ntbshmem.Config{Hosts: 3}
	err := ntbshmem.Run(cfg, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		x := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			ntbshmem.PutScalar[int64](p, pe, 2, x, 42)
		}
		pe.BarrierAll(p)
		if pe.ID() == 2 {
			fmt.Println("PE 2 sees", ntbshmem.GetScalar[int64](p, pe, 2, x))
		}
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: PE 2 sees 42
}

// Reductions combine every PE's contribution on every PE.
func ExampleReduce() {
	err := ntbshmem.Run(ntbshmem.Config{Hosts: 4}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		src := pe.MustMalloc(p, 8)
		dst := pe.MustMalloc(p, 8)
		ntbshmem.LocalPut(p, pe, src, []int64{int64(pe.ID() + 1)})
		pe.BarrierAll(p)
		ntbshmem.Reduce[int64](p, pe, ntbshmem.OpSum, dst, src, 1)
		if pe.ID() == 0 {
			var out [1]int64
			ntbshmem.LocalGet(p, pe, dst, out[:])
			fmt.Println("sum over 4 PEs:", out[0])
		}
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: sum over 4 PEs: 10
}

// Put-with-signal replaces the put+fence+flag idiom: the consumer waits
// on the signal word and is guaranteed to observe the data.
func ExamplePE_PutSignal() {
	err := ntbshmem.Run(ntbshmem.Config{Hosts: 2}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		data := pe.MustMalloc(p, 16)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutSignal(p, 1, data, []byte("one-sided hello!"), sig, ntbshmem.SignalSet, 1)
		} else {
			pe.WaitUntilInt64(p, sig, ntbshmem.CmpEQ, 1)
			buf := make([]byte, 16)
			pe.LocalRead(p, data, buf)
			fmt.Printf("%s\n", buf)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: one-sided hello!
}

// Remote atomics give every PE a consistent shared counter.
func ExamplePE_FetchAddInt64() {
	err := ntbshmem.Run(ntbshmem.Config{Hosts: 4}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		ctr := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		pe.FetchAddInt64(p, 0, ctr, int64(pe.ID()+1))
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			fmt.Println("counter:", ntbshmem.GetScalar[int64](p, pe, 0, ctr))
		}
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: counter: 10
}

// Teams scope collectives to PE subsets.
func ExamplePE_TeamSplitStrided() {
	err := ntbshmem.Run(ntbshmem.Config{Hosts: 4}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		val := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		team := pe.TeamSplitStrided(p, 0, 2, 2) // PEs 0 and 2
		if team == nil {
			pe.BarrierAll(p)
			return
		}
		ntbshmem.LocalPut(p, pe, val, []int64{100 + int64(pe.ID())})
		ntbshmem.TeamReduce[int64](p, team, ntbshmem.OpMax, val, val, 1)
		if team.MyPE() == 0 {
			var out [1]int64
			ntbshmem.LocalGet(p, pe, val, out[:])
			fmt.Println("team max:", out[0])
		}
		team.Destroy(p)
		pe.BarrierAll(p)
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: team max: 102
}
