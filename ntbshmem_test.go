package ntbshmem

import (
	"math"
	"testing"
)

// These tests exercise the public facade the way downstream users would —
// purely through the repro package's exported surface.

func TestPublicAPIEndToEnd(t *testing.T) {
	var sawPEs int
	err := Run(Config{Hosts: 3}, func(p *Proc, pe *PE) {
		sawPEs++
		vec := pe.MustMalloc(p, 4*8)
		flag := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)

		if pe.ID() == 0 {
			Put(p, pe, 1, vec, []float64{1.5, 2.5, 3.5, 4.5})
			pe.Fence(p)
			PutScalar[int64](p, pe, 1, flag, 1)
		}
		if pe.ID() == 1 {
			pe.WaitUntilInt64(p, flag, CmpEQ, 1)
			got := make([]float64, 4)
			LocalGet(p, pe, vec, got)
			want := []float64{1.5, 2.5, 3.5, 4.5}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("vec[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		}
		pe.BarrierAll(p)
		pe.Finalize(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawPEs != 3 {
		t.Fatalf("body ran on %d PEs", sawPEs)
	}
}

func TestPublicReduceAndCollect(t *testing.T) {
	sums := make([]int64, 4)
	err := Run(Config{Hosts: 4}, func(p *Proc, pe *PE) {
		src := pe.MustMalloc(p, 8)
		dst := pe.MustMalloc(p, 8)
		LocalPut(p, pe, src, []int64{int64(pe.ID() + 1)})
		pe.BarrierAll(p)
		Reduce[int64](p, pe, OpSum, dst, src, 1)
		var out [1]int64
		LocalGet(p, pe, dst, out[:])
		sums[pe.ID()] = out[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range sums {
		if s != 10 {
			t.Errorf("pe %d sum = %d, want 10", id, s)
		}
	}
}

func TestPublicModesAndBarrierOptions(t *testing.T) {
	for _, mode := range []Mode{ModeDMA, ModeCPU} {
		for _, algo := range []BarrierAlgo{BarrierRing, BarrierCentral, BarrierDissemination} {
			err := Run(Config{Hosts: 3, Mode: mode, Barrier: algo}, func(p *Proc, pe *PE) {
				sym := pe.MustMalloc(p, 1024)
				pe.BarrierAll(p)
				if pe.ID() == 0 {
					pe.PutBytes(p, 2, sym, make([]byte, 1024))
				}
				pe.BarrierAll(p)
			})
			if err != nil {
				t.Fatalf("mode=%v algo=%v: %v", mode, algo, err)
			}
		}
	}
}

func TestPublicParamsOverride(t *testing.T) {
	par := DefaultParams()
	par.Gen = 1 // a Gen1 x8 link is ~4x slower on the wire
	job := NewJob(Config{Hosts: 2, Params: par})
	var slow Duration
	err := job.Run(func(p *Proc, pe *PE) {
		sym := pe.MustMalloc(p, 512<<10)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			pe.PutBytes(p, 1, sym, make([]byte, 512<<10))
			slow = Duration(p.Now() - start)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}

	var fast Duration
	err = Run(Config{Hosts: 2}, func(p *Proc, pe *PE) {
		sym := pe.MustMalloc(p, 512<<10)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			pe.PutBytes(p, 1, sym, make([]byte, 512<<10))
			fast = Duration(p.Now() - start)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow <= fast {
		t.Fatalf("Gen1 put (%v) should be slower than Gen3 put (%v)", slow, fast)
	}
	if job.Now() == 0 {
		t.Error("job virtual clock did not advance")
	}
}

func TestPublicAtomicsAndLocks(t *testing.T) {
	var final int64
	err := Run(Config{Hosts: 3}, func(p *Proc, pe *PE) {
		ctr := pe.MustMalloc(p, 8)
		lock := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		for i := 0; i < 3; i++ {
			pe.SetLock(p, lock)
			v := pe.FetchInt64(p, 0, ctr)
			pe.SetInt64(p, 0, ctr, v+1)
			pe.ClearLock(p, lock)
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			final = GetScalar[int64](p, pe, 0, ctr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 9 {
		t.Fatalf("locked read-modify-write lost updates: %d, want 9", final)
	}
}

func TestPublicStridedOps(t *testing.T) {
	err := Run(Config{Hosts: 2}, func(p *Proc, pe *PE) {
		sym := pe.MustMalloc(p, 8*8)
		if pe.ID() == 1 {
			LocalPut(p, pe, sym, make([]float64, 8))
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			IPut(p, pe, 1, sym, []float64{math.Pi, math.E}, 4, 1, 2)
			back := make([]float64, 2)
			IGet(p, pe, 1, sym, back, 1, 4, 2)
			if back[0] != math.Pi || back[1] != math.E {
				t.Errorf("strided round trip = %v", back)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}
