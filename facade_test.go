package ntbshmem

// End-to-end tests of the extension surface through the public facade:
// teams, contexts, send/recv, put-with-signal, pipelining, failure
// injection and heartbeats — everything a downstream user can reach.

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeTeams(t *testing.T) {
	sums := make([]int64, 4)
	err := Run(Config{Hosts: 4}, func(p *Proc, pe *PE) {
		val := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		team := pe.TeamSplitStrided(p, 0, 2, 2) // PEs 0 and 2
		if team == nil {
			pe.BarrierAll(p)
			return
		}
		LocalPut(p, pe, val, []int64{int64(pe.ID() + 1)})
		TeamReduce[int64](p, team, OpSum, val, val, 1)
		var o [1]int64
		LocalGet(p, pe, val, o[:])
		sums[pe.ID()] = o[0]
		team.Destroy(p)
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 4 || sums[2] != 4 { // (0+1) + (2+1)
		t.Fatalf("team sums = %v", sums)
	}
}

func TestFacadeContexts(t *testing.T) {
	err := Run(Config{Hosts: 2}, func(p *Proc, pe *PE) {
		sym := pe.MustMalloc(p, 4096)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			ctx := pe.CtxCreate()
			ctx.PutBytesNBI(p, 1, sym, make([]byte, 4096))
			ctx.Quiet(p)
			ctx.Destroy(p)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSendRecv(t *testing.T) {
	var got []byte
	err := Run(Config{Hosts: 3}, func(p *Proc, pe *PE) {
		pe.BarrierAll(p)
		switch pe.ID() {
		case 0:
			pe.Send(p, 2, 5, []byte("over the facade"))
		case 2:
			buf := make([]byte, 64)
			n := pe.Recv(p, AnySource, 5, buf)
			got = buf[:n]
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over the facade" {
		t.Fatalf("recv = %q", got)
	}
}

func TestFacadePutSignal(t *testing.T) {
	const n = 20_000
	var got []byte
	err := Run(Config{Hosts: 3}, func(p *Proc, pe *PE) {
		data := pe.MustMalloc(p, n)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutSignal(p, 2, data, bytes.Repeat([]byte{9}, n), sig, SignalSet, 1)
		}
		if pe.ID() == 2 {
			pe.WaitUntilInt64(p, sig, CmpEQ, 1)
			got = make([]byte, n)
			pe.LocalRead(p, data, got)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 9 {
			t.Fatal("signalled data corrupted")
		}
	}
}

func TestFacadePipelineOption(t *testing.T) {
	lat := func(pipeline int) Duration {
		var d Duration
		err := Run(Config{Hosts: 2, Pipeline: pipeline}, func(p *Proc, pe *PE) {
			sym := pe.MustMalloc(p, 512<<10)
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				start := p.Now()
				pe.PutBytes(p, 1, sym, make([]byte, 512<<10))
				d = Duration(p.Now() - start)
			}
			pe.BarrierAll(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if p8, p0 := lat(8), lat(0); p8 >= p0 {
		t.Fatalf("pipelined put (%v) should beat stop-and-wait (%v)", p8, p0)
	}
}

func TestFacadeAlignedAllocAndWaitVariants(t *testing.T) {
	err := Run(Config{Hosts: 2}, func(p *Proc, pe *PE) {
		a, errA := pe.MallocAligned(p, 100, 4096)
		if errA != nil || int64(a)%4096 != 0 {
			t.Errorf("aligned alloc = %d, %v", a, errA)
		}
		flags := pe.MustMalloc(p, 3*8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			PutScalar[int64](p, pe, 1, flags+8, 2)
		}
		if pe.ID() == 1 {
			idx := pe.WaitUntilAnyInt64(p, []SymAddr{flags, flags + 8, flags + 16}, CmpEQ, 2)
			if idx != 1 {
				t.Errorf("WaitUntilAny = %d", idx)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFloatAtomics(t *testing.T) {
	err := Run(Config{Hosts: 2}, func(p *Proc, pe *PE) {
		f := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.SetFloat64(p, 1, f, 6.25)
			if old := pe.SwapFloat64(p, 1, f, -1); old != 6.25 {
				t.Errorf("float swap old = %v", old)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCutLinkDeadlockDiagnosis(t *testing.T) {
	job := NewJob(Config{Hosts: 3})
	job.World.Launch(func(p *Proc, pe *PE) {
		sym := pe.MustMalloc(p, 64)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			job.CutLink(0)
			pe.PutBytes(p, 1, sym, make([]byte, 64))
		}
		pe.BarrierAll(p)
	})
	err := job.Cluster.Sim.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("cut-link run should deadlock detectably, got %v", err)
	}
}

func TestFacadeHeartbeats(t *testing.T) {
	job := NewJob(Config{Hosts: 3})
	downs := map[string]bool{}
	hbs := job.StartHeartbeats(100_000 /* 100us */, 3, func(host int, side string) {
		downs[side] = true
	})
	if len(hbs) != 6 { // 3 hosts x 2 adapters
		t.Fatalf("%d heartbeats installed", len(hbs))
	}
	job.Cluster.Sim.After(2_000_000, func() { job.CutLink(2) })
	if err := job.Cluster.Sim.RunUntil(Time(8_000_000)); err != nil {
		t.Fatal(err)
	}
	if !downs["right"] || !downs["left"] {
		t.Fatalf("both ends should report the cut: %v", downs)
	}
	alive := 0
	for _, hb := range hbs {
		if hb.Alive() {
			alive++
		}
	}
	if alive != 4 {
		t.Fatalf("%d endpoints alive, want 4 (the uncut cables)", alive)
	}
}
