// Package ntbshmem is an OpenSHMEM programming model over a switchless
// PCIe Non-Transparent Bridge (NTB) interconnect, reproducing Lim, Park
// and Cha, "Developing an OpenSHMEM model over a Switchless PCIe
// Non-Transparent Bridge Interface" (IPDPSW 2019).
//
// Hosts are joined in a switchless ring by simulated PLX PEX 87xx-class
// NTB adapters; the runtime implements the paper's OpenSHMEM library on
// top: symmetric heap, one-sided Put/Get over the NTB memory windows
// (DMA or memcpy), scratchpad information records, doorbell interrupts, a
// per-host service thread with bypass-buffer forwarding, and the
// two-round ring barrier. Everything executes on a deterministic
// discrete-event simulator, so latencies and throughputs are virtual-time
// measurements that reproduce the paper's figures on any machine.
//
// A minimal SPMD program:
//
//	cfg := ntbshmem.Config{Hosts: 3}
//	err := ntbshmem.Run(cfg, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
//		x := pe.MustMalloc(p, 8)               // symmetric int64
//		pe.BarrierAll(p)
//		if pe.ID() == 0 {
//			ntbshmem.PutScalar[int64](p, pe, 1, x, 42)
//		}
//		pe.BarrierAll(p)
//		if pe.ID() == 1 {
//			v := ntbshmem.GetScalar[int64](p, pe, 1, x) // self get
//			fmt.Println("pe1 sees", v)
//		}
//	})
package ntbshmem

import (
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// Re-exported handle types. PE carries the whole OpenSHMEM API surface
// (Table I of the paper and the extensions); Proc is the caller's
// simulation process, threaded through every blocking call.
type (
	// PE is a processing element handle; see repro/internal/core.PE.
	PE = core.PE
	// Proc is the calling process within the simulation.
	Proc = sim.Proc
	// SymAddr is a symmetric-heap address, identical on every PE.
	SymAddr = core.SymAddr
	// Params is the platform timing/sizing profile.
	Params = model.Params
	// Mode selects DMA or memcpy data movement.
	Mode = driver.Mode
	// BarrierAlgo selects the barrier implementation.
	BarrierAlgo = core.BarrierAlgo
	// Routing selects the ring data-steering policy.
	Routing = core.Routing
	// FabricKind selects the interconnect backend.
	FabricKind = fabric.Kind
	// SignalOp selects how PutSignal updates its signal word.
	SignalOp = core.SignalOp
	// ReduceOp names a reduction operator.
	ReduceOp = core.ReduceOp
	// CmpOp is a wait-until comparison.
	CmpOp = core.CmpOp
	// AMOOp identifies an atomic operation (informational; the typed
	// atomic methods on PE are the public API).
	AMOOp = core.AMOOp
	// Stats carries per-PE activity counters.
	Stats = core.Stats
	// Time and Duration are virtual-time instants and spans.
	Time = sim.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = sim.Duration
)

// Data-movement modes (the paper's DMA vs memcpy axis).
const (
	ModeDMA = driver.ModeDMA
	ModeCPU = driver.ModeCPU
)

// Barrier algorithms.
const (
	BarrierRing          = core.BarrierRing
	BarrierCentral       = core.BarrierCentral
	BarrierDissemination = core.BarrierDissemination
)

// Routing policies.
const (
	RouteRightward = core.RouteRightward
	RouteShortest  = core.RouteShortest
)

// Fabric backends: the paper's switchless NTB ring (default), the
// two-host independent NTB pair, a modelled PCIe switch with true P2P
// routing, and a CXL.mem-style coherent mapped window.
const (
	FabricNTBRing    = fabric.KindNTBRing
	FabricNTBPair    = fabric.KindNTBPair
	FabricPCIeSwitch = fabric.KindPCIeSwitch
	FabricCXL        = fabric.KindCXL
)

// ParseFabric maps a -fabric flag value ("ntb-ring", "ntb-pair",
// "pcie-switch", "cxl", and aliases) to a FabricKind.
func ParseFabric(s string) (FabricKind, error) { return fabric.ParseKind(s) }

// Fabrics lists every backend, in flag-documentation order.
func Fabrics() []FabricKind { return fabric.Kinds() }

// Signal operations for PutSignal.
const (
	SignalSet = core.SignalSet
	SignalAdd = core.SignalAdd
)

// Reduction operators.
const (
	OpSum  = core.OpSum
	OpProd = core.OpProd
	OpMin  = core.OpMin
	OpMax  = core.OpMax
)

// Wait-until comparisons.
const (
	CmpEQ = core.CmpEQ
	CmpNE = core.CmpNE
	CmpGT = core.CmpGT
	CmpGE = core.CmpGE
	CmpLT = core.CmpLT
	CmpLE = core.CmpLE
)

// Scalar constrains the element types of the typed RMA operations.
type Scalar = core.Scalar

// ActiveSet is the classic SHMEM (PE_start, logPE_stride, PE_size)
// subset selector for the set-scoped collectives.
type ActiveSet = core.ActiveSet

// Heartbeat is a per-link liveness monitor (see Job.StartHeartbeats).
type Heartbeat = driver.Heartbeat

// Team is an OpenSHMEM 1.5 team handle (PE.TeamWorld,
// PE.TeamSplitStrided).
type Team = core.Team

// Ctx is an OpenSHMEM 1.4 communication context (PE.CtxCreate): an
// independent completion domain for non-blocking operations.
type Ctx = core.Ctx

// BarrierSyncWords is the required pSync size (8-byte words) for
// BarrierSet / BroadcastSet / ReduceSet work areas.
const BarrierSyncWords = core.BarrierSyncWords

// Two-sided messaging constants (the send/recv extension layered over
// the one-sided fabric).
const (
	// AnySource matches a Recv against every sender.
	AnySource = core.AnySource
	// RecvSlots is the per-PE limit on simultaneously posted receives.
	RecvSlots = core.RecvSlots
)

// DefaultParams returns the calibrated profile of the paper's testbed
// (PCIe Gen3 x8, PEX8749-class adapters, three Core-i7 hosts).
func DefaultParams() *Params { return model.Default() }

// Config describes an OpenSHMEM job.
type Config struct {
	// Hosts is the cluster size (one PE per host, as in the paper). Must
	// be at least 2; per-fabric limits apply (a pair is exactly 2).
	Hosts int
	// Fabric selects the interconnect backend (default: the paper's
	// switchless NTB ring).
	Fabric FabricKind
	// Mode selects DMA (default) or memcpy transfers.
	Mode Mode
	// Barrier selects the barrier algorithm (default: the paper's ring
	// start/end protocol).
	Barrier BarrierAlgo
	// Routing selects the data steering policy (default: the paper's
	// fixed rightward routing; RouteShortest takes the shorter arc).
	Routing Routing
	// Pipeline selects the link protocol: 0/1 is the paper's
	// stop-and-wait scratchpad protocol; n >= 2 enables the pipelined
	// header-in-window protocol with n credits per link direction.
	Pipeline int
	// Params overrides the platform profile; nil means DefaultParams.
	Params *Params
}

// Job is a constructed OpenSHMEM world plus its simulator, for callers
// that need to attach extra processes or inspect virtual time; most
// programs just call Run.
type Job struct {
	World   *core.World
	Cluster *fabric.Cluster
}

// NewJob builds the simulated cluster and OpenSHMEM world for cfg.
func NewJob(cfg Config) *Job {
	par := cfg.Params
	if par == nil {
		par = model.Default()
	}
	s := sim.New()
	cluster, err := fabric.New(fabric.Config{Sim: s, Par: par, Hosts: cfg.Hosts, Kind: cfg.Fabric})
	if err != nil {
		panic("ntbshmem: " + err.Error())
	}
	world := core.NewWorld(cluster, core.Options{
		Mode:     cfg.Mode,
		Barrier:  cfg.Barrier,
		Routing:  cfg.Routing,
		Pipeline: cfg.Pipeline,
	})
	return &Job{World: world, Cluster: cluster}
}

// Run executes body once per PE and drives the simulation to completion.
func (j *Job) Run(body func(p *Proc, pe *PE)) error {
	return j.World.Run(body)
}

// Now returns the current virtual time (after Run, the completion time).
func (j *Job) Now() Time { return j.Cluster.Sim.Now() }

// Run builds a job from cfg and executes body on every PE — the
// shmem_init → work → shmem_finalize lifecycle in one call.
func Run(cfg Config, body func(p *Proc, pe *PE)) error {
	return NewJob(cfg).Run(body)
}

// Typed one-sided operations (shmem_TYPE_put / get and friends),
// re-exported from the core runtime.

// Put copies src into target's symmetric object at dst (shmem_TYPE_put).
func Put[T Scalar](p *Proc, pe *PE, target int, dst SymAddr, src []T) {
	core.Put(p, pe, target, dst, src)
}

// Get copies target's symmetric object at src into dst (shmem_TYPE_get).
func Get[T Scalar](p *Proc, pe *PE, target int, src SymAddr, dst []T) {
	core.Get(p, pe, target, src, dst)
}

// PutScalar writes one element (shmem_TYPE_p).
func PutScalar[T Scalar](p *Proc, pe *PE, target int, dst SymAddr, v T) {
	core.PutScalar(p, pe, target, dst, v)
}

// GetScalar reads one element (shmem_TYPE_g).
func GetScalar[T Scalar](p *Proc, pe *PE, target int, src SymAddr) T {
	return core.GetScalar[T](p, pe, target, src)
}

// IPut is the strided put (shmem_TYPE_iput).
func IPut[T Scalar](p *Proc, pe *PE, target int, dst SymAddr, src []T, tst, sst, nelems int) {
	core.IPut(p, pe, target, dst, src, tst, sst, nelems)
}

// IGet is the strided get (shmem_TYPE_iget).
func IGet[T Scalar](p *Proc, pe *PE, target int, src SymAddr, dst []T, tst, sst, nelems int) {
	core.IGet(p, pe, target, src, dst, tst, sst, nelems)
}

// LocalPut initialises the PE's own copy of a symmetric object.
func LocalPut[T Scalar](p *Proc, pe *PE, dst SymAddr, src []T) {
	core.LocalPut(p, pe, dst, src)
}

// LocalGet reads the PE's own copy of a symmetric object.
func LocalGet[T Scalar](p *Proc, pe *PE, src SymAddr, dst []T) {
	core.LocalGet(p, pe, src, dst)
}

// Reduce element-wise combines every PE's vector at src into every PE's
// vector at dst (shmem_TYPE_OP_to_all).
func Reduce[T Scalar](p *Proc, pe *PE, op ReduceOp, dst, src SymAddr, nelems int) {
	core.Reduce[T](p, pe, op, dst, src, nelems)
}

// Collect concatenates variable-size contributions in PE order
// (shmem_collect).
func Collect[T Scalar](p *Proc, pe *PE, dst, src SymAddr, nelems int) {
	core.Collect[T](p, pe, dst, src, nelems)
}

// FCollect concatenates fixed-size typed contributions in PE order
// (shmem_fcollect).
func FCollect[T Scalar](p *Proc, pe *PE, dst, src SymAddr, nelems int) {
	core.FCollect[T](p, pe, dst, src, nelems)
}

// BroadcastSet is shmem_broadcast over an active set; pSync must be a
// symmetric area of BarrierSyncWords*8 bytes.
func BroadcastSet[T Scalar](p *Proc, pe *PE, as ActiveSet, root int, dst, src SymAddr, nelems int, pSync SymAddr) {
	core.BroadcastSet[T](p, pe, as, root, dst, src, nelems, pSync)
}

// ReduceSet is shmem_TYPE_OP_to_all over an active set; pWrk must hold
// Size*nelems elements and pSync BarrierSyncWords*8 bytes.
func ReduceSet[T Scalar](p *Proc, pe *PE, as ActiveSet, op ReduceOp, dst, src SymAddr, nelems int, pWrk, pSync SymAddr) {
	core.ReduceSet[T](p, pe, as, op, dst, src, nelems, pWrk, pSync)
}

// TeamBroadcast sends nelems elements from team rank root to every team
// member (shmem_broadcast over a team).
func TeamBroadcast[T Scalar](p *Proc, t *Team, root int, dst, src SymAddr, nelems int) {
	core.TeamBroadcast[T](p, t, root, dst, src, nelems)
}

// TeamReduce element-wise combines every team member's vector
// (shmem_TYPE_OP_reduce over a team).
func TeamReduce[T Scalar](p *Proc, t *Team, op ReduceOp, dst, src SymAddr, nelems int) {
	core.TeamReduce[T](p, t, op, dst, src, nelems)
}

// CutLink severs the cable between host i and host (i+1) mod Hosts, for
// failure-injection experiments; see the failover example.
func (j *Job) CutLink(i int) { j.Cluster.CutLink(i) }

// StartHeartbeats installs the driver's link-liveness monitor on every
// cabled adapter. onDown runs once per endpoint that loses its peer,
// with the observing host Id and adapter side ("left"/"right").
// Heartbeats keep the virtual clock alive indefinitely; stop them (or
// use Job.Cluster.Sim.RunUntil) to let a run terminate.
func (j *Job) StartHeartbeats(interval Duration, missLimit int, onDown func(host int, side string)) []*Heartbeat {
	var hbs []*Heartbeat
	for _, h := range j.Cluster.Hosts {
		h := h
		if h.LeftEP != nil {
			hbs = append(hbs, driver.StartHeartbeat(j.Cluster.Sim, h.LeftEP, interval, missLimit,
				func() { onDown(h.ID, "left") }))
		}
		if h.RightEP != nil {
			hbs = append(hbs, driver.StartHeartbeat(j.Cluster.Sim, h.RightEP, interval, missLimit,
				func() { onDown(h.ID, "right") }))
		}
	}
	return hbs
}
