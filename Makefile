# Build/verify entry points. `make race` is the gate that matters most
# since the experiment engine runs independent simulation worlds on
# concurrent workers.

GO ?= go

.PHONY: all build test race vet bench bench-smoke profile reproduce clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages that touch the parallel experiment engine and
# the zero-allocation transfer hot path: the kernel, the flow network,
# the driver, the runtime, and the harness that fans worlds out.
race:
	$(GO) test -race ./internal/sim ./internal/pcie ./internal/driver ./internal/core ./internal/bench

vet:
	$(GO) vet ./...

# Host-side simulator speed benchmarks (wall-clock, allocs/op).
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/pcie ./internal/driver ./internal/sim ./internal/core

# One-iteration pass over every benchmark: catches benchmarks that
# panic or regress to compile errors without paying for real timing runs
# (CI runs this).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/pcie ./internal/driver ./internal/sim ./internal/core

# Profile a full reproduce run; inspect with `go tool pprof cpu.pprof`
# (or mem.pprof for the allocation profile).
profile:
	$(GO) run ./cmd/reproduce -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null

# Regenerate the archived experiment output.
reproduce:
	$(GO) run ./cmd/reproduce > reproduce_output.txt

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
