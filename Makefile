# Build/verify entry points. `make race` is the gate that matters most
# since the experiment engine runs independent simulation worlds on
# concurrent workers.

GO ?= go

.PHONY: all build test race vet bench reproduce clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages that touch the parallel experiment engine:
# the kernel, the runtime, and the harness that fans worlds out.
race:
	$(GO) test -race ./internal/sim ./internal/core ./internal/bench

vet:
	$(GO) vet ./...

# Host-side simulator speed benchmarks (wall-clock, allocs/op).
bench:
	$(GO) test -run xxx -bench 'BenchmarkSim|BenchmarkWorld' -benchmem ./internal/sim ./internal/core

# Regenerate the archived experiment output.
reproduce:
	$(GO) run ./cmd/reproduce > reproduce_output.txt

clean:
	$(GO) clean ./...
