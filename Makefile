# Build/verify entry points. `make race` is the gate that matters most
# since the experiment engine runs independent simulation worlds on
# concurrent workers.

GO ?= go

.PHONY: all build test race vet lint bench bench-smoke profile reproduce clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check everything: the parallel experiment engine fans pooled
# simulation worlds out across concurrent workers, so the whole module
# rides under the detector, not just the packages it touches directly.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (see LINT.md): determinism, Reset/
# Snapshot completeness, annotated zero-alloc hot paths, park/timer
# discipline, cross-shard ownership (shardsafe), the fabric.Link
# lifecycle contract (fabriccontract), and waiver-drift detection.
# Packages are analyzed on a worker pool; -time reports per-analyzer
# wall-clock so suite growth stays visible.
lint:
	$(GO) run ./cmd/ntblint -time ./...

# Host-side simulator speed benchmarks (wall-clock, allocs/op).
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/pcie ./internal/driver ./internal/sim ./internal/core

# CI benchmark gate, three steps:
#  1. one-iteration pass over every benchmark — catches benchmarks that
#     panic or regress to compile errors without paying for timing runs;
#  2. the gated benchmarks at a pinned -benchtime (so one-time world
#     construction amortises identically run to run), checked against
#     the committed allocs/op ceilings in bench_baseline.json;
#  3. a fast reproduce run that writes BENCH.json: per-figure wall
#     clock, worlds/s, pool hit rate, the interleaved snapshot-fork A/B
#     (-fork-ab), and the step-2 allocs/op numbers.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/pcie ./internal/driver ./internal/sim ./internal/core
	$(GO) test -run xxx -bench 'BenchmarkWorldPut1M$$|BenchmarkFlowNetChurn$$' -benchmem -benchtime 500x \
		./internal/core ./internal/pcie | tee bench_gate.out
	$(GO) test -run xxx -bench 'BenchmarkSimEventThroughput$$|BenchmarkLadderQueueChurn$$' -benchmem -benchtime 2000x \
		./internal/sim | tee -a bench_gate.out
	$(GO) test -run xxx -bench 'BenchmarkScaleWorld256$$|BenchmarkShardedWorld256$$' -benchmem -benchtime 10x \
		./internal/bench | tee -a bench_gate.out
	$(GO) test -run xxx -bench 'BenchmarkSwitchWorld$$' -benchmem -benchtime 100x \
		./internal/bench | tee -a bench_gate.out
	$(GO) test -run xxx -bench 'BenchmarkWorldFork$$' -benchmem -benchtime 200x \
		./internal/bench | tee -a bench_gate.out
	$(GO) run ./cmd/benchgate -baseline bench_baseline.json -input bench_gate.out
	$(GO) run ./cmd/reproduce -skip-ablations -fork-ab 8 -bench-json BENCH.json -bench-input bench_gate.out > /dev/null
	rm -f bench_gate.out

# Profile a full reproduce run; inspect with `go tool pprof cpu.pprof`
# (or mem.pprof for the allocation profile).
profile:
	$(GO) run ./cmd/reproduce -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null

# Regenerate the archived experiment output.
reproduce:
	$(GO) run ./cmd/reproduce > reproduce_output.txt

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
