package ntbshmem

// Benchmarks regenerating every figure of the paper's evaluation section,
// plus the ablations indexed in DESIGN.md. Each benchmark drives the
// deterministic simulator and reports the paper's metric as a custom
// unit (virtual microseconds or MB/s of virtual time); ns/op measures
// simulator cost only and is not a result.
//
// Full sweeps (all ten sizes, tables formatted like the paper's plots)
// come from `go run ./cmd/reproduce`; the benchmarks cover the sweep's
// endpoints and middle so `go test -bench .` stays fast.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
)

// benchSizes are the sweep points benchmarked per figure.
var benchSizes = []int{1 << 10, 32 << 10, 512 << 10}

func sizeName(n int) string { return bench.SizeLabel(n) }

// BenchmarkFig8_Independent reproduces the "Independent" series of
// Fig 8(a-c): raw DMA transfer rate of a single isolated NTB link.
func BenchmarkFig8_Independent(b *testing.B) {
	par := model.Default()
	for _, size := range benchSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig8Independent(par, 0, size)
			}
			b.ReportMetric(mbps, "virt-MB/s")
		})
	}
}

// BenchmarkFig8_Ring reproduces the "Ring" series of Fig 8(a-c): all
// three links transferring simultaneously; the reported metric is one
// link's rate (they are symmetric).
func BenchmarkFig8_Ring(b *testing.B) {
	par := model.Default()
	for _, size := range benchSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			var perLink []float64
			for i := 0; i < b.N; i++ {
				perLink = bench.Fig8Ring(par, 3, size)
			}
			b.ReportMetric(perLink[0], "virt-MB/s")
		})
	}
}

// BenchmarkFig8_Total reproduces Fig 8(d): total network transfer rate
// of the simultaneous ring.
func BenchmarkFig8_Total(b *testing.B) {
	par := model.Default()
	for _, size := range benchSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, v := range bench.Fig8Ring(par, 3, size) {
					total += v
				}
			}
			b.ReportMetric(total, "virt-MB/s")
		})
	}
}

// fig9Cells is the paper's {DMA, memcpy} x {1, 2 hops} grid.
var fig9Cells = []struct {
	name string
	mode driver.Mode
	hops int
}{
	{"DMA_1hop", driver.ModeDMA, 1},
	{"DMA_2hops", driver.ModeDMA, 2},
	{"memcpy_1hop", driver.ModeCPU, 1},
	{"memcpy_2hops", driver.ModeCPU, 2},
}

func benchFig9(b *testing.B, op bench.Op, latency bool) {
	par := model.Default()
	for _, cell := range fig9Cells {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/%s", cell.name, sizeName(size)), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					us = bench.MeasureShmemOp(par, op, cell.mode, cell.hops, size, 3)
				}
				if latency {
					b.ReportMetric(us, "virt-us")
				} else {
					b.ReportMetric(bench.MBps(int64(size), int64(us*1e3)), "virt-MB/s")
				}
			})
		}
	}
}

// BenchmarkFig9_PutLatency reproduces Fig 9(a).
func BenchmarkFig9_PutLatency(b *testing.B) { benchFig9(b, bench.OpPut, true) }

// BenchmarkFig9_GetLatency reproduces Fig 9(b).
func BenchmarkFig9_GetLatency(b *testing.B) { benchFig9(b, bench.OpGet, true) }

// BenchmarkFig9_PutThroughput reproduces Fig 9(c).
func BenchmarkFig9_PutThroughput(b *testing.B) { benchFig9(b, bench.OpPut, false) }

// BenchmarkFig9_GetThroughput reproduces Fig 9(d).
func BenchmarkFig9_GetThroughput(b *testing.B) { benchFig9(b, bench.OpGet, false) }

// BenchmarkFig10_Barrier reproduces Fig 10: shmem_barrier_all latency
// following puts of varying size.
func BenchmarkFig10_Barrier(b *testing.B) {
	par := model.Default()
	for _, cell := range fig9Cells {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/%s", cell.name, sizeName(size)), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					us = bench.MeasureBarrierAfterPut(par, cell.mode, cell.hops, size, 3)
				}
				b.ReportMetric(us, "virt-us")
			})
		}
	}
}

// BenchmarkAblationBarrierAlgo is ablation A1: the barrier-algorithm
// comparison over ring sizes.
func BenchmarkAblationBarrierAlgo(b *testing.B) {
	par := model.Default()
	for _, algo := range []core.BarrierAlgo{core.BarrierRing, core.BarrierCentral, core.BarrierDissemination} {
		for _, n := range []int{3, 8} {
			b.Run(fmt.Sprintf("%s/n=%d", algo, n), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					us = bench.MeasureBarrierLatency(par, algo, n, 3)
				}
				b.ReportMetric(us, "virt-us")
			})
		}
	}
}

// BenchmarkAblationChunkSize is ablation A2: Get throughput versus the
// stop-and-wait chunk size.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, chunk := range []int{4 << 10, 16 << 10, 64 << 10} {
		b.Run(sizeName(chunk), func(b *testing.B) {
			par := model.Default()
			par.GetChunk = chunk
			var us float64
			for i := 0; i < b.N; i++ {
				us = bench.MeasureShmemOp(par, bench.OpGet, driver.ModeDMA, 1, 512<<10, 3)
			}
			b.ReportMetric(bench.MBps(512<<10, int64(us*1e3)), "virt-MB/s")
		})
	}
}

// BenchmarkAblationRouting is ablation A4: get latency to the farthest
// PE of a 7-host ring under the paper's rightward routing vs
// shortest-arc routing.
func BenchmarkAblationRouting(b *testing.B) {
	par := model.Default()
	for _, routing := range []core.Routing{core.RouteRightward, core.RouteShortest} {
		b.Run(routing.String(), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = bench.MeasureGetRouted(par, routing, 7, 6, 64<<10)
			}
			b.ReportMetric(us, "virt-us")
		})
	}
}

// BenchmarkAblationBroadcast is ablation A5: linear fanout vs
// ring-pipelined broadcast.
func BenchmarkAblationBroadcast(b *testing.B) {
	par := model.Default()
	for _, size := range []int{64 << 10, 1 << 20, 8 << 20} {
		b.Run(sizeName(size), func(b *testing.B) {
			var lin, pipe float64
			for i := 0; i < b.N; i++ {
				lin, pipe = bench.MeasureBroadcast(par, 6, size)
			}
			b.ReportMetric(lin, "virt-linear-us")
			b.ReportMetric(pipe, "virt-pipeline-us")
		})
	}
}

// BenchmarkAblationPipeline is ablation A6: put throughput vs
// link-protocol pipeline depth (1 = the paper's stop-and-wait).
func BenchmarkAblationPipeline(b *testing.B) {
	par := model.Default()
	for _, depth := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var putUS float64
			for i := 0; i < b.N; i++ {
				putUS, _ = bench.MeasurePipelined(par, depth, 512<<10, 3)
			}
			b.ReportMetric(bench.MBps(512<<10, int64(putUS*1e3)), "virt-MB/s")
		})
	}
}

// BenchmarkExtensionGenerations is extension E1: shmem put throughput
// across PCIe platform profiles.
func BenchmarkExtensionGenerations(b *testing.B) {
	for _, name := range model.Names() {
		b.Run(name, func(b *testing.B) {
			par, err := model.Profile(name)
			if err != nil {
				b.Fatal(err)
			}
			var us float64
			for i := 0; i < b.N; i++ {
				us = bench.MeasureShmemOp(par, bench.OpPut, driver.ModeDMA, 1, 512<<10, 3)
			}
			b.ReportMetric(bench.MBps(512<<10, int64(us*1e3)), "virt-MB/s")
		})
	}
}

// BenchmarkExtensionTwoSided is extension E2: one-sided put vs
// two-sided send/recv latency.
func BenchmarkExtensionTwoSided(b *testing.B) {
	par := model.Default()
	for _, size := range benchSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			var put, send float64
			for i := 0; i < b.N; i++ {
				put, send = bench.MeasureTwoSided(par, size, 3)
			}
			b.ReportMetric(put, "virt-put-us")
			b.ReportMetric(send, "virt-send-us")
		})
	}
}

// BenchmarkExtensionAppKernels is extension E3: end-to-end application
// kernels under the default configuration.
func BenchmarkExtensionAppKernels(b *testing.B) {
	par := model.Default()
	kernels := []struct {
		name string
		run  func() float64
	}{
		{"heat1d", func() float64 { return bench.AppHeat1D(par, core.Options{}, 4, 1024, 20) }},
		{"matmul", func() float64 { return bench.AppMatmul(par, core.Options{}, 4, 64) }},
		{"intsort", func() float64 { return bench.AppIntSort(par, core.Options{}, 4, 20_000) }},
	}
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = k.run()
			}
			b.ReportMetric(us, "virt-us")
		})
	}
}

// BenchmarkAblationRingSize is ablation A3: put/get latency to the
// farthest PE as the ring grows.
func BenchmarkAblationRingSize(b *testing.B) {
	par := model.Default()
	for _, n := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var put, get float64
			for i := 0; i < b.N; i++ {
				put, get = bench.MeasureFarthest(par, n, 64<<10)
			}
			b.ReportMetric(put, "virt-put-us")
			b.ReportMetric(get, "virt-get-us")
		})
	}
}
