// Command barrierperf reproduces Fig 10 of the paper (latency of
// shmem_barrier_all after Puts of varying size) and, with -ablation,
// the barrier-algorithm comparison of DESIGN.md (A1).
//
// Usage:
//
//	barrierperf [-ablation] [-fabric KIND] [-csv] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/model"
)

func main() {
	ablation := flag.Bool("ablation", false, "run the barrier-algorithm ablation instead of Fig 10")
	fabricName := flag.String("fabric", "ntb-ring", "fabric backend to measure over: ntb-ring, pcie-switch, or cxl")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	j := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	shards := flag.Int("shards", 1, "conservative-DES shards per world (1 = single simulator; large worlds on point-to-point fabrics split across shards)")
	flag.Parse()
	bench.SetParallelism(*j)

	kind, err := fabric.ParseKind(*fabricName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "barrierperf: -fabric:", err)
		os.Exit(2)
	}
	if kind == fabric.KindNTBPair {
		fmt.Fprintln(os.Stderr, "barrierperf: -fabric=ntb-pair: Fig 10 runs a 3-host world; the pair fabric joins exactly 2")
		os.Exit(2)
	}
	if *ablation && kind != fabric.KindNTBRing {
		fmt.Fprintln(os.Stderr, "barrierperf: -ablation compares the ring's token barrier against dissemination and requires -fabric=ntb-ring")
		os.Exit(2)
	}
	if err := bench.ValidateShards(*shards, kind); err != nil {
		fmt.Fprintln(os.Stderr, "barrierperf:", err)
		os.Exit(2)
	}
	bench.SetShards(*shards)
	bench.SetFabric(kind)

	par := model.Default()
	var f *bench.Figure
	if *ablation {
		f = bench.RunAblationBarrierAlgo(par)
	} else {
		f = bench.RunFig10(par)
	}
	if *csv {
		fmt.Print(f.CSV())
	} else {
		fmt.Println(f.Table())
	}
}
