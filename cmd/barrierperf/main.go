// Command barrierperf reproduces Fig 10 of the paper (latency of
// shmem_barrier_all after Puts of varying size) and, with -ablation,
// the barrier-algorithm comparison of DESIGN.md (A1).
//
// Usage:
//
//	barrierperf [-ablation] [-csv] [-j N]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/bench"
	"repro/internal/model"
)

func main() {
	ablation := flag.Bool("ablation", false, "run the barrier-algorithm ablation instead of Fig 10")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	j := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	flag.Parse()
	bench.SetParallelism(*j)

	par := model.Default()
	var f *bench.Figure
	if *ablation {
		f = bench.RunAblationBarrierAlgo(par)
	} else {
		f = bench.RunFig10(par)
	}
	if *csv {
		fmt.Print(f.CSV())
	} else {
		fmt.Println(f.Table())
	}
}
