// Command scaleperf measures how the simulation engine scales with ring
// size: it runs the bench package's neighbour-put + barrier workload at
// each requested PE count and reports host-side throughput (events/s,
// worlds/s) per point. All simulated numbers stay deterministic; only
// the wall-clock denominators here vary between runs.
//
// Usage:
//
//	scaleperf [-pes 3,16,64,256,1024] [-reps N] [-scheduler ladder|heap] [-put-bytes N]
//	          [-fabric ntb-ring|pcie-switch|cxl] [-shards N]
//
// -shards N splits each world of at least 16 hosts across N
// conservative-DES shards (PROTOCOL.md §14). The printed "virtual end"
// column is each world's final virtual time: the workload is inside the
// sharding's exactness domain, so the column is identical at every
// -shards setting — only the wall-clock columns may change.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	pesFlag := flag.String("pes", "3,16,64,256,1024", "comma-separated ring sizes to sweep")
	reps := flag.Int("reps", 3, "worlds to run per point (first warms the pool)")
	schedName := flag.String("scheduler", "ladder", "event scheduler: ladder or heap")
	putBytes := flag.Int("put-bytes", 4096, "payload each PE puts to its right neighbour")
	fabricName := flag.String("fabric", "ntb-ring", "fabric backend to scale over: ntb-ring, pcie-switch, or cxl")
	shards := flag.Int("shards", 1, "conservative-DES shards per world (1 = single simulator; worlds of ≥16 hosts on point-to-point fabrics split across shards)")
	flag.Parse()

	kind, err := fabric.ParseKind(*fabricName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaleperf: -fabric:", err)
		os.Exit(2)
	}
	pes, err := parsePEs(*pesFlag, kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaleperf:", err)
		os.Exit(2)
	}
	sched, err := sim.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaleperf:", err)
		os.Exit(2)
	}
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "scaleperf: -reps=%d: need at least 1 rep\n", *reps)
		os.Exit(2)
	}
	if *putBytes < 1 {
		fmt.Fprintf(os.Stderr, "scaleperf: -put-bytes=%d: need a positive payload\n", *putBytes)
		os.Exit(2)
	}
	if err := bench.ValidateShards(*shards, kind); err != nil {
		fmt.Fprintln(os.Stderr, "scaleperf:", err)
		os.Exit(2)
	}
	sim.SetDefaultScheduler(sched)
	bench.SetShards(*shards)
	bench.SetFabric(kind)

	par := model.Default()
	fmt.Printf("%s scaling sweep: scheduler=%s reps=%d put-bytes=%d shards=%d gomaxprocs=%d\n\n",
		kind, sched, *reps, *putBytes, *shards, runtime.GOMAXPROCS(0))
	fmt.Printf("%6s %8s %16s %15s %9s %14s %10s %10s\n",
		"pes", "worlds", "virtual events", "virtual end", "wall s", "events/s", "worlds/s", "ns/event")
	for _, n := range pes {
		w0, e0 := bench.WorldsSimulated(), bench.VirtualEvents()
		t0 := time.Now()
		var end sim.Time
		for r := 0; r < *reps; r++ {
			end = bench.ScaleWorkloadTime(par, n, *putBytes)
		}
		wall := time.Since(t0).Seconds()
		worlds, events := bench.WorldsSimulated()-w0, bench.VirtualEvents()-e0
		fmt.Printf("%6d %8d %16d %15v %9.3f %14.0f %10.2f %10.1f\n",
			n, worlds, events, end, wall,
			float64(events)/wall, float64(worlds)/wall, wall*1e9/float64(events))
	}
	bench.DrainWorldPool()
}

// parsePEs validates the sweep axis at the command layer: every cluster
// size must be something the selected fabric backend will build,
// reported here with flag context instead of surfacing as a mid-sweep
// panic.
func parsePEs(list string, kind fabric.Kind) ([]int, error) {
	max := fabric.MaxHostsFor(kind)
	var pes []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("-pes: %q is not a cluster size", tok)
		}
		if n < 2 || n > max {
			return nil, fmt.Errorf("-pes: cluster size %d out of range [2, %d] for the %s fabric", n, max, kind)
		}
		pes = append(pes, n)
	}
	if len(pes) == 0 {
		return nil, fmt.Errorf("-pes: empty sweep")
	}
	return pes, nil
}
