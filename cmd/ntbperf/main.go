// Command ntbperf reproduces Fig 8 of the paper: raw data-transfer rate
// through the PCIe NTB fabric, comparing an independent two-host link
// against all links of the ring transferring simultaneously, over block
// sizes 1KB-512KB.
//
// Usage:
//
//	ntbperf [-hosts N] [-gen G] [-lanes L] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/model"
)

func main() {
	hosts := flag.Int("hosts", 3, "ring size for the simultaneous-transfer measurement")
	gen := flag.Int("gen", 3, "PCIe generation (1-3)")
	lanes := flag.Int("lanes", 8, "PCIe lane count")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	par := model.Default()
	par.Gen, par.Lanes = *gen, *lanes
	if err := par.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ntbperf:", err)
		os.Exit(1)
	}

	if *hosts == 3 {
		for _, f := range bench.RunFig8(par) {
			emit(f, *csv)
		}
		return
	}
	// Non-paper ring sizes: print per-link and total for the requested n.
	f := customRing(par, *hosts)
	emit(f, *csv)
}

func customRing(par *model.Params, n int) *bench.Figure {
	f := &bench.Figure{
		ID:     "Fig 8 (custom)",
		Title:  fmt.Sprintf("Per-link and total transfer rate, %d-host ring", n),
		XLabel: "Request Size",
		Unit:   "MB/s",
	}
	indep := bench.Series{Label: "Independent"}
	total := bench.Series{Label: "Ring total"}
	perLink := make([]bench.Series, n)
	for i := range perLink {
		perLink[i].Label = fmt.Sprintf("Link %d", i)
	}
	for _, size := range bench.Sizes() {
		indep.Points = append(indep.Points, bench.Point{Size: size, Value: bench.Fig8Independent(par, 0, size)})
		rates := bench.Fig8Ring(par, n, size)
		var sum float64
		for i, r := range rates {
			perLink[i].Points = append(perLink[i].Points, bench.Point{Size: size, Value: r})
			sum += r
		}
		total.Points = append(total.Points, bench.Point{Size: size, Value: sum})
	}
	f.Series = append(f.Series, indep)
	f.Series = append(f.Series, perLink...)
	f.Series = append(f.Series, total)
	return f
}

func emit(f *bench.Figure, csv bool) {
	if csv {
		fmt.Print(f.CSV())
	} else {
		fmt.Println(f.Table())
	}
}
