// Command ntbperf reproduces Fig 8 of the paper: raw data-transfer rate
// through the PCIe NTB fabric, comparing an independent two-host link
// against all links of the ring transferring simultaneously, over block
// sizes 1KB-512KB.
//
// Usage:
//
//	ntbperf [-hosts N] [-gen G] [-lanes L] [-fabric KIND] [-csv] [-j N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/model"
)

func main() {
	hosts := flag.Int("hosts", 3, "ring size for the simultaneous-transfer measurement")
	gen := flag.Int("gen", 3, "PCIe generation (1-3)")
	lanes := flag.Int("lanes", 8, "PCIe lane count")
	fabricName := flag.String("fabric", "ntb-ring", "fabric backend: ntb-ring, ntb-pair, pcie-switch, or cxl (non-ring backends run the cross-fabric workload)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	j := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	shards := flag.Int("shards", 1, "conservative-DES shards per world (1 = single simulator; large worlds on point-to-point fabrics split across shards)")
	flag.Parse()
	bench.SetParallelism(*j)

	kind, err := fabric.ParseKind(*fabricName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntbperf: -fabric:", err)
		os.Exit(2)
	}
	if err := bench.ValidateShards(*shards, kind); err != nil {
		fmt.Fprintln(os.Stderr, "ntbperf:", err)
		os.Exit(2)
	}
	bench.SetShards(*shards)
	par := model.Default()
	par.Gen, par.Lanes = *gen, *lanes
	if err := par.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ntbperf:", err)
		os.Exit(1)
	}

	if kind != fabric.KindNTBRing {
		// Fig 8's independent/ring split is a ring-topology concept; on
		// the other backends report the cross-fabric contention workload
		// for the one requested kind instead.
		emit(bench.RunCrossFabric(par, []fabric.Kind{kind}), *csv)
		return
	}
	if *hosts == 3 {
		for _, f := range bench.RunFig8(par) {
			emit(f, *csv)
		}
		return
	}
	// Non-paper ring sizes: print per-link and total for the requested n.
	f := customRing(par, *hosts)
	emit(f, *csv)
}

func customRing(par *model.Params, n int) *bench.Figure {
	f := &bench.Figure{
		ID:     "Fig 8 (custom)",
		Title:  fmt.Sprintf("Per-link and total transfer rate, %d-host ring", n),
		XLabel: "Request Size",
		Unit:   "MB/s",
	}
	indep := bench.Series{Label: "Independent"}
	total := bench.Series{Label: "Ring total"}
	perLink := make([]bench.Series, n)
	for i := range perLink {
		perLink[i].Label = fmt.Sprintf("Link %d", i)
	}
	type cell struct {
		indep float64
		rates []float64
	}
	sizes := bench.Sizes()
	cells := bench.RunPoints(context.Background(), bench.Parallelism(), sizes, func(size int) cell {
		return cell{
			indep: bench.Fig8Independent(par, 0, size),
			rates: bench.Fig8Ring(par, n, size),
		}
	})
	for si, size := range sizes {
		indep.Points = append(indep.Points, bench.Point{Size: size, Value: cells[si].indep})
		var sum float64
		for i, r := range cells[si].rates {
			perLink[i].Points = append(perLink[i].Points, bench.Point{Size: size, Value: r})
			sum += r
		}
		total.Points = append(total.Points, bench.Point{Size: size, Value: sum})
	}
	f.Series = append(f.Series, indep)
	f.Series = append(f.Series, perLink...)
	f.Series = append(f.Series, total)
	return f
}

func emit(f *bench.Figure, csv bool) {
	if csv {
		fmt.Print(f.CSV())
	} else {
		fmt.Println(f.Table())
	}
}
