// Command appbench runs the self-verifying application kernels (E3) —
// halo-exchange stencil, ring-rotation matmul, NPB-IS-style bucket sort
// — across link configurations and platform profiles, reporting
// end-to-end virtual completion times.
//
// Usage:
//
//	appbench [-hosts N] [-profile gen3x8] [-fabric KIND] [-kernel heat1d|matmul|intsort|all] [-j N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/model"
)

func main() {
	hosts := flag.Int("hosts", 4, "ring size")
	fabricName := flag.String("fabric", "ntb-ring", "fabric backend to run the kernels over: ntb-ring, ntb-pair, pcie-switch, or cxl")
	profile := flag.String("profile", "gen3x8", "platform profile (see model.Names)")
	kernel := flag.String("kernel", "all", "kernel: heat1d, matmul, intsort or all")
	cells := flag.Int("cells", 2048, "heat1d: total cells")
	steps := flag.Int("steps", 50, "heat1d: time steps")
	dim := flag.Int("dim", 64, "matmul: matrix dimension")
	keys := flag.Int("keys", 40000, "intsort: keys per PE")
	j := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	shards := flag.Int("shards", 1, "conservative-DES shards per world (1 = single simulator; large worlds on point-to-point fabrics split across shards)")
	flag.Parse()
	bench.SetParallelism(*j)

	kind, err := fabric.ParseKind(*fabricName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "appbench: -fabric:", err)
		os.Exit(2)
	}
	if max := fabric.MaxHostsFor(kind); *hosts < 2 || *hosts > max {
		fmt.Fprintf(os.Stderr, "appbench: -hosts=%d out of range [2, %d] for the %s fabric\n", *hosts, max, kind)
		os.Exit(2)
	}
	if kind == fabric.KindNTBPair && *hosts != 2 {
		fmt.Fprintf(os.Stderr, "appbench: -hosts=%d: the ntb-pair fabric joins exactly 2 hosts\n", *hosts)
		os.Exit(2)
	}
	if err := bench.ValidateShards(*shards, kind); err != nil {
		fmt.Fprintln(os.Stderr, "appbench:", err)
		os.Exit(2)
	}
	bench.SetShards(*shards)
	bench.SetFabric(kind)

	par, err := model.Profile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "appbench:", err)
		os.Exit(1)
	}
	// Keep kernel parameters divisible by the host count.
	c, d := *cells, *dim
	for c%*hosts != 0 {
		c++
	}
	for d%*hosts != 0 {
		d++
	}

	type kern struct {
		name string
		run  func(cfg bench.AppConfig) float64
	}
	kernels := []kern{
		{"heat1d", func(cfg bench.AppConfig) float64 {
			return bench.AppHeat1D(par, cfg.Opts, *hosts, c, *steps)
		}},
		{"matmul", func(cfg bench.AppConfig) float64 {
			return bench.AppMatmul(par, cfg.Opts, *hosts, d)
		}},
		{"intsort", func(cfg bench.AppConfig) float64 {
			return bench.AppIntSort(par, cfg.Opts, *hosts, *keys)
		}},
	}

	selected := kernels[:0]
	for _, k := range kernels {
		if *kernel == "all" || *kernel == k.name {
			selected = append(selected, k)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "appbench: unknown kernel %q\n", *kernel)
		os.Exit(1)
	}

	// Fan the (kernel, config) matrix across workers; each cell runs its
	// own self-verifying world, results print in fixed order.
	cfgs := bench.AppConfigs()
	if kind != fabric.KindNTBRing {
		// The pipelined header-in-window protocol is ring-only; keep the
		// configurations every backend supports.
		kept := cfgs[:0]
		for _, cfg := range cfgs {
			if cfg.Opts.Pipeline < 2 {
				kept = append(kept, cfg)
			}
		}
		cfgs = kept
	}
	type cellKey struct{ ki, ci int }
	var cellKeys []cellKey
	for ki := range selected {
		for ci := range cfgs {
			cellKeys = append(cellKeys, cellKey{ki, ci})
		}
	}
	vals := bench.RunPoints(context.Background(), bench.Parallelism(), cellKeys, func(k cellKey) float64 {
		return selected[k.ki].run(cfgs[k.ci])
	})

	fmt.Printf("profile %s, %d hosts, %s fabric (every kernel self-verifies)\n\n", *profile, *hosts, kind)
	fmt.Printf("%-10s", "kernel")
	for _, cfg := range cfgs {
		fmt.Printf(" %22s", cfg.Name)
	}
	fmt.Println(" (virtual us)")
	for ki, k := range selected {
		fmt.Printf("%-10s", k.name)
		for ci := range cfgs {
			fmt.Printf(" %22.1f", vals[ki*len(cfgs)+ci])
		}
		fmt.Println()
	}
}
