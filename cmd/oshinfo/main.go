// Command oshinfo describes the simulated platform: the selected profile's
// derived link numbers, the protocol geometry, and the available profile
// names. With -dump it writes the profile as JSON, the starting point for
// custom calibrations fed back via `reproduce -params`.
//
// Usage:
//
//	oshinfo [-profile gen3x8] [-dump params.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/pcie"
)

func main() {
	profile := flag.String("profile", "gen3x8", "platform profile")
	dump := flag.String("dump", "", "write the profile as JSON to this file")
	flag.Parse()

	par, err := model.Profile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oshinfo:", err)
		os.Exit(1)
	}

	fmt.Printf("profile %q (available: %s)\n\n", *profile, strings.Join(model.Names(), ", "))
	fmt.Printf("PCIe link        Gen%d x%d, %.2f GB/s after line encoding,\n",
		par.Gen, par.Lanes, par.WireBandwidth()/1e9)
	fmt.Printf("                 %.2f GB/s payload (MaxPayload %dB, %.1f%% protocol efficiency)\n",
		par.EffectiveWireBW()/1e9, par.MaxPayload, 100*par.ProtocolEfficiency())
	pk, wire := pcie.MemWriteTLPs(par.MaxPayload, par.MaxPayload)
	fmt.Printf("                 one full TLP: %d packet, %d wire bytes\n", pk, wire)
	fmt.Printf("DMA engines      %.2f GB/s base", par.DMAEngineBW/1e9)
	if len(par.ChipsetSpread) > 0 {
		fmt.Printf(", chipset spread")
		for i := range par.ChipsetSpread {
			fmt.Printf(" link%d=%.2f", i, par.LinkEngineBW(i)/1e9)
		}
	}
	fmt.Println(" GB/s")
	fmt.Printf("Root complex     %.2f GB/s per host\n", par.RootComplexBW/1e9)
	fmt.Printf("Latencies        MMIO write %v, read %v, interrupt %v,\n",
		par.MMIOWrite, par.MMIORead, par.InterruptLatency)
	fmt.Printf("                 service wake %v, app wake %v, DMA setup %v\n",
		par.ServiceWake, par.AppWake, par.DMASetup)
	fmt.Printf("Protocol         window %dKB, put chunk %dKB, get chunk %dKB, bypass %dKB\n",
		par.WindowSize>>10, par.PutChunk>>10, par.GetChunk>>10, par.BypassChunk>>10)
	fmt.Printf("Registers        %d scratchpads, %d doorbell bits per link\n\n",
		par.SpadCount, par.DoorbellBits)

	fmt.Println("derived single-link expectations (see EXPERIMENTS.md):")
	fmt.Printf("  raw DMA stream 512KB:    %7.1f MB/s\n", bench.Fig8Independent(par, 0, 512<<10))
	fmt.Printf("  put chunk cycle:         %7.2f us (analytical)\n", bench.Total(bench.PutChunkBreakdown(par)))
	fmt.Printf("  get chunk cycle:         %7.2f us (analytical)\n", bench.Total(bench.GetChunkBreakdown(par)))

	if *dump != "" {
		if err := model.SaveParams(par, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "oshinfo:", err)
			os.Exit(1)
		}
		fmt.Printf("\nprofile written to %s (edit and feed back with `reproduce -params`)\n", *dump)
	}
}
