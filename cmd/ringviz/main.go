// Command ringviz draws the switchless ring and its traffic: topology
// with per-link chipset rates, then a time-bucketed ASCII heat strip of
// DMA activity per adapter while a chosen workload runs — a quick visual
// answer to "which links did that workload light up, and when".
//
// Usage:
//
//	ringviz [-hosts N] [-workload allpairs|put|get|barrier] [-buckets N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/ntb"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	hosts := flag.Int("hosts", 4, "ring size")
	workload := flag.String("workload", "allpairs", "workload: allpairs, put, get or barrier")
	buckets := flag.Int("buckets", 60, "time buckets in the heat strip")
	flag.Parse()

	par := model.Default()
	s := sim.New()
	c, err := fabric.NewRing(s, par, *hosts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringviz: -hosts=%d: %v\n", *hosts, err)
		os.Exit(2)
	}
	rec := trace.New()
	rec.Attach(c)
	w := core.NewWorld(c, core.Options{})

	err = w.Run(func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 256<<10)
		buf := make([]byte, 256<<10)
		pe.BarrierAll(p)
		switch *workload {
		case "put":
			if pe.ID() == 0 {
				pe.PutBytes(p, pe.NumPEs()-1, sym, buf)
			}
		case "get":
			if pe.ID() == 0 {
				pe.GetBytes(p, pe.NumPEs()-1, sym, buf)
			}
		case "barrier":
			for i := 0; i < 3; i++ {
				pe.BarrierAll(p)
			}
		default: // allpairs
			for tgt := 0; tgt < pe.NumPEs(); tgt++ {
				if tgt != pe.ID() {
					pe.PutBytes(p, tgt, sym+core.SymAddr(pe.ID()*1024), buf[:64<<10])
				}
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Topology.
	fmt.Printf("switchless ring, %d hosts (workload %q, t=%v)\n\n", *hosts, *workload, s.Now())
	var top, bot strings.Builder
	for i, h := range c.Hosts {
		top.WriteString(fmt.Sprintf("[host%d]", h.ID))
		if i < len(c.Hosts) {
			top.WriteString(fmt.Sprintf("--%.1fGB/s--", h.Right.EngineBW()/1e9))
		}
	}
	top.WriteString("[host0]")
	fmt.Println(" " + top.String())
	fmt.Println(" " + bot.String())

	// Heat strips: one row per right-side adapter, bucketed DMA bytes.
	end := int64(s.Now())
	if end == 0 {
		log.Fatal("no virtual time elapsed")
	}
	width := int64(*buckets)
	shades := []rune(" .:-=+*#%@")
	fmt.Printf("DMA activity (%d buckets of %s each; darker = more bytes)\n\n",
		*buckets, sim.Duration(end/width))
	for _, h := range c.Hosts {
		row := make([]int64, width)
		var peak int64
		for _, e := range rec.Events() {
			if e.Port != h.Right.Name() || e.Cat != "dma" {
				continue
			}
			b := int64(e.T) * width / (end + 1)
			row[b] += int64(e.Bytes)
			if row[b] > peak {
				peak = row[b]
			}
		}
		var strip strings.Builder
		for _, v := range row {
			idx := 0
			if peak > 0 {
				idx = int(v * int64(len(shades)-1) / peak)
			}
			strip.WriteRune(shades[idx])
		}
		fmt.Printf("%-10s |%s|\n", h.Right.Name(), strip.String())
	}

	fmt.Println()
	fmt.Print(rec.Table())
	_ = ntb.RegionData
}
