// Command selftest fuzzes the runtime with random SPMD programs checked
// against a sequential reference model — the differential harness from
// the test suite, exposed for long operator-driven runs.
//
// Every round builds a random schedule of puts (blocking and NBI),
// fetch-adds, gets and barriers over a random ring size and
// configuration, executes it on the simulator, and cross-checks every
// read against the reference. Any divergence prints the seed for
// reproduction and exits nonzero.
//
// Usage:
//
//	selftest [-rounds N] [-seed S] [-v]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	rounds := flag.Int("rounds", 25, "random programs to run")
	seed := flag.Int64("seed", 1, "starting seed")
	verbose := flag.Bool("v", false, "print each program's shape")
	flag.Parse()

	failures := 0
	for i := 0; i < *rounds; i++ {
		s := *seed + int64(i)
		cfg := randomConfig(s)
		hosts := 3 + int(s%5)
		if err := runProgram(s, cfg, hosts, *verbose); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL seed=%d hosts=%d cfg=%+v: %v\n", s, hosts, cfg, err)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "selftest: %d of %d programs failed\n", failures, *rounds)
		os.Exit(1)
	}
	fmt.Printf("selftest: %d random programs verified (seeds %d..%d)\n",
		*rounds, *seed, *seed+int64(*rounds)-1)
}

func randomConfig(seed int64) core.Options {
	rng := bench.SeededRNG(seed * 31)
	opts := core.Options{}
	if rng.Intn(2) == 0 {
		opts.Mode = driver.ModeCPU
	}
	switch rng.Intn(3) {
	case 1:
		opts.Barrier = core.BarrierCentral
	case 2:
		opts.Barrier = core.BarrierDissemination
	}
	if opts.Barrier == core.BarrierRing && rng.Intn(2) == 0 {
		opts.Routing = core.RouteShortest
	}
	if rng.Intn(2) == 0 {
		opts.Pipeline = 2 << rng.Intn(3) // 2, 4 or 8
	}
	return opts
}

// runProgram mirrors the differential test harness: slot-per-owner
// writes, commuting atomics, reads checked against a shadow model.
func runProgram(seed int64, opts core.Options, hosts int, verbose bool) error {
	const slotSize = 2500
	const roundsPerProgram = 3
	rng := bench.SeededRNG(seed)
	if verbose {
		fmt.Printf("seed=%d hosts=%d mode=%v barrier=%v routing=%v pipeline=%d\n",
			seed, hosts, opts.Mode, opts.Barrier, opts.Routing, opts.Pipeline)
	}

	// Shadow model.
	type key struct{ target, owner int }
	shadow := map[key]byte{}
	counters := make([]int64, hosts)
	type action struct {
		putTargets []int
		nbi        bool
		addTarget  int
		addDelta   int64
	}
	plans := make([][]action, hosts)
	for pe := 0; pe < hosts; pe++ {
		plans[pe] = make([]action, roundsPerProgram)
		for r := range plans[pe] {
			a := &plans[pe][r]
			for t := 0; t < hosts; t++ {
				if t != pe && rng.Intn(2) == 0 {
					a.putTargets = append(a.putTargets, t)
				}
			}
			a.nbi = rng.Intn(2) == 0
			a.addTarget = -1
			if rng.Intn(2) == 0 {
				a.addTarget = rng.Intn(hosts)
				a.addDelta = int64(rng.Intn(20) - 10)
			}
		}
	}
	tag := func(r, owner int) byte { return byte(r*37+owner*11) | 1 }
	snaps := make([]map[key]byte, roundsPerProgram)
	ctrSnaps := make([][]int64, roundsPerProgram)
	for r := 0; r < roundsPerProgram; r++ {
		for pe := 0; pe < hosts; pe++ {
			a := plans[pe][r]
			for _, t := range a.putTargets {
				shadow[key{t, pe}] = tag(r, pe)
			}
			if a.addTarget >= 0 {
				counters[a.addTarget] += a.addDelta
			}
		}
		snap := map[key]byte{}
		for k, v := range shadow {
			snap[k] = v
		}
		snaps[r] = snap
		ctrSnaps[r] = append([]int64(nil), counters...)
	}

	// Simulated execution.
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), hosts)
	if err != nil {
		return err
	}
	w := core.NewWorld(c, opts)
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
	}
	w.Launch(func(p *sim.Proc, pe *core.PE) {
		me := pe.ID()
		slots := pe.MustMalloc(p, hosts*slotSize)
		counter := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		for r := 0; r < roundsPerProgram; r++ {
			a := plans[me][r]
			block := bytes.Repeat([]byte{tag(r, me)}, slotSize)
			for _, t := range a.putTargets {
				if a.nbi {
					pe.PutBytesNBI(p, t, slots+core.SymAddr(me*slotSize), block)
				} else {
					pe.PutBytes(p, t, slots+core.SymAddr(me*slotSize), block)
				}
			}
			if a.addTarget >= 0 {
				pe.FetchAddInt64(p, a.addTarget, counter, a.addDelta)
			}
			pe.BarrierAll(p)
			// Verify local slots and a random remote counter.
			buf := make([]byte, slotSize)
			for owner := 0; owner < hosts; owner++ {
				want, ok := snaps[r][key{me, owner}]
				if !ok {
					continue
				}
				pe.LocalRead(p, slots+core.SymAddr(owner*slotSize), buf)
				for _, b := range buf {
					if b != want {
						fail("seed %d round %d: pe %d slot %d holds %d want %d",
							seed, r, me, owner, b, want)
						break
					}
				}
			}
			ctrTarget := (me + r) % hosts
			if got := pe.FetchInt64(p, ctrTarget, counter); got != ctrSnaps[r][ctrTarget] {
				fail("seed %d round %d: counter[%d] = %d want %d",
					seed, r, ctrTarget, got, ctrSnaps[r][ctrTarget])
			}
			pe.BarrierAll(p)
		}
	})
	if err := s.Run(); err != nil {
		return err
	}
	s.Shutdown()
	return firstErr
}
