// Command shmemtrace runs a chosen OpenSHMEM workload on the simulated
// NTB ring with device tracing enabled, prints the per-port activity
// summary, and can export the full timeline as Chrome trace JSON
// (open with chrome://tracing or Perfetto).
//
// Usage:
//
//	shmemtrace [-workload put|get|barrier|mix] [-hosts N] [-size BYTES] [-out trace.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "mix", "workload: put, get, barrier or mix")
	hosts := flag.Int("hosts", 3, "ring size")
	size := flag.Int("size", 64<<10, "transfer size in bytes")
	out := flag.String("out", "", "write Chrome trace JSON to this file")
	flag.Parse()

	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), *hosts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shmemtrace: -hosts=%d: %v\n", *hosts, err)
		os.Exit(2)
	}
	rec := trace.New()
	rec.Attach(c)
	ops := trace.NewOpRecorder()
	w := core.NewWorld(c, core.Options{})
	w.SetOpTrace(ops.OpHook())

	err = w.Run(func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, *size)
		buf := make([]byte, *size)
		pe.BarrierAll(p)
		switch *workload {
		case "put":
			if pe.ID() == 0 {
				pe.PutBytes(p, pe.NumPEs()-1, sym, buf)
			}
		case "get":
			if pe.ID() == 0 {
				pe.GetBytes(p, pe.NumPEs()-1, sym, buf)
			}
		case "barrier":
			for i := 0; i < 3; i++ {
				pe.BarrierAll(p)
			}
		default: // mix: all-pairs puts, one get, a barrier
			target := (pe.ID() + 1) % pe.NumPEs()
			pe.PutBytes(p, target, sym, buf)
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				pe.GetBytes(p, pe.NumPEs()-1, sym, buf)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %q on %d hosts finished at t=%v; %d device events, %d operations\n\n",
		*workload, *hosts, s.Now(), rec.Len(), ops.Len())
	fmt.Println("application operations:")
	fmt.Print(ops.Table())
	fmt.Println("\ndevice activity:")
	fmt.Print(rec.Table())
	fmt.Println()
	for _, h := range c.Hosts {
		u := rec.Utilization(h.Right.Name(), s.Now())
		fmt.Printf("%-10s dma engine utilization %5.1f%%\n", h.Right.Name(), 100*u)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChromeJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nChrome trace written to %s\n", *out)
	}
}
