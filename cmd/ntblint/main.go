// Command ntblint runs the repository's custom static analyzers over
// the given package patterns (default ./...) and exits non-zero on any
// finding. It is the machine check behind the invariants the simulator's
// credibility rests on — see LINT.md for the rules and waiver
// directives.
//
//	simdet     — no wall clock, no global math/rand, no order-sensitive
//	             map iteration in the simulation packages
//	resetcheck — every field of a Reset()-able type is reset, recursively
//	             reset, or annotated `// reset: keep`
//	allocfree  — //ntblint:allocfree functions contain no allocating
//	             constructs
//	parkcheck  — park labels are precomputed; AfterTick tickers are
//	             pre-allocated
//
// Run it from the module root (import resolution shells out to the go
// command in module mode): `go run ./cmd/ntblint ./...`.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/analysis"
)

// simdetScope matches the packages whose code must be deterministic in
// the byte-identical-results sense: the kernel, the device and protocol
// layers, the runtime, and the benchmark engine that renders results/.
// Other packages (examples, commands, parsing helpers) may iterate maps
// and read clocks freely.
var simdetScope = regexp.MustCompile(`(^|/)internal/(sim|pcie|ntb|driver|fabric|core|mem|bench|trace)$`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ntblint [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntblint:", err)
		os.Exit(2)
	}

	analyzers := analysis.Analyzers()
	for _, a := range analyzers {
		if a.Name == analysis.Simdet.Name {
			a.Match = simdetScope.MatchString
		}
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ntblint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
