// Command ntblint runs the repository's custom static analyzers over
// the given package patterns (default ./...) and exits non-zero on any
// finding. It is the machine check behind the invariants the simulator's
// credibility rests on — see LINT.md for the rules and waiver
// directives.
//
//	simdet         — no wall clock, no global math/rand, no core-count
//	                 reads, no order-sensitive map iteration in the
//	                 simulation packages
//	resetcheck     — every field of a Reset()-able type is reset,
//	                 recursively reset, or annotated `// reset: keep`
//	snapcheck      — every field of a Snapshot()-able type is captured
//	                 or annotated `// snap: keep`
//	allocfree      — //ntblint:allocfree functions contain no allocating
//	                 constructs
//	parkcheck      — park labels are precomputed; AfterTick tickers are
//	                 pre-allocated
//	shardsafe      — remote-guarded code reaches peer state only through
//	                 sim.Post closures (PROTOCOL.md §14)
//	fabriccontract — fabric.Link implementers ship the full lifecycle
//	                 contract (PROTOCOL.md §13)
//	waiverdrift    — every waiver directive still attaches to a
//	                 construct its analyzer recognises
//
// Packages are analyzed concurrently (-j workers) after a serial
// type-check load; diagnostics are merged in position order, so output
// is byte-identical at any worker count. -time prints per-analyzer
// wall-clock to stderr.
//
// Run it from the module root (import resolution shells out to the go
// command in module mode): `go run ./cmd/ntblint ./...`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/analysis"
)

func main() {
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "analysis worker count (packages analyzed concurrently)")
	timings := flag.Bool("time", false, "print per-analyzer wall-clock to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ntblint [-j N] [-time] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntblint:", err)
		os.Exit(2)
	}

	analyzers := analysis.Analyzers()
	analysis.ApplyRepoScopes(analyzers)
	diags, times := analysis.RunParallel(pkgs, analyzers, *workers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if *timings {
		for _, t := range times {
			fmt.Fprintf(os.Stderr, "ntblint: %-14s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ntblint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
