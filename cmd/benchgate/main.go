// Command benchgate enforces the allocation-regression gate in CI's
// bench-smoke target. It reads `go test -bench -benchmem` output and
// fails (exit 1) if any benchmark named in the committed baseline
// exceeds its allocs/op ceiling, or is missing from the input — a
// silently skipped benchmark must not pass the gate.
//
// Usage:
//
//	benchgate -baseline bench_baseline.json [-input bench.out]
//
// The baseline file maps benchmark names (without the -N GOMAXPROCS
// suffix) to their maximum permitted allocs/op:
//
//	{"BenchmarkWorldPut1M": 2, "BenchmarkFlowNetChurn": 0}
//
// allocs/op ceilings rather than ns/op: allocation counts are exact and
// machine-independent, so the gate never flakes on a loaded CI runner.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/benchparse"
)

func main() {
	baselineFile := flag.String("baseline", "bench_baseline.json", "JSON map of benchmark name -> max allocs/op")
	input := flag.String("input", "", "benchmark output file (default stdin)")
	flag.Parse()

	raw, err := os.ReadFile(*baselineFile)
	if err != nil {
		fatal(err)
	}
	var baseline map[string]int64
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselineFile, err))
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("%s: empty baseline gates nothing", *baselineFile))
	}

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := benchparse.Parse(r)
	if err != nil {
		fatal(err)
	}
	byName := make(map[string]benchparse.Result, len(results))
	for _, res := range results {
		byName[res.Name] = res
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		limit := baseline[name]
		res, ok := byName[name]
		switch {
		case !ok:
			fmt.Printf("FAIL %-28s absent from benchmark output (limit %d allocs/op)\n", name, limit)
			failed = true
		case res.AllocsPerOp < 0:
			fmt.Printf("FAIL %-28s has no allocs/op (run with -benchmem)\n", name)
			failed = true
		case res.AllocsPerOp > limit:
			fmt.Printf("FAIL %-28s %d allocs/op, limit %d\n", name, res.AllocsPerOp, limit)
			failed = true
		default:
			fmt.Printf("ok   %-28s %d allocs/op (limit %d)\n", name, res.AllocsPerOp, limit)
		}
	}
	if failed {
		fmt.Println("benchgate: allocation regression — raise the ceiling in the baseline only with a justifying commit")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
