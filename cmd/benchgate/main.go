// Command benchgate enforces the benchmark-regression gate in CI's
// bench-smoke target. It reads `go test -bench -benchmem` output and
// fails (exit 1) if any benchmark named in the committed baseline
// breaks its bounds, or is missing from the input — a silently skipped
// benchmark must not pass the gate.
//
// Usage:
//
//	benchgate -baseline bench_baseline.json [-input bench.out]
//
// The baseline file maps benchmark names (without the -N GOMAXPROCS
// suffix) to either a bare allocs/op ceiling, or an object carrying any
// of an allocs/op ceiling and an events/s floor (the custom metric
// benchmarks emit with b.ReportMetric):
//
//	{
//	  "BenchmarkWorldPut1M": 2,
//	  "BenchmarkSimEventThroughput": {"max_allocs_per_op": 11, "min_events_per_s": 100000}
//	}
//
// allocs/op ceilings are exact and machine-independent, so they never
// flake; events/s floors are wall-clock and must be set far below the
// measured rate (an order of magnitude) to absorb loaded CI runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/benchparse"
)

func main() {
	baselineFile := flag.String("baseline", "bench_baseline.json", "JSON map of benchmark name -> max allocs/op")
	input := flag.String("input", "", "benchmark output file (default stdin)")
	flag.Parse()

	raw, err := os.ReadFile(*baselineFile)
	if err != nil {
		fatal(err)
	}
	baseline, err := parseBaseline(raw)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *baselineFile, err))
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("%s: empty baseline gates nothing", *baselineFile))
	}

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := benchparse.Parse(r)
	if err != nil {
		fatal(err)
	}
	byName := make(map[string]benchparse.Result, len(results))
	for _, res := range results {
		byName[res.Name] = res
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		g := baseline[name]
		res, ok := byName[name]
		if !ok {
			fmt.Printf("FAIL %-28s absent from benchmark output (%s)\n", name, g)
			failed = true
			continue
		}
		if g.MaxAllocsPerOp != nil {
			switch {
			case res.AllocsPerOp < 0:
				fmt.Printf("FAIL %-28s has no allocs/op (run with -benchmem)\n", name)
				failed = true
			case res.AllocsPerOp > *g.MaxAllocsPerOp:
				fmt.Printf("FAIL %-28s %d allocs/op, limit %d\n", name, res.AllocsPerOp, *g.MaxAllocsPerOp)
				failed = true
			default:
				fmt.Printf("ok   %-28s %d allocs/op (limit %d)\n", name, res.AllocsPerOp, *g.MaxAllocsPerOp)
			}
		}
		if g.MinEventsPerS != nil {
			got, has := res.Extra["events/s"]
			switch {
			case !has:
				fmt.Printf("FAIL %-28s reports no events/s metric (floor %.0f)\n", name, *g.MinEventsPerS)
				failed = true
			case got < *g.MinEventsPerS:
				fmt.Printf("FAIL %-28s %.0f events/s, floor %.0f\n", name, got, *g.MinEventsPerS)
				failed = true
			default:
				fmt.Printf("ok   %-28s %.0f events/s (floor %.0f)\n", name, got, *g.MinEventsPerS)
			}
		}
		if g.MinForksPerS != nil {
			got, has := res.Extra["forks/s"]
			switch {
			case !has:
				fmt.Printf("FAIL %-28s reports no forks/s metric (floor %.0f)\n", name, *g.MinForksPerS)
				failed = true
			case got < *g.MinForksPerS:
				fmt.Printf("FAIL %-28s %.0f forks/s, floor %.0f\n", name, got, *g.MinForksPerS)
				failed = true
			default:
				fmt.Printf("ok   %-28s %.0f forks/s (floor %.0f)\n", name, got, *g.MinForksPerS)
			}
		}
	}
	if failed {
		fmt.Println("benchgate: benchmark regression — adjust the baseline only with a justifying commit")
		os.Exit(1)
	}
}

// gate is one benchmark's bounds: an allocs/op ceiling and/or floors on
// the custom throughput metrics benchmarks emit with b.ReportMetric.
type gate struct {
	MaxAllocsPerOp *int64   `json:"max_allocs_per_op"`
	MinEventsPerS  *float64 `json:"min_events_per_s"`
	MinForksPerS   *float64 `json:"min_forks_per_s"`
}

func (g gate) String() string {
	parts := ""
	if g.MaxAllocsPerOp != nil {
		parts = fmt.Sprintf("limit %d allocs/op", *g.MaxAllocsPerOp)
	}
	if g.MinEventsPerS != nil {
		if parts != "" {
			parts += ", "
		}
		parts += fmt.Sprintf("floor %.0f events/s", *g.MinEventsPerS)
	}
	if g.MinForksPerS != nil {
		if parts != "" {
			parts += ", "
		}
		parts += fmt.Sprintf("floor %.0f forks/s", *g.MinForksPerS)
	}
	if parts == "" {
		return "no bounds"
	}
	return parts
}

// parseBaseline accepts both baseline forms per entry: a bare number is
// an allocs/op ceiling (the original format), an object sets explicit
// bounds. An entry with no bounds at all is a configuration error.
func parseBaseline(raw []byte) (map[string]gate, error) {
	var rough map[string]json.RawMessage
	if err := json.Unmarshal(raw, &rough); err != nil {
		return nil, err
	}
	out := make(map[string]gate, len(rough))
	for name, msg := range rough {
		var limit int64
		if err := json.Unmarshal(msg, &limit); err == nil {
			out[name] = gate{MaxAllocsPerOp: &limit}
			continue
		}
		var g gate
		if err := json.Unmarshal(msg, &g); err != nil {
			return nil, fmt.Errorf("entry %q: want an allocs/op number or a bounds object: %w", name, err)
		}
		if g.MaxAllocsPerOp == nil && g.MinEventsPerS == nil && g.MinForksPerS == nil {
			return nil, fmt.Errorf("entry %q gates nothing", name)
		}
		out[name] = g
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
