// Command reproduce regenerates every figure of the paper's evaluation
// plus this repository's ablation studies, in one run, in the order the
// paper presents them. Its output is the raw material of EXPERIMENTS.md.
//
// Usage:
//
//	reproduce [-skip-ablations] [-csv] [-j N] [-world-pool=false] [-bench-json FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/benchparse"
	"repro/internal/model"
)

// figureMetric is the host-side cost of producing one figure group.
type figureMetric struct {
	Name          string  `json:"name"`
	WallSeconds   float64 `json:"wall_s"`
	Worlds        uint64  `json:"worlds"`
	VirtualEvents uint64  `json:"virtual_events"`
}

// benchReport is the machine-readable record of a reproduce run, written
// by -bench-json (BENCH.json in CI's bench-smoke target).
type benchReport struct {
	Parallelism int            `json:"parallelism"`
	WorldPool   bool           `json:"world_pool"`
	Figures     []figureMetric `json:"figures"`
	Totals      struct {
		WallSeconds   float64 `json:"wall_s"`
		Worlds        uint64  `json:"worlds"`
		WorldsPerSec  float64 `json:"worlds_per_s"`
		VirtualEvents uint64  `json:"virtual_events"`
		PoolHits      uint64  `json:"pool_hits"`
		PoolMisses    uint64  `json:"pool_misses"`
	} `json:"totals"`
	// Benchmarks carries `go test -bench -benchmem` results parsed from
	// the -bench-input file (allocs/op for the gated benchmarks).
	Benchmarks []benchparse.Result `json:"benchmarks,omitempty"`
}

func main() {
	skipAblations := flag.Bool("skip-ablations", false, "only the paper's figures")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	outdir := flag.String("outdir", "", "also write one CSV file per figure into this directory")
	paramsFile := flag.String("params", "", "JSON platform profile overlaying the default (see model.SaveParams)")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	worldPool := flag.Bool("world-pool", true, "recycle simulation worlds between sweep points (A/B switch for the pool)")
	benchJSON := flag.String("bench-json", "", "write machine-readable run metrics (per-figure wall clock, worlds/s, allocs/op) to this file")
	benchInput := flag.String("bench-input", "", "`go test -bench -benchmem` output to fold into the -bench-json benchmarks section")
	flag.Parse()
	bench.SetParallelism(*par)
	bench.SetWorldPool(*worldPool)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live retention
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}()
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	mp := model.Default()
	if *paramsFile != "" {
		var err error
		if mp, err = model.LoadParams(*paramsFile); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	emit := func(f *bench.Figure) {
		if *csv {
			fmt.Printf("# %s — %s\n", f.ID, f.Title)
			fmt.Print(f.CSV())
			fmt.Println()
		} else {
			fmt.Println(f.Table())
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, bench.CSVFileName(f.ID))
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}
	}

	start := time.Now()
	fmt.Printf("platform profile: PCIe Gen%d x%d, wire %.2f GB/s, DMA engine %.2f GB/s\n",
		mp.Gen, mp.Lanes, mp.EffectiveWireBW()/1e9, mp.DMAEngineBW/1e9)
	fmt.Printf("parallel runner: %d workers (independent worlds only; virtual time is unaffected), world pool %s\n\n",
		bench.Parallelism(), map[bool]string{true: "on", false: "off"}[bench.WorldPoolEnabled()])

	report := benchReport{Parallelism: bench.Parallelism(), WorldPool: bench.WorldPoolEnabled()}

	// timed produces one figure group, emits it, and reports the group's
	// wall-clock cost so parallel-runner speedups are visible in the
	// archived output. Worlds and virtual events are deltas of the global
	// bench counters around the group.
	timed := func(name string, produce func() []*bench.Figure) []*bench.Figure {
		w0, e0 := bench.WorldsSimulated(), bench.VirtualEvents()
		t0 := time.Now()
		figs := produce()
		elapsed := time.Since(t0)
		for _, f := range figs {
			emit(f)
		}
		fmt.Printf("[%s: %.2fs wall]\n\n", name, elapsed.Seconds())
		report.Figures = append(report.Figures, figureMetric{
			Name:          name,
			WallSeconds:   elapsed.Seconds(),
			Worlds:        bench.WorldsSimulated() - w0,
			VirtualEvents: bench.VirtualEvents() - e0,
		})
		return figs
	}
	one := func(f func() *bench.Figure) func() []*bench.Figure {
		return func() []*bench.Figure { return []*bench.Figure{f()} }
	}

	timed("Fig 8", func() []*bench.Figure { return bench.RunFig8(mp) })
	fig9 := timed("Fig 9", func() []*bench.Figure { return bench.RunFig9(mp) })
	timed("Fig 10", one(func() *bench.Figure { return bench.RunFig10(mp) }))

	if !*skipAblations {
		timed("A1", one(func() *bench.Figure { return bench.RunAblationBarrierAlgo(mp) }))
		timed("A2", one(func() *bench.Figure { return bench.RunAblationGetChunk(mp) }))
		timed("A3", one(func() *bench.Figure { return bench.RunAblationRingSize(mp) }))
		timed("A4", one(func() *bench.Figure { return bench.RunAblationRouting(mp) }))
		timed("A5", one(func() *bench.Figure { return bench.RunAblationBroadcast(mp) }))
		timed("A6", one(func() *bench.Figure { return bench.RunAblationPipeline(mp) }))
		timed("A7", one(func() *bench.Figure { return bench.RunAblationWakeCost(mp) }))
		timed("E1", one(bench.RunGenerationComparison))
		timed("E2", one(func() *bench.Figure { return bench.RunTwoSidedComparison(mp) }))
		timed("E3", one(func() *bench.Figure { return bench.RunAppKernels(mp) }))
		timed("E5", one(func() *bench.Figure { return bench.RunCollectiveLatency(mp) }))
		fmt.Println(bench.RunBreakdown(mp))
	}

	if bad := bench.CheckFig9Shapes(fig9); len(bad) != 0 {
		fmt.Println("PAPER-SHAPE CHECKS FAILED:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
	} else {
		fmt.Println("paper-shape checks: all passed")
	}
	elapsed := time.Since(start).Seconds()
	worlds := bench.WorldsSimulated()
	hits, misses := bench.WorldPoolStats()
	fmt.Printf("simulated %d worlds in %.1f s (%.1f worlds/s, par=%d, pool %d hits / %d misses)\n",
		worlds, elapsed, float64(worlds)/elapsed, bench.Parallelism(), hits, misses)
	fmt.Println("(all reported numbers are virtual-time measurements; wall times above are host-side cost)")

	if *benchJSON != "" {
		report.Totals.WallSeconds = elapsed
		report.Totals.Worlds = worlds
		report.Totals.WorldsPerSec = float64(worlds) / elapsed
		report.Totals.VirtualEvents = bench.VirtualEvents()
		report.Totals.PoolHits = hits
		report.Totals.PoolMisses = misses
		if *benchInput != "" {
			f, err := os.Open(*benchInput)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
			report.Benchmarks, err = benchparse.Parse(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
}
