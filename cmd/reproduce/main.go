// Command reproduce regenerates every figure of the paper's evaluation
// plus this repository's ablation studies, in one run, in the order the
// paper presents them. Its output is the raw material of EXPERIMENTS.md.
//
// Usage:
//
//	reproduce [-skip-ablations] [-csv] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/model"
)

func main() {
	skipAblations := flag.Bool("skip-ablations", false, "only the paper's figures")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	outdir := flag.String("outdir", "", "also write one CSV file per figure into this directory")
	paramsFile := flag.String("params", "", "JSON platform profile overlaying the default (see model.SaveParams)")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	flag.Parse()
	bench.SetParallelism(*par)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live retention
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}()
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	mp := model.Default()
	if *paramsFile != "" {
		var err error
		if mp, err = model.LoadParams(*paramsFile); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	emit := func(f *bench.Figure) {
		if *csv {
			fmt.Printf("# %s — %s\n", f.ID, f.Title)
			fmt.Print(f.CSV())
			fmt.Println()
		} else {
			fmt.Println(f.Table())
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, bench.CSVFileName(f.ID))
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}
	}

	start := time.Now()
	fmt.Printf("platform profile: PCIe Gen%d x%d, wire %.2f GB/s, DMA engine %.2f GB/s\n",
		mp.Gen, mp.Lanes, mp.EffectiveWireBW()/1e9, mp.DMAEngineBW/1e9)
	fmt.Printf("parallel runner: %d workers (independent worlds only; virtual time is unaffected)\n\n",
		bench.Parallelism())

	// timed produces one figure group, emits it, and reports the group's
	// wall-clock cost so parallel-runner speedups are visible in the
	// archived output.
	timed := func(name string, produce func() []*bench.Figure) []*bench.Figure {
		t0 := time.Now()
		figs := produce()
		elapsed := time.Since(t0)
		for _, f := range figs {
			emit(f)
		}
		fmt.Printf("[%s: %.2fs wall]\n\n", name, elapsed.Seconds())
		return figs
	}
	one := func(f func() *bench.Figure) func() []*bench.Figure {
		return func() []*bench.Figure { return []*bench.Figure{f()} }
	}

	timed("Fig 8", func() []*bench.Figure { return bench.RunFig8(mp) })
	fig9 := timed("Fig 9", func() []*bench.Figure { return bench.RunFig9(mp) })
	timed("Fig 10", one(func() *bench.Figure { return bench.RunFig10(mp) }))

	if !*skipAblations {
		timed("A1", one(func() *bench.Figure { return bench.RunAblationBarrierAlgo(mp) }))
		timed("A2", one(func() *bench.Figure { return bench.RunAblationGetChunk(mp) }))
		timed("A3", one(func() *bench.Figure { return bench.RunAblationRingSize(mp) }))
		timed("A4", one(func() *bench.Figure { return bench.RunAblationRouting(mp) }))
		timed("A5", one(func() *bench.Figure { return bench.RunAblationBroadcast(mp) }))
		timed("A6", one(func() *bench.Figure { return bench.RunAblationPipeline(mp) }))
		timed("A7", one(func() *bench.Figure { return bench.RunAblationWakeCost(mp) }))
		timed("E1", one(bench.RunGenerationComparison))
		timed("E2", one(func() *bench.Figure { return bench.RunTwoSidedComparison(mp) }))
		timed("E3", one(func() *bench.Figure { return bench.RunAppKernels(mp) }))
		timed("E5", one(func() *bench.Figure { return bench.RunCollectiveLatency(mp) }))
		fmt.Println(bench.RunBreakdown(mp))
	}

	if bad := bench.CheckFig9Shapes(fig9); len(bad) != 0 {
		fmt.Println("PAPER-SHAPE CHECKS FAILED:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
	} else {
		fmt.Println("paper-shape checks: all passed")
	}
	elapsed := time.Since(start).Seconds()
	worlds := bench.WorldsSimulated()
	fmt.Printf("simulated %d worlds in %.1f s (%.1f worlds/s, par=%d)\n",
		worlds, elapsed, float64(worlds)/elapsed, bench.Parallelism())
	fmt.Println("(all reported numbers are virtual-time measurements; wall times above are host-side cost)")
}
