// Command reproduce regenerates every figure of the paper's evaluation
// plus this repository's ablation studies, in one run, in the order the
// paper presents them. Its output is the raw material of EXPERIMENTS.md.
//
// Usage:
//
//	reproduce [-skip-ablations] [-csv] [-j N] [-world-pool=false] [-bench-json FILE]
//	          [-scaling=false] [-scale-pes 3,64,256,1024] [-scheduler ladder|heap]
//	          [-fabric ntb-ring,pcie-switch,cxl]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/benchparse"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// figureMetric is the host-side cost of producing one figure group.
type figureMetric struct {
	Name          string  `json:"name"`
	WallSeconds   float64 `json:"wall_s"`
	Worlds        uint64  `json:"worlds"`
	VirtualEvents uint64  `json:"virtual_events"`
}

// scalePoint is one ring-size measurement of the scaling sweep: the
// deterministic work done (worlds, virtual events) and the host-side
// cost of doing it. Wall-clock fields vary run to run by design.
type scalePoint struct {
	PEs           int     `json:"pes"`
	Scheduler     string  `json:"scheduler"`
	Worlds        uint64  `json:"worlds"`
	VirtualEvents uint64  `json:"virtual_events"`
	WallSeconds   float64 `json:"wall_s"`
	EventsPerSec  float64 `json:"events_per_s"`
	WorldsPerSec  float64 `json:"worlds_per_s"`
	NsPerEvent    float64 `json:"ns_per_event"`
}

// shardingResult records the conservative-DES sharding measurement: the
// 256-PE scaling workload at one shard and at Shards shards
// (PROTOCOL.md §14). The workload is inside the sharding's exactness
// domain, so VirtualEndNs is required to be identical between the two
// modes; only the wall-clock throughputs differ. On a multi-core host
// the sharded mode's events/s should exceed the single-shard mode's;
// with GOMAXPROCS=1 the modes tie (minus coordination overhead) and the
// speedup column documents that the run had no cores to spend.
type shardingResult struct {
	PEs              int     `json:"pes"`
	Shards           int     `json:"shards"`
	GoMaxProcs       int     `json:"gomaxprocs"`
	WorldsPerMode    int     `json:"worlds_per_mode"`
	VirtualEndNs     int64   `json:"virtual_end_ns"`
	EventsPerSecOne  float64 `json:"events_per_s_1shard"`
	EventsPerSecMany float64 `json:"events_per_s_sharded"`
	Speedup          float64 `json:"speedup"`
}

// forkABResult is the interleaved fork on/off A/B over the prefix-heavy
// probe workload: the snapshot-fork analogue of PR 3's pool A/B.
type forkABResult struct {
	Points                int     `json:"points"`
	RepsPerMode           int     `json:"reps_per_mode"`
	PrefixRounds          int     `json:"prefix_rounds"`
	PrefixFillBytes       int     `json:"prefix_fill_bytes"`
	MedianWorldsPerSecOff float64 `json:"median_worlds_per_s_off"`
	MedianWorldsPerSecOn  float64 `json:"median_worlds_per_s_on"`
	Speedup               float64 `json:"speedup"`
}

// benchReport is the machine-readable record of a reproduce run, written
// by -bench-json (BENCH.json in CI's bench-smoke target).
type benchReport struct {
	Parallelism int            `json:"parallelism"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Scheduler   string         `json:"scheduler"`
	WorldPool   bool           `json:"world_pool"`
	WorldFork   bool           `json:"world_fork"`
	Figures     []figureMetric `json:"figures"`
	// Sharding is the conservative-DES shard A/B (-shard-ab).
	Sharding *shardingResult `json:"sharding,omitempty"`
	// Scaling is the ring-size sweep (-scaling): engine throughput vs PE
	// count under the selected scheduler, plus a heap-scheduler baseline
	// at the smallest ring for per-event comparison.
	Scaling []scalePoint `json:"scaling,omitempty"`
	// ForkAB is the -fork-ab measurement (nil when skipped).
	ForkAB *forkABResult `json:"fork_ab,omitempty"`
	// Fork records what the snapshot-fork path did during the run.
	Fork struct {
		Forks             uint64 `json:"forks"`
		PrefixBuilds      uint64 `json:"prefix_builds"`
		PrefixEventsSaved uint64 `json:"prefix_events_saved"`
		CowPagesCopied    uint64 `json:"cow_pages_copied"`
	} `json:"fork"`
	Totals struct {
		WallSeconds   float64 `json:"wall_s"`
		Worlds        uint64  `json:"worlds"`
		WorldsPerSec  float64 `json:"worlds_per_s"`
		VirtualEvents uint64  `json:"virtual_events"`
		PoolHits      uint64  `json:"pool_hits"`
		PoolMisses    uint64  `json:"pool_misses"`
	} `json:"totals"`
	// Benchmarks carries `go test -bench -benchmem` results parsed from
	// the -bench-input file (allocs/op for the gated benchmarks).
	Benchmarks []benchparse.Result `json:"benchmarks,omitempty"`
}

func main() {
	skipAblations := flag.Bool("skip-ablations", false, "only the paper's figures")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	outdir := flag.String("outdir", "", "also write one CSV file per figure into this directory")
	paramsFile := flag.String("params", "", "JSON platform profile overlaying the default (see model.SaveParams)")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	worldPool := flag.Bool("world-pool", true, "recycle simulation worlds between sweep points (A/B switch for the pool)")
	fork := flag.Bool("fork", true, "fork sweep points from copy-on-write warm-up snapshots instead of replaying the prefix (A/B switch)")
	forkAB := flag.Int("fork-ab", 0, "run an interleaved fork on/off A/B over this many prefix-heavy probe points (0 skips)")
	benchJSON := flag.String("bench-json", "", "write machine-readable run metrics (per-figure wall clock, worlds/s, allocs/op) to this file")
	benchInput := flag.String("bench-input", "", "`go test -bench -benchmem` output to fold into the -bench-json benchmarks section")
	scaling := flag.Bool("scaling", true, "run the ring-size scaling sweep (events/s and worlds/s vs PE count)")
	scalePEs := flag.String("scale-pes", "3,16,64,256,1024", "comma-separated ring sizes for the scaling sweep")
	scaleReps := flag.Int("scale-reps", 2, "measured worlds per scaling point (an unmeasured warm-up world per point precedes them)")
	shards := flag.Int("shards", 1, "conservative-DES shards per world for the whole run (1 = single simulator; only worlds of ≥16 hosts on point-to-point fabrics shard)")
	shardAB := flag.Int("shard-ab", 4, "measure the 256-PE scaling workload at 1 vs N shards and record it in the bench report (0 skips)")
	schedName := flag.String("scheduler", "ladder", "event scheduler for all simulation worlds: ladder or heap")
	fabricList := flag.String("fabric", "ntb-ring,pcie-switch,cxl", "comma-separated fabric backends for the cross-fabric figure (E6): ntb-ring, ntb-pair, pcie-switch, cxl")
	flag.Parse()
	bench.SetParallelism(*par)
	bench.SetWorldPool(*worldPool)
	bench.SetWorldFork(*fork)
	if err := bench.ValidateShards(*shards, fabric.KindNTBRing); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	if *shardAB == 1 || *shardAB < 0 {
		fmt.Fprintf(os.Stderr, "reproduce: -shard-ab=%d: need at least 2 shards for an A/B (or 0 to skip)\n", *shardAB)
		os.Exit(2)
	}
	bench.SetShards(*shards)
	sched, err := sim.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	sim.SetDefaultScheduler(sched)
	pes, err := parsePEs(*scalePEs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	fabKinds, err := parseFabrics(*fabricList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live retention
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}()
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	mp := model.Default()
	if *paramsFile != "" {
		if mp, err = model.LoadParams(*paramsFile); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	emit := func(f *bench.Figure) {
		if *csv {
			fmt.Printf("# %s — %s\n", f.ID, f.Title)
			fmt.Print(f.CSV())
			fmt.Println()
		} else {
			fmt.Println(f.Table())
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, bench.CSVFileName(f.ID))
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}
	}

	start := time.Now()
	fmt.Printf("platform profile: PCIe Gen%d x%d, wire %.2f GB/s, DMA engine %.2f GB/s\n",
		mp.Gen, mp.Lanes, mp.EffectiveWireBW()/1e9, mp.DMAEngineBW/1e9)
	onOff := map[bool]string{true: "on", false: "off"}
	fmt.Printf("parallel runner: %d workers (independent worlds only; virtual time is unaffected), world pool %s, snapshot fork %s, scheduler %s\n\n",
		bench.Parallelism(), onOff[bench.WorldPoolEnabled()], onOff[bench.WorldForkEnabled()], sched)

	report := benchReport{
		Parallelism: bench.Parallelism(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Scheduler:   sched.String(),
		WorldPool:   bench.WorldPoolEnabled(),
		WorldFork:   bench.WorldForkEnabled(),
	}

	// timed produces one figure group, emits it, and reports the group's
	// wall-clock cost so parallel-runner speedups are visible in the
	// archived output. Worlds and virtual events are deltas of the global
	// bench counters around the group.
	timed := func(name string, produce func() []*bench.Figure) []*bench.Figure {
		w0, e0 := bench.WorldsSimulated(), bench.VirtualEvents()
		t0 := time.Now()
		figs := produce()
		elapsed := time.Since(t0)
		for _, f := range figs {
			emit(f)
		}
		fmt.Printf("[%s: %.2fs wall]\n\n", name, elapsed.Seconds())
		report.Figures = append(report.Figures, figureMetric{
			Name:          name,
			WallSeconds:   elapsed.Seconds(),
			Worlds:        bench.WorldsSimulated() - w0,
			VirtualEvents: bench.VirtualEvents() - e0,
		})
		return figs
	}
	one := func(f func() *bench.Figure) func() []*bench.Figure {
		return func() []*bench.Figure { return []*bench.Figure{f()} }
	}

	timed("Fig 8", func() []*bench.Figure { return bench.RunFig8(mp) })
	fig9 := timed("Fig 9", func() []*bench.Figure { return bench.RunFig9(mp) })
	timed("Fig 10", one(func() *bench.Figure { return bench.RunFig10(mp) }))
	// The cross-fabric comparison runs even under -skip-ablations: it is
	// the one figure exercising every Link backend, so the CI smoke run
	// keeps the switch and CXL fabrics covered.
	timed("E6", one(func() *bench.Figure { return bench.RunCrossFabric(mp, fabKinds) }))

	if !*skipAblations {
		timed("A1", one(func() *bench.Figure { return bench.RunAblationBarrierAlgo(mp) }))
		timed("A2", one(func() *bench.Figure { return bench.RunAblationGetChunk(mp) }))
		timed("A3", one(func() *bench.Figure { return bench.RunAblationRingSize(mp) }))
		timed("A4", one(func() *bench.Figure { return bench.RunAblationRouting(mp) }))
		timed("A5", one(func() *bench.Figure { return bench.RunAblationBroadcast(mp) }))
		timed("A6", one(func() *bench.Figure { return bench.RunAblationPipeline(mp) }))
		timed("A7", one(func() *bench.Figure { return bench.RunAblationWakeCost(mp) }))
		timed("E1", one(bench.RunGenerationComparison))
		timed("E2", one(func() *bench.Figure { return bench.RunTwoSidedComparison(mp) }))
		timed("E3", one(func() *bench.Figure { return bench.RunAppKernels(mp) }))
		timed("E5", one(func() *bench.Figure { return bench.RunCollectiveLatency(mp) }))
		fmt.Println(bench.RunBreakdown(mp))
	}

	if *scaling {
		report.Scaling = runScaling(mp, pes, *scaleReps, sched)
	}

	if *shardAB > 0 {
		report.Sharding = runSharding(mp, *shardAB, *scaleReps)
		bench.SetShards(*shards) // the A/B toggles the knob; restore the run's setting
	}

	if *forkAB > 0 {
		report.ForkAB = runForkAB(mp, *forkAB)
		bench.SetWorldFork(*fork) // the A/B toggles the switch; restore the run's setting
	}

	if bad := bench.CheckFig9Shapes(fig9); len(bad) != 0 {
		fmt.Println("PAPER-SHAPE CHECKS FAILED:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
	} else {
		fmt.Println("paper-shape checks: all passed")
	}
	elapsed := time.Since(start).Seconds()
	worlds := bench.WorldsSimulated()
	hits, misses := bench.WorldPoolStats()
	forks, prefixBuilds, eventsSaved := bench.ForkStats()
	fmt.Printf("simulated %d worlds in %.1f s (%.1f worlds/s, par=%d, pool %d hits / %d misses)\n",
		worlds, elapsed, float64(worlds)/elapsed, bench.Parallelism(), hits, misses)
	fmt.Printf("snapshot fork: %d forks from %d warm-up prefixes (%d virtual events skipped, %d CoW pages copied)\n",
		forks, prefixBuilds, eventsSaved, bench.CowPagesCopied())
	fmt.Println("(all reported numbers are virtual-time measurements; wall times above are host-side cost)")

	if *benchJSON != "" {
		report.Fork.Forks = forks
		report.Fork.PrefixBuilds = prefixBuilds
		report.Fork.PrefixEventsSaved = eventsSaved
		report.Fork.CowPagesCopied = bench.CowPagesCopied()
		report.Totals.WallSeconds = elapsed
		report.Totals.Worlds = worlds
		report.Totals.WorldsPerSec = float64(worlds) / elapsed
		report.Totals.VirtualEvents = bench.VirtualEvents()
		report.Totals.PoolHits = hits
		report.Totals.PoolMisses = misses
		if *benchInput != "" {
			f, err := os.Open(*benchInput)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
			report.Benchmarks, err = benchparse.Parse(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
}

// runForkAB measures the headline claim of the snapshot-fork path: on a
// prefix-heavy sweep (every point shares an expensive warm-up, bodies
// diverge), forking the captured prefix beats replaying it. Modes are
// interleaved rep by rep — off, on, off, on, … — so drift in machine
// load lands on both sides, and each mode's worlds/s is summarized by
// its median. All [fork-ab] lines are host-side wall clock; the probe's
// virtual-time results are byte-identical between modes by construction
// (TestForkMatchesReplay holds the equivalence).
func runForkAB(mp *model.Params, points int) *forkABResult {
	const reps = 5
	const rounds, fill = 48, 65536
	res := &forkABResult{Points: points, RepsPerMode: reps, PrefixRounds: rounds, PrefixFillBytes: fill}
	fmt.Printf("[fork-ab] interleaved snapshot-fork A/B: %d probe points per rep (warm-up %d B fill × %d put rounds), %d reps per mode\n",
		points, fill, rounds, reps)
	idx := make([]int, points)
	for i := range idx {
		idx[i] = i
	}
	rep := func(on bool) float64 {
		bench.SetWorldFork(on)
		w0 := bench.WorldsSimulated()
		t0 := time.Now()
		bench.RunPoints(context.Background(), bench.Parallelism(), idx, func(pt int) int {
			bench.ForkProbePoint(mp, 3, rounds, fill, pt)
			return pt
		})
		wall := time.Since(t0).Seconds()
		return float64(bench.WorldsSimulated()-w0) / wall
	}
	var off, on []float64
	for r := 0; r < reps; r++ {
		off = append(off, rep(false))
		on = append(on, rep(true))
		fmt.Printf("[fork-ab] rep %d: fork off %.1f worlds/s, fork on %.1f worlds/s\n", r+1, off[r], on[r])
	}
	sort.Float64s(off)
	sort.Float64s(on)
	res.MedianWorldsPerSecOff = off[len(off)/2]
	res.MedianWorldsPerSecOn = on[len(on)/2]
	res.Speedup = res.MedianWorldsPerSecOn / res.MedianWorldsPerSecOff
	fmt.Printf("[fork-ab] median worlds/s: fork off %.1f, fork on %.1f — speedup %.2fx\n\n",
		res.MedianWorldsPerSecOff, res.MedianWorldsPerSecOn, res.Speedup)
	return res
}

// runScaling sweeps the scaling workload over the requested ring sizes
// under the selected scheduler, then repeats the smallest ring under the
// heap scheduler as the per-event baseline the ladder is judged against.
// Results are printed as a table and returned for the bench report.
func runScaling(mp *model.Params, pes []int, reps int, sched sim.SchedulerKind) []scalePoint {
	// Every line carries the [scale] prefix: the sweep's wall-clock
	// columns are host-side and nondeterministic, and the prefix lets
	// output-determinism diffs filter them like the "s wall]" lines.
	fmt.Printf("[scale] ring scaling sweep (%d world(s) per point; simulated work deterministic, wall clock host-side)\n", reps)
	fmt.Printf("[scale] %6s %6s %8s %16s %9s %14s %10s %10s\n",
		"pes", "sched", "worlds", "virtual events", "wall s", "events/s", "worlds/s", "ns/event")
	measure := func(n int, kind sim.SchedulerKind) scalePoint {
		sim.SetDefaultScheduler(kind)
		// One unmeasured warm-up world per point: it builds this shape's
		// prefix snapshot and warms the world pool before the counters
		// are sampled, so every point records exactly reps worlds. (The
		// ladder points used to record reps or reps+1 depending on
		// whether an earlier figure happened to have built the same
		// shape — an inconsistency archived into BENCH.json.)
		bench.ScaleWorkload(mp, n, 4096)
		w0, e0 := bench.WorldsSimulated(), bench.VirtualEvents()
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			bench.ScaleWorkload(mp, n, 4096)
		}
		wall := time.Since(t0).Seconds()
		worlds, events := bench.WorldsSimulated()-w0, bench.VirtualEvents()-e0
		pt := scalePoint{
			PEs:           n,
			Scheduler:     kind.String(),
			Worlds:        worlds,
			VirtualEvents: events,
			WallSeconds:   wall,
			EventsPerSec:  float64(events) / wall,
			WorldsPerSec:  float64(worlds) / wall,
			NsPerEvent:    wall * 1e9 / float64(events),
		}
		fmt.Printf("[scale] %6d %6s %8d %16d %9.3f %14.0f %10.2f %10.1f\n",
			pt.PEs, pt.Scheduler, pt.Worlds, pt.VirtualEvents, pt.WallSeconds,
			pt.EventsPerSec, pt.WorldsPerSec, pt.NsPerEvent)
		return pt
	}
	var points []scalePoint
	for _, n := range pes {
		points = append(points, measure(n, sched))
	}
	if sched != sim.SchedulerHeap {
		points = append(points, measure(pes[0], sim.SchedulerHeap))
	}
	sim.SetDefaultScheduler(sched)
	fmt.Println()
	return points
}

// runSharding measures the conservative-DES shard A/B: the 256-PE
// scaling workload at one shard and at shards shards, reps measured
// worlds each (plus one unmeasured warm-up per mode). The virtual end
// time is the determinism witness — the workload is inside the
// sharding's exactness domain (PROTOCOL.md §14), so a divergence is a
// correctness failure, reported loudly rather than archived quietly.
func runSharding(mp *model.Params, shards, reps int) *shardingResult {
	const n, putBytes = 256, 4096
	res := &shardingResult{
		PEs: n, Shards: shards,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		WorldsPerMode: reps,
	}
	measure := func(s int) (float64, sim.Time) {
		bench.SetShards(s)
		bench.ScaleWorkload(mp, n, putBytes) // unmeasured warm-up for this shard count
		e0 := bench.VirtualEvents()
		t0 := time.Now()
		var end sim.Time
		for r := 0; r < reps; r++ {
			end = bench.ScaleWorkloadTime(mp, n, putBytes)
		}
		wall := time.Since(t0).Seconds()
		return float64(bench.VirtualEvents()-e0) / wall, end
	}
	one, endOne := measure(1)
	many, endMany := measure(shards)
	res.EventsPerSecOne, res.EventsPerSecMany = one, many
	res.VirtualEndNs = int64(endOne)
	res.Speedup = many / one
	fmt.Printf("[shard] %d-PE scaling workload, %d world(s) per mode, gomaxprocs=%d\n", n, reps, res.GoMaxProcs)
	fmt.Printf("[shard] 1 shard: %.0f events/s; %d shards: %.0f events/s — speedup %.2fx\n",
		one, shards, many, res.Speedup)
	if endOne != endMany {
		fmt.Printf("[shard] DETERMINISM FAILURE: virtual end %v at 1 shard, %v at %d shards\n",
			endOne, endMany, shards)
	} else {
		fmt.Printf("[shard] virtual end identical across modes: %v\n\n", endOne)
	}
	return res
}

// parseFabrics validates the -fabric list at the command layer so a
// typoed backend name is a flag error naming the valid kinds, not a
// mid-run panic.
func parseFabrics(list string) ([]fabric.Kind, error) {
	var kinds []fabric.Kind
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, err := fabric.ParseKind(tok)
		if err != nil {
			return nil, fmt.Errorf("-fabric: %w", err)
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-fabric: empty backend list")
	}
	return kinds, nil
}

// parsePEs validates the scaling axis at the command layer so a bad
// ring size is a flag error, not a mid-run panic.
func parsePEs(list string) ([]int, error) {
	var pes []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("-scale-pes: %q is not a ring size", tok)
		}
		if n < 2 || n > fabric.MaxHosts {
			return nil, fmt.Errorf("-scale-pes: ring size %d out of range [2, %d]", n, fabric.MaxHosts)
		}
		pes = append(pes, n)
	}
	if len(pes) == 0 {
		return nil, fmt.Errorf("-scale-pes: empty sweep")
	}
	return pes, nil
}
