// Command reproduce regenerates every figure of the paper's evaluation
// plus this repository's ablation studies, in one run, in the order the
// paper presents them. Its output is the raw material of EXPERIMENTS.md.
//
// Usage:
//
//	reproduce [-skip-ablations] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/model"
)

func main() {
	skipAblations := flag.Bool("skip-ablations", false, "only the paper's figures")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	outdir := flag.String("outdir", "", "also write one CSV file per figure into this directory")
	paramsFile := flag.String("params", "", "JSON platform profile overlaying the default (see model.SaveParams)")
	flag.Parse()

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	par := model.Default()
	if *paramsFile != "" {
		var err error
		if par, err = model.LoadParams(*paramsFile); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(1)
		}
	}
	emit := func(f *bench.Figure) {
		if *csv {
			fmt.Printf("# %s — %s\n", f.ID, f.Title)
			fmt.Print(f.CSV())
			fmt.Println()
		} else {
			fmt.Println(f.Table())
		}
		if *outdir != "" {
			name := strings.ToLower(strings.NewReplacer(" ", "", "(", "_", ")", "").Replace(f.ID)) + ".csv"
			path := filepath.Join(*outdir, name)
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				os.Exit(1)
			}
		}
	}

	start := time.Now()
	fmt.Printf("platform profile: PCIe Gen%d x%d, wire %.2f GB/s, DMA engine %.2f GB/s\n\n",
		par.Gen, par.Lanes, par.EffectiveWireBW()/1e9, par.DMAEngineBW/1e9)

	for _, f := range bench.RunFig8(par) {
		emit(f)
	}
	fig9 := bench.RunFig9(par)
	for _, f := range fig9 {
		emit(f)
	}
	emit(bench.RunFig10(par))

	if !*skipAblations {
		emit(bench.RunAblationBarrierAlgo(par))
		emit(bench.RunAblationGetChunk(par))
		emit(bench.RunAblationRingSize(par))
		emit(bench.RunAblationRouting(par))
		emit(bench.RunAblationBroadcast(par))
		emit(bench.RunAblationPipeline(par))
		emit(bench.RunAblationWakeCost(par))
		emit(bench.RunGenerationComparison())
		emit(bench.RunTwoSidedComparison(par))
		emit(bench.RunAppKernels(par))
		emit(bench.RunCollectiveLatency(par))
		fmt.Println(bench.RunBreakdown(par))
	}

	if bad := bench.CheckFig9Shapes(fig9); len(bad) != 0 {
		fmt.Println("PAPER-SHAPE CHECKS FAILED:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
	} else {
		fmt.Println("paper-shape checks: all passed")
	}
	fmt.Printf("(wall time %.1fs; all reported numbers are virtual-time measurements)\n",
		time.Since(start).Seconds())
}
