// Command shmemperf reproduces Fig 9 of the paper: latency and
// throughput of the OpenSHMEM Put and Get operations over the switchless
// ring, for {DMA, memcpy} x {1 hop, 2 hops} and request sizes 1KB-512KB.
//
// Usage:
//
//	shmemperf [-op put|get|both] [-metric latency|throughput|both] [-fabric KIND] [-csv] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/model"
)

func main() {
	op := flag.String("op", "both", "operation to measure: put, get or both")
	metric := flag.String("metric", "both", "metric to report: latency, throughput or both")
	profile := flag.String("profile", "gen3x8", "platform profile (see model.Names)")
	fabricName := flag.String("fabric", "ntb-ring", "fabric backend to measure over: ntb-ring, ntb-pair, pcie-switch, or cxl")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	j := flag.Int("j", runtime.GOMAXPROCS(0), "worker count: independent simulation worlds run in parallel")
	shards := flag.Int("shards", 1, "conservative-DES shards per world (1 = single simulator; large worlds on point-to-point fabrics split across shards)")
	flag.Parse()
	bench.SetParallelism(*j)

	kind, err := fabric.ParseKind(*fabricName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shmemperf: -fabric:", err)
		os.Exit(2)
	}
	if kind == fabric.KindNTBPair {
		fmt.Fprintln(os.Stderr, "shmemperf: -fabric=ntb-pair: Fig 9 sweeps a 3-host world; the pair fabric joins exactly 2")
		os.Exit(2)
	}
	if err := bench.ValidateShards(*shards, kind); err != nil {
		fmt.Fprintln(os.Stderr, "shmemperf:", err)
		os.Exit(2)
	}
	bench.SetShards(*shards)
	bench.SetFabric(kind)

	par, err := model.Profile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shmemperf:", err)
		os.Exit(1)
	}
	figs := bench.RunFig9(par) // a: put lat, b: get lat, c: put tput, d: get tput

	want := func(f *bench.Figure) bool {
		lower := strings.ToLower(f.Title)
		if *op != "both" && !strings.Contains(lower, *op+" ") {
			return false
		}
		if *metric != "both" && !strings.Contains(lower, *metric) {
			return false
		}
		return true
	}
	printed := 0
	for _, f := range figs {
		if !want(f) {
			continue
		}
		printed++
		if *csv {
			fmt.Print(f.CSV())
		} else {
			fmt.Println(f.Table())
		}
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "shmemperf: no figure matches -op %q -metric %q\n", *op, *metric)
		os.Exit(1)
	}
	if kind != fabric.KindNTBRing {
		// The shape checks encode ring facts (hop sensitivity, relay
		// costs); on single-hop fabrics they are meaningless.
		return
	}
	if bad := bench.CheckFig9Shapes(figs); len(bad) != 0 {
		fmt.Fprintln(os.Stderr, "shmemperf: WARNING, paper-shape checks failed:")
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "  -", b)
		}
		os.Exit(2)
	}
}
