// montecarlo: parallel pi estimation with remote atomics and a
// distributed lock — the "shared counter" idioms of the OpenSHMEM API.
//
// Every PE throws darts at the unit square with its own deterministic
// RNG stream and accumulates hits into a counter on PE 0 with
// FetchAddInt64. A distributed lock guards a shared "best estimate so
// far" record to demonstrate shmem_set_lock/clear_lock.
//
// Run with: go run ./examples/montecarlo [-hosts N] [-darts D]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	ntbshmem "repro"
)

func main() {
	hosts := flag.Int("hosts", 4, "number of hosts/PEs")
	darts := flag.Int("darts", 200_000, "darts per PE")
	flag.Parse()

	n := *hosts
	perPE := *darts
	var estimate float64
	err := ntbshmem.Run(ntbshmem.Config{Hosts: n}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		hits := pe.MustMalloc(p, 8)   // global hit counter, lives on PE 0
		thrown := pe.MustMalloc(p, 8) // global dart counter, lives on PE 0
		lock := pe.MustMalloc(p, 8)   // distributed lock word
		best := pe.MustMalloc(p, 16)  // locked record: (estimate, darts)
		pe.BarrierAll(p)

		rng := rand.New(rand.NewSource(int64(pe.ID()) + 1))
		local := 0
		for i := 0; i < perPE; i++ {
			x, y := rng.Float64(), rng.Float64()
			if x*x+y*y <= 1 {
				local++
			}
		}
		// Batch the local tally into the shared counters atomically.
		pe.AddInt64(p, 0, hits, int64(local))
		totalThrown := pe.FetchAddInt64(p, 0, thrown, int64(perPE)) + int64(perPE)

		// Update the shared best-estimate record under the lock.
		pe.SetLock(p, lock)
		rec := make([]float64, 2)
		ntbshmem.Get(p, pe, 0, best, rec)
		if float64(totalThrown) > rec[1] {
			h := pe.FetchInt64(p, 0, hits)
			rec[0] = 4 * float64(h) / float64(totalThrown)
			rec[1] = float64(totalThrown)
			ntbshmem.Put(p, pe, 0, best, rec)
			pe.Fence(p)
		}
		pe.ClearLock(p, lock)
		pe.BarrierAll(p)

		if pe.ID() == 0 {
			h := ntbshmem.GetScalar[int64](p, pe, 0, hits)
			th := ntbshmem.GetScalar[int64](p, pe, 0, thrown)
			estimate = 4 * float64(h) / float64(th)
			fmt.Printf("[t=%v] %d PEs threw %d darts, %d hits\n", p.Now(), pe.NumPEs(), th, h)
		}
		pe.Finalize(p)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ~= %.6f (error %.6f)\n", estimate, math.Abs(estimate-math.Pi))
	if math.Abs(estimate-math.Pi) > 0.05 {
		log.Fatal("estimate implausibly far from pi; atomics are broken")
	}
}
