// heat1d: a one-dimensional heat-diffusion stencil with halo exchange —
// the canonical PGAS workload the paper's introduction motivates.
//
// The rod is split into equal blocks, one per PE. Each iteration every PE
// updates its interior points and then exchanges boundary cells with its
// ring neighbours by putting them directly into the neighbours' halo
// slots (one-sided communication), followed by a barrier. The result is
// checked against a serial computation of the same system.
//
// Run with: go run ./examples/heat1d [-hosts N] [-cells C] [-steps S]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	ntbshmem "repro"
)

const alpha = 0.25 // diffusion coefficient (stable for the explicit scheme)

func main() {
	hosts := flag.Int("hosts", 4, "number of hosts/PEs in the ring")
	cells := flag.Int("cells", 4096, "total cells in the rod (divisible by hosts)")
	steps := flag.Int("steps", 200, "time steps")
	flag.Parse()
	if *cells%*hosts != 0 {
		log.Fatalf("cells (%d) must divide evenly among hosts (%d)", *cells, *hosts)
	}
	local := *cells / *hosts

	final := make([][]float64, *hosts)
	cfg := ntbshmem.Config{Hosts: *hosts}
	err := ntbshmem.Run(cfg, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		me, n := pe.ID(), pe.NumPEs()
		// Layout: [haloL | local cells | haloR], all symmetric.
		field := pe.MustMalloc(p, (local+2)*8)
		pe.BarrierAll(p)

		// Initial condition: a hot spike in the middle of the rod.
		u := make([]float64, local+2)
		for i := 0; i < local; i++ {
			g := me*local + i
			if g == *cells/2 {
				u[i+1] = 1000
			}
		}
		ntbshmem.LocalPut(p, pe, field, u)
		pe.BarrierAll(p)

		left := (me - 1 + n) % n
		right := (me + 1) % n
		for s := 0; s < *steps; s++ {
			ntbshmem.LocalGet(p, pe, field, u)
			// Push boundary cells into the neighbours' halos: my first
			// cell becomes left neighbour's right halo, and vice versa.
			ntbshmem.Put(p, pe, left, field+ntbshmem.SymAddr((local+1)*8), u[1:2])
			ntbshmem.Put(p, pe, right, field, u[local:local+1])
			pe.BarrierAll(p) // halos delivered

			ntbshmem.LocalGet(p, pe, field, u)
			next := make([]float64, local+2)
			copy(next, u)
			for i := 1; i <= local; i++ {
				next[i] = u[i] + alpha*(u[i-1]-2*u[i]+u[i+1])
			}
			ntbshmem.LocalPut(p, pe, field, next)
			pe.BarrierAll(p) // everyone finished the step
		}

		out := make([]float64, local+2)
		ntbshmem.LocalGet(p, pe, field, out)
		final[me] = out[1 : local+1]
		if me == 0 {
			fmt.Printf("[t=%v] %d PEs x %d cells, %d steps complete\n",
				p.Now(), n, local, *steps)
		}
		pe.Finalize(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serial reference.
	ref := make([]float64, *cells)
	ref[*cells/2] = 1000
	tmp := make([]float64, *cells)
	for s := 0; s < *steps; s++ {
		for i := range ref {
			l, r := 0.0, 0.0
			if i > 0 {
				l = ref[i-1]
			} else {
				l = ref[*cells-1] // periodic, matching the ring halos
			}
			if i < *cells-1 {
				r = ref[i+1]
			} else {
				r = ref[0]
			}
			tmp[i] = ref[i] + alpha*(l-2*ref[i]+r)
		}
		ref, tmp = tmp, ref
	}

	var maxErr, total float64
	for peID, block := range final {
		for i, v := range block {
			g := peID*local + i
			if e := math.Abs(v - ref[g]); e > maxErr {
				maxErr = e
			}
			total += v
		}
	}
	fmt.Printf("energy conserved: total=%.3f (initial 1000)\n", total)
	fmt.Printf("max deviation from serial reference: %.3e\n", maxErr)
	if maxErr > 1e-9 {
		log.Fatal("distributed stencil diverged from the serial reference")
	}
	fmt.Println("distributed result matches serial reference")
}
