// intsort: a bucketed integer sort in the style of the NAS Parallel
// Benchmarks IS kernel, which the OpenSHMEM literature the paper cites
// uses as its standard workload.
//
// Each PE generates a deterministic slice of keys, histograms them into
// per-destination buckets, exchanges bucket sizes with a Reduce, ships
// the buckets to their owners with one-sided puts flagged by
// put-with-signal, sorts its received range locally, and the PEs verify
// the global order with neighbour boundary checks plus a full serial
// cross-check at the end.
//
// Run with: go run ./examples/intsort [-hosts N] [-keys K]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	ntbshmem "repro"
)

const keyRange = 1 << 16 // keys are uniform in [0, keyRange)

func main() {
	hosts := flag.Int("hosts", 4, "number of hosts/PEs")
	keys := flag.Int("keys", 50_000, "keys per PE")
	flag.Parse()
	n := *hosts
	perPE := *keys

	// Deterministic global key set (each PE regenerates only its part).
	genKeys := func(pe int) []int32 {
		rng := rand.New(rand.NewSource(int64(pe) * 7919))
		out := make([]int32, perPE)
		for i := range out {
			out[i] = int32(rng.Intn(keyRange))
		}
		return out
	}

	sorted := make([][]int32, n)
	err := ntbshmem.Run(ntbshmem.Config{Hosts: n}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		me := pe.ID()
		mine := genKeys(me)

		// Bucket by owner: PE k owns keys in [k, k+1) * keyRange/n.
		width := keyRange / n
		buckets := make([][]int32, n)
		for _, k := range mine {
			owner := int(k) / width
			if owner >= n {
				owner = n - 1
			}
			buckets[owner] = append(buckets[owner], k)
		}

		// Exchange bucket counts: counts[src*n+dst] via fcollect.
		countsSym := pe.MustMalloc(p, n*n*4)
		myCounts := make([]int32, n)
		for d := range buckets {
			myCounts[d] = int32(len(buckets[d]))
		}
		ntbshmem.LocalPut(p, pe, countsSym+ntbshmem.SymAddr(me*n*4), myCounts)
		pe.BarrierAll(p)
		pe.FCollectBytes(p, countsSym+ntbshmem.SymAddr(me*n*4), countsSym, n*4)
		allCounts := make([]int32, n*n)
		ntbshmem.LocalGet(p, pe, countsSym, allCounts)

		// My receive area: one segment per source, at prefix offsets.
		// Allocation sizes must be identical on every PE (symmetric
		// heap), so size for the globally largest receiver — every PE
		// can compute it from the counts matrix.
		recvTotal := 0
		offs := make([]int, n)
		for src := 0; src < n; src++ {
			offs[src] = recvTotal
			recvTotal += int(allCounts[src*n+me])
		}
		maxRecv := 1
		for dst := 0; dst < n; dst++ {
			total := 0
			for src := 0; src < n; src++ {
				total += int(allCounts[src*n+dst])
			}
			if total > maxRecv {
				maxRecv = total
			}
		}
		recvSym := pe.MustMalloc(p, maxRecv*4)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p) // all receive areas allocated

		// Ship each bucket to its owner with put-with-signal; the
		// destination offset comes from the counts matrix every PE now
		// holds.
		for dst := 0; dst < n; dst++ {
			// Offset of my segment within dst's receive area.
			off := 0
			for src := 0; src < me; src++ {
				off += int(allCounts[src*n+dst])
			}
			if dst == me {
				ntbshmem.LocalPut(p, pe, recvSym+ntbshmem.SymAddr(offs[me]*4), buckets[me])
				continue
			}
			if len(buckets[dst]) == 0 {
				pe.AddInt64(p, dst, sig, 1)
				continue
			}
			target := recvSym + ntbshmem.SymAddr(off*4)
			ntbshmem.Put(p, pe, dst, target, buckets[dst])
			pe.AddInt64(p, dst, sig, 1) // ordered behind the bucket
		}
		// All n-1 remote contributions flagged in.
		pe.WaitUntilInt64(p, sig, ntbshmem.CmpGE, int64(n-1))

		got := make([]int32, recvTotal)
		ntbshmem.LocalGet(p, pe, recvSym, got)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sorted[me] = got

		// Boundary check with the right neighbour: my max <= its min.
		boundary := pe.MustMalloc(p, 4)
		pe.BarrierAll(p)
		myMin := int32(keyRange)
		if len(got) > 0 {
			myMin = got[0]
		}
		ntbshmem.PutScalar(p, pe, (me-1+n)%n, boundary, myMin)
		pe.BarrierAll(p)
		neighborMin := ntbshmem.GetScalar[int32](p, pe, me, boundary)
		if me < n-1 && len(got) > 0 && got[len(got)-1] > neighborMin {
			panic(fmt.Sprintf("pe %d max %d exceeds pe %d min %d",
				me, got[len(got)-1], me+1, neighborMin))
		}
		if me == 0 {
			fmt.Printf("[t=%v] %d PEs sorted %d keys\n", p.Now(), n, n*perPE)
		}
		pe.Finalize(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Full serial cross-check.
	var all []int32
	for pe := 0; pe < n; pe++ {
		all = append(all, genKeys(pe)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var dist []int32
	for _, s := range sorted {
		dist = append(dist, s...)
	}
	if len(dist) != len(all) {
		log.Fatalf("distributed sort has %d keys, want %d", len(dist), len(all))
	}
	for i := range all {
		if dist[i] != all[i] {
			log.Fatalf("key %d: distributed %d, serial %d", i, dist[i], all[i])
		}
	}
	fmt.Println("distributed sort matches serial reference")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
