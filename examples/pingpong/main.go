// pingpong: classic two-sided latency measurement over the send/recv
// extension, side by side with the equivalent one-sided exchange —
// the E2 comparison as a runnable program.
//
// PE 0 and the farthest PE bounce a message back and forth; the program
// prints half-round-trip latency per size for (a) tagged send/recv and
// (b) put-with-signal, showing what rendezvous costs on this fabric.
//
// Run with: go run ./examples/pingpong [-hosts N] [-reps R]
package main

import (
	"flag"
	"fmt"
	"log"

	ntbshmem "repro"
)

func main() {
	hosts := flag.Int("hosts", 2, "ring size; PE 0 bounces against PE hosts-1")
	reps := flag.Int("reps", 5, "round trips per size")
	flag.Parse()

	type row struct {
		size               int
		sendUS, oneSidedUS float64
	}
	var rows []row
	err := ntbshmem.Run(ntbshmem.Config{Hosts: *hosts}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		peer := pe.NumPEs() - 1
		me := pe.ID()
		if me != 0 && me != peer {
			return
		}
		other := peer
		if me == peer {
			other = 0
		}
		data := pe.MustMalloc(p, 512<<10)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)

		round := int64(0)
		for size := 1 << 10; size <= 512<<10; size <<= 2 {
			buf := make([]byte, size)

			// Two-sided ping-pong.
			start := p.Now()
			for r := 0; r < *reps; r++ {
				tag := int64(size + r)
				if me == 0 {
					pe.Send(p, other, tag, buf)
					pe.Recv(p, other, tag, buf)
				} else {
					pe.Recv(p, other, tag, buf)
					pe.Send(p, other, tag, buf)
				}
			}
			sendUS := float64(p.Now()-start) / 1e3 / float64(2**reps)

			// One-sided ping-pong: put-with-signal each way.
			start = p.Now()
			for r := 0; r < *reps; r++ {
				round++
				if me == 0 {
					pe.PutSignal(p, other, data, buf, sig, ntbshmem.SignalSet, round)
					pe.WaitUntilInt64(p, sig, ntbshmem.CmpGE, round)
				} else {
					pe.WaitUntilInt64(p, sig, ntbshmem.CmpGE, round)
					pe.PutSignal(p, other, data, buf, sig, ntbshmem.SignalSet, round)
				}
			}
			oneUS := float64(p.Now()-start) / 1e3 / float64(2**reps)
			if me == 0 {
				rows = append(rows, row{size, sendUS, oneUS})
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# PE0 <-> PE%d half-round-trip latency\n", *hosts-1)
	fmt.Printf("%-10s %16s %20s %8s\n", "size", "send/recv (us)", "put+signal (us)", "ratio")
	for _, r := range rows {
		fmt.Printf("%-10s %16.2f %20.2f %7.1fx\n",
			sizeLabel(r.size), r.sendUS, r.oneSidedUS, r.sendUS/r.oneSidedUS)
	}
}

func sizeLabel(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
