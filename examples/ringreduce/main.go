// ringreduce: distributed dot product and vector norms with OpenSHMEM
// reductions over the NTB ring.
//
// Each PE owns a block of two large vectors, computes its partial dot
// product and partial min/max, then combines them with Reduce — the
// shmem_TYPE_OP_to_all family — and every PE checks the collective
// results against a serially computed reference.
//
// Run with: go run ./examples/ringreduce [-hosts N] [-elems E]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	ntbshmem "repro"
)

func main() {
	hosts := flag.Int("hosts", 3, "number of hosts/PEs")
	elems := flag.Int("elems", 30_000, "elements per PE")
	flag.Parse()

	n := *hosts
	local := *elems

	// Deterministic input: x[g] = sin(g), y[g] = cos(g)/ (1+g mod 7).
	x := func(g int) float64 { return math.Sin(float64(g)) }
	y := func(g int) float64 { return math.Cos(float64(g)) / float64(1+g%7) }

	// Serial reference.
	var refDot, refMin, refMax float64
	refMin, refMax = math.Inf(1), math.Inf(-1)
	for g := 0; g < n*local; g++ {
		refDot += x(g) * y(g)
		v := x(g)
		if v < refMin {
			refMin = v
		}
		if v > refMax {
			refMax = v
		}
	}

	results := make([]struct{ dot, min, max float64 }, n)
	err := ntbshmem.Run(ntbshmem.Config{Hosts: n}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		me := pe.ID()
		partial := pe.MustMalloc(p, 8)
		dot := pe.MustMalloc(p, 8)
		mn := pe.MustMalloc(p, 8)
		mx := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)

		var pd float64
		pmin, pmax := math.Inf(1), math.Inf(-1)
		for i := 0; i < local; i++ {
			g := me*local + i
			pd += x(g) * y(g)
			if v := x(g); v < pmin {
				pmin = v
			}
			if v := x(g); v > pmax {
				pmax = v
			}
		}
		ntbshmem.LocalPut(p, pe, partial, []float64{pd})
		ntbshmem.Reduce[float64](p, pe, ntbshmem.OpSum, dot, partial, 1)
		ntbshmem.LocalPut(p, pe, partial, []float64{pmin})
		ntbshmem.Reduce[float64](p, pe, ntbshmem.OpMin, mn, partial, 1)
		ntbshmem.LocalPut(p, pe, partial, []float64{pmax})
		ntbshmem.Reduce[float64](p, pe, ntbshmem.OpMax, mx, partial, 1)

		var out [1]float64
		ntbshmem.LocalGet(p, pe, dot, out[:])
		results[me].dot = out[0]
		ntbshmem.LocalGet(p, pe, mn, out[:])
		results[me].min = out[0]
		ntbshmem.LocalGet(p, pe, mx, out[:])
		results[me].max = out[0]
		if me == 0 {
			fmt.Printf("[t=%v] reduced over %d PEs x %d elements\n", p.Now(), n, local)
		}
		pe.Finalize(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	for me, r := range results {
		if math.Abs(r.dot-refDot) > 1e-6*math.Abs(refDot) {
			log.Fatalf("PE %d dot=%v, reference %v", me, r.dot, refDot)
		}
		if r.min != refMin || r.max != refMax {
			log.Fatalf("PE %d min/max = %v/%v, reference %v/%v", me, r.min, r.max, refMin, refMax)
		}
	}
	fmt.Printf("dot = %.9f, min = %.6f, max = %.6f — all PEs agree with the serial reference\n",
		refDot, refMin, refMax)
}
