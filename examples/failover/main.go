// failover: link-failure detection on the switchless ring.
//
// NTB's historical role — the paper notes — was "mainly to check
// connected host processors such as with heartbeating". This example
// runs heartbeats on every cable of the ring, yanks one cable mid-run,
// and shows (a) both endpoints of the dead cable detecting the loss
// within a bounded number of intervals, and (b) traffic that avoids the
// dead segment still flowing under shortest-arc routing.
//
// Run with: go run ./examples/failover [-hosts N]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	ntbshmem "repro"
)

func main() {
	hosts := flag.Int("hosts", 4, "ring size")
	flag.Parse()

	job := ntbshmem.NewJob(ntbshmem.Config{Hosts: *hosts, Routing: ntbshmem.RouteShortest})
	sim := job.Cluster.Sim

	interval := 200 * ntbshmem.Duration(1000) // 200us in virtual ns
	var detections []string
	job.StartHeartbeats(interval, 3, func(host int, side string) {
		detections = append(detections,
			fmt.Sprintf("[t=%v] host %d: %s cable lost", sim.Now(), host, side))
	})

	var delivered string
	job.World.Launch(func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		sym := pe.MustMalloc(p, 32)
		pe.BarrierAll(p) // everyone is quiescent before the fault
		if pe.ID() != 1 {
			return
		}
		fmt.Printf("[t=%v] operator: cutting the cable between host 1 and host 2\n", p.Now())
		job.CutLink(1)
		// Give the heartbeat monitors time to notice, then keep working
		// around the hole: host 0 is still reachable leftward.
		p.Sleep(3_000_000)
		pe.PutBytes(p, 0, sym, []byte("still alive via the left arc!!!!"))
		buf := make([]byte, 32)
		pe.GetBytes(p, 0, sym, buf)
		delivered = string(buf)
		fmt.Printf("[t=%v] host 1 round-tripped through host 0: %q\n", p.Now(), delivered)
	})

	// Heartbeats run forever; bound the run explicitly.
	if err := sim.RunUntil(ntbshmem.Time(30_000_000)); err != nil {
		log.Fatal(err)
	}

	sort.Strings(detections)
	for _, d := range detections {
		fmt.Println(d)
	}
	switch {
	case len(detections) != 2:
		log.Fatalf("expected exactly 2 endpoint detections (both ends of one cable), got %d", len(detections))
	case delivered == "":
		log.Fatal("post-failure traffic never completed")
	default:
		fmt.Println("failure detected on both ends; traffic rerouted around the dead segment")
	}
}
