// matmul: distributed dense matrix multiplication with ring rotation —
// the classic 1D-SUMMA pattern on the switchless NTB ring.
//
// A and B are row-striped across the PEs. Each of the N steps multiplies
// the local A panel against the B stripe currently held, then rotates
// the stripe one hop around the ring with a one-sided put into the
// neighbour's receive buffer, using put-with-signal for the handoff.
// The distributed product is checked against a serial multiplication.
//
// Run with: go run ./examples/matmul [-hosts N] [-dim M]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	ntbshmem "repro"
)

var le = binary.LittleEndian

func main() {
	hosts := flag.Int("hosts", 3, "number of hosts/PEs")
	dim := flag.Int("dim", 48, "matrix dimension (divisible by hosts)")
	flag.Parse()
	n, m := *hosts, *dim
	if m%n != 0 {
		log.Fatalf("dim (%d) must be divisible by hosts (%d)", m, n)
	}
	mb := m / n // stripe height

	// Deterministic inputs.
	rng := rand.New(rand.NewSource(2026))
	A := make([]float64, m*m)
	B := make([]float64, m*m)
	for i := range A {
		A[i] = rng.Float64()*2 - 1
		B[i] = rng.Float64()*2 - 1
	}

	// Serial reference.
	ref := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			a := A[i*m+k]
			for j := 0; j < m; j++ {
				ref[i*m+j] += a * B[k*m+j]
			}
		}
	}

	C := make([]float64, m*m) // gathered distributed result
	err := ntbshmem.Run(ntbshmem.Config{Hosts: n}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		me := pe.ID()
		stripeElems := mb * m
		next := pe.MustMalloc(p, stripeElems*8) // B stripe arriving
		sig := pe.MustMalloc(p, 8)              // arrival signal
		pe.BarrierAll(p)

		// Local panels.
		aLocal := A[me*mb*m : (me+1)*mb*m]
		cLocal := make([]float64, stripeElems)
		bStripe := make([]float64, stripeElems)
		copy(bStripe, B[me*mb*m:(me+1)*mb*m])

		left := (me - 1 + n) % n
		for step := 0; step < n; step++ {
			owner := (me + step) % n // whose B stripe we hold
			// cLocal += A[:, owner block] * stripe.
			for i := 0; i < mb; i++ {
				for k := 0; k < mb; k++ {
					a := aLocal[i*m+owner*mb+k]
					for j := 0; j < m; j++ {
						cLocal[i*m+j] += a * bStripe[k*m+j]
					}
				}
			}
			if step == n-1 {
				break
			}
			// Rotate: hand the stripe to the left neighbour and await
			// the one arriving from the right, flagged by its signal.
			buf := make([]byte, stripeElems*8)
			for i, v := range bStripe {
				le.PutUint64(buf[8*i:], math.Float64bits(v))
			}
			pe.PutSignal(p, left, next, buf, sig, ntbshmem.SignalAdd, 1)
			pe.WaitUntilInt64(p, sig, ntbshmem.CmpGE, int64(step+1))
			ntbshmem.LocalGet(p, pe, next, bStripe)
			pe.BarrierAll(p) // next is drained; safe to reuse as a target
		}
		// Gather C stripes at PE 0's address space via fcollect-style puts.
		cSym := pe.MustMalloc(p, m*m*8)
		pe.BarrierAll(p)
		if me == 0 {
			ntbshmem.LocalPut(p, pe, cSym, cLocal)
		} else {
			ntbshmem.Put(p, pe, 0, cSym+ntbshmem.SymAddr(me*stripeElems*8), cLocal)
		}
		pe.BarrierAll(p)
		if me == 0 {
			ntbshmem.LocalGet(p, pe, cSym, C)
			fmt.Printf("[t=%v] %dx%d matmul across %d PEs complete\n", p.Now(), m, m, n)
		}
		pe.Finalize(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	var maxErr float64
	for i := range ref {
		if e := math.Abs(C[i] - ref[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max |distributed - serial| = %.3e\n", maxErr)
	if maxErr > 1e-9 {
		log.Fatal("distributed matmul diverged from serial reference")
	}
	fmt.Println("distributed result matches serial reference")
}
