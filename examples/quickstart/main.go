// Quickstart: the smallest complete ntbshmem program.
//
// Three hosts joined by the switchless PCIe NTB ring each run one PE.
// PE 0 puts a greeting into every PE's symmetric buffer, everyone
// synchronises with the paper's ring barrier, and each PE reads its copy
// back — the put/get/barrier triad of Table I.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ntbshmem "repro"
)

func main() {
	cfg := ntbshmem.Config{Hosts: 3}
	err := ntbshmem.Run(cfg, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		// Symmetric allocation: same address on every PE.
		msg := pe.MustMalloc(p, 64)
		count := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)

		if pe.ID() == 0 {
			for target := 1; target < pe.NumPEs(); target++ {
				text := fmt.Sprintf("hello PE %d from PE 0 over PCIe NTB", target)
				buf := make([]byte, 64)
				copy(buf, text)
				pe.PutBytes(p, target, msg, buf)
			}
		}
		// Everyone bumps a shared counter on PE 0 with a remote atomic.
		pe.IncInt64(p, 0, count)
		pe.BarrierAll(p)

		if pe.ID() != 0 {
			buf := make([]byte, 64)
			pe.LocalRead(p, msg, buf)
			fmt.Printf("[t=%v] PE %d received: %q\n", p.Now(), pe.ID(), trim(buf))
		} else {
			n := ntbshmem.GetScalar[int64](p, pe, 0, count)
			fmt.Printf("[t=%v] PE 0 counter after atomics: %d\n", p.Now(), n)
		}
		pe.Finalize(p)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
