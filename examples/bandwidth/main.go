// bandwidth: an OSU-microbenchmark-style sweep over the public API —
// put and get latency/bandwidth between PE 0 and a chosen target, for
// message sizes 1KB-512KB, in DMA or memcpy mode.
//
// This is the same measurement the Fig 9 harness performs, expressed as
// a user program against the public API rather than the internal bench
// package.
//
// Run with: go run ./examples/bandwidth [-hosts N] [-target T] [-mode dma|memcpy]
package main

import (
	"flag"
	"fmt"
	"log"

	ntbshmem "repro"
)

func main() {
	hosts := flag.Int("hosts", 3, "number of hosts/PEs")
	target := flag.Int("target", 1, "PE that PE 0 talks to")
	mode := flag.String("mode", "dma", "transfer mode: dma or memcpy")
	pipeline := flag.Int("pipeline", 0, "link pipeline depth (0 = paper's stop-and-wait)")
	reps := flag.Int("reps", 10, "repetitions per size")
	flag.Parse()
	if *target <= 0 || *target >= *hosts {
		log.Fatalf("target must be in [1, %d)", *hosts)
	}
	m := ntbshmem.ModeDMA
	if *mode == "memcpy" {
		m = ntbshmem.ModeCPU
	}

	type row struct {
		size           int
		putUS, getUS   float64
		putMBs, getMBs float64
	}
	var rows []row
	err := ntbshmem.Run(ntbshmem.Config{Hosts: *hosts, Mode: m, Pipeline: *pipeline}, func(p *ntbshmem.Proc, pe *ntbshmem.PE) {
		sym := pe.MustMalloc(p, 512<<10)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			for size := 1 << 10; size <= 512<<10; size <<= 1 {
				buf := make([]byte, size)
				start := p.Now()
				for r := 0; r < *reps; r++ {
					pe.PutBytes(p, *target, sym, buf)
				}
				putUS := float64(p.Now()-start) / 1e3 / float64(*reps)
				start = p.Now()
				for r := 0; r < *reps; r++ {
					pe.GetBytes(p, *target, sym, buf)
				}
				getUS := float64(p.Now()-start) / 1e3 / float64(*reps)
				rows = append(rows, row{
					size:   size,
					putUS:  putUS,
					getUS:  getUS,
					putMBs: float64(size) / putUS,
					getMBs: float64(size) / getUS,
				})
			}
		}
		pe.BarrierAll(p)
		pe.Finalize(p)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# PE0 -> PE%d (%d hops rightward), mode %s, pipeline %d\n",
		*target, *target, *mode, *pipeline)
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "size", "put-lat(us)", "get-lat(us)", "put(MB/s)", "get(MB/s)")
	for _, r := range rows {
		fmt.Printf("%-10s %12.2f %12.2f %12.2f %12.2f\n",
			label(r.size), r.putUS, r.getUS, r.putMBs, r.getMBs)
	}
}

func label(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
