package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// tracedRun runs a small shmem workload with a recorder attached and
// returns the recorder and the final virtual time.
func tracedRun(t *testing.T) (*Recorder, sim.Time) {
	t.Helper()
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := New()
	rec.Attach(c)
	w := core.NewWorld(c, core.Options{})
	err = w.Run(func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 64<<10)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym, make([]byte, 64<<10))
			pe.PutBytes(p, 2, sym, make([]byte, 32<<10))
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, s.Now()
}

func TestRecorderCapturesProtocolTraffic(t *testing.T) {
	rec, _ := tracedRun(t)
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	var dmaBytes int64
	var rings, spads int
	for _, e := range rec.Events() {
		switch e.Cat {
		case "dma":
			dmaBytes += int64(e.Bytes)
			if e.Dur <= 0 {
				t.Fatal("dma event without duration")
			}
		case "doorbell":
			if e.Name == "ring" {
				rings++
			}
		case "spad":
			spads++
		}
	}
	// 96 KiB of puts plus the 2-hop relay of the 32 KiB one.
	if dmaBytes < 96<<10 {
		t.Fatalf("dma bytes = %d, want >= 96KiB", dmaBytes)
	}
	if rings == 0 || spads == 0 {
		t.Fatalf("rings=%d spads=%d; protocol register traffic missing", rings, spads)
	}
}

func TestSummaryAggregates(t *testing.T) {
	rec, _ := tracedRun(t)
	sum := rec.Summary()
	if len(sum) == 0 {
		t.Fatal("empty summary")
	}
	// h0.right carries both puts' first hops: 96 KiB min.
	var h0right *PortSummary
	for i := range sum {
		if sum[i].Port == "h0.right" {
			h0right = &sum[i]
		}
	}
	if h0right == nil {
		t.Fatalf("h0.right missing from summary: %+v", sum)
	}
	if h0right.DMABytes < 96<<10 || h0right.DMAXfers < 2 {
		t.Fatalf("h0.right summary off: %+v", *h0right)
	}
	if h0right.DoorbellRings == 0 || h0right.SpadAccesses == 0 {
		t.Fatalf("h0.right register traffic missing: %+v", *h0right)
	}
	tbl := rec.Table()
	if !strings.Contains(tbl, "h0.right") || !strings.Contains(tbl, "dma-bytes") {
		t.Fatalf("table rendering broken:\n%s", tbl)
	}
}

func TestUtilizationBounded(t *testing.T) {
	rec, end := tracedRun(t)
	u := rec.Utilization("h0.right", end)
	if u <= 0 || u >= 1 {
		t.Fatalf("utilization = %f, want within (0,1)", u)
	}
	if rec.Utilization("h0.right", 0) != 0 {
		t.Fatal("zero horizon should yield zero utilization")
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	rec, _ := tracedRun(t)
	var buf bytes.Buffer
	if err := rec.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != rec.Len() {
		t.Fatalf("JSON has %d events, recorder %d", len(events), rec.Len())
	}
	sawComplete := false
	for _, e := range events {
		ph := e["ph"].(string)
		if ph == "X" {
			sawComplete = true
			if e["dur"].(float64) <= 0 {
				t.Fatal("complete event without duration")
			}
		}
		if e["ts"].(float64) < 0 {
			t.Fatal("negative timestamp")
		}
	}
	if !sawComplete {
		t.Fatal("no duration events in trace")
	}
}

func TestReset(t *testing.T) {
	rec, _ := tracedRun(t)
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("reset did not clear events")
	}
}

func TestOpRecorder(t *testing.T) {
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld(c, core.Options{})
	rec := NewOpRecorder()
	w.SetOpTrace(rec.OpHook())
	err = w.Run(func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 8192)
		ctr := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym, make([]byte, 8192))
			pe.GetBytes(p, 2, sym, make([]byte, 100))
			pe.FetchAddInt64(p, 1, ctr, 1)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no operations recorded")
	}
	byOp := map[string]OpSummary{}
	for _, sm := range rec.Summary() {
		byOp[sm.Op] = sm
	}
	if byOp["put"].Count != 1 || byOp["put"].Bytes != 8192 {
		t.Fatalf("put summary: %+v", byOp["put"])
	}
	if byOp["get"].Count != 1 || byOp["get"].Bytes != 100 {
		t.Fatalf("get summary: %+v", byOp["get"])
	}
	if byOp["amo"].Count != 1 {
		t.Fatalf("amo summary: %+v", byOp["amo"])
	}
	// init barrier + 2 explicit x 3 PEs = 9
	if byOp["barrier"].Count != 9 {
		t.Fatalf("barrier count = %d, want 9", byOp["barrier"].Count)
	}
	if byOp["get"].MeanUS <= byOp["put"].MeanUS {
		t.Fatal("get ops should be slower than put ops")
	}
	tbl := rec.Table()
	if !strings.Contains(tbl, "barrier") || !strings.Contains(tbl, "mean(us)") {
		t.Fatalf("op table malformed:\n%s", tbl)
	}
}

func TestTraceUnderPipelinedProtocol(t *testing.T) {
	// The device recorder and op recorder must keep working when the
	// pipelined link protocol replaces the scratchpad path.
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := New()
	rec.Attach(c)
	w := core.NewWorld(c, core.Options{Pipeline: 4})
	ops := NewOpRecorder()
	w.SetOpTrace(ops.OpHook())
	err = w.Run(func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 128<<10)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym, make([]byte, 128<<10))
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	var dmaBytes int64
	var spads int
	for _, e := range rec.Events() {
		if e.Cat == "dma" {
			dmaBytes += int64(e.Bytes)
		}
		if e.Cat == "spad" {
			spads++
		}
	}
	// Headers ride the window, so DMA bytes exceed the payload and the
	// data path produces no scratchpad traffic (only the boot exchange).
	if dmaBytes <= 128<<10 {
		t.Fatalf("dma bytes = %d, want > payload (headers in window)", dmaBytes)
	}
	if spads > 20 {
		t.Fatalf("pipelined run produced %d spad accesses; data path should not use them", spads)
	}
	if ops.Len() == 0 {
		t.Fatal("op recorder missed the workload")
	}
}
