package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// OpRecorder aggregates application-level operation events from a
// core.World (install with world.SetOpTrace(rec.OpHook())) into per-kind
// statistics: the workload-facing complement to the device-level
// Recorder.
type OpRecorder struct {
	events []core.OpEvent
}

// NewOpRecorder returns an empty operation recorder.
func NewOpRecorder() *OpRecorder { return &OpRecorder{} }

// OpHook returns the hook to install with World.SetOpTrace.
func (r *OpRecorder) OpHook() func(core.OpEvent) {
	return func(e core.OpEvent) { r.events = append(r.events, e) }
}

// Events returns the recorded operations in completion order.
func (r *OpRecorder) Events() []core.OpEvent { return r.events }

// Len reports the number of recorded operations.
func (r *OpRecorder) Len() int { return len(r.events) }

// OpSummary aggregates one operation kind.
type OpSummary struct {
	Op     string
	Count  int64
	Bytes  int64
	Total  sim.Duration
	Max    sim.Duration
	MeanUS float64
}

// Summary aggregates per operation kind, sorted by kind.
func (r *OpRecorder) Summary() []OpSummary {
	agg := map[string]*OpSummary{}
	for _, e := range r.events {
		s := agg[e.Op]
		if s == nil {
			s = &OpSummary{Op: e.Op}
			agg[e.Op] = s
		}
		s.Count++
		s.Bytes += int64(e.Bytes)
		s.Total += e.Dur
		if e.Dur > s.Max {
			s.Max = e.Dur
		}
	}
	out := make([]OpSummary, 0, len(agg))
	//ntblint:ordered — collection order is normalised by the sort below
	for _, s := range agg {
		s.MeanUS = s.Total.Microseconds() / float64(s.Count)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// Table renders the operation summary.
func (r *OpRecorder) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %12s\n", "op", "count", "bytes", "mean(us)", "max(us)")
	for _, s := range r.Summary() {
		fmt.Fprintf(&b, "%-10s %8d %12d %12.2f %12.2f\n",
			s.Op, s.Count, s.Bytes, s.MeanUS, s.Max.Microseconds())
	}
	return b.String()
}
