package trace

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// capture runs a fixed mixed workload on a fresh world and returns every
// rendered view of the recording: the raw device timeline as Chrome
// JSON, the per-port summary table, and the per-operation summary table.
func capture(t *testing.T, pipeline int) (chrome []byte, devTable, opTable string) {
	t.Helper()
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := New()
	rec.Attach(c)
	ops := NewOpRecorder()
	w := core.NewWorld(c, core.Options{Pipeline: pipeline})
	w.SetOpTrace(ops.OpHook())
	err = w.Run(func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 64<<10)
		ctr := pe.MustMalloc(p, 8)
		buf := make([]byte, 64<<10)
		pe.BarrierAll(p)
		target := (pe.ID() + 1) % pe.NumPEs()
		pe.PutBytes(p, target, sym, buf)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.GetBytes(p, pe.NumPEs()-1, sym, buf[:4<<10])
			pe.FetchAddInt64(p, 1, ctr, 1)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := rec.WriteChromeJSON(&js); err != nil {
		t.Fatal(err)
	}
	return js.Bytes(), rec.Table(), ops.Table()
}

// TestTraceStableAcrossRuns is the determinism gate for the trace
// package: two identical runs in the same process must render
// byte-identical output — the full event timeline, not just aggregates.
// Any map-iteration order or wall-clock leak into the recording or its
// renderers shows up here as a diff.
func TestTraceStableAcrossRuns(t *testing.T) {
	for _, pipeline := range []int{0, 4} {
		js1, dev1, op1 := capture(t, pipeline)
		js2, dev2, op2 := capture(t, pipeline)
		if !bytes.Equal(js1, js2) {
			t.Errorf("pipeline=%d: Chrome JSON timelines differ between identical runs", pipeline)
		}
		if dev1 != dev2 {
			t.Errorf("pipeline=%d: device summary tables differ:\n--- run 1\n%s--- run 2\n%s", pipeline, dev1, dev2)
		}
		if op1 != op2 {
			t.Errorf("pipeline=%d: op summary tables differ:\n--- run 1\n%s--- run 2\n%s", pipeline, op1, op2)
		}
	}
}
