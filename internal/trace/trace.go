// Package trace collects device-level events from the simulated fabric
// (DMA transfers, programmed I/O, doorbell rings and deliveries,
// scratchpad accesses) and renders them as per-port summaries or as a
// Chrome-trace JSON timeline (load chrome://tracing or Perfetto and drop
// the file in).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/fabric"
	"repro/internal/ntb"
	"repro/internal/sim"
)

// Recorder accumulates trace events. Attach it to a cluster before
// running; it is not safe to mutate while the simulation executes except
// through the hook itself (which the kernel serialises).
type Recorder struct {
	events []ntb.TraceEvent
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Hook returns the device hook to install with Port.SetTrace.
func (r *Recorder) Hook() ntb.TraceFunc {
	return func(e ntb.TraceEvent) { r.events = append(r.events, e) }
}

// Attach installs the recorder on every cabled port of the cluster.
func (r *Recorder) Attach(c *fabric.Cluster) {
	for _, h := range c.Hosts {
		if h.Left != nil {
			h.Left.SetTrace(r.Hook())
		}
		if h.Right != nil {
			h.Right.SetTrace(r.Hook())
		}
	}
}

// Events returns the recorded events in emission order.
func (r *Recorder) Events() []ntb.TraceEvent { return r.events }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards all recorded events.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// PortSummary aggregates one port's activity.
type PortSummary struct {
	Port          string
	DMABytes      int64
	DMAXfers      int64
	DMABusy       sim.Duration
	PIOBytes      int64
	PIOXfers      int64
	DoorbellRings int64
	SpadAccesses  int64
}

// Summary aggregates the recording per port, sorted by port name.
func (r *Recorder) Summary() []PortSummary {
	byPort := map[string]*PortSummary{}
	get := func(port string) *PortSummary {
		s := byPort[port]
		if s == nil {
			s = &PortSummary{Port: port}
			byPort[port] = s
		}
		return s
	}
	for _, e := range r.events {
		s := get(e.Port)
		switch e.Cat {
		case "dma":
			s.DMABytes += int64(e.Bytes)
			s.DMAXfers++
			s.DMABusy += e.Dur
		case "pio":
			s.PIOBytes += int64(e.Bytes)
			s.PIOXfers++
		case "doorbell":
			if e.Name == "ring" {
				s.DoorbellRings++
			}
		case "spad":
			s.SpadAccesses++
		}
	}
	out := make([]PortSummary, 0, len(byPort))
	//ntblint:ordered — collection order is normalised by the sort below
	for _, s := range byPort {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

// Utilization returns a port's DMA engine busy fraction over [0, end].
func (r *Recorder) Utilization(port string, end sim.Time) float64 {
	if end <= 0 {
		return 0
	}
	var busy sim.Duration
	for _, e := range r.events {
		if e.Port == port && e.Cat == "dma" {
			busy += e.Dur
		}
	}
	return float64(busy) / float64(end)
}

// Table renders the summary as an aligned text table.
func (r *Recorder) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %8s %12s %10s %8s %8s\n",
		"port", "dma-bytes", "xfers", "dma-busy", "pio-bytes", "rings", "spads")
	for _, s := range r.Summary() {
		fmt.Fprintf(&b, "%-12s %12d %8d %12s %10d %8d %8d\n",
			s.Port, s.DMABytes, s.DMAXfers, s.DMABusy, s.PIOBytes, s.DoorbellRings, s.SpadAccesses)
	}
	return b.String()
}

// chromeEvent is the Chrome trace-event JSON schema (subset).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   string         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeJSON serders the recording as a Chrome trace-event array.
// Durations become complete ("X") events; instants become "i" events.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	out := make([]chromeEvent, 0, len(r.events))
	for _, e := range r.events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   e.T.Microseconds(),
			PID:  1,
			TID:  e.Port,
		}
		if e.Bytes > 0 {
			ce.Args = map[string]any{"bytes": e.Bytes}
		}
		if e.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = e.Dur.Microseconds()
			// The duration event's timestamp is its start.
			ce.TS = (e.T - sim.Time(e.Dur)).Microseconds()
		} else {
			ce.Phase = "i"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
