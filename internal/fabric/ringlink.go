package fabric

import (
	"fmt"
	"strconv"

	"repro/internal/driver"
	"repro/internal/ntb"
	"repro/internal/sim"
)

// ringLink is the reference backend: one host's attachment to the
// paper's switchless NTB ring. It owns the Fig 5 service thread, the
// bypass-buffer forwarder, rightward/shortest-arc routing, and the Fig 6
// doorbell barrier. Every results/*.csv is produced over this link, so
// its virtual timeline is the extraction invariant: daemon names, spawn
// order, sleeps, and per-chunk work are exactly what the pre-extraction
// runtime did.
type ringLink struct {
	c       *Cluster    // reset: keep; snap: keep — construction identity
	host    *Host       // reset: keep; snap: keep — construction identity
	opts    LinkOptions // reset: keep; snap: keep — construction identity
	deliver Handler     // reset: keep; snap: keep — installed handler survives recycling and forking

	// Service path (Fig 5).
	svcQ      *sim.Queue[*ntb.Port] // reset: keep; snap: keep — AssertQuiescent guarantees it drained
	svcActive bool                  // reset: keep; snap: keep — AssertQuiescent guarantees false (service drained)
	svcIdle   *sim.Cond             // reset: keep; snap: keep — no waiters survive a clean run
	fwdQ      *sim.Queue[*fwdMsg]   // reset: keep; snap: keep — AssertQuiescent guarantees it drained
	fwdBusy   int                   // reset: keep; snap: keep — AssertQuiescent guarantees zero
	fwdIdle   *sim.Cond             // reset: keep; snap: keep — no waiters survive a clean run
	pool      bufPool               // reset: keep; snap: keep — warm staging buffers hold no simulation state

	// Link senders: the paper's stop-and-wait TxChannels or pipelined
	// PipeTx, per LinkOptions.Pipeline; rx state exists only pipelined.
	txLeft, txRight driver.Sender // PipeTx reset here; TxChannel reset by Cluster.Reset
	rxLeft, rxRight *driver.PipeRx

	// Per-port ack thunks, built once in Start: dispatch passes its ack
	// through the indirect deliver handler, so a closure literal built
	// in serve's loop escapes — one heap allocation per message on the
	// BenchmarkWorldPut1M hot path. Caching the two possible closures
	// keeps the service loop allocation-free.
	ackLeft, ackRight func(*sim.Proc) // reset: keep; snap: keep — construction identity, no simulation state
	relLeft, relRight func(*sim.Proc) // reset: keep; snap: keep — construction identity, no simulation state

	// Ring barrier tokens (Fig 6): one queue pair per travel direction
	// (rightward tokens arrive on the left port and vice versa).
	startQ, endQ   *sim.Queue[struct{}] // reset: keep; snap: keep — AssertQuiescent guarantees them drained
	startQL, endQL *sim.Queue[struct{}] // reset: keep; snap: keep — AssertQuiescent guarantees them drained

	stats LinkStats
}

// hostName builds "prefix<id>" with plain integer formatting; link
// construction names several queues and conds per host, and at a
// thousand hosts fmt's reflection cost shows up in pool-miss latency.
func hostName(prefix string, id int) string {
	return prefix + strconv.Itoa(id)
}

func newRingLink(c *Cluster, h *Host, opts LinkOptions) *ringLink {
	l := &ringLink{
		c:       c,
		host:    h,
		opts:    opts,
		svcQ:    sim.NewQueue[*ntb.Port](hostName("svc:", h.ID)),
		svcIdle: sim.NewCond(hostName("svc-idle:", h.ID)),
		fwdQ:    sim.NewQueue[*fwdMsg](hostName("fwd:", h.ID)),
		fwdIdle: sim.NewCond(hostName("fwd-idle:", h.ID)),
		startQ:  sim.NewQueue[struct{}](hostName("barrier-start:", h.ID)),
		endQ:    sim.NewQueue[struct{}](hostName("barrier-end:", h.ID)),
		startQL: sim.NewQueue[struct{}](hostName("barrier-start-left:", h.ID)),
		endQL:   sim.NewQueue[struct{}](hostName("barrier-end-left:", h.ID)),
		pool:    bufPool{par: c.Par},
	}
	// Pick the link protocol. NewPipeTx re-registers the ACK vector that
	// the fabric-built stop-and-wait channels claimed, retiring them.
	if depth := opts.Pipeline; depth >= 2 {
		l.txLeft = driver.NewPipeTx(h.LeftEP, c.Par, depth)
		l.txRight = driver.NewPipeTx(h.RightEP, c.Par, depth)
		l.rxLeft = driver.NewPipeRx(h.Left, c.Par, depth)
		l.rxRight = driver.NewPipeRx(h.Right, c.Par, depth)
	} else {
		l.txLeft = h.TxLeft
		l.txRight = h.TxRight
	}
	return l
}

// Start wires doorbell vectors and spawns the service and forwarder
// threads (the paper's shmem_init steps 2 and 4).
func (l *ringLink) Start(deliver Handler) {
	l.deliver = deliver
	dataVec := func(port *ntb.Port) func() {
		return func() {
			l.stats.Interrupts++
			l.svcQ.Push(port)
		}
	}
	for _, ep := range []*driver.Endpoint{l.host.LeftEP, l.host.RightEP} {
		if ep == nil {
			continue
		}
		ep.Handle(driver.VecPut, dataVec(ep.Port))
		ep.Handle(driver.VecGet, dataVec(ep.Port))
	}
	// Rightward-travelling barrier tokens arrive on the left-side
	// adapter (host 0's left adapter faces host N-1); leftward tokens —
	// used by the bidirectional flush under shortest-path routing —
	// arrive on the right-side adapter.
	l.host.LeftEP.Handle(driver.VecBarrierStart, func() {
		l.stats.Interrupts++
		l.startQ.Push(struct{}{})
	})
	l.host.LeftEP.Handle(driver.VecBarrierEnd, func() {
		l.stats.Interrupts++
		l.endQ.Push(struct{}{})
	})
	l.host.RightEP.Handle(driver.VecBarrierStart, func() {
		l.stats.Interrupts++
		l.startQL.Push(struct{}{})
	})
	l.host.RightEP.Handle(driver.VecBarrierEnd, func() {
		l.stats.Interrupts++
		l.endQL.Push(struct{}{})
	})
	if left := l.host.Left; left != nil {
		l.ackLeft = func(pp *sim.Proc) { driver.Ack(pp, left) }
	}
	if right := l.host.Right; right != nil {
		l.ackRight = func(pp *sim.Proc) { driver.Ack(pp, right) }
	}
	if l.rxLeft != nil {
		l.relLeft = l.rxLeft.Release
	}
	if l.rxRight != nil {
		l.relRight = l.rxRight.Release
	}
	l.host.Sim.GoDaemon(fmt.Sprintf("shmem-svc:%d", l.host.ID), l.serve)
	l.host.Sim.GoDaemon(fmt.Sprintf("shmem-fwd:%d", l.host.ID), l.forward)
}

// Boot runs the paper's pre-setup exchange and validates discovery
// against the built topology.
func (l *ringLink) Boot(p *sim.Proc) {
	left, right := l.host.Boot(p)
	if left != l.host.LeftNeighbor() || right != l.host.RightNeighbor() {
		panic(fmt.Sprintf("fabric: host %d discovered neighbours (%d, %d), topology says (%d, %d)",
			l.host.ID, left, right, l.host.LeftNeighbor(), l.host.RightNeighbor()))
	}
}

// serve is the per-host service thread of Fig 5. It sleeps until a
// DMAPUT/DMAGET doorbell queues work, pays the thread wake-up cost, and
// dispatches: under the paper's protocol it reads the transfer
// information from the scratchpads and handles one message; under the
// pipelined protocol it drains every in-order slot the doorbell (or a
// coalesced batch of doorbells) announced.
func (l *ringLink) serve(p *sim.Proc) {
	for {
		port, ok := l.svcQ.TryPop()
		if !ok {
			l.setSvcActive(false)
			port = l.svcQ.Pop(p)
			p.Sleep(l.c.Par.ServiceWake)
		}
		l.setSvcActive(true)
		p.Sleep(l.c.Par.ISRCost)
		if rx := l.rxFor(port); rx != nil {
			rel := l.relRight
			if rx == l.rxLeft {
				rel = l.relLeft
			}
			for {
				info, payload, ready := rx.Next(p)
				if !ready {
					break
				}
				l.dispatch(p, info, payload, rel)
			}
			continue
		}
		info := driver.ReadInfo(p, port)
		payload := port.Inbound(info.Region)[:info.Size]
		ack := l.ackRight
		if port == l.host.Left {
			ack = l.ackLeft
		}
		l.dispatch(p, info, payload, ack)
	}
}

// rxFor returns the pipelined receiver for a port, or nil under the
// stop-and-wait protocol.
func (l *ringLink) rxFor(port *ntb.Port) *driver.PipeRx {
	switch port {
	case l.host.Left:
		return l.rxLeft
	case l.host.Right:
		return l.rxRight
	}
	return nil
}

// setSvcActive tracks whether the service thread is mid-message, for
// the barrier's inbound-drain wait.
func (l *ringLink) setSvcActive(active bool) {
	l.svcActive = active
	if !active {
		l.svcIdle.Broadcast()
	}
}

// dispatch routes one arrived message: transit chunks are staged and
// relayed ("bypass data via transfer buffer", Fig 4), chunks addressed
// here go up to the runtime's handler.
func (l *ringLink) dispatch(p *sim.Proc, info driver.Info, payload []byte, ack func(*sim.Proc)) {
	if int(info.Dst) != l.host.ID {
		// Not for me: stage the payload, release the upstream link, and
		// queue the chunk for relay.
		var data []byte
		if info.Size > 0 {
			data = l.pool.get(int(info.Size))
			p.Sleep(sim.BytesAt(int(info.Size), l.c.Par.MemcpyBW))
			copy(data, payload)
		}
		ack(p)
		l.enqueueForward(info, data)
		return
	}
	l.deliver(p, info, payload, ack)
}

// enqueueForward hands a message to the forwarder thread. Callable from
// process or scheduler context.
func (l *ringLink) enqueueForward(info driver.Info, data []byte) {
	l.fwdBusy++
	l.fwdQ.Push(&fwdMsg{info: info, data: data})
}

// forward is the relay half of the service path: it pushes staged chunks
// one hop onward in their recorded direction. Relays are stop-and-wait
// like first-hop sends, but the unbounded staging queue decouples them
// from upstream ACKs, so rings cannot deadlock on store-and-forward
// cycles.
func (l *ringLink) forward(p *sim.Proc) {
	for {
		m, ok := l.fwdQ.TryPop()
		if !ok {
			m = l.fwdQ.Pop(p)
			p.Sleep(l.c.Par.ServiceWake)
		}
		tx, nextHop := l.txToward(m.info.Dir)
		info := m.info
		info.Region = l.regionFor(int(info.Dst), nextHop)
		tx.SendChunk(p, info, driver.Payload{Buf: m.data, N: len(m.data)}, l.opts.Mode)
		if m.data != nil {
			l.pool.put(m.data)
		}
		l.stats.ChunksForwarded++
		l.fwdBusy--
		if l.fwdBusy == 0 {
			l.fwdIdle.Broadcast()
		}
	}
}

// Send routes one first-hop chunk: pick the travel direction at the
// origin, the transmit channel for it, and the inbound region at the
// next hop, then push the chunk stop-and-wait (or into a pipe slot).
func (l *ringLink) Send(p *sim.Proc, info driver.Info, payload driver.Payload) {
	dir := l.dirTo(int(info.Dst))
	tx, nextHop := l.txToward(dir)
	info.Dir = dir
	info.Region = l.regionFor(int(info.Dst), nextHop)
	tx.SendChunk(p, info, payload, l.opts.Mode)
}

// Reply sends a response back the way the request came: get replies and
// AMO replies retrace the request path leftward (or rightward, under
// shortest-arc routing of the request). The reply is staged on the
// forwarder so the service thread never blocks on a transmit channel —
// two hosts replying to each other simultaneously would deadlock.
func (l *ringLink) Reply(p *sim.Proc, orig driver.Info, reply driver.Info, data []byte) {
	reply.Dir = oppositeDir(orig.Dir)
	l.enqueueForward(reply, data)
}

// drainForwarder blocks until every staged chunk on this host has been
// relayed. The barrier protocols call it before propagating their tokens,
// which is what makes "barrier implies prior puts are delivered" hold on
// the ring (the paper's "check previous DMA transfer completed" step).
func (l *ringLink) drainForwarder(p *sim.Proc) {
	for l.fwdBusy > 0 {
		l.fwdIdle.Wait(p)
	}
}

// drainService blocks until the service thread has consumed every
// queued inbound message and gone idle. Under the pipelined protocol a
// sender's chunks may still sit unprocessed in this host's window when a
// barrier token arrives, so the token must not be propagated past them.
func (l *ringLink) drainService(p *sim.Proc) {
	for l.svcQ.Len() > 0 || l.svcActive {
		l.svcIdle.Wait(p)
	}
}

// Drain flushes this host's inbound service work and then its relay
// queue — the full "everything that reached me has moved on" step the
// barrier protocols interpose before propagating tokens. Service
// handling can enqueue relay work but never the reverse, so this order
// suffices.
func (l *ringLink) Drain(p *sim.Proc) {
	l.drainService(p)
	l.drainForwarder(p)
}

// Barrier is the paper's two-round protocol (Fig 6): host 0 sends
// BARRIER_START rightward; each host forwards it after flushing its own
// relay queue; when the start round returns to host 0 it launches the
// BARRIER_END round the same way, and hosts release as the end passes.
//
// The per-hop flush is what upgrades the barrier from synchronisation to
// delivery: a host only propagates the token once every chunk staged on
// it has been pushed one hop (and acknowledged — for a final hop that
// means copied into the destination heap). Induction along the token's
// path flushes every chain that runs in the token's direction, so under
// shortest-path routing a second, leftward round is required for the
// leftward chains.
func (l *ringLink) Barrier(p *sim.Proc) bool {
	l.ringRound(p, driver.DirRight)
	if l.opts.Routing == RouteShortest {
		l.ringRound(p, driver.DirLeft)
	}
	return true
}

// ringRound circulates one start round and one end round in the given
// direction.
func (l *ringLink) ringRound(p *sim.Proc, dir driver.Dir) {
	out := l.host.RightEP
	startQ, endQ := l.startQ, l.endQ
	if dir == driver.DirLeft {
		out = l.host.LeftEP
		startQ, endQ = l.startQL, l.endQL
	}
	if l.host.ID == 0 {
		out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, startQ)
		l.Drain(p)
		out.Ring(p, driver.VecBarrierEnd)
		l.waitToken(p, endQ)
	} else {
		l.waitToken(p, startQ)
		l.Drain(p)
		out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, endQ)
		out.Ring(p, driver.VecBarrierEnd)
	}
}

// Sync is the ring doorbell protocol without the relay flush: pure
// synchronisation, no delivery guarantee. It exists so the ablation can
// price the flush.
func (l *ringLink) Sync(p *sim.Proc) bool {
	out := l.host.RightEP
	if l.host.ID == 0 {
		out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, l.startQ)
		out.Ring(p, driver.VecBarrierEnd)
		l.waitToken(p, l.endQ)
	} else {
		l.waitToken(p, l.startQ)
		out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, l.endQ)
		out.Ring(p, driver.VecBarrierEnd)
	}
	return true
}

// waitToken blocks on a doorbell-token queue and charges the application
// thread wake-up cost.
func (l *ringLink) waitToken(p *sim.Proc, q *sim.Queue[struct{}]) {
	q.Pop(p)
	p.Sleep(l.c.Par.AppWake)
}

// txToward returns the transmit channel and next-hop host Id for a
// direction.
func (l *ringLink) txToward(d driver.Dir) (driver.Sender, int) {
	if d == driver.DirLeft {
		return l.txLeft, l.host.LeftNeighbor()
	}
	return l.txRight, l.host.RightNeighbor()
}

// regionFor picks the inbound window at the next hop: the data window
// when the next hop is the final destination, the bypass window when the
// chunk must be relayed again (Fig 4).
func (l *ringLink) regionFor(finalDst, nextHop int) ntb.Region {
	if finalDst == nextHop {
		return ntb.RegionData
	}
	return ntb.RegionBypass
}

// dirTo returns the routing direction from this host toward dst. Under
// the paper's policy data always travels rightward; under RouteShortest
// it takes the shorter arc (ties rightward). Once chosen at the origin,
// the direction is carried in the message and forwarding never reverses
// it.
func (l *ringLink) dirTo(dst int) driver.Dir {
	if l.opts.Routing == RouteShortest {
		n := l.c.N()
		right := (dst - l.host.ID + n) % n
		if left := n - right; left < right {
			return driver.DirLeft
		}
	}
	return driver.DirRight
}

func oppositeDir(d driver.Dir) driver.Dir {
	if d == driver.DirLeft {
		return driver.DirRight
	}
	return driver.DirLeft
}

// Stats reports the link's doorbell and relay counters.
func (l *ringLink) Stats() LinkStats { return l.stats }

func (l *ringLink) Lookahead() sim.Duration { return LookaheadFor(KindNTBRing, l.c.Par) }

// AssertQuiescent panics unless the link has fully drained — the shared
// precondition of Reset and Snapshot.
func (l *ringLink) AssertQuiescent(op string) {
	if l.svcActive || l.svcQ.Len() != 0 || l.fwdBusy != 0 || l.fwdQ.Len() != 0 {
		panic(fmt.Sprintf("fabric: %s of host %d with service work outstanding", op, l.host.ID))
	}
	if n := l.startQ.Len() + l.endQ.Len() + l.startQL.Len() + l.endQL.Len(); n != 0 {
		panic(fmt.Sprintf("fabric: %s of host %d with %d barrier token(s) queued", op, l.host.ID, n))
	}
}

// Reset returns the link to its just-constructed state. The stop-and-wait
// TxChannels and the NTB ports are reset by Cluster.Reset; the pipelined
// cursors live here.
func (l *ringLink) Reset() {
	l.stats = LinkStats{}
	if tx, ok := l.txLeft.(*driver.PipeTx); ok {
		tx.Reset()
	}
	if tx, ok := l.txRight.(*driver.PipeTx); ok {
		tx.Reset()
	}
	if l.rxLeft != nil {
		l.rxLeft.Reset()
		l.rxRight.Reset()
	}
}

// ringLinkSnap captures a ring link's mutable state: activity counters
// plus the pipelined protocol's slot cursors when enabled.
type ringLinkSnap struct {
	stats           LinkStats
	txLeft, txRight *driver.PipeTxSnapshot
	rxLeft, rxRight *driver.PipeRxSnapshot
}

func (l *ringLink) Snapshot() any {
	s := &ringLinkSnap{stats: l.stats}
	if tx, ok := l.txLeft.(*driver.PipeTx); ok {
		snap := tx.Snapshot()
		s.txLeft = &snap
	}
	if tx, ok := l.txRight.(*driver.PipeTx); ok {
		snap := tx.Snapshot()
		s.txRight = &snap
	}
	if l.rxLeft != nil {
		lsnap := l.rxLeft.Snapshot()
		rsnap := l.rxRight.Snapshot()
		s.rxLeft, s.rxRight = &lsnap, &rsnap
	}
	return s
}

func (l *ringLink) Restore(snap any) {
	s := snap.(*ringLinkSnap)
	l.stats = s.stats
	if s.txLeft != nil {
		l.txLeft.(*driver.PipeTx).Restore(*s.txLeft)
	}
	if s.txRight != nil {
		l.txRight.(*driver.PipeTx).Restore(*s.txRight)
	}
	if s.rxLeft != nil {
		l.rxLeft.Restore(*s.rxLeft)
		l.rxRight.Restore(*s.rxRight)
	}
}

// GetBuf borrows a staging buffer of at least n bytes from the host's
// pool; PutBuf returns it.
func (l *ringLink) GetBuf(n int) []byte { return l.pool.get(n) }
func (l *ringLink) PutBuf(b []byte)     { l.pool.put(b) }
