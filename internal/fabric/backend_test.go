package fabric

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	aliases := map[string]Kind{
		"ring": KindNTBRing, "ntb": KindNTBRing,
		"pair":   KindNTBPair,
		"switch": KindPCIeSwitch,
		"cxl":    KindCXL, "cxl-mem": KindCXL, "cxl.mem": KindCXL,
	}
	for s, want := range aliases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = (%v, %v), want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("infiniband"); err == nil || !strings.Contains(err.Error(), "infiniband") {
		t.Errorf("ParseKind of an unknown kind = %v, want an error naming it", err)
	}
}

func TestNewValidatesHostCounts(t *testing.T) {
	cases := []struct {
		kind  Kind
		hosts int
		ok    bool
	}{
		{KindNTBRing, 2, true},
		{KindNTBRing, 1, false},
		{KindNTBRing, MaxHosts + 1, false},
		{KindNTBPair, 2, true},
		{KindNTBPair, 3, false},
		{KindPCIeSwitch, 2, true},
		{KindPCIeSwitch, MaxSwitchHosts, true},
		{KindPCIeSwitch, 1, false},
		{KindPCIeSwitch, MaxSwitchHosts + 1, false},
		{KindCXL, 2, true},
		{KindCXL, 1, false},
		{KindCXL, MaxCXLHosts + 1, false},
	}
	for _, tc := range cases {
		c, err := New(Config{Sim: sim.New(), Par: model.Default(), Hosts: tc.hosts, Kind: tc.kind})
		if tc.ok {
			if err != nil {
				t.Errorf("New(%s, %d hosts): %v", tc.kind, tc.hosts, err)
			} else if c.Kind() != tc.kind || c.N() != tc.hosts {
				t.Errorf("New(%s, %d hosts) built (%s, %d hosts)", tc.kind, tc.hosts, c.Kind(), c.N())
			}
		} else if err == nil || c != nil {
			t.Errorf("New(%s, %d hosts) = (%v, %v), want descriptive error", tc.kind, tc.hosts, c, err)
		}
	}
	if _, err := New(Config{Sim: sim.New(), Par: model.Default(), Hosts: 2, Kind: Kind(99)}); err == nil {
		t.Error("New accepted an unknown kind")
	}
}

func TestMaxHostsFor(t *testing.T) {
	want := map[Kind]int{
		KindNTBRing:    MaxHosts,
		KindNTBPair:    2,
		KindPCIeSwitch: MaxSwitchHosts,
		KindCXL:        MaxCXLHosts,
	}
	for k, n := range want {
		if got := MaxHostsFor(k); got != n {
			t.Errorf("MaxHostsFor(%s) = %d, want %d", k, got, n)
		}
	}
}

func TestSwitchWiring(t *testing.T) {
	const n = 4
	c, err := NewSwitch(sim.New(), model.Default(), n)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint16]string{}
	for i, h := range c.Hosts {
		if h.Left != nil || h.Right != nil {
			t.Errorf("host %d has ring adapters on the switch fabric", i)
		}
		if len(h.Mesh) != n || len(h.MeshEP) != n || len(h.MeshTx) != n {
			t.Fatalf("host %d mesh slices sized %d/%d/%d, want %d",
				i, len(h.Mesh), len(h.MeshEP), len(h.MeshTx), n)
		}
		for j := 0; j < n; j++ {
			if j == i {
				if h.Mesh[j] != nil || h.MeshEP[j] != nil || h.MeshTx[j] != nil {
					t.Errorf("host %d has a port to itself", i)
				}
				continue
			}
			if h.Mesh[j] == nil || h.MeshEP[j] == nil || h.MeshTx[j] == nil {
				t.Fatalf("host %d missing mesh objects toward %d", i, j)
			}
			if peer := h.Mesh[j].Peer(); peer != c.Hosts[j].Mesh[i] {
				t.Errorf("host %d port to %d not cabled to the mirror port", i, j)
			}
			id := h.Mesh[j].RequesterID()
			if want := uint16(i+1)<<8 | uint16(j+1); id != want {
				t.Errorf("host %d port to %d has requester id %#x, want %#x", i, j, id, want)
			}
			if prev, dup := seen[id]; dup {
				t.Errorf("requester id %#x reused by %s and host %d->%d", id, prev, i, j)
			}
			seen[id] = fmt.Sprintf("host %d->%d", i, j)
		}
	}
	if c.Ring() {
		t.Error("switch fabric reported as ring")
	}
}

func TestCXLWiring(t *testing.T) {
	const n = 3
	c, err := NewCXL(sim.New(), model.Default(), n)
	if err != nil {
		t.Fatal(err)
	}
	if c.cxl == nil {
		t.Fatal("CXL cluster has no shared fabric state")
	}
	if len(c.cxl.mu) != n || len(c.cxl.routes) != n || len(c.cxl.links) != n {
		t.Fatalf("CXL state sized mu=%d routes=%d links=%d, want %d",
			len(c.cxl.mu), len(c.cxl.routes), len(c.cxl.links), n)
	}
	for i, h := range c.Hosts {
		if h.Left != nil || h.Right != nil || h.Mesh != nil {
			t.Errorf("host %d carries NTB adapters on the CXL fabric", i)
		}
		for j := 0; j < n; j++ {
			if i == j {
				if c.cxl.routes[i][j] != nil {
					t.Errorf("host %d has a fabric route to itself", i)
				}
				continue
			}
			if c.cxl.routes[i][j] == nil {
				t.Errorf("host %d missing route to %d", i, j)
			}
		}
	}
}

// TestRingDirTo is the arc-selection unit test the routing integration
// tests in internal/core defer to: dirTo chooses the shorter arc under
// RouteShortest (ties rightward) and always rightward under the paper's
// policy.
func TestRingDirTo(t *testing.T) {
	links := func(n int, r Routing) []Link {
		c, err := NewRing(sim.New(), model.Default(), n)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := c.Links(LinkOptions{Routing: r})
		if err != nil {
			t.Fatal(err)
		}
		return ls
	}
	// 5 hosts, shortest-arc, from host 0: 1 and 2 are nearer rightward,
	// 3 and 4 leftward.
	l0 := links(5, RouteShortest)[0].(*ringLink)
	for dst, want := range map[int]driver.Dir{
		1: driver.DirRight, 2: driver.DirRight,
		3: driver.DirLeft, 4: driver.DirLeft,
	} {
		if got := l0.dirTo(dst); got != want {
			t.Errorf("shortest n=5: dirTo(%d) = %v, want %v", dst, got, want)
		}
	}
	// 4 hosts: the antipode is a tie, which goes rightward.
	if got := links(4, RouteShortest)[0].(*ringLink).dirTo(2); got != driver.DirRight {
		t.Errorf("shortest n=4 tie: dirTo(2) = %v, want rightward", got)
	}
	// The paper's policy never turns left.
	lr := links(5, RouteRightward)[0].(*ringLink)
	for dst := 1; dst < 5; dst++ {
		if got := lr.dirTo(dst); got != driver.DirRight {
			t.Errorf("rightward: dirTo(%d) = %v, want rightward", dst, got)
		}
	}
	// From a non-zero host the arcs wrap: host 3 of 5 reaches 4 and 0
	// rightward, 1 and 2 leftward.
	l3 := links(5, RouteShortest)[3].(*ringLink)
	for dst, want := range map[int]driver.Dir{
		4: driver.DirRight, 0: driver.DirRight,
		1: driver.DirLeft, 2: driver.DirLeft,
	} {
		if got := l3.dirTo(dst); got != want {
			t.Errorf("shortest n=5 host 3: dirTo(%d) = %v, want %v", dst, got, want)
		}
	}
}
