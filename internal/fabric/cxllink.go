package fabric

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// MaxCXLHosts is the number of hosts the modelled CXL fabric's window
// decoders address.
const MaxCXLHosts = 256

// cxlState is the shared fabric state of a CXL cluster: one flow-network
// server modelling the fabric's data path, the interned per-ordered-pair
// routes through it, a per-target home-agent mutex serialising
// operations on each host's memory, and the delivery handlers the links
// register at Start.
type cxlState struct {
	server *pcie.Server  // reset: keep — interned flow-network server
	routes [][]*pcie.Route // reset: keep — interned [src][dst] paths
	mu     []*sim.Mutex  // reset: keep — free after any clean run
	links  []*cxlLink    // reset: keep — construction identity; links reset individually
}

// Reset returns the shared fabric to power-on state. All of it is
// construction identity or provably idle after a clean run (the
// home-agent mutexes are held only inside a Send), so there is nothing
// to rewind; per-link counters are reset by each link's Reset.
func (st *cxlState) Reset() {}

// NewCXL builds a CXL.mem-style fabric of n hosts: every host maps a
// coherent window onto every other host's memory, so a transfer
// completes like a store — synchronously on the issuing process, with a
// fixed coherence latency plus flow-network streaming time through the
// shared fabric — and no doorbell interrupts or service threads exist.
func NewCXL(s *sim.Simulator, par *model.Params, n int) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("fabric: a CXL fabric needs at least 2 hosts, got %d", n)
	}
	if n > MaxCXLHosts {
		return nil, fmt.Errorf("fabric: %d hosts exceed the modelled CXL fabric's %d window decoders", n, MaxCXLHosts)
	}
	c := newCluster(s, par, n, KindCXL, 1)
	st := &cxlState{
		server: pcie.NewServer("cxl-fabric", par.CXLWindowBW),
		routes: make([][]*pcie.Route, n),
		mu:     make([]*sim.Mutex, n),
		links:  make([]*cxlLink, n),
	}
	for i, h := range c.Hosts {
		st.mu[i] = sim.NewMutex(hostName("cxl-home:", i))
		st.routes[i] = make([]*pcie.Route, n)
		for j := 0; j < n; j++ {
			if j != i {
				st.routes[i][j] = c.Net.NewRoute(h.RC, st.server, c.Hosts[j].RC)
			}
		}
	}
	c.cxl = st
	return c, nil
}

// cxlLink attaches one host of the CXL fabric. There is no service
// thread, no forwarder, and no doorbell: Send performs the coherence
// access and delivers the message inline on the issuing process, under
// the target's home-agent mutex, so operations on one host's memory are
// serialised in virtual time exactly as a home agent serialises them.
// Replies generated inside a delivery (get data, AMO results) are
// delivered the same way but without taking a mutex — the requester's
// runtime state is only ever touched by its own pending-request
// bookkeeping — which is also what makes the inline recursion
// deadlock-free: a delivery can trigger a Reply but never another Send.
type cxlLink struct {
	c       *Cluster    // reset: keep; snap: keep — construction identity
	host    *Host       // reset: keep; snap: keep — construction identity
	opts    LinkOptions // reset: keep; snap: keep — construction identity
	deliver Handler     // reset: keep; snap: keep — installed handler survives recycling and forking
	st      *cxlState   // reset: keep; snap: keep — shared fabric state
	pool    bufPool     // reset: keep; snap: keep — warm staging buffers hold no simulation state

	stats LinkStats
}

func newCXLLink(c *Cluster, h *Host, opts LinkOptions) *cxlLink {
	l := &cxlLink{
		c:    c,
		host: h,
		opts: opts,
		st:   c.cxl,
		pool: bufPool{par: c.Par},
	}
	c.cxl.links[h.ID] = l
	return l
}

// Start registers the delivery handler with the shared fabric. No
// daemons are spawned: a load/store fabric has no service threads.
func (l *cxlLink) Start(deliver Handler) {
	l.deliver = deliver
}

// Boot is the CXL setup exchange: window decoders are programmed by the
// fabric manager before the application starts, so each host only pays
// one coherence round trip verifying its mapping.
func (l *cxlLink) Boot(p *sim.Proc) {
	p.Sleep(l.c.Par.CXLLatency)
}

// access pays the coherence round trip and streams size bytes through
// the shared fabric along the interned route.
func (l *cxlLink) access(p *sim.Proc, dst int, size int) {
	p.Sleep(l.c.Par.CXLLatency)
	if size > 0 {
		l.c.Net.TransferRoute(p, int64(size), l.c.Par.CXLWindowBW, l.st.routes[l.host.ID][dst])
	}
}

// nopAck is the ack delivered messages receive: the payload aliases the
// sender's buffer, which outlives the synchronous delivery.
func nopAck(*sim.Proc) {}

// Send completes a message like a store: coherence access, then inline
// delivery on the issuing process under the target's home-agent mutex.
func (l *cxlLink) Send(p *sim.Proc, info driver.Info, payload driver.Payload) {
	dst := int(info.Dst)
	data := payload.Buf
	var staged []byte
	if payload.Heap != nil {
		staged = l.pool.get(payload.N)
		payload.Heap.Read(payload.HeapOff, staged)
		data = staged
	}
	l.access(p, dst, payload.N)
	mu := l.st.mu[dst]
	mu.Lock(p)
	l.st.links[dst].deliver(p, info, data[:payload.N], nopAck)
	mu.Unlock()
	if staged != nil {
		l.pool.put(staged)
	}
}

// Reply returns a response to the requester inline, without a mutex
// (see the type comment); data borrowed from GetBuf goes back to the
// pool once delivered.
func (l *cxlLink) Reply(p *sim.Proc, orig driver.Info, reply driver.Info, data []byte) {
	requester := int(reply.Dst)
	l.access(p, requester, len(data))
	l.st.links[requester].deliver(p, reply, data, nopAck)
	if data != nil {
		l.pool.put(data)
	}
}

// Drain is a no-op: every Send has fully delivered by the time it
// returns, and nothing is ever staged.
func (l *cxlLink) Drain(p *sim.Proc) {}

// Barrier reports false: the runtime's dissemination barrier runs over
// Send, which is delivery-synchronous here, so the fallback is sound.
func (l *cxlLink) Barrier(p *sim.Proc) bool { return false }

// Sync reports false for the same reason.
func (l *cxlLink) Sync(p *sim.Proc) bool { return false }

// Stats reports the link's counters: zero interrupts, zero forwards —
// the measurable signature of a load/store fabric.
func (l *cxlLink) Stats() LinkStats { return l.stats }

func (l *cxlLink) Lookahead() sim.Duration { return LookaheadFor(KindCXL, l.c.Par) }

// AssertQuiescent is trivially satisfied: the link holds no queues.
func (l *cxlLink) AssertQuiescent(op string) {}

// Reset returns the link to its just-constructed state.
func (l *cxlLink) Reset() {
	l.stats = LinkStats{}
}

// cxlLinkSnap captures a CXL link's mutable state.
type cxlLinkSnap struct {
	stats LinkStats
}

func (l *cxlLink) Snapshot() any { return &cxlLinkSnap{stats: l.stats} }

func (l *cxlLink) Restore(snap any) {
	l.stats = snap.(*cxlLinkSnap).stats
}

// GetBuf borrows a staging buffer of at least n bytes from the host's
// pool; PutBuf returns it.
func (l *cxlLink) GetBuf(n int) []byte { return l.pool.get(n) }
func (l *cxlLink) PutBuf(b []byte)     { l.pool.put(b) }
