package fabric

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/ntb"
	"repro/internal/sim"
)

// pairLink attaches one host of the two-host independent NTB pair (the
// Fig 8 baseline wiring) to the runtime. Host 0 reaches its peer through
// its right adapter, host 1 through its left; there is exactly one cable,
// so every message is single-hop: no relay staging, no bypass window, no
// routing decision. The service-thread/forwarder split is kept anyway —
// replies generated inside the service thread must not block on the
// transmit channel, or two hosts answering each other's gets deadlock.
type pairLink struct {
	c       *Cluster    // reset: keep; snap: keep — construction identity
	host    *Host       // reset: keep; snap: keep — construction identity
	opts    LinkOptions // reset: keep; snap: keep — construction identity
	deliver Handler     // reset: keep; snap: keep — installed handler survives recycling and forking

	// The single cabled side.
	out *driver.Endpoint  // reset: keep; snap: keep — construction identity
	tx  *driver.TxChannel // reset: keep; snap: keep — reset by Cluster.Reset
	fwd driver.Dir        // reset: keep; snap: keep — Dir this host's sends carry
	ack func(*sim.Proc)   // reset: keep; snap: keep — construction identity; built once in Start so serve stays allocation-free

	svcQ      *sim.Queue[*ntb.Port] // reset: keep; snap: keep — AssertQuiescent guarantees it drained
	svcActive bool                  // reset: keep; snap: keep — AssertQuiescent guarantees false (service drained)
	svcIdle   *sim.Cond             // reset: keep; snap: keep — no waiters survive a clean run
	fwdQ      *sim.Queue[*fwdMsg]   // reset: keep; snap: keep — AssertQuiescent guarantees it drained
	fwdBusy   int                   // reset: keep; snap: keep — AssertQuiescent guarantees zero
	fwdIdle   *sim.Cond             // reset: keep; snap: keep — no waiters survive a clean run
	pool      bufPool               // reset: keep; snap: keep — warm staging buffers hold no simulation state

	// Doorbell barrier tokens (the Fig 6 protocol degenerated to one hop).
	startQ, endQ *sim.Queue[struct{}] // reset: keep; snap: keep — AssertQuiescent guarantees them drained

	stats LinkStats
}

func newPairLink(c *Cluster, h *Host, opts LinkOptions) *pairLink {
	l := &pairLink{
		c:       c,
		host:    h,
		opts:    opts,
		svcQ:    sim.NewQueue[*ntb.Port](hostName("svc:", h.ID)),
		svcIdle: sim.NewCond(hostName("svc-idle:", h.ID)),
		fwdQ:    sim.NewQueue[*fwdMsg](hostName("fwd:", h.ID)),
		fwdIdle: sim.NewCond(hostName("fwd-idle:", h.ID)),
		startQ:  sim.NewQueue[struct{}](hostName("barrier-start:", h.ID)),
		endQ:    sim.NewQueue[struct{}](hostName("barrier-end:", h.ID)),
		pool:    bufPool{par: c.Par},
	}
	if h.ID == 0 {
		l.out, l.tx, l.fwd = h.RightEP, h.TxRight, driver.DirRight
	} else {
		l.out, l.tx, l.fwd = h.LeftEP, h.TxLeft, driver.DirLeft
	}
	return l
}

// Start wires the doorbell vectors of the single adapter and spawns the
// service and forwarder threads.
func (l *pairLink) Start(deliver Handler) {
	l.deliver = deliver
	dataVec := func() {
		l.stats.Interrupts++
		l.svcQ.Push(l.out.Port)
	}
	l.out.Handle(driver.VecPut, dataVec)
	l.out.Handle(driver.VecGet, dataVec)
	l.out.Handle(driver.VecBarrierStart, func() {
		l.stats.Interrupts++
		l.startQ.Push(struct{}{})
	})
	l.out.Handle(driver.VecBarrierEnd, func() {
		l.stats.Interrupts++
		l.endQ.Push(struct{}{})
	})
	port := l.out.Port
	l.ack = func(pp *sim.Proc) { driver.Ack(pp, port) }
	l.host.Sim.GoDaemon(fmt.Sprintf("shmem-svc:%d", l.host.ID), l.serve)
	l.host.Sim.GoDaemon(fmt.Sprintf("shmem-fwd:%d", l.host.ID), l.forward)
}

// Boot runs the pre-setup exchange over the single cable and validates
// the discovered peer.
func (l *pairLink) Boot(p *sim.Proc) {
	left, right := l.host.Boot(p)
	peer := 1 - l.host.ID
	got := right
	if l.host.ID == 1 {
		got = left
	}
	if got != peer {
		panic(fmt.Sprintf("fabric: host %d discovered peer %d, topology says %d", l.host.ID, got, peer))
	}
}

// serve is the per-host service thread: identical cost structure to the
// ring's (Fig 5), minus the transit case — every arriving message is
// addressed here.
func (l *pairLink) serve(p *sim.Proc) {
	for {
		port, ok := l.svcQ.TryPop()
		if !ok {
			l.setSvcActive(false)
			port = l.svcQ.Pop(p)
			p.Sleep(l.c.Par.ServiceWake)
		}
		l.setSvcActive(true)
		p.Sleep(l.c.Par.ISRCost)
		info := driver.ReadInfo(p, port)
		payload := port.Inbound(info.Region)[:info.Size]
		if int(info.Dst) != l.host.ID {
			panic(fmt.Sprintf("fabric: pair host %d received a chunk addressed to host %d", l.host.ID, info.Dst))
		}
		l.deliver(p, info, payload, l.ack)
	}
}

func (l *pairLink) setSvcActive(active bool) {
	l.svcActive = active
	if !active {
		l.svcIdle.Broadcast()
	}
}

// forward pushes service-thread replies out the single cable, decoupling
// the service loop from the stop-and-wait ACK.
func (l *pairLink) forward(p *sim.Proc) {
	for {
		m, ok := l.fwdQ.TryPop()
		if !ok {
			m = l.fwdQ.Pop(p)
			p.Sleep(l.c.Par.ServiceWake)
		}
		l.tx.SendChunk(p, m.info, driver.Payload{Buf: m.data, N: len(m.data)}, l.opts.Mode)
		if m.data != nil {
			l.pool.put(m.data)
		}
		l.fwdBusy--
		if l.fwdBusy == 0 {
			l.fwdIdle.Broadcast()
		}
	}
}

// Send pushes one chunk across the single cable, stop-and-wait. The
// chunk is delivered (copied into the peer's heap and acknowledged)
// before Send returns.
func (l *pairLink) Send(p *sim.Proc, info driver.Info, payload driver.Payload) {
	info.Dir = l.fwd
	info.Region = ntb.RegionData
	l.tx.SendChunk(p, info, payload, l.opts.Mode)
}

// Reply stages a response on the forwarder; on a pair the way back is
// the way everything goes.
func (l *pairLink) Reply(p *sim.Proc, orig driver.Info, reply driver.Info, data []byte) {
	reply.Dir = l.fwd
	reply.Region = ntb.RegionData
	l.fwdBusy++
	l.fwdQ.Push(&fwdMsg{info: reply, data: data})
}

// Drain flushes queued inbound service work and staged replies.
func (l *pairLink) Drain(p *sim.Proc) {
	for l.svcQ.Len() > 0 || l.svcActive {
		l.svcIdle.Wait(p)
	}
	for l.fwdBusy > 0 {
		l.fwdIdle.Wait(p)
	}
}

// Barrier is the ring doorbell protocol collapsed to one hop: host 0
// rings BARRIER_START, host 1 drains and rings it back, host 0 drains
// and launches the END round. Sends are delivery-synchronous on a pair,
// so the drains only flush replies still staged on the forwarder.
func (l *pairLink) Barrier(p *sim.Proc) bool {
	if l.host.ID == 0 {
		l.out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, l.startQ)
		l.Drain(p)
		l.out.Ring(p, driver.VecBarrierEnd)
		l.waitToken(p, l.endQ)
	} else {
		l.waitToken(p, l.startQ)
		l.Drain(p)
		l.out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, l.endQ)
		l.out.Ring(p, driver.VecBarrierEnd)
	}
	return true
}

// Sync is the doorbell exchange without the drain.
func (l *pairLink) Sync(p *sim.Proc) bool {
	if l.host.ID == 0 {
		l.out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, l.startQ)
		l.out.Ring(p, driver.VecBarrierEnd)
		l.waitToken(p, l.endQ)
	} else {
		l.waitToken(p, l.startQ)
		l.out.Ring(p, driver.VecBarrierStart)
		l.waitToken(p, l.endQ)
		l.out.Ring(p, driver.VecBarrierEnd)
	}
	return true
}

func (l *pairLink) waitToken(p *sim.Proc, q *sim.Queue[struct{}]) {
	q.Pop(p)
	p.Sleep(l.c.Par.AppWake)
}

// Stats reports the link's doorbell counter (nothing is ever forwarded).
func (l *pairLink) Stats() LinkStats { return l.stats }

func (l *pairLink) Lookahead() sim.Duration { return LookaheadFor(KindNTBPair, l.c.Par) }

// AssertQuiescent panics unless the link has fully drained.
func (l *pairLink) AssertQuiescent(op string) {
	if l.svcActive || l.svcQ.Len() != 0 || l.fwdBusy != 0 || l.fwdQ.Len() != 0 {
		panic(fmt.Sprintf("fabric: %s of host %d with service work outstanding", op, l.host.ID))
	}
	if n := l.startQ.Len() + l.endQ.Len(); n != 0 {
		panic(fmt.Sprintf("fabric: %s of host %d with %d barrier token(s) queued", op, l.host.ID, n))
	}
}

// Reset returns the link to its just-constructed state (the TxChannel
// and NTB port are reset by Cluster.Reset).
func (l *pairLink) Reset() {
	l.stats = LinkStats{}
}

// pairLinkSnap captures a pair link's mutable state.
type pairLinkSnap struct {
	stats LinkStats
}

func (l *pairLink) Snapshot() any { return &pairLinkSnap{stats: l.stats} }

func (l *pairLink) Restore(snap any) {
	l.stats = snap.(*pairLinkSnap).stats
}

// GetBuf borrows a staging buffer of at least n bytes from the host's
// pool; PutBuf returns it.
func (l *pairLink) GetBuf(n int) []byte { return l.pool.get(n) }
func (l *pairLink) PutBuf(b []byte)     { l.pool.put(b) }
