package fabric

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/ntb"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// ClusterSnapshot is a frozen image of a quiescent cluster's device
// state: the kernel clock plus, per host, the NTB port images and
// stop-and-wait channel counters of every cabled side — ring/pair sides
// and, on the switch fabric, the per-peer mesh ports. Pipelined channel
// state is owned by the links (which installed the pipes) and
// snapshotted there; the CXL fabric has no device registers to capture.
type ClusterSnapshot struct {
	n    int
	kind Kind
	// One kernel clock and flow-network image per shard simulator (a
	// single entry for the ordinary one-simulator world). Member clocks
	// of a quiescent sharded world legitimately differ: each shard
	// stops at its own last event.
	sims []sim.Snapshot
	nets []pcie.NetSnapshot
	// Per-host device images; entries are nil/zero when the side is not
	// cabled, mirroring Host.
	left, right []*ntb.PortSnapshot
	txL, txR    []driver.TxSnapshot
	// Switch-fabric mesh images, indexed [host][peer]; nil off-switch.
	mesh   [][]*ntb.PortSnapshot
	meshTx [][]driver.TxSnapshot
}

// Time returns the virtual time the snapshot was captured at: the
// latest member clock, i.e. the time of the last event executed
// anywhere in the world.
func (s *ClusterSnapshot) Time() sim.Time {
	t := s.sims[0].Now()
	for _, m := range s.sims[1:] {
		if m.Now() > t {
			t = m.Now()
		}
	}
	return t
}

// Snapshot captures a quiescent cluster: the simulator must satisfy the
// Reset preconditions (no pending events, only parked daemons), the flow
// network must be idle, every DMA engine drained, every stop-and-wait
// ACK consumed.
func (c *Cluster) Snapshot() *ClusterSnapshot {
	s := &ClusterSnapshot{
		n:     c.N(),
		kind:  c.kind,
		left:  make([]*ntb.PortSnapshot, c.N()),
		right: make([]*ntb.PortSnapshot, c.N()),
		txL:   make([]driver.TxSnapshot, c.N()),
		txR:   make([]driver.TxSnapshot, c.N()),
	}
	for i := range c.sims {
		s.sims = append(s.sims, c.sims[i].Snapshot())
		s.nets = append(s.nets, c.nets[i].Snapshot())
	}
	for i, h := range c.Hosts {
		if h.Left != nil {
			s.left[i] = h.Left.Snapshot()
			s.txL[i] = h.TxLeft.Snapshot()
		}
		if h.Right != nil {
			s.right[i] = h.Right.Snapshot()
			s.txR[i] = h.TxRight.Snapshot()
		}
	}
	if c.kind == KindPCIeSwitch {
		s.mesh = make([][]*ntb.PortSnapshot, c.N())
		s.meshTx = make([][]driver.TxSnapshot, c.N())
		for i, h := range c.Hosts {
			s.mesh[i] = make([]*ntb.PortSnapshot, c.N())
			s.meshTx[i] = make([]driver.TxSnapshot, c.N())
			for j, port := range h.Mesh {
				if port != nil {
					s.mesh[i][j] = port.Snapshot()
					s.meshTx[i][j] = h.MeshTx[j].Snapshot()
				}
			}
		}
	}
	return s
}

// Restore applies a snapshot to a freshly Reset cluster of identical
// topology, leaving it positioned at the captured virtual time with
// every device register and window extent as captured.
func (c *Cluster) Restore(s *ClusterSnapshot) {
	if c.N() != s.n || c.kind != s.kind {
		panic(fmt.Sprintf("fabric: restore of a %d-host %s cluster from a %d-host %s snapshot",
			c.N(), c.kind, s.n, s.kind))
	}
	for i, h := range c.Hosts {
		if (h.Left != nil) != (s.left[i] != nil) || (h.Right != nil) != (s.right[i] != nil) {
			panic(fmt.Sprintf("fabric: restore of host %d with mismatched cabling", i))
		}
		if h.Left != nil {
			h.Left.Restore(s.left[i])
			h.TxLeft.Restore(s.txL[i])
		}
		if h.Right != nil {
			h.Right.Restore(s.right[i])
			h.TxRight.Restore(s.txR[i])
		}
	}
	if s.mesh != nil {
		for i, h := range c.Hosts {
			for j, port := range h.Mesh {
				if port != nil {
					port.Restore(s.mesh[i][j])
					h.MeshTx[j].Restore(s.meshTx[i][j])
				}
			}
		}
	}
	if len(c.sims) != len(s.sims) {
		panic(fmt.Sprintf("fabric: restore of a %d-shard cluster from a %d-shard snapshot", len(c.sims), len(s.sims)))
	}
	for i := range c.sims {
		c.nets[i].Restore(s.nets[i])
		c.sims[i].Restore(s.sims[i])
	}
}
