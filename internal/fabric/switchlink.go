package fabric

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/ntb"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// MaxSwitchHosts is the downstream port count of the modelled PCIe
// switch (a large multi-port part; also what keeps the per-peer
// requester-ID scheme within its 8-bit fields).
const MaxSwitchHosts = 64

// NewSwitch builds a PCIe-switch fabric of n hosts: every host pair is
// joined by a dedicated NTB port pair whose traffic is routed through
// the host's uplink and the shared switch core, so any pair can talk
// peer-to-peer in one hop while all pairs contend for the core's
// bandwidth in the flow network — the contention profile that
// distinguishes a switched fabric from the ring's per-cable wires.
func NewSwitch(s *sim.Simulator, par *model.Params, n int) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("fabric: a switched fabric needs at least 2 hosts, got %d", n)
	}
	if n > MaxSwitchHosts {
		return nil, fmt.Errorf("fabric: %d hosts exceed the modelled switch's %d downstream ports", n, MaxSwitchHosts)
	}
	c := newCluster(s, par, n, KindPCIeSwitch, 1)
	core := pcie.NewServer("switch-core", par.SwitchCoreBW)
	uplinks := make([]*pcie.Server, n)
	for i, h := range c.Hosts {
		uplinks[i] = pcie.NewServer(hostName("uplink:h", i), par.EffectiveWireBW())
		h.Mesh = make([]*ntb.Port, n)
		h.MeshEP = make([]*driver.Endpoint, n)
		h.MeshTx = make([]*driver.TxChannel, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi := ntb.NewPort(fmt.Sprintf("h%d.m%d", i, j), s, c.Net, par, c.Hosts[i].RC)
			pj := ntb.NewPort(fmt.Sprintf("h%d.m%d", j, i), s, c.Net, par, c.Hosts[j].RC)
			// Host i's port facing j: (i+1) in the high byte, (j+1) in
			// the low — unique across the fabric, never the unconfigured
			// zero, and disjoint from the ring scheme's shifted Ids.
			pi.SetRequesterID(uint16(i+1)<<8 | uint16(j+1))
			pj.SetRequesterID(uint16(j+1)<<8 | uint16(i+1))
			ntb.ConnectVia(pi, pj, uplinks[i], core, uplinks[j])
			c.Hosts[i].Mesh[j] = pi
			c.Hosts[j].Mesh[i] = pj
		}
	}
	for _, h := range c.Hosts {
		for j, port := range h.Mesh {
			if port != nil {
				h.MeshEP[j] = driver.NewEndpoint(port)
				h.MeshTx[j] = driver.NewTxChannel(h.MeshEP[j], par)
			}
		}
	}
	return c, nil
}

// switchLink attaches one host of the switched fabric. Every message is
// single-hop through the switch — no relay staging, no routing decision,
// no bypass window — but the NTB protocol machinery is unchanged: each
// per-peer port has its stop-and-wait channel, doorbell announcement,
// and one shared service thread consuming arrivals in doorbell order.
// The switch has no ring to circulate barrier tokens around, so Barrier
// and Sync report false and the runtime's dissemination fallback runs
// over Send — sound here because sends are delivery-synchronous.
type switchLink struct {
	c       *Cluster    // reset: keep; snap: keep — construction identity
	host    *Host       // reset: keep; snap: keep — construction identity
	opts    LinkOptions // reset: keep; snap: keep — construction identity
	deliver Handler     // reset: keep; snap: keep — installed handler survives recycling and forking

	svcQ      *sim.Queue[*ntb.Port] // reset: keep; snap: keep — AssertQuiescent guarantees it drained
	svcActive bool                  // reset: keep; snap: keep — AssertQuiescent guarantees false (service drained)
	svcIdle   *sim.Cond             // reset: keep; snap: keep — no waiters survive a clean run
	fwdQ      *sim.Queue[*fwdMsg]   // reset: keep; snap: keep — AssertQuiescent guarantees it drained
	fwdBusy   int                   // reset: keep; snap: keep — AssertQuiescent guarantees zero
	fwdIdle   *sim.Cond             // reset: keep; snap: keep — no waiters survive a clean run
	pool      bufPool               // reset: keep; snap: keep — warm staging buffers hold no simulation state

	// Per-port ack thunks, built once in Start: a closure literal in
	// serve's loop escapes through the indirect deliver handler and
	// allocates per message (see ringLink for the same pattern).
	acks map[*ntb.Port]func(*sim.Proc) // reset: keep; snap: keep — construction identity, no simulation state

	stats LinkStats
}

func newSwitchLink(c *Cluster, h *Host, opts LinkOptions) *switchLink {
	return &switchLink{
		c:       c,
		host:    h,
		opts:    opts,
		svcQ:    sim.NewQueue[*ntb.Port](hostName("svc:", h.ID)),
		svcIdle: sim.NewCond(hostName("svc-idle:", h.ID)),
		fwdQ:    sim.NewQueue[*fwdMsg](hostName("fwd:", h.ID)),
		fwdIdle: sim.NewCond(hostName("fwd-idle:", h.ID)),
		pool:    bufPool{par: c.Par},
	}
}

// Start wires the data doorbells of every per-peer port and spawns the
// service and forwarder threads.
func (l *switchLink) Start(deliver Handler) {
	l.deliver = deliver
	dataVec := func(port *ntb.Port) func() {
		return func() {
			l.stats.Interrupts++
			l.svcQ.Push(port)
		}
	}
	l.acks = make(map[*ntb.Port]func(*sim.Proc), len(l.host.MeshEP))
	for _, ep := range l.host.MeshEP {
		if ep == nil {
			continue
		}
		ep.Handle(driver.VecPut, dataVec(ep.Port))
		ep.Handle(driver.VecGet, dataVec(ep.Port))
		port := ep.Port
		l.acks[port] = func(pp *sim.Proc) { driver.Ack(pp, port) }
	}
	l.host.Sim.GoDaemon(fmt.Sprintf("shmem-svc:%d", l.host.ID), l.serve)
	l.host.Sim.GoDaemon(fmt.Sprintf("shmem-fwd:%d", l.host.ID), l.forward)
}

// Boot programs every mesh port's LUT with its peer, publishes this
// host's Id to all peers, and polls for theirs — the ring boot exchange
// generalised to a full mesh, in increasing peer order.
func (l *switchLink) Boot(p *sim.Proc) {
	h := l.host
	for _, port := range h.Mesh {
		if port != nil {
			port.LUTAdd(p, port.Peer().RequesterID())
		}
	}
	for _, port := range h.Mesh {
		if port != nil {
			port.PeerSpadWrite(p, driver.SpadBoot, uint32(h.ID)+1)
		}
	}
	for peer, port := range h.Mesh {
		if port == nil {
			continue
		}
		for {
			if v := port.SpadRead(p, driver.SpadBoot); v != 0 {
				if int(v)-1 != peer {
					panic(fmt.Sprintf("fabric: host %d discovered host %d behind its port to %d",
						h.ID, int(v)-1, peer))
				}
				break
			}
			p.Sleep(sim.Microseconds(1))
		}
	}
}

// serve is the shared service thread: one per host, consuming arrivals
// from every peer port in doorbell order.
func (l *switchLink) serve(p *sim.Proc) {
	for {
		port, ok := l.svcQ.TryPop()
		if !ok {
			l.setSvcActive(false)
			port = l.svcQ.Pop(p)
			p.Sleep(l.c.Par.ServiceWake)
		}
		l.setSvcActive(true)
		p.Sleep(l.c.Par.ISRCost)
		info := driver.ReadInfo(p, port)
		payload := port.Inbound(info.Region)[:info.Size]
		if int(info.Dst) != l.host.ID {
			panic(fmt.Sprintf("fabric: switch host %d received a chunk addressed to host %d", l.host.ID, info.Dst))
		}
		l.deliver(p, info, payload, l.acks[port])
	}
}

func (l *switchLink) setSvcActive(active bool) {
	l.svcActive = active
	if !active {
		l.svcIdle.Broadcast()
	}
}

// forward pushes service-thread replies out the requester's port,
// decoupling the service loop from the stop-and-wait ACK (two hosts
// answering each other's gets would otherwise deadlock).
func (l *switchLink) forward(p *sim.Proc) {
	for {
		m, ok := l.fwdQ.TryPop()
		if !ok {
			m = l.fwdQ.Pop(p)
			p.Sleep(l.c.Par.ServiceWake)
		}
		tx := l.host.MeshTx[int(m.info.Dst)]
		tx.SendChunk(p, m.info, driver.Payload{Buf: m.data, N: len(m.data)}, l.opts.Mode)
		if m.data != nil {
			l.pool.put(m.data)
		}
		l.fwdBusy--
		if l.fwdBusy == 0 {
			l.fwdIdle.Broadcast()
		}
	}
}

// Send pushes one chunk through the switch to its destination's port,
// stop-and-wait. The chunk is delivered (copied into the peer's heap
// and acknowledged) before Send returns.
func (l *switchLink) Send(p *sim.Proc, info driver.Info, payload driver.Payload) {
	info.Dir = driver.DirRight
	info.Region = ntb.RegionData
	l.host.MeshTx[int(info.Dst)].SendChunk(p, info, payload, l.opts.Mode)
}

// Reply stages a response on the forwarder for single-hop return.
func (l *switchLink) Reply(p *sim.Proc, orig driver.Info, reply driver.Info, data []byte) {
	reply.Dir = driver.DirRight
	reply.Region = ntb.RegionData
	l.fwdBusy++
	l.fwdQ.Push(&fwdMsg{info: reply, data: data})
}

// Drain flushes queued inbound service work and staged replies.
func (l *switchLink) Drain(p *sim.Proc) {
	for l.svcQ.Len() > 0 || l.svcActive {
		l.svcIdle.Wait(p)
	}
	for l.fwdBusy > 0 {
		l.fwdIdle.Wait(p)
	}
}

// Barrier reports false: the switch has no token ring, so the runtime's
// dissemination barrier runs over Send (delivery-synchronous here).
func (l *switchLink) Barrier(p *sim.Proc) bool { return false }

// Sync reports false for the same reason.
func (l *switchLink) Sync(p *sim.Proc) bool { return false }

// Stats reports the link's doorbell counter (nothing is ever relayed).
func (l *switchLink) Stats() LinkStats { return l.stats }

func (l *switchLink) Lookahead() sim.Duration { return LookaheadFor(KindPCIeSwitch, l.c.Par) }

// AssertQuiescent panics unless the link has fully drained.
func (l *switchLink) AssertQuiescent(op string) {
	if l.svcActive || l.svcQ.Len() != 0 || l.fwdBusy != 0 || l.fwdQ.Len() != 0 {
		panic(fmt.Sprintf("fabric: %s of host %d with service work outstanding", op, l.host.ID))
	}
}

// Reset returns the link to its just-constructed state (ports and
// channels are reset by Cluster.Reset).
func (l *switchLink) Reset() {
	l.stats = LinkStats{}
}

// switchLinkSnap captures a switch link's mutable state.
type switchLinkSnap struct {
	stats LinkStats
}

func (l *switchLink) Snapshot() any { return &switchLinkSnap{stats: l.stats} }

func (l *switchLink) Restore(snap any) {
	l.stats = snap.(*switchLinkSnap).stats
}

// GetBuf borrows a staging buffer of at least n bytes from the host's
// pool; PutBuf returns it.
func (l *switchLink) GetBuf(n int) []byte { return l.pool.get(n) }
func (l *switchLink) PutBuf(b []byte)     { l.pool.put(b) }
