package fabric

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/sim"
)

// The fabric backend boundary. The OpenSHMEM runtime in internal/core is
// fabric-agnostic: it speaks the driver.Info wire protocol and delegates
// everything interconnect-specific — routing, window regions, doorbell
// signalling, service/relay threads, native barriers — to a per-host Link.
// Four backends implement it: the paper's switchless NTB ring (the
// reference; every results/*.csv is produced over it), the two-host NTB
// pair, a modelled PCIe switch with true P2P routing through a shared
// switch core, and a CXL.mem-style mapped window with load/store
// completion and no doorbell round-trips. PROTOCOL.md §13 specifies the
// contract.

// Kind selects a fabric backend.
type Kind int

const (
	// KindNTBRing is the paper's switchless NTB ring: dual-adapter hosts
	// cabled into a ring, rightward (or shortest-arc) routed, with
	// bypass-buffer forwarding and the Fig 6 doorbell barrier.
	KindNTBRing Kind = iota
	// KindNTBPair is two hosts joined by a single NTB cable — the Fig 8
	// "independent" wiring, runnable as a 2-PE world.
	KindNTBPair
	// KindPCIeSwitch is a modelled PCIe switch: every host pair has a
	// true peer-to-peer path, but all pairs share the switch core's
	// upstream bandwidth in the flow network.
	KindPCIeSwitch
	// KindCXL is a CXL.mem-style coherent mapped window: transfers
	// complete like loads and stores, synchronously on the issuing
	// process, with no doorbell interrupts or service-thread wake-ups.
	KindCXL
)

func (k Kind) String() string {
	switch k {
	case KindNTBPair:
		return "ntb-pair"
	case KindPCIeSwitch:
		return "pcie-switch"
	case KindCXL:
		return "cxl"
	default:
		return "ntb-ring"
	}
}

// Kinds lists every fabric backend, in flag-documentation order.
func Kinds() []Kind {
	return []Kind{KindNTBRing, KindNTBPair, KindPCIeSwitch, KindCXL}
}

// ParseKind maps a -fabric flag value to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "ntb-ring", "ring", "ntb":
		return KindNTBRing, nil
	case "ntb-pair", "pair":
		return KindNTBPair, nil
	case "pcie-switch", "switch":
		return KindPCIeSwitch, nil
	case "cxl", "cxl-mem", "cxl.mem":
		return KindCXL, nil
	default:
		return 0, fmt.Errorf("fabric: unknown fabric kind %q (want ntb-ring, ntb-pair, pcie-switch, or cxl)", s)
	}
}

// MaxHostsFor reports the largest cluster the given backend builds —
// the bound commands validate host-count flags against before any world
// is constructed.
func MaxHostsFor(k Kind) int {
	switch k {
	case KindNTBPair:
		return 2
	case KindPCIeSwitch:
		return MaxSwitchHosts
	case KindCXL:
		return MaxCXLHosts
	default:
		return MaxHosts
	}
}

// Shardable reports whether the backend supports conservative
// parallel-DES sharding (PROTOCOL.md §14). The NTB fabrics do: every
// cross-host interaction crosses a cable whose cheapest operation bounds
// the lookahead. The switch fabric routes every pair through one shared
// switch-core flow server and the CXL fabric completes remote stores
// inline under a shared home-agent mutex — both are single-shard by
// construction.
func Shardable(k Kind) bool {
	return k == KindNTBRing || k == KindNTBPair
}

// LookaheadFor returns the conservative cross-shard synchronisation
// bound of a backend under the given profile: the minimum virtual time
// in which one host can affect another. For the NTB fabrics that is the
// cheapest cross-cable operation — a posted MMIO write — capped at half
// the non-posted read so a remote read fits a there-and-back pair of
// posts; for CXL it is the fixed per-operation window latency. Every
// backend reports a bound (the Link contract requires one) even where
// Shardable says the fabric cannot split.
func LookaheadFor(k Kind, par *model.Params) sim.Duration {
	if k == KindCXL {
		return par.CXLLatency
	}
	l := par.MMIOWrite
	if half := par.MMIORead / 2; half < l {
		l = half
	}
	return l
}

// Config describes a cluster to build; New is the validated entry point
// every topology constructor funnels through.
type Config struct {
	// Sim is the world's simulator. It must be nil when Shards >= 2: a
	// sharded cluster builds one member simulator per shard itself (with
	// the process-default scheduler) and ties them into a
	// sim.ShardGroup.
	Sim   *sim.Simulator
	Par   *model.Params
	Hosts int
	Kind  Kind
	// Shards splits the cluster's hosts across that many shard
	// simulators (contiguous host ranges), 0 or 1 meaning the ordinary
	// single-simulator world. Only shardable backends accept >= 2.
	Shards int
}

// New builds a cluster of the configured kind. Host-count limits are
// per-backend: rings scale to MaxHosts, pairs are exactly two hosts, the
// switch is bounded by its port count, CXL by its window decoder count.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards >= 2 {
		if !Shardable(cfg.Kind) {
			return nil, fmt.Errorf("fabric: the %s fabric cannot shard (shared fabric core); run with -shards 1", cfg.Kind)
		}
		if cfg.Sim != nil {
			return nil, fmt.Errorf("fabric: a sharded cluster builds its own member simulators; leave Config.Sim nil")
		}
		if cfg.Shards > cfg.Hosts {
			return nil, fmt.Errorf("fabric: %d shards for %d hosts; a shard needs at least one host", cfg.Shards, cfg.Hosts)
		}
	}
	switch cfg.Kind {
	case KindNTBRing:
		return newRing(cfg.Sim, cfg.Par, cfg.Hosts, cfg.Shards)
	case KindNTBPair:
		if cfg.Hosts != 2 {
			return nil, fmt.Errorf("fabric: the ntb-pair fabric joins exactly 2 hosts by one cable, got %d", cfg.Hosts)
		}
		return newPair(cfg.Sim, cfg.Par, cfg.Shards)
	case KindPCIeSwitch:
		return NewSwitch(cfg.Sim, cfg.Par, cfg.Hosts)
	case KindCXL:
		return NewCXL(cfg.Sim, cfg.Par, cfg.Hosts)
	default:
		return nil, fmt.Errorf("fabric: unknown fabric kind %d", cfg.Kind)
	}
}

// Routing selects how data is steered around a ring fabric.
type Routing int

const (
	// RouteRightward is the paper's policy: all data travels toward
	// increasing host Ids, which is how the 3-host testbed exhibits
	// 2-hop transfers. Get replies return leftward along the request's
	// path in either policy.
	RouteRightward Routing = iota
	// RouteShortest sends each message around the shorter arc of the
	// ring (ties go rightward). It halves the average data hop count
	// but doubles barrier cost: with traffic in both directions the
	// ring barrier must circulate its start/end tokens both ways to
	// keep the delivery-flush guarantee.
	RouteShortest
)

func (r Routing) String() string {
	if r == RouteShortest {
		return "shortest"
	}
	return "rightward"
}

// LinkOptions configure the per-host links of a world.
type LinkOptions struct {
	// Mode is the data-movement mechanism: driver.ModeDMA (default) or
	// driver.ModeCPU.
	Mode driver.Mode
	// Routing selects the data steering policy (ring fabrics only).
	Routing Routing
	// Pipeline >= 2 enables the pipelined header-in-window link protocol
	// with that many slots per direction (ring fabrics only).
	Pipeline int
}

// LinkStats counts fabric-level activity a Link performs on the
// runtime's behalf.
type LinkStats struct {
	// Interrupts is the number of doorbell interrupts taken (zero on a
	// load/store fabric such as CXL).
	Interrupts uint64
	// ChunksForwarded counts transit chunks relayed by the host's
	// store-and-forward path (zero on single-hop fabrics).
	ChunksForwarded uint64
}

// Handler consumes one message addressed to the local host. payload
// aliases fabric-owned space (an inbound window, a pipeline slot, or the
// sender's buffer on a load/store fabric); the handler must copy what it
// keeps before calling ack, which releases that space to the sender.
type Handler func(p *sim.Proc, info driver.Info, payload []byte, ack func(*sim.Proc))

// Link is one host's attachment to the fabric: the transport the
// OpenSHMEM runtime sends through and is delivered from. Implementations
// own all interconnect-specific machinery — routing direction and window
// region selection, service and relay daemons, doorbell vectors, buffer
// staging — so the runtime above contains no backend branches.
//
// Ordering contract: messages from one host to one destination are
// delivered in send order. Send blocks to local completion (the payload
// buffer is reusable on return); whether remote delivery has also
// happened by then is fabric-specific (single-hop NTB and CXL: yes;
// multi-hop ring: no). Reply routes a response generated inside a
// Handler back to the requester without deadlocking the service path.
type Link interface {
	// Start installs the delivery handler and spawns the link's daemons.
	// Called exactly once, before virtual time starts, in host order.
	Start(deliver Handler)
	// Boot performs the fabric's pre-transfer setup exchange (LUT
	// programming, Id publication) and panics if discovery contradicts
	// the built topology. Runs inside the simulation, once per host.
	Boot(p *sim.Proc)
	// Send routes one protocol chunk toward info.Dst, filling in the
	// fabric-owned Info fields (direction, window region). It blocks
	// until the chunk is locally complete.
	Send(p *sim.Proc, info driver.Info, payload driver.Payload)
	// Reply routes a response produced by the delivery handler for orig
	// back to its requester. data, if non-nil, came from GetBuf and is
	// returned to the pool after the reply is pushed.
	Reply(p *sim.Proc, orig driver.Info, reply driver.Info, data []byte)
	// Drain blocks until everything that reached this host has moved on:
	// inbound service work consumed and staged relays pushed one hop.
	// The barrier protocols interpose it before propagating tokens.
	Drain(p *sim.Proc)
	// Barrier runs the fabric's native delivery barrier, if it has one,
	// and reports whether it did; on false the runtime falls back to its
	// fabric-agnostic dissemination barrier over Send.
	Barrier(p *sim.Proc) bool
	// Sync runs the fabric's native synchronisation-only barrier (no
	// delivery flush), if it has one; on false the runtime falls back.
	Sync(p *sim.Proc) bool
	// Stats reports fabric-level activity counters.
	Stats() LinkStats
	// Reset returns the link to its just-constructed state; the world
	// must be quiescent (see AssertQuiescent).
	Reset()
	// AssertQuiescent panics (naming op) unless the link has fully
	// drained: no queued or mid-service inbound work, no staged relays,
	// no buffered tokens.
	AssertQuiescent(op string)
	// Lookahead reports the backend's conservative cross-shard
	// synchronisation bound — the minimum virtual time in which this
	// host can affect another (PROTOCOL.md §14). Equal across a
	// cluster's links; meaningful even on fabrics Shardable rejects.
	Lookahead() sim.Duration
	// Snapshot captures the link's mutable state (stats, protocol
	// cursors); Restore applies a snapshot from a same-shaped link.
	Snapshot() any
	Restore(s any)
	// GetBuf borrows a staging buffer of at least n bytes from the
	// host's pool; PutBuf returns it.
	GetBuf(n int) []byte
	PutBuf(b []byte)
}

// fwdMsg is a staged chunk awaiting relay by a forwarder daemon.
type fwdMsg struct {
	info driver.Info
	data []byte
}

// Links builds one Link per host for this cluster's fabric kind. It
// validates the option/fabric combination: the pipelined protocol and
// shortest-arc routing exist only on the ring.
func (c *Cluster) Links(opts LinkOptions) ([]Link, error) {
	if opts.Pipeline >= 2 && c.kind != KindNTBRing {
		return nil, fmt.Errorf("fabric: the pipelined header-in-window protocol requires the ntb-ring fabric, not %s", c.kind)
	}
	if opts.Routing == RouteShortest && c.kind != KindNTBRing {
		return nil, fmt.Errorf("fabric: shortest-arc routing requires the ntb-ring fabric, not %s", c.kind)
	}
	if opts.Pipeline >= 2 {
		slotPayload := c.Par.WindowSize/opts.Pipeline - driver.SlotHeaderBytes
		maxChunk := c.Par.PutChunk
		if c.Par.GetChunk > maxChunk {
			maxChunk = c.Par.GetChunk
		}
		if c.Par.BypassChunk > maxChunk {
			maxChunk = c.Par.BypassChunk
		}
		if maxChunk > slotPayload {
			return nil, fmt.Errorf("fabric: pipeline depth %d leaves %d-byte slot payloads, below the largest protocol chunk %d",
				opts.Pipeline, slotPayload, maxChunk)
		}
	}
	links := make([]Link, c.N())
	for i, h := range c.Hosts {
		switch c.kind {
		case KindNTBPair:
			links[i] = newPairLink(c, h, opts)
		case KindPCIeSwitch:
			links[i] = newSwitchLink(c, h, opts)
		case KindCXL:
			links[i] = newCXLLink(c, h, opts)
		default:
			links[i] = newRingLink(c, h, opts)
		}
	}
	return links, nil
}

// bufPool is the per-host staging-buffer pool every backend embeds.
type bufPool struct {
	par  *model.Params
	bufs [][]byte
}

// get returns a staging buffer of at least n bytes from the pool.
func (bp *bufPool) get(n int) []byte {
	if last := len(bp.bufs) - 1; last >= 0 {
		b := bp.bufs[last]
		bp.bufs = bp.bufs[:last]
		if cap(b) >= n {
			return b[:n]
		}
	}
	if n < bp.par.BypassChunk {
		return make([]byte, n, bp.par.BypassChunk)
	}
	return make([]byte, n)
}

// put returns a staging buffer to the pool.
func (bp *bufPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp.bufs = append(bp.bufs, b[:0])
}
