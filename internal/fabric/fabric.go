// Package fabric assembles simulated hosts into interconnect topologies
// and exposes them to the runtime through the Link backend interface
// (link.go): the paper's switchless N-host NTB ring (each host carries
// two NTB adapters, cabled to its neighbours), the two-host independent
// pair used as the Fig 8 baseline, a modelled PCIe switch with true P2P
// routing through a shared switch core, and a CXL.mem-style coherent
// mapped window.
package fabric

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/ntb"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// Host is one computing node: a root complex, up to two NTB adapters
// (left cables toward hostID-1, right toward hostID+1), and the driver
// endpoints and transmit channels over them. On the switch fabric the
// two ring sides stay empty and the host instead carries one mesh port
// per peer.
type Host struct {
	ID int
	RC *pcie.Server

	// Sim and Net are the simulator and flow network this host's devices
	// live on: the cluster-wide ones in an ordinary world, the host's
	// shard's in a sharded world. Shard is the owning shard index (0
	// when unsharded). Everything spawned on a host's behalf — device
	// daemons, PE processes, helper procs — must run on Host.Sim.
	Sim   *sim.Simulator
	Net   *pcie.Network
	Shard int

	Left, Right     *ntb.Port         // nil when the side is not cabled
	LeftEP, RightEP *driver.Endpoint  // nil when the side is not cabled
	TxLeft, TxRight *driver.TxChannel // nil when the side is not cabled

	// Switch-fabric mesh: per-peer ports/endpoints/channels indexed by
	// peer host Id (the self slot is nil). Nil on other fabrics.
	Mesh   []*ntb.Port
	MeshEP []*driver.Endpoint
	MeshTx []*driver.TxChannel

	cluster *Cluster
}

// Cluster is a set of hosts sharing one platform profile and — in an
// ordinary world — one simulator and flow network. A sharded cluster
// (PROTOCOL.md §14) spreads its hosts across several shard simulators
// tied into a sim.ShardGroup, each with its own flow network; Sim and
// Net then name shard 0's, and code driving the world goes through
// RunSim/ShutdownSim/EventsExecuted so both shapes behave alike.
type Cluster struct {
	Sim   *sim.Simulator // snap: keep — shard-0 alias; snapshotted per shard via sims
	Par   *model.Params  // reset: keep; snap: keep — construction identity
	Net   *pcie.Network  // reset: keep; snap: keep — shard-0 alias; handled per shard via nets
	Hosts []*Host

	// Group ties the shard simulators together; nil when unsharded.
	// sims and nets hold one entry per shard (a single entry — Sim and
	// Net — when unsharded). All construction identity.
	Group *sim.ShardGroup // snap: keep — construction identity; member clocks captured via sims
	sims  []*sim.Simulator // reset: keep; snap: keep — construction identity
	nets  []*pcie.Network  // reset: keep; snap: keep — construction identity

	kind Kind      // reset: keep — topology identity
	cxl  *cxlState // reset: keep; snap: keep — shared CXL fabric state holds no mutable registers
}

// MaxHosts is the largest ring NewRing accepts, bounded by the driver's
// Info header host-Id width.
const MaxHosts = driver.MaxHosts

// NewRing builds the paper's switchless ring of n hosts, 2 ≤ n ≤
// MaxHosts. Host i's right adapter is cabled to host (i+1) mod n's left
// adapter; with n = 2 this yields two physical links, one per adapter
// pair, exactly as two dual-adapter hosts would be cabled. A host count
// outside the buildable range returns a descriptive error rather than
// panicking — ring size is routinely user input (flags, sweep axes).
func NewRing(s *sim.Simulator, par *model.Params, n int) (*Cluster, error) {
	return newRing(s, par, n, 1)
}

func newRing(s *sim.Simulator, par *model.Params, n, shards int) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("fabric: a ring needs at least 2 hosts (each cabled to two neighbours), got %d", n)
	}
	if n > MaxHosts {
		return nil, fmt.Errorf("fabric: ring of %d hosts exceeds the %d-host limit of the driver's Info record", n, MaxHosts)
	}
	c := newCluster(s, par, n, KindNTBRing, shards)
	for i, h := range c.Hosts {
		next := c.Hosts[(i+1)%n]
		h.Right = ntb.NewPort(fmt.Sprintf("h%d.right", i), h.Sim, h.Net, par, h.RC)
		next.Left = ntb.NewPort(fmt.Sprintf("h%d.left", next.ID), next.Sim, next.Net, par, next.RC)
		// Both adapters of link i run at that link's chipset-dependent
		// engine rate (the paper mixes PEX 8733 and 8749 parts).
		h.Right.SetEngineBW(par.LinkEngineBW(i))
		next.Left.SetEngineBW(par.LinkEngineBW(i))
		connectHosts(h.Right, next.Left, h, next)
	}
	for _, h := range c.Hosts {
		h.finishSides(par)
	}
	return c, nil
}

// connectHosts cables two ports, locally when both hosts live on one
// shard simulator and across the shard boundary otherwise.
func connectHosts(a, b *ntb.Port, ha, hb *Host) {
	if ha.Sim == hb.Sim {
		ntb.Connect(a, b)
		return
	}
	ntb.ConnectRemote(a, b)
}

// NewPair builds the Fig 8 "independent" baseline: two hosts joined by a
// single NTB link (host 0's right adapter to host 1's left adapter), with
// the other adapter slots empty. The error return exists for signature
// consistency with the other constructors (pair building itself cannot
// fail; bad profiles panic, as everywhere).
func NewPair(s *sim.Simulator, par *model.Params) (*Cluster, error) {
	return newPair(s, par, 1)
}

func newPair(s *sim.Simulator, par *model.Params, shards int) (*Cluster, error) {
	c := newCluster(s, par, 2, KindNTBPair, shards)
	a, b := c.Hosts[0], c.Hosts[1]
	a.Right = ntb.NewPort("h0.right", a.Sim, a.Net, par, a.RC)
	b.Left = ntb.NewPort("h1.left", b.Sim, b.Net, par, b.RC)
	a.Right.SetEngineBW(par.LinkEngineBW(0))
	b.Left.SetEngineBW(par.LinkEngineBW(0))
	connectHosts(a.Right, b.Left, a, b)
	a.finishSides(par)
	b.finishSides(par)
	return c, nil
}

// shardOf maps host i of n onto one of `shards` contiguous host ranges.
func shardOf(i, n, shards int) int { return i * shards / n }

func newCluster(s *sim.Simulator, par *model.Params, n int, kind Kind, shards int) *Cluster {
	if err := par.Validate(); err != nil {
		panic(fmt.Sprintf("fabric: %v", err))
	}
	if shards < 1 {
		shards = 1
	}
	c := &Cluster{Par: par, kind: kind}
	if shards == 1 {
		if s == nil {
			panic("fabric: unsharded cluster needs a simulator")
		}
		c.Sim = s
		c.sims = []*sim.Simulator{s}
		c.nets = []*pcie.Network{pcie.NewNetwork(s)}
	} else {
		if s != nil {
			panic("fabric: a sharded cluster builds its own member simulators")
		}
		c.sims = make([]*sim.Simulator, shards)
		c.nets = make([]*pcie.Network, shards)
		for i := range c.sims {
			c.sims[i] = sim.New()
			c.nets[i] = pcie.NewNetwork(c.sims[i])
		}
		c.Group = sim.NewShardGroup(LookaheadFor(kind, par), c.sims...)
		c.Sim = c.sims[0]
	}
	c.Net = c.nets[0]
	for i := 0; i < n; i++ {
		shard := shardOf(i, n, shards)
		h := &Host{
			ID:      i,
			RC:      pcie.NewServer(fmt.Sprintf("rc:h%d", i), par.RootComplexBW),
			Sim:     c.sims[shard],
			Net:     c.nets[shard],
			Shard:   shard,
			cluster: c,
		}
		c.Hosts = append(c.Hosts, h)
	}
	return c
}

// finishSides builds endpoints and transmit channels for the cabled
// sides and assigns the PCIe requester IDs the LUTs filter on: bit 0
// carries the side, the rest the host Id plus one (so no assigned ID is
// the unconfigured-port zero), giving every adapter in a ring of any
// buildable size a unique ID. (The historical right-side scheme,
// id<<1|0x100, collided across hosts 128 apart.)
func (h *Host) finishSides(par *model.Params) {
	if h.Left != nil {
		h.Left.SetRequesterID(uint16(h.ID+1)<<1 | 1)
		h.LeftEP = driver.NewEndpoint(h.Left)
		h.TxLeft = driver.NewTxChannel(h.LeftEP, par)
	}
	if h.Right != nil {
		h.Right.SetRequesterID(uint16(h.ID+1) << 1)
		h.RightEP = driver.NewEndpoint(h.Right)
		h.TxRight = driver.NewTxChannel(h.RightEP, par)
	}
}

// Reset returns every device in the cluster to power-on state — NTB
// ports (scratchpads, doorbells, dirty window extents), transmit
// channels, the flow network — and rewinds the shared simulator to time
// zero. The object graph itself (ports, routes, endpoints, device
// daemons) survives, which is the entire point: a reset cluster replays
// the boot exchange with fresh registers but none of the construction
// cost. Worlds with failure injection (an unplugged cable) are not
// resettable: the wedged DMA daemon makes the simulator refuse anyway.
func (c *Cluster) Reset() {
	for _, h := range c.Hosts {
		if h.Left != nil {
			h.Left.Reset()
		}
		if h.Right != nil {
			h.Right.Reset()
		}
		if h.TxLeft != nil {
			h.TxLeft.Reset()
		}
		if h.TxRight != nil {
			h.TxRight.Reset()
		}
		for _, port := range h.Mesh {
			if port != nil {
				port.Reset()
			}
		}
		for _, tx := range h.MeshTx {
			if tx != nil {
				tx.Reset()
			}
		}
	}
	if c.cxl != nil {
		c.cxl.Reset()
	}
	for _, net := range c.nets {
		net.Reset()
	}
	if c.Group != nil {
		c.Group.Reset()
	} else {
		c.Sim.Reset()
	}
}

// Shards returns how many shard simulators the cluster's hosts are
// spread across (1 when unsharded).
func (c *Cluster) Shards() int { return len(c.sims) }

// RunSim drives the world's simulation to completion — the shard
// group's conservative window loop when sharded, the plain scheduler
// otherwise.
func (c *Cluster) RunSim() error {
	if c.Group != nil {
		return c.Group.Run()
	}
	return c.Sim.Run()
}

// ShutdownSim releases every simulator goroutine the cluster owns (all
// shard members and their window workers).
func (c *Cluster) ShutdownSim() {
	if c.Group != nil {
		c.Group.Shutdown()
		return
	}
	c.Sim.Shutdown()
}

// EventsExecuted sums dispatched events across the cluster's shard
// simulators — the same kernel-cost measure at any shard count.
func (c *Cluster) EventsExecuted() uint64 {
	if c.Group != nil {
		return c.Group.EventsExecuted()
	}
	return c.Sim.EventsExecuted()
}

// Unplug is the uniform failure-injection surface: it fails the
// rightward cable of host i where the fabric has one, and reports a
// descriptive error where it does not — the pcie-switch and cxl fabrics
// have no cable to pull (their hosts meet at a shared fabric core), and
// a sharded world pins its cables for the conservative-synchronisation
// contract. Campaign tooling probes capability through the error rather
// than discovering a missing method.
func (c *Cluster) Unplug(i int) error {
	switch c.kind {
	case KindNTBRing, KindNTBPair:
		if c.Group != nil {
			return fmt.Errorf("fabric: unplug not supported on a sharded %s world (cross-shard cables are pinned); run with -shards 1", c.kind)
		}
		h := c.Hosts[((i%c.N())+c.N())%c.N()]
		if h.Right == nil {
			return fmt.Errorf("fabric: host %d has no rightward cable to unplug", h.ID)
		}
		h.Right.Unplug()
		return nil
	default:
		return fmt.Errorf("fabric: unplug not supported on %s (no cable between hosts; the fabric core is shared)", c.kind)
	}
}

// CutLink fails the cable between host i and host (i+1) mod N, for
// failure injection (see ntb.Port.Unplug for the resulting semantics).
func (c *Cluster) CutLink(i int) {
	h := c.Hosts[i%c.N()]
	if h.Right == nil {
		panic(fmt.Sprintf("fabric: host %d has no rightward cable", h.ID))
	}
	h.Right.Unplug()
}

// N returns the number of hosts in the cluster.
func (c *Cluster) N() int { return len(c.Hosts) }

// Ring reports whether the cluster is a full ring (every side cabled).
func (c *Cluster) Ring() bool { return c.kind == KindNTBRing }

// Kind reports which fabric backend the cluster was built for.
func (c *Cluster) Kind() Kind { return c.kind }

// RightNeighbor returns the host Id one hop rightward.
func (h *Host) RightNeighbor() int { return (h.ID + 1) % h.cluster.N() }

// LeftNeighbor returns the host Id one hop leftward.
func (h *Host) LeftNeighbor() int { return (h.ID - 1 + h.cluster.N()) % h.cluster.N() }

// HopsRight returns how many rightward hops reach dst. The paper routes
// all data rightward around the ring, which is how a three-host ring
// exhibits both one- and two-hop transfers.
func (h *Host) HopsRight(dst int) int {
	return (dst - h.ID + h.cluster.N()) % h.cluster.N()
}

// Boot performs the paper's pre-setup exchange on every cabled port of h:
// each side publishes its host Id (plus one, so zero means "not yet")
// through the reserved boot scratchpad and polls for the neighbour's.
// It must run inside the simulation, once per host, before any transfer.
// It returns the discovered (leftID, rightID), with -1 for missing sides.
func (h *Host) Boot(p *sim.Proc) (leftID, rightID int) {
	leftID, rightID = -1, -1
	// Program the requester-ID LUTs first (the paper's "write/read ID
	// setup for LUT entry mapping"): each port admits its cable peer.
	for _, port := range []*ntb.Port{h.Left, h.Right} {
		if port != nil {
			port.LUTAdd(p, port.Peer().RequesterID())
		}
	}
	publish := func(port *ntb.Port) {
		if port != nil {
			port.PeerSpadWrite(p, driver.SpadBoot, uint32(h.ID)+1)
		}
	}
	publish(h.Left)
	publish(h.Right)
	poll := func(port *ntb.Port) int {
		if port == nil {
			return -1
		}
		for {
			if v := port.SpadRead(p, driver.SpadBoot); v != 0 {
				return int(v) - 1
			}
			p.Sleep(sim.Microseconds(1))
		}
	}
	leftID = poll(h.Left)
	rightID = poll(h.Right)
	return leftID, rightID
}
