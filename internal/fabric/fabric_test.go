package fabric

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestRingWiring(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := sim.New()
			c, err := NewRing(s, model.Default(), n)
			if err != nil {
				t.Fatal(err)
			}
			if c.N() != n {
				t.Fatalf("N = %d", c.N())
			}
			for i, h := range c.Hosts {
				if h.Left == nil || h.Right == nil {
					t.Fatalf("host %d missing adapters", i)
				}
				next := c.Hosts[(i+1)%n]
				if h.Right.Peer() != next.Left {
					t.Fatalf("host %d right not cabled to host %d left", i, next.ID)
				}
				if h.LeftEP == nil || h.RightEP == nil || h.TxLeft == nil || h.TxRight == nil {
					t.Fatalf("host %d driver objects missing", i)
				}
			}
		})
	}
}

func TestRingSizeValidation(t *testing.T) {
	for _, n := range []int{-1, 0, 1, MaxHosts + 1} {
		c, err := NewRing(sim.New(), model.Default(), n)
		if err == nil || c != nil {
			t.Fatalf("NewRing(%d) = (%v, %v), want descriptive error", n, c, err)
		}
	}
	if _, err := NewRing(sim.New(), model.Default(), 2); err != nil {
		t.Fatalf("NewRing(2): %v", err)
	}
}

func TestPairWiring(t *testing.T) {
	s := sim.New()
	c, err := NewPair(s, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.Hosts[0], c.Hosts[1]
	if a.Right == nil || b.Left == nil {
		t.Fatal("pair link missing")
	}
	if a.Left != nil || b.Right != nil {
		t.Fatal("pair should leave outer adapters empty")
	}
	if a.Right.Peer() != b.Left {
		t.Fatal("pair not cabled")
	}
	if c.Ring() {
		t.Fatal("pair reported as ring")
	}
}

func TestNeighborsAndHops(t *testing.T) {
	s := sim.New()
	c, err := NewRing(s, model.Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	h1 := c.Hosts[1]
	if h1.RightNeighbor() != 2 || h1.LeftNeighbor() != 0 {
		t.Fatalf("neighbors of 1 = (%d, %d)", h1.LeftNeighbor(), h1.RightNeighbor())
	}
	h3 := c.Hosts[3]
	if h3.RightNeighbor() != 0 {
		t.Fatalf("ring wrap: right of 3 = %d", h3.RightNeighbor())
	}
	cases := []struct{ src, dst, hops int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {3, 0, 1}, {2, 1, 3},
	}
	for _, tc := range cases {
		if got := c.Hosts[tc.src].HopsRight(tc.dst); got != tc.hops {
			t.Errorf("hops %d->%d = %d, want %d", tc.src, tc.dst, got, tc.hops)
		}
	}
}

func TestBootExchangesIDs(t *testing.T) {
	s := sim.New()
	c, err := NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	type res struct{ left, right int }
	results := make([]res, 3)
	for _, h := range c.Hosts {
		h := h
		s.Go(fmt.Sprintf("boot%d", h.ID), func(p *sim.Proc) {
			l, r := h.Boot(p)
			results[h.ID] = res{l, r}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		wantL := (i - 1 + 3) % 3
		wantR := (i + 1) % 3
		if r.left != wantL || r.right != wantR {
			t.Errorf("host %d discovered (%d, %d), want (%d, %d)", i, r.left, r.right, wantL, wantR)
		}
	}
}

func TestBootOnPairReportsMissingSides(t *testing.T) {
	s := sim.New()
	c, err := NewPair(s, model.Default())
	if err != nil {
		t.Fatal(err)
	}
	var l0, r0, l1, r1 int
	s.Go("b0", func(p *sim.Proc) { l0, r0 = c.Hosts[0].Boot(p) })
	s.Go("b1", func(p *sim.Proc) { l1, r1 = c.Hosts[1].Boot(p) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if l0 != -1 || r0 != 1 {
		t.Errorf("host0 boot = (%d, %d), want (-1, 1)", l0, r0)
	}
	if l1 != 0 || r1 != -1 {
		t.Errorf("host1 boot = (%d, %d), want (0, -1)", l1, r1)
	}
}

func TestBadProfileRejected(t *testing.T) {
	p := model.Default()
	p.Gen = 9
	defer func() {
		if recover() == nil {
			t.Fatal("invalid profile accepted")
		}
	}()
	NewRing(sim.New(), p, 3) //nolint:errcheck — panics before returning
}

func TestBootProgramsLUTs(t *testing.T) {
	s := sim.New()
	c, err := NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range c.Hosts {
		h := h
		s.Go(fmt.Sprintf("boot%d", h.ID), func(p *sim.Proc) { h.Boot(p) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, h := range c.Hosts {
		if !h.Left.LUTContains(h.Left.Peer().RequesterID()) {
			t.Errorf("host %d left LUT missing its peer", h.ID)
		}
		if !h.Right.LUTContains(h.Right.Peer().RequesterID()) {
			t.Errorf("host %d right LUT missing its peer", h.ID)
		}
	}
	// Requester IDs are unique across the fabric.
	seen := map[uint16]string{}
	for _, h := range c.Hosts {
		for _, port := range []string{"left", "right"} {
			var id uint16
			if port == "left" {
				id = h.Left.RequesterID()
			} else {
				id = h.Right.RequesterID()
			}
			if prev, dup := seen[id]; dup {
				t.Errorf("requester id %#x reused by %s and host %d %s", id, prev, h.ID, port)
			}
			seen[id] = fmt.Sprintf("host %d %s", h.ID, port)
		}
	}
}
