package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

// loadFixtureEngine builds an engine over one fixture package.
func loadFixtureEngine(t *testing.T, name string) (*Engine, *Package) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return NewEngine([]*Package{pkg}), pkg
}

// lookupFunc resolves a package-scope function by name.
func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture has no function %s", name)
	}
	return fn
}

// lookupMethod resolves a named type's method.
func lookupMethod(t *testing.T, pkg *Package, typeName, method string) *types.Func {
	t.Helper()
	tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("fixture has no type %s", typeName)
	}
	named := tn.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	t.Fatalf("type %s has no method %s", typeName, method)
	return nil
}

// TestEngineCallGraph checks the decl index and the callee/caller edges
// over the shardsafe fixture: badIndirect calls stamp; stamp's only
// caller is badIndirect.
func TestEngineCallGraph(t *testing.T) {
	e, pkg := loadFixtureEngine(t, "shardsafe")

	stamp := lookupFunc(t, pkg, "stamp")
	badIndirect := lookupMethod(t, pkg, "Port", "badIndirect")

	if fd, p := e.Decl(stamp); fd == nil || p != pkg {
		t.Fatalf("Decl(stamp) = (%v, %v), want fixture declaration", fd, p)
	}

	foundEdge := false
	for _, callee := range e.Callees(badIndirect) {
		if callee == stamp {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Errorf("Callees(badIndirect) is missing stamp")
	}

	callers := e.Callers(stamp)
	if len(callers) != 1 || callers[0].Caller != badIndirect {
		t.Errorf("Callers(stamp) = %v, want exactly badIndirect", callers)
	}
}

// TestEngineReachable checks transitive closure: badRecvIndirect →
// admit, and closures' calls attributed to their declaring function
// (goodWrite reaches Post through the literal it passes to it).
func TestEngineReachable(t *testing.T) {
	e, pkg := loadFixtureEngine(t, "shardsafe")

	badRecvIndirect := lookupMethod(t, pkg, "Port", "badRecvIndirect")
	admit := lookupMethod(t, pkg, "Port", "admit")
	stamp := lookupFunc(t, pkg, "stamp")

	reach := e.Reachable([]*types.Func{badRecvIndirect})
	if !reach[admit] {
		t.Errorf("admit not reachable from badRecvIndirect")
	}
	if reach[stamp] {
		t.Errorf("stamp should not be reachable from badRecvIndirect")
	}

	goodWrite := lookupMethod(t, pkg, "Port", "goodWrite")
	post := lookupMethod(t, pkg, "Sim", "Post")
	if !e.Reachable([]*types.Func{goodWrite})[post] {
		t.Errorf("Post not reachable from goodWrite (closure edges lost?)")
	}
}

// TestEngineImplementers checks interface lookup over the
// fabriccontract fixture: the full implementers satisfy Link, the
// partial ones do not.
func TestEngineImplementers(t *testing.T) {
	e, _ := loadFixtureEngine(t, "fabriccontract")

	links := e.Interfaces("Link")
	if len(links) != 1 {
		t.Fatalf("Interfaces(Link) found %d interfaces, want 1", len(links))
	}
	iface := links[0].Underlying().(*types.Interface)

	got := map[string]bool{}
	for _, named := range e.Implementers(iface) {
		got[named.Obj().Name()] = true
	}
	for _, want := range []string{"goodLink", "stubLink"} {
		if !got[want] {
			t.Errorf("Implementers(Link) is missing %s (got %v)", want, got)
		}
	}
	for _, reject := range []string{"halfLink", "traceAdapter", "resetOnly"} {
		if got[reject] {
			t.Errorf("Implementers(Link) wrongly includes %s", reject)
		}
	}
}

// TestEngineMemo checks the memo builds once and is shared.
func TestEngineMemo(t *testing.T) {
	e, _ := loadFixtureEngine(t, "shardsafe")
	builds := 0
	build := func() any { builds++; return builds }
	if v := e.Memo("test", build); v.(int) != 1 {
		t.Fatalf("first Memo = %v, want 1", v)
	}
	if v := e.Memo("test", build); v.(int) != 1 {
		t.Fatalf("second Memo = %v, want cached 1", v)
	}
	if builds != 1 {
		t.Fatalf("memo built %d times, want 1", builds)
	}
}

// TestRunParallelDeterministic checks the parallel runner returns the
// identical diagnostic stream at every worker count — the property the
// lint gate's byte-identical output rests on.
func TestRunParallelDeterministic(t *testing.T) {
	var pkgs []*Package
	for _, name := range []string{"shardsafe", "fabriccontract", "waiverdrift", "simdet"} {
		pkg, err := LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	analyzers := []*Analyzer{Simdet, Shardsafe, Fabriccontract, Waiverdrift}

	base, timings := RunParallel(pkgs, analyzers, 1)
	if len(base) == 0 {
		t.Fatal("expected findings across the fixture packages")
	}
	if len(timings) != len(analyzers)+1 || timings[0].Name != "engine" {
		t.Fatalf("timings = %v, want engine + one entry per analyzer", timings)
	}
	for _, workers := range []int{2, 4, 13} {
		got, _ := RunParallel(pkgs, analyzers, workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d diagnostics, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Errorf("workers=%d: diagnostic %d = %v, want %v", workers, i, got[i], base[i])
			}
		}
	}
}
