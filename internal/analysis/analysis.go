// Package analysis is the repository's static-analysis toolkit: a small,
// dependency-free core modelled on golang.org/x/tools/go/analysis plus
// the four ntblint analyzers that machine-check the simulator's
// determinism, reset, and hot-path invariants (see LINT.md).
//
// The x/tools module is deliberately not imported — the reproduction
// builds with the standard library alone — so this package re-creates
// the two pieces of go/analysis it needs: an Analyzer/Pass/Diagnostic
// vocabulary and a loader that parses and type-checks packages with the
// stdlib source importer. The API mirrors go/analysis closely enough
// that porting an analyzer between the two is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named, self-contained check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waivers.
	Name string

	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string

	// Match restricts which packages the runner hands to the analyzer;
	// nil means every loaded package. Fixture tests bypass Match and
	// run the analyzer directly.
	Match func(pkgPath string) bool

	// Run inspects one package and reports findings through the pass.
	Run func(pass *Pass)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives directiveIndex
	diags      []Diagnostic
}

// Diagnostic is one finding, carrying a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package it matches and returns the
// combined findings sorted by position, so output is stable regardless
// of package or analyzer order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		idx := indexDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				directives: idx,
			}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
