// Package analysis is the repository's static-analysis toolkit: a small,
// dependency-free core modelled on golang.org/x/tools/go/analysis plus
// the four ntblint analyzers that machine-check the simulator's
// determinism, reset, and hot-path invariants (see LINT.md).
//
// The x/tools module is deliberately not imported — the reproduction
// builds with the standard library alone — so this package re-creates
// the two pieces of go/analysis it needs: an Analyzer/Pass/Diagnostic
// vocabulary and a loader that parses and type-checks packages with the
// stdlib source importer. The API mirrors go/analysis closely enough
// that porting an analyzer between the two is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Analyzer is one named, self-contained check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waivers.
	Name string

	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string

	// Match restricts which packages the runner hands to the analyzer;
	// nil means every loaded package. Fixture tests bypass Match and
	// run the analyzer directly.
	Match func(pkgPath string) bool

	// Run inspects one package and reports findings through the pass.
	Run func(pass *Pass)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Engine is the cross-package fact layer built over the whole load
	// (call graph, declaration index, implementer lookup, memo space).
	// It is shared by every pass in one Run and safe for concurrent use.
	Engine *Engine

	directives directiveIndex
	diags      []Diagnostic
}

// Diagnostic is one finding, carrying a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Timing is one analyzer's wall-clock cost accumulated across every
// package it ran on in a single Run. The pseudo-entry named "engine"
// records the one-time cross-package fact-layer build.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run applies each analyzer to each package it matches and returns the
// combined findings sorted by position, so output is stable regardless
// of package or analyzer order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunParallel(pkgs, analyzers, 1)
	return diags
}

// RunParallel is Run with a package-level worker pool: packages are
// claimed by an atomic counter and analyzed concurrently (loading and
// the engine build stay serial — the stdlib source importer is not
// concurrency-safe, but the finished engine and type info are
// read-only). Diagnostics are slotted per package and merged in the
// same position order as Run, so output is byte-identical at any
// worker count. The returned timings accumulate per-analyzer
// wall-clock across packages, plus the engine build.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, []Timing) {
	start := time.Now()
	engine := NewEngine(pkgs)
	engineElapsed := time.Since(start)

	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	elapsed := make([]int64, len(analyzers)) // atomic nanoseconds per analyzer
	perPkg := make([][]Diagnostic, len(pkgs))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(pkgs) {
					return
				}
				pkg := pkgs[i]
				for ai, a := range analyzers {
					if a.Match != nil && !a.Match(pkg.Path) {
						continue
					}
					pass := &Pass{
						Analyzer:   a,
						Fset:       pkg.Fset,
						Files:      pkg.Files,
						Pkg:        pkg.Types,
						TypesInfo:  pkg.Info,
						Engine:     engine,
						directives: engine.directivesFor(pkg.Path),
					}
					t0 := time.Now()
					a.Run(pass)
					atomic.AddInt64(&elapsed[ai], int64(time.Since(t0)))
					perPkg[i] = append(perPkg[i], pass.diags...)
				}
			}
		}()
	}
	wg.Wait()

	var out []Diagnostic
	for _, diags := range perPkg {
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	timings := []Timing{{Name: "engine", Elapsed: engineElapsed}}
	for ai, a := range analyzers {
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Duration(elapsed[ai])})
	}
	return out, timings
}
