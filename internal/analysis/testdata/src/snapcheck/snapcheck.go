// Package snapcheck is the fixture for the snapcheck analyzer: a type
// with a Snapshot method must account for every field — read it into the
// snapshot, assert on it, hand it to a capture helper, or annotate it
// `// snap: keep`. The dropped field below is the seeded omission the
// analyzer must catch: a fork would resume with the recycled world's
// value instead of the captured prefix's.
package snapcheck

type clockSnap struct {
	now int64
	seq uint64
}

type clock struct {
	now     int64
	seq     uint64
	sched   string // snap: keep — construction-time identity, identical in every world
	dropped bool   // want "does not capture field dropped"
}

func (c *clock) Snapshot() clockSnap {
	return clockSnap{now: c.now, seq: c.seq}
}

// helperSnap delegates part of the capture to a sibling method, which
// snapcheck follows; asserting on a field is also consideration enough.
type helperSnap struct {
	pages   [][]byte
	written int
	live    int
}

func (h *helperSnap) Snapshot() [][]byte {
	h.assertIdle()
	return h.capturePages()
}

func (h *helperSnap) assertIdle() {
	if h.live != 0 {
		panic("snapshot of a busy helperSnap")
	}
}

func (h *helperSnap) capturePages() [][]byte {
	out := make([][]byte, 0, h.written)
	for _, p := range h.pages[:h.written] {
		out = append(out, p)
	}
	return out
}

// noSnap has no Snapshot method: snapcheck must leave it alone even
// though nothing reads its field.
type noSnap struct {
	ignored int
}

// taker has a Snapshot method with a parameter — not the niladic
// capture-shape the contract covers, so its fields are exempt.
type taker struct {
	skipped int
}

func (t *taker) Snapshot(deep bool) int { return 0 }
