// Package shardsafe is the fixture for the shardsafe analyzer: inside
// remote-guarded regions — and in functions they reach with a peer or
// the guarded receiver — direct peer-state accesses are flagged unless
// they run inside a sim.Post closure; naming, nil-checking, panic
// arguments, and //ntblint:shardlocal waivers are not.
package shardsafe

// Sim stands in for sim.Simulator; Post is the sanctioned cross-shard
// channel (recognised by name, exactly as on the real tree).
type Sim struct{}

func (s *Sim) Post(dst *Sim, d int, fn func()) { fn() }

// Port mirrors the ntb.Port shape the analyzer is tuned for: a remote
// flag, a peer pointer, and mutable state owned by the peer's shard.
type Port struct {
	sim    *Sim
	peer   *Port
	remote bool
	lag    int
	name   string
	spads  [4]uint32
	lut    map[uint16]bool
}

// Remote reports whether the cable crosses a shard boundary.
func (p *Port) Remote() bool { return p.remote }

func (p *Port) mustPeer() *Port {
	if p.peer == nil {
		panic("shardsafe fixture: unplugged")
	}
	return p.peer
}

// goodWrite routes the remote effect through Post; nothing is flagged.
// The seed markers bracket the sanctioned block the seeded-omission
// test replaces with a direct write.
func (p *Port) goodWrite(idx int, val uint32) {
	if p.remote {
		peer := p.mustPeer()
		// seed:post-begin
		p.sim.Post(peer.sim, p.lag, func() {
			peer.spads[idx] = val
		})
		// seed:post-end
		return
	}
	p.peer.spads[idx] = val
}

// badWrite stores into the peer directly on the poster's timeline.
func (p *Port) badWrite(idx int, val uint32) {
	if p.remote {
		peer := p.peer
		peer.spads[idx] = val // want "direct access to remote peer state peer.spads"
	}
}

// badRead observes peer state mid-window through the .peer field.
func (p *Port) badRead(idx int) uint32 {
	if p.remote {
		return p.peer.spads[idx] // want "direct access to remote peer state p.peer.spads"
	}
	return 0
}

// waivedTouch is a loopback cable: both ports share one simulator, so
// the direct store is provably same-shard and waived.
func (p *Port) waivedTouch() {
	if p.remote {
		//ntblint:shardlocal — fixture loopback: both ports share one simulator
		p.peer.lut[0] = true
	}
}

// badIndirect hands the peer to a helper; the write inside is reached
// through the call-graph taint.
func (p *Port) badIndirect(val uint32) {
	if p.Remote() {
		stamp(p.peer, val)
	}
}

// stamp receives a remote peer from badIndirect.
func stamp(q *Port, val uint32) {
	q.spads[0] = val // want "direct access to remote peer state q.spads"
}

// badRecvIndirect calls a method on the guarded port; the callee's
// receiver inherits the remote context.
func (p *Port) badRecvIndirect() {
	if p.remote {
		p.admit()
	}
}

func (p *Port) admit() {
	p.peer.lut[1] = true // want "direct access to remote peer state p.peer.lut"
}

// nilCheck names and compares the peer without touching its state.
func (p *Port) nilCheck() bool {
	if p.remote {
		return p.peer != nil
	}
	return false
}

// coldPanic reads peer state only inside panic arguments — cold
// diagnostic paths are exempt, like allocfree's rule.
func (p *Port) coldPanic() {
	if p.remote {
		if p.peer == nil {
			panic("shardsafe fixture: unplugged")
		}
		if p.lag < 0 {
			panic(p.peer.spads[0])
		}
	}
}

// goodIdentity reads the sanctioned immutable members: sim (Post's
// destination), name, and the remote flag itself.
func (p *Port) goodIdentity() string {
	if p.remote {
		peer := p.mustPeer()
		if peer.remote {
			return peer.name
		}
	}
	return ""
}
