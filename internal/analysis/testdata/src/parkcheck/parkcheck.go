// Package parkcheck is the fixture for the parkcheck analyzer: park
// labels must be precomputed strings and AfterTick tickers pre-allocated
// values. The sanctioned forms (literals, stored fields) are the
// negative cases.
package parkcheck

type proc struct{ blockedOn string }

func (p *proc) park(label string) { p.blockedOn = label }

type ticker interface{ Tick(arg uint64) }

type kernel struct{}

func (k *kernel) AfterTick(d int64, tk ticker, arg uint64) {}

type dev struct {
	parkLabel string
	tk        ticker
}

func newTicker() ticker { return nil }

func labels(p *proc, d *dev, name string) {
	p.park("waiting " + name) // want "concatenated at the call site"
	p.park(sprint(name))      // want "built by a call at the park site"
	p.park(d.parkLabel)       // precomputed field: allowed
	p.park("idle")            // literal: allowed
}

func sprint(s string) string { return s }

func arm(k *kernel, d *dev) {
	k.AfterTick(0, d.tk, 1)        // pre-allocated field: allowed
	k.AfterTick(0, newTicker(), 2) // want "pre-allocated"
}
