// Package waiverdrift is the fixture for the waiverdrift analyzer:
// directives whose construct moved or vanished are flagged, directives
// still anchored to what their analyzer recognises are not, and
// unknown directive names are reported outright.
package waiverdrift

import "runtime"

// sum carries an honored //ntblint:ordered — the range below really is
// over a map.
func sum(m map[string]int) int {
	total := 0
	//ntblint:ordered — commutative sum
	for _, v := range m {
		total += v
	}
	return total
}

// sliceWalk's waiver drifted: the loop it once excused is over a slice
// now.
func sliceWalk(s []int) int {
	total := 0
	//ntblint:ordered — drifted // want "orphaned //ntblint:ordered"
	for _, v := range s {
		total += v
	}
	return total
}

// hot is allocation-free; the allocok inside anchors to its body.
//
//ntblint:allocfree
func hot(buf []byte) []byte {
	if cap(buf) == 0 {
		//ntblint:allocok — cold refill
		buf = make([]byte, 0, 16)
	}
	return buf
}

// notAllocFree was once //ntblint:allocfree; the doc directive is gone
// but the allocok inside lingered.
func notAllocFree() []int {
	//ntblint:allocok — drifted // want "orphaned //ntblint:allocok"
	return make([]int, 4)
}

// misplaced holds an allocfree directive in a body instead of a doc
// comment, where the analyzer never looks.
func misplaced() {
	//ntblint:allocfree // want "orphaned //ntblint:allocfree"
	_ = 2
}

// workers carries the honored core-count policy waiver.
func workers() int {
	//ntblint:cpupolicy — parallelism policy, not simulation state
	return runtime.GOMAXPROCS(0)
}

// typoed carries a directive name no analyzer knows.
func typoed() {
	//ntblint:frobnicate // want "unknown directive"
	_ = 3
}

// plainFunc has no remote guard anywhere, so the shardlocal waiver
// excuses nothing.
func plainFunc() {
	//ntblint:shardlocal — drifted // want "orphaned //ntblint:shardlocal"
	_ = 4
}

// lport reproduces a loopback port; the shardlocal below suppresses a
// real shardsafe finding, so it is anchored.
type lport struct {
	peer   *lport
	remote bool
	v      int
}

func (p *lport) loopback() {
	if p.remote {
		//ntblint:shardlocal — loopback: both ports share one simulator
		p.peer.v = 1
	}
}

// adapter carries an honored //ntblint:notlink on its declaration.
//
//ntblint:notlink — deliberate partial adapter
type adapter struct{ n int }

// withReset keeps a field across Reset; the annotation anchors to the
// method below.
type withReset struct {
	id int // reset: keep — construction identity
	n  int
}

func (w *withReset) Reset() { w.n = 0 }

// noReset lost its Reset method in a refactor; the annotation is
// stranded.
type noReset struct {
	warm []byte // reset: keep — drifted // want "orphaned `// reset: keep`"
}

// withSnap keeps scratch out of snapshots; anchored by Snapshot below.
type withSnap struct {
	scratch []byte // snap: keep — rebuilt on demand
	n       int
}

func (w *withSnap) Snapshot() int { return w.n }

// noSnap has no Snapshot method for its annotation to talk to.
type noSnap struct {
	scratch []byte // snap: keep — drifted // want "orphaned `// snap: keep`"
}
