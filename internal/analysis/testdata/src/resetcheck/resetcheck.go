// Package resetcheck is the fixture for the resetcheck analyzer: a type
// with a Reset method must account for every field — assign it, reset
// it recursively, or annotate it `// reset: keep`. The stale field below
// is the seeded omission the analyzer must catch.
package resetcheck

type inner struct{ n int }

func (i *inner) Reset() { i.n = 0 }

type pool struct {
	items []int
	seq   uint64
	child inner
	name  string // reset: keep — diagnostic identity
	stale bool   // want "does not reset field stale"
}

func (p *pool) Reset() {
	p.items = p.items[:0]
	p.seq = 0
	p.child.Reset()
}

// wiped is fully reset by a single composite-literal assignment.
type wiped struct {
	a, b int
	c    string
}

func (w *wiped) Reset() { *w = wiped{} }

// helperReset delegates a field to a sibling method, which resetcheck
// follows.
type helperReset struct {
	buf []byte
	cnt int
}

func (h *helperReset) Reset() {
	h.clearBuf()
	h.cnt = 0
}

func (h *helperReset) clearBuf() { h.buf = h.buf[:0] }
