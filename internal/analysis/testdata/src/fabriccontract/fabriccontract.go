// Package fabriccontract is the fixture for the fabriccontract
// analyzer: types implementing more than half of the Link contract
// must ship all of it, full implementers need a Stats that reports
// real state, Unplug must return the uniform error surface, and
// //ntblint:notlink waives a deliberate partial adapter.
package fabriccontract

// LinkStats mirrors fabric.LinkStats.
type LinkStats struct {
	Interrupts      uint64
	ChunksForwarded uint64
}

// Link is the fixture's backend contract (a trimmed fabric.Link).
type Link interface {
	Start()
	Send(b []byte) error
	Reset()
	Snapshot() any
	Restore(s any)
	AssertQuiescent()
	Stats() LinkStats
}

// goodLink implements the full contract with real Stats; only its
// Unplug — which drops the error surface — is flagged.
type goodLink struct {
	stats   LinkStats
	started bool
}

func (l *goodLink) Start()               { l.started = true }
func (l *goodLink) Send(b []byte) error  { l.stats.ChunksForwarded++; return nil }
func (l *goodLink) Reset()               { l.stats = LinkStats{} }
func (l *goodLink) Snapshot() any        { return l.stats }
func (l *goodLink) Restore(s any)        { l.stats = s.(LinkStats) }
func (l *goodLink) AssertQuiescent()     {}
func (l *goodLink) Stats() LinkStats     { return l.stats }
func (l *goodLink) Unplug()              { l.started = false } // want "Unplug must return error"

// halfLink ships six of the seven methods but forgot Restore — the
// snapshot half of the lifecycle without the replay half.
type halfLink struct { // want "missing Restore"
	stats LinkStats
}

func (l *halfLink) Start()           {}
func (l *halfLink) Send(b []byte) error { l.stats.ChunksForwarded++; return nil }
func (l *halfLink) Reset()           { l.stats = LinkStats{} }
func (l *halfLink) Snapshot() any    { return l.stats }
func (l *halfLink) AssertQuiescent() {}
func (l *halfLink) Stats() LinkStats { return l.stats }

// stubLink implements the full contract but its Stats reports a
// constant — the signature satisfied, the information missing. Its
// Unplug shows the correct error surface.
type stubLink struct {
	stats LinkStats
	up    bool
}

func (l *stubLink) Start()           { l.up = true }
func (l *stubLink) Send(b []byte) error { return nil }
func (l *stubLink) Reset()           { l.stats = LinkStats{} }
func (l *stubLink) Snapshot() any    { return l.stats }
func (l *stubLink) Restore(s any)    { l.stats = s.(LinkStats) }
func (l *stubLink) AssertQuiescent() {}
func (l *stubLink) Stats() LinkStats { return LinkStats{} } // want "never reads receiver state"
func (l *stubLink) Unplug() error    { l.up = false; return nil }

// traceAdapter wraps a link for tracing and deliberately forwards only
// part of the contract; the waiver keeps fabriccontract quiet.
//
//ntblint:notlink — deliberate partial adapter, never assigned to a Link
type traceAdapter struct {
	inner Link
	n     int
}

func (t *traceAdapter) Start()           { t.n++; t.inner.Start() }
func (t *traceAdapter) Send(b []byte) error { t.n++; return t.inner.Send(b) }
func (t *traceAdapter) Reset()           { t.n = 0; t.inner.Reset() }
func (t *traceAdapter) AssertQuiescent() { t.inner.AssertQuiescent() }
func (t *traceAdapter) Stats() LinkStats { return t.inner.Stats() }

// resetOnly shares two method names with the contract; far below the
// half-way mark, it makes no claim to be a backend and is ignored.
type resetOnly struct{ n int }

func (r *resetOnly) Reset() { r.n = 0 }
func (r *resetOnly) Start() {}
