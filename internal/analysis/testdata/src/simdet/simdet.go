// Package simdet is the fixture for the simdet analyzer: wall-clock
// reads, global math/rand draws, and order-sensitive map iteration are
// flagged; seeded constructors and //ntblint:ordered waivers are not.
package simdet

import (
	"math/rand"
	"runtime"
	"time"
)

type sched struct{ out []int }

func (s *sched) schedule(n int) { s.out = append(s.out, n) }

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func globalRand() int {
	return rand.Int() // want "rand.Int draws from the process-global source"
}

// seeded uses the sanctioned constructors; nothing here is flagged.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(7))
}

// privateDraw draws from a private generator; methods are fine.
func privateDraw(rng *rand.Rand) int {
	return rng.Intn(10)
}

func coreCount() int {
	return runtime.NumCPU() // want "runtime.NumCPU makes behaviour depend on the host's core count"
}

// policy is the one sanctioned shape for a core-count read: an
// explicitly waived parallelism-policy site.
func policy() int {
	//ntblint:cpupolicy — worker-count default, not simulation state
	return runtime.GOMAXPROCS(0)
}

func drain(s *sched, m map[string]int) {
	for _, v := range m {
		s.out = append(s.out, v) // want "append inside range over map"
	}
	//ntblint:ordered — the caller sorts s.out before anything observes it
	for _, v := range m {
		s.out = append(s.out, v)
	}
}

func scheduleAll(s *sched, m map[int]int) {
	for k := range m {
		s.schedule(k) // want "schedule schedules an event"
	}
}

// sortedKeys iterates a map without observable effects; not flagged.
func sortedKeys(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
