// Package allocfree is the fixture for the allocfree analyzer: a
// function whose doc comment carries //ntblint:allocfree must not
// allocate, except at sites waived with //ntblint:allocok. Unannotated
// functions are never checked.
package allocfree

type node struct{ v int }

type ring struct {
	buf  []int
	pool []*node
}

// push appends to the retained backing array — the amortised self-append
// idiom is allowed.
//
//ntblint:allocfree
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
}

// grow allocates a fresh node on every call.
//
//ntblint:allocfree
func (r *ring) grow() *node {
	return new(node) // want "new allocates"
}

// refill allocates only on a pool miss, which is waived.
//
//ntblint:allocfree
func (r *ring) refill() *node {
	if last := len(r.pool) - 1; last >= 0 {
		n := r.pool[last]
		r.pool = r.pool[:last]
		return n
	}
	//ntblint:allocok — pool refill; amortised to zero in steady state
	return new(node)
}

// spill appends into a different slice, growing a new backing array.
//
//ntblint:allocfree
func (r *ring) spill(v int) []int {
	out := append(r.buf, v) // want "append"
	return out
}

// boom allocates only inside a panic, which is a cold terminal path.
//
//ntblint:allocfree
func (r *ring) boom(i int) int {
	if i < 0 {
		panic(&node{v: i})
	}
	return r.buf[i]
}

// unchecked carries no annotation, so it may allocate freely.
func unchecked() []int { return make([]int, 8) }
