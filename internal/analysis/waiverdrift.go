package analysis

import (
	"go/ast"
	"strings"
)

// Waiverdrift keeps the waiver vocabulary honest: every directive in
// the tree must still attach to a construct its analyzer recognises.
// Refactoring moves code out from under its waiver silently — the
// directive lingers as misleading documentation while the thing it
// excused is gone (or worse, the waiver now excuses something new).
// For each directive occurrence the analyzer re-derives the anchor its
// consumer would look for: a map range under //ntblint:ordered, an
// allocfree doc comment on a function, an allocok inside an allocfree
// body, a waived shardsafe access under //ntblint:shardlocal (shared
// with shardsafe's sweep through the engine memo), a core-count read
// under //ntblint:cpupolicy, a type declaration under
// //ntblint:notlink, and a Reset/Snapshot method behind `// reset:
// keep` / `// snap: keep` field annotations. Unanchored directives and
// unknown directive names are reported.
var Waiverdrift = &Analyzer{
	Name: "waiverdrift",
	Doc: "report ntblint directives and keep-annotations that no " +
		"longer attach to a construct their analyzer recognises",
	Run: runWaiverdrift,
}

// knownDirectives enumerates the ntblint directive vocabulary.
var knownDirectives = map[string]bool{
	DirectiveOrdered:    true,
	DirectiveAllocOK:    true,
	DirectiveAllocFree:  true,
	DirectiveShardLocal: true,
	DirectiveCPUPolicy:  true,
	DirectiveNotLink:    true,
}

func runWaiverdrift(pass *Pass) {
	anchors := collectAnchors(pass)
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				checkDirectiveComment(pass, anchors, c)
			}
		}
	}
	checkKeepAnnotations(pass)
}

// driftAnchors holds the per-file line sets each directive kind may
// legitimately attach to.
type driftAnchors struct {
	mapRanges map[string]map[int]bool // map-range statement start lines
	funcDocs  map[string]map[int]bool // lines inside FuncDecl doc comments
	allocBody map[string]map[int]bool // lines inside //ntblint:allocfree bodies
	cpuCalls  map[string]map[int]bool // runtime.NumCPU/GOMAXPROCS call lines
	typeDecls map[string]map[int]bool // TypeSpec lines and their doc spans
}

func markLine(m map[string]map[int]bool, file string, line int) {
	lines := m[file]
	if lines == nil {
		lines = map[int]bool{}
		m[file] = lines
	}
	lines[line] = true
}

func markSpan(m map[string]map[int]bool, file string, from, to int) {
	for l := from; l <= to; l++ {
		markLine(m, file, l)
	}
}

// collectAnchors walks the package once and records every construct a
// directive could attach to.
func collectAnchors(pass *Pass) *driftAnchors {
	a := &driftAnchors{
		mapRanges: map[string]map[int]bool{},
		funcDocs:  map[string]map[int]bool{},
		allocBody: map[string]map[int]bool{},
		cpuCalls:  map[string]map[int]bool{},
		typeDecls: map[string]map[int]bool{},
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Doc != nil {
					from, to := pass.Fset.Position(n.Doc.Pos()), pass.Fset.Position(n.Doc.End())
					markSpan(a.funcDocs, from.Filename, from.Line, to.Line)
				}
				if HasDirective(n.Doc, DirectiveAllocFree) && n.Body != nil {
					from, to := pass.Fset.Position(n.Body.Pos()), pass.Fset.Position(n.Body.End())
					markSpan(a.allocBody, from.Filename, from.Line, to.Line)
				}
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					at := pass.Fset.Position(n.Pos())
					markLine(a.mapRanges, at.Filename, at.Line)
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "runtime" &&
					(fn.Name() == "NumCPU" || fn.Name() == "GOMAXPROCS") {
					at := pass.Fset.Position(n.Pos())
					markLine(a.cpuCalls, at.Filename, at.Line)
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					at := pass.Fset.Position(ts.Pos())
					markLine(a.typeDecls, at.Filename, at.Line)
					for _, doc := range []*ast.CommentGroup{ts.Doc, n.Doc} {
						if doc != nil {
							from, to := pass.Fset.Position(doc.Pos()), pass.Fset.Position(doc.End())
							markSpan(a.typeDecls, from.Filename, from.Line, to.Line)
						}
					}
				}
			}
			return true
		})
	}
	return a
}

// checkDirectiveComment validates one //ntblint: comment against the
// anchor its analyzer would look for. A waiver placed on line C excuses
// a construct on C or C+1 (Waived's contract), so both lines count.
func checkDirectiveComment(pass *Pass, anchors *driftAnchors, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, directivePrefix) {
		return
	}
	name := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	if !knownDirectives[name] {
		pass.Reportf(c.Pos(), "unknown directive //ntblint:%s (see LINT.md for the directive vocabulary)", name)
		return
	}
	at := pass.Fset.Position(c.Pos())
	anchored := false
	switch name {
	case DirectiveOrdered:
		anchored = anchors.mapRanges[at.Filename][at.Line] || anchors.mapRanges[at.Filename][at.Line+1]
	case DirectiveAllocFree:
		anchored = anchors.funcDocs[at.Filename][at.Line]
	case DirectiveAllocOK:
		anchored = anchors.allocBody[at.Filename][at.Line] || anchors.allocBody[at.Filename][at.Line+1]
	case DirectiveCPUPolicy:
		anchored = anchors.cpuCalls[at.Filename][at.Line] || anchors.cpuCalls[at.Filename][at.Line+1]
	case DirectiveNotLink:
		anchored = anchors.typeDecls[at.Filename][at.Line] || anchors.typeDecls[at.Filename][at.Line+1]
	case DirectiveShardLocal:
		waived := shardsafeFacts(pass.Engine).waivedLines[at.Filename]
		anchored = waived[at.Line] || waived[at.Line+1]
	}
	if !anchored {
		pass.Reportf(c.Pos(),
			"orphaned //ntblint:%s: no %s on this line or the next — the waived construct moved or was removed; delete the directive",
			name, anchorDescription(name))
	}
}

// anchorDescription names what each directive must attach to, for the
// diagnostic text.
func anchorDescription(name string) string {
	switch name {
	case DirectiveOrdered:
		return "range over a map"
	case DirectiveAllocFree:
		return "function doc comment"
	case DirectiveAllocOK:
		return "statement inside an //ntblint:allocfree function"
	case DirectiveCPUPolicy:
		return "runtime.NumCPU/GOMAXPROCS call"
	case DirectiveNotLink:
		return "type declaration"
	case DirectiveShardLocal:
		return "peer access shardsafe recognises"
	}
	return "recognised construct"
}

// checkKeepAnnotations validates `// reset: keep` and `// snap: keep`
// field annotations: the annotated field's struct must still have the
// niladic Reset (resp. single-result Snapshot) method the annotation
// talks to. Only field-attached comments are considered — prose
// mentions of the markers elsewhere are not annotations.
func checkKeepAnnotations(pass *Pass) {
	resetTypes, snapTypes := methodOwners(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if fieldKept(field) && !resetTypes[ts.Name.Name] {
					pass.Reportf(field.Pos(),
						"orphaned `// reset: keep`: %s has no Reset method for the annotation to excuse this field from",
						ts.Name.Name)
				}
				if fieldSnapKept(field) && !snapTypes[ts.Name.Name] {
					pass.Reportf(field.Pos(),
						"orphaned `// snap: keep`: %s has no Snapshot method for the annotation to excuse this field from",
						ts.Name.Name)
				}
			}
			return true
		})
	}
}

// methodOwners returns the type names in the package that declare the
// methods resetcheck and snapcheck anchor on: a Reset/reset with no
// parameters or results, and a Snapshot/snapshot with no parameters and
// one result.
func methodOwners(pass *Pass) (resetTypes, snapTypes map[string]bool) {
	resetTypes, snapTypes = map[string]bool{}, map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			recv := receiverTypeName(fd)
			if recv == "" {
				continue
			}
			params := fd.Type.Params.NumFields()
			results := fd.Type.Results.NumFields()
			switch fd.Name.Name {
			case "Reset", "reset":
				if params == 0 && results == 0 {
					resetTypes[recv] = true
				}
			case "Snapshot", "snapshot":
				if params == 0 && results == 1 {
					snapTypes[recv] = true
				}
			}
		}
	}
	return resetTypes, snapTypes
}
