package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Shardsafe enforces the PROTOCOL.md §14 ownership discipline that the
// conservative parallel-DES merge depends on: code running on one
// shard's simulator must never touch a remote peer's mutable state
// directly. Inside a remote-guarded region (an `if x.remote { … }` or
// `if x.Remote() { … }` body) — and in every function the region
// reaches through the call graph with a peer or a remote-guarded
// receiver — the peer may be named and nil-checked, but its fields may
// only be reached inside a sim.Post closure (the sanctioned cross-shard
// channel; ShardGroup mailboxes and ConnectRemote wrappers are built on
// it). Direct field reads, writes, indexing, and method calls across
// the boundary are reported; provably same-shard accesses are waived
// with //ntblint:shardlocal.
var Shardsafe = &Analyzer{
	Name: "shardsafe",
	Doc: "forbid direct access to a remote shard's peer state outside " +
		"sim.Post closures, across the call graph from remote-guarded code",
	Run: runShardsafe,
}

// shardFinding is one cross-shard access, tagged with the package that
// owns the offending source so each per-package pass reports only its
// own findings from the shared whole-program sweep.
type shardFinding struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

// shardsafeResult is the memoized whole-program sweep: the findings,
// plus the file:line positions where a //ntblint:shardlocal waiver
// suppressed a would-be finding — waiverdrift uses those to tell an
// honored waiver from an orphaned one.
type shardsafeResult struct {
	findings []shardFinding
	// waivedLines[file][line] marks lines holding a waived access.
	waivedLines map[string]map[int]bool
}

func runShardsafe(pass *Pass) {
	res := shardsafeFacts(pass.Engine)
	for _, f := range res.findings {
		if f.pkgPath == pass.Pkg.Path() {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// shardsafeFacts returns the engine-memoized sweep (built once no
// matter how many passes or analyzers demand it).
func shardsafeFacts(e *Engine) *shardsafeResult {
	return e.Memo("shardsafe", func() any { return shardsafeSweep(e) }).(*shardsafeResult)
}

// taintKey identifies one (function, tainted params, tainted receiver)
// analysis obligation, so the worklist terminates.
type taintKey struct {
	fn     string
	params string
	recv   bool
}

// taintItem is one queued obligation: analyze fn's body with the named
// parameters treated as remote peers and, if recv is set, the receiver
// treated as the remote-guarded root.
type taintItem struct {
	fn     *types.Func
	params []string
	recv   bool
}

// shardsafeSweep walks every remote-guarded region in the package set
// and propagates remote-context taint through the engine's call graph.
func shardsafeSweep(e *Engine) *shardsafeResult {
	res := &shardsafeResult{waivedLines: map[string]map[int]bool{}}
	sweep := &shardSweep{engine: e, res: res, visited: map[taintKey]bool{}}

	for _, pkg := range e.Packages() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				sweep.seedDecl(pkg, fd)
			}
		}
	}
	sweep.drain()

	sort.Slice(res.findings, func(i, j int) bool { return res.findings[i].pos < res.findings[j].pos })
	// A nested remote guard re-seeds an already-checked region; keep
	// the first report per position.
	dedup := res.findings[:0]
	var last token.Pos = token.NoPos
	for _, f := range res.findings {
		if f.pos != last {
			dedup = append(dedup, f)
			last = f.pos
		}
	}
	res.findings = dedup
	return res
}

type shardSweep struct {
	engine  *Engine
	res     *shardsafeResult
	queue   []taintItem
	visited map[taintKey]bool
}

// seedDecl finds the remote-guarded regions of one declaration and
// checks each.
func (w *shardSweep) seedDecl(pkg *Package, fd *ast.FuncDecl) {
	peers := collectPeerVars(fd.Body, nil)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		root := remoteGuardRoot(ifStmt.Cond)
		if root == nil {
			return true
		}
		w.checkBlock(pkg, ifStmt.Body, peers, []ast.Expr{root})
		return true
	})
}

// drain processes queued cross-function taint obligations until the
// visited set closes.
func (w *shardSweep) drain() {
	for len(w.queue) > 0 {
		item := w.queue[0]
		w.queue = w.queue[1:]
		key := taintKey{fn: item.fn.FullName(), params: strings.Join(item.params, ","), recv: item.recv}
		if w.visited[key] {
			continue
		}
		w.visited[key] = true
		fd, pkg := w.engine.Decl(item.fn)
		if fd == nil || fd.Body == nil {
			continue
		}
		seed := map[string]bool{}
		for _, p := range item.params {
			seed[p] = true
		}
		peers := collectPeerVars(fd.Body, seed)
		var roots []ast.Expr
		if item.recv {
			if name := receiverIdentName(fd); name != "" {
				roots = append(roots, ast.NewIdent(name))
			}
		}
		w.checkBlock(pkg, fd.Body, peers, roots)
	}
}

// sanctionedPeerFields are the peer members a remote context may touch
// directly: the destination argument sim.Post needs, immutable identity
// used in diagnostics, and the shard-topology accessors.
var sanctionedPeerFields = map[string]bool{
	"sim": true, "name": true, "Name": true, "String": true,
	"remote": true, "Remote": true,
}

// checkBlock reports direct peer-state accesses inside one
// remote-context region and queues taint for the functions it calls
// with peers or the guarded root.
func (w *shardSweep) checkBlock(pkg *Package, block ast.Node, peers map[string]bool, roots []ast.Expr) {
	dir := w.engine.directivesFor(pkg.Path)
	isPeer := func(e ast.Expr) bool { return isPeerExpr(e, peers) }

	report := func(pos token.Pos, format string, args ...any) {
		if waivedIn(dir, pkg.Fset, pos, DirectiveShardLocal) {
			at := pkg.Fset.Position(pos)
			lines := w.res.waivedLines[at.Filename]
			if lines == nil {
				lines = map[int]bool{}
				w.res.waivedLines[at.Filename] = lines
			}
			lines[at.Line] = true
			return
		}
		w.res.findings = append(w.res.findings, shardFinding{
			pkgPath: pkg.Path,
			pos:     pos,
			msg:     fmt.Sprintf(format, args...),
		})
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// panic arguments are cold diagnostic paths, not simulation
			// effects; skip the whole subtree (allocfree's rule).
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin {
					return false
				}
			}
			// sim.Post is the sanctioned channel: its closure argument
			// runs on the destination's timeline, so accesses inside it
			// are the point. Check the non-closure arguments (the dst
			// expression must still respect the field sanction) and
			// skip the closures.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Post" {
				ast.Inspect(sel.X, visit)
				for _, arg := range n.Args {
					if _, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
						continue
					}
					ast.Inspect(arg, visit)
				}
				return false
			}
			w.queueTaint(pkg, n, isPeer, roots)
			return true

		case *ast.SelectorExpr:
			if base := ast.Unparen(n.X); isPeer(base) && !sanctionedPeerFields[n.Sel.Name] {
				report(n.Pos(),
					"direct access to remote peer state %s.%s outside a sim.Post closure; "+
						"route the effect through sim.Post (or waive a provably same-shard access with //ntblint:shardlocal)",
					exprText(base), n.Sel.Name)
			}
			return true

		case *ast.IndexExpr:
			if base := ast.Unparen(n.X); isPeer(base) {
				report(n.Pos(),
					"direct indexing of remote peer state %s outside a sim.Post closure; "+
						"route the effect through sim.Post (or waive with //ntblint:shardlocal)",
					exprText(base))
			}
			return true

		case *ast.StarExpr:
			if base := ast.Unparen(n.X); isPeer(base) {
				report(n.Pos(),
					"direct dereference of remote peer %s outside a sim.Post closure; "+
						"route the effect through sim.Post (or waive with //ntblint:shardlocal)",
					exprText(base))
			}
			return true
		}
		return true
	}
	ast.Inspect(block, visit)
}

// queueTaint records cross-function obligations for one call: a bare
// peer passed as an argument taints the matching parameter; a call
// whose receiver is the guarded root taints the callee's receiver.
func (w *shardSweep) queueTaint(pkg *Package, call *ast.CallExpr, isPeer func(ast.Expr) bool, roots []ast.Expr) {
	var fn *types.Func
	var recvExpr ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		recvExpr = ast.Unparen(fun.X)
	}
	if fn == nil {
		return
	}
	fd, _ := w.engine.Decl(fn)
	if fd == nil || fd.Body == nil {
		return
	}

	var params []string
	for i, arg := range call.Args {
		if !isPeer(ast.Unparen(arg)) {
			continue
		}
		if name := paramNameAt(fd, i); name != "" {
			params = append(params, name)
		}
	}

	recvTaint := false
	if recvExpr != nil {
		for _, r := range roots {
			if exprEqual(recvExpr, r) {
				recvTaint = true
				break
			}
		}
	}

	if len(params) == 0 && !recvTaint {
		return
	}
	sort.Strings(params)
	w.queue = append(w.queue, taintItem{fn: fn, params: params, recv: recvTaint})
}

// paramNameAt returns the declared name of a function's i-th parameter
// ("" for unnamed or variadic overflow positions).
func paramNameAt(fd *ast.FuncDecl, i int) string {
	n := 0
	for _, field := range fd.Type.Params.List {
		count := len(field.Names)
		if count == 0 {
			count = 1
		}
		for j := 0; j < count; j++ {
			if n == i {
				if len(field.Names) == 0 {
					return ""
				}
				return field.Names[j].Name
			}
			n++
		}
	}
	return ""
}

// collectPeerVars gathers the local variable names bound to a remote
// peer anywhere in a function body: seeded names (tainted parameters),
// then anything assigned from a peer-shaped expression. Two passes
// close simple chains (q := peer after peer := p.peer).
func collectPeerVars(body *ast.BlockStmt, seed map[string]bool) map[string]bool {
	peers := map[string]bool{}
	for name := range seed {
		peers[name] = true
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if isPeerExpr(ast.Unparen(assign.Rhs[i]), peers) {
					peers[id.Name] = true
				}
			}
			return true
		})
	}
	return peers
}

// isPeerExpr reports whether an expression denotes a remote peer: a
// collected peer variable, a selector ending in the conventional .peer
// field, or a Peer()/mustPeer() accessor call.
func isPeerExpr(e ast.Expr, peers map[string]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return peers[e.Name]
	case *ast.SelectorExpr:
		return e.Sel.Name == "peer"
	case *ast.CallExpr:
		name := calleeName(e)
		return name == "Peer" || name == "mustPeer"
	}
	return false
}

// remoteGuardRoot inspects an if condition for the remote-port test —
// a `x.remote` field read or `x.Remote()` call not under negation — and
// returns the guarded expression x, or nil.
func remoteGuardRoot(cond ast.Expr) ast.Expr {
	var root ast.Expr
	var scan func(e ast.Expr)
	scan = func(e ast.Expr) {
		if root != nil {
			return
		}
		switch e := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			// !x.remote guards the local branch; not a remote context.
			return
		case *ast.BinaryExpr:
			if e.Op == token.LAND || e.Op == token.LOR {
				scan(e.X)
				scan(e.Y)
			}
		case *ast.SelectorExpr:
			if e.Sel.Name == "remote" {
				root = ast.Unparen(e.X)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Remote" {
				root = ast.Unparen(sel.X)
			}
		}
	}
	scan(cond)
	return root
}

// exprText renders a small expression for diagnostics (identifiers and
// dotted paths; anything else compresses to a placeholder).
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	}
	return "expr"
}
