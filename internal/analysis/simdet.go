package analysis

import (
	"go/ast"
	"go/types"
)

// Simdet enforces the simulator's determinism contract inside the
// simulation packages: results/*.csv must be byte-identical at any
// worker count, so simulation code may not read the wall clock, draw
// from the process-global math/rand source, or let Go's randomized map
// iteration order reach anything ordered — scheduled events, appended
// output, or writes through the runtime.
var Simdet = &Analyzer{
	Name: "simdet",
	Doc: "forbid wall-clock reads, the global math/rand source, " +
		"runtime.NumCPU/GOMAXPROCS core-count reads, and " +
		"order-sensitive iteration over maps in simulation packages",
	Run: runSimdet,
}

// wallClockFuncs are the time-package functions that observe or depend
// on the host's real clock. time.Duration arithmetic and formatting are
// fine; sampling the clock is not.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand functions that build a private
// generator — the only sanctioned way to use the package in simulation
// code. Everything else at package level draws from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// orderedEffects are method/function names whose invocation inside a
// map-range loop makes iteration order observable: they schedule or
// deliver events, wake processes, push work, or write formatted output.
var orderedEffects = map[string]string{
	"schedule": "schedules an event", "scheduleEvent": "schedules an event",
	"scheduleProc": "schedules an event", "Schedule": "schedules an event",
	"After": "schedules an event", "AfterTick": "schedules an event",
	"AfterFunc": "schedules an event", "Go": "spawns a process",
	"GoAfter": "spawns a process", "GoDaemon": "spawns a process",
	"Push": "pushes ordered work", "Pop": "consumes ordered work",
	"Signal": "wakes a process", "Broadcast": "wakes processes",
	"Complete": "wakes processes", "wake": "wakes a process",
	"Wake": "wakes a process", "wakeAfter": "wakes a process",
	"park": "parks a process", "Park": "parks a process",
	"Submit": "submits device work", "SubmitWait": "submits device work",
	"Ring": "rings a doorbell", "Send": "sends through the runtime",
	"SendChunk": "sends through the runtime", "Record": "records ordered output",
	"Emit": "records ordered output", "Encode": "writes ordered output",
	"Fprintf": "writes ordered output", "Fprint": "writes ordered output",
	"Fprintln": "writes ordered output", "Printf": "writes ordered output",
	"Print": "writes ordered output", "Println": "writes ordered output",
	"Write": "writes ordered output", "WriteString": "writes ordered output",
	"WriteByte": "writes ordered output", "WriteRune": "writes ordered output",
}

func runSimdet(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) && !pass.Waived(n.Pos(), DirectiveOrdered) {
					checkMapRangeBody(pass, n)
				}
			}
			return true
		})
	}
}

// checkForbiddenCall flags wall-clock reads and global math/rand draws.
func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Only package-level functions matter here; methods (e.g. on a
	// private *rand.Rand or a time.Timer already flagged at its
	// construction) are fine.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulation code must use virtual time (sim.Time)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global source; use a per-world seeded *rand.Rand", fn.Name())
		}
	case "runtime":
		// Core-count reads make results depend on the machine running
		// them; shard-count and worker policy belong in the bench/cmd
		// layers, behind the one waived site.
		if (fn.Name() == "NumCPU" || fn.Name() == "GOMAXPROCS") && !pass.Waived(call.Pos(), DirectiveCPUPolicy) {
			pass.Reportf(call.Pos(),
				"runtime.%s makes behaviour depend on the host's core count; take parallelism as a parameter (waive the policy site with //ntblint:cpupolicy)", fn.Name())
		}
	}
}

// checkMapRangeBody flags statements inside a map-range loop that make
// the (randomized) iteration order observable.
func checkMapRangeBody(pass *Pass, loop *ast.RangeStmt) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map: iteration order is randomized; sort the keys or waive with //ntblint:ordered")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(),
					"channel receive inside range over map: iteration order is randomized; sort the keys or waive with //ntblint:ordered")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass, id) {
				pass.Reportf(n.Pos(),
					"append inside range over map builds output in randomized iteration order; sort the keys or waive with //ntblint:ordered")
				return true
			}
			if name := calleeName(n); name != "" {
				if effect, ok := orderedEffects[name]; ok {
					pass.Reportf(n.Pos(),
						"%s %s inside range over map: event/output order would follow randomized iteration order; sort the keys or waive with //ntblint:ordered",
						name, effect)
				}
			}
		}
		return true
	})
}

// calleeFunc resolves a call's target to its types.Func, or nil for
// builtins, conversions, and indirect calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeName returns the syntactic name of the called function or
// method, or "" when there is none (function values, conversions).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
