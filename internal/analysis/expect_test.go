package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches an expectation comment: `// want "substring"`. The
// quoted text must appear in a diagnostic reported on the same line.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file string // base name
	line int
	sub  string
	hit  bool
}

// collectWants scans every non-test Go file in dir for `// want`
// comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{file: name, line: line, sub: m[1]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// runFixture type-checks testdata/src/<name>, runs the analyzer, and
// verifies the diagnostics match the fixture's `// want` comments
// exactly: every expectation is reported, and nothing unexpected is.
// Waiver honoring is checked implicitly — a waived site carries no
// `// want`, so a diagnostic there fails the run.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no `// want` comments", name)
	}
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.sub)
		}
	}
}

func TestSimdetFixture(t *testing.T)     { runFixture(t, Simdet, "simdet") }
func TestResetcheckFixture(t *testing.T) { runFixture(t, Resetcheck, "resetcheck") }
func TestSnapcheckFixture(t *testing.T)  { runFixture(t, Snapcheck, "snapcheck") }
func TestAllocfreeFixture(t *testing.T)  { runFixture(t, Allocfree, "allocfree") }
func TestParkcheckFixture(t *testing.T)  { runFixture(t, Parkcheck, "parkcheck") }

// TestSuiteCleanOnRepo is the self-host check: the merged tree must lint
// clean under the full suite, with simdet restricted to the simulation
// packages exactly as cmd/ntblint restricts it.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	simdetScope := regexp.MustCompile(`(^|/)internal/(sim|pcie|ntb|driver|fabric|core|mem|bench|trace)$`)
	old := Simdet.Match
	Simdet.Match = simdetScope.MatchString
	defer func() { Simdet.Match = old }()
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
