package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches an expectation comment: `// want "substring"`. The
// quoted text must appear in a diagnostic reported on the same line.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file string // base name
	line int
	sub  string
	hit  bool
}

// collectWants scans every non-test Go file in dir for `// want`
// comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{file: name, line: line, sub: m[1]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// runFixture type-checks testdata/src/<name>, runs the analyzer, and
// verifies the diagnostics match the fixture's `// want` comments
// exactly: every expectation is reported, and nothing unexpected is.
// Waiver honoring is checked implicitly — a waived site carries no
// `// want`, so a diagnostic there fails the run.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no `// want` comments", name)
	}
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.sub)
		}
	}
}

func TestSimdetFixture(t *testing.T)         { runFixture(t, Simdet, "simdet") }
func TestResetcheckFixture(t *testing.T)     { runFixture(t, Resetcheck, "resetcheck") }
func TestSnapcheckFixture(t *testing.T)      { runFixture(t, Snapcheck, "snapcheck") }
func TestAllocfreeFixture(t *testing.T)      { runFixture(t, Allocfree, "allocfree") }
func TestParkcheckFixture(t *testing.T)      { runFixture(t, Parkcheck, "parkcheck") }
func TestShardsafeFixture(t *testing.T)      { runFixture(t, Shardsafe, "shardsafe") }
func TestFabriccontractFixture(t *testing.T) { runFixture(t, Fabriccontract, "fabriccontract") }
func TestWaiverdriftFixture(t *testing.T)    { runFixture(t, Waiverdrift, "waiverdrift") }

// TestShardsafeSeededOmission deletes the sim.Post wrapping from the
// shard fixture's sanctioned write — the exact bug shardsafe exists to
// catch — and asserts the direct store is reported. The unmodified
// fixture reports nothing at that site (TestShardsafeFixture), so this
// proves the Post wrapper is what the analyzer credits.
func TestShardsafeSeededOmission(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "shardsafe", "shardsafe.go"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	begin := strings.Index(text, "// seed:post-begin")
	end := strings.Index(text, "// seed:post-end")
	if begin < 0 || end < 0 || end <= begin {
		t.Fatal("shardsafe fixture lost its seed:post markers")
	}
	end += len("// seed:post-end")
	mutated := text[:begin] + "peer.spads[idx] = val // seeded omission: Post deleted" + text[end:]

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "shardsafe.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "fixture/shardsafe")
	if err != nil {
		t.Fatalf("loading mutated fixture: %v", err)
	}
	omissionLine := 1 + strings.Count(text[:begin], "\n")
	found := false
	for _, d := range Run([]*Package{pkg}, []*Analyzer{Shardsafe}) {
		if d.Pos.Line == omissionLine && strings.Contains(d.Message, "direct access to remote peer state peer.spads") {
			found = true
		}
	}
	if !found {
		t.Errorf("shardsafe did not report the seeded sim.Post omission at line %d", omissionLine)
	}
}

// TestSuiteCleanOnRepo is the self-host check: the merged tree must lint
// clean under the full 8-analyzer suite, scoped exactly as cmd/ntblint
// scopes it (ApplyRepoScopes is the shared source of truth).
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	analyzers := Analyzers()
	saved := make([]func(string) bool, len(analyzers))
	for i, a := range analyzers {
		saved[i] = a.Match
	}
	defer func() {
		for i, a := range analyzers {
			a.Match = saved[i]
		}
	}()
	ApplyRepoScopes(analyzers)
	if len(analyzers) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(analyzers))
	}
	for _, d := range Run(pkgs, analyzers) {
		t.Errorf("%s", d)
	}
}
