package analysis

import (
	"go/ast"
)

// Parkcheck keeps the kernel's zero-alloc blocking discipline: a
// process parks many times per simulated microsecond, so the label a
// park call hands the deadlock reporter must be a precomputed string
// (literal, constant, or a field such as parkLabel built once at
// construction) — never concatenated or formatted at the call site.
// Likewise the Ticker handed to AfterTick must be a pre-allocated value,
// not a per-call literal or closure, or every timer arm would allocate.
var Parkcheck = &Analyzer{
	Name: "parkcheck",
	Doc: "park/wake labels must be precomputed strings and AfterTick " +
		"tickers pre-allocated values",
	Run: runParkcheck,
}

func runParkcheck(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "park", "Park":
				if len(call.Args) >= 1 && isString(pass.TypesInfo.TypeOf(call.Args[0])) {
					checkStaticLabel(pass, call.Args[0])
				}
			case "AfterTick":
				if len(call.Args) >= 2 {
					checkPreallocatedTicker(pass, call.Args[1])
				}
			}
			return true
		})
	}
}

// checkStaticLabel accepts label expressions that cost nothing at the
// call site: string literals, constants, plain variables, and field or
// element reads. Building the label in the call (concatenation,
// fmt.Sprintf, conversions) is reported.
func checkStaticLabel(pass *Pass, arg ast.Expr) {
	switch ast.Unparen(arg).(type) {
	case *ast.BasicLit, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return
	case *ast.BinaryExpr:
		pass.Reportf(arg.Pos(),
			"park label is concatenated at the call site; precompute it (e.g. a parkLabel field built at construction)")
	case *ast.CallExpr:
		pass.Reportf(arg.Pos(),
			"park label is built by a call at the park site; precompute it (e.g. a parkLabel field built at construction)")
	default:
		pass.Reportf(arg.Pos(),
			"park label must be a precomputed string (literal, constant, or stored field)")
	}
}

// checkPreallocatedTicker accepts tickers that already exist — plain
// variables and field/element reads — and reports per-call
// constructions: composite literals, address-of expressions, closures,
// and constructor calls, all of which allocate on every timer arm.
func checkPreallocatedTicker(pass *Pass, arg ast.Expr) {
	switch ast.Unparen(arg).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return
	default:
		pass.Reportf(arg.Pos(),
			"AfterTick ticker must be a pre-allocated value; constructing one per arm allocates on the timer path")
	}
}

// Analyzers returns the full ntblint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Simdet, Resetcheck, Snapcheck, Allocfree, Parkcheck, Shardsafe, Fabriccontract, Waiverdrift}
}
