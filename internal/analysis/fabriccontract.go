package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Fabriccontract enforces the PROTOCOL.md §13 backend contract: a type
// that sets out to implement fabric.Link must ship the whole lifecycle,
// not the easy half. A type implementing more than half of the contract
// but missing methods is reported (a fifth backend that compiles only
// because it never got assigned to a Link variable would otherwise slip
// through until the differential suite runs); Restore/Snapshot/Reset/
// AssertQuiescent are called out as the fork/replay lifecycle pairing.
// Full implementers are checked for Stats coverage (a Stats that
// returns a constant reports nothing about the link), and every Unplug
// in a package declaring the contract must return the uniform error
// surface instead of panicking or returning nothing. A deliberate
// partial adapter is waived with //ntblint:notlink in its doc comment.
var Fabriccontract = &Analyzer{
	Name: "fabriccontract",
	Doc: "require types resembling fabric.Link to implement the full " +
		"lifecycle contract, with real Stats and an error-returning Unplug",
	Run: runFabriccontract,
}

// contractName is the interface the analyzer anchors on, wherever it is
// declared — the fabric package on the real tree, the fixture package
// in tests.
const contractName = "Link"

func runFabriccontract(pass *Pass) {
	contract, localContract := findContract(pass)
	if contract == nil {
		return
	}
	iface, ok := contract.Underlying().(*types.Interface)
	if !ok {
		return
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		checkContractType(pass, named, iface)
	}

	if localContract {
		checkUnplugSurface(pass)
	}
}

// findContract locates the Link contract interface: the pass package's
// own declaration when it has one, else the engine-wide lookup. The
// bool reports whether the contract is declared locally (which scopes
// the Unplug surface check to the package that owns the contract).
func findContract(pass *Pass) (*types.Named, bool) {
	if tn, ok := pass.Pkg.Scope().Lookup(contractName).(*types.TypeName); ok && !tn.IsAlias() {
		if named, ok := tn.Type().(*types.Named); ok {
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				return named, true
			}
		}
	}
	for _, named := range pass.Engine.Interfaces(contractName) {
		return named, false
	}
	return nil, false
}

// lifecycleMethods are the fork/replay lifecycle quartet; missing any
// one of them while shipping the others breaks snapshot/restore
// round-trips in a way only the differential suite would catch.
var lifecycleMethods = map[string]bool{
	"Reset": true, "Snapshot": true, "Restore": true, "AssertQuiescent": true,
}

// checkContractType classifies one named type against the contract and
// reports partial implementations and stub Stats.
func checkContractType(pass *Pass, named *types.Named, iface *types.Interface) {
	ms := types.NewMethodSet(types.NewPointer(named))
	total := iface.NumMethods()
	var missing []string
	matched := 0
	for i := 0; i < total; i++ {
		want := iface.Method(i)
		sel := ms.Lookup(pass.Pkg, want.Name())
		if sel == nil {
			// Exported contract methods are visible from any package;
			// Lookup with the wrong package would hide them, so retry
			// with the method's own package for robustness.
			sel = ms.Lookup(want.Pkg(), want.Name())
		}
		if sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok && types.Identical(fn.Type(), want.Type()) {
				matched++
				continue
			}
		}
		missing = append(missing, want.Name())
	}

	switch {
	case matched == total:
		checkStatsCoverage(pass, named, iface)
	case matched*2 > total:
		if typeWaived(pass, named, DirectiveNotLink) {
			return
		}
		var lifecycle []string
		for _, m := range missing {
			if lifecycleMethods[m] {
				lifecycle = append(lifecycle, m)
			}
		}
		sort.Strings(missing)
		msg := "%s implements %d of %d fabric.Link methods but is missing %s; " +
			"a backend must ship the full contract (or waive a deliberate partial adapter with //ntblint:notlink)"
		if len(lifecycle) > 0 {
			sort.Strings(lifecycle)
			msg = "%s implements %d of %d fabric.Link methods but is missing %s; " +
				"the Reset/Snapshot/Restore/AssertQuiescent lifecycle must ship as a unit " +
				"(or waive a deliberate partial adapter with //ntblint:notlink)"
		}
		pass.Reportf(named.Obj().Pos(), msg, named.Obj().Name(), matched, total, strings.Join(missing, ", "))
	}
}

// checkStatsCoverage flags a full implementer whose Stats method
// returns without mentioning any receiver state — a stub that
// satisfies the signature while reporting nothing.
func checkStatsCoverage(pass *Pass, named *types.Named, iface *types.Interface) {
	if lookupIfaceMethod(iface, "Stats") == nil {
		return
	}
	fd := pass.Engine.MethodDecl(named, "Stats")
	if fd == nil || fd.Body == nil {
		return
	}
	recv := receiverIdentName(fd)
	if recv == "" {
		pass.Reportf(fd.Pos(),
			"%s.Stats ignores its receiver; Stats must report per-link state, not a constant",
			named.Obj().Name())
		return
	}
	if !mentionsReceiverSelector(fd.Body, recv) {
		pass.Reportf(fd.Pos(),
			"%s.Stats never reads receiver state; Stats must report per-link counters, not a constant",
			named.Obj().Name())
	}
}

// checkUnplugSurface requires every Unplug method in the contract's own
// package to return error as its last result — the uniform
// failure-injection surface (PROTOCOL.md §13); panicking or returning
// nothing leaves callers with no way to report "unsupported".
func checkUnplugSurface(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Unplug" {
				continue
			}
			results := fd.Type.Results
			if results != nil && len(results.List) > 0 {
				last := results.List[len(results.List)-1].Type
				if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "error" {
					continue
				}
			}
			pass.Reportf(fd.Pos(),
				"%s.Unplug must return error as its last result — the uniform failure-injection surface; "+
					"return a descriptive error for unsupported configurations instead of panicking",
				receiverTypeName(fd))
		}
	}
}

// lookupIfaceMethod returns the interface's method by name, nil when
// absent.
func lookupIfaceMethod(iface *types.Interface, name string) *types.Func {
	for i := 0; i < iface.NumMethods(); i++ {
		if m := iface.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// mentionsReceiverSelector reports whether a body reads or writes any
// field or method of the named receiver.
func mentionsReceiverSelector(body *ast.BlockStmt, recv string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

// typeWaived reports whether the named type's declaration carries the
// directive in its doc comment (TypeSpec or enclosing GenDecl).
func typeWaived(pass *Pass, named *types.Named, directive string) bool {
	target := named.Obj().Name()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != target {
					continue
				}
				if HasDirective(ts.Doc, directive) || HasDirective(gd.Doc, directive) {
					return true
				}
				return pass.Waived(ts.Pos(), directive)
			}
		}
	}
	return false
}
