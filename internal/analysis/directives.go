package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Waiver and annotation directives. All are ordinary line comments:
//
//	//ntblint:ordered    — on (or on the line above) a `for … range m`
//	                       over a map: iteration order provably does not
//	                       affect simulation results or rendered output.
//	//ntblint:allocok    — on (or above) a statement inside an
//	                       //ntblint:allocfree function: this allocation
//	                       is deliberate (pool refill, cold start) and
//	                       the comment should say why.
//	//ntblint:allocfree  — in a function's doc comment: the body must
//	                       not allocate (checked by the allocfree
//	                       analyzer).
//	// reset: keep       — trailing a struct field: Reset intentionally
//	                       leaves the field alone (identity, warm
//	                       buffers, installed daemons).
//	// snap: keep        — trailing a struct field: Snapshot intentionally
//	                       omits the field (infrastructure that is
//	                       identical in every quiescent world, or scratch
//	                       that holds no simulation state). Combines with
//	                       the reset annotation: `// reset: keep; snap:
//	                       keep — reason`.
//	//ntblint:shardlocal — on (or above) a peer-state access inside a
//	                       remote-guarded region: the access is provably
//	                       same-shard (checked by shardsafe).
//	//ntblint:cpupolicy  — on (or above) a runtime.NumCPU/GOMAXPROCS
//	                       call in a simulation package: this is the
//	                       sanctioned parallelism-policy site, not
//	                       simulation state (checked by simdet).
//	//ntblint:notlink    — in a type's doc comment: the type resembles a
//	                       fabric.Link but is a deliberate partial
//	                       adapter, exempt from the full-lifecycle
//	                       contract (checked by fabriccontract).
const (
	DirectiveOrdered    = "ordered"
	DirectiveAllocOK    = "allocok"
	DirectiveAllocFree  = "allocfree"
	DirectiveShardLocal = "shardlocal"
	DirectiveCPUPolicy  = "cpupolicy"
	DirectiveNotLink    = "notlink"
)

const directivePrefix = "//ntblint:"

// directiveIndex maps file name → line → set of ntblint directives
// appearing on that line.
type directiveIndex map[string]map[int]map[string]bool

func indexDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				name := strings.TrimPrefix(text, directivePrefix)
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				set[name] = true
			}
		}
	}
	return idx
}

// Waived reports whether the given directive appears on the node's
// starting line or on the line immediately above it — the two
// conventional placements for a per-site waiver.
func (p *Pass) Waived(pos token.Pos, directive string) bool {
	return waivedIn(p.directives, p.Fset, pos, directive)
}

// waivedIn is Waived against an explicit directive index — the form
// whole-program analyses use when they check waivers outside any single
// package's pass (shardsafe's cross-package sweep).
func waivedIn(idx directiveIndex, fset *token.FileSet, pos token.Pos, directive string) bool {
	at := fset.Position(pos)
	lines := idx[at.Filename]
	if lines == nil {
		return false
	}
	return lines[at.Line][directive] || lines[at.Line-1][directive]
}

// HasDirective reports whether any comment in the group carries the
// named ntblint directive (used for //ntblint:allocfree in func docs).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if strings.HasPrefix(text, directivePrefix) &&
			strings.TrimPrefix(text, directivePrefix) == directive {
			return true
		}
	}
	return false
}

// fieldKept reports whether a struct field carries the `// reset: keep`
// annotation, in either its doc comment or its trailing comment.
func fieldKept(field *ast.Field) bool {
	return fieldAnnotated(field, "reset: keep")
}

// fieldSnapKept reports whether a struct field carries the
// `// snap: keep` annotation, in either its doc comment or its trailing
// comment.
func fieldSnapKept(field *ast.Field) bool {
	return fieldAnnotated(field, "snap: keep")
}

func fieldAnnotated(field *ast.Field, marker string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				return true
			}
		}
	}
	return false
}
