package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as `go list` would, e.g. "./...") relative to
// dir, then parses and type-checks every matched package. Imports —
// both intra-module and standard library — are type-checked from source
// via the stdlib source importer, shared across packages so each
// dependency is checked once per Load.
//
// The process working directory must be inside the module for import
// resolution to work; dir may be "" for the working directory itself.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// without consulting `go list` — the fixture-test path, which must work
// on testdata directories that package patterns exclude. importPath
// names the resulting types.Package.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	lp := listedPackage{ImportPath: importPath, Dir: dir}
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			lp.GoFiles = append(lp.GoFiles, n)
		}
	}
	if len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	return checkPackage(fset, importer.ForCompiler(fset, "source", nil), lp)
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the source loader cannot check", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkgs = append(pkgs, lp)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
