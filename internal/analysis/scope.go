package analysis

import "regexp"

// SimScope matches the packages whose code must be deterministic in the
// byte-identical-results sense: the kernel, the device and protocol
// layers, the runtime, and the benchmark engine that renders results/.
// Other packages (examples, commands, parsing helpers) may iterate maps
// and read clocks freely. It is declared here — not in cmd/ntblint — so
// the command-line runner and the self-hosting suite test apply the
// identical scoping.
var SimScope = regexp.MustCompile(`(^|/)internal/(sim|pcie|ntb|driver|fabric|core|mem|bench|trace)$`)

// FabricScope matches the package that owns the fabric.Link contract;
// fabriccontract only makes claims where backends live.
var FabricScope = regexp.MustCompile(`(^|/)internal/fabric$`)

// ApplyRepoScopes installs the production Match functions on the suite:
// simdet and shardsafe run on the simulation packages, fabriccontract
// on the fabric package, and the rest everywhere. Fixture tests run
// analyzers with Match unset instead, so they see their single-package
// loads unscoped.
func ApplyRepoScopes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		switch a.Name {
		case Simdet.Name, Shardsafe.Name:
			a.Match = SimScope.MatchString
		case Fabriccontract.Name:
			a.Match = FabricScope.MatchString
		}
	}
}
