package analysis

import (
	"go/ast"
	"sort"
)

// Resetcheck proves the world-pool recycling contract field by field:
// for every struct type with a niladic Reset (or reset) method, each
// field must be either assigned in Reset, recursively reset (a method
// call on the field, or the field handed to a helper such as clear),
// or explicitly annotated `// reset: keep`. A field that is none of
// these is the add-a-field-forget-the-pool bug: a recycled world would
// leak the previous run's state through it.
var Resetcheck = &Analyzer{
	Name: "resetcheck",
	Doc: "every field of a type with a Reset method must be assigned, " +
		"recursively reset, or annotated `// reset: keep`",
	Run: runResetcheck,
}

// resetTarget is one struct type declaration plus its reset-family
// methods and every other method (helpers reachable from Reset).
type resetTarget struct {
	name    string
	decl    *ast.StructType
	resets  []*ast.FuncDecl          // methods named Reset or reset
	methods map[string]*ast.FuncDecl // all methods, by name
}

func runResetcheck(pass *Pass) {
	targets := map[string]*resetTarget{}
	get := func(name string) *resetTarget {
		t := targets[name]
		if t == nil {
			t = &resetTarget{name: name, methods: map[string]*ast.FuncDecl{}}
			targets[name] = t
		}
		return t
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						get(ts.Name.Name).decl = st
					}
				}
			case *ast.FuncDecl:
				recv := receiverTypeName(d)
				if recv == "" {
					continue
				}
				t := get(recv)
				t.methods[d.Name.Name] = d
				if (d.Name.Name == "Reset" || d.Name.Name == "reset") &&
					d.Type.Params.NumFields() == 0 && d.Type.Results.NumFields() == 0 {
					t.resets = append(t.resets, d)
				}
			}
		}
	}

	names := make([]string, 0, len(targets))
	for name := range targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := targets[name]
		if t.decl == nil || len(t.resets) == 0 {
			continue
		}
		checkResetTarget(pass, t)
	}
}

func checkResetTarget(pass *Pass, t *resetTarget) {
	handled := map[string]bool{}
	all := false
	visited := map[string]bool{}
	for _, reset := range t.resets {
		if collectHandled(pass, t, reset, handled, visited) {
			all = true
		}
	}
	if all {
		return
	}
	for _, field := range t.decl.Fields.List {
		if fieldKept(field) {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded field: named by its type.
			if n := embeddedFieldName(field.Type); n != "" && !handled[n] {
				pass.Reportf(field.Pos(),
					"(*%s).Reset does not reset embedded field %s; assign it, reset it, or annotate `// reset: keep`",
					t.name, n)
			}
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" || handled[id.Name] {
				continue
			}
			pass.Reportf(id.Pos(),
				"(*%s).Reset does not reset field %s; assign it, reset it, or annotate `// reset: keep`",
				t.name, id.Name)
		}
	}
}

// collectHandled walks one reset-family method body recording which
// receiver fields it handles. It follows calls to sibling methods on
// the same receiver (r.helper()) transitively. The boolean result
// reports a whole-receiver wipe (*r = T{...}).
func collectHandled(pass *Pass, t *resetTarget, fn *ast.FuncDecl, handled map[string]bool, visited map[string]bool) bool {
	if visited[fn.Name.Name] || fn.Body == nil {
		return false
	}
	visited[fn.Name.Name] = true
	recv := receiverIdentName(fn)
	if recv == "" {
		return false
	}
	all := false
	mark := func(expr ast.Expr) {
		if f := rootField(recv, expr); f != "" {
			handled[f] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if star, ok := lhs.(*ast.StarExpr); ok {
					if id, ok := star.X.(*ast.Ident); ok && id.Name == recv {
						all = true
						continue
					}
				}
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			// &r.f: the alias escapes to code that may write it.
			if n.Op.String() == "&" {
				mark(n.X)
			}
		case *ast.TypeAssertExpr:
			// `if tx, ok := r.f.(*Impl); ok { tx.Reset() }`: the field
			// is dispatched by dynamic type for handling.
			mark(n.X)
		case *ast.RangeStmt:
			// `for … := range r.f { … }` with calls or writes inside
			// is the delegated-reset idiom (resetting every element).
			if f := rootField(recv, n.X); f != "" && bodyHasEffect(n.Body) {
				handled[f] = true
			}
		case *ast.CallExpr:
			// r.f.Reset(), clear(r.f), helper(r.f, …): the field is
			// handed to something that resets it.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				mark(sel.X)
				// r.helper(): follow sibling methods on the receiver.
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
					if sib := t.methods[sel.Sel.Name]; sib != nil {
						if collectHandled(pass, t, sib, handled, visited) {
							all = true
						}
					}
				}
			}
			for _, arg := range n.Args {
				mark(arg)
			}
		}
		return true
	})
	return all
}

// rootField returns the receiver field a path expression is rooted at:
// r.f, r.f.x, r.f[i], r.f[i:j], (*r).f all yield "f"; anything not
// rooted at the receiver yields "".
func rootField(recv string, expr ast.Expr) string {
	field := ""
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			field = e.Sel.Name
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.Ident:
			if e.Name == recv {
				return field
			}
			return ""
		default:
			return ""
		}
	}
}

func bodyHasEffect(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.AssignStmt, *ast.SendStmt:
			found = true
		}
		return !found
	})
	return found
}

func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers look like Queue[T].
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if idx, ok := t.(*ast.IndexListExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func receiverIdentName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

func embeddedFieldName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
