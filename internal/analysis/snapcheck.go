package analysis

import (
	"go/ast"
	"sort"
)

// Snapcheck proves the snapshot/fork contract field by field, the
// Snapshot-side sibling of resetcheck: for every struct type with a
// niladic single-result Snapshot (or snapshot) method, each field must
// be either read by Snapshot (captured into the snapshot value, asserted
// quiescent, or handed to a helper), or explicitly annotated
// `// snap: keep`. A field that is neither is the
// add-a-field-forget-the-snapshot bug: a forked world would silently
// resume with the pool world's value of that field instead of the
// captured prefix's.
//
// Mention suffices — unlike Reset, Snapshot legitimately touches fields
// in many shapes (copies them, asserts on them, passes them to sibling
// capture helpers), and all of them require the author to have
// considered the field. The analyzer's job is to force that
// consideration, not to prove the capture is deep enough.
var Snapcheck = &Analyzer{
	Name: "snapcheck",
	Doc: "every field of a type with a Snapshot method must be read by " +
		"Snapshot or annotated `// snap: keep`",
	Run: runSnapcheck,
}

// snapTarget is one struct type declaration plus its snapshot-family
// methods and every other method (helpers reachable from Snapshot).
type snapTarget struct {
	name    string
	decl    *ast.StructType
	snaps   []*ast.FuncDecl          // methods named Snapshot or snapshot
	methods map[string]*ast.FuncDecl // all methods, by name
}

func runSnapcheck(pass *Pass) {
	targets := map[string]*snapTarget{}
	get := func(name string) *snapTarget {
		t := targets[name]
		if t == nil {
			t = &snapTarget{name: name, methods: map[string]*ast.FuncDecl{}}
			targets[name] = t
		}
		return t
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						get(ts.Name.Name).decl = st
					}
				}
			case *ast.FuncDecl:
				recv := receiverTypeName(d)
				if recv == "" {
					continue
				}
				t := get(recv)
				t.methods[d.Name.Name] = d
				if (d.Name.Name == "Snapshot" || d.Name.Name == "snapshot") &&
					d.Type.Params.NumFields() == 0 && d.Type.Results.NumFields() == 1 {
					t.snaps = append(t.snaps, d)
				}
			}
		}
	}

	names := make([]string, 0, len(targets))
	for name := range targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := targets[name]
		if t.decl == nil || len(t.snaps) == 0 {
			continue
		}
		checkSnapTarget(pass, t)
	}
}

func checkSnapTarget(pass *Pass, t *snapTarget) {
	captured := map[string]bool{}
	visited := map[string]bool{}
	for _, snap := range t.snaps {
		collectCaptured(t, snap, captured, visited)
	}
	for _, field := range t.decl.Fields.List {
		if fieldSnapKept(field) {
			continue
		}
		if len(field.Names) == 0 {
			if n := embeddedFieldName(field.Type); n != "" && !captured[n] {
				pass.Reportf(field.Pos(),
					"(*%s).Snapshot does not capture embedded field %s; read it or annotate `// snap: keep`",
					t.name, n)
			}
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" || captured[id.Name] {
				continue
			}
			pass.Reportf(id.Pos(),
				"(*%s).Snapshot does not capture field %s; read it or annotate `// snap: keep`",
				t.name, id.Name)
		}
	}
}

// collectCaptured walks one snapshot-family method body recording every
// receiver field it mentions (any expression path rooted at the
// receiver), following calls to sibling methods on the same receiver
// (r.helper()) transitively so capture logic may be factored out.
func collectCaptured(t *snapTarget, fn *ast.FuncDecl, captured map[string]bool, visited map[string]bool) {
	if visited[fn.Name.Name] || fn.Body == nil {
		return
	}
	visited[fn.Name.Name] = true
	recv := receiverIdentName(fn)
	if recv == "" {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if f := rootField(recv, n); f != "" {
				captured[f] = true
			}
		case *ast.CallExpr:
			// r.helper(): follow sibling methods on the receiver.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
					if sib := t.methods[sel.Sel.Name]; sib != nil {
						collectCaptured(t, sib, captured, visited)
					}
				}
			}
		}
		return true
	})
}
