package analysis

import (
	"go/ast"
	"go/types"
	"sync"
)

// Engine is the cross-package fact layer shared by every analyzer in one
// Run: a lightweight static call graph over all loaded packages, a
// declaration index that resolves a types.Func to its syntax anywhere in
// the package set, interface-implementer lookup, and a memo space where
// analyzers cache whole-program results so per-package passes stay cheap
// and deterministic. It is built once per Run (single-package fixture
// loads included) and is read-only afterwards, so parallel per-package
// passes may share it freely; Memo serialises the one mutable surface.
type Engine struct {
	pkgs []*Package

	decl    map[*types.Func]*ast.FuncDecl
	declPkg map[*types.Func]*Package

	// callees holds the static call graph: for each declared function,
	// the declared functions and methods it calls directly, in source
	// order. Interface-method callees are recorded as the interface's
	// *types.Func; Reachable expands them to every implementation found
	// in the package set.
	callees map[*types.Func][]*types.Func
	callers map[*types.Func][]CallSite

	// dirs holds each package's waiver-directive index, shared with the
	// per-package passes so directives are scanned once per load.
	dirs map[string]directiveIndex

	mu   sync.Mutex
	memo map[string]any
}

// CallSite is one static call of a declared function: the calling
// declaration and the call expression inside it.
type CallSite struct {
	Caller *types.Func
	Call   *ast.CallExpr
	Pkg    *Package
}

// NewEngine builds the fact layer over the given packages. Packages are
// indexed in slice order (the loader sorts by import path), files and
// declarations in source order, so every derived list is deterministic.
func NewEngine(pkgs []*Package) *Engine {
	e := &Engine{
		pkgs:    pkgs,
		decl:    map[*types.Func]*ast.FuncDecl{},
		declPkg: map[*types.Func]*Package{},
		callees: map[*types.Func][]*types.Func{},
		callers: map[*types.Func][]CallSite{},
		dirs:    map[string]directiveIndex{},
		memo:    map[string]any{},
	}
	for _, pkg := range pkgs {
		e.dirs[pkg.Path] = indexDirectives(pkg.Fset, pkg.Files)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				e.decl[fn] = fd
				e.declPkg[fn] = pkg
			}
		}
	}
	// Second pass: edges. Done after the declaration index is complete
	// so intra-load cross-package edges resolve in either direction.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				e.collectEdges(pkg, fn, fd.Body)
			}
		}
	}
	return e
}

// collectEdges records one declaration's outgoing static calls,
// including calls made inside its function literals (a closure's calls
// belong to the declaration that created it).
func (e *Engine) collectEdges(pkg *Package, caller *types.Func, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = pkg.Info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		}
		if callee == nil {
			return true
		}
		e.callees[caller] = append(e.callees[caller], callee)
		e.callers[callee] = append(e.callers[callee], CallSite{Caller: caller, Call: call, Pkg: pkg})
		return true
	})
}

// Packages returns the engine's package set in index order.
func (e *Engine) Packages() []*Package { return e.pkgs }

// Decl resolves a function or method to its declaration and declaring
// package anywhere in the loaded set; (nil, nil) for functions outside
// it (standard library, interface methods).
func (e *Engine) Decl(fn *types.Func) (*ast.FuncDecl, *Package) {
	return e.decl[fn], e.declPkg[fn]
}

// Callees returns the functions fn statically calls, in source order.
func (e *Engine) Callees(fn *types.Func) []*types.Func { return e.callees[fn] }

// Callers returns every static call site of fn across the package set,
// in package/file/source order.
func (e *Engine) Callers(fn *types.Func) []CallSite { return e.callers[fn] }

// NamedTypes returns every named type declared in the package set,
// sorted by package path then type name.
func (e *Engine) NamedTypes() []*types.Named {
	return e.Memo("engine.named", func() any {
		var out []*types.Named
		for _, pkg := range e.pkgs {
			scope := pkg.Types.Scope()
			names := scope.Names() // already sorted
			for _, name := range names {
				if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
					if named, ok := tn.Type().(*types.Named); ok {
						out = append(out, named)
					}
				}
			}
		}
		return out
	}).([]*types.Named)
}

// Interfaces returns the named interface types with the given name, in
// package order — the lookup fabriccontract uses to find the Link
// contract wherever it is declared (the fabric package on the real
// tree, the fixture package under test).
func (e *Engine) Interfaces(name string) []*types.Named {
	var out []*types.Named
	for _, named := range e.NamedTypes() {
		if named.Obj().Name() != name {
			continue
		}
		if _, ok := named.Underlying().(*types.Interface); ok {
			out = append(out, named)
		}
	}
	return out
}

// Implementers returns every named type in the package set whose
// pointer method set satisfies iface, in NamedTypes order.
func (e *Engine) Implementers(iface *types.Interface) []*types.Named {
	var out []*types.Named
	for _, named := range e.NamedTypes() {
		if _, ok := named.Underlying().(*types.Interface); ok {
			continue
		}
		if types.Implements(types.NewPointer(named), iface) || types.Implements(named, iface) {
			out = append(out, named)
		}
	}
	return out
}

// MethodDecl resolves a named type's method by name to its declaration,
// or nil when the method is promoted, synthetic, or declared outside
// the loaded set.
func (e *Engine) MethodDecl(named *types.Named, name string) *ast.FuncDecl {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			d, _ := e.Decl(m)
			return d
		}
	}
	return nil
}

// Reachable returns the set of declared functions reachable from roots
// over the static call graph. Calls through interface methods fan out
// to every implementation of that method found in the package set — the
// conservative choice for invariant checking.
func (e *Engine) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if fn == nil || seen[fn] {
			continue
		}
		seen[fn] = true
		for _, callee := range e.callees[fn] {
			targets := []*types.Func{callee}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
					targets = append(targets, e.implementations(iface, callee.Name())...)
				}
			}
			for _, t := range targets {
				if !seen[t] {
					queue = append(queue, t)
				}
			}
		}
	}
	return seen
}

// implementations returns the concrete methods implementing an
// interface method, across the package set.
func (e *Engine) implementations(iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, named := range e.Implementers(iface) {
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == method {
				out = append(out, fn)
			}
		}
	}
	return out
}

// Memo returns the cached value under key, building it under the
// engine lock on first demand. Analyzers use it to compute
// whole-program facts exactly once regardless of package count or
// worker interleaving; build must therefore be deterministic.
func (e *Engine) Memo(key string, build func() any) any {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.memo[key]; ok {
		return v
	}
	v := build()
	e.memo[key] = v
	return v
}

// directivesFor returns the package's directive index (empty index for
// packages outside the engine's set).
func (e *Engine) directivesFor(path string) directiveIndex {
	if d, ok := e.dirs[path]; ok {
		return d
	}
	return directiveIndex{}
}
