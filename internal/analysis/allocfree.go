package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Allocfree checks functions annotated //ntblint:allocfree — the
// simulator's hot paths, whose allocs/op the benchmark gate pins at
// zero — for source constructs that allocate: closures, map/slice
// literals, escaping composite literals, new/make, non-self appends,
// interface boxing, string building, and method values. Where the
// runtime gate says *that* an allocation appeared, this analyzer points
// at the expression that caused it. Deliberate cold-path allocations
// (pool refills) carry a //ntblint:allocok waiver explaining why.
//
// Everything under a call to panic is exempt: panic paths are terminal
// and their formatting cost is irrelevant.
var Allocfree = &Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //ntblint:allocfree must not contain " +
		"allocating constructs (waive deliberate ones with //ntblint:allocok)",
	Run: runAllocfree,
}

func runAllocfree(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasDirective(fn.Doc, DirectiveAllocFree) {
				continue
			}
			checkAllocFree(pass, fn)
		}
	}
}

type allocChecker struct {
	pass *Pass
	// selfAppends holds append calls in the `x = append(x, …)` form:
	// the amortized retained-backing idiom the hot paths rely on.
	selfAppends map[*ast.CallExpr]bool
	// escaped holds composite literals already reported as &T{…}.
	escaped map[*ast.CompositeLit]bool
	// callFuns holds selector expressions in call position, so method
	// *values* (which allocate a closure) can be told from calls.
	callFuns map[ast.Expr]bool
}

func checkAllocFree(pass *Pass, fn *ast.FuncDecl) {
	c := &allocChecker{
		pass:        pass,
		selfAppends: map[*ast.CallExpr]bool{},
		escaped:     map[*ast.CompositeLit]bool{},
		callFuns:    map[ast.Expr]bool{},
	}
	// First pass: classify idioms that need their surrounding context.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && c.isBuiltinCall(call, "append") &&
					len(call.Args) > 0 && exprEqual(n.Lhs[0], call.Args[0]) {
					c.selfAppends[call] = true
				}
			}
		case *ast.CallExpr:
			c.callFuns[ast.Unparen(n.Fun)] = true
		}
		return true
	})
	c.walk(fn.Body)
	c.checkReturns(pass, fn)
}

func (c *allocChecker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.escaped[lit] = true
					c.report(n.Pos(), "&%s escapes to the heap", typeLabel(c.pass, lit))
				}
			}
		case *ast.CompositeLit:
			if c.escaped[n] {
				return true
			}
			switch c.typeOf(n).Underlying().(type) {
			case *types.Map:
				c.report(n.Pos(), "map literal allocates")
			case *types.Slice:
				c.report(n.Pos(), "slice literal allocates a backing array")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.typeOf(n)) {
				c.report(n.Pos(), "string concatenation allocates; precompute the string")
			}
		case *ast.SelectorExpr:
			if sel := c.pass.TypesInfo.Selections[n]; sel != nil &&
				sel.Kind() == types.MethodVal && !c.callFuns[n] {
				c.report(n.Pos(), "method value %s allocates a bound-method closure", n.Sel.Name)
			}
		case *ast.CallExpr:
			return c.checkCall(n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					c.checkBox(rhs, c.typeOf(n.Lhs[i]))
				}
			}
		}
		return true
	})
}

// checkCall handles builtins, conversions, and interface boxing at call
// boundaries. Returns false to skip the subtree (panic paths).
func (c *allocChecker) checkCall(call *ast.CallExpr) bool {
	if c.isBuiltinCall(call, "panic") {
		return false // terminal path: formatting cost is irrelevant
	}
	if c.isBuiltinCall(call, "new") {
		c.report(call.Pos(), "new allocates")
		return true
	}
	if c.isBuiltinCall(call, "make") {
		c.report(call.Pos(), "make allocates")
		return true
	}
	if c.isBuiltinCall(call, "append") && !c.selfAppends[call] {
		c.report(call.Pos(), "append whose result does not feed back into its first argument allocates a new backing array")
		return true
	}
	// Conversions: string <-> byte/rune slices copy; conversions into
	// interface types box.
	if tv, ok := c.pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, c.typeOf(call.Args[0])
		if stringBytesConversion(dst, src) {
			c.report(call.Pos(), "string/slice conversion copies its operand")
		}
		if boxes(src, dst) {
			c.report(call.Pos(), "conversion boxes %s into %s", src, dst)
		}
		return true
	}
	// Ordinary call: check each argument against its parameter type.
	sig, ok := c.typeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		c.checkBox(arg, param)
	}
	return true
}

func (c *allocChecker) checkReturns(pass *Pass, fn *ast.FuncDecl) {
	obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != results.Len() {
			return true
		}
		for i, res := range ret.Results {
			c.checkBox(res, results.At(i).Type())
		}
		return true
	})
}

// checkBox reports expr if assigning it to target boxes a value into an
// interface.
func (c *allocChecker) checkBox(expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	src := c.typeOf(expr)
	if boxes(src, target) {
		c.report(expr.Pos(), "%s is boxed into %s here (interface conversion allocates for non-pointer values)", src, target)
	}
}

func (c *allocChecker) report(pos token.Pos, format string, args ...any) {
	if c.pass.Waived(pos, DirectiveAllocOK) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *allocChecker) typeOf(e ast.Expr) types.Type {
	if t := c.pass.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (c *allocChecker) isBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == name && isBuiltin(c.pass, id)
}

// boxes reports whether storing a src value into a dst interface
// allocates: true for concrete non-pointer-shaped values. Pointer-shaped
// values (pointers, channels, maps, funcs, unsafe pointers) fit in the
// interface word directly.
func boxes(src, dst types.Type) bool {
	if src == nil || dst == nil || !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

func stringBytesConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isString(src) && isByteOrRuneSlice(dst))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// exprEqual structurally compares the simple path expressions that
// appear on either side of a self-append.
func exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && ae.Name == be.Name
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && exprEqual(ae.X, be.X)
	case *ast.IndexExpr:
		be, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(ae.X, be.X) && exprEqual(ae.Index, be.Index)
	case *ast.StarExpr:
		be, ok := b.(*ast.StarExpr)
		return ok && exprEqual(ae.X, be.X)
	case *ast.BasicLit:
		be, ok := b.(*ast.BasicLit)
		return ok && ae.Kind == be.Kind && ae.Value == be.Value
	}
	return false
}

func typeLabel(pass *Pass, lit *ast.CompositeLit) string {
	if t := pass.TypesInfo.TypeOf(lit); t != nil {
		return t.String() + "{…}"
	}
	return "composite literal"
}
