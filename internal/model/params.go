// Package model centralises every timing and sizing parameter of the
// simulated PCIe NTB platform.
//
// The paper's testbed is three Core-i7 hosts joined in a switchless ring by
// PLX PEX 8733/8749 NTB adapters over PCIe Gen3 x8 cables. We reproduce it
// with a discrete-event model whose constants all live in this package, so
// calibration against the paper's figures is a single-file affair and every
// experiment states exactly which platform profile produced it.
package model

import (
	"fmt"

	"repro/internal/sim"
)

// Params describes one hardware/software platform profile. All bandwidths
// are bytes per second of virtual time; all latencies are virtual-time
// durations. The zero value is not meaningful; start from Default.
type Params struct {
	// ---- PCIe link ----

	// Gen is the PCIe generation (1, 2 or 3). It determines the per-lane
	// raw signalling rate and the line encoding overhead.
	Gen int
	// Lanes is the link width (the paper's cables carry eight lanes).
	Lanes int
	// MaxPayload is the maximum TLP payload in bytes. Together with the
	// per-TLP header overhead it sets the protocol efficiency of bulk
	// transfers.
	MaxPayload int
	// TLPOverhead is the per-TLP framing cost in bytes (sequence number,
	// header, LCRC, framing symbols).
	TLPOverhead int

	// LocalMMIO is the latency of a register access on the host's own
	// adapter (no link crossing).
	LocalMMIO sim.Duration
	// MMIOWrite is the latency of a posted register write crossing the
	// link (scratchpad writes, doorbell rings). Posted writes do not wait
	// for a completion.
	MMIOWrite sim.Duration
	// MMIORead is the round-trip latency of a register read crossing the
	// link (scratchpad reads are non-posted and must wait for the
	// completion TLP).
	MMIORead sim.Duration

	// ---- DMA engine (per NTB adapter) ----

	// DMAEngineBW is the sustained data rate of one adapter's DMA engine.
	// The PEX87xx engines saturate well below the Gen3 x8 wire rate; the
	// paper measures 20-30 Gb/s, so the engine — not the wire — is the
	// bottleneck of a single transfer.
	DMAEngineBW float64
	// DMASetup is the per-descriptor cost of programming the engine
	// (building the descriptor, ringing the engine, fetch latency).
	DMASetup sim.Duration
	// ChipsetSpread scales DMAEngineBW per ring link (indexed by the
	// sending host, cycling). The paper's testbed mixes PEX 8733 and
	// 8749 adapters and measures "20 Gbps to 30 Gbps ... according to
	// the PEX chipset and connection environment"; this models that
	// per-pair variation. Empty means all links run at DMAEngineBW.
	ChipsetSpread []float64

	// ---- CPU data movement ----

	// MemcpyBW is host-local DRAM-to-DRAM copy bandwidth.
	MemcpyBW float64
	// WindowWriteBW is CPU store bandwidth into a mapped NTB window
	// (write-combining mapped I/O; far below DRAM speed).
	WindowWriteBW float64
	// WindowReadBW is CPU load bandwidth from a mapped NTB window
	// (uncached reads over PCIe are dramatically slow; this asymmetry is
	// why the paper's library never reads bulk data through the window).
	WindowReadBW float64

	// ---- Host fabric ----

	// RootComplexBW is the aggregate PCIe bandwidth of one host's root
	// complex across both of its NTB adapters. When a host simultaneously
	// sources and sinks ring traffic the root complex is the shared
	// stage, producing the slight ring-vs-independent throughput drop of
	// Fig 8.
	RootComplexBW float64

	// ---- Interrupts and scheduling ----

	// InterruptLatency is doorbell MMIO arrival to interrupt-handler
	// entry on the peer host.
	InterruptLatency sim.Duration
	// ServiceWake is handler entry to the NTB service thread actually
	// running (the paper's Fig 5 thread sleeps between interrupts; this
	// is the kernel wake-up plus scheduling cost).
	ServiceWake sim.Duration
	// AppWake is handler entry to a blocked application thread running
	// (barrier waits block the application itself, which costs more than
	// waking the always-hot service thread).
	AppWake sim.Duration
	// ISRCost is the time spent inside the interrupt handler itself
	// (reading the doorbell status register, masking, acking).
	ISRCost sim.Duration

	// ---- Software constants ----

	// PutSoftware and GetSoftware are the per-call library overheads
	// (argument checks, offset translation, info-record marshalling).
	PutSoftware sim.Duration
	GetSoftware sim.Duration

	// ---- Protocol geometry ----

	// WindowSize is the per-direction NTB memory window in bytes; a
	// transfer larger than the window moves in window-sized stages with
	// a drain handshake between stages.
	WindowSize int
	// PutChunk is the stop-and-wait unit of the Put protocol: each chunk
	// is DMA'd (or CPU-copied) into the neighbour's window, announced via
	// scratchpads and doorbell, and the window is reused only after the
	// neighbour's ACK. Put latency is therefore per-chunk-cycle bound but
	// hop-insensitive (only the first hop is synchronous).
	PutChunk int
	// BypassChunk is the store-and-forward unit used when data must hop
	// through an intermediate host's bypass buffer.
	BypassChunk int
	// GetChunk is the stop-and-wait unit of the Get protocol: the
	// requester asks for one chunk, the owner pushes it, the requester
	// acknowledges, repeat. Gets are therefore round-trip-bound, which
	// is why the paper's Get is an order of magnitude slower than Put
	// and strongly hop-sensitive.
	GetChunk int
	// SymHeapChunk is the unit of on-demand symmetric-heap growth (the
	// paper concatenates fixed-size anonymous mmap regions into one
	// virtually contiguous heap).
	SymHeapChunk int
	// SymHeapMax is the largest total symmetric heap a PE may grow to.
	SymHeapMax int

	// SpadCount is the number of 32-bit scratchpad registers per NTB
	// link (the PEX parts expose eight).
	SpadCount int
	// DoorbellBits is the number of doorbell interrupt bits (sixteen on
	// the PEX parts).
	DoorbellBits int

	// ---- Alternative fabrics ----

	// SwitchCoreBW is the aggregate bandwidth of the PCIe switch fabric's
	// core on the pcie-switch backend: every host pair's P2P traffic
	// shares this one stage, which is what distinguishes a switched
	// fabric's contention profile from the ring's per-cable wires.
	SwitchCoreBW float64
	// CXLWindowBW is the per-transfer data bandwidth of the CXL.mem
	// mapped window on the cxl backend (coherent load/store traffic
	// through the shared fabric).
	CXLWindowBW float64
	// CXLLatency is the fixed per-operation access latency of the CXL
	// window: the coherence round trip a store pays before its data
	// streams, far below a doorbell interrupt plus thread wake-up.
	CXLLatency sim.Duration
}

// Default returns the calibrated profile of the paper's testbed: PCIe Gen3
// x8 links, PEX8749-class DMA engines, Linux 4.16-era interrupt and thread
// wake costs. EXPERIMENTS.md records how this profile reproduces each
// figure.
func Default() *Params {
	return &Params{
		Gen:         3,
		Lanes:       8,
		MaxPayload:  256,
		TLPOverhead: 26,

		LocalMMIO: 120 * sim.Nanosecond,
		MMIOWrite: 300 * sim.Nanosecond,
		MMIORead:  1200 * sim.Nanosecond,

		DMAEngineBW: 2.90e9,
		DMASetup:    sim.Microseconds(3.0),
		// Link 0: two 8749s; link 1: 8749+8733; link 2: two 8733s.
		ChipsetSpread: []float64{1.00, 1.08, 0.88},

		MemcpyBW:      8.0e9,
		WindowWriteBW: 1.25e9,
		WindowReadBW:  0.085e9,

		RootComplexBW: 5.5e9,

		InterruptLatency: sim.Microseconds(2.0),
		ServiceWake:      sim.Microseconds(70),
		AppWake:          sim.Microseconds(180),
		ISRCost:          sim.Microseconds(1.5),

		PutSoftware: sim.Microseconds(1.2),
		GetSoftware: sim.Microseconds(1.5),

		WindowSize:   1 << 20, // 1 MiB
		PutChunk:     32 << 10,
		BypassChunk:  64 << 10,
		GetChunk:     16 << 10,
		SymHeapChunk: 4 << 20,
		SymHeapMax:   256 << 20,

		SpadCount:    8,
		DoorbellBits: 16,

		SwitchCoreBW: 10.0e9,
		CXLWindowBW:  11.0e9,
		CXLLatency:   600 * sim.Nanosecond,
	}
}

// perLaneGbps returns the raw per-lane signalling rate in gigatransfers
// per second for the given PCIe generation.
func perLaneGTps(gen int) float64 {
	switch gen {
	case 1:
		return 2.5
	case 2:
		return 5.0
	default:
		return 8.0
	}
}

// encodingEfficiency returns the fraction of raw bits that carry data for
// the generation's line code: 8b/10b for Gen1/2, 128b/130b for Gen3.
func encodingEfficiency(gen int) float64 {
	if gen <= 2 {
		return 8.0 / 10.0
	}
	return 128.0 / 130.0
}

// WireBandwidth returns the post-encoding link bandwidth in bytes/second,
// before TLP protocol overhead.
func (p *Params) WireBandwidth() float64 {
	return perLaneGTps(p.Gen) * 1e9 * float64(p.Lanes) * encodingEfficiency(p.Gen) / 8.0
}

// ProtocolEfficiency returns the fraction of wire bandwidth available to
// payload once every MaxPayload bytes carry TLPOverhead bytes of framing.
func (p *Params) ProtocolEfficiency() float64 {
	return float64(p.MaxPayload) / float64(p.MaxPayload+p.TLPOverhead)
}

// EffectiveWireBW returns the payload bandwidth of the wire in
// bytes/second: wire rate times protocol efficiency.
func (p *Params) EffectiveWireBW() float64 {
	return p.WireBandwidth() * p.ProtocolEfficiency()
}

// Validate reports whether the profile is internally consistent; it is
// used by tests and by cmd flag plumbing to reject nonsense profiles.
func (p *Params) Validate() error {
	switch {
	case p.Gen < 1 || p.Gen > 3:
		return errf("Gen must be 1..3, got %d", p.Gen)
	case p.Lanes != 1 && p.Lanes != 2 && p.Lanes != 4 && p.Lanes != 8 && p.Lanes != 16:
		return errf("Lanes must be a power of two 1..16, got %d", p.Lanes)
	case p.MaxPayload < 64 || p.MaxPayload > 4096:
		return errf("MaxPayload out of range: %d", p.MaxPayload)
	case p.DMAEngineBW <= 0:
		return errf("DMAEngineBW must be positive")
	case !validSpread(p.ChipsetSpread):
		return errf("ChipsetSpread factors must be positive")
	case p.MemcpyBW <= 0 || p.WindowWriteBW <= 0 || p.WindowReadBW <= 0:
		return errf("CPU copy bandwidths must be positive")
	case p.RootComplexBW <= 0:
		return errf("RootComplexBW must be positive")
	case p.WindowSize < 4096:
		return errf("WindowSize too small: %d", p.WindowSize)
	case p.PutChunk < 512 || p.PutChunk > p.WindowSize:
		return errf("PutChunk out of range: %d", p.PutChunk)
	case p.BypassChunk < 512 || p.BypassChunk > p.WindowSize:
		return errf("BypassChunk out of range: %d", p.BypassChunk)
	case p.GetChunk < 512 || p.GetChunk > p.WindowSize:
		return errf("GetChunk out of range: %d", p.GetChunk)
	case p.SymHeapChunk < 4096:
		return errf("SymHeapChunk too small: %d", p.SymHeapChunk)
	case p.SymHeapMax < p.SymHeapChunk:
		return errf("SymHeapMax smaller than one chunk")
	case p.SpadCount < 6:
		return errf("protocol needs at least 6 scratchpads, got %d", p.SpadCount)
	case p.DoorbellBits < 4:
		return errf("protocol needs at least 4 doorbell bits, got %d", p.DoorbellBits)
	case p.SwitchCoreBW <= 0:
		return errf("SwitchCoreBW must be positive")
	case p.CXLWindowBW <= 0:
		return errf("CXLWindowBW must be positive")
	case p.CXLLatency <= 0:
		return errf("CXLLatency must be positive")
	}
	return nil
}

// LinkEngineBW returns the DMA engine rate of the link whose sending
// host is linkIdx, applying the chipset spread.
func (p *Params) LinkEngineBW(linkIdx int) float64 {
	if len(p.ChipsetSpread) == 0 {
		return p.DMAEngineBW
	}
	return p.DMAEngineBW * p.ChipsetSpread[linkIdx%len(p.ChipsetSpread)]
}

func validSpread(spread []float64) bool {
	for _, s := range spread {
		if s <= 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy, for deriving ablation profiles.
func (p *Params) Clone() *Params {
	q := *p
	q.ChipsetSpread = append([]float64(nil), p.ChipsetSpread...)
	return &q
}

func errf(format string, args ...any) error {
	return fmt.Errorf("model: "+format, args...)
}
