package model

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func TestParamsJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	p := Default()
	p.Gen = 2
	p.ServiceWake = sim.Microseconds(33)
	p.ChipsetSpread = []float64{1, 2, 3}
	if err := SaveParams(p, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 2 || got.ServiceWake != sim.Microseconds(33) {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.ChipsetSpread) != 3 || got.ChipsetSpread[1] != 2 {
		t.Fatalf("spread lost: %v", got.ChipsetSpread)
	}
}

func TestLoadParamsOverlaysDefault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(path, []byte(`{"Gen": 1, "DMAEngineBW": 5e8}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Gen != 1 || p.DMAEngineBW != 5e8 {
		t.Fatalf("overrides lost: %+v", p)
	}
	// Untouched fields come from the default profile.
	if p.WindowSize != Default().WindowSize || p.ServiceWake != Default().ServiceWake {
		t.Fatal("defaults not preserved under overlay")
	}
}

func TestLoadParamsRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"Gen": 9}`), 0o644)
	if _, err := LoadParams(bad); err == nil {
		t.Fatal("invalid profile accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	os.WriteFile(garbage, []byte(`{not json`), 0o644)
	if _, err := LoadParams(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadParams(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
