package model

import (
	"fmt"
	"sort"
	"strings"
)

// Named platform profiles. The default reproduces the paper's testbed;
// the others rescale the link for what-if experiments (the paper's
// background section motivates PCIe generations by their raw rates, and
// the E1 extension figure quantifies what each generation would have
// meant for the prototype).
var profiles = map[string]func() *Params{
	"gen3x8": Default,
	"gen1x8": func() *Params {
		p := Default()
		p.Gen = 1
		// First-generation silicon: slower engines and root complexes
		// in rough proportion to the wire.
		p.DMAEngineBW = 0.9e9
		p.RootComplexBW = 1.7e9
		return p
	},
	"gen2x8": func() *Params {
		p := Default()
		p.Gen = 2
		p.DMAEngineBW = 1.8e9
		p.RootComplexBW = 3.4e9
		return p
	},
	"gen3x16": func() *Params {
		p := Default()
		p.Lanes = 16
		// Wider links do not speed the PEX DMA engines up, but the
		// root complex has twice the lanes to spread across.
		p.RootComplexBW = 11.0e9
		return p
	},
	"gen4x8": func() *Params {
		// A what-if beyond the paper: Gen4 signalling with engines
		// scaled like the PEX parts' successors.
		p := Default()
		p.Gen = 3 // encoding identical to Gen3 (128b/130b)
		p.Lanes = 16
		p.DMAEngineBW = 5.8e9
		p.RootComplexBW = 11.0e9
		return p
	},
}

// Profile returns the named platform profile. Names returns the valid
// choices.
func Profile(name string) (*Params, error) {
	f, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown profile %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// Names lists the available profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
