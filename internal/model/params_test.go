package model

import (
	"math"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
}

func TestWireBandwidthByGeneration(t *testing.T) {
	cases := []struct {
		gen, lanes int
		wantGBs    float64 // approximate post-encoding bytes/sec
	}{
		{1, 8, 2.0e9},            // 2.5 GT/s * 8 * 0.8 / 8
		{2, 8, 4.0e9},            // 5 GT/s * 8 * 0.8 / 8
		{3, 8, 7.876923076923e9}, // 8 GT/s * 8 * (128/130) / 8
		{3, 16, 15.753846153846e9},
		{3, 1, 0.984615384615e9},
	}
	for _, c := range cases {
		p := Default()
		p.Gen, p.Lanes = c.gen, c.lanes
		got := p.WireBandwidth()
		if math.Abs(got-c.wantGBs)/c.wantGBs > 1e-9 {
			t.Errorf("gen%d x%d wire BW = %.4g, want %.4g", c.gen, c.lanes, got, c.wantGBs)
		}
	}
}

func TestProtocolEfficiency(t *testing.T) {
	p := Default()
	p.MaxPayload, p.TLPOverhead = 256, 26
	want := 256.0 / 282.0
	if got := p.ProtocolEfficiency(); math.Abs(got-want) > 1e-12 {
		t.Errorf("efficiency = %v, want %v", got, want)
	}
	if p.EffectiveWireBW() >= p.WireBandwidth() {
		t.Error("effective BW should be below wire BW")
	}
}

func TestEngineSlowerThanWire(t *testing.T) {
	// The calibrated profile must keep the DMA engine as the single-flow
	// bottleneck (paper: 20-30 Gb/s despite a ~63 Gb/s wire).
	p := Default()
	if p.DMAEngineBW >= p.EffectiveWireBW() {
		t.Fatalf("DMA engine (%g) not slower than wire (%g)", p.DMAEngineBW, p.EffectiveWireBW())
	}
	// And the root complex must sit between one and two engine flows so
	// that simultaneous ring traffic is only slightly throttled (Fig 8).
	if p.RootComplexBW <= p.DMAEngineBW {
		t.Fatal("root complex must carry at least one full engine flow")
	}
	if p.RootComplexBW >= 2*p.DMAEngineBW {
		t.Fatal("root complex must be under 2x engine BW or the ring shows no contention at all")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	break1 := func(f func(*Params)) error {
		p := Default()
		f(p)
		return p.Validate()
	}
	cases := map[string]func(*Params){
		"gen0":          func(p *Params) { p.Gen = 0 },
		"gen4":          func(p *Params) { p.Gen = 4 },
		"lanes3":        func(p *Params) { p.Lanes = 3 },
		"payload small": func(p *Params) { p.MaxPayload = 32 },
		"no engine":     func(p *Params) { p.DMAEngineBW = 0 },
		"no memcpy":     func(p *Params) { p.MemcpyBW = 0 },
		"no rc":         func(p *Params) { p.RootComplexBW = -1 },
		"tiny window":   func(p *Params) { p.WindowSize = 128 },
		"chunk>window":  func(p *Params) { p.BypassChunk = p.WindowSize * 2 },
		"getchunk tiny": func(p *Params) { p.GetChunk = 16 },
		"heap chunk":    func(p *Params) { p.SymHeapChunk = 8 },
		"heap max":      func(p *Params) { p.SymHeapMax = p.SymHeapChunk - 1 },
		"few spads":     func(p *Params) { p.SpadCount = 2 },
		"few doorbells": func(p *Params) { p.DoorbellBits = 1 },
	}
	for name, f := range cases {
		if err := break1(f); err == nil {
			t.Errorf("%s: Validate accepted a broken profile", name)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := Default()
	b := a.Clone()
	b.Lanes = 16
	b.DMAEngineBW = 1
	if a.Lanes == 16 || a.DMAEngineBW == 1 {
		t.Fatal("Clone shares state with the original")
	}
}
