package model

import (
	"strings"
	"testing"
)

func TestProfilesAllValidate(t *testing.T) {
	for _, name := range Names() {
		p, err := Profile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid profile: %v", name, err)
		}
	}
}

func TestProfileUnknown(t *testing.T) {
	_, err := Profile("gen9x99")
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	if !strings.Contains(err.Error(), "gen3x8") {
		t.Errorf("error should list valid names: %v", err)
	}
}

func TestProfileOrderingMakesSense(t *testing.T) {
	wire := func(name string) float64 {
		p, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		return p.EffectiveWireBW()
	}
	if !(wire("gen1x8") < wire("gen2x8") && wire("gen2x8") < wire("gen3x8")) {
		t.Error("wire bandwidth must grow with generation")
	}
	if wire("gen3x16") <= wire("gen3x8") {
		t.Error("wider link must be faster")
	}
	d, _ := Profile("gen3x8")
	def := Default()
	if d.DMAEngineBW != def.DMAEngineBW || d.Gen != def.Gen {
		t.Error("gen3x8 must equal the default profile")
	}
}

func TestProfileInstancesIndependent(t *testing.T) {
	a, _ := Profile("gen3x8")
	b, _ := Profile("gen3x8")
	a.Lanes = 1
	if b.Lanes == 1 {
		t.Fatal("Profile returns shared instances")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("only %d profiles", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
