package model

import (
	"encoding/json"
	"fmt"
	"os"
)

// JSON (de)serialisation of platform profiles, so experiment tooling can
// ship custom calibrations as files (`cmd/reproduce -params file.json`).
// sim.Duration fields marshal as integer nanoseconds.

// MarshalJSON renders the profile as a flat JSON object.
func (p *Params) MarshalJSON() ([]byte, error) {
	type alias Params // strip methods to avoid recursion
	return json.Marshal((*alias)(p))
}

// UnmarshalJSON parses a profile; missing fields keep their zero values,
// so callers should start from Default and overlay.
func (p *Params) UnmarshalJSON(data []byte) error {
	type alias Params
	return json.Unmarshal(data, (*alias)(p))
}

// LoadParams reads a profile from a JSON file, overlaying it on the
// default profile so partial files (just the fields being changed) work,
// and validates the result.
func LoadParams(path string) (*Params, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	p := Default()
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("model: parsing %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("model: %s: %w", path, err)
	}
	return p, nil
}

// SaveParams writes the profile to a JSON file, for editing and reuse.
func SaveParams(p *Params, path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
