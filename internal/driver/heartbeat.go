package driver

import (
	"repro/internal/sim"
)

// VecHeartbeat is the doorbell vector carrying liveness beats. The paper
// notes that NTB's historical role was "mainly to check connected host
// processors such as with heartbeating"; this implements that service on
// the same doorbell machinery the OpenSHMEM runtime uses.
const VecHeartbeat = 5

// Heartbeat watches one NTB link from one side: it rings the peer's
// heartbeat doorbell every interval and, independently, checks that the
// peer's beats keep arriving. After missLimit silent intervals it
// declares the link dead and fires the callback once.
type Heartbeat struct {
	ep        *Endpoint
	interval  sim.Duration
	missLimit int

	beats   uint64 // beats received from the peer
	lastObs uint64
	misses  int
	alive   bool
	stopped bool
	onDown  func()
}

// StartHeartbeat installs the beat handler on ep and spawns the sender
// and monitor daemons. onDown runs (once, in process context) when the
// peer goes silent for missLimit consecutive intervals.
func StartHeartbeat(s *sim.Simulator, ep *Endpoint, interval sim.Duration, missLimit int, onDown func()) *Heartbeat {
	if interval <= 0 || missLimit <= 0 {
		panic("driver: heartbeat needs positive interval and miss limit")
	}
	hb := &Heartbeat{
		ep:        ep,
		interval:  interval,
		missLimit: missLimit,
		alive:     true,
		onDown:    onDown,
	}
	ep.Handle(VecHeartbeat, func() { hb.beats++ })
	s.GoDaemon("hb-send:"+ep.Port.Name(), hb.send)
	s.GoDaemon("hb-monitor:"+ep.Port.Name(), hb.monitor)
	return hb
}

// Alive reports whether the peer was responsive at the last check.
func (hb *Heartbeat) Alive() bool { return hb.alive }

// Beats reports how many beats have arrived from the peer.
func (hb *Heartbeat) Beats() uint64 { return hb.beats }

// Stop retires both daemons after their current sleep; the simulation's
// event queue then drains normally. A heartbeat left running keeps the
// virtual clock alive forever, so bounded runs must either Stop it or
// use RunUntil.
func (hb *Heartbeat) Stop() { hb.stopped = true }

func (hb *Heartbeat) send(p *sim.Proc) {
	for !hb.stopped {
		hb.ep.Ring(p, VecHeartbeat)
		p.Sleep(hb.interval)
	}
}

func (hb *Heartbeat) monitor(p *sim.Proc) {
	// Offset the first check by half an interval so a beat sent at the
	// same instant as the check is never misclassified.
	p.Sleep(hb.interval + hb.interval/2)
	for !hb.stopped {
		if hb.beats == hb.lastObs {
			hb.misses++
			if hb.misses >= hb.missLimit && hb.alive {
				hb.alive = false
				if hb.onDown != nil {
					hb.onDown()
				}
			}
		} else {
			hb.misses = 0
			hb.alive = true
		}
		hb.lastObs = hb.beats
		p.Sleep(hb.interval)
	}
}
