package driver

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ntb"
	"repro/internal/sim"
)

// pipeRig extends the two-host rig with a pipelined sender A->B and a
// receiver service on B that appends everything it drains.
type pipeRig struct {
	*rig
	tx   *PipeTx
	rx   *PipeRx
	got  []Info
	data [][]byte
}

func newPipeRig(t *testing.T, slots int) *pipeRig {
	r := newRig(t)
	pr := &pipeRig{rig: r}
	pr.tx = NewPipeTx(r.epA, r.par, slots)
	pr.rx = NewPipeRx(r.b, r.par, slots)
	q := sim.NewQueue[struct{}]("pipe-svc")
	r.epB.Handle(VecPut, func() { q.Push(struct{}{}) })
	r.epB.Handle(VecGet, func() { q.Push(struct{}{}) })
	r.sim.GoDaemon("pipe-svc", func(p *sim.Proc) {
		for {
			q.Pop(p)
			p.Sleep(r.par.ServiceWake)
			for {
				info, payload, ok := pr.rx.Next(p)
				if !ok {
					break
				}
				pr.got = append(pr.got, info)
				pr.data = append(pr.data, append([]byte(nil), payload...))
				pr.rx.Release(p)
			}
		}
	})
	return pr
}

func TestPipeHeaderCodecRoundTrip(t *testing.T) {
	in := Info{
		Kind: KindGetData, Src: 3, Dst: 1, Region: ntb.RegionBypass,
		Dir: DirLeft, Size: 0xABCD, SymOff: 0x1122_3344_5566_7788,
		Tag: 42, Aux: 0x99AA_BBCC_DDEE_0FF0,
	}
	buf := make([]byte, SlotHeaderBytes)
	encodeSlotHeader(buf, 7, &in)
	seq, out, ok := decodeSlotHeader(buf)
	if !ok || seq != 7 || out != in {
		t.Fatalf("round trip: ok=%v seq=%d\n got %+v\nwant %+v", ok, seq, out, in)
	}
	buf[0] = 0 // clear valid
	if _, _, ok := decodeSlotHeader(buf); ok {
		t.Fatal("cleared slot still decodes as valid")
	}
}

func TestPipeDeliversInOrder(t *testing.T) {
	pr := newPipeRig(t, 4)
	pr.sim.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			payload := []byte{byte(i), byte(i * 2)}
			pr.tx.SendChunk(p, Info{Kind: KindPut, Dst: 1, Size: 2, Tag: uint32(i)},
				Payload{Buf: payload, N: 2}, ModeDMA)
		}
	})
	if err := pr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pr.got) != 20 {
		t.Fatalf("delivered %d messages", len(pr.got))
	}
	for i, info := range pr.got {
		if info.Tag != uint32(i) {
			t.Fatalf("order broken at %d: tag %d", i, info.Tag)
		}
		if !bytes.Equal(pr.data[i], []byte{byte(i), byte(i * 2)}) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
	if pr.tx.Sends() != 20 {
		t.Fatalf("sends = %d", pr.tx.Sends())
	}
}

func TestPipeSenderOverlapsWithoutAcks(t *testing.T) {
	// With 4 credits, the sender pushes 4 chunks paying only DMA time;
	// a stop-and-wait sender would pay the receiver's wake + ack per
	// chunk.
	const n = 32 << 10
	pr := newPipeRig(t, 4)
	var fourSends sim.Duration
	pr.sim.Go("sender", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 4; i++ {
			pr.tx.SendChunk(p, Info{Kind: KindPut, Dst: 1, Size: n},
				Payload{Buf: make([]byte, n), N: n}, ModeDMA)
		}
		fourSends = p.Now().Sub(start)
	})
	if err := pr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 x (setup + ~11.3us transfer) ~= 60us; stop-and-wait would be
	// ~4 x 95us. Assert the overlap regime.
	if fourSends > sim.Microseconds(100) {
		t.Fatalf("4 credited sends took %v; pipelining is not overlapping", fourSends)
	}
}

func TestPipeBackpressureAtDepth(t *testing.T) {
	// A burst larger than the credit pool must block until the receiver
	// drains — never overwrite undrained slots.
	pr := newPipeRig(t, 2)
	const msgs = 12
	pr.sim.Go("sender", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			pr.tx.SendChunk(p, Info{Kind: KindPut, Dst: 1, Size: 4, Tag: uint32(100 + i)},
				Payload{Buf: []byte{byte(i), 0, 0, 0}, N: 4}, ModeDMA)
		}
	})
	if err := pr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pr.got) != msgs {
		t.Fatalf("delivered %d of %d under backpressure", len(pr.got), msgs)
	}
	for i, info := range pr.got {
		if info.Tag != uint32(100+i) {
			t.Fatalf("backpressure reordered delivery: %d at %d", info.Tag, i)
		}
	}
}

func TestPipeRejectsBadGeometry(t *testing.T) {
	r := newRig(t)
	for name, f := range map[string]func(){
		"zero slots": func() { NewPipeTx(r.epA, r.par, 0) },
		"tiny slots": func() { NewPipeTx(r.epA, r.par, 4096) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestPipeOversizeChunkPanics(t *testing.T) {
	pr := newPipeRig(t, 8)
	pr.sim.Go("sender", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversize chunk accepted")
			}
		}()
		n := pr.tx.MaxPayload() + 1
		pr.tx.SendChunk(p, Info{Kind: KindPut, Size: uint32(n)},
			Payload{Buf: make([]byte, n), N: n}, ModeDMA)
	})
	if err := pr.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPipeCPUMode(t *testing.T) {
	pr := newPipeRig(t, 4)
	pr.sim.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			payload := bytes.Repeat([]byte{byte('x' + i)}, 1000)
			pr.tx.SendChunk(p, Info{Kind: KindPut, Dst: 1, Size: 1000},
				Payload{Buf: payload, N: 1000}, ModeCPU)
		}
	})
	if err := pr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pr.data) != 3 {
		t.Fatalf("delivered %d", len(pr.data))
	}
	for i, d := range pr.data {
		want := bytes.Repeat([]byte{byte('x' + i)}, 1000)
		if !bytes.Equal(d, want) {
			t.Fatalf("CPU-mode payload %d corrupted", i)
		}
	}
}

func TestPipeGeometryAccessors(t *testing.T) {
	r := newRig(t)
	tx := NewPipeTx(r.epA, r.par, 8)
	if tx.Slots() != 8 {
		t.Errorf("slots = %d", tx.Slots())
	}
	want := r.par.WindowSize/8 - SlotHeaderBytes
	if tx.MaxPayload() != want {
		t.Errorf("max payload = %d, want %d", tx.MaxPayload(), want)
	}
	_ = fmt.Sprint(tx.Sends())
}
