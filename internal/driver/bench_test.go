package driver

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkPipelinedSend measures the sustained per-chunk cost of the
// pipelined sender: one sender pushing 16 KiB chunks through a depth-8
// PipeTx while a receiver daemon drains slots and returns credits. This
// is the per-chunk host-side path every large put pays under ablation
// A6, so its allocs/op is the number the transfer-path work targets.
func BenchmarkPipelinedSend(b *testing.B) {
	benchSend(b, true)
}

// BenchmarkStopAndWaitSend is the same workload over the paper's
// stop-and-wait TxChannel (the default protocol of every figure sweep).
func BenchmarkStopAndWaitSend(b *testing.B) {
	benchSend(b, false)
}

func benchSend(b *testing.B, pipelined bool) {
	b.ReportAllocs()
	r := newRig(b)
	const chunk = 16 << 10
	payload := make([]byte, chunk)
	var tx Sender
	q := sim.NewQueue[struct{}]("bench-svc")
	r.epB.Handle(VecPut, func() { q.Push(struct{}{}) })
	if pipelined {
		ptx := NewPipeTx(r.epA, r.par, 8)
		rx := NewPipeRx(r.b, r.par, 8)
		tx = ptx
		r.sim.GoDaemon("bench-svc", func(p *sim.Proc) {
			for {
				q.Pop(p)
				p.Sleep(r.par.ServiceWake)
				for {
					_, _, ok := rx.Next(p)
					if !ok {
						break
					}
					rx.Release(p)
				}
			}
		})
	} else {
		tx = r.txAB
		r.sim.GoDaemon("bench-svc", func(p *sim.Proc) {
			for {
				q.Pop(p)
				p.Sleep(r.par.ServiceWake)
				ReadInfo(p, r.b)
				Ack(p, r.b)
			}
		})
	}
	r.sim.Go("sender", func(p *sim.Proc) {
		info := Info{Kind: KindPut, Dst: 1, Size: chunk}
		for i := 0; i < b.N; i++ {
			tx.SendChunk(p, info, Payload{Buf: payload, N: chunk}, ModeDMA)
		}
	})
	b.ResetTimer()
	if err := r.sim.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	r.sim.Shutdown()
}
