package driver

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/ntb"
	"repro/internal/sim"
)

// Pipelined transmit protocol — the paper's stated future work
// ("reduction of the latency overhead") implemented.
//
// The paper's protocol is stop-and-wait by construction: each link has a
// single scratchpad bank, so only one information record can be in
// flight, and the sender must hold the window until the ACK releases
// both. This file removes that bottleneck by moving the record into the
// window itself: the data window is divided into S slots, each carrying
// a 64-byte header (the Info record plus a sequence number and a valid
// flag) ahead of its payload. The sender takes a credit, fills the next
// slot, and rings the data doorbell — without waiting; the receiver's
// service thread drains valid slots in sequence order and returns one
// credit per ACK doorbell. Scratchpads are left to the boot exchange.
//
// With S=1 the protocol degenerates to the paper's behaviour; ablation
// A6 sweeps S.

// SlotHeaderBytes is the per-slot header size (Info encoding + seq +
// valid flag, rounded to a cache line).
const SlotHeaderBytes = 64

// Sender is the common face of the stop-and-wait TxChannel and the
// pipelined PipeTx: push one protocol chunk toward the link peer.
type Sender interface {
	// SendChunk delivers info plus payload into the peer's inbound
	// window and returns when the local buffer is reusable. Stop-and-
	// wait implementations also wait for the receiver's ACK; pipelined
	// ones only for a transmit credit and the wire.
	SendChunk(p *sim.Proc, info Info, payload Payload, mode Mode)
}

// TxChannel implements Sender (compile-time check).
var _ Sender = (*TxChannel)(nil)

// header layout within a slot (little-endian 32-bit words):
//
//	word0: valid flag (1) — written last
//	word1: sequence number
//	word2: packed kind/src/dst/region/dir (the Info header word)
//	word3: payload size
//	word4,5: SymOff
//	word6: Tag
//	word7,8: Aux
const (
	hdrValid = iota * 4
	hdrSeq
	hdrInfo
	hdrSize
	hdrOffLo
	hdrOffHi
	hdrTag
	hdrAuxLo
	hdrAuxHi
)

// encodeSlotHeader serialises info into the slot header (excluding the
// valid word, which the receiver's visibility relies on being last).
func encodeSlotHeader(dst []byte, seq uint32, info *Info) {
	le32 := func(off int, v uint32) {
		dst[off] = byte(v)
		dst[off+1] = byte(v >> 8)
		dst[off+2] = byte(v >> 16)
		dst[off+3] = byte(v >> 24)
	}
	le32(hdrSeq, seq)
	le32(hdrInfo, info.headerWord())
	le32(hdrSize, info.Size)
	le32(hdrOffLo, uint32(info.SymOff))
	le32(hdrOffHi, uint32(info.SymOff>>32))
	le32(hdrTag, info.Tag)
	le32(hdrAuxLo, uint32(info.Aux))
	le32(hdrAuxHi, uint32(info.Aux>>32))
	le32(hdrValid, 1)
}

// decodeSlotHeader parses a slot header; ok reports the valid flag.
func decodeSlotHeader(src []byte) (seq uint32, info Info, ok bool) {
	rd := func(off int) uint32 {
		return uint32(src[off]) | uint32(src[off+1])<<8 |
			uint32(src[off+2])<<16 | uint32(src[off+3])<<24
	}
	if rd(hdrValid) != 1 {
		return 0, Info{}, false
	}
	info = Info{
		Size:   rd(hdrSize),
		SymOff: uint64(rd(hdrOffLo)) | uint64(rd(hdrOffHi))<<32,
		Tag:    rd(hdrTag),
		Aux:    uint64(rd(hdrAuxLo)) | uint64(rd(hdrAuxHi))<<32,
	}
	info.unpackHeader(rd(hdrInfo))
	return rd(hdrSeq), info, true
}

// PipeTx is the sender half of one link direction under the pipelined
// protocol.
type PipeTx struct {
	ep        *Endpoint
	par       *model.Params // reset: keep; snap: keep — construction identity
	slots     int           // reset: keep; snap: keep — pipeline geometry
	slotBytes int           // reset: keep; snap: keep — pipeline geometry
	credits   *sim.Resource // Reset asserts all returned
	mu        *sim.Mutex    // reset: keep; snap: keep — serialises slot assignment; released per send
	nextSlot  int
	seq       uint32
	scratch   []byte // reset: keep; snap: keep — warm staging frame, overwritten per send
	sends     uint64
}

// NewPipeTx builds the pipelined sender over ep with the given slot
// count (≥1) and hooks the ACK vector to the credit pool.
func NewPipeTx(ep *Endpoint, par *model.Params, slots int) *PipeTx {
	if slots < 1 {
		panic("driver: pipeline needs at least one slot")
	}
	slotBytes := par.WindowSize / slots
	if slotBytes < SlotHeaderBytes+512 {
		panic(fmt.Sprintf("driver: %d slots leave %d-byte slots, too small", slots, slotBytes))
	}
	tx := &PipeTx{
		ep:        ep,
		par:       par,
		slots:     slots,
		slotBytes: slotBytes,
		credits:   sim.NewResource("pipe-credits:"+ep.Port.Name(), int64(slots)),
		mu:        sim.NewMutex("pipe-tx:" + ep.Port.Name()),
		scratch:   make([]byte, slotBytes),
	}
	ep.Handle(VecAck, func() { tx.credits.Release(1) })
	return tx
}

// Slots returns the pipeline depth.
func (tx *PipeTx) Slots() int { return tx.slots }

// MaxPayload returns the largest chunk one slot carries.
func (tx *PipeTx) MaxPayload() int { return tx.slotBytes - SlotHeaderBytes }

// Sends reports chunks pushed.
func (tx *PipeTx) Sends() uint64 { return tx.sends }

// Reset rewinds the sender for a recycled world: slot cursor and
// sequence return to their power-on values so the next run's slot
// assignment replays identically. All credits must have been returned —
// a clean run drains the pipeline before its final barrier.
func (tx *PipeTx) Reset() {
	if free := tx.credits.Free(); free != tx.credits.Capacity() {
		panic(fmt.Sprintf("driver: reset of pipe-tx %s with %d credit(s) outstanding",
			tx.ep.Port.Name(), tx.credits.Capacity()-free))
	}
	tx.nextSlot = 0
	tx.seq = 0
	tx.sends = 0
}

// SendChunk implements Sender: take a credit, fill the next slot
// (header and payload in one wire transfer), ring the kind's vector, and
// return — local completion only.
func (tx *PipeTx) SendChunk(p *sim.Proc, info Info, payload Payload, mode Mode) {
	if payload.N > tx.MaxPayload() {
		panic(fmt.Sprintf("driver: chunk %d exceeds pipeline slot payload %d", payload.N, tx.MaxPayload()))
	}
	if payload.N > 0 && int(info.Size) != payload.N {
		panic("driver: info.Size disagrees with payload")
	}
	tx.credits.Acquire(p, 1)
	tx.mu.Lock(p)
	slot := tx.nextSlot
	tx.nextSlot = (tx.nextSlot + 1) % tx.slots
	tx.seq++
	// Assemble header+payload in the scratch frame.
	frame := tx.scratch[:SlotHeaderBytes+payload.N]
	encodeSlotHeader(frame, tx.seq, &info)
	if payload.N > 0 {
		if payload.Heap != nil {
			payload.Heap.Read(payload.HeapOff, frame[SlotHeaderBytes:])
		} else {
			copy(frame[SlotHeaderBytes:], payload.Buf[:payload.N])
		}
	}
	off := slot * tx.slotBytes
	switch mode {
	case ModeDMA:
		tx.ep.Port.DMA().SubmitWait(p, ntb.Desc{
			Region: ntb.RegionData, Off: off, Src: frame, Bytes: len(frame),
		})
	case ModeCPU:
		tx.ep.Port.CPUWrite(p, ntb.RegionData, off, frame)
	default:
		panic("driver: unknown mode")
	}
	tx.ep.Ring(p, info.Kind.vector())
	tx.sends++
	tx.mu.Unlock()
}

// PipeRx is the receiver half: it drains valid slots in sequence order.
type PipeRx struct {
	port      *ntb.Port // reset: keep; snap: keep — construction identity
	slots     int       // reset: keep; snap: keep — pipeline geometry
	slotBytes int       // reset: keep; snap: keep — pipeline geometry
	expect    uint32
}

// NewPipeRx builds the receiver state for port (same geometry as the
// peer's PipeTx).
func NewPipeRx(port *ntb.Port, par *model.Params, slots int) *PipeRx {
	return &PipeRx{port: port, slots: slots, slotBytes: par.WindowSize / slots}
}

// Reset rewinds the receiver's sequence cursor. The slots themselves are
// device-window state; the port's dirty-extent reset re-zeroes them.
func (rx *PipeRx) Reset() { rx.expect = 0 }

// Next returns the next in-order message, if one is ready: its Info, the
// payload window slice (valid until Release), and true. The caller must
// Release the slot after copying the payload out.
func (rx *PipeRx) Next(p *sim.Proc) (Info, []byte, bool) {
	win := rx.port.Inbound(ntb.RegionData)
	for s := 0; s < rx.slots; s++ {
		base := s * rx.slotBytes
		seq, info, ok := decodeSlotHeader(win[base : base+SlotHeaderBytes])
		if !ok || seq != rx.expect+1 {
			continue
		}
		p.Sleep(rx.port.Par().LocalMMIO) // header inspection
		payload := win[base+SlotHeaderBytes : base+SlotHeaderBytes+int(info.Size)]
		return info, payload, true
	}
	return Info{}, nil, false
}

// Release invalidates the just-consumed slot and returns a credit to the
// sender.
func (rx *PipeRx) Release(p *sim.Proc) {
	win := rx.port.Inbound(ntb.RegionData)
	// Clear the valid word of the expected slot (it was just consumed).
	for s := 0; s < rx.slots; s++ {
		base := s * rx.slotBytes
		seq, _, ok := decodeSlotHeader(win[base : base+SlotHeaderBytes])
		if ok && seq == rx.expect+1 {
			win[base+hdrValid] = 0
			break
		}
	}
	rx.expect++
	rx.port.PeerDBSet(p, 1<<VecAck)
}
