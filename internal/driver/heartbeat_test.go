package driver

import (
	"testing"

	"repro/internal/sim"
)

func TestHeartbeatStaysAliveOnHealthyLink(t *testing.T) {
	r := newRig(t)
	interval := 100 * sim.Microsecond
	hbA := StartHeartbeat(r.sim, r.epA, interval, 3, nil)
	hbB := StartHeartbeat(r.sim, r.epB, interval, 3, nil)
	if err := r.sim.RunUntil(sim.Time(5 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !hbA.Alive() || !hbB.Alive() {
		t.Fatal("healthy link declared dead")
	}
	if hbA.Beats() < 40 || hbB.Beats() < 40 {
		t.Fatalf("too few beats: A=%d B=%d", hbA.Beats(), hbB.Beats())
	}
	hbA.Stop()
	hbB.Stop()
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatDetectsUnplug(t *testing.T) {
	r := newRig(t)
	interval := 100 * sim.Microsecond
	var downAt sim.Time
	fired := 0
	hb := StartHeartbeat(r.sim, r.epA, interval, 3, func() {
		fired++
		downAt = r.sim.Now()
	})
	// Peer side answers with its own beats until the cable dies.
	StartHeartbeat(r.sim, r.epB, interval, 3, nil)
	cutAt := sim.Time(2 * sim.Millisecond)
	r.sim.After(sim.Duration(cutAt), func() { r.a.Unplug() })
	if err := r.sim.RunUntil(sim.Time(10 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if hb.Alive() {
		t.Fatal("unplugged link still reported alive")
	}
	if fired != 1 {
		t.Fatalf("failure callback fired %d times", fired)
	}
	// Detection within missLimit+2 intervals of the cut.
	if lag := downAt - cutAt; lag <= 0 || lag > sim.Time(5*interval) {
		t.Fatalf("detected at %v, cut at %v (lag %v)", downAt, cutAt, downAt-cutAt)
	}
}

func TestHeartbeatBadArgsPanic(t *testing.T) {
	r := newRig(t)
	for _, f := range []func(){
		func() { StartHeartbeat(r.sim, r.epA, 0, 3, nil) },
		func() { StartHeartbeat(r.sim, r.epA, sim.Microsecond, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad heartbeat args accepted")
				}
			}()
			f()
		}()
	}
}
