package driver

import "fmt"

// Channel snapshots. Each capture asserts the same quiescence its Reset
// does (no ACKs queued, no credits outstanding) and records the handful
// of per-run counters a forked world must continue from: send tallies
// for the stop-and-wait channel, and the slot cursor / wire sequence /
// expected sequence for the pipelined pair — the slot contents
// themselves live in the NTB windows and are restored with them.

// TxSnapshot captures a stop-and-wait channel's per-run state.
type TxSnapshot struct {
	sends uint64
}

// Snapshot captures the channel state; the ACK queue must be drained.
func (tx *TxChannel) Snapshot() TxSnapshot {
	if n := tx.acks.Len(); n != 0 {
		panic(fmt.Sprintf("driver: snapshot of tx %s with %d unconsumed ACK(s)", tx.ep.Port.Name(), n))
	}
	return TxSnapshot{sends: tx.sends}
}

// Restore applies a snapshot to a freshly Reset channel.
func (tx *TxChannel) Restore(s TxSnapshot) {
	if n := tx.acks.Len(); n != 0 {
		panic(fmt.Sprintf("driver: restore of tx %s with %d unconsumed ACK(s)", tx.ep.Port.Name(), n))
	}
	tx.sends = s.sends
}

// PipeTxSnapshot captures a pipelined sender's cursor and counters.
type PipeTxSnapshot struct {
	nextSlot int
	seq      uint32
	sends    uint64
}

// Snapshot captures the sender state; every credit must be free, i.e.
// all in-flight slots ACKed.
func (tx *PipeTx) Snapshot() PipeTxSnapshot {
	if free := tx.credits.Free(); free != tx.credits.Capacity() {
		panic(fmt.Sprintf("driver: snapshot of pipe-tx %s with %d credit(s) outstanding",
			tx.ep.Port.Name(), tx.credits.Capacity()-free))
	}
	return PipeTxSnapshot{nextSlot: tx.nextSlot, seq: tx.seq, sends: tx.sends}
}

// Restore applies a snapshot to a freshly Reset sender. The wire
// sequence must continue from the captured value or the receiver —
// whose slot headers are restored with the NTB window contents — would
// discard every subsequent message as stale.
func (tx *PipeTx) Restore(s PipeTxSnapshot) {
	if free := tx.credits.Free(); free != tx.credits.Capacity() {
		panic(fmt.Sprintf("driver: restore of pipe-tx %s with %d credit(s) outstanding",
			tx.ep.Port.Name(), tx.credits.Capacity()-free))
	}
	tx.nextSlot = s.nextSlot
	tx.seq = s.seq
	tx.sends = s.sends
}

// PipeRxSnapshot captures a pipelined receiver's in-order cursor.
type PipeRxSnapshot struct {
	expect uint32
}

// Snapshot captures the receiver state.
func (rx *PipeRx) Snapshot() PipeRxSnapshot { return PipeRxSnapshot{expect: rx.expect} }

// Restore applies a snapshot to a freshly Reset receiver.
func (rx *PipeRx) Restore(s PipeRxSnapshot) { rx.expect = s.expect }
