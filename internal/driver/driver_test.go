package driver

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/ntb"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// rig is a two-host test rig with a driver endpoint on each side.
type rig struct {
	sim      *sim.Simulator
	par      *model.Params
	a, b     *ntb.Port
	epA, epB *Endpoint
	txAB     *TxChannel
}

func newRig(t testing.TB) *rig {
	t.Helper()
	par := model.Default()
	s := sim.New()
	net := pcie.NewNetwork(s)
	a := ntb.NewPort("A", s, net, par, pcie.NewServer("rcA", par.RootComplexBW))
	b := ntb.NewPort("B", s, net, par, pcie.NewServer("rcB", par.RootComplexBW))
	ntb.Connect(a, b)
	epA := NewEndpoint(a)
	epB := NewEndpoint(b)
	return &rig{sim: s, par: par, a: a, b: b, epA: epA, epB: epB, txAB: NewTxChannel(epA, par)}
}

// autoAck wires a minimal receiver on B: on any data vector, a service
// proc reads the info, records it, copies the payload out, and ACKs.
func (r *rig) autoAck(t *testing.T, got *[]Info, data *[][]byte) {
	q := sim.NewQueue[int]("svcB")
	r.epB.Handle(VecPut, func() { q.Push(VecPut) })
	r.epB.Handle(VecGet, func() { q.Push(VecGet) })
	r.sim.GoDaemon("svcB", func(p *sim.Proc) {
		for {
			q.Pop(p)
			p.Sleep(r.par.ServiceWake)
			info := ReadInfo(p, r.b)
			*got = append(*got, info)
			if data != nil && info.Size > 0 {
				buf := make([]byte, info.Size)
				copy(buf, r.b.Inbound(info.Region)[:info.Size])
				*data = append(*data, buf)
			}
			Ack(p, r.b)
		}
	})
}

func TestInfoCodecRoundTrip(t *testing.T) {
	r := newRig(t)
	in := Info{
		Kind:   KindGetReq,
		Src:    2,
		Dst:    0,
		Region: ntb.RegionBypass,
		Dir:    DirLeft,
		Size:   0xDEAD,
		SymOff: 0x1234_5678_9ABC_DEF0,
		Tag:    77,
		Aux:    0xFFFF_0000_1111_2222,
	}
	var out Info
	r.sim.Go("codec", func(p *sim.Proc) {
		in.writeTo(p, r.a)
		out = ReadInfo(p, r.b)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("codec round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestKindVectors(t *testing.T) {
	if KindPut.vector() != VecPut || KindAMO.vector() != VecPut || KindAMOReply.vector() != VecPut {
		t.Error("put-family kinds must ride VecPut")
	}
	if KindGetReq.vector() != VecGet || KindGetData.vector() != VecGet {
		t.Error("get-family kinds must ride VecGet")
	}
}

func TestSendChunkDeliversAndAcks(t *testing.T) {
	r := newRig(t)
	var infos []Info
	var datas [][]byte
	r.autoAck(t, &infos, &datas)
	payload := []byte("sixteen candles!")
	r.sim.Go("send", func(p *sim.Proc) {
		r.txAB.SendChunk(p, Info{
			Kind: KindPut, Src: 0, Dst: 1, Region: ntb.RegionData,
			Size: uint32(len(payload)), SymOff: 4096,
		}, Payload{Buf: payload, N: len(payload)}, ModeDMA)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].SymOff != 4096 || infos[0].Kind != KindPut {
		t.Fatalf("receiver saw %+v", infos)
	}
	if len(datas) != 1 || !bytes.Equal(datas[0], payload) {
		t.Fatalf("payload mismatch: %q", datas)
	}
	if r.txAB.Sends() != 1 {
		t.Fatalf("sends = %d", r.txAB.Sends())
	}
}

func TestSendChunkCPUMode(t *testing.T) {
	r := newRig(t)
	var infos []Info
	var datas [][]byte
	r.autoAck(t, &infos, &datas)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	r.sim.Go("send", func(p *sim.Proc) {
		r.txAB.SendChunk(p, Info{
			Kind: KindPut, Src: 0, Dst: 1, Region: ntb.RegionBypass,
			Size: uint32(len(payload)),
		}, Payload{Buf: payload, N: len(payload)}, ModeCPU)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(datas) != 1 || !bytes.Equal(datas[0], payload) {
		t.Fatal("CPU-mode payload mismatch")
	}
}

func TestSendChunkFromHeap(t *testing.T) {
	r := newRig(t)
	var infos []Info
	var datas [][]byte
	r.autoAck(t, &infos, &datas)
	h := mem.NewHeap(4096, 1<<20)
	off, _ := h.Alloc(9000)
	want := make([]byte, 9000)
	for i := range want {
		want[i] = byte(3 * i)
	}
	h.Write(off, want)
	for _, mode := range []Mode{ModeDMA, ModeCPU} {
		mode := mode
		r.sim.Go("send-"+mode.String(), func(p *sim.Proc) {
			r.txAB.SendChunk(p, Info{
				Kind: KindPut, Region: ntb.RegionData, Size: 9000, SymOff: uint64(off),
			}, Payload{Heap: h, HeapOff: off, N: 9000}, mode)
		})
	}
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(datas) != 2 || !bytes.Equal(datas[0], want) || !bytes.Equal(datas[1], want) {
		t.Fatal("heap-sourced chunk mismatch")
	}
}

func TestSendChunkSerialisesConcurrentSenders(t *testing.T) {
	// Two senders race on the same TxChannel; the stop-and-wait ACK
	// protocol must interleave them without corrupting either chunk.
	r := newRig(t)
	var infos []Info
	var datas [][]byte
	r.autoAck(t, &infos, &datas)
	mk := func(tag byte) []byte {
		b := make([]byte, 1000)
		for i := range b {
			b[i] = tag
		}
		return b
	}
	for i := 0; i < 4; i++ {
		tag := byte('a' + i)
		r.sim.Go(fmt.Sprintf("send%c", tag), func(p *sim.Proc) {
			r.txAB.SendChunk(p, Info{
				Kind: KindPut, Region: ntb.RegionData, Size: 1000, Tag: uint32(tag),
			}, Payload{Buf: mk(tag), N: 1000}, ModeDMA)
		})
	}
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(datas) != 4 {
		t.Fatalf("delivered %d chunks", len(datas))
	}
	for i, d := range datas {
		want := byte(infos[i].Tag)
		for _, by := range d {
			if by != want {
				t.Fatalf("chunk %d corrupted: tag %c has byte %c", i, want, by)
			}
		}
	}
}

func TestSendChunkRejectsOversize(t *testing.T) {
	r := newRig(t)
	r.sim.Go("send", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversize chunk did not panic")
			}
		}()
		n := r.par.WindowSize + 1
		r.txAB.SendChunk(p, Info{Kind: KindPut, Size: uint32(n)},
			Payload{Buf: make([]byte, n), N: n}, ModeDMA)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPureRegisterMessage(t *testing.T) {
	// Size-zero chunks skip the window entirely (AMO-style messages).
	r := newRig(t)
	var infos []Info
	r.autoAck(t, &infos, nil)
	var elapsed sim.Duration
	r.sim.Go("send", func(p *sim.Proc) {
		start := p.Now()
		r.txAB.SendChunk(p, Info{Kind: KindAMO, SymOff: 64, Aux: 42}, Payload{}, ModeDMA)
		elapsed = p.Now().Sub(start)
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Aux != 42 {
		t.Fatalf("AMO message lost: %+v", infos)
	}
	// No bulk transfer: the cycle should be dominated by the service
	// wake, well under 200us.
	if elapsed > sim.Microseconds(200) {
		t.Fatalf("register-only message took %v", elapsed)
	}
}

func TestEndpointVectorDispatch(t *testing.T) {
	r := newRig(t)
	var fired []int
	r.epB.Handle(VecBarrierStart, func() { fired = append(fired, VecBarrierStart) })
	r.epB.Handle(VecBarrierEnd, func() { fired = append(fired, VecBarrierEnd) })
	r.sim.Go("ring", func(p *sim.Proc) {
		r.epA.Ring(p, VecBarrierStart)
		p.Sleep(sim.Microseconds(10))
		r.epA.Ring(p, VecBarrierEnd)
		p.Sleep(sim.Microseconds(10))
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != VecBarrierStart || fired[1] != VecBarrierEnd {
		t.Fatalf("dispatch order: %v", fired)
	}
	// Doorbell bits must have been cleared by the ISR.
	r2 := sim.New()
	_ = r2
	s2 := sim.New()
	net2 := pcie.NewNetwork(s2)
	_ = net2
	var db uint16
	r.sim.Go("check", func(p *sim.Proc) { db = r.b.DBRead(p) })
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if db != 0 {
		t.Fatalf("doorbell not cleared in ISR: %#b", db)
	}
}

func TestInfoCodecProperty(t *testing.T) {
	// Property: the scratchpad codec is the identity for every field
	// within wire widths.
	f := func(kind uint8, src, dst uint16, region uint8, dir bool, size, tag uint32, symOff, aux uint64) bool {
		in := Info{
			Kind:   Kind(kind%6 + 1),
			Src:    src % (MaxHosts + 1),
			Dst:    dst % (MaxHosts + 1),
			Region: ntb.Region(region % 2),
			Size:   size,
			SymOff: symOff,
			Tag:    tag,
			Aux:    aux,
		}
		if dir {
			in.Dir = DirLeft
		}
		r := newRig(t)
		var out Info
		r.sim.Go("codec", func(p *sim.Proc) {
			in.writeTo(p, r.a)
			out = ReadInfo(p, r.b)
		})
		if err := r.sim.Run(); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotHeaderCodecProperty(t *testing.T) {
	f := func(kind uint8, src, dst uint16, dir bool, size, tag, seq uint32, symOff, aux uint64) bool {
		in := Info{
			Kind:   Kind(kind%6 + 1),
			Src:    src % (MaxHosts + 1),
			Dst:    dst % (MaxHosts + 1),
			Region: ntb.RegionData,
			Size:   size,
			SymOff: symOff,
			Tag:    tag,
			Aux:    aux,
		}
		if dir {
			in.Dir = DirLeft
		}
		buf := make([]byte, SlotHeaderBytes)
		encodeSlotHeader(buf, seq, &in)
		gotSeq, out, ok := decodeSlotHeader(buf)
		return ok && gotSeq == seq && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
