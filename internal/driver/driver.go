// Package driver is the software layer between the NTB device model and
// the OpenSHMEM runtime, mirroring the role of the Linux PEX 8x NTB
// device driver in the paper's stack.
//
// It provides three things:
//
//   - Endpoint: per-port doorbell vector demultiplexing (the interrupt
//     handler that routes each doorbell bit to a registered callback);
//   - Info: the transfer-information record the paper exchanges through
//     the eight 32-bit ScratchPad registers (source and destination host
//     Ids, symmetric-heap offset, size, send/receive kind);
//   - TxChannel: a one-direction, stop-and-wait bulk sender that moves one
//     chunk into the peer's inbound window (by DMA or programmed I/O),
//     publishes the Info record, rings the matching doorbell vector, and
//     waits for the receiver's ACK doorbell before reusing the window and
//     scratchpads.
package driver

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/ntb"
	"repro/internal/sim"
)

// Doorbell vector assignments. The first four are the paper's
// (§III-B.1); VecAck is the flow-control return signal that releases the
// sender's window and scratchpads for the next chunk.
const (
	VecPut          = 0 // DOORBELL_DMAPUT: a put (or forwarded) chunk landed
	VecGet          = 1 // DOORBELL_DMAGET: a get request or get data chunk landed
	VecBarrierStart = 2 // DOORBELL_BARRIER_START
	VecBarrierEnd   = 3 // DOORBELL_BARRIER_END
	VecAck          = 4 // chunk consumed; window and spads are free
	numVecs         = 5
)

// Kind tags an Info record with the message type it describes.
type Kind uint8

const (
	// KindPut is a put data chunk to be delivered into the destination
	// PE's symmetric heap.
	KindPut Kind = iota + 1
	// KindGetReq asks the owner PE to send one chunk of symmetric data
	// back to the requester.
	KindGetReq
	// KindGetData is one chunk of get reply data, addressed to the
	// requester's pending get identified by Tag.
	KindGetData
	// KindAMO asks the owner PE to perform an atomic memory operation on
	// its symmetric heap (our scratchpad-only extension; no window data).
	KindAMO
	// KindAMOReply returns the fetched value of an AMO to the requester.
	KindAMOReply
	// KindBarrierCtl carries a round-tagged synchronisation token for the
	// alternative (centralised / dissemination) barrier algorithms.
	KindBarrierCtl
)

func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindGetReq:
		return "get-req"
	case KindGetData:
		return "get-data"
	case KindAMO:
		return "amo"
	case KindAMOReply:
		return "amo-reply"
	case KindBarrierCtl:
		return "barrier-ctl"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// vector returns the doorbell vector a message kind is announced on.
// Get requests and replies travel on the DMAGET vector, everything else
// on DMAPUT, matching the paper's two data interrupt sources.
func (k Kind) vector() int {
	if k == KindGetReq || k == KindGetData {
		return VecGet
	}
	return VecPut
}

// Dir is the ring direction a message travels in. The paper routes all
// data rightward (toward increasing host Ids); get replies travel back
// leftward along the request's path.
type Dir uint8

const (
	// DirRight moves toward increasing host Ids.
	DirRight Dir = iota
	// DirLeft moves toward decreasing host Ids.
	DirLeft
)

func (d Dir) String() string {
	if d == DirLeft {
		return "left"
	}
	return "right"
}

// MaxHosts is the largest ring the Info header word can address: the
// packed header carries 11 bits per host Id (see the layout below), so
// worlds scale to 2047 hosts without widening the record beyond its
// seven scratchpad registers.
const MaxHosts = 1<<11 - 1

// Info is the transfer-information record exchanged through scratchpads.
// It packs into seven 32-bit registers; the eighth is reserved for the
// boot-time host-Id/BAR exchange.
//
// The header register packs, LSB first: Kind (6 bits), Region (2 bits),
// Dir (1 bit), one spare bit, Src (11 bits), Dst (11 bits). Host Ids got
// 11 bits each — not the byte they historically occupied — so rings
// larger than 256 hosts stay addressable.
type Info struct {
	Kind   Kind
	Src    uint16     // host Id of the original source PE
	Dst    uint16     // host Id of the final destination PE
	Region ntb.Region // inbound window the chunk landed in
	Dir    Dir        // ring direction the message is travelling
	Size   uint32     // payload bytes in the window; for KindGetReq, the requested bytes
	SymOff uint64     // symmetric-heap offset (put target / get source)
	Tag    uint32     // request identity for get/AMO replies
	Aux    uint64     // chunk offset within the request, or AMO operand
}

// headerWord packs the kind/region/dir/src/dst fields into the 32-bit
// header register.
func (in *Info) headerWord() uint32 {
	return uint32(in.Kind)&0x3F | uint32(in.Region)&0x3<<6 | uint32(in.Dir)&0x1<<8 |
		uint32(in.Src)&0x7FF<<10 | uint32(in.Dst)&0x7FF<<21
}

// unpackHeader fills the fields encoded in the header register.
func (in *Info) unpackHeader(header uint32) {
	in.Kind = Kind(header & 0x3F)
	in.Region = ntb.Region(header >> 6 & 0x3)
	in.Dir = Dir(header >> 8 & 0x1)
	in.Src = uint16(header >> 10 & 0x7FF)
	in.Dst = uint16(header >> 21 & 0x7FF)
}

// spad indices used by the Info codec and boot exchange.
const (
	spadHeader = 0
	spadSize   = 1
	spadOffLo  = 2
	spadOffHi  = 3
	spadTag    = 4
	spadAuxLo  = 5
	spadAuxHi  = 6
	// SpadBoot is reserved for the fabric boot handshake.
	SpadBoot = 7
)

// writeTo publishes the record into the peer's scratchpads (seven posted
// MMIO writes across the link).
func (in *Info) writeTo(p *sim.Proc, port *ntb.Port) {
	port.PeerSpadWrite(p, spadHeader, in.headerWord())
	port.PeerSpadWrite(p, spadSize, in.Size)
	port.PeerSpadWrite(p, spadOffLo, uint32(in.SymOff))
	port.PeerSpadWrite(p, spadOffHi, uint32(in.SymOff>>32))
	port.PeerSpadWrite(p, spadTag, in.Tag)
	port.PeerSpadWrite(p, spadAuxLo, uint32(in.Aux))
	port.PeerSpadWrite(p, spadAuxHi, uint32(in.Aux>>32))
}

// ReadInfo decodes the record from the local scratchpads (seven local
// register reads).
func ReadInfo(p *sim.Proc, port *ntb.Port) Info {
	in := Info{
		Size:   port.SpadRead(p, spadSize),
		SymOff: uint64(port.SpadRead(p, spadOffLo)) | uint64(port.SpadRead(p, spadOffHi))<<32,
		Tag:    port.SpadRead(p, spadTag),
		Aux:    uint64(port.SpadRead(p, spadAuxLo)) | uint64(port.SpadRead(p, spadAuxHi))<<32,
	}
	in.unpackHeader(port.SpadRead(p, spadHeader))
	return in
}

// Endpoint wraps one port with doorbell-vector dispatch. Handlers run in
// interrupt (scheduler) context and must not block; they typically push
// work onto a service thread's queue.
type Endpoint struct {
	Port     *ntb.Port
	handlers [16]func()
}

// NewEndpoint installs the demultiplexing ISR on port.
func NewEndpoint(port *ntb.Port) *Endpoint {
	e := &Endpoint{Port: port}
	port.SetISR(func(bits uint16) {
		port.ClearInISR(bits)
		for v := 0; v < 16; v++ {
			if bits&(1<<v) != 0 && e.handlers[v] != nil {
				e.handlers[v]()
			}
		}
	})
	return e
}

// Handle registers fn for doorbell vector vec.
func (e *Endpoint) Handle(vec int, fn func()) {
	if vec < 0 || vec >= 16 {
		panic(fmt.Sprintf("driver: bad vector %d", vec))
	}
	e.handlers[vec] = fn
}

// Ring rings a doorbell vector on the peer host.
func (e *Endpoint) Ring(p *sim.Proc, vec int) {
	e.Port.PeerDBSet(p, 1<<vec)
}

// Mode selects the data-movement mechanism for a chunk, the axis of the
// paper's DMA-vs-memcpy comparison.
type Mode uint8

const (
	// ModeDMA moves chunks with the adapter's DMA engine.
	ModeDMA Mode = iota
	// ModeCPU moves chunks with programmed I/O (the paper's "memcpy").
	ModeCPU
)

func (m Mode) String() string {
	if m == ModeCPU {
		return "memcpy"
	}
	return "DMA"
}

// Payload is a chunk source: either an in-memory buffer or a symmetric
// heap range.
type Payload struct {
	Buf     []byte
	Heap    *mem.Heap
	HeapOff int64
	N       int
}

// TxChannel serialises one direction of one link. Because a chunk
// occupies the peer's inbound window and the scratchpad bank until the
// receiver ACKs, concurrent senders (the application and the forwarding
// service thread) must take strict turns; the channel provides that.
type TxChannel struct {
	ep      *Endpoint
	par     *model.Params        // reset: keep; snap: keep — construction identity
	mu      *sim.Mutex           // reset: keep; snap: keep — released after every send
	acks    *sim.Queue[struct{}] // Reset asserts it drained
	scratch []byte               // reset: keep; snap: keep — warm staging buffer, overwritten per send
	sends   uint64
}

// NewTxChannel builds the sender side for ep and hooks its ACK vector.
func NewTxChannel(ep *Endpoint, par *model.Params) *TxChannel {
	tx := &TxChannel{
		ep:   ep,
		par:  par,
		mu:   sim.NewMutex("tx:" + ep.Port.Name()),
		acks: sim.NewQueue[struct{}]("ack:" + ep.Port.Name()),
		// scratch (a window-sized staging buffer) is allocated on first
		// memcpy-from-heap send; most channels only ever DMA.
	}
	ep.Handle(VecAck, func() { tx.acks.Push(struct{}{}) })
	return tx
}

// Sends reports how many chunks the channel has pushed (for tests and
// the trace).
func (tx *TxChannel) Sends() uint64 { return tx.sends }

// Reset prepares the channel for another run on a recycled world. The
// stop-and-wait cycle leaves nothing in flight between sends, so a clean
// run can only leave the channel idle; Reset asserts that and rewinds the
// send counter. The mutex, ACK queue, and scratch buffer stay warm.
func (tx *TxChannel) Reset() {
	if n := tx.acks.Len(); n != 0 {
		panic(fmt.Sprintf("driver: reset of tx %s with %d unconsumed ACK(s)", tx.ep.Port.Name(), n))
	}
	tx.sends = 0
}

// SendChunk moves one chunk (payload may be empty for pure-register
// messages) into the peer window named by info.Region, publishes info,
// rings the kind's vector, and waits for the ACK. It blocks the caller
// for the full stop-and-wait cycle.
func (tx *TxChannel) SendChunk(p *sim.Proc, info Info, payload Payload, mode Mode) {
	if payload.N > tx.par.WindowSize {
		panic(fmt.Sprintf("driver: chunk %d exceeds window %d", payload.N, tx.par.WindowSize))
	}
	if payload.N > 0 && int(info.Size) != payload.N {
		panic("driver: info.Size disagrees with payload")
	}
	tx.mu.Lock(p)
	if payload.N > 0 {
		switch mode {
		case ModeDMA:
			d := ntb.Desc{Region: info.Region, Off: 0, Bytes: payload.N}
			if payload.Heap != nil {
				d.SrcHeap, d.SrcOff = payload.Heap, payload.HeapOff
			} else {
				d.Src = payload.Buf
			}
			tx.ep.Port.DMA().SubmitWait(p, d)
		case ModeCPU:
			src := payload.Buf
			if payload.Heap != nil {
				if tx.scratch == nil {
					tx.scratch = make([]byte, tx.par.WindowSize)
				}
				src = tx.scratch[:payload.N]
				payload.Heap.Read(payload.HeapOff, src)
			}
			tx.ep.Port.CPUWrite(p, info.Region, 0, src[:payload.N])
		default:
			panic("driver: unknown mode")
		}
	}
	info.writeTo(p, tx.ep.Port)
	tx.ep.Ring(p, info.Kind.vector())
	tx.acks.Pop(p)
	tx.sends++
	tx.mu.Unlock()
}

// Ack releases the sender's window and scratchpads after the receiver has
// consumed a chunk. Called by the receiving host's service thread on the
// port the chunk arrived on.
func Ack(p *sim.Proc, port *ntb.Port) {
	port.PeerDBSet(p, 1<<VecAck)
}
