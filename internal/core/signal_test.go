package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPutSignalOrdering(t *testing.T) {
	// The consumer waits only on the signal; the data must already be
	// there. Exercised over both 1-hop and 2-hop paths.
	for _, target := range []int{1, 2} {
		target := target
		t.Run(map[int]string{1: "1hop", 2: "2hops"}[target], func(t *testing.T) {
			w := newWorld(3, Options{})
			const n = 80_000
			payload := bytes.Repeat([]byte{0x7E}, n)
			var got []byte
			err := w.Run(func(p *sim.Proc, pe *PE) {
				data := pe.MustMalloc(p, n)
				sig := pe.MustMalloc(p, 8)
				pe.BarrierAll(p)
				if pe.ID() == 0 {
					pe.PutSignal(p, target, data, payload, sig, SignalSet, 7)
				}
				if pe.ID() == target {
					pe.WaitUntilInt64(p, sig, CmpEQ, 7)
					got = make([]byte, n)
					pe.LocalRead(p, data, got)
				}
				pe.BarrierAll(p)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("signal observed before data was delivered")
			}
		})
	}
}

func TestPutSignalAddAccumulates(t *testing.T) {
	// Multiple producers signal-add into one consumer's counter; the
	// consumer releases when all contributions are in.
	const n = 4
	w := newWorld(n, Options{})
	const sz = 10_000
	var total int
	err := w.Run(func(p *sim.Proc, pe *PE) {
		data := pe.MustMalloc(p, sz*n)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() != 0 {
			block := bytes.Repeat([]byte{byte(pe.ID())}, sz)
			pe.PutSignal(p, 0, data+SymAddr(pe.ID()*sz), block, sig, SignalAdd, 1)
		} else {
			pe.WaitUntilInt64(p, sig, CmpEQ, int64(n-1))
			buf := make([]byte, sz)
			for from := 1; from < n; from++ {
				pe.LocalRead(p, data+SymAddr(from*sz), buf)
				for _, b := range buf {
					total += int(b)
				}
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := sz * (1 + 2 + 3)
	if total != want {
		t.Fatalf("accumulated %d, want %d — a signal overtook its data", total, want)
	}
}

func TestPutSignalNBIWithQuiet(t *testing.T) {
	w := newWorld(2, Options{})
	const sz = 5_000
	err := w.Run(func(p *sim.Proc, pe *PE) {
		data := pe.MustMalloc(p, sz)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutSignalNBI(p, 1, data, bytes.Repeat([]byte{9}, sz), sig, SignalSet, 1)
			pe.Quiet(p)
		}
		if pe.ID() == 1 {
			pe.WaitUntilInt64(p, sig, CmpEQ, 1)
			if got := pe.SignalFetch(p, sig); got != 1 {
				t.Errorf("SignalFetch = %d", got)
			}
			buf := make([]byte, sz)
			pe.LocalRead(p, data, buf)
			for _, b := range buf {
				if b != 9 {
					t.Error("NBI signal data corrupted")
					break
				}
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutSignalPropertyNeverEarly(t *testing.T) {
	// Property: across random sizes and both ring directions (shortest
	// routing), a consumer that sees the signal always sees every byte
	// of the data.
	f := func(rawSize uint16, seed int64) bool {
		size := int(rawSize)%60_000 + 1
		w := newWorldOpts(5, Options{Routing: RouteShortest})
		tag := byte(seed)%250 + 1
		ok := true
		err := w.Run(func(p *sim.Proc, pe *PE) {
			data := pe.MustMalloc(p, size)
			sig := pe.MustMalloc(p, 8)
			pe.BarrierAll(p)
			target := int(uint64(seed)%4) + 1 // 1..4: mixes left/right arcs
			if pe.ID() == 0 {
				pe.PutSignal(p, target, data, bytes.Repeat([]byte{tag}, size), sig, SignalSet, 1)
			}
			if pe.ID() == target {
				pe.WaitUntilInt64(p, sig, CmpEQ, 1)
				buf := make([]byte, size)
				pe.LocalRead(p, data, buf)
				for _, b := range buf {
					if b != tag {
						ok = false
						break
					}
				}
			}
			pe.BarrierAll(p)
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
