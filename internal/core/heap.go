package core

import (
	"fmt"

	"repro/internal/sim"
)

// Malloc allocates size bytes in the symmetric heap (shmem_malloc,
// Table I). Under SPMD execution every PE performs the same allocation
// sequence, so the returned SymAddr designates the same object everywhere
// — the paper's same-offset guarantee of Fig 3.
func (pe *PE) Malloc(p *sim.Proc, size int) (SymAddr, error) {
	pe.checkLive()
	p.Sleep(pe.par.PutSoftware) // allocator bookkeeping cost
	off, err := pe.heap.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("pe %d: %w", pe.id, err)
	}
	return SymAddr(off), nil
}

// MallocAligned is shmem_align: allocate size bytes whose symmetric
// address is a multiple of align (a power of two).
func (pe *PE) MallocAligned(p *sim.Proc, size, align int) (SymAddr, error) {
	pe.checkLive()
	p.Sleep(pe.par.PutSoftware)
	off, err := pe.heap.AllocAligned(size, align)
	if err != nil {
		return 0, fmt.Errorf("pe %d: %w", pe.id, err)
	}
	return SymAddr(off), nil
}

// MustMalloc is Malloc for callers that treat exhaustion as fatal, which
// is what shmem_malloc's NULL return means to most SPMD programs.
func (pe *PE) MustMalloc(p *sim.Proc, size int) SymAddr {
	a, err := pe.Malloc(p, size)
	if err != nil {
		panic(err)
	}
	return a
}

// Calloc allocates and zeroes (the heap's fresh chunks are already
// zeroed, but reused regions are not).
func (pe *PE) Calloc(p *sim.Proc, size int) (SymAddr, error) {
	a, err := pe.Malloc(p, size)
	if err != nil {
		return 0, err
	}
	zero := make([]byte, size)
	p.Sleep(sim.BytesAt(size, pe.par.MemcpyBW))
	pe.heap.Write(int64(a), zero)
	return a, nil
}

// Realloc resizes a symmetric allocation (shmem_realloc), preserving
// the prefix contents; the result may be a new address. SPMD symmetry
// holds as long as every PE performs the same call sequence.
func (pe *PE) Realloc(p *sim.Proc, addr SymAddr, newSize int) (SymAddr, error) {
	pe.checkLive()
	p.Sleep(pe.par.PutSoftware)
	base, old, ok := pe.heap.BlockOf(int64(addr))
	if ok && base == int64(addr) {
		// A move costs a local copy of the preserved prefix.
		keep := old
		if int64(newSize) < keep {
			keep = int64(newSize)
		}
		p.Sleep(sim.BytesAt(int(keep), pe.par.MemcpyBW))
	}
	off, err := pe.heap.Realloc(int64(addr), newSize)
	if err != nil {
		return 0, fmt.Errorf("pe %d: %w", pe.id, err)
	}
	return SymAddr(off), nil
}

// Free releases a symmetric allocation (shmem_free).
func (pe *PE) Free(p *sim.Proc, addr SymAddr) error {
	pe.checkLive()
	p.Sleep(pe.par.PutSoftware)
	return pe.heap.Free(int64(addr))
}

// HeapStats reports (live allocations, live bytes, physical chunks) for
// inspection and tests.
func (pe *PE) HeapStats() (live int, liveBytes int64, chunks int) {
	return pe.heap.Live(), pe.heap.LiveBytes(), pe.heap.Chunks()
}

// checkHeapRange panics unless [addr, addr+n) lies inside one live
// symmetric allocation. Remote accesses to unallocated symmetric memory
// are undefined behaviour in OpenSHMEM; here they fail loudly.
func (pe *PE) checkHeapRange(addr SymAddr, n int) {
	base, size, ok := pe.heap.BlockOf(int64(addr))
	if !ok || int64(addr)+int64(n) > base+size {
		panic(fmt.Sprintf("core: pe %d symmetric access [%d,%d) outside any live allocation",
			pe.id, addr, int64(addr)+int64(n)))
	}
}

// LocalWrite stores bytes into this PE's own copy of a symmetric object,
// at local-memcpy cost. It is how applications initialise symmetric data.
func (pe *PE) LocalWrite(p *sim.Proc, addr SymAddr, src []byte) {
	pe.checkLive()
	pe.checkHeapRange(addr, len(src))
	p.Sleep(sim.BytesAt(len(src), pe.par.MemcpyBW))
	pe.heap.Write(int64(addr), src)
	pe.heapWrite.Broadcast()
}

// LocalRead loads bytes from this PE's own copy of a symmetric object.
func (pe *PE) LocalRead(p *sim.Proc, addr SymAddr, dst []byte) {
	pe.checkLive()
	pe.checkHeapRange(addr, len(dst))
	p.Sleep(sim.BytesAt(len(dst), pe.par.MemcpyBW))
	pe.heap.Read(int64(addr), dst)
}

// peekInt64 reads a local symmetric int64 without timing charge; it is
// the runtime's own register-sized inspection primitive (WaitUntil,
// AMO application).
func (pe *PE) peekInt64(addr SymAddr) int64 {
	var b [8]byte
	pe.heap.Read(int64(addr), b[:])
	return int64(le.Uint64(b[:]))
}

// pokeInt64 writes a local symmetric int64 without timing charge.
func (pe *PE) pokeInt64(addr SymAddr, v int64) {
	var b [8]byte
	le.PutUint64(b[:], uint64(v))
	pe.heap.Write(int64(addr), b[:])
}
