package core

import (
	"repro/internal/driver"
	"repro/internal/sim"
)

// BarrierAll is shmem_barrier_all. All PEs must call it; on return, every
// PE has entered the barrier and — for the default ring algorithm — every
// put issued before the barrier is visible in its destination heap.
//
// Implementation follows the paper's Fig 6 for BarrierRing; the
// centralised and dissemination variants exist for the barrier-algorithm
// ablation.
func (pe *PE) BarrierAll(p *sim.Proc) {
	pe.checkLive()
	opStart := p.Now()
	defer pe.emitOp(p, "barrier", -1, 0, opStart)
	pe.stats.Barriers++
	// "It is first checked if previous DMA data transfer for Put or Get
	// has been completed" (§III-B.4).
	pe.Quiet(p)
	pe.drainLocal(p)
	switch pe.world.opts.Barrier {
	case BarrierCentral:
		pe.barrierCentral(p)
	case BarrierDissemination:
		pe.barrierDissemination(p)
	default:
		pe.barrierRing(p)
	}
	pe.barrierEpoch++
}

// barrierRing is the paper's two-round protocol: host 0 sends
// BARRIER_START rightward; each host forwards it after flushing its own
// relay queue; when the start round returns to host 0 it launches the
// BARRIER_END round the same way, and hosts release as the end passes.
//
// The per-hop flush is what upgrades the barrier from synchronisation to
// delivery: a host only propagates the token once every chunk staged on
// it has been pushed one hop (and acknowledged — for a final hop that
// means copied into the destination heap). Induction along the token's
// path flushes every chain that runs in the token's direction, so under
// shortest-path routing a second, leftward round is required for the
// leftward chains.
func (pe *PE) barrierRing(p *sim.Proc) {
	pe.ringRound(p, driver.DirRight)
	if pe.world.opts.Routing == RouteShortest {
		pe.ringRound(p, driver.DirLeft)
	}
}

// ringRound circulates one start round and one end round in the given
// direction.
func (pe *PE) ringRound(p *sim.Proc, dir driver.Dir) {
	out := pe.host.RightEP
	startQ, endQ := pe.startQ, pe.endQ
	if dir == driver.DirLeft {
		out = pe.host.LeftEP
		startQ, endQ = pe.startQL, pe.endQL
	}
	if pe.id == 0 {
		out.Ring(p, driver.VecBarrierStart)
		pe.waitToken(p, startQ)
		pe.drainLocal(p)
		out.Ring(p, driver.VecBarrierEnd)
		pe.waitToken(p, endQ)
	} else {
		pe.waitToken(p, startQ)
		pe.drainLocal(p)
		out.Ring(p, driver.VecBarrierStart)
		pe.waitToken(p, endQ)
		out.Ring(p, driver.VecBarrierEnd)
	}
}

// waitToken blocks on a doorbell-token queue and charges the application
// thread wake-up cost.
func (pe *PE) waitToken(p *sim.Proc, q *sim.Queue[struct{}]) {
	q.Pop(p)
	p.Sleep(pe.par.AppWake)
}

// ctlKey builds the control-token key for (epoch, round/phase).
func (pe *PE) ctlKey(round int) uint32 {
	return pe.barrierEpoch<<8 | uint32(round)
}

// sendCtl routes one barrier-control token to another PE through the
// ordinary message path, so tokens cannot overtake data staged on the
// same ring segments.
func (pe *PE) sendCtl(p *sim.Proc, target, round int) {
	dir := pe.dirTo(target)
	tx, nextHop := pe.txToward(dir)
	info := driver.Info{
		Kind:   driver.KindBarrierCtl,
		Src:    uint16(pe.id),
		Dst:    uint16(target),
		Dir:    dir,
		Region: pe.regionFor(target, nextHop),
		Tag:    pe.ctlKey(round),
	}
	tx.SendChunk(p, info, driver.Payload{}, pe.mode)
}

// waitCtl blocks until count tokens for (epoch, round) have arrived, then
// consumes them.
func (pe *PE) waitCtl(p *sim.Proc, round, count int) {
	key := pe.ctlKey(round)
	for pe.ctl[key] < count {
		pe.ctlCond.Wait(p)
	}
	if count > 0 { // count==0 must not fault the lazily created table
		pe.ctl[key] -= count
		if pe.ctl[key] == 0 {
			delete(pe.ctl, key)
		}
	}
	p.Sleep(pe.par.AppWake)
}

// Phases for the centralised barrier's round field.
const (
	ctlArrive  = 0
	ctlRelease = 1
)

// barrierCentral gathers arrivals at host 0 and fans releases back out.
// On a ring every token is itself multi-hop, which is exactly why the
// paper rejects a centralised shared counter for this fabric.
func (pe *PE) barrierCentral(p *sim.Proc) {
	n := pe.NumPEs()
	if pe.id == 0 {
		pe.waitCtl(p, ctlArrive, n-1)
		pe.drainLocal(p)
		for t := 1; t < n; t++ {
			pe.sendCtl(p, t, ctlRelease)
		}
	} else {
		pe.sendCtl(p, 0, ctlArrive)
		pe.waitCtl(p, ctlRelease, 1)
	}
}

// barrierDissemination runs ceil(log2 N) rounds; in round r, PE i
// signals PE (i+2^r) mod N and waits for the signal from (i-2^r) mod N.
// Each PE flushes its relay queue before signalling so tokens push
// staged data ahead of themselves.
func (pe *PE) barrierDissemination(p *sim.Proc) {
	n := pe.NumPEs()
	for r, dist := 0, 1; dist < n; r, dist = r+1, dist*2 {
		pe.drainLocal(p)
		pe.sendCtl(p, (pe.id+dist)%n, r)
		pe.waitCtl(p, r, 1)
	}
}

// SyncAll is shmem_sync_all: a pure synchronisation barrier that does not
// imply put delivery. It always uses the ring doorbell protocol without
// the relay flush, and exists so the ablation can price the flush.
func (pe *PE) SyncAll(p *sim.Proc) {
	pe.checkLive()
	right := pe.host.RightEP
	if pe.id == 0 {
		right.Ring(p, driver.VecBarrierStart)
		pe.waitToken(p, pe.startQ)
		right.Ring(p, driver.VecBarrierEnd)
		pe.waitToken(p, pe.endQ)
	} else {
		pe.waitToken(p, pe.startQ)
		right.Ring(p, driver.VecBarrierStart)
		pe.waitToken(p, pe.endQ)
		right.Ring(p, driver.VecBarrierEnd)
	}
}
