package core

import (
	"repro/internal/driver"
	"repro/internal/sim"
)

// BarrierAll is shmem_barrier_all. All PEs must call it; on return, every
// PE has entered the barrier and — for the default algorithm — every put
// issued before the barrier is visible in its destination heap.
//
// The default algorithm is the fabric's native delivery barrier when it
// has one (the paper's Fig 6 ring protocol on the NTB ring, the doorbell
// rounds on the pair); fabrics without one — and the explicit
// centralised/dissemination selections for the barrier-algorithm
// ablation — run the token-counting algorithms over the ordinary message
// path, which preserves delivery because tokens cannot overtake data.
func (pe *PE) BarrierAll(p *sim.Proc) {
	pe.checkLive()
	opStart := p.Now()
	defer pe.emitOp(p, "barrier", -1, 0, opStart)
	pe.stats.Barriers++
	// "It is first checked if previous DMA data transfer for Put or Get
	// has been completed" (§III-B.4).
	pe.Quiet(p)
	pe.link.Drain(p)
	switch pe.world.opts.Barrier {
	case BarrierCentral:
		pe.barrierCentral(p)
	case BarrierDissemination:
		pe.barrierDissemination(p)
	default:
		if !pe.link.Barrier(p) {
			pe.barrierDissemination(p)
		}
	}
	pe.barrierEpoch++
}

// ctlKey builds the control-token key for (epoch, round/phase).
func (pe *PE) ctlKey(round int) uint32 {
	return pe.barrierEpoch<<8 | uint32(round)
}

// syncKey builds the control-token key for a SyncAll round; bit 31
// separates the sync key space from barrier epochs.
func (pe *PE) syncKey(round int) uint32 {
	return 1<<31 | pe.syncEpoch<<8 | uint32(round)
}

// sendCtl routes one barrier-control token to another PE through the
// ordinary message path, so tokens cannot overtake data staged on the
// same fabric segments.
func (pe *PE) sendCtl(p *sim.Proc, target int, key uint32) {
	info := driver.Info{
		Kind: driver.KindBarrierCtl,
		Src:  uint16(pe.id),
		Dst:  uint16(target),
		Tag:  key,
	}
	pe.link.Send(p, info, driver.Payload{})
}

// waitCtl blocks until count tokens for key have arrived, then consumes
// them.
func (pe *PE) waitCtl(p *sim.Proc, key uint32, count int) {
	for pe.ctl[key] < count {
		pe.ctlCond.Wait(p)
	}
	if count > 0 { // count==0 must not fault the lazily created table
		pe.ctl[key] -= count
		if pe.ctl[key] == 0 {
			delete(pe.ctl, key)
		}
	}
	p.Sleep(pe.par.AppWake)
}

// Phases for the centralised barrier's round field.
const (
	ctlArrive  = 0
	ctlRelease = 1
)

// barrierCentral gathers arrivals at host 0 and fans releases back out.
// On a ring every token is itself multi-hop, which is exactly why the
// paper rejects a centralised shared counter for this fabric.
func (pe *PE) barrierCentral(p *sim.Proc) {
	n := pe.NumPEs()
	if pe.id == 0 {
		pe.waitCtl(p, pe.ctlKey(ctlArrive), n-1)
		pe.link.Drain(p)
		for t := 1; t < n; t++ {
			pe.sendCtl(p, t, pe.ctlKey(ctlRelease))
		}
	} else {
		pe.sendCtl(p, 0, pe.ctlKey(ctlArrive))
		pe.waitCtl(p, pe.ctlKey(ctlRelease), 1)
	}
}

// barrierDissemination runs ceil(log2 N) rounds; in round r, PE i
// signals PE (i+2^r) mod N and waits for the signal from (i-2^r) mod N.
// Each PE flushes its link before signalling so tokens push staged data
// ahead of themselves.
func (pe *PE) barrierDissemination(p *sim.Proc) {
	n := pe.NumPEs()
	for r, dist := 0, 1; dist < n; r, dist = r+1, dist*2 {
		pe.link.Drain(p)
		pe.sendCtl(p, (pe.id+dist)%n, pe.ctlKey(r))
		pe.waitCtl(p, pe.ctlKey(r), 1)
	}
}

// SyncAll is shmem_sync_all: a pure synchronisation barrier that does not
// imply put delivery. Fabrics with a native doorbell protocol run it
// without the relay flush (so the ablation can price the flush); others
// run dissemination token rounds without the per-round drain.
func (pe *PE) SyncAll(p *sim.Proc) {
	pe.checkLive()
	if pe.link.Sync(p) {
		return
	}
	n := pe.NumPEs()
	for r, dist := 0, 1; dist < n; r, dist = r+1, dist*2 {
		key := pe.syncKey(r)
		pe.sendCtl(p, (pe.id+dist)%n, key)
		pe.waitCtl(p, key, 1)
	}
	pe.syncEpoch++
}
