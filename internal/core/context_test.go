package core

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestContextIndependentQuiet(t *testing.T) {
	// Quieting one context must not wait for another context's bulk
	// transfer.
	w := newWorld(3, Options{})
	var smallQuietAt, bulkQuietAt sim.Time
	err := w.Run(func(p *sim.Proc, pe *PE) {
		bulkSym := pe.MustMalloc(p, 1<<20)
		flagSym := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			bulk := pe.CtxCreate()
			small := pe.CtxCreate()
			bulk.PutBytesNBI(p, 1, bulkSym, make([]byte, 1<<20))
			small.PutBytesNBI(p, 2, flagSym, make([]byte, 8))
			small.Quiet(p)
			smallQuietAt = p.Now()
			bulk.Quiet(p)
			bulkQuietAt = p.Now()
			bulk.Destroy(p)
			small.Destroy(p)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if smallQuietAt >= bulkQuietAt {
		t.Fatalf("small-context quiet (%v) should finish well before the bulk context (%v)",
			smallQuietAt, bulkQuietAt)
	}
}

func TestContextDataIntegrity(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 60_000
	want := bytes.Repeat([]byte{0xB7}, n)
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			ctx := pe.CtxCreate()
			ctx.PutBytesNBI(p, 2, sym, want)
			ctx.Quiet(p)
			ctx.Destroy(p)
		}
		pe.BarrierAll(p)
		if pe.ID() == 2 {
			got = make([]byte, n)
			pe.LocalRead(p, sym, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("context put corrupted")
	}
}

func TestContextGetNBI(t *testing.T) {
	w := newWorld(2, Options{})
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 1024)
		if pe.ID() == 1 {
			pe.LocalWrite(p, sym, bytes.Repeat([]byte{0x11}, 1024))
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			ctx := pe.CtxCreate()
			got = make([]byte, 1024)
			ctx.GetBytesNBI(p, 1, sym, got)
			if ctx.Outstanding() == 0 {
				t.Error("NBI get completed synchronously")
			}
			ctx.Quiet(p)
			ctx.Destroy(p)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0x11 {
			t.Fatal("context get corrupted")
		}
	}
}

func TestDestroyedContextPanics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			ctx := pe.CtxCreate()
			ctx.Destroy(p)
			func() {
				defer func() {
					if recover() == nil {
						t.Error("use after Destroy did not panic")
					}
				}()
				ctx.PutBytes(p, 1, sym, make([]byte, 8))
			}()
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeDrainsForgottenContexts(t *testing.T) {
	w := newWorld(2, Options{})
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 10_000)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			ctx := pe.CtxCreate()
			ctx.PutBytesNBI(p, 1, sym, bytes.Repeat([]byte{0x42}, 10_000))
			// No Quiet, no Destroy: Finalize must drain it.
		}
		pe.Finalize(p)
		if pe.ID() == 1 {
			got = make([]byte, 10_000)
			pe.heap.Read(int64(sym), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0x42 {
			t.Fatal("Finalize lost an undrained context's put")
		}
	}
}

func TestBlockingOpsOnContext(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 64)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			ctx := pe.CtxCreate()
			ctx.PutBytes(p, 1, sym, bytes.Repeat([]byte{7}, 64))
			buf := make([]byte, 64)
			ctx.GetBytes(p, 1, sym, buf)
			if buf[0] != 7 || buf[63] != 7 {
				t.Error("context blocking round trip corrupted")
			}
			ctx.Destroy(p)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}
