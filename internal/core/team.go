package core

import (
	"fmt"

	"repro/internal/sim"
)

// Teams (OpenSHMEM 1.5 shmem_team_*): first-class handles over PE
// subsets, superseding the positional active-set triples. A team owns
// its synchronisation area, translates between team-relative and world
// PE numbers, and scopes the collectives. On this runtime a team wraps
// an ActiveSet plus an internally managed pSync/pWrk, so user code gets
// the modern API without the classic interface's work-array plumbing.

// Team is a handle on a strided PE subset. Create with TeamWorld or
// TeamSplitStrided; destroy with Destroy. A team handle is only valid on
// member PEs.
type Team struct {
	pe    *PE
	set   ActiveSet
	pSync SymAddr
	pWrk  SymAddr
	pWrkN int // capacity in bytes
	dead  bool
}

// teamWrkBytes is the per-member scratch a team pre-allocates for its
// reductions; Reduce calls needing more fall back to gather chunking.
const teamWrkBytes = 8 << 10

// TeamWorld returns the team of all PEs (SHMEM_TEAM_WORLD). Every PE
// must call it at the same point; the team allocates its work areas from
// the symmetric heap.
func (pe *PE) TeamWorld(p *sim.Proc) *Team {
	return pe.newTeam(p, ActiveSet{Start: 0, LogStride: 0, Size: pe.NumPEs()})
}

// TeamSplitStrided is shmem_team_split_strided over the world team:
// members are start, start+stride, ... (size of them); stride must be a
// power of two (the runtime's sets are log-strided). Every PE of the
// PARENT (world) must call it with identical arguments — non-members
// receive nil, as the spec's SHMEM_TEAM_INVALID.
func (pe *PE) TeamSplitStrided(p *sim.Proc, start, stride, size int) *Team {
	logStride := 0
	switch {
	case stride <= 0:
		panic(fmt.Sprintf("core: team stride %d must be positive", stride))
	case stride&(stride-1) != 0:
		panic(fmt.Sprintf("core: team stride %d must be a power of two", stride))
	default:
		for s := stride; s > 1; s >>= 1 {
			logStride++
		}
	}
	set := ActiveSet{Start: start, LogStride: logStride, Size: size}
	set.validate(pe.NumPEs())
	// Allocation must happen on every parent PE to stay symmetric, even
	// on PEs that end up outside the team.
	team := pe.newTeam(p, set)
	if set.Rank(pe.id) < 0 {
		team.dead = true
		return nil
	}
	return team
}

func (pe *PE) newTeam(p *sim.Proc, set ActiveSet) *Team {
	t := &Team{
		pe:    pe,
		set:   set,
		pSync: pe.MustMalloc(p, BarrierSyncWords*8),
		pWrkN: set.Size * teamWrkBytes,
	}
	t.pWrk = pe.MustMalloc(p, t.pWrkN)
	zero := make([]byte, BarrierSyncWords*8)
	pe.heap.Write(int64(t.pSync), zero)
	// Team creation is collective over the world; the barrier keeps a
	// fast member from signalling into a work area a slower PE has not
	// allocated yet.
	pe.BarrierAll(p)
	return t
}

func (t *Team) checkLive() {
	if t == nil || t.dead {
		panic("core: operation on an invalid team handle")
	}
	t.pe.checkLive()
}

// MyPE returns the calling PE's team-relative rank
// (shmem_team_my_pe).
func (t *Team) MyPE() int {
	t.checkLive()
	return t.set.Rank(t.pe.id)
}

// NumPEs returns the team size (shmem_team_n_pes).
func (t *Team) NumPEs() int {
	t.checkLive()
	return t.set.Size
}

// TranslateTo returns the world PE Id of team rank r
// (shmem_team_translate_pe toward the world team).
func (t *Team) TranslateTo(r int) int {
	t.checkLive()
	if r < 0 || r >= t.set.Size {
		panic(fmt.Sprintf("core: team rank %d out of range [0,%d)", r, t.set.Size))
	}
	return t.set.Member(r)
}

// TranslateFrom returns the team rank of world PE id, or -1 if the PE is
// not a member.
func (t *Team) TranslateFrom(id int) int {
	t.checkLive()
	return t.set.Rank(id)
}

// Set returns the underlying active set (for interop with the classic
// collectives).
func (t *Team) Set() ActiveSet {
	t.checkLive()
	return t.set
}

// Barrier synchronises the team (shmem_team_sync).
func (t *Team) Barrier(p *sim.Proc) {
	t.checkLive()
	t.pe.BarrierSet(p, t.set, t.pSync)
}

// Broadcast sends nelems elements at src on the team rank root to every
// member's dst (shmem_broadcast over a team; root is team-relative).
func TeamBroadcast[T Scalar](p *sim.Proc, t *Team, root int, dst, src SymAddr, nelems int) {
	t.checkLive()
	BroadcastSet[T](p, t.pe, t.set, t.TranslateTo(root), dst, src, nelems, t.pSync)
}

// TeamReduce element-wise combines every member's vector at src into
// every member's dst (shmem_TYPE_OP_reduce over a team). The team's
// internal work area bounds nelems to teamWrkBytes/sizeof(T) per member.
func TeamReduce[T Scalar](p *sim.Proc, t *Team, op ReduceOp, dst, src SymAddr, nelems int) {
	t.checkLive()
	if nelems*sizeOf[T]() > teamWrkBytes {
		panic(fmt.Sprintf("core: team reduce of %d elements exceeds the %d-byte team work area",
			nelems, teamWrkBytes))
	}
	ReduceSet[T](p, t.pe, t.set, op, dst, src, nelems, t.pWrk, t.pSync)
}

// Destroy retires the team (shmem_team_destroy). Every member must call
// it at the same point; the handle is dead afterwards. The symmetric
// work areas are not returned to the heap — non-members of a split hold
// matching allocations but no handle, so freeing here would desymmetrise
// subsequent allocations; the space is reclaimed at Finalize like the
// rest of the heap.
func (t *Team) Destroy(p *sim.Proc) {
	t.checkLive()
	t.Barrier(p)
	t.dead = true
}
