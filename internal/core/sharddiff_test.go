package core

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// Shard-differential suite: the same OpenSHMEM programs run on one
// simulator and split across conservative-DES shards (PROTOCOL.md §14).
// A sharded run must be deterministic at any shard count, and for
// workloads inside the sharding's exactness domain (CPU-mode window
// writes, doorbells, scratchpad register traffic) the virtual timeline
// must match the single-simulator world exactly.

// newShardedWorld builds an n-host world over kind split across the
// given number of shards (1 builds the ordinary single-simulator world).
func newShardedWorld(t *testing.T, kind fabric.Kind, n, shards int, opts Options) *World {
	t.Helper()
	cfg := fabric.Config{Par: model.Default(), Hosts: n, Kind: kind, Shards: shards}
	if shards == 1 {
		cfg.Sim = sim.New()
	}
	c, err := fabric.New(cfg)
	if err != nil {
		t.Fatalf("building %d-host %s world with %d shards: %v", n, kind, shards, err)
	}
	return NewWorld(c, opts)
}

// shardTraceRun drives body on w and returns the op trace sorted into
// the canonical (PE, Start, Op, Target, Bytes) order. On a sharded
// world the trace hook fires concurrently from shard workers and events
// from different shards interleave in wall order, so the raw append
// order is not comparable; the sorted trace is (every event carries its
// own virtual timestamps, so sorting loses nothing).
func shardTraceRun(t *testing.T, w *World, body func(p *sim.Proc, pe *PE)) []OpEvent {
	t.Helper()
	var mu sync.Mutex
	var trace []OpEvent
	w.SetOpTrace(func(ev OpEvent) {
		mu.Lock()
		trace = append(trace, ev)
		mu.Unlock()
	})
	if err := w.RunKeep(body); err != nil {
		t.Fatal(err)
	}
	w.SetOpTrace(nil)
	sortOps(trace)
	return trace
}

func sortOps(tr []OpEvent) {
	sort.Slice(tr, func(a, b int) bool {
		if tr[a].PE != tr[b].PE {
			return tr[a].PE < tr[b].PE
		}
		if tr[a].Start != tr[b].Start {
			return tr[a].Start < tr[b].Start
		}
		if tr[a].Op != tr[b].Op {
			return tr[a].Op < tr[b].Op
		}
		return tr[a].Target < tr[b].Target
	})
}

// compareOps fails on the first diverging event of two sorted traces.
func compareOps(t *testing.T, label string, got, want []OpEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  got:  %+v\n  want: %+v", label, i, got[i], want[i])
		}
	}
}

// scaleBody is the sharding exactness-domain workload (the shape
// bench.ScaleWorkload runs): CPU-mode neighbour puts between two
// barriers. Pair it with Options{Mode: driver.ModeCPU}.
func scaleBody(rounds, putBytes int) func(p *sim.Proc, pe *PE) {
	return func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, putBytes)
		buf := make([]byte, putBytes)
		for i := range buf {
			buf[i] = byte(pe.ID() + i)
		}
		pe.BarrierAll(p)
		for r := 0; r < rounds; r++ {
			pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, buf)
		}
		pe.BarrierAll(p)
	}
}

// TestShardCountInvariance: for the exactness-domain workload, the op
// trace — every virtual start time and duration — is identical at every
// shard count, on both shardable backends.
func TestShardCountInvariance(t *testing.T) {
	cases := []struct {
		kind   fabric.Kind
		n      int
		shards []int
	}{
		{fabric.KindNTBRing, 8, []int{1, 2, 4}},
		{fabric.KindNTBRing, 4, []int{1, 2}},
		{fabric.KindNTBPair, 2, []int{1, 2}},
	}
	opts := Options{Mode: driver.ModeCPU}
	body := scaleBody(3, 2048)
	for _, tc := range cases {
		var ref []OpEvent
		for _, shards := range tc.shards {
			w := newShardedWorld(t, tc.kind, tc.n, shards, opts)
			tr := shardTraceRun(t, w, body)
			w.Cluster.ShutdownSim()
			if shards == tc.shards[0] {
				ref = tr
				continue
			}
			compareOps(t, tc.kind.String()+" shard-count invariance", tr, ref)
		}
	}
}

// TestShardedDeterminism: at a fixed shard count, two fresh worlds —
// and DMA-mode worlds, whose cross-shard transfer timing is modelled
// rather than exact — produce identical traces run-over-run.
func TestShardedDeterminism(t *testing.T) {
	for _, opts := range []Options{
		{Mode: driver.ModeCPU},
		{Mode: driver.ModeDMA},
	} {
		body := resetScript(17, 2, 4)
		a := newShardedWorld(t, fabric.KindNTBRing, 6, 3, opts)
		ta := shardTraceRun(t, a, body)
		a.Cluster.ShutdownSim()
		b := newShardedWorld(t, fabric.KindNTBRing, 6, 3, opts)
		tb := shardTraceRun(t, b, body)
		b.Cluster.ShutdownSim()
		compareOps(t, "mode "+opts.Mode.String()+" run-over-run", tb, ta)
		if len(ta) == 0 {
			t.Fatalf("mode %v: empty op trace", opts.Mode)
		}
	}
}

// TestShardedResetRerunEquivalence: a Reset sharded world replays the
// same body with an identical trace — the world-pool recycling
// invariant, now across shard members.
func TestShardedResetRerunEquivalence(t *testing.T) {
	body := resetScript(41, 2, 5)
	w := newShardedWorld(t, fabric.KindNTBRing, 6, 2, Options{})
	first := shardTraceRun(t, w, body)
	w.Reset()
	second := shardTraceRun(t, w, body)
	w.Cluster.ShutdownSim()
	compareOps(t, "sharded reset-rerun", second, first)
}

// TestShardedForkEquivalence: a sharded world forked from a sharded
// snapshot runs the snapshot's future identically to the captured world
// continuing in place.
func TestShardedForkEquivalence(t *testing.T) {
	prefix := resetScript(23, 2, 4)
	body := resetScript(61, 1, 5)

	ref := newShardedWorld(t, fabric.KindNTBRing, 6, 2, Options{})
	shardTraceRun(t, ref, prefix)
	snap := ref.Snapshot()
	var mu sync.Mutex
	var want []OpEvent
	ref.SetOpTrace(func(ev OpEvent) { mu.Lock(); want = append(want, ev); mu.Unlock() })
	if err := ref.RunKeepForked(body); err != nil {
		t.Fatal(err)
	}
	ref.Cluster.ShutdownSim()
	sortOps(want)

	child := newShardedWorld(t, fabric.KindNTBRing, 6, 2, Options{})
	child.Fork(snap)
	var got []OpEvent
	child.SetOpTrace(func(ev OpEvent) { mu.Lock(); got = append(got, ev); mu.Unlock() })
	if err := child.RunKeepForked(body); err != nil {
		t.Fatal(err)
	}
	child.Cluster.ShutdownSim()
	sortOps(got)
	compareOps(t, "sharded fork vs continuation", got, want)
}

// TestShardConstructionRejects: the shared-core fabrics cannot shard,
// and the config contract (member sims are built internally) is
// enforced.
func TestShardConstructionRejects(t *testing.T) {
	for _, kind := range []fabric.Kind{fabric.KindPCIeSwitch, fabric.KindCXL} {
		_, err := fabric.New(fabric.Config{Par: model.Default(), Hosts: 4, Kind: kind, Shards: 2})
		if err == nil || !strings.Contains(err.Error(), "cannot shard") {
			t.Errorf("%s with 2 shards: err %v, want cannot-shard", kind, err)
		}
	}
	if _, err := fabric.New(fabric.Config{Sim: sim.New(), Par: model.Default(), Hosts: 4, Kind: fabric.KindNTBRing, Shards: 2}); err == nil {
		t.Error("sharded config with a caller simulator accepted")
	}
	if _, err := fabric.New(fabric.Config{Par: model.Default(), Hosts: 2, Kind: fabric.KindNTBRing, Shards: 4}); err == nil {
		t.Error("more shards than hosts accepted")
	}
}

// TestClusterUnplugSurface: the uniform failure-injection surface.
// Point-to-point fabrics support Unplug on an unsharded world; sharded
// worlds and shared-core fabrics report why they cannot.
func TestClusterUnplugSurface(t *testing.T) {
	build := func(kind fabric.Kind, n, shards int) *fabric.Cluster {
		cfg := fabric.Config{Par: model.Default(), Hosts: n, Kind: kind, Shards: shards}
		if shards == 1 {
			cfg.Sim = sim.New()
		}
		c, err := fabric.New(cfg)
		if err != nil {
			t.Fatalf("building %s: %v", kind, err)
		}
		return c
	}

	ring := build(fabric.KindNTBRing, 3, 1)
	if err := ring.Unplug(0); err != nil {
		t.Errorf("unsharded ring Unplug: %v", err)
	}
	pair := build(fabric.KindNTBPair, 2, 1)
	if err := pair.Unplug(0); err != nil {
		t.Errorf("unsharded pair Unplug: %v", err)
	}
	shardedRing := build(fabric.KindNTBRing, 4, 2)
	if err := shardedRing.Unplug(0); err == nil || !strings.Contains(err.Error(), "-shards 1") {
		t.Errorf("sharded ring Unplug: err %v, want -shards 1 hint", err)
	}
	for _, kind := range []fabric.Kind{fabric.KindPCIeSwitch, fabric.KindCXL} {
		c := build(kind, 3, 1)
		err := c.Unplug(0)
		if err == nil || !strings.Contains(err.Error(), "unplug not supported on") {
			t.Errorf("%s Unplug: err %v, want not-supported", kind, err)
		}
	}
}
