package core

import (
	"fmt"

	"repro/internal/sim"
)

// Communication contexts (OpenSHMEM 1.4 shmem_ctx_*): independent
// completion domains. Non-blocking operations issued on a context are
// drained by that context's Quiet alone, so a latency-sensitive stream
// (say, per-iteration halo flags) never waits behind a bulk stream's
// completions. On this runtime a context is purely a bookkeeping
// domain — the wire protocol is shared — which matches how contexts map
// to completion queues on commodity RDMA hardware.

// Ctx is one communication context. Create with PE.CtxCreate; destroy
// with Ctx.Destroy. The zero value is invalid.
type Ctx struct {
	pe          *PE
	id          int
	outstanding int
	quietCond   *sim.Cond
	destroyed   bool
}

// CtxCreate returns a fresh context (shmem_ctx_create).
func (pe *PE) CtxCreate() *Ctx {
	pe.checkLive()
	pe.nextCtxID++
	c := &Ctx{
		pe:        pe,
		id:        pe.nextCtxID,
		quietCond: sim.NewCond(fmt.Sprintf("ctx-quiet:%d:%d", pe.id, pe.nextCtxID)),
	}
	pe.contexts = append(pe.contexts, c)
	return c
}

func (c *Ctx) checkLive() {
	c.pe.checkLive()
	if c.destroyed {
		panic(fmt.Sprintf("core: pe %d used destroyed context %d", c.pe.id, c.id))
	}
}

// PE returns the owning processing element.
func (c *Ctx) PE() *PE { return c.pe }

// Outstanding reports the context's queued non-blocking operations.
func (c *Ctx) Outstanding() int { return c.outstanding }

// PutBytes is the context-scoped blocking put; blocking operations are
// complete on return regardless of context, so this simply delegates.
func (c *Ctx) PutBytes(p *sim.Proc, target int, dst SymAddr, src []byte) {
	c.checkLive()
	c.pe.PutBytes(p, target, dst, src)
}

// GetBytes is the context-scoped blocking get.
func (c *Ctx) GetBytes(p *sim.Proc, target int, src SymAddr, dst []byte) {
	c.checkLive()
	c.pe.GetBytes(p, target, src, dst)
}

// PutBytesNBI queues a non-blocking put tracked by this context only.
func (c *Ctx) PutBytesNBI(p *sim.Proc, target int, dst SymAddr, src []byte) {
	c.checkLive()
	c.pe.checkPeer(target)
	c.spawn(fmt.Sprintf("ctx%d-put-nbi:%d->%d", c.id, c.pe.id, target), func(np *sim.Proc) {
		c.pe.PutBytes(np, target, dst, src)
	})
}

// GetBytesNBI queues a non-blocking get tracked by this context only.
func (c *Ctx) GetBytesNBI(p *sim.Proc, target int, src SymAddr, dst []byte) {
	c.checkLive()
	c.pe.checkPeer(target)
	c.spawn(fmt.Sprintf("ctx%d-get-nbi:%d<-%d", c.id, c.pe.id, target), func(np *sim.Proc) {
		c.pe.GetBytes(np, target, src, dst)
	})
}

func (c *Ctx) spawn(name string, op func(np *sim.Proc)) {
	c.outstanding++
	c.pe.hsim.Go(name, func(np *sim.Proc) {
		op(np)
		c.outstanding--
		if c.outstanding == 0 {
			c.quietCond.Broadcast()
		}
	})
}

// Quiet drains this context's non-blocking operations
// (shmem_ctx_quiet). Other contexts' operations are not waited for.
func (c *Ctx) Quiet(p *sim.Proc) {
	c.checkLive()
	for c.outstanding > 0 {
		c.quietCond.Wait(p)
	}
}

// Fence orders this context's deliveries; as with the default context,
// per-target FIFO paths make it equivalent to Quiet here.
func (c *Ctx) Fence(p *sim.Proc) { c.Quiet(p) }

// Destroy quiesces and retires the context (shmem_ctx_destroy).
func (c *Ctx) Destroy(p *sim.Proc) {
	c.Quiet(p)
	c.destroyed = true
	for i, other := range c.pe.contexts {
		if other == c {
			c.pe.contexts = append(c.pe.contexts[:i], c.pe.contexts[i+1:]...)
			break
		}
	}
}

// quietAllContexts drains every live context; Finalize calls it so a
// forgotten context cannot leak in-flight traffic past job teardown.
func (pe *PE) quietAllContexts(p *sim.Proc) {
	for _, c := range append([]*Ctx(nil), pe.contexts...) {
		c.Quiet(p)
	}
}
