package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestSendRecvBasic(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 40_000
	payload := bytes.Repeat([]byte{0x61}, n)
	var got []byte
	var gotN int
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.Send(p, 1, 42, payload)
		}
		if pe.ID() == 1 {
			got = make([]byte, n)
			gotN = pe.Recv(p, 0, 42, got)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotN != n || !bytes.Equal(got, payload) {
		t.Fatalf("recv %d bytes, corrupted=%v", gotN, !bytes.Equal(got, payload))
	}
}

func TestSendRecvShortMessageIntoBigBuffer(t *testing.T) {
	w := newWorld(2, Options{})
	var gotN int
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.Send(p, 1, 7, []byte("tiny"))
		} else {
			got = make([]byte, 1024)
			gotN = pe.Recv(p, 0, 7, got)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotN != 4 || string(got[:gotN]) != "tiny" {
		t.Fatalf("short recv = %d %q", gotN, got[:gotN])
	}
}

func TestSendRecvTagMatching(t *testing.T) {
	// Two sends with different tags; receives posted in the opposite
	// order still match correctly.
	w := newWorld(2, Options{})
	var a, b []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.Send(p, 1, 100, []byte("tag-hundred"))
			pe.Send(p, 1, 200, []byte("tag-two-hundred"))
		} else {
			// Post both receives before looking at either.
			bufA := make([]byte, 64)
			bufB := make([]byte, 64)
			// Recv blocks, so run them on helper procs via NBI-style
			// spawn to have both posted simultaneously.
			done := sim.NewCompletion("both")
			count := 0
			pe.world.Cluster.Sim.Go("recv200", func(np *sim.Proc) {
				n := pe.Recv(np, 0, 200, bufB)
				b = bufB[:n]
				if count++; count == 2 {
					done.Complete()
				}
			})
			n := pe.Recv(p, 0, 100, bufA)
			a = bufA[:n]
			if count++; count == 2 {
				done.Complete()
			}
			done.Wait(p)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != "tag-hundred" || string(b) != "tag-two-hundred" {
		t.Fatalf("tag matching broke: a=%q b=%q", a, b)
	}
}

func TestSendRecvAnySource(t *testing.T) {
	w := newWorld(4, Options{})
	var senders []int
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() != 0 {
			msg := []byte{byte(pe.ID())}
			pe.Send(p, 0, 5, msg)
		} else {
			for i := 0; i < 3; i++ {
				buf := make([]byte, 1)
				pe.Recv(p, AnySource, 5, buf)
				senders = append(senders, int(buf[0]))
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range senders {
		seen[s] = true
	}
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("any-source receives = %v", senders)
	}
}

func TestSendRecvManyMessagesOrdered(t *testing.T) {
	// Same-tag messages from one sender arrive in send order.
	w := newWorld(2, Options{})
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			for i := byte(0); i < 10; i++ {
				pe.Send(p, 1, 1, []byte{i})
			}
		} else {
			for i := 0; i < 10; i++ {
				buf := make([]byte, 1)
				pe.Recv(p, 0, 1, buf)
				got = append(got, buf[0])
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("message order broken: %v", got)
		}
	}
}

func TestSendRecvPingPongAcrossHops(t *testing.T) {
	// A 2-hop ping-pong (0 <-> 2 on a 3-ring) exercises the rendezvous
	// over forwarded paths.
	w := newWorld(3, Options{})
	const rounds = 4
	var final []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		buf := make([]byte, 8)
		switch pe.ID() {
		case 0:
			for r := 0; r < rounds; r++ {
				pe.Send(p, 2, int64(r), []byte(fmt.Sprintf("ping %03d", r)))
				pe.Recv(p, 2, int64(r), buf)
			}
			final = append([]byte(nil), buf...)
		case 2:
			for r := 0; r < rounds; r++ {
				pe.Recv(p, 0, int64(r), buf)
				copy(buf[:4], "pong")
				pe.Send(p, 0, int64(r), buf)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("pong %03d", rounds-1)
	if string(final) != want {
		t.Fatalf("ping-pong final = %q, want %q", final, want)
	}
}

func TestSendWithoutRecvFailsLoudly(t *testing.T) {
	// An unmatched send must not hang the simulation silently.
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			func() {
				defer func() { recover() }()
				pe.Send(p, 1, 999, []byte("into the void"))
				t.Error("unmatched send returned normally")
			}()
		}
	})
	// PE 0's panic is recovered in-body; the run itself may then
	// deadlock PE 1's absence of a barrier — accept either, but never a
	// silent success with a hung send.
	_ = err
}

func TestSendOverflowPanics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			buf := make([]byte, 4)
			pe.Recv(p, 0, 1, buf)
		}
		if pe.ID() == 0 {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("overflowing send did not panic")
					}
				}()
				pe.Send(p, 1, 1, []byte("way too large for that buffer"))
			}()
			// Unblock the receiver so the run can end.
			pe.Send(p, 1, 1, []byte("ok!!"))
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvLatencyAboveOneSidedPut(t *testing.T) {
	// The E2 claim: rendezvous costs more than a one-sided put.
	w := newWorld(2, Options{})
	const n = 64 << 10
	var sendLat, putLat sim.Duration
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		data := make([]byte, n)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			pe.PutBytes(p, 1, sym, data)
			putLat = p.Now().Sub(start)
		}
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			buf := make([]byte, n)
			pe.Recv(p, 0, 3, buf)
		}
		if pe.ID() == 0 {
			start := p.Now()
			pe.Send(p, 1, 3, data)
			sendLat = p.Now().Sub(start)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendLat <= putLat {
		t.Fatalf("two-sided send (%v) should cost more than one-sided put (%v)", sendLat, putLat)
	}
}
