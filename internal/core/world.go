// Package core implements the paper's contribution: an OpenSHMEM runtime
// over the switchless PCIe NTB ring — and, through the fabric.Link
// backend interface, over any other fabric the fabric package models
// (NTB pair, PCIe switch, CXL.mem window). The runtime itself contains
// no backend-specific branches; it speaks driver.Info messages through
// its per-host Link.
//
// One PE (processing element) runs per host, as in the paper's testbed.
// The runtime follows §III of the paper:
//
//   - shmem_init: boot-time Id/address exchange over scratchpads, doorbell
//     vector setup, bypass-buffer plumbing, and creation of the per-host
//     service thread (Fig 5) that handles DMAPUT/DMAGET interrupts;
//   - a symmetric heap with same-offset-on-every-PE semantics (Fig 3);
//   - Put/Get over the NTB windows in DMA or memcpy mode, with neighbour
//     fast path and bypass-buffer forwarding for multi-hop transfers
//     (Fig 4), put data routed rightward around the ring and get replies
//     returning leftward;
//   - the two-round ring start/end barrier of Fig 6, plus centralised and
//     dissemination barrier algorithms for the ablation study;
//   - the OpenSHMEM extensions the paper lists as essential: collectives,
//     remote atomics, distributed locks, and point-to-point sync.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/sim"
)

// SymAddr is a symmetric-heap address: the same value designates the same
// object on every PE (Fig 3(b) of the paper).
type SymAddr int64

// BarrierAlgo selects the barrier implementation.
type BarrierAlgo int

const (
	// BarrierRing is the paper's algorithm (Fig 6): host 0 circulates a
	// BARRIER_START doorbell round and then a BARRIER_END round.
	BarrierRing BarrierAlgo = iota
	// BarrierCentral gathers arrival tokens at host 0 and fans out
	// releases, the textbook centralised barrier the paper rejects.
	BarrierCentral
	// BarrierDissemination runs ceil(log2 N) pairwise rounds.
	BarrierDissemination
)

func (b BarrierAlgo) String() string {
	switch b {
	case BarrierCentral:
		return "central"
	case BarrierDissemination:
		return "dissemination"
	default:
		return "ring"
	}
}

// Routing selects how data is steered around a ring fabric; it now
// lives with the other fabric policy knobs (the aliases keep the
// historical core API).
type Routing = fabric.Routing

const (
	// RouteRightward is the paper's policy: all data travels rightward.
	RouteRightward = fabric.RouteRightward
	// RouteShortest sends each message around the shorter arc.
	RouteShortest = fabric.RouteShortest
)

// Options configure a World.
type Options struct {
	// Mode is the data-movement mechanism for puts, gets and forwarding:
	// driver.ModeDMA (default) or driver.ModeCPU (the paper's memcpy).
	Mode driver.Mode
	// Barrier selects the barrier algorithm; the default is the paper's
	// ring start/end protocol.
	Barrier BarrierAlgo
	// Routing selects the data steering policy; the default is the
	// paper's fixed rightward routing.
	Routing Routing
	// Pipeline selects the link protocol: 0 or 1 is the paper's
	// stop-and-wait scratchpad protocol; n >= 2 enables the pipelined
	// header-in-window protocol with n slots per link direction (the
	// paper's future-work latency reduction, ablation A6).
	Pipeline int
}

// Stats counts a PE's runtime activity.
type Stats struct {
	Puts, Gets      uint64 // API calls
	PutBytes        uint64
	GetBytes        uint64
	ChunksSent      uint64 // first-hop chunks pushed by this PE
	ChunksForwarded uint64 // transit chunks relayed by the service path
	AMOs            uint64
	Barriers        uint64
	Interrupts      uint64
}

// OpEvent describes one completed application-level operation, for the
// optional operation trace.
type OpEvent struct {
	PE     int
	Op     string // "put", "get", "amo", "barrier"
	Target int    // destination PE (-1 for collectives)
	Bytes  int
	Start  sim.Time
	Dur    sim.Duration
}

// World is one OpenSHMEM job running on a ring cluster.
type World struct {
	Cluster *fabric.Cluster
	par     *model.Params // reset: keep; snap: keep — construction identity
	opts    Options       // reset: keep — construction identity
	pes     []*PE
	opTrace func(OpEvent) // reset: keep; snap: keep — installed hooks survive recycling and forking
}

// SetOpTrace installs a hook receiving one event per completed
// application-level operation (puts, gets, atomics, barriers). The hook
// runs inline on the virtual timeline and must not block. On a sharded
// world (fabric.Config.Shards ≥ 2) shard workers invoke it concurrently,
// so it must be safe for concurrent use there. Install before Run; nil
// detaches.
func (w *World) SetOpTrace(fn func(OpEvent)) { w.opTrace = fn }

// emitOp reports a completed operation to the trace hook.
func (pe *PE) emitOp(p *sim.Proc, op string, target, bytes int, start sim.Time) {
	if fn := pe.world.opTrace; fn != nil {
		fn(OpEvent{
			PE: pe.id, Op: op, Target: target, Bytes: bytes,
			Start: start, Dur: p.Now().Sub(start),
		})
	}
}

// PE is a processing element: the application-visible handle for one
// host's OpenSHMEM runtime state. Everything interconnect-specific —
// routing, service/relay threads, doorbells, native barriers — lives
// behind the fabric.Link; the PE holds only fabric-agnostic protocol
// state.
type PE struct {
	id    int
	world *World         // reset: keep; snap: keep — construction identity
	link  fabric.Link    // construction identity; reset via its own Reset
	hsim  *sim.Simulator // reset: keep; snap: keep — construction identity: the host's (shard) simulator
	par   *model.Params  // reset: keep; snap: keep — construction identity
	mode  driver.Mode    // reset: keep; snap: keep — construction identity

	heap      *mem.Heap
	finalized bool

	barrierEpoch uint32
	syncEpoch    uint32

	// Control tokens for the alternative barrier algorithms (lazily
	// created on first token; most PEs of a ring-barrier world never
	// see one, and a 1k-PE world must not pay 1k empty maps).
	ctl     map[uint32]int
	ctlCond *sim.Cond // reset: keep; snap: keep — no waiters survive a clean run

	// Pending get/AMO requests by tag (lazily created on first request).
	pending map[uint32]*pendingReq
	nextTag uint32

	// Per-pSync-word monotone sequence numbers for the active-set
	// collectives (lazily created).
	pSyncCounts map[SymAddr]int64

	// Two-sided messaging match table (carved from the symmetric heap
	// during shmem_init).
	matchTable      SymAddr
	matchTableReady bool

	// Live communication contexts (shmem_ctx_*).
	contexts  []*Ctx
	nextCtxID int

	// Non-blocking operation tracking for Quiet.
	outstanding int
	quietCond   *sim.Cond // reset: keep; snap: keep — no waiters survive a clean run

	// Signalled whenever remote traffic writes this PE's heap.
	heapWrite *sim.Cond // reset: keep; snap: keep — no waiters survive a clean run

	stats Stats
}

// peName builds "prefix<id>" with plain integer formatting; world
// construction names a dozen queues, conds, and daemons per PE, and at
// a thousand PEs fmt's reflection cost shows up in pool-miss latency.
func peName(prefix string, id int) string {
	return prefix + strconv.Itoa(id)
}

// addPending registers an in-flight get/AMO under tag, creating the
// table on first use so idle PEs carry no request state.
func (pe *PE) addPending(tag uint32, req *pendingReq) {
	if pe.pending == nil {
		pe.pending = make(map[uint32]*pendingReq)
	}
	pe.pending[tag] = req
}

// pendingReq tracks one in-flight get or AMO issued by this PE.
type pendingReq struct {
	buf     []byte // get destination
	arrived int    // bytes landed so far
	value   uint64 // AMO reply payload
	replied bool
	cond    *sim.Cond
}

// NewWorld builds an OpenSHMEM job over the given cluster, whatever its
// fabric kind. Interrupt handlers and service threads are installed
// immediately (before virtual time starts), mirroring a driver that
// loads before the application.
func NewWorld(c *fabric.Cluster, opts Options) *World {
	if opts.Routing == RouteShortest && opts.Barrier != BarrierRing {
		// Only the ring barrier's per-hop flush has a bidirectional
		// variant; the token-counting algorithms would lose the
		// delivery guarantee under two-direction traffic.
		panic("core: RouteShortest requires the ring barrier")
	}
	links, err := c.Links(fabric.LinkOptions{
		Mode:     opts.Mode,
		Routing:  opts.Routing,
		Pipeline: opts.Pipeline,
	})
	if err != nil {
		panic("core: " + err.Error())
	}
	w := &World{Cluster: c, par: c.Par, opts: opts}
	for i, h := range c.Hosts {
		pe := &PE{
			id:        h.ID,
			world:     w,
			link:      links[i],
			hsim:      h.Sim,
			par:       c.Par,
			mode:      opts.Mode,
			heap:      mem.NewHeap(c.Par.SymHeapChunk, c.Par.SymHeapMax),
			ctlCond:   sim.NewCond(peName("ctl:", h.ID)),
			quietCond: sim.NewCond(peName("quiet:", h.ID)),
			heapWrite: sim.NewCond(peName("heap-write:", h.ID)),
		}
		w.pes = append(w.pes, pe)
		pe.link.Start(pe.handle)
	}
	return w
}

// Launch spawns one application process per PE running body, each on its
// host's shard simulator. Call Cluster.RunSim (or World.Run) afterwards
// to execute.
func (w *World) Launch(body func(p *sim.Proc, pe *PE)) {
	for _, pe := range w.pes {
		pe := pe
		pe.hsim.Go(peName("pe:", pe.id), func(p *sim.Proc) {
			pe.initPE(p)
			body(p, pe)
		})
	}
}

// Run launches body on every PE and drives the simulation to completion.
func (w *World) Run(body func(p *sim.Proc, pe *PE)) error {
	w.Launch(body)
	err := w.Cluster.RunSim()
	// Shut the simulator down so the world's daemon goroutines (service
	// threads, forwarders, DMA engines) release their references;
	// harnesses that build many worlds per process rely on this. Use
	// Launch plus Cluster.RunSim directly to keep a world alive.
	w.Cluster.ShutdownSim()
	return err
}

// RunKeep is Run without the teardown: the world's daemons stay parked
// and its object graph stays live, so a subsequent Reset can recycle the
// world for another body. A world run this way must eventually be either
// Reset and rerun or shut down via Cluster.ShutdownSim — dropping it
// while daemons are parked leaks their goroutines.
func (w *World) RunKeep(body func(p *sim.Proc, pe *PE)) error {
	w.Launch(body)
	return w.Cluster.RunSim()
}

// Reset rewinds a cleanly finished world (a nil-error RunKeep) to its
// just-constructed state: every PE's symmetric heap, barrier and request
// state return to power-on values, the fabric's device registers and
// dirty window extents are cleared, and the simulator returns to time
// zero. Service and forwarder daemons stay parked on their queues,
// doorbell handlers stay installed, and warm buffers (heap chunks,
// staging pool, event-heap backing) are retained. Because every layer's
// reset restores exactly the state a fresh construction would produce,
// a reset world replays any body with an event trace identical to a
// fresh world's — the invariant the bench world pool is built on.
func (w *World) Reset() {
	for _, pe := range w.pes {
		pe.reset()
	}
	w.Cluster.Reset()
}

// reset returns one PE to its just-constructed state. It panics if the
// runtime is not quiescent — pending requests, staged forwards, or
// un-drained service work mean the previous run did not complete cleanly
// and the world must be discarded instead of pooled.
func (pe *PE) reset() {
	pe.assertQuiescent("reset")
	pe.heap.Reset()
	pe.finalized = false
	pe.barrierEpoch = 0
	pe.syncEpoch = 0
	clear(pe.ctl)
	clear(pe.pSyncCounts)
	pe.nextTag = 0
	pe.matchTable = 0
	pe.matchTableReady = false
	pe.contexts = pe.contexts[:0]
	pe.nextCtxID = 0
	pe.stats = Stats{}
	pe.link.Reset()
}

// PEs returns the world's processing elements in Id order.
func (w *World) PEs() []*PE { return w.pes }

// StatsReport renders every PE's activity counters as an aligned table,
// for post-run inspection by tools and tests.
func (w *World) StatsReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %8s %10s %8s %10s %8s %8s %6s %9s %10s\n",
		"pe", "puts", "put-bytes", "gets", "get-bytes", "chunks", "fwd", "amos", "barriers", "interrupts")
	for _, pe := range w.pes {
		s := pe.Stats()
		fmt.Fprintf(&b, "%-4d %8d %10d %8d %10d %8d %8d %6d %9d %10d\n",
			pe.id, s.Puts, s.PutBytes, s.Gets, s.GetBytes,
			s.ChunksSent, s.ChunksForwarded, s.AMOs, s.Barriers, s.Interrupts)
	}
	return b.String()
}

// initPE is shmem_init: the fabric's boot exchange plus a barrier so no
// PE proceeds before every runtime is reachable.
func (pe *PE) initPE(p *sim.Proc) {
	pe.link.Boot(p)
	pe.initMatchTable(p)
	pe.BarrierAll(p)
}

// ID returns this PE's number (my_pe in Table I).
func (pe *PE) ID() int { return pe.id }

// NumPEs returns the job size (num_pes in Table I).
func (pe *PE) NumPEs() int { return pe.world.Cluster.N() }

// Mode returns the PE's data-movement mode.
func (pe *PE) Mode() driver.Mode { return pe.mode }

// Stats returns a copy of the PE's activity counters, merged with the
// fabric-level counters its link accumulated on the PE's behalf.
func (pe *PE) Stats() Stats {
	s := pe.stats
	ls := pe.link.Stats()
	s.Interrupts = ls.Interrupts
	s.ChunksForwarded = ls.ChunksForwarded
	return s
}

// GlobalExitError reports that a PE terminated the whole job with
// shmem_global_exit.
type GlobalExitError struct {
	PE   int
	Code int
}

func (e *GlobalExitError) Error() string {
	return fmt.Sprintf("core: pe %d called global_exit(%d)", e.PE, e.Code)
}

// GlobalExit is shmem_global_exit: it terminates the entire job
// immediately with the given status. The enclosing World.Run returns a
// *GlobalExitError (wrapped by the simulator); no synchronisation with
// other PEs happens.
func (pe *PE) GlobalExit(p *sim.Proc, code int) {
	pe.checkLive()
	panic(&GlobalExitError{PE: pe.id, Code: code})
}

// Finalize is shmem_finalize: it drains outstanding work, synchronises,
// and releases the symmetric heap. The PE must not be used afterwards.
func (pe *PE) Finalize(p *sim.Proc) {
	pe.quietAllContexts(p)
	pe.Quiet(p)
	pe.BarrierAll(p)
	pe.finalized = true
}

func (pe *PE) checkLive() {
	if pe.finalized {
		panic(fmt.Sprintf("core: pe %d used after Finalize", pe.id))
	}
}

func (pe *PE) checkPeer(target int) {
	if target < 0 || target >= pe.NumPEs() {
		panic(fmt.Sprintf("core: pe %d addressed nonexistent PE %d", pe.id, target))
	}
}

// newTag mints a fresh request tag.
func (pe *PE) newTag() uint32 {
	pe.nextTag++
	return pe.nextTag
}
