package core

import (
	"fmt"
	"math"

	"repro/internal/driver"
	"repro/internal/sim"
)

// Atomic memory operations. OpenSHMEM requires remote atomics on
// symmetric data; the paper lists them among the essential features but
// does not describe a hardware path for them (PEX NTB has no remote
// atomic TLPs). Our design — documented in DESIGN.md — executes every AMO
// at the owner PE's service thread: the request rides the ordinary
// message path with its operands in a 16-byte payload, the owner applies
// it between data deliveries (which serialises all atomics on a given
// host), and the old value returns like a one-element get. Self-targeted
// AMOs apply directly, which is safe for the same reason: the service
// thread and the application never run concurrently on the virtual
// processor.

// AMOOp identifies an atomic operation.
type AMOOp uint8

const (
	// AMOFetch returns the current value.
	AMOFetch AMOOp = iota + 1
	// AMOSet stores operand1, returning the old value.
	AMOSet
	// AMOAdd adds operand1, returning the old value (fetch-add).
	AMOAdd
	// AMOSwap stores operand1 and returns the old value.
	AMOSwap
	// AMOCSwap stores operand2 if the current value equals operand1,
	// returning the old value either way.
	AMOCSwap
	// AMOAnd, AMOOr, AMOXor apply the bitwise op with operand1,
	// returning the old value.
	AMOAnd
	AMOOr
	AMOXor
)

func (op AMOOp) String() string {
	switch op {
	case AMOFetch:
		return "fetch"
	case AMOSet:
		return "set"
	case AMOAdd:
		return "add"
	case AMOSwap:
		return "swap"
	case AMOCSwap:
		return "cswap"
	case AMOAnd:
		return "and"
	case AMOOr:
		return "or"
	case AMOXor:
		return "xor"
	default:
		return fmt.Sprintf("amo(%d)", uint8(op))
	}
}

// amoWidth is the operand width; the runtime supports the OpenSHMEM
// 32- and 64-bit AMO type classes.
type amoWidth uint8

const (
	width32 amoWidth = 4
	width64 amoWidth = 8
)

// applyAMO executes an AMO at the owner. operands carries
// (operand1, operand2) little-endian. Returns the old value, widened.
func (pe *PE) applyAMO(p *sim.Proc, info driver.Info, operands [16]byte) uint64 {
	op := AMOOp(info.Aux & 0xFF)
	w := amoWidth(info.Aux >> 8 & 0xFF)
	pe.checkHeapRange(SymAddr(info.SymOff), int(w))
	p.Sleep(pe.par.LocalMMIO) // read-modify-write cost at the owner
	o1 := le.Uint64(operands[0:8])
	o2 := le.Uint64(operands[8:16])

	var buf [8]byte
	pe.heap.Read(int64(info.SymOff), buf[:w])
	var old uint64
	if w == width32 {
		old = uint64(le.Uint32(buf[:4]))
	} else {
		old = le.Uint64(buf[:8])
	}

	apply := true
	var next uint64
	switch op {
	case AMOFetch:
		apply = false
	case AMOSet, AMOSwap:
		next = o1
	case AMOAdd:
		next = old + o1
	case AMOCSwap:
		if old == o1 {
			next = o2
		} else {
			apply = false
		}
	case AMOAnd:
		next = old & o1
	case AMOOr:
		next = old | o1
	case AMOXor:
		next = old ^ o1
	default:
		panic(fmt.Sprintf("core: pe %d unknown AMO op %v", pe.id, op))
	}
	if apply {
		if w == width32 {
			le.PutUint32(buf[:4], uint32(next))
		} else {
			le.PutUint64(buf[:8], next)
		}
		pe.heap.Write(int64(info.SymOff), buf[:w])
	}
	pe.stats.AMOs++
	return old
}

// amo issues one atomic against target's symmetric object and blocks for
// the old value.
func (pe *PE) amo(p *sim.Proc, target int, addr SymAddr, op AMOOp, w amoWidth, o1, o2 uint64) uint64 {
	pe.checkLive()
	pe.checkPeer(target)
	opStart := p.Now()
	defer pe.emitOp(p, "amo", target, int(w), opStart)
	p.Sleep(pe.par.PutSoftware)
	var operands [16]byte
	le.PutUint64(operands[0:8], o1)
	le.PutUint64(operands[8:16], o2)
	if target == pe.id {
		info := driver.Info{SymOff: uint64(addr), Aux: uint64(op) | uint64(w)<<8}
		old := pe.applyAMO(p, info, operands)
		pe.heapWrite.Broadcast()
		return old
	}
	tag := pe.newTag()
	req := &pendingReq{cond: sim.NewCond(fmt.Sprintf("amo:%d:%d", pe.id, tag))}
	pe.addPending(tag, req)
	defer delete(pe.pending, tag)
	info := driver.Info{
		Kind:   driver.KindAMO,
		Src:    uint16(pe.id),
		Dst:    uint16(target),
		Size:   16,
		SymOff: uint64(addr),
		Tag:    tag,
		Aux:    uint64(op) | uint64(w)<<8,
	}
	pe.link.Send(p, info, driver.Payload{Buf: operands[:], N: 16})
	for !req.replied {
		req.cond.Wait(p)
	}
	p.Sleep(pe.par.AppWake)
	pe.stats.AMOs++
	return req.value
}

// ---- 64-bit API (shmem_int64_atomic_*) ----

// FetchInt64 atomically reads target's symmetric int64 at addr.
func (pe *PE) FetchInt64(p *sim.Proc, target int, addr SymAddr) int64 {
	return int64(pe.amo(p, target, addr, AMOFetch, width64, 0, 0))
}

// SetInt64 atomically stores v.
func (pe *PE) SetInt64(p *sim.Proc, target int, addr SymAddr, v int64) {
	pe.amo(p, target, addr, AMOSet, width64, uint64(v), 0)
}

// FetchAddInt64 atomically adds delta and returns the previous value.
func (pe *PE) FetchAddInt64(p *sim.Proc, target int, addr SymAddr, delta int64) int64 {
	return int64(pe.amo(p, target, addr, AMOAdd, width64, uint64(delta), 0))
}

// AddInt64 atomically adds delta.
func (pe *PE) AddInt64(p *sim.Proc, target int, addr SymAddr, delta int64) {
	pe.amo(p, target, addr, AMOAdd, width64, uint64(delta), 0)
}

// IncInt64 atomically increments.
func (pe *PE) IncInt64(p *sim.Proc, target int, addr SymAddr) {
	pe.AddInt64(p, target, addr, 1)
}

// FetchIncInt64 atomically increments and returns the previous value.
func (pe *PE) FetchIncInt64(p *sim.Proc, target int, addr SymAddr) int64 {
	return pe.FetchAddInt64(p, target, addr, 1)
}

// SwapInt64 atomically stores v and returns the previous value.
func (pe *PE) SwapInt64(p *sim.Proc, target int, addr SymAddr, v int64) int64 {
	return int64(pe.amo(p, target, addr, AMOSwap, width64, uint64(v), 0))
}

// CompareSwapInt64 atomically stores next if the current value equals
// cond, returning the previous value either way.
func (pe *PE) CompareSwapInt64(p *sim.Proc, target int, addr SymAddr, cond, next int64) int64 {
	return int64(pe.amo(p, target, addr, AMOCSwap, width64, uint64(cond), uint64(next)))
}

// AndInt64, OrInt64 and XorInt64 apply bitwise atomics.
func (pe *PE) AndInt64(p *sim.Proc, target int, addr SymAddr, v int64) {
	pe.amo(p, target, addr, AMOAnd, width64, uint64(v), 0)
}

// OrInt64 applies a bitwise-or atomic.
func (pe *PE) OrInt64(p *sim.Proc, target int, addr SymAddr, v int64) {
	pe.amo(p, target, addr, AMOOr, width64, uint64(v), 0)
}

// XorInt64 applies a bitwise-xor atomic.
func (pe *PE) XorInt64(p *sim.Proc, target int, addr SymAddr, v int64) {
	pe.amo(p, target, addr, AMOXor, width64, uint64(v), 0)
}

// ---- 32-bit API ----

// FetchAddInt32 atomically adds delta and returns the previous value.
func (pe *PE) FetchAddInt32(p *sim.Proc, target int, addr SymAddr, delta int32) int32 {
	return int32(pe.amo(p, target, addr, AMOAdd, width32, uint64(uint32(delta)), 0))
}

// FetchInt32 atomically reads.
func (pe *PE) FetchInt32(p *sim.Proc, target int, addr SymAddr) int32 {
	return int32(pe.amo(p, target, addr, AMOFetch, width32, 0, 0))
}

// SetInt32 atomically stores v.
func (pe *PE) SetInt32(p *sim.Proc, target int, addr SymAddr, v int32) {
	pe.amo(p, target, addr, AMOSet, width32, uint64(uint32(v)), 0)
}

// CompareSwapInt32 is the 32-bit compare-and-swap.
func (pe *PE) CompareSwapInt32(p *sim.Proc, target int, addr SymAddr, cond, next int32) int32 {
	return int32(pe.amo(p, target, addr, AMOCSwap, width32, uint64(uint32(cond)), uint64(uint32(next))))
}

// ---- Floating-point atomics ----
//
// OpenSHMEM's extended AMO set gives float/double atomic fetch, set and
// swap (no arithmetic AMOs). They ride the integer machinery by bit
// reinterpretation, which is exactly how hardware implements them.

// FetchFloat64 atomically reads target's symmetric float64 at addr.
func (pe *PE) FetchFloat64(p *sim.Proc, target int, addr SymAddr) float64 {
	return math.Float64frombits(pe.amo(p, target, addr, AMOFetch, width64, 0, 0))
}

// SetFloat64 atomically stores v.
func (pe *PE) SetFloat64(p *sim.Proc, target int, addr SymAddr, v float64) {
	pe.amo(p, target, addr, AMOSet, width64, math.Float64bits(v), 0)
}

// SwapFloat64 atomically stores v and returns the previous value.
func (pe *PE) SwapFloat64(p *sim.Proc, target int, addr SymAddr, v float64) float64 {
	return math.Float64frombits(pe.amo(p, target, addr, AMOSwap, width64, math.Float64bits(v), 0))
}

// FetchFloat32 atomically reads target's symmetric float32 at addr.
func (pe *PE) FetchFloat32(p *sim.Proc, target int, addr SymAddr) float32 {
	return math.Float32frombits(uint32(pe.amo(p, target, addr, AMOFetch, width32, 0, 0)))
}

// SetFloat32 atomically stores v.
func (pe *PE) SetFloat32(p *sim.Proc, target int, addr SymAddr, v float32) {
	pe.amo(p, target, addr, AMOSet, width32, uint64(math.Float32bits(v)), 0)
}

// SwapFloat32 atomically stores v and returns the previous value.
func (pe *PE) SwapFloat32(p *sim.Proc, target int, addr SymAddr, v float32) float32 {
	return math.Float32frombits(uint32(pe.amo(p, target, addr, AMOSwap, width32, uint64(math.Float32bits(v)), 0)))
}

// ---- Distributed locks (shmem_set_lock / clear / test) ----

// lockHome is the PE whose copy of the lock variable arbitrates it, the
// convention used by reference OpenSHMEM implementations.
const lockHome = 0

// SetLock acquires a distributed lock backed by the symmetric int64 at
// addr, spinning with exponential backoff on a remote compare-and-swap.
func (pe *PE) SetLock(p *sim.Proc, addr SymAddr) {
	backoff := sim.Microseconds(2)
	const maxBackoff = sim.Duration(200 * sim.Microsecond)
	for {
		old := pe.CompareSwapInt64(p, lockHome, addr, 0, int64(pe.id)+1)
		if old == 0 {
			return
		}
		p.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// ClearLock releases a lock held by this PE. Releasing a lock the PE does
// not hold is a usage error and panics without disturbing the lock word.
func (pe *PE) ClearLock(p *sim.Proc, addr SymAddr) {
	token := int64(pe.id) + 1
	old := pe.CompareSwapInt64(p, lockHome, addr, token, 0)
	if old != token {
		panic(fmt.Sprintf("core: pe %d cleared lock it does not hold (owner token %d)", pe.id, old))
	}
}

// TestLock tries to acquire without blocking; it returns true on success
// (note: C shmem_test_lock returns 0 on success).
func (pe *PE) TestLock(p *sim.Proc, addr SymAddr) bool {
	return pe.CompareSwapInt64(p, lockHome, addr, 0, int64(pe.id)+1) == 0
}
