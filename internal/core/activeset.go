package core

import (
	"fmt"

	"repro/internal/sim"
)

// Active sets: classic SHMEM collectives operate over the strided PE
// subset (PE_start, logPE_stride, PE_size), with caller-provided
// symmetric work areas (pSync, pWrk). This file implements that
// interface generation, which the OpenSHMEM 1.x standard the paper
// targets carries throughout its collectives chapter.
//
// Unlike the whole-job BarrierAll, a set barrier cannot ride the ring
// doorbell protocol (non-members never touch their doorbells), so it is
// built from puts and wait-untils over pSync — exactly how pSync-based
// implementations work on real hardware. Consequently BarrierSet
// synchronises its members and orders same-path traffic between them,
// but only BarrierAll guarantees that arbitrary multi-hop puts are fully
// delivered; the doc comments state this.

// ActiveSet is the classic SHMEM (PE_start, logPE_stride, PE_size)
// triple.
type ActiveSet struct {
	Start     int // first member PE
	LogStride int // log2 of the stride between members
	Size      int // number of members
}

// BarrierSyncWords is the pSync size (in 8-byte words) BarrierSet
// requires: enough for the dissemination rounds of any job this library
// can host (2^16 PEs).
const BarrierSyncWords = 16

// validate panics when the set does not fit the world.
func (as ActiveSet) validate(n int) {
	if as.Size <= 0 || as.LogStride < 0 || as.Start < 0 {
		panic(fmt.Sprintf("core: malformed active set %+v", as))
	}
	last := as.Start + (as.Size-1)<<as.LogStride
	if last >= n {
		panic(fmt.Sprintf("core: active set %+v exceeds %d PEs", as, n))
	}
}

// Member returns the PE Id of rank i within the set.
func (as ActiveSet) Member(i int) int {
	return as.Start + i<<as.LogStride
}

// Rank returns this PE's rank within the set, or -1 if not a member.
func (as ActiveSet) Rank(pe int) int {
	d := pe - as.Start
	stride := 1 << as.LogStride
	if d < 0 || d%stride != 0 || d/stride >= as.Size {
		return -1
	}
	return d / stride
}

// Members returns the set's PE Ids in rank order.
func (as ActiveSet) Members() []int {
	out := make([]int, as.Size)
	for i := range out {
		out[i] = as.Member(i)
	}
	return out
}

// mustRank returns the calling PE's rank, panicking for non-members
// (calling a collective one does not belong to is a usage error).
func (pe *PE) mustRank(as ActiveSet) int {
	as.validate(pe.NumPEs())
	r := as.Rank(pe.id)
	if r < 0 {
		panic(fmt.Sprintf("core: pe %d is not in active set %+v", pe.id, as))
	}
	return r
}

// pSyncSeq returns the strictly increasing sequence number for this
// call site's pSync area, so the area never needs re-initialisation
// between uses (values only grow, and waits use CmpGE).
func (pe *PE) pSyncSeq(pSync SymAddr) int64 {
	if pe.pSyncCounts == nil {
		pe.pSyncCounts = make(map[SymAddr]int64)
	}
	pe.pSyncCounts[pSync]++
	return pe.pSyncCounts[pSync]
}

// BarrierSet is shmem_barrier(PE_start, logPE_stride, PE_size, pSync):
// a dissemination barrier over the set's members. pSync must be a
// symmetric allocation of at least BarrierSyncWords*8 bytes, allocated
// by every PE (symmetry requirement), and may be reused freely.
//
// On return, every member has entered the barrier, and any prior
// same-direction traffic between members on the paths the tokens took is
// delivered. For a guarantee covering arbitrary multi-hop puts, use
// BarrierAll.
func (pe *PE) BarrierSet(p *sim.Proc, as ActiveSet, pSync SymAddr) {
	rank := pe.mustRank(as)
	pe.checkHeapRange(pSync, BarrierSyncWords*8)
	if as.Size == 1 {
		return
	}
	pe.Quiet(p)
	seq := pe.pSyncSeq(pSync)
	for r, dist := 0, 1; dist < as.Size; r, dist = r+1, dist*2 {
		if r >= BarrierSyncWords {
			panic("core: active set too large for pSync")
		}
		peer := as.Member((rank + dist) % as.Size)
		slot := pSync + SymAddr(r*8)
		PutScalar[int64](p, pe, peer, slot, seq)
		pe.WaitUntilInt64(p, slot, CmpGE, seq)
	}
}

// pSync word layout: the dissemination rounds of BarrierSet use words
// 0..11; the data collectives use dedicated counter words above them so
// one pSync area serves every call site.
const (
	pSyncReduceArrive  = 12
	pSyncReduceRelease = 13
	pSyncBcastFlag     = 14
)

// BroadcastSet is shmem_broadcast over an active set: root (an absolute
// PE Id that must be a member) sends nelems elements at src to every
// other member's dst. All members must call with identical arguments.
//
// Delivery is guaranteed on return: the root's per-member ready flag
// rides the same FIFO ring path as that member's data, so a member that
// observes the flag holds the data.
func BroadcastSet[T Scalar](p *sim.Proc, pe *PE, as ActiveSet, root int, dst, src SymAddr, nelems int, pSync SymAddr) {
	pe.mustRank(as)
	if as.Rank(root) < 0 {
		panic(fmt.Sprintf("core: broadcast root %d outside active set %+v", root, as))
	}
	pe.checkHeapRange(pSync, BarrierSyncWords*8)
	flag := pSync + SymAddr(pSyncBcastFlag*8)
	seq := pe.pSyncSeq(flag)
	if pe.id == root {
		buf := make([]T, nelems)
		LocalGet(p, pe, src, buf)
		for _, m := range as.Members() {
			if m == root {
				if dst != src {
					LocalPut(p, pe, dst, buf)
				}
				continue
			}
			Put(p, pe, m, dst, buf)
			pe.AddInt64(p, m, flag, 1) // ordered behind the data
		}
		return
	}
	pe.WaitUntilInt64(p, flag, CmpGE, seq)
}

// ReduceSet is shmem_TYPE_OP_to_all over an active set. pWrk must be a
// symmetric area of at least Size*nelems elements, allocated by every
// PE; dst and src may alias. All members call with identical arguments.
//
// The protocol is gather-to-head / reduce / fan-out, with ordered
// arrival and release counters instead of barriers: every counter update
// follows its data on the same FIFO path, so observation implies
// delivery.
func ReduceSet[T Scalar](p *sim.Proc, pe *PE, as ActiveSet, op ReduceOp, dst, src SymAddr, nelems int, pWrk, pSync SymAddr) {
	rank := pe.mustRank(as)
	es := sizeOf[T]()
	pe.checkHeapRange(pWrk, as.Size*nelems*es)
	pe.checkHeapRange(pSync, BarrierSyncWords*8)
	head := as.Member(0)
	arrive := pSync + SymAddr(pSyncReduceArrive*8)
	release := pSync + SymAddr(pSyncReduceRelease*8)
	seq := pe.pSyncSeq(release)

	contrib := make([]T, nelems)
	LocalGet(p, pe, src, contrib)
	slot := pWrk + SymAddr(rank*nelems*es)
	if pe.id != head {
		Put(p, pe, head, slot, contrib)
		pe.AddInt64(p, head, arrive, 1) // ordered behind the contribution
		pe.WaitUntilInt64(p, release, CmpGE, seq)
		return
	}

	LocalPut(p, pe, slot, contrib)
	pe.WaitUntilInt64(p, arrive, CmpGE, seq*int64(as.Size-1))
	acc := make([]T, nelems)
	LocalGet(p, pe, pWrk, acc)
	row := make([]T, nelems)
	for rk := 1; rk < as.Size; rk++ {
		LocalGet(p, pe, pWrk+SymAddr(rk*nelems*es), row)
		for i := range acc {
			acc[i] = combine(op, acc[i], row[i])
		}
	}
	LocalPut(p, pe, dst, acc)
	for rk := 1; rk < as.Size; rk++ {
		m := as.Member(rk)
		Put(p, pe, m, dst, acc)
		pe.AddInt64(p, m, release, 1) // ordered behind the result
	}
}
