package core

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// These tests pin the invariant World.Reset is built on: a reset world
// replays any body with an event trace identical to a freshly
// constructed world's. The bench world pool recycles worlds on the
// strength of this property; if it ever breaks, pooled runs would
// silently drift from the published CSVs.

// resetScript returns a deterministic randomized put/get/AMO/barrier
// workload. Each PE derives its own op stream from the seed and its Id,
// and every PE executes the same number of barriers, so the script is
// collective-safe and replayable.
func resetScript(seed int64, rounds, opsPerRound int) func(p *sim.Proc, pe *PE) {
	return func(p *sim.Proc, pe *PE) {
		n := pe.NumPEs()
		rng := rand.New(rand.NewSource(seed + int64(pe.ID())*7919))
		sym := pe.MustMalloc(p, 4096)
		ctr := pe.MustMalloc(p, 8)
		buf := make([]byte, 1024)
		pe.BarrierAll(p)
		for r := 0; r < rounds; r++ {
			for o := 0; o < opsPerRound; o++ {
				tgt := rng.Intn(n)
				size := 64 + rng.Intn(len(buf)-64)
				switch rng.Intn(3) {
				case 0:
					for i := range buf[:size] {
						buf[i] = byte(rng.Intn(256))
					}
					pe.PutBytes(p, tgt, sym, buf[:size])
				case 1:
					pe.GetBytes(p, tgt, sym, buf[:size])
				default:
					pe.AddInt64(p, tgt, ctr, int64(rng.Intn(100)))
				}
			}
			pe.BarrierAll(p)
		}
	}
}

// traceRun executes body on w via RunKeep with the op trace attached and
// returns the captured events, the final virtual time, and PE 0's stats.
// The world is left resettable (daemons parked, trace detached).
func traceRun(t *testing.T, w *World, body func(p *sim.Proc, pe *PE)) ([]OpEvent, sim.Time, Stats) {
	t.Helper()
	var trace []OpEvent
	w.SetOpTrace(func(ev OpEvent) { trace = append(trace, ev) })
	if err := w.RunKeep(body); err != nil {
		t.Fatal(err)
	}
	w.SetOpTrace(nil)
	return trace, w.Cluster.Sim.Now(), w.PEs()[0].Stats()
}

func TestResetEquivalentToFreshWorld(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"pipelined-shortest", Options{Pipeline: 4, Routing: RouteShortest}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := resetScript(17, 3, 6)
			second := resetScript(42, 4, 5)

			// Recycled world: run one workload, reset, run another.
			recycled := newWorld(4, tc.opts)
			traceRun(t, recycled, first)
			recycled.Reset()
			if now := recycled.Cluster.Sim.Now(); now != 0 {
				t.Fatalf("reset world starts at t=%v, want 0", now)
			}
			gotTrace, gotEnd, gotStats := traceRun(t, recycled, second)
			recycled.Cluster.Sim.Shutdown()

			// Reference: the same second workload on a fresh world.
			fresh := newWorld(4, tc.opts)
			wantTrace, wantEnd, wantStats := traceRun(t, fresh, second)
			fresh.Cluster.Sim.Shutdown()

			if gotEnd != wantEnd {
				t.Errorf("completion time: reset world %v, fresh world %v", gotEnd, wantEnd)
			}
			if gotStats != wantStats {
				t.Errorf("pe 0 stats: reset world %+v, fresh world %+v", gotStats, wantStats)
			}
			if len(gotTrace) != len(wantTrace) {
				t.Fatalf("trace length: reset world %d events, fresh world %d", len(gotTrace), len(wantTrace))
			}
			for i := range gotTrace {
				if gotTrace[i] != wantTrace[i] {
					t.Fatalf("trace diverges at event %d:\n  reset: %+v\n  fresh: %+v", i, gotTrace[i], wantTrace[i])
				}
			}
		})
	}
}

func TestResetRepeatedRecycling(t *testing.T) {
	// The same body replayed on one world must give the identical trace
	// every cycle, including the virtual-event count.
	body := resetScript(7, 2, 8)
	w := newWorld(3, Options{})
	defer w.Cluster.Sim.Shutdown()

	ref, refEnd, refStats := traceRun(t, w, body)
	freshEvents := w.Cluster.Sim.EventsExecuted()
	var recycledEvents uint64
	for cycle := 0; cycle < 3; cycle++ {
		w.Reset()
		if got := w.Cluster.Sim.EventsExecuted(); got != 0 {
			t.Fatalf("cycle %d: EventsExecuted = %d after Reset, want 0", cycle, got)
		}
		trace, end, stats := traceRun(t, w, body)
		if end != refEnd || stats != refStats {
			t.Fatalf("cycle %d: end %v stats %+v, want %v %+v", cycle, end, stats, refEnd, refStats)
		}
		// A fresh world's first run additionally executes the one-time
		// daemon-spawn events (service threads, forwarders, DMA engines);
		// recycled runs skip those and must agree with each other exactly.
		events := w.Cluster.Sim.EventsExecuted()
		if cycle == 0 {
			recycledEvents = events
			if events > freshEvents {
				t.Fatalf("recycled run executed %d events, more than the fresh run's %d", events, freshEvents)
			}
		} else if events != recycledEvents {
			t.Fatalf("cycle %d: %d virtual events, want %d", cycle, events, recycledEvents)
		}
		if len(trace) != len(ref) {
			t.Fatalf("cycle %d: %d events, want %d", cycle, len(trace), len(ref))
		}
		for i := range trace {
			if trace[i] != ref[i] {
				t.Fatalf("cycle %d: trace diverges at event %d: %+v vs %+v", cycle, i, trace[i], ref[i])
			}
		}
	}
}

func TestResetZeroesSymmetricHeap(t *testing.T) {
	// A recycled world must hand out fresh-zero memory: AppMatmul-style
	// signal waits depend on malloc'd words starting at zero.
	w := newWorld(3, Options{})
	defer w.Cluster.Sim.Shutdown()

	dirty := func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 256)
		pe.BarrierAll(p)
		buf := make([]byte, 256)
		for i := range buf {
			buf[i] = 0xAB
		}
		pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, buf)
		pe.BarrierAll(p)
	}
	if err := w.RunKeep(dirty); err != nil {
		t.Fatal(err)
	}
	w.Reset()

	var stale bool
	if err := w.RunKeep(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 256)
		pe.BarrierAll(p)
		got := make([]byte, 256)
		pe.GetBytes(p, pe.ID(), sym, got)
		for _, b := range got {
			if b != 0 {
				stale = true
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Fatal("recycled world handed out non-zero symmetric memory")
	}
}

func TestResetRejectsFailedWorld(t *testing.T) {
	// A world whose run ended in an error must not be resettable: wedged
	// state (here a mid-run global exit) fails the quiescence checks.
	w := newWorld(3, Options{})
	err := w.RunKeep(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			pe.GlobalExit(p, 3)
		}
		pe.BarrierAll(p)
	})
	if err == nil {
		t.Fatal("global exit did not surface an error")
	}
	defer w.Cluster.Sim.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Reset accepted a world that exited mid-run")
		}
	}()
	w.Reset()
}
