package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTypedPutGetRoundTrip(t *testing.T) {
	w := newWorld(3, Options{})
	var gotF []float64
	var gotI []int32
	wantF := []float64{math.Pi, -math.E, 0, math.Inf(1), math.SmallestNonzeroFloat64}
	wantI := []int32{-1, 0, 1, math.MaxInt32, math.MinInt32}
	err := w.Run(func(p *sim.Proc, pe *PE) {
		f := pe.MustMalloc(p, len(wantF)*8)
		i32 := pe.MustMalloc(p, len(wantI)*4)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			Put(p, pe, 1, f, wantF)
			Put(p, pe, 2, i32, wantI)
		}
		pe.BarrierAll(p)
		switch pe.ID() {
		case 1:
			gotF = make([]float64, len(wantF))
			Get(p, pe, 1, f, gotF) // self get
		case 2:
			gotI = make([]int32, len(wantI))
			LocalGet(p, pe, i32, gotI)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantF {
		if gotF[i] != wantF[i] && !(math.IsNaN(gotF[i]) && math.IsNaN(wantF[i])) {
			t.Errorf("float64[%d] = %v, want %v", i, gotF[i], wantF[i])
		}
	}
	for i := range wantI {
		if gotI[i] != wantI[i] {
			t.Errorf("int32[%d] = %d, want %d", i, gotI[i], wantI[i])
		}
	}
}

func TestScalarPutGet(t *testing.T) {
	w := newWorld(2, Options{})
	var got uint64
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			PutScalar(p, pe, 1, sym, uint64(0xCAFEBABE_DEADBEEF))
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			got = GetScalar[uint64](p, pe, 1, sym)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xCAFEBABE_DEADBEEF {
		t.Fatalf("scalar round trip = %#x", got)
	}
}

func TestStridedIPutIGet(t *testing.T) {
	w := newWorld(2, Options{})
	var remote, back []int64
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 10*8)
		if pe.ID() == 1 {
			LocalPut(p, pe, sym, make([]int64, 10))
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			// Place 1,2,3 at remote even indices from a stride-2 source.
			src := []int64{1, 0, 2, 0, 3}
			IPut(p, pe, 1, sym, src, 2, 2, 3)
		}
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			remote = make([]int64, 10)
			LocalGet(p, pe, sym, remote)
		}
		if pe.ID() == 0 {
			back = make([]int64, 6)
			IGet(p, pe, 1, sym, back, 2, 2, 3)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRemote := []int64{1, 0, 2, 0, 3, 0, 0, 0, 0, 0}
	for i := range wantRemote {
		if remote[i] != wantRemote[i] {
			t.Fatalf("remote = %v, want %v", remote, wantRemote)
		}
	}
	wantBack := []int64{1, 0, 2, 0, 3, 0}
	for i := range wantBack {
		if back[i] != wantBack[i] {
			t.Fatalf("back = %v, want %v", back, wantBack)
		}
	}
}

func TestStridedBoundsChecked(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 80)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			for _, f := range []func(){
				func() { IPut(p, pe, 1, sym, []int64{1, 2}, 1, 3, 2) },    // src overrun
				func() { IGet(p, pe, 1, sym, make([]int64, 2), 3, 1, 2) }, // dst overrun
				func() { IPut(p, pe, 1, sym, []int64{1}, 0, 1, 1) },       // bad stride
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Error("strided bounds violation did not panic")
						}
					}()
					f()
				}()
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	// Property: encode/decode is the identity for every scalar type.
	check := func(e error) {
		if e != nil {
			t.Error(e)
		}
	}
	check(quick.Check(func(v []int64) bool {
		buf := make([]byte, len(v)*8)
		encodeSlice(v, buf)
		out := make([]int64, len(v))
		decodeSlice(buf, out)
		for i := range v {
			if out[i] != v[i] {
				return false
			}
		}
		return true
	}, nil))
	check(quick.Check(func(v []float32) bool {
		buf := make([]byte, len(v)*4)
		encodeSlice(v, buf)
		out := make([]float32, len(v))
		decodeSlice(buf, out)
		for i := range v {
			if out[i] != v[i] && !(math.IsNaN(float64(out[i])) && math.IsNaN(float64(v[i]))) {
				return false
			}
		}
		return true
	}, nil))
	check(quick.Check(func(v []uint32) bool {
		buf := make([]byte, len(v)*4)
		encodeSlice(v, buf)
		out := make([]uint32, len(v))
		decodeSlice(buf, out)
		for i := range v {
			if out[i] != v[i] {
				return false
			}
		}
		return true
	}, nil))
}

func TestSizeOf(t *testing.T) {
	if sizeOf[int32]() != 4 || sizeOf[uint32]() != 4 || sizeOf[float32]() != 4 {
		t.Error("32-bit scalars must be 4 bytes")
	}
	if sizeOf[int64]() != 8 || sizeOf[uint64]() != 8 || sizeOf[float64]() != 8 {
		t.Error("64-bit scalars must be 8 bytes")
	}
}
