package core

import (
	"fmt"

	"repro/internal/sim"
)

// Two-sided messaging over the one-sided fabric.
//
// The paper's introduction frames PGAS as the antidote to message
// passing's rendezvous overheads. To quantify that claim on this fabric
// (extension figure E2), this file implements a small two-sided layer —
// MPI-style tagged Send/Recv — on top of the put/get/AMO machinery, the
// way message passing is actually layered over RDMA networks:
//
//   - the receiver posts a receive by publishing a match entry (tag,
//     source filter, bounce-buffer address) in its symmetric match
//     table;
//   - the sender polls the remote table with gets until a matching entry
//     appears, claims it with a remote compare-and-swap (which
//     arbitrates multiple senders and wildcard receives), puts the
//     payload into the advertised bounce buffer, and marks the entry
//     done with an ordered atomic;
//   - the receiver waits on the entry state, copies the bounce buffer
//     out, and recycles the slot.
//
// Every cross-host step rides the ordered ring protocol, so "done"
// implies the payload is present. The polling and claim round trips are
// the honest price of rendezvous on this hardware — which is the paper's
// point.

// Match-table geometry.
const (
	// RecvSlots is the number of simultaneously posted receives per PE.
	RecvSlots = 16
	// slotWords is the per-entry size: state, tag, srcFilter, bounce
	// address, capacity, actual length.
	slotWords = 6
	slotBytes = slotWords * 8
)

// Entry states. The claim state encodes the claiming sender above the
// low byte so a compare-and-swap arbitrates racing senders.
const (
	slotFree    = 0
	slotPosted  = 1
	slotClaimed = 2
	slotDone    = 3
	// slotReserved marks a slot grabbed by a local Recv that has not
	// finished publishing its entry; remote senders skip it.
	slotReserved = 4
)

// AnySource matches a receive against every sender (MPI_ANY_SOURCE).
const AnySource = -1

// sendPollInterval is the sender's table-polling backoff; sendPollLimit
// bounds how long an unmatched send spins before failing loudly.
const (
	sendPollInterval = 150 * sim.Microsecond
	sendPollLimit    = 20_000 // * interval = 3 virtual seconds
)

// matchTable returns the symmetric base address of pe's match table,
// allocating it on first use. The allocation happens identically on
// every PE the first time any of them touches the two-sided layer
// during initPE, so the offset is symmetric.
func (pe *PE) matchTableAddr() SymAddr {
	if !pe.matchTableReady {
		panic(fmt.Sprintf("core: pe %d used Send/Recv without a match table; construct the world with two-sided support (it is initialised in shmem_init)", pe.id))
	}
	return pe.matchTable
}

// initMatchTable carves the match table out of the symmetric heap and
// zeroes it. Called from initPE on every PE, so the address is
// symmetric.
func (pe *PE) initMatchTable(p *sim.Proc) {
	addr, err := pe.heap.Alloc(RecvSlots * slotBytes)
	if err != nil {
		panic(fmt.Sprintf("core: pe %d cannot allocate match table: %v", pe.id, err))
	}
	zero := make([]byte, RecvSlots*slotBytes)
	pe.heap.Write(addr, zero)
	pe.matchTable = SymAddr(addr)
	pe.matchTableReady = true
}

func slotAddr(table SymAddr, slot, word int) SymAddr {
	return table + SymAddr(slot*slotBytes+word*8)
}

// Recv posts a tagged receive and blocks until a matching Send
// delivers. src is a specific PE or AnySource. It returns the actual
// message length, which must not exceed len(buf). Messages from one
// sender with equal tags are delivered in send order (the claim protocol
// serialises them).
func (pe *PE) Recv(p *sim.Proc, src int, tag int64, buf []byte) int {
	pe.checkLive()
	if src != AnySource {
		pe.checkPeer(src)
	}
	table := pe.matchTableAddr()
	// Find a free local slot and reserve it in the same instant, so
	// concurrent local receives (helper processes) cannot double-book
	// it while this one is still publishing.
	slot := -1
	for s := 0; s < RecvSlots; s++ {
		if pe.peekInt64(slotAddr(table, s, 0)) == slotFree {
			pe.pokeInt64(slotAddr(table, s, 0), slotReserved)
			slot = s
			break
		}
	}
	if slot < 0 {
		panic(fmt.Sprintf("core: pe %d exceeded %d posted receives", pe.id, RecvSlots))
	}
	bounce, err := pe.heap.Alloc(max(len(buf), 8))
	if err != nil {
		panic(fmt.Sprintf("core: pe %d cannot allocate bounce buffer: %v", pe.id, err))
	}
	defer func() {
		if err := pe.heap.Free(bounce); err != nil {
			panic(err)
		}
	}()

	// Publish the entry; state last, so a sender's get never observes a
	// half-written entry (the service thread snapshots the heap).
	pe.pokeInt64(slotAddr(table, slot, 1), tag)
	pe.pokeInt64(slotAddr(table, slot, 2), int64(src))
	pe.pokeInt64(slotAddr(table, slot, 3), int64(bounce))
	pe.pokeInt64(slotAddr(table, slot, 4), int64(len(buf)))
	pe.pokeInt64(slotAddr(table, slot, 5), 0)
	p.Sleep(pe.par.PutSoftware)
	pe.pokeInt64(slotAddr(table, slot, 0), slotPosted)
	pe.heapWrite.Broadcast()

	// Wait for completion, then collect.
	pe.WaitUntilInt64(p, slotAddr(table, slot, 0), CmpEQ, slotDone)
	n := int(pe.peekInt64(slotAddr(table, slot, 5)))
	p.Sleep(sim.BytesAt(n, pe.par.MemcpyBW))
	pe.heap.Read(int64(bounce), buf[:n])
	pe.pokeInt64(slotAddr(table, slot, 0), slotFree)
	return n
}

// Send delivers data to dst's receive posted with a matching tag,
// blocking until the receiver's bounce buffer holds the payload. It
// panics if no matching receive appears within the poll limit (a
// two-sided deadlock).
func (pe *PE) Send(p *sim.Proc, dst int, tag int64, data []byte) {
	pe.checkLive()
	pe.checkPeer(dst)
	if dst == pe.id {
		panic(fmt.Sprintf("core: pe %d self-send is not supported", pe.id))
	}
	table := pe.matchTableAddr() // same symmetric offset on dst
	snapshot := make([]byte, RecvSlots*slotBytes)
	for attempt := 0; ; attempt++ {
		if attempt >= sendPollLimit {
			panic(fmt.Sprintf("core: pe %d send(tag=%d) to pe %d found no matching receive", pe.id, tag, dst))
		}
		pe.GetBytes(p, dst, table, snapshot)
		for s := 0; s < RecvSlots; s++ {
			base := s * slotBytes
			state := int64(le.Uint64(snapshot[base:]))
			etag := int64(le.Uint64(snapshot[base+8:]))
			srcF := int64(le.Uint64(snapshot[base+16:]))
			capacity := int64(le.Uint64(snapshot[base+32:]))
			if state != slotPosted || etag != tag {
				continue
			}
			if srcF != AnySource && srcF != int64(pe.id) {
				continue
			}
			if int64(len(data)) > capacity {
				panic(fmt.Sprintf("core: pe %d send of %d bytes overflows receive capacity %d", pe.id, len(data), capacity))
			}
			// Claim the slot; losing the race just means rescanning.
			claim := int64(slotClaimed) | int64(pe.id+1)<<8
			if pe.CompareSwapInt64(p, dst, slotAddr(table, s, 0), slotPosted, claim) != slotPosted {
				continue
			}
			bounce := SymAddr(le.Uint64(snapshot[base+24:]))
			if len(data) > 0 {
				pe.PutBytes(p, dst, bounce, data)
			}
			// Ordered completion: length then state ride the same path
			// as the data.
			pe.SetInt64(p, dst, slotAddr(table, s, 5), int64(len(data)))
			pe.SetInt64(p, dst, slotAddr(table, s, 0), slotDone)
			return
		}
		p.Sleep(sendPollInterval)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
