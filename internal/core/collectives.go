package core

import (
	"repro/internal/sim"
)

// Collective operations. OpenSHMEM's classic (1.x) collectives operate on
// symmetric source and destination buffers with all PEs participating.
// On the switchless ring they are composed from puts and the ring
// barrier: gather-to-root and fan-out-from-root both degenerate to
// rightward ring traffic, which is the honest cost of this fabric.

// BroadcastBytes copies n bytes of root's symmetric object at addr into
// every other PE's copy. All PEs must call it; it synchronises.
func (pe *PE) BroadcastBytes(p *sim.Proc, root int, addr SymAddr, n int) {
	pe.checkLive()
	pe.checkPeer(root)
	if pe.id == root {
		buf := make([]byte, n)
		pe.LocalRead(p, addr, buf)
		for t := 0; t < pe.NumPEs(); t++ {
			if t != root {
				pe.PutBytes(p, t, addr, buf)
			}
		}
	}
	pe.BarrierAll(p)
}

// BroadcastBytesPipelined is a ring-pipelined broadcast: the payload
// travels once around the ring in chunks, each PE forwarding chunk k to
// its right neighbour while chunk k+1 is still arriving. The linear
// BroadcastBytes pushes n-1 independent transfers through the root's
// first link (each store-and-forwarded separately), so for large
// payloads the pipeline wins on both bandwidth and latency — ablation
// A5 quantifies it. All PEs must call it; it synchronises.
func (pe *PE) BroadcastBytesPipelined(p *sim.Proc, root int, addr SymAddr, n int) {
	pe.checkLive()
	pe.checkPeer(root)
	pe.checkHeapRange(addr, n)
	// Relay unit: several put-chunks per signal, so the per-unit
	// synchronisation cost (application wake-up + signalling atomic)
	// amortises and the relay stage keeps up with the sender.
	chunk := 4 * pe.par.PutChunk
	if chunk > pe.par.WindowSize {
		chunk = pe.par.WindowSize
	}
	chunks := (n + chunk - 1) / chunk
	// Symmetric signal word (identical allocation sequence everywhere).
	sig := pe.MustMalloc(p, 8)
	pe.LocalWrite(p, sig, make([]byte, 8))
	pe.BarrierAll(p)

	right := (pe.id + 1) % pe.NumPEs()
	last := (root - 1 + pe.NumPEs()) % pe.NumPEs() // end of the chain
	buf := make([]byte, chunk)
	for c := 0; c < chunks; c++ {
		off := c * chunk
		sz := n - off
		if sz > chunk {
			sz = chunk
		}
		if pe.id != root {
			// Wait for chunk c to land (root's or upstream's signal).
			pe.WaitUntilInt64(p, sig, CmpGE, int64(c+1))
		}
		if pe.id != last {
			pe.LocalRead(p, addr+SymAddr(off), buf[:sz])
			pe.PutSignal(p, right, addr+SymAddr(off), buf[:sz], sig, SignalAdd, 1)
		}
	}
	pe.BarrierAll(p)
	if err := pe.Free(p, sig); err != nil {
		panic(err)
	}
}

// FCollectBytes concatenates every PE's n-byte block at src into each
// PE's (NumPEs*n)-byte symmetric buffer at dst, ordered by PE Id
// (shmem_fcollect). All PEs must call it; it synchronises.
func (pe *PE) FCollectBytes(p *sim.Proc, src, dst SymAddr, n int) {
	pe.checkLive()
	buf := make([]byte, n)
	pe.LocalRead(p, src, buf)
	slot := dst + SymAddr(pe.id*n)
	for t := 0; t < pe.NumPEs(); t++ {
		if t == pe.id {
			pe.LocalWrite(p, slot, buf)
		} else {
			pe.PutBytes(p, t, slot, buf)
		}
	}
	pe.BarrierAll(p)
}

// FCollect is the typed fcollect: every PE's nelems elements at src are
// concatenated in PE order into each PE's NumPEs*nelems-element buffer
// at dst.
func FCollect[T Scalar](p *sim.Proc, pe *PE, dst, src SymAddr, nelems int) {
	pe.FCollectBytes(p, src, dst, nelems*sizeOf[T]())
}

// AllToAllBytes sends each PE's n-byte block i (at src + i*n) to PE i's
// dst + myPE*n slot (shmem_alltoall). All PEs must call it.
func (pe *PE) AllToAllBytes(p *sim.Proc, src, dst SymAddr, n int) {
	pe.checkLive()
	buf := make([]byte, n)
	for t := 0; t < pe.NumPEs(); t++ {
		pe.LocalRead(p, src+SymAddr(t*n), buf)
		slot := dst + SymAddr(pe.id*n)
		if t == pe.id {
			pe.LocalWrite(p, slot, buf)
		} else {
			pe.PutBytes(p, t, slot, buf)
		}
	}
	pe.BarrierAll(p)
}

// ReduceOp names a reduction operator.
type ReduceOp int

const (
	// OpSum adds.
	OpSum ReduceOp = iota
	// OpProd multiplies.
	OpProd
	// OpMin takes the minimum.
	OpMin
	// OpMax takes the maximum.
	OpMax
)

func (op ReduceOp) String() string {
	switch op {
	case OpProd:
		return "prod"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return "sum"
	}
}

func combine[T Scalar](op ReduceOp, a, b T) T {
	switch op {
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// Reduce is shmem_TYPE_OP_to_all over all PEs: it element-wise combines
// every PE's nelems-element symmetric vector at src and stores the result
// in every PE's symmetric vector at dst (src and dst may be equal). All
// PEs must call it with identical arguments; it synchronises.
//
// The implementation gathers contributions to PE 0 through a temporary
// symmetric work area (pWrk in standard OpenSHMEM), reduces there, and
// broadcasts the result — all ring traffic.
func Reduce[T Scalar](p *sim.Proc, pe *PE, op ReduceOp, dst, src SymAddr, nelems int) {
	pe.checkLive()
	es := sizeOf[T]()
	n := pe.NumPEs()
	// Symmetric scratch: every PE allocates identically, preserving the
	// same-offset invariant. The barrier keeps any PE from putting into a
	// work area a slower PE has not allocated yet (standard OpenSHMEM
	// sidesteps this with preallocated pWrk; dynamic scratch must sync).
	wrk := pe.MustMalloc(p, n*nelems*es)
	pe.BarrierAll(p)
	defer func() {
		if err := pe.Free(p, wrk); err != nil {
			panic(err)
		}
	}()

	contrib := make([]T, nelems)
	LocalGet(p, pe, src, contrib)
	slot := wrk + SymAddr(pe.id*nelems*es)
	if pe.id == 0 {
		LocalPut(p, pe, slot, contrib)
	} else {
		Put(p, pe, 0, slot, contrib)
	}
	pe.BarrierAll(p) // all contributions landed at PE 0

	if pe.id == 0 {
		acc := make([]T, nelems)
		LocalGet(p, pe, wrk, acc)
		row := make([]T, nelems)
		for t := 1; t < n; t++ {
			LocalGet(p, pe, wrk+SymAddr(t*nelems*es), row)
			for i := range acc {
				acc[i] = combine(op, acc[i], row[i])
			}
		}
		LocalPut(p, pe, dst, acc)
		for t := 1; t < n; t++ {
			Put(p, pe, t, dst, acc)
		}
	}
	pe.BarrierAll(p) // result visible everywhere
}

// Collect gathers variable-size blocks in PE order. Each PE contributes
// nelems elements from src; every PE receives the concatenation (whose
// total the caller must size dst for). It synchronises twice: once to
// agree on offsets (via an fcollect of the counts) and once for the data.
func Collect[T Scalar](p *sim.Proc, pe *PE, dst, src SymAddr, nelems int) {
	pe.checkLive()
	es := sizeOf[T]()
	n := pe.NumPEs()
	counts := pe.MustMalloc(p, n*8)
	pe.BarrierAll(p)
	defer func() {
		if err := pe.Free(p, counts); err != nil {
			panic(err)
		}
	}()
	LocalPut(p, pe, counts+SymAddr(pe.id*8), []int64{int64(nelems)})
	pe.FCollectBytes(p, counts+SymAddr(pe.id*8), counts, 8)

	all := make([]int64, n)
	LocalGet(p, pe, counts, all)
	offset := 0
	for t := 0; t < pe.id; t++ {
		offset += int(all[t])
	}
	buf := make([]T, nelems)
	LocalGet(p, pe, src, buf)
	slot := dst + SymAddr(offset*es)
	for t := 0; t < n; t++ {
		if t == pe.id {
			LocalPut(p, pe, slot, buf)
		} else {
			Put(p, pe, t, slot, buf)
		}
	}
	pe.BarrierAll(p)
}
