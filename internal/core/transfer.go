package core

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/sim"
)

// PutBytes is shmem_putmem: copy src into target's symmetric object at
// dst. It is one-sided and locally blocking — it returns when the local
// buffer is reusable (every chunk handed to the first-hop neighbour),
// not when the remote heap is updated; multi-hop delivery continues
// asynchronously through the bypass path. That is why the paper's Put
// latency barely depends on hop count.
func (pe *PE) PutBytes(p *sim.Proc, target int, dst SymAddr, src []byte) {
	pe.checkLive()
	pe.checkPeer(target)
	opStart := p.Now()
	defer pe.emitOp(p, "put", target, len(src), opStart)
	p.Sleep(pe.par.PutSoftware)
	pe.stats.Puts++
	pe.stats.PutBytes += uint64(len(src))
	if len(src) == 0 {
		return
	}
	if target == pe.id {
		pe.checkHeapRange(dst, len(src))
		p.Sleep(sim.BytesAt(len(src), pe.par.MemcpyBW))
		pe.heap.Write(int64(dst), src)
		pe.heapWrite.Broadcast()
		return
	}
	for off := 0; off < len(src); off += pe.par.PutChunk {
		n := len(src) - off
		if n > pe.par.PutChunk {
			n = pe.par.PutChunk
		}
		info := driver.Info{
			Kind:   driver.KindPut,
			Src:    uint16(pe.id),
			Dst:    uint16(target),
			Size:   uint32(n),
			SymOff: uint64(dst) + uint64(off),
		}
		pe.link.Send(p, info, driver.Payload{Buf: src[off : off+n], N: n})
		pe.stats.ChunksSent++
	}
}

// GetBytes is shmem_getmem: copy the target PE's symmetric object at src
// into the local buffer dst. Gets are fully blocking: each chunk is
// requested from the owner and travels back along the reverse ring path,
// so latency grows with hop count — the asymmetry Fig 9 shows.
func (pe *PE) GetBytes(p *sim.Proc, target int, src SymAddr, dst []byte) {
	pe.checkLive()
	pe.checkPeer(target)
	opStart := p.Now()
	defer pe.emitOp(p, "get", target, len(dst), opStart)
	p.Sleep(pe.par.GetSoftware)
	pe.stats.Gets++
	pe.stats.GetBytes += uint64(len(dst))
	if len(dst) == 0 {
		return
	}
	if target == pe.id {
		pe.checkHeapRange(src, len(dst))
		p.Sleep(sim.BytesAt(len(dst), pe.par.MemcpyBW))
		pe.heap.Read(int64(src), dst)
		return
	}
	tag := pe.newTag()
	req := &pendingReq{buf: dst, cond: sim.NewCond(fmt.Sprintf("get:%d:%d", pe.id, tag))}
	pe.addPending(tag, req)
	defer delete(pe.pending, tag)
	for off := 0; off < len(dst); off += pe.par.GetChunk {
		n := len(dst) - off
		if n > pe.par.GetChunk {
			n = pe.par.GetChunk
		}
		info := driver.Info{
			Kind:   driver.KindGetReq,
			Src:    uint16(pe.id),
			Dst:    uint16(target),
			SymOff: uint64(src),
			Tag:    tag,
			Aux:    packGetAux(uint64(off), n),
		}
		pe.link.Send(p, info, driver.Payload{})
		pe.stats.ChunksSent++
		for req.arrived < off+n {
			req.cond.Wait(p)
		}
		p.Sleep(pe.par.AppWake)
	}
}

// SignalOp selects how PutSignal updates the signal word.
type SignalOp int

const (
	// SignalSet stores the signal value.
	SignalSet SignalOp = iota
	// SignalAdd adds the signal value.
	SignalAdd
)

// PutSignal is shmem_putmem_signal: copy src into target's symmetric
// object at dst and then update the 8-byte signal word at sig, with the
// guarantee that the signal update becomes visible at the target only
// after all of the data. The guarantee is structural: the signal rides
// the same FIFO ring path as the final data chunk, and every stage
// (transmit channel, relay queue) preserves order.
//
// A consumer pairs it with WaitUntilInt64 on the signal word, replacing
// the put+fence+flag-put idiom.
func (pe *PE) PutSignal(p *sim.Proc, target int, dst SymAddr, src []byte, sig SymAddr, op SignalOp, val int64) {
	pe.PutBytes(p, target, dst, src)
	switch op {
	case SignalAdd:
		// An add must be atomic at the target; route it as an AMO,
		// which also rides the ordered message path.
		pe.AddInt64(p, target, sig, val)
	default:
		var word [8]byte
		le.PutUint64(word[:], uint64(val))
		pe.PutBytes(p, target, sig, word[:])
	}
}

// PutSignalNBI is the non-blocking variant; Quiet provides completion.
func (pe *PE) PutSignalNBI(p *sim.Proc, target int, dst SymAddr, src []byte, sig SymAddr, op SignalOp, val int64) {
	pe.checkLive()
	pe.checkPeer(target)
	pe.spawnNBI(fmt.Sprintf("put-signal-nbi:%d->%d", pe.id, target), func(np *sim.Proc) {
		pe.PutSignal(np, target, dst, src, sig, op, val)
	})
}

// SignalFetch is shmem_signal_fetch: an atomic local read of a signal
// word this PE owns.
func (pe *PE) SignalFetch(p *sim.Proc, sig SymAddr) int64 {
	pe.checkLive()
	pe.checkHeapRange(sig, 8)
	p.Sleep(pe.par.LocalMMIO)
	return pe.peekInt64(sig)
}

// PutBytesNBI is the non-blocking put (shmem_putmem_nbi): it queues the
// transfer and returns immediately; Quiet waits for local completion.
// The source buffer must not be modified until Quiet returns.
func (pe *PE) PutBytesNBI(p *sim.Proc, target int, dst SymAddr, src []byte) {
	pe.checkLive()
	pe.checkPeer(target)
	pe.spawnNBI(fmt.Sprintf("put-nbi:%d->%d", pe.id, target), func(np *sim.Proc) {
		pe.PutBytes(np, target, dst, src)
	})
}

// GetBytesNBI is the non-blocking get (shmem_getmem_nbi). The destination
// buffer contents are undefined until Quiet returns.
func (pe *PE) GetBytesNBI(p *sim.Proc, target int, src SymAddr, dst []byte) {
	pe.checkLive()
	pe.checkPeer(target)
	pe.spawnNBI(fmt.Sprintf("get-nbi:%d<-%d", pe.id, target), func(np *sim.Proc) {
		pe.GetBytes(np, target, src, dst)
	})
}

// spawnNBI runs op on a helper process and tracks it for Quiet.
func (pe *PE) spawnNBI(name string, op func(p *sim.Proc)) {
	pe.outstanding++
	pe.hsim.Go(name, func(np *sim.Proc) {
		op(np)
		pe.outstanding--
		if pe.outstanding == 0 {
			pe.quietCond.Broadcast()
		}
	})
}

// Quiet is shmem_quiet: block until every non-blocking operation issued
// by this PE has reached the same completion level as its blocking
// counterpart (local completion for puts, data landed for gets).
func (pe *PE) Quiet(p *sim.Proc) {
	pe.checkLive()
	for pe.outstanding > 0 {
		pe.quietCond.Wait(p)
	}
}

// Fence is shmem_fence: order point-to-point delivery of prior puts
// before later ones. Every chunk from this PE to a given target follows
// the same FIFO ring path, so delivery order already matches issue order
// once local completion is reached; Fence therefore reduces to Quiet.
func (pe *PE) Fence(p *sim.Proc) { pe.Quiet(p) }

// Outstanding reports queued non-blocking operations (for tests).
func (pe *PE) Outstanding() int { return pe.outstanding }
