package core

import (
	"testing"

	"repro/internal/sim"
)

func TestTeamWorldIdentity(t *testing.T) {
	w := newWorld(4, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		team := pe.TeamWorld(p)
		if team.MyPE() != pe.ID() || team.NumPEs() != 4 {
			t.Errorf("world team identity: rank %d size %d", team.MyPE(), team.NumPEs())
		}
		for r := 0; r < 4; r++ {
			if team.TranslateTo(r) != r {
				t.Errorf("world team translate %d -> %d", r, team.TranslateTo(r))
			}
		}
		team.Barrier(p)
		team.Destroy(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamSplitStrided(t *testing.T) {
	// Even PEs of a 6-ring form a team of 3.
	w := newWorld(6, Options{})
	ranks := make([]int, 6)
	for i := range ranks {
		ranks[i] = -2
	}
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		team := pe.TeamSplitStrided(p, 0, 2, 3)
		if team == nil {
			ranks[pe.ID()] = -1 // SHMEM_TEAM_INVALID for non-members
			pe.BarrierAll(p)
			return
		}
		ranks[pe.ID()] = team.MyPE()
		if team.NumPEs() != 3 {
			t.Errorf("team size %d", team.NumPEs())
		}
		if got := team.TranslateTo(team.MyPE()); got != pe.ID() {
			t.Errorf("round-trip translate %d -> %d", pe.ID(), got)
		}
		if team.TranslateFrom(1) != -1 {
			t.Error("odd PE should not translate into the even team")
		}
		team.Barrier(p)
		team.Destroy(p)
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, -1, 1, -1, 2, -1}
	for id, r := range ranks {
		if r != want[id] {
			t.Errorf("pe %d rank = %d, want %d", id, r, want[id])
		}
	}
}

func TestTeamCollectives(t *testing.T) {
	w := newWorld(6, Options{})
	sums := make([]int64, 6)
	bcast := make([]int64, 6)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		val := pe.MustMalloc(p, 8)
		out := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		team := pe.TeamSplitStrided(p, 1, 2, 3) // PEs 1, 3, 5
		if team == nil {
			pe.BarrierAll(p)
			return
		}
		LocalPut(p, pe, val, []int64{int64(pe.ID())})
		TeamReduce[int64](p, team, OpSum, out, val, 1)
		var o [1]int64
		LocalGet(p, pe, out, o[:])
		sums[pe.ID()] = o[0]

		// Broadcast from team rank 2 (world PE 5).
		if team.MyPE() == 2 {
			LocalPut(p, pe, val, []int64{777})
		}
		TeamBroadcast[int64](p, team, 2, val, val, 1)
		LocalGet(p, pe, val, o[:])
		bcast[pe.ID()] = o[0]
		team.Destroy(p)
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 3, 5} {
		if sums[id] != 1+3+5 {
			t.Errorf("pe %d team sum = %d, want 9", id, sums[id])
		}
		if bcast[id] != 777 {
			t.Errorf("pe %d team broadcast = %d, want 777", id, bcast[id])
		}
	}
	for _, id := range []int{0, 2, 4} {
		if sums[id] != 0 || bcast[id] != 0 {
			t.Errorf("non-member pe %d touched by team collective", id)
		}
	}
}

func TestTeamMisuse(t *testing.T) {
	w := newWorld(4, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		team := pe.TeamWorld(p)
		team.Destroy(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("use after team destroy did not panic")
				}
			}()
			team.MyPE()
		}()
		if pe.ID() == 0 {
			for _, f := range []func(){
				func() { pe.TeamSplitStrided(p, 0, 3, 2) },  // non-power-of-two stride
				func() { pe.TeamSplitStrided(p, 0, 0, 2) },  // zero stride
				func() { pe.TeamSplitStrided(p, 0, 4, 99) }, // exceeds world
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Error("bad split accepted")
						}
					}()
					f()
				}()
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamReduceTooLargeRejected(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		big := pe.MustMalloc(p, teamWrkBytes*2)
		pe.BarrierAll(p)
		team := pe.TeamWorld(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("oversized team reduce accepted")
				}
			}()
			TeamReduce[int64](p, team, OpSum, big, big, teamWrkBytes/4)
		}()
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}
