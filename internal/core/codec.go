package core

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Scalar is the set of element types the typed put/get layer moves; it
// matches the OpenSHMEM standard RMA type table's fixed-width members.
type Scalar interface {
	int32 | int64 | uint32 | uint64 | float32 | float64
}

// sizeOf returns the wire size of T in bytes.
func sizeOf[T Scalar]() int {
	var v T
	switch any(v).(type) {
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// encodeSlice serialises src little-endian into dst, which must be large
// enough.
func encodeSlice[T Scalar](src []T, dst []byte) {
	switch s := any(src).(type) {
	case []int32:
		for i, v := range s {
			le.PutUint32(dst[4*i:], uint32(v))
		}
	case []uint32:
		for i, v := range s {
			le.PutUint32(dst[4*i:], v)
		}
	case []int64:
		for i, v := range s {
			le.PutUint64(dst[8*i:], uint64(v))
		}
	case []uint64:
		for i, v := range s {
			le.PutUint64(dst[8*i:], v)
		}
	case []float32:
		for i, v := range s {
			le.PutUint32(dst[4*i:], math.Float32bits(v))
		}
	case []float64:
		for i, v := range s {
			le.PutUint64(dst[8*i:], math.Float64bits(v))
		}
	default:
		panic(fmt.Sprintf("core: unsupported scalar slice %T", src))
	}
}

// decodeSlice deserialises little-endian bytes into dst.
func decodeSlice[T Scalar](src []byte, dst []T) {
	switch d := any(dst).(type) {
	case []int32:
		for i := range d {
			d[i] = int32(le.Uint32(src[4*i:]))
		}
	case []uint32:
		for i := range d {
			d[i] = le.Uint32(src[4*i:])
		}
	case []int64:
		for i := range d {
			d[i] = int64(le.Uint64(src[8*i:]))
		}
	case []uint64:
		for i := range d {
			d[i] = le.Uint64(src[8*i:])
		}
	case []float32:
		for i := range d {
			d[i] = math.Float32frombits(le.Uint32(src[4*i:]))
		}
	case []float64:
		for i := range d {
			d[i] = math.Float64frombits(le.Uint64(src[8*i:]))
		}
	default:
		panic(fmt.Sprintf("core: unsupported scalar slice %T", dst))
	}
}

// Put is the typed shmem_TYPE_put: copy src into target's symmetric
// object at dst. On real hardware no conversion happens (both sides share
// the layout), so marshalling here carries no modelled time cost.
func Put[T Scalar](p *sim.Proc, pe *PE, target int, dst SymAddr, src []T) {
	buf := make([]byte, len(src)*sizeOf[T]())
	encodeSlice(src, buf)
	pe.PutBytes(p, target, dst, buf)
}

// Get is the typed shmem_TYPE_get: copy target's symmetric object at src
// into dst.
func Get[T Scalar](p *sim.Proc, pe *PE, target int, src SymAddr, dst []T) {
	buf := make([]byte, len(dst)*sizeOf[T]())
	pe.GetBytes(p, target, src, buf)
	decodeSlice(buf, dst)
}

// PutScalar puts a single element (shmem_TYPE_p).
func PutScalar[T Scalar](p *sim.Proc, pe *PE, target int, dst SymAddr, v T) {
	Put(p, pe, target, dst, []T{v})
}

// GetScalar gets a single element (shmem_TYPE_g).
func GetScalar[T Scalar](p *sim.Proc, pe *PE, target int, src SymAddr) T {
	var out [1]T
	Get(p, pe, target, src, out[:])
	return out[0]
}

// IPut is the strided put (shmem_TYPE_iput): for i in [0, nelems),
// src[i*sst] lands at symmetric element index i*tst from dst. Strides
// are in elements and must be >= 1.
func IPut[T Scalar](p *sim.Proc, pe *PE, target int, dst SymAddr, src []T, tst, sst, nelems int) {
	if tst < 1 || sst < 1 {
		panic("core: strides must be >= 1")
	}
	if nelems > 0 && (nelems-1)*sst >= len(src) {
		panic("core: iput source stride walks past the slice")
	}
	es := sizeOf[T]()
	one := make([]byte, es)
	for i := 0; i < nelems; i++ {
		encodeSlice(src[i*sst:i*sst+1], one)
		pe.PutBytes(p, target, dst+SymAddr(i*tst*es), one)
	}
}

// IGet is the strided get (shmem_TYPE_iget): for i in [0, nelems),
// dst[i*tst] receives symmetric element index i*sst from src.
func IGet[T Scalar](p *sim.Proc, pe *PE, target int, src SymAddr, dst []T, tst, sst, nelems int) {
	if tst < 1 || sst < 1 {
		panic("core: strides must be >= 1")
	}
	if nelems > 0 && (nelems-1)*tst >= len(dst) {
		panic("core: iget destination stride walks past the slice")
	}
	es := sizeOf[T]()
	one := make([]byte, es)
	for i := 0; i < nelems; i++ {
		pe.GetBytes(p, target, src+SymAddr(i*sst*es), one)
		decodeSlice(one, dst[i*tst:i*tst+1])
	}
}

// LocalPut writes the PE's own copy of a symmetric object with typed
// data; LocalGet reads it. They are the typed faces of LocalWrite/
// LocalRead and are how SPMD programs initialise symmetric memory.
func LocalPut[T Scalar](p *sim.Proc, pe *PE, dst SymAddr, src []T) {
	buf := make([]byte, len(src)*sizeOf[T]())
	encodeSlice(src, buf)
	pe.LocalWrite(p, dst, buf)
}

// LocalGet reads the PE's own copy of a symmetric object.
func LocalGet[T Scalar](p *sim.Proc, pe *PE, src SymAddr, dst []T) {
	buf := make([]byte, len(dst)*sizeOf[T]())
	pe.LocalRead(p, src, buf)
	decodeSlice(buf, dst)
}
