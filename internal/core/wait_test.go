package core

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestCmpOpTable(t *testing.T) {
	cases := []struct {
		op   CmpOp
		v    int64
		ref  int64
		want bool
	}{
		{CmpEQ, 5, 5, true}, {CmpEQ, 5, 6, false},
		{CmpNE, 5, 6, true}, {CmpNE, 5, 5, false},
		{CmpGT, 6, 5, true}, {CmpGT, 5, 5, false},
		{CmpGE, 5, 5, true}, {CmpGE, 4, 5, false},
		{CmpLT, 4, 5, true}, {CmpLT, 5, 5, false},
		{CmpLE, 5, 5, true}, {CmpLE, 6, 5, false},
	}
	for _, c := range cases {
		if got := c.op.holds(c.v, c.ref); got != c.want {
			t.Errorf("%d %v %d = %v, want %v", c.v, c.op, c.ref, got, c.want)
		}
	}
}

func TestTestInt64NonBlocking(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		flag := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			if pe.TestInt64(p, flag, CmpNE, 0) {
				t.Error("fresh flag tested nonzero")
			}
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			PutScalar[int64](p, pe, 1, flag, 3)
		}
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			if !pe.TestInt64(p, flag, CmpEQ, 3) {
				t.Error("flag not visible after barrier")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitUntilAny(t *testing.T) {
	w := newWorld(3, Options{})
	var hit int
	err := w.Run(func(p *sim.Proc, pe *PE) {
		flags := pe.MustMalloc(p, 4*8)
		pe.BarrierAll(p)
		if pe.ID() == 2 {
			p.Sleep(500 * sim.Microsecond)
			PutScalar[int64](p, pe, 0, flags+2*8, 9)
		}
		if pe.ID() == 0 {
			addrs := []SymAddr{flags, flags + 8, flags + 16, flags + 24}
			hit = pe.WaitUntilAnyInt64(p, addrs, CmpEQ, 9)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit != 2 {
		t.Fatalf("WaitUntilAny returned index %d, want 2", hit)
	}
}

func TestWaitUntilAnyEmpty(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		if pe.WaitUntilAnyInt64(p, nil, CmpEQ, 1) != -1 {
			t.Error("empty WaitUntilAny should return -1")
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitUntilAll(t *testing.T) {
	w := newWorld(4, Options{})
	var released sim.Time
	var lastSet sim.Time
	err := w.Run(func(p *sim.Proc, pe *PE) {
		flags := pe.MustMalloc(p, 4*8)
		pe.BarrierAll(p)
		if pe.ID() != 0 {
			p.Sleep(sim.Duration(pe.ID()) * 300 * sim.Microsecond)
			PutScalar[int64](p, pe, 0, flags+SymAddr(pe.ID()*8), 1)
			if t := p.Now(); t > lastSet {
				lastSet = t
			}
		} else {
			addrs := []SymAddr{flags + 8, flags + 16, flags + 24}
			pe.WaitUntilAllInt64(p, addrs, CmpEQ, 1)
			released = p.Now()
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if released < lastSet {
		t.Fatalf("WaitUntilAll released at %v before last flag set at %v", released, lastSet)
	}
}

func TestWaitUntilSome(t *testing.T) {
	w := newWorld(3, Options{})
	var hits []int
	err := w.Run(func(p *sim.Proc, pe *PE) {
		flags := pe.MustMalloc(p, 3*8)
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			// Set two flags back to back; the waiter may see one or both.
			PutScalar[int64](p, pe, 0, flags, 5)
			PutScalar[int64](p, pe, 0, flags+16, 5)
		}
		if pe.ID() == 0 {
			addrs := []SymAddr{flags, flags + 8, flags + 16}
			hits = pe.WaitUntilSomeInt64(p, addrs, CmpEQ, 5)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("WaitUntilSome returned nothing")
	}
	for _, h := range hits {
		if h != 0 && h != 2 {
			t.Fatalf("unexpected hit index %d", h)
		}
	}
}

func TestFloatAtomics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		f64 := pe.MustMalloc(p, 8)
		f32 := pe.MustMalloc(p, 4)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.SetFloat64(p, 1, f64, math.Pi)
			if got := pe.FetchFloat64(p, 1, f64); got != math.Pi {
				t.Errorf("FetchFloat64 = %v", got)
			}
			if old := pe.SwapFloat64(p, 1, f64, -1.5); old != math.Pi {
				t.Errorf("SwapFloat64 old = %v", old)
			}
			if got := pe.FetchFloat64(p, 1, f64); got != -1.5 {
				t.Errorf("after swap = %v", got)
			}
			pe.SetFloat32(p, 1, f32, 2.25)
			if got := pe.FetchFloat32(p, 1, f32); got != 2.25 {
				t.Errorf("FetchFloat32 = %v", got)
			}
			if old := pe.SwapFloat32(p, 1, f32, -8); old != 2.25 {
				t.Errorf("SwapFloat32 old = %v", old)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}
