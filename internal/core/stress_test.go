package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestStressMixedWorkload drives every major feature in one job, across
// several configurations, with a deterministic pseudo-random schedule:
// typed puts/gets, NBI streams with contexts, put-with-signal chains,
// atomics, locks, wait-until, collectives, team collectives, send/recv —
// interleaved over many rounds, with cross-checked results.
func TestStressMixedWorkload(t *testing.T) {
	configs := []Options{
		{},
		{Pipeline: 4},
		{Routing: RouteShortest},
	}
	if testing.Short() {
		configs = configs[:1]
	}
	for ci, opts := range configs {
		opts := opts
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			stressRun(t, opts, 5, 6)
		})
	}
}

func stressRun(t *testing.T, opts Options, hosts, rounds int) {
	t.Helper()
	const blk = 4000
	w := newWorldOpts(hosts, opts)
	var mismatches []string
	err := w.Run(func(p *sim.Proc, pe *PE) {
		n := pe.NumPEs()
		me := pe.ID()
		rng := rand.New(rand.NewSource(int64(me*97 + 13)))
		slots := pe.MustMalloc(p, n*blk) // slot per owner, written by owner only
		counter := pe.MustMalloc(p, 8)
		lock := pe.MustMalloc(p, 8)
		flag := pe.MustMalloc(p, 8)
		redSrc := pe.MustMalloc(p, 8)
		redDst := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)

		ctx := pe.CtxCreate()
		for r := 0; r < rounds; r++ {
			tag := byte(r*31 + me*7 + 1)
			block := bytes.Repeat([]byte{tag}, blk)
			// Scatter my slot to every PE, mixing transports.
			for tgt := 0; tgt < n; tgt++ {
				dst := slots + SymAddr(me*blk)
				switch {
				case tgt == me:
					pe.LocalWrite(p, dst, block)
				case rng.Intn(3) == 0:
					ctx.PutBytesNBI(p, tgt, dst, block)
				default:
					pe.PutBytes(p, tgt, dst, block)
				}
			}
			ctx.Quiet(p)

			// Locked read-modify-write on a shared counter.
			pe.SetLock(p, lock)
			v := pe.FetchInt64(p, 0, counter)
			pe.SetInt64(p, 0, counter, v+1)
			pe.ClearLock(p, lock)

			pe.BarrierAll(p)

			// Everyone verifies every slot against the round's tags.
			buf := make([]byte, blk)
			for from := 0; from < n; from++ {
				pe.LocalRead(p, slots+SymAddr(from*blk), buf)
				want := byte(r*31 + from*7 + 1)
				for _, b := range buf {
					if b != want {
						mismatches = append(mismatches, fmt.Sprintf(
							"round %d: pe %d slot %d holds %d want %d", r, me, from, b, want))
						break
					}
				}
			}

			// Reduce a per-round contribution and check it.
			LocalPut(p, pe, redSrc, []int64{int64(me + r)})
			Reduce[int64](p, pe, OpSum, redDst, redSrc, 1)
			var out [1]int64
			LocalGet(p, pe, redDst, out[:])
			wantSum := int64(n*r) + int64(n*(n-1)/2)
			if out[0] != wantSum {
				mismatches = append(mismatches, fmt.Sprintf(
					"round %d: pe %d reduce %d want %d", r, me, out[0], wantSum))
			}

			// Neighbour signal chain: each PE re-puts its slot to its
			// right neighbour with an attached signal and waits for the
			// one arriving from its left.
			right := (me + 1) % n
			pe.PutSignal(p, right, slots+SymAddr(me*blk), block, flag, SignalAdd, 1)
			pe.WaitUntilInt64(p, flag, CmpGE, int64(r+1))
			pe.BarrierAll(p)
		}

		// Final counter check: hosts*rounds locked increments.
		if got := pe.FetchInt64(p, 0, counter); got != int64(hosts*rounds) {
			mismatches = append(mismatches, fmt.Sprintf(
				"pe %d final counter %d want %d", me, got, hosts*rounds))
		}
		ctx.Destroy(p)
		pe.Finalize(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) > 0 {
		t.Fatalf("stress mismatches:\n%s", strings.Join(mismatches, "\n"))
	}
	// The stats report must account for the traffic.
	report := w.StatsReport()
	if !strings.Contains(report, "put-bytes") {
		t.Fatalf("stats report malformed:\n%s", report)
	}
	for _, pe := range w.PEs() {
		if pe.Stats().PutBytes == 0 || pe.Stats().Barriers == 0 {
			t.Fatalf("pe %d stats empty:\n%s", pe.ID(), report)
		}
	}
}

// TestStressEnduranceLong runs a bigger instance, skipped in -short.
func TestStressEnduranceLong(t *testing.T) {
	if testing.Short() {
		t.Skip("endurance run in -short mode")
	}
	stressRun(t, Options{Pipeline: 8}, 7, 8)
}
