package core

import (
	"fmt"

	"repro/internal/sim"
)

// CmpOp is a comparison for point-to-point synchronisation
// (shmem_wait_until's SHMEM_CMP_* constants).
type CmpOp int

const (
	// CmpEQ waits for equality.
	CmpEQ CmpOp = iota
	// CmpNE waits for inequality.
	CmpNE
	// CmpGT waits for strictly greater.
	CmpGT
	// CmpGE waits for greater-or-equal.
	CmpGE
	// CmpLT waits for strictly less.
	CmpLT
	// CmpLE waits for less-or-equal.
	CmpLE
)

func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	default:
		return fmt.Sprintf("cmp(%d)", int(c))
	}
}

func (c CmpOp) holds(v, ref int64) bool {
	switch c {
	case CmpEQ:
		return v == ref
	case CmpNE:
		return v != ref
	case CmpGT:
		return v > ref
	case CmpGE:
		return v >= ref
	case CmpLT:
		return v < ref
	case CmpLE:
		return v <= ref
	default:
		panic(fmt.Sprintf("core: unknown comparison %d", int(c)))
	}
}

// WaitUntilInt64 is shmem_int64_wait_until: block until the local copy of
// the symmetric int64 at addr satisfies (value op ref). The variable is
// typically updated by a remote put or atomic.
func (pe *PE) WaitUntilInt64(p *sim.Proc, addr SymAddr, op CmpOp, ref int64) int64 {
	pe.checkLive()
	pe.checkHeapRange(addr, 8)
	for {
		if v := pe.peekInt64(addr); op.holds(v, ref) {
			return v
		}
		pe.heapWrite.Wait(p)
		p.Sleep(pe.par.AppWake)
	}
}

// TestInt64 is shmem_int64_test: a non-blocking probe of the condition.
func (pe *PE) TestInt64(p *sim.Proc, addr SymAddr, op CmpOp, ref int64) bool {
	pe.checkLive()
	pe.checkHeapRange(addr, 8)
	p.Sleep(pe.par.LocalMMIO)
	return op.holds(pe.peekInt64(addr), ref)
}

// WaitUntilAnyInt64 is shmem_int64_wait_until_any: block until at least
// one of the symmetric int64 variables satisfies (value op ref), and
// return its index. With an empty slice it returns -1 immediately.
func (pe *PE) WaitUntilAnyInt64(p *sim.Proc, addrs []SymAddr, op CmpOp, ref int64) int {
	pe.checkLive()
	if len(addrs) == 0 {
		return -1
	}
	for _, a := range addrs {
		pe.checkHeapRange(a, 8)
	}
	for {
		for i, a := range addrs {
			if op.holds(pe.peekInt64(a), ref) {
				return i
			}
		}
		pe.heapWrite.Wait(p)
		p.Sleep(pe.par.AppWake)
	}
}

// WaitUntilAllInt64 is shmem_int64_wait_until_all: block until every one
// of the symmetric int64 variables satisfies (value op ref).
func (pe *PE) WaitUntilAllInt64(p *sim.Proc, addrs []SymAddr, op CmpOp, ref int64) {
	pe.checkLive()
	for _, a := range addrs {
		pe.checkHeapRange(a, 8)
	}
	for {
		all := true
		for _, a := range addrs {
			if !op.holds(pe.peekInt64(a), ref) {
				all = false
				break
			}
		}
		if all {
			return
		}
		pe.heapWrite.Wait(p)
		p.Sleep(pe.par.AppWake)
	}
}

// WaitUntilSomeInt64 is shmem_int64_wait_until_some: block until at
// least one variable satisfies the condition, then return the indices of
// all variables that currently satisfy it.
func (pe *PE) WaitUntilSomeInt64(p *sim.Proc, addrs []SymAddr, op CmpOp, ref int64) []int {
	pe.checkLive()
	if len(addrs) == 0 {
		return nil
	}
	for _, a := range addrs {
		pe.checkHeapRange(a, 8)
	}
	for {
		var hits []int
		for i, a := range addrs {
			if op.holds(pe.peekInt64(a), ref) {
				hits = append(hits, i)
			}
		}
		if len(hits) > 0 {
			return hits
		}
		pe.heapWrite.Wait(p)
		p.Sleep(pe.par.AppWake)
	}
}
