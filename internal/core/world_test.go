package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// newWorld builds an n-host ring world with the default profile.
func newWorld(n int, opts Options) *World {
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), n)
	if err != nil {
		panic(err)
	}
	return NewWorld(c, opts)
}

func TestInitAndIdentity(t *testing.T) {
	w := newWorld(3, Options{})
	var ids, sizes []int
	err := w.Run(func(p *sim.Proc, pe *PE) {
		ids = append(ids, pe.ID())
		sizes = append(sizes, pe.NumPEs())
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ran %d PEs", len(ids))
	}
	seen := map[int]bool{}
	for i, id := range ids {
		seen[id] = true
		if sizes[i] != 3 {
			t.Errorf("NumPEs = %d", sizes[i])
		}
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("ids = %v", ids)
	}
}

func TestRingOnlyOptionsRejectedOffRing(t *testing.T) {
	// Pair clusters are full worlds now, but the pipelined link protocol
	// and shortest-arc routing exist only on the ring.
	for _, opts := range []Options{{Pipeline: 4}, {Routing: RouteShortest}} {
		func() {
			s := sim.New()
			c, err := fabric.NewPair(s, model.Default())
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if recover() == nil {
					t.Fatalf("NewWorld accepted %+v on a pair cluster", opts)
				}
			}()
			NewWorld(c, opts)
		}()
	}
}

func TestMallocSymmetricOffsets(t *testing.T) {
	w := newWorld(3, Options{})
	offs := make([][]SymAddr, 3)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		for _, size := range []int{64, 1000, 8, 4096} {
			offs[pe.ID()] = append(offs[pe.ID()], pe.MustMalloc(p, size))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for peID := 1; peID < 3; peID++ {
		for i := range offs[0] {
			if offs[peID][i] != offs[0][i] {
				t.Fatalf("allocation %d not symmetric: pe0=%d pe%d=%d",
					i, offs[0][i], peID, offs[peID][i])
			}
		}
	}
}

func TestPutNeighborIntegrity(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 100_000
	want := make([]byte, n)
	rand.New(rand.NewSource(7)).Read(want)
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym, want)
		}
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			got = make([]byte, n)
			pe.LocalRead(p, sym, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("put data corrupted")
	}
}

func TestPutTwoHopsViaBypass(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 200_000
	want := make([]byte, n)
	rand.New(rand.NewSource(8)).Read(want)
	var got []byte
	var midStats Stats
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		if pe.ID() == 0 {
			pe.PutBytes(p, 2, sym, want) // rightward: 0 -> 1 -> 2
		}
		pe.BarrierAll(p)
		switch pe.ID() {
		case 1:
			midStats = pe.Stats()
		case 2:
			got = make([]byte, n)
			pe.LocalRead(p, sym, got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("2-hop put corrupted")
	}
	if midStats.ChunksForwarded == 0 {
		t.Fatal("intermediate host forwarded nothing; bypass path unused")
	}
}

func TestPutSelf(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 16)
		pe.PutBytes(p, pe.ID(), sym, []byte("hello, self-put!"))
		buf := make([]byte, 16)
		pe.LocalRead(p, sym, buf)
		if string(buf) != "hello, self-put!" {
			t.Errorf("pe %d self put read %q", pe.ID(), buf)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetIntegrityAllHops(t *testing.T) {
	for _, hops := range []int{1, 2} {
		hops := hops
		t.Run(fmt.Sprintf("hops=%d", hops), func(t *testing.T) {
			w := newWorld(3, Options{})
			const n = 70_000
			want := make([]byte, n)
			rand.New(rand.NewSource(int64(hops))).Read(want)
			var got []byte
			err := w.Run(func(p *sim.Proc, pe *PE) {
				sym := pe.MustMalloc(p, n)
				owner := hops // PE "hops" is that many rightward hops from 0
				if pe.ID() == owner {
					pe.LocalWrite(p, sym, want)
				}
				pe.BarrierAll(p)
				if pe.ID() == 0 {
					got = make([]byte, n)
					pe.GetBytes(p, owner, sym, got)
				}
				pe.BarrierAll(p)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("get data corrupted")
			}
		})
	}
}

func TestGetSelf(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 8)
		pe.LocalWrite(p, sym, []byte("01234567"))
		buf := make([]byte, 8)
		pe.GetBytes(p, pe.ID(), sym, buf)
		if string(buf) != "01234567" {
			t.Errorf("self get read %q", buf)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// measureOp runs an operation on PE 0 of a fresh 3-host world and returns
// its virtual duration.
func measureOp(t *testing.T, opts Options, op func(p *sim.Proc, pe *PE, sym SymAddr)) sim.Duration {
	t.Helper()
	w := newWorld(3, opts)
	var elapsed sim.Duration
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 1<<20)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			op(p, pe, sym)
			elapsed = p.Now().Sub(start)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestPutLatencyHopInsensitive(t *testing.T) {
	const n = 256 << 10
	data := make([]byte, n)
	oneHop := measureOp(t, Options{}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.PutBytes(p, 1, sym, data)
	})
	twoHop := measureOp(t, Options{}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.PutBytes(p, 2, sym, data)
	})
	ratio := float64(twoHop) / float64(oneHop)
	if ratio > 1.15 {
		t.Fatalf("put latency should be hop-insensitive: 1hop=%v 2hop=%v (ratio %.2f)",
			oneHop, twoHop, ratio)
	}
}

func TestGetLatencyHopSensitive(t *testing.T) {
	const n = 64 << 10
	buf := make([]byte, n)
	oneHop := measureOp(t, Options{}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.GetBytes(p, 1, sym, buf)
	})
	twoHop := measureOp(t, Options{}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.GetBytes(p, 2, sym, buf)
	})
	ratio := float64(twoHop) / float64(oneHop)
	if ratio < 1.25 {
		t.Fatalf("get latency should grow with hops: 1hop=%v 2hop=%v (ratio %.2f)",
			oneHop, twoHop, ratio)
	}
}

func TestGetMuchSlowerThanPut(t *testing.T) {
	// The paper's central asymmetry: one-sided puts stream; gets are
	// round-trip bound.
	const n = 256 << 10
	buf := make([]byte, n)
	put := measureOp(t, Options{}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.PutBytes(p, 1, sym, buf)
	})
	get := measureOp(t, Options{}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.GetBytes(p, 1, sym, buf)
	})
	if float64(get) < 3*float64(put) {
		t.Fatalf("get (%v) should be several times slower than put (%v)", get, put)
	}
}

func TestDMABeatsMemcpyForLargePut(t *testing.T) {
	const n = 512 << 10
	data := make([]byte, n)
	dma := measureOp(t, Options{Mode: driver.ModeDMA}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.PutBytes(p, 1, sym, data)
	})
	cpu := measureOp(t, Options{Mode: driver.ModeCPU}, func(p *sim.Proc, pe *PE, sym SymAddr) {
		pe.PutBytes(p, 1, sym, data)
	})
	if dma >= cpu {
		t.Fatalf("DMA put (%v) should beat memcpy put (%v) at 512KiB", dma, cpu)
	}
}

func TestNBIAndQuiet(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 50_000
	a := bytes.Repeat([]byte{0xAA}, n)
	b := bytes.Repeat([]byte{0xBB}, n)
	var got1, got2 []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		s1 := pe.MustMalloc(p, n)
		s2 := pe.MustMalloc(p, n)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytesNBI(p, 1, s1, a)
			pe.PutBytesNBI(p, 2, s2, b)
			if pe.Outstanding() == 0 {
				t.Error("NBI ops completed synchronously")
			}
			pe.Quiet(p)
			if pe.Outstanding() != 0 {
				t.Error("Quiet returned with outstanding ops")
			}
		}
		pe.BarrierAll(p)
		switch pe.ID() {
		case 1:
			got1 = make([]byte, n)
			pe.LocalRead(p, s1, got1)
		case 2:
			got2 = make([]byte, n)
			pe.LocalRead(p, s2, got2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, a) || !bytes.Equal(got2, b) {
		t.Fatal("NBI put data corrupted")
	}
}

func TestGetNBI(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 30_000
	want := bytes.Repeat([]byte{0x5C}, n)
	got := make([]byte, n)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		if pe.ID() == 2 {
			pe.LocalWrite(p, sym, want)
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.GetBytesNBI(p, 2, sym, got)
			pe.Quiet(p)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("NBI get corrupted")
	}
}

func TestWaitUntilProducerConsumer(t *testing.T) {
	w := newWorld(2, Options{})
	const n = 10_000
	payload := bytes.Repeat([]byte{0x42}, n)
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		data := pe.MustMalloc(p, n)
		flag := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, data, payload)
			pe.Fence(p)
			PutScalar[int64](p, pe, 1, flag, 1)
		} else {
			pe.WaitUntilInt64(p, flag, CmpEQ, 1)
			got = make([]byte, n)
			pe.LocalRead(p, data, got)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("flagged data not delivered before flag observed")
	}
}

func TestStatsCounters(t *testing.T) {
	w := newWorld(3, Options{})
	var st Stats
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 4096)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym, make([]byte, 4096))
			pe.GetBytes(p, 1, sym, make([]byte, 512))
			pe.FetchAddInt64(p, 1, sym, 1)
			st = pe.Stats()
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 1 || st.PutBytes != 4096 {
		t.Errorf("puts=%d putBytes=%d", st.Puts, st.PutBytes)
	}
	if st.Gets != 1 || st.GetBytes != 512 {
		t.Errorf("gets=%d getBytes=%d", st.Gets, st.GetBytes)
	}
	if st.AMOs != 1 {
		t.Errorf("amos=%d", st.AMOs)
	}
	if st.ChunksSent == 0 {
		t.Error("no chunks counted")
	}
}

func TestFinalizePreventsUse(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 64)
		pe.BarrierAll(p)
		pe.Finalize(p)
		if pe.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("put after Finalize did not panic")
				}
			}()
			pe.PutBytes(p, 1, sym, make([]byte, 8))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutToBadPEPanics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("put to PE 9 did not panic")
					}
				}()
				pe.PutBytes(p, 9, sym, make([]byte, 8))
			}()
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutOutsideAllocationPanics(t *testing.T) {
	// The destination range check happens at the owner's service thread;
	// the panic surfaces as a simulation error.
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 64)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym+32, make([]byte, 64)) // runs past the block
		}
		pe.BarrierAll(p)
	})
	if err == nil {
		t.Fatal("out-of-allocation put did not fail the simulation")
	}
}

func TestManyPEsRing(t *testing.T) {
	// An 8-host ring exercises longer forwarding chains.
	w := newWorld(8, Options{})
	const n = 10_000
	sums := make([]byte, 8)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		pe.BarrierAll(p)
		// Everyone puts a tagged pattern to PE (id+3)%8: 3 hops each.
		target := (pe.ID() + 3) % 8
		pe.PutBytes(p, target, sym, bytes.Repeat([]byte{byte(pe.ID() + 1)}, n))
		pe.BarrierAll(p)
		buf := make([]byte, n)
		pe.LocalRead(p, sym, buf)
		sums[pe.ID()] = buf[n-1]
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, tag := range sums {
		wantFrom := (id - 3 + 8) % 8
		if tag != byte(wantFrom+1) {
			t.Errorf("pe %d holds tag %d, want from pe %d", id, tag, wantFrom)
		}
	}
}

func TestGlobalExit(t *testing.T) {
	w := newWorld(3, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			pe.GlobalExit(p, 42)
		}
		pe.BarrierAll(p) // never reached by PE 1; others abandoned
	})
	var ge *GlobalExitError
	if !errors.As(err, &ge) {
		t.Fatalf("expected GlobalExitError, got %v", err)
	}
	if ge.PE != 1 || ge.Code != 42 {
		t.Fatalf("exit = %+v", ge)
	}
}

func TestCallocZeroesReusedMemory(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		a := pe.MustMalloc(p, 256)
		pe.LocalWrite(p, a, bytes.Repeat([]byte{0xFF}, 256))
		if err := pe.Free(p, a); err != nil {
			t.Error(err)
		}
		b, err := pe.Calloc(p, 256)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 256)
		pe.LocalRead(p, b, buf)
		for _, by := range buf {
			if by != 0 {
				t.Error("Calloc returned dirty memory")
				break
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPEReallocPreservesAndStaysSymmetric(t *testing.T) {
	w := newWorld(3, Options{})
	offs := make([]SymAddr, 3)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		a := pe.MustMalloc(p, 128)
		LocalPut(p, pe, a, []int64{11, 22, 33, 44})
		blocker := pe.MustMalloc(p, 8)
		_ = blocker
		b, err := pe.Realloc(p, a, 100_000) // forced move
		if err != nil {
			t.Error(err)
			return
		}
		var out [4]int64
		LocalGet(p, pe, b, out[:])
		if out[0] != 11 || out[3] != 44 {
			t.Errorf("pe %d realloc lost prefix: %v", pe.ID(), out)
		}
		offs[pe.ID()] = b
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if offs[0] != offs[1] || offs[1] != offs[2] {
		t.Fatalf("realloc broke symmetry: %v", offs)
	}
}

func TestHeapStatsAndMode(t *testing.T) {
	w := newWorld(2, Options{Mode: driver.ModeCPU})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		if pe.Mode() != driver.ModeCPU {
			t.Errorf("mode = %v", pe.Mode())
		}
		before, beforeBytes, _ := pe.HeapStats()
		pe.MustMalloc(p, 5000)
		after, afterBytes, chunks := pe.HeapStats()
		if after != before+1 || afterBytes < beforeBytes+5000 || chunks < 1 {
			t.Errorf("heap stats: %d->%d allocs, %d->%d bytes, %d chunks",
				before, after, beforeBytes, afterBytes, chunks)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalWriteBoundsChecked(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		a := pe.MustMalloc(p, 64)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-bounds LocalWrite accepted")
				}
			}()
			pe.LocalWrite(p, a+32, make([]byte, 64))
		}()
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRunsAreDeterministic(t *testing.T) {
	// Two identical jobs must produce byte-identical timing — the whole
	// reproducibility claim of the repository.
	run := func() (sim.Time, Stats) {
		w := newWorldOpts(4, Options{Pipeline: 4, Routing: RouteShortest})
		err := w.Run(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, 64<<10)
			ctr := pe.MustMalloc(p, 8)
			pe.BarrierAll(p)
			tgt := (pe.ID() + 2) % pe.NumPEs()
			pe.PutBytesNBI(p, tgt, sym, make([]byte, 64<<10))
			pe.FetchAddInt64(p, 0, ctr, int64(pe.ID()))
			pe.Quiet(p)
			pe.BarrierAll(p)
			buf := make([]byte, 16<<10)
			pe.GetBytes(p, tgt, sym, buf)
			pe.BarrierAll(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Cluster.Sim.Now(), w.PEs()[0].Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("completion times diverge: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
}
