package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
)

// WorldSnapshot is a frozen image of a quiescent world at an arbitrary
// virtual time: per-PE runtime state (symmetric heap via copy-on-write
// pages, barrier/tag/match-table cursors, pipe cursors, stats) plus the
// cluster's device image and kernel clock. A snapshot is immutable;
// any number of worlds of the same shape can Fork from it, and forked
// children diverge without disturbing it or each other.
type WorldSnapshot struct {
	opts    Options
	n       int
	pes     []peSnapshot
	cluster *fabric.ClusterSnapshot
	events  uint64 // virtual events the capturing run executed — the replay cost a fork saves
}

// Events reports how many virtual events the run that produced the
// snapshot executed: the per-fork saving the bench layer accounts.
func (s *WorldSnapshot) Events() uint64 { return s.events }

// Time returns the virtual time the snapshot was captured at.
func (s *WorldSnapshot) Time() sim.Time { return s.cluster.Time() }

// peSnapshot captures one PE's runtime state; link is the opaque
// per-fabric capture (pipe cursors and fabric counters on the ring,
// counters elsewhere).
type peSnapshot struct {
	heap            *mem.HeapSnapshot
	barrierEpoch    uint32
	syncEpoch       uint32
	ctl             map[uint32]int
	pSyncCounts     map[SymAddr]int64
	nextTag         uint32
	matchTable      SymAddr
	matchTableReady bool
	nextCtxID       int
	stats           Stats
	link            any
}

// Snapshot captures a cleanly finished world (a nil-error RunKeep) so
// later sweeps can fork its future instead of replaying its past. The
// same quiescence the Reset lifecycle demands is asserted at every
// layer; a world with in-flight work cannot be captured.
func (w *World) Snapshot() *WorldSnapshot {
	s := &WorldSnapshot{
		opts:   w.opts,
		n:      len(w.pes),
		pes:    make([]peSnapshot, len(w.pes)),
		events: w.Cluster.EventsExecuted(),
	}
	for i, pe := range w.pes {
		s.pes[i] = pe.snapshot()
	}
	s.cluster = w.Cluster.Snapshot()
	return s
}

// snapshot captures one quiescent PE.
func (pe *PE) snapshot() peSnapshot {
	pe.assertQuiescent("snapshot")
	if pe.finalized {
		panic(fmt.Sprintf("core: snapshot of finalized pe %d", pe.id))
	}
	if len(pe.contexts) != 0 {
		panic(fmt.Sprintf("core: snapshot of pe %d with %d live context(s)", pe.id, len(pe.contexts)))
	}
	s := peSnapshot{
		heap:            pe.heap.Snapshot(),
		barrierEpoch:    pe.barrierEpoch,
		syncEpoch:       pe.syncEpoch,
		nextTag:         pe.nextTag,
		matchTable:      pe.matchTable,
		matchTableReady: pe.matchTableReady,
		nextCtxID:       pe.nextCtxID,
		stats:           pe.stats,
		link:            pe.link.Snapshot(),
	}
	if len(pe.ctl) > 0 {
		s.ctl = make(map[uint32]int, len(pe.ctl))
		//ntblint:ordered — copying into a map; insertion order is invisible
		for k, v := range pe.ctl {
			s.ctl[k] = v
		}
	}
	if len(pe.pSyncCounts) > 0 {
		s.pSyncCounts = make(map[SymAddr]int64, len(pe.pSyncCounts))
		//ntblint:ordered — copying into a map; insertion order is invisible
		for k, v := range pe.pSyncCounts {
			s.pSyncCounts[k] = v
		}
	}
	return s
}

// assertQuiescent panics unless the PE's runtime has fully drained —
// the shared precondition of reset and snapshot. Pending requests,
// staged forwards, or un-drained service work mean the previous run did
// not complete cleanly and the world must be discarded.
func (pe *PE) assertQuiescent(op string) {
	pe.link.AssertQuiescent(op)
	if len(pe.pending) != 0 {
		panic(fmt.Sprintf("core: %s of pe %d with %d pending request(s)", op, pe.id, len(pe.pending)))
	}
	if pe.outstanding != 0 {
		panic(fmt.Sprintf("core: %s of pe %d with %d non-blocking op(s) outstanding", op, pe.id, pe.outstanding))
	}
}

// Fork rewinds this world and repositions it at the snapshot's state, so
// its next RunKeepForked body continues the captured world's future.
// The world must have the snapshot's shape (options and PE count) and
// satisfy every Reset precondition; a freshly built world works too —
// construction leaves the same power-on state Reset restores. Heap pages
// are aliased copy-on-write, so a fork's cost is the device-register
// copies plus one page copy per chunk the divergent future actually
// writes.
func (w *World) Fork(s *WorldSnapshot) {
	if w.opts != s.opts {
		panic(fmt.Sprintf("core: fork of a %+v world from a %+v snapshot", w.opts, s.opts))
	}
	if len(w.pes) != s.n {
		panic(fmt.Sprintf("core: fork of a %d-PE world from a %d-PE snapshot", len(w.pes), s.n))
	}
	// A freshly built world still has its daemon-spawn events queued for
	// t=0; drive them so the daemons reach the parked state a completed
	// run leaves them in (a no-op on a recycled world, whose queue is
	// empty).
	if err := w.Cluster.RunSim(); err != nil {
		panic(fmt.Sprintf("core: fork daemon boot failed: %v", err))
	}
	w.Reset()
	for i, pe := range w.pes {
		pe.restore(&s.pes[i])
	}
	w.Cluster.Restore(s.cluster)
}

// restore applies one PE's captured state over the power-on state Reset
// just produced.
func (pe *PE) restore(s *peSnapshot) {
	pe.heap.Fork(s.heap)
	pe.barrierEpoch = s.barrierEpoch
	pe.syncEpoch = s.syncEpoch
	if len(s.ctl) > 0 {
		if pe.ctl == nil {
			pe.ctl = make(map[uint32]int, len(s.ctl))
		}
		//ntblint:ordered — copying into a map; insertion order is invisible
		for k, v := range s.ctl {
			pe.ctl[k] = v
		}
	}
	if len(s.pSyncCounts) > 0 {
		if pe.pSyncCounts == nil {
			pe.pSyncCounts = make(map[SymAddr]int64, len(s.pSyncCounts))
		}
		//ntblint:ordered — copying into a map; insertion order is invisible
		for k, v := range s.pSyncCounts {
			pe.pSyncCounts[k] = v
		}
	}
	pe.nextTag = s.nextTag
	pe.matchTable = s.matchTable
	pe.matchTableReady = s.matchTableReady
	pe.nextCtxID = s.nextCtxID
	pe.stats = s.stats
	pe.link.Restore(s.link)
}

// LaunchForked spawns one application process per PE running body
// directly, without re-running shmem_init: a forked world already
// carries the post-init runtime the snapshot captured. Drive with
// Cluster.RunSim, or use RunKeepForked.
func (w *World) LaunchForked(body func(p *sim.Proc, pe *PE)) {
	for _, pe := range w.pes {
		pe := pe
		pe.hsim.Go(peName("pe:", pe.id), func(p *sim.Proc) {
			body(p, pe)
		})
	}
}

// RunKeepForked is RunKeep for a forked (or continuing) world: body
// starts at the current virtual time with no init prefix, the world's
// daemons stay parked afterwards for recycling. Calling it on a world
// that just finished a RunKeep continues that run's future — the
// reference behaviour Fork is tested against.
func (w *World) RunKeepForked(body func(p *sim.Proc, pe *PE)) error {
	w.LaunchForked(body)
	return w.Cluster.RunSim()
}
