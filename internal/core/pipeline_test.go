package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/driver"
	"repro/internal/sim"
)

// Tests for the pipelined header-in-window link protocol (Options.
// Pipeline >= 2), the implemented version of the paper's future-work
// latency reduction.

func TestPipelinePutIntegrityAllHops(t *testing.T) {
	for _, depth := range []int{2, 4, 8} {
		for _, hops := range []int{1, 2} {
			w := newWorldOpts(3, Options{Pipeline: depth})
			const n = 200_000
			want := make([]byte, n)
			rand.New(rand.NewSource(int64(depth*10 + hops))).Read(want)
			var got []byte
			err := w.Run(func(p *sim.Proc, pe *PE) {
				sym := pe.MustMalloc(p, n)
				pe.BarrierAll(p)
				if pe.ID() == 0 {
					pe.PutBytes(p, hops, sym, want)
				}
				pe.BarrierAll(p)
				if pe.ID() == hops {
					got = make([]byte, n)
					pe.LocalRead(p, sym, got)
				}
			})
			if err != nil {
				t.Fatalf("depth=%d hops=%d: %v", depth, hops, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("depth=%d hops=%d: data corrupted", depth, hops)
			}
		}
	}
}

func TestPipelineGetAndAtomics(t *testing.T) {
	w := newWorldOpts(3, Options{Pipeline: 4})
	const n = 90_000
	want := bytes.Repeat([]byte{0x3C}, n)
	var got []byte
	var counter int64
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		ctr := pe.MustMalloc(p, 8)
		if pe.ID() == 2 {
			pe.LocalWrite(p, sym, want)
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			got = make([]byte, n)
			pe.GetBytes(p, 2, sym, got)
		}
		pe.FetchAddInt64(p, 1, ctr, int64(pe.ID())+1)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			counter = pe.FetchInt64(p, 1, ctr)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pipelined get corrupted")
	}
	if counter != 6 {
		t.Fatalf("pipelined atomics sum = %d, want 6", counter)
	}
}

func TestPipelinePutLatencyBelowStopAndWait(t *testing.T) {
	// The point of the exercise: with credits, a put's chunks stream
	// without waiting for per-chunk ACKs.
	lat := func(depth int) sim.Duration {
		w := newWorldOpts(3, Options{Pipeline: depth})
		var d sim.Duration
		const n = 512 << 10
		err := w.Run(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, n)
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				start := p.Now()
				pe.PutBytes(p, 1, sym, make([]byte, n))
				d = p.Now().Sub(start)
			}
			pe.BarrierAll(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	classic, pipe4 := lat(0), lat(4)
	if float64(pipe4) > 0.5*float64(classic) {
		t.Fatalf("pipelined put (%v) should be far below stop-and-wait (%v)", pipe4, classic)
	}
	pipe8 := lat(8)
	if pipe8 > pipe4 {
		t.Fatalf("deeper pipeline (%v) should not be slower than depth 4 (%v)", pipe8, pipe4)
	}
}

func TestPipelineBarrierFlushesMultiHop(t *testing.T) {
	// The delivery-flush property must survive the protocol change:
	// chunks may sit unprocessed in inbound windows when a barrier
	// token arrives, and the token must wait for them.
	f := func(seed int64) bool {
		n := 4 + int(seed%3)
		w := newWorldOpts(n, Options{Pipeline: 4})
		const sz = 15_000
		ok := true
		err := w.Run(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, sz*n)
			pe.BarrierAll(p)
			for tgt := 0; tgt < n; tgt++ {
				if tgt == pe.ID() {
					continue
				}
				block := bytes.Repeat([]byte{byte(pe.ID()*16 + tgt)}, sz)
				pe.PutBytesNBI(p, tgt, sym+SymAddr(pe.ID()*sz), block)
			}
			pe.BarrierAll(p)
			buf := make([]byte, sz)
			for from := 0; from < n; from++ {
				if from == pe.ID() {
					continue
				}
				pe.LocalRead(p, sym+SymAddr(from*sz), buf)
				want := byte(from*16 + pe.ID())
				for _, b := range buf {
					if b != want {
						ok = false
						return
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDifferentialPrograms(t *testing.T) {
	for seed := int64(11); seed <= 13; seed++ {
		runDifferential(t, seed, Options{Pipeline: 4}, 4, 3, 2500)
	}
	runDifferential(t, 21, Options{Pipeline: 8, Routing: RouteShortest}, 5, 3, 2000)
}

func TestPipelineSignalOrdering(t *testing.T) {
	// Data-before-signal must hold: both ride the same in-order slots.
	w := newWorldOpts(3, Options{Pipeline: 4})
	const n = 64 << 10
	payload := bytes.Repeat([]byte{0xD4}, n)
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		data := pe.MustMalloc(p, n)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutSignal(p, 2, data, payload, sig, SignalSet, 1)
		}
		if pe.ID() == 2 {
			pe.WaitUntilInt64(p, sig, CmpEQ, 1)
			got = make([]byte, n)
			pe.LocalRead(p, data, got)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("signal overtook data under pipelining")
	}
}

func TestPipelineCollectives(t *testing.T) {
	w := newWorldOpts(4, Options{Pipeline: 4})
	sums := make([]int64, 4)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, 8)
		dst := pe.MustMalloc(p, 8)
		LocalPut(p, pe, src, []int64{int64(pe.ID() + 1)})
		pe.BarrierAll(p)
		Reduce[int64](p, pe, OpSum, dst, src, 1)
		var o [1]int64
		LocalGet(p, pe, dst, o[:])
		sums[pe.ID()] = o[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range sums {
		if s != 10 {
			t.Fatalf("pe %d pipelined reduce = %d", id, s)
		}
	}
}

func TestPipelineTooDeepRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("absurd pipeline depth accepted")
		}
	}()
	// 1MB window / 64 slots = 16KB slots < 64KB BypassChunk.
	newWorldOpts(3, Options{Pipeline: 64})
}

func TestPipelineSendRecv(t *testing.T) {
	w := newWorldOpts(3, Options{Pipeline: 4})
	var got []byte
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.Send(p, 2, 9, []byte("rendezvous over the pipeline"))
		}
		if pe.ID() == 2 {
			got = make([]byte, 64)
			n := pe.Recv(p, 0, 9, got)
			got = got[:n]
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "rendezvous over the pipeline" {
		t.Fatalf("pipelined send/recv = %q", got)
	}
}

func TestPipelineStatsStillCount(t *testing.T) {
	w := newWorldOpts(3, Options{Pipeline: 2})
	var st Stats
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 4096)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 2, sym, make([]byte, 4096))
		}
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			st = pe.Stats()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksForwarded == 0 {
		t.Fatal("transit host forwarded nothing under pipelining")
	}
	_ = driver.SlotHeaderBytes
}
