package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// newWorldOpts builds an n-host world with explicit options.
func newWorldOpts(n int, opts Options) *World {
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), n)
	if err != nil {
		panic(err)
	}
	return NewWorld(c, opts)
}

// Arc selection itself (dirTo) is a ring-link concern and is unit-tested
// in internal/fabric; the tests here exercise the end-to-end behaviour
// the policy produces.

func TestShortestRoutingIntegrity(t *testing.T) {
	// Every pair exchanges tagged data under shortest routing; all
	// blocks must arrive intact whichever arc they took.
	const n = 6
	w := newWorldOpts(n, Options{Routing: RouteShortest})
	const sz = 15_000
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, sz*n)
		pe.BarrierAll(p)
		for tgt := 0; tgt < n; tgt++ {
			if tgt == pe.ID() {
				continue
			}
			pe.PutBytes(p, tgt, sym+SymAddr(pe.ID()*sz),
				bytes.Repeat([]byte{byte(pe.ID()*16 + tgt)}, sz))
		}
		pe.BarrierAll(p)
		buf := make([]byte, sz)
		for from := 0; from < n; from++ {
			if from == pe.ID() {
				continue
			}
			pe.LocalRead(p, sym+SymAddr(from*sz), buf)
			want := byte(from*16 + pe.ID())
			for _, b := range buf {
				if b != want {
					t.Errorf("pe %d slot %d corrupted: got %d want %d", pe.ID(), from, b, want)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShortestRoutingGets(t *testing.T) {
	const n = 5
	w := newWorldOpts(n, Options{Routing: RouteShortest})
	const sz = 9_000
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, sz)
		pe.LocalWrite(p, sym, bytes.Repeat([]byte{byte('a' + pe.ID())}, sz))
		pe.BarrierAll(p)
		// Everyone gets from the PE two to its LEFT (a leftward-routed
		// request under shortest policy).
		owner := (pe.ID() - 2 + n) % n
		got := make([]byte, sz)
		pe.GetBytes(p, owner, sym, got)
		for _, b := range got {
			if b != byte('a'+owner) {
				t.Errorf("pe %d got %c from %d", pe.ID(), b, owner)
				return
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShortestHalvesFarTransferLatency(t *testing.T) {
	// A put from PE 0 to PE n-1 is (n-1) rightward hops under the
	// paper's policy but a single leftward hop under shortest routing,
	// and gets shed the same distance. Gets are synchronous round
	// trips, so they show the gap sharply.
	const n = 6
	const size = 64 << 10
	lat := func(routing Routing) sim.Duration {
		w := newWorldOpts(n, Options{Routing: routing})
		var d sim.Duration
		err := w.Run(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, size)
			buf := make([]byte, size)
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				start := p.Now()
				pe.GetBytes(p, n-1, sym, buf)
				d = p.Now().Sub(start)
			}
			pe.BarrierAll(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	right, short := lat(RouteRightward), lat(RouteShortest)
	if float64(short) > 0.5*float64(right) {
		t.Fatalf("shortest routing get (%v) should be far below rightward (%v)", short, right)
	}
}

func TestShortestBarrierCostsTwoRounds(t *testing.T) {
	cost := func(routing Routing) sim.Duration {
		w := newWorldOpts(4, Options{Routing: routing})
		var d sim.Duration
		err := w.Run(func(p *sim.Proc, pe *PE) {
			pe.BarrierAll(p)
			start := p.Now()
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				d = p.Now().Sub(start)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	one, two := cost(RouteRightward), cost(RouteShortest)
	ratio := float64(two) / float64(one)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("bidirectional barrier should cost ~2x: rightward %v, shortest %v", one, two)
	}
}

func TestShortestBarrierFlushesBothDirections(t *testing.T) {
	// The delivery-flush property under shortest routing: every
	// pre-barrier put — including leftward multi-hop ones — is visible
	// after BarrierAll, across random traffic patterns and ring sizes
	// up to 8 (leftward chains up to 4 hops).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4) // 5..8 hosts
		w := newWorldOpts(n, Options{Routing: RouteShortest})
		const sz = 8_000
		ok := true
		err := w.Run(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, sz*n)
			pe.BarrierAll(p)
			for tgt := 0; tgt < n; tgt++ {
				if tgt == pe.ID() {
					continue
				}
				block := bytes.Repeat([]byte{byte(pe.ID()*16 + tgt)}, sz)
				pe.PutBytesNBI(p, tgt, sym+SymAddr(pe.ID()*sz), block)
			}
			pe.BarrierAll(p)
			buf := make([]byte, sz)
			for from := 0; from < n; from++ {
				if from == pe.ID() {
					continue
				}
				pe.LocalRead(p, sym+SymAddr(from*sz), buf)
				want := byte(from*16 + pe.ID())
				for _, b := range buf {
					if b != want {
						ok = false
						return
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestRequiresRingBarrier(t *testing.T) {
	for _, algo := range []BarrierAlgo{BarrierCentral, BarrierDissemination} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v + shortest routing was accepted", algo)
				}
			}()
			newWorldOpts(3, Options{Routing: RouteShortest, Barrier: algo})
		}()
	}
}

func TestRoutingString(t *testing.T) {
	if fmt.Sprint(RouteRightward) != "rightward" || fmt.Sprint(RouteShortest) != "shortest" {
		t.Error("Routing.String broken")
	}
}
