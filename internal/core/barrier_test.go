package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func barrierAlgos() []BarrierAlgo {
	return []BarrierAlgo{BarrierRing, BarrierCentral, BarrierDissemination}
}

func TestBarrierSynchronises(t *testing.T) {
	// No PE may leave the barrier before the last PE enters it.
	for _, algo := range barrierAlgos() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for _, n := range []int{2, 3, 5, 8} {
				w := newWorld(n, Options{Barrier: algo})
				enter := make([]sim.Time, n)
				leave := make([]sim.Time, n)
				err := w.Run(func(p *sim.Proc, pe *PE) {
					// Stagger arrivals hard.
					p.Sleep(sim.Duration(pe.ID()) * 500 * sim.Microsecond)
					enter[pe.ID()] = p.Now()
					pe.BarrierAll(p)
					leave[pe.ID()] = p.Now()
				})
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				var lastEnter sim.Time
				for _, e := range enter {
					if e > lastEnter {
						lastEnter = e
					}
				}
				for id, l := range leave {
					if l < lastEnter {
						t.Fatalf("n=%d: pe %d left barrier at %v before last entry %v",
							n, id, l, lastEnter)
					}
				}
			}
		})
	}
}

func TestBarrierRepeated(t *testing.T) {
	for _, algo := range barrierAlgos() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			w := newWorld(3, Options{Barrier: algo})
			counters := make([]int, 3)
			err := w.Run(func(p *sim.Proc, pe *PE) {
				for round := 0; round < 10; round++ {
					// Unequal work between rounds.
					p.Sleep(sim.Duration((pe.ID()*7+round*3)%11) * 100 * sim.Microsecond)
					counters[pe.ID()]++
					pe.BarrierAll(p)
					// After the round-r barrier everyone has counted round
					// r; a fast PE may already have counted r+1 but can
					// never be further ahead (it would block in the next
					// barrier).
					for id, c := range counters {
						if c < round+1 || c > round+2 {
							t.Errorf("round %d: pe %d count %d out of [%d,%d]",
								round, id, c, round+1, round+2)
							return
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBarrierFlushesMultiHopPuts(t *testing.T) {
	// The data-delivery guarantee: after BarrierAll returns, every put
	// issued before the barrier — including multi-hop ones still in
	// bypass buffers — is visible at its destination.
	for _, algo := range barrierAlgos() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				const n = 5
				w := newWorld(n, Options{Barrier: algo})
				const sz = 20_000
				ok := true
				err := w.Run(func(p *sim.Proc, pe *PE) {
					rng := rand.New(rand.NewSource(seed + int64(pe.ID())))
					sym := pe.MustMalloc(p, sz*n)
					pe.BarrierAll(p)
					// Every PE puts a tagged block into every other PE's
					// slot — a storm of 1..4-hop transfers.
					for t := 0; t < n; t++ {
						if t == pe.ID() {
							continue
						}
						block := bytes.Repeat([]byte{byte(pe.ID()*16 + t)}, sz)
						if rng.Intn(2) == 0 {
							pe.PutBytes(p, t, sym+SymAddr(pe.ID()*sz), block)
						} else {
							pe.PutBytesNBI(p, t, sym+SymAddr(pe.ID()*sz), block)
						}
					}
					pe.BarrierAll(p)
					// Check every slot locally.
					buf := make([]byte, sz)
					for from := 0; from < n; from++ {
						if from == pe.ID() {
							continue
						}
						pe.LocalRead(p, sym+SymAddr(from*sz), buf)
						want := byte(from*16 + pe.ID())
						for _, b := range buf {
							if b != want {
								ok = false
								return
							}
						}
					}
				})
				return err == nil && ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRingBarrierLatencyIsMillisecondScale(t *testing.T) {
	// Fig 10 sanity: a 3-host ring barrier costs on the order of a
	// millisecond, dominated by the 2N doorbell+wake hops.
	w := newWorld(3, Options{})
	var d sim.Duration
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		start := p.Now()
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			d = p.Now().Sub(start)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d < 500*sim.Microsecond || d > 4000*sim.Microsecond {
		t.Fatalf("ring barrier latency %v outside the paper's regime", d)
	}
}

func TestSyncAllCheaperThanBarrierAll(t *testing.T) {
	w := newWorld(3, Options{})
	var sync, barrier sim.Duration
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pe.BarrierAll(p)
		start := p.Now()
		pe.SyncAll(p)
		if pe.ID() == 0 {
			sync = p.Now().Sub(start)
		}
		pe.BarrierAll(p)
		start = p.Now()
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			barrier = p.Now().Sub(start)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sync > barrier {
		t.Fatalf("SyncAll (%v) should not exceed BarrierAll (%v)", sync, barrier)
	}
}

func TestBarrierScalingWithRingSize(t *testing.T) {
	// Ring barrier cost grows linearly in N (2N hops).
	lat := func(n int) sim.Duration {
		w := newWorld(n, Options{})
		var d sim.Duration
		err := w.Run(func(p *sim.Proc, pe *PE) {
			pe.BarrierAll(p)
			start := p.Now()
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				d = p.Now().Sub(start)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	l3, l6 := lat(3), lat(6)
	ratio := float64(l6) / float64(l3)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("barrier should scale ~linearly: n=3 %v, n=6 %v (ratio %.2f)", l3, l6, ratio)
	}
}

func TestBarrierAlgorithmsAllCompleteLargeRing(t *testing.T) {
	for _, algo := range barrierAlgos() {
		for _, n := range []int{2, 3, 7} {
			w := newWorld(n, Options{Barrier: algo})
			rounds := 0
			err := w.Run(func(p *sim.Proc, pe *PE) {
				for i := 0; i < 5; i++ {
					pe.BarrierAll(p)
				}
				if pe.ID() == 0 {
					rounds = int(pe.Stats().Barriers)
				}
			})
			if err != nil {
				t.Fatalf("%v n=%d: %v", algo, n, err)
			}
			// init barrier + 5 explicit ones
			if rounds != 6 {
				t.Fatalf("%v n=%d: %d barriers recorded", algo, n, rounds)
			}
		}
	}
}

func TestBarrierStatsName(t *testing.T) {
	for algo, want := range map[BarrierAlgo]string{
		BarrierRing:          "ring",
		BarrierCentral:       "central",
		BarrierDissemination: "dissemination",
	} {
		if got := algo.String(); got != want {
			t.Errorf("BarrierAlgo(%d).String() = %q, want %q", int(algo), got, want)
		}
	}
	if fmt.Sprint(CmpGE) != ">=" {
		t.Errorf("CmpGE prints %v", CmpGE)
	}
}
