package core

import (
	"testing"

	"repro/internal/sim"
)

func TestActiveSetGeometry(t *testing.T) {
	as := ActiveSet{Start: 1, LogStride: 1, Size: 3} // PEs 1, 3, 5
	want := []int{1, 3, 5}
	got := as.Members()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	ranks := map[int]int{1: 0, 3: 1, 5: 2, 0: -1, 2: -1, 4: -1, 6: -1}
	for pe, want := range ranks {
		if got := as.Rank(pe); got != want {
			t.Errorf("Rank(%d) = %d, want %d", pe, got, want)
		}
	}
	if as.Member(2) != 5 {
		t.Errorf("Member(2) = %d", as.Member(2))
	}
}

func TestActiveSetValidation(t *testing.T) {
	w := newWorld(4, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pSync := pe.MustMalloc(p, BarrierSyncWords*8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			for _, bad := range []ActiveSet{
				{Start: 0, LogStride: 0, Size: 0},  // empty
				{Start: 0, LogStride: 0, Size: 9},  // too big
				{Start: 2, LogStride: 1, Size: 3},  // 2,4,6 exceeds 4 PEs
				{Start: -1, LogStride: 0, Size: 2}, // negative start
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("set %+v accepted", bad)
						}
					}()
					pe.BarrierSet(p, bad, pSync)
				}()
			}
			// Non-member call panics too.
			func() {
				defer func() {
					if recover() == nil {
						t.Error("non-member barrier accepted")
					}
				}()
				pe.BarrierSet(p, ActiveSet{Start: 1, LogStride: 0, Size: 2}, pSync)
			}()
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSetSynchronisesMembersOnly(t *testing.T) {
	// PEs 0, 2, 4 of a 6-ring form the set; odd PEs never participate.
	w := newWorld(6, Options{})
	as := ActiveSet{Start: 0, LogStride: 1, Size: 3}
	enter := make([]sim.Time, 6)
	leave := make([]sim.Time, 6)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pSync := pe.MustMalloc(p, BarrierSyncWords*8)
		pe.BarrierAll(p)
		if as.Rank(pe.ID()) >= 0 {
			p.Sleep(sim.Duration(pe.ID()) * 400 * sim.Microsecond)
			enter[pe.ID()] = p.Now()
			pe.BarrierSet(p, as, pSync)
			leave[pe.ID()] = p.Now()
			// Reuse without reinitialisation.
			pe.BarrierSet(p, as, pSync)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastEnter sim.Time
	for _, m := range as.Members() {
		if enter[m] > lastEnter {
			lastEnter = enter[m]
		}
	}
	for _, m := range as.Members() {
		if leave[m] < lastEnter {
			t.Fatalf("member %d left set barrier at %v before last entry %v", m, leave[m], lastEnter)
		}
	}
}

func TestBarrierSetSingleton(t *testing.T) {
	w := newWorld(3, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pSync := pe.MustMalloc(p, BarrierSyncWords*8)
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			before := p.Now()
			pe.BarrierSet(p, ActiveSet{Start: 1, LogStride: 0, Size: 1}, pSync)
			if p.Now() != before {
				t.Error("singleton set barrier should be free")
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSetStrided(t *testing.T) {
	w := newWorld(6, Options{})
	as := ActiveSet{Start: 1, LogStride: 1, Size: 3} // PEs 1, 3, 5
	results := make([][]int64, 6)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pSync := pe.MustMalloc(p, BarrierSyncWords*8)
		data := pe.MustMalloc(p, 5*8)
		pe.BarrierAll(p)
		if as.Rank(pe.ID()) >= 0 {
			if pe.ID() == 3 {
				LocalPut(p, pe, data, []int64{10, 20, 30, 40, 50})
			}
			BroadcastSet[int64](p, pe, as, 3, data, data, 5, pSync)
			out := make([]int64, 5)
			LocalGet(p, pe, data, out)
			results[pe.ID()] = out
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range as.Members() {
		for i, v := range results[m] {
			if v != int64((i+1)*10) {
				t.Fatalf("member %d broadcast = %v", m, results[m])
			}
		}
	}
	// Non-members untouched.
	if results[0] != nil || results[2] != nil || results[4] != nil {
		t.Fatal("non-member participated")
	}
}

func TestReduceSetStrided(t *testing.T) {
	w := newWorld(8, Options{})
	as := ActiveSet{Start: 0, LogStride: 2, Size: 2} // PEs 0, 4
	sums := make([]int64, 8)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pSync := pe.MustMalloc(p, BarrierSyncWords*8)
		pWrk := pe.MustMalloc(p, 2*8)
		val := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if as.Rank(pe.ID()) >= 0 {
			LocalPut(p, pe, val, []int64{int64(pe.ID() + 1)})
			ReduceSet[int64](p, pe, as, OpSum, val, val, 1, pWrk, pSync)
			var out [1]int64
			LocalGet(p, pe, val, out[:])
			sums[pe.ID()] = out[0]
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range as.Members() {
		if sums[m] != 6 { // (0+1) + (4+1)
			t.Fatalf("member %d reduce = %d, want 6", m, sums[m])
		}
	}
}

func TestReduceSetRepeatedReusesPSync(t *testing.T) {
	w := newWorld(4, Options{})
	as := ActiveSet{Start: 0, LogStride: 0, Size: 4}
	var out [1]int64
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pSync := pe.MustMalloc(p, BarrierSyncWords*8)
		pWrk := pe.MustMalloc(p, 4*8)
		val := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		for round := 1; round <= 5; round++ {
			LocalPut(p, pe, val, []int64{int64(round)})
			ReduceSet[int64](p, pe, as, OpSum, val, val, 1, pWrk, pSync)
			LocalGet(p, pe, val, out[:])
			if out[0] != int64(4*round) {
				t.Errorf("round %d: pe %d sum = %d, want %d", round, pe.ID(), out[0], 4*round)
				return
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSetLargePayloadOrdering(t *testing.T) {
	// A multi-chunk broadcast to far members must not let the ready
	// flag overtake the data.
	w := newWorld(5, Options{})
	as := ActiveSet{Start: 0, LogStride: 0, Size: 5}
	const n = 12_000
	bad := false
	err := w.Run(func(p *sim.Proc, pe *PE) {
		pSync := pe.MustMalloc(p, BarrierSyncWords*8)
		data := pe.MustMalloc(p, n*8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(i) * 3
			}
			LocalPut(p, pe, data, vals)
		}
		BroadcastSet[int64](p, pe, as, 0, data, data, n, pSync)
		out := make([]int64, n)
		LocalGet(p, pe, data, out)
		for i, v := range out {
			if v != int64(i)*3 {
				bad = true
				return
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("broadcast flag overtook its data")
	}
}
