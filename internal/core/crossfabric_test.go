package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// Cross-backend differential suite: the same OpenSHMEM programs run on
// every fabric backend. Timing is allowed — expected, even — to differ
// between fabrics; the runtime's semantic invariants (no lost or torn
// writes, atomic sums exact, barriers flush delivery, reset and fork
// equivalence) must not.

// newFabricWorld builds an n-host world over the given backend with the
// default profile.
func newFabricWorld(k fabric.Kind, n int, opts Options) *World {
	s := sim.New()
	c, err := fabric.New(fabric.Config{Sim: s, Par: model.Default(), Hosts: n, Kind: k})
	if err != nil {
		panic(err)
	}
	return NewWorld(c, opts)
}

// fabricCase is one backend at a host count it supports.
type fabricCase struct {
	kind fabric.Kind
	n    int
}

// newBackendCases lists the non-ring backends (the ring is the reference
// topology the rest of this package exercises) at representative sizes.
func newBackendCases() []fabricCase {
	return []fabricCase{
		{fabric.KindNTBPair, 2},
		{fabric.KindPCIeSwitch, 2},
		{fabric.KindPCIeSwitch, 4},
		{fabric.KindCXL, 2},
		{fabric.KindCXL, 4},
	}
}

func (fc fabricCase) name() string { return fmt.Sprintf("%s-n%d", fc.kind, fc.n) }

func TestCrossFabricPutIntegrity(t *testing.T) {
	for _, fc := range newBackendCases() {
		t.Run(fc.name(), func(t *testing.T) {
			w := newFabricWorld(fc.kind, fc.n, Options{})
			defer w.Cluster.Sim.Shutdown()
			const size = 100_000
			// Every PE puts a distinct pattern to its right neighbour; after
			// the barrier every PE must hold its left neighbour's bytes.
			want := make([][]byte, fc.n)
			for i := range want {
				want[i] = make([]byte, size)
				rand.New(rand.NewSource(int64(1000 + i))).Read(want[i])
			}
			got := make([][]byte, fc.n)
			err := w.RunKeep(func(p *sim.Proc, pe *PE) {
				sym := pe.MustMalloc(p, size)
				pe.BarrierAll(p) // shmem_malloc is collective; no put may race it
				pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, want[pe.ID()])
				pe.BarrierAll(p)
				got[pe.ID()] = make([]byte, size)
				pe.LocalRead(p, sym, got[pe.ID()])
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < fc.n; i++ {
				from := (i - 1 + fc.n) % fc.n
				if !bytes.Equal(got[i], want[from]) {
					t.Errorf("PE %d does not hold PE %d's put", i, from)
				}
			}
		})
	}
}

func TestCrossFabricGetIntegrity(t *testing.T) {
	for _, fc := range newBackendCases() {
		t.Run(fc.name(), func(t *testing.T) {
			w := newFabricWorld(fc.kind, fc.n, Options{})
			defer w.Cluster.Sim.Shutdown()
			const size = 60_000
			// Every PE fills its symmetric region with its own pattern, then
			// every PE gets from every peer and verifies in place.
			err := w.RunKeep(func(p *sim.Proc, pe *PE) {
				sym := pe.MustMalloc(p, size)
				mine := make([]byte, size)
				rand.New(rand.NewSource(int64(2000 + pe.ID()))).Read(mine)
				pe.LocalWrite(p, sym, mine)
				pe.BarrierAll(p)
				buf := make([]byte, size)
				for peer := 0; peer < pe.NumPEs(); peer++ {
					pe.GetBytes(p, peer, sym, buf)
					theirs := make([]byte, size)
					rand.New(rand.NewSource(int64(2000 + peer))).Read(theirs)
					if !bytes.Equal(buf, theirs) {
						panic(fmt.Sprintf("PE %d read corrupt data from PE %d", pe.ID(), peer))
					}
				}
				pe.BarrierAll(p)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrossFabricAtomicSum is the no-lost-writes invariant under
// contention: every PE atomically adds to one counter on PE 0; the sum
// must be exact on every backend, including CXL, whose inline delivery
// serialises on the target's home agent rather than a service thread.
func TestCrossFabricAtomicSum(t *testing.T) {
	for _, fc := range newBackendCases() {
		t.Run(fc.name(), func(t *testing.T) {
			w := newFabricWorld(fc.kind, fc.n, Options{})
			defer w.Cluster.Sim.Shutdown()
			const addsPerPE = 50
			var got int64
			err := w.RunKeep(func(p *sim.Proc, pe *PE) {
				ctr := pe.MustMalloc(p, 8)
				pe.BarrierAll(p)
				for i := 0; i < addsPerPE; i++ {
					pe.AddInt64(p, 0, ctr, int64(pe.ID()*addsPerPE+i+1))
				}
				pe.BarrierAll(p)
				if pe.ID() == 0 {
					raw := make([]byte, 8)
					pe.LocalRead(p, ctr, raw)
					got = int64(binary.LittleEndian.Uint64(raw))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			var want int64
			for id := 0; id < fc.n; id++ {
				for i := 0; i < addsPerPE; i++ {
					want += int64(id*addsPerPE + i + 1)
				}
			}
			if got != want {
				t.Errorf("atomic sum = %d, want %d (writes lost)", got, want)
			}
		})
	}
}

// TestCrossFabricBarrierFlushes checks barrier safety: BarrierAll must
// not complete while a put is still in flight, on native-barrier
// fabrics (pair) and dissemination-fallback fabrics (switch, CXL) alike.
func TestCrossFabricBarrierFlushes(t *testing.T) {
	for _, fc := range newBackendCases() {
		t.Run(fc.name(), func(t *testing.T) {
			w := newFabricWorld(fc.kind, fc.n, Options{})
			defer w.Cluster.Sim.Shutdown()
			const rounds, size = 5, 32_000
			err := w.RunKeep(func(p *sim.Proc, pe *PE) {
				sym := pe.MustMalloc(p, size)
				buf := make([]byte, size)
				pe.BarrierAll(p)
				for r := 0; r < rounds; r++ {
					for i := range buf {
						buf[i] = byte(r + pe.ID())
					}
					pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, buf)
					pe.BarrierAll(p)
					// After the barrier the left neighbour's round-r bytes
					// must be fully visible.
					left := (pe.ID() - 1 + pe.NumPEs()) % pe.NumPEs()
					chk := make([]byte, size)
					pe.LocalRead(p, sym, chk)
					for i, b := range chk {
						if b != byte(r+left) {
							panic(fmt.Sprintf("PE %d round %d byte %d = %d, want %d: barrier did not flush delivery",
								pe.ID(), r, i, b, byte(r+left)))
						}
					}
					pe.BarrierAll(p)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrossFabricShapesDiffer pins the point of having backends at all:
// the same 2-host workload completes at different virtual times on the
// pair, the switch, and the CXL window, because their cost models are
// genuinely different (doorbell service vs core contention vs
// synchronous load/store completion).
func TestCrossFabricShapesDiffer(t *testing.T) {
	times := map[fabric.Kind]sim.Time{}
	for _, k := range []fabric.Kind{fabric.KindNTBPair, fabric.KindPCIeSwitch, fabric.KindCXL} {
		w := newFabricWorld(k, 2, Options{})
		const size = 256 << 10
		err := w.RunKeep(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, size)
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				pe.PutBytes(p, 1, sym, make([]byte, size))
			}
			pe.BarrierAll(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		times[k] = w.Cluster.Sim.Now()
		w.Cluster.Sim.Shutdown()
	}
	kinds := []fabric.Kind{fabric.KindNTBPair, fabric.KindPCIeSwitch, fabric.KindCXL}
	for i, a := range kinds {
		for _, b := range kinds[i+1:] {
			if times[a] == times[b] {
				t.Errorf("%s and %s complete at the same virtual time %v; cost models not distinct", a, b, times[a])
			}
		}
	}
}

// TestCrossFabricResetEquivalence holds the world-pool contract on the
// new backends: a reset world replays a workload bit-identically to a
// fresh one.
func TestCrossFabricResetEquivalence(t *testing.T) {
	for _, fc := range newBackendCases() {
		t.Run(fc.name(), func(t *testing.T) {
			first := resetScript(17, 3, 6)
			second := resetScript(42, 4, 5)

			recycled := newFabricWorld(fc.kind, fc.n, Options{})
			traceRun(t, recycled, first)
			recycled.Reset()
			gotTrace, gotEnd, gotStats := traceRun(t, recycled, second)
			recycled.Cluster.Sim.Shutdown()

			fresh := newFabricWorld(fc.kind, fc.n, Options{})
			wantTrace, wantEnd, wantStats := traceRun(t, fresh, second)
			fresh.Cluster.Sim.Shutdown()

			if gotEnd != wantEnd {
				t.Errorf("completion time: recycled %v, fresh %v", gotEnd, wantEnd)
			}
			if gotStats != wantStats {
				t.Errorf("pe 0 stats: recycled %+v, fresh %+v", gotStats, wantStats)
			}
			compareTraces(t, "reset vs fresh", gotTrace, wantTrace)
		})
	}
}

// TestCrossFabricForkEquivalence holds the prefix-cache contract on the
// new backends: a forked child runs the snapshot's future bit-identically
// to the captured world continuing in place.
func TestCrossFabricForkEquivalence(t *testing.T) {
	for _, fc := range newBackendCases() {
		t.Run(fc.name(), func(t *testing.T) {
			prefix := resetScript(23, 3, 6)
			body := resetScript(61, 2, 5)

			ref := newFabricWorld(fc.kind, fc.n, Options{})
			traceRun(t, ref, prefix)
			snap := ref.Snapshot()
			wantTrace, wantEnd, wantStats := traceRunForked(t, ref, body)
			ref.Cluster.Sim.Shutdown()

			child := newFabricWorld(fc.kind, fc.n, Options{})
			child.Fork(snap)
			gotTrace, gotEnd, gotStats := traceRunForked(t, child, body)
			child.Cluster.Sim.Shutdown()

			if gotEnd != wantEnd {
				t.Errorf("completion time: fork %v, continuation %v", gotEnd, wantEnd)
			}
			if gotStats != wantStats {
				t.Errorf("pe 0 stats: fork %+v, continuation %+v", gotStats, wantStats)
			}
			compareTraces(t, "fork vs continuation", gotTrace, wantTrace)
		})
	}
}

// TestCrossFabricDeterminism re-runs the same workload on two fresh
// worlds per backend and requires identical op traces and end times.
func TestCrossFabricDeterminism(t *testing.T) {
	for _, fc := range newBackendCases() {
		t.Run(fc.name(), func(t *testing.T) {
			script := resetScript(99, 3, 7)
			var traces [2][]OpEvent
			var ends [2]sim.Time
			for run := 0; run < 2; run++ {
				w := newFabricWorld(fc.kind, fc.n, Options{})
				traces[run], ends[run], _ = traceRun(t, w, script)
				w.Cluster.Sim.Shutdown()
			}
			if ends[0] != ends[1] {
				t.Errorf("end times differ: %v vs %v", ends[0], ends[1])
			}
			compareTraces(t, "run 0 vs run 1", traces[1], traces[0])
		})
	}
}
