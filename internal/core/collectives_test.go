package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestBroadcastBytes(t *testing.T) {
	w := newWorld(4, Options{})
	const n = 30_000
	want := bytes.Repeat([]byte{0xC3}, n)
	got := make([][]byte, 4)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, n)
		if pe.ID() == 2 {
			pe.LocalWrite(p, sym, want)
		}
		pe.BarrierAll(p)
		pe.BroadcastBytes(p, 2, sym, n)
		got[pe.ID()] = make([]byte, n)
		pe.LocalRead(p, sym, got[pe.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, g := range got {
		if !bytes.Equal(g, want) {
			t.Errorf("pe %d broadcast payload corrupted", id)
		}
	}
}

func TestFCollectBytes(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 1000
	got := make([][]byte, 3)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, n)
		dst := pe.MustMalloc(p, 3*n)
		pe.LocalWrite(p, src, bytes.Repeat([]byte{byte('A' + pe.ID())}, n))
		pe.BarrierAll(p)
		pe.FCollectBytes(p, src, dst, n)
		got[pe.ID()] = make([]byte, 3*n)
		pe.LocalRead(p, dst, got[pe.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, tag := range []byte{'A', 'B', 'C'} {
		want = append(want, bytes.Repeat([]byte{tag}, n)...)
	}
	for id, g := range got {
		if !bytes.Equal(g, want) {
			t.Errorf("pe %d fcollect result wrong", id)
		}
	}
}

func TestAllToAllBytes(t *testing.T) {
	w := newWorld(3, Options{})
	const n = 512
	got := make([][]byte, 3)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, 3*n)
		dst := pe.MustMalloc(p, 3*n)
		// Block for target t is tagged (me, t).
		for tgt := 0; tgt < 3; tgt++ {
			pe.LocalWrite(p, src+SymAddr(tgt*n),
				bytes.Repeat([]byte{byte(pe.ID()*10 + tgt)}, n))
		}
		pe.BarrierAll(p)
		pe.AllToAllBytes(p, src, dst, n)
		got[pe.ID()] = make([]byte, 3*n)
		pe.LocalRead(p, dst, got[pe.ID()])
	})
	if err != nil {
		t.Fatal(err)
	}
	for me, g := range got {
		for from := 0; from < 3; from++ {
			want := byte(from*10 + me)
			block := g[from*n : (from+1)*n]
			for _, b := range block {
				if b != want {
					t.Fatalf("pe %d block from %d holds %d, want %d", me, from, b, want)
				}
			}
		}
	}
}

func TestReduceSumInt64(t *testing.T) {
	w := newWorld(4, Options{})
	const nelems = 100
	results := make([][]int64, 4)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, nelems*8)
		dst := pe.MustMalloc(p, nelems*8)
		vals := make([]int64, nelems)
		for i := range vals {
			vals[i] = int64(pe.ID()*1000 + i)
		}
		LocalPut(p, pe, src, vals)
		pe.BarrierAll(p)
		Reduce[int64](p, pe, OpSum, dst, src, nelems)
		out := make([]int64, nelems)
		LocalGet(p, pe, dst, out)
		results[pe.ID()] = out
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, out := range results {
		for i, v := range out {
			want := int64((0+1+2+3)*1000 + 4*i)
			if v != want {
				t.Fatalf("pe %d sum[%d] = %d, want %d", id, i, v, want)
			}
		}
	}
}

func TestReduceMinMaxFloat64(t *testing.T) {
	w := newWorld(3, Options{})
	var minOut, maxOut float64
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, 8)
		dst := pe.MustMalloc(p, 8)
		LocalPut(p, pe, src, []float64{float64(pe.ID()*pe.ID()) - 2.5})
		pe.BarrierAll(p)
		Reduce[float64](p, pe, OpMin, dst, src, 1)
		if pe.ID() == 1 {
			var out [1]float64
			LocalGet(p, pe, dst, out[:])
			minOut = out[0]
		}
		Reduce[float64](p, pe, OpMax, dst, src, 1)
		if pe.ID() == 2 {
			var out [1]float64
			LocalGet(p, pe, dst, out[:])
			maxOut = out[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if minOut != -2.5 {
		t.Errorf("min = %v, want -2.5", minOut)
	}
	if maxOut != 1.5 {
		t.Errorf("max = %v, want 1.5", maxOut)
	}
}

func TestReduceProd(t *testing.T) {
	w := newWorld(3, Options{})
	var out int64
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, 8)
		dst := pe.MustMalloc(p, 8)
		LocalPut(p, pe, src, []int64{int64(pe.ID()) + 2}) // 2,3,4
		pe.BarrierAll(p)
		Reduce[int64](p, pe, OpProd, dst, src, 1)
		if pe.ID() == 0 {
			var o [1]int64
			LocalGet(p, pe, dst, o[:])
			out = o[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != 24 {
		t.Errorf("prod = %d, want 24", out)
	}
}

func TestReduceInPlace(t *testing.T) {
	// src == dst must work (common SPMD idiom).
	w := newWorld(3, Options{})
	outs := make([]int64, 3)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		buf := pe.MustMalloc(p, 8)
		LocalPut(p, pe, buf, []int64{int64(pe.ID() + 1)})
		pe.BarrierAll(p)
		Reduce[int64](p, pe, OpSum, buf, buf, 1)
		var o [1]int64
		LocalGet(p, pe, buf, o[:])
		outs[pe.ID()] = o[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range outs {
		if v != 6 {
			t.Errorf("pe %d in-place sum = %d, want 6", id, v)
		}
	}
}

func TestCollectVariableSizes(t *testing.T) {
	w := newWorld(3, Options{})
	results := make([][]int32, 3)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		mine := pe.ID() + 1 // PE0: 1 elem, PE1: 2, PE2: 3
		src := pe.MustMalloc(p, 3*4)
		dst := pe.MustMalloc(p, 6*4)
		vals := make([]int32, mine)
		for i := range vals {
			vals[i] = int32(pe.ID()*100 + i)
		}
		LocalPut(p, pe, src, vals)
		pe.BarrierAll(p)
		Collect[int32](p, pe, dst, src, mine)
		out := make([]int32, 6)
		LocalGet(p, pe, dst, out)
		results[pe.ID()] = out
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 100, 101, 200, 201, 202}
	for id, out := range results {
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("pe %d collect = %v, want %v", id, out, want)
			}
		}
	}
}

func TestReduceLeavesHeapClean(t *testing.T) {
	// The collective's scratch allocations must be freed symmetrically.
	w := newWorld(3, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, 64)
		dst := pe.MustMalloc(p, 64)
		LocalPut(p, pe, src, []float64{1, 2, 3, 4, 5, 6, 7, 8})
		pe.BarrierAll(p)
		before, _, _ := pe.HeapStats()
		Reduce[float64](p, pe, OpSum, dst, src, 8)
		after, _, _ := pe.HeapStats()
		if before != after {
			t.Errorf("pe %d leaked %d allocations in Reduce", pe.ID(), after-before)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = math.Pi
}

func TestBroadcastPipelinedIntegrity(t *testing.T) {
	for _, root := range []int{0, 3} {
		root := root
		w := newWorld(5, Options{})
		const n = 300_000
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(i*13 + root)
		}
		got := make([][]byte, 5)
		err := w.Run(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, n)
			if pe.ID() == root {
				pe.LocalWrite(p, sym, want)
			}
			pe.BarrierAll(p)
			pe.BroadcastBytesPipelined(p, root, sym, n)
			got[pe.ID()] = make([]byte, n)
			pe.LocalRead(p, sym, got[pe.ID()])
		})
		if err != nil {
			t.Fatalf("root=%d: %v", root, err)
		}
		for id, g := range got {
			if !bytes.Equal(g, want) {
				t.Fatalf("root=%d: pe %d pipelined broadcast corrupted", root, id)
			}
		}
	}
}

func TestBroadcastPipelinedHeapClean(t *testing.T) {
	w := newWorld(3, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 4096)
		pe.BarrierAll(p)
		before, _, _ := pe.HeapStats()
		pe.BroadcastBytesPipelined(p, 0, sym, 4096)
		after, _, _ := pe.HeapStats()
		if before != after {
			t.Errorf("pe %d leaked %d allocations", pe.ID(), after-before)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedFCollect(t *testing.T) {
	w := newWorld(3, Options{})
	results := make([][]float64, 3)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		src := pe.MustMalloc(p, 2*8)
		dst := pe.MustMalloc(p, 6*8)
		LocalPut(p, pe, src, []float64{float64(pe.ID()), float64(pe.ID()) + 0.5})
		pe.BarrierAll(p)
		FCollect[float64](p, pe, dst, src, 2)
		out := make([]float64, 6)
		LocalGet(p, pe, dst, out)
		results[pe.ID()] = out
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1, 1.5, 2, 2.5}
	for id, out := range results {
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("pe %d fcollect = %v, want %v", id, out, want)
			}
		}
	}
}

func TestBroadcastFromNonZeroRootAfterBarrierAlgos(t *testing.T) {
	// Collectives must work under every barrier algorithm option they
	// internally rely on.
	for _, algo := range barrierAlgos() {
		w := newWorldOpts(4, Options{Barrier: algo})
		var got int64
		err := w.Run(func(p *sim.Proc, pe *PE) {
			v := pe.MustMalloc(p, 8)
			if pe.ID() == 3 {
				LocalPut(p, pe, v, []int64{1234})
			}
			pe.BarrierAll(p)
			pe.BroadcastBytes(p, 3, v, 8)
			if pe.ID() == 1 {
				var out [1]int64
				LocalGet(p, pe, v, out[:])
				got = out[0]
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got != 1234 {
			t.Fatalf("%v: broadcast = %d", algo, got)
		}
	}
}
