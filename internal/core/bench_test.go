package core

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkWorldSpawnTeardown measures the full host-side cost of one
// experiment cell: build a 3-host ring world, run shmem_init plus a
// barrier on every PE, and tear the simulator down. The experiment
// harness pays exactly this per measurement point, so it bounds how
// fast figure sweeps can go.
func BenchmarkWorldSpawnTeardown(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := newWorld(3, Options{})
		if err := w.Run(func(p *sim.Proc, pe *PE) {
			pe.BarrierAll(p)
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "worlds/s")
}

// BenchmarkWorldPut1M measures b.N barrier-fenced 1 MiB puts — ~32
// protocol chunks each at the default PutChunk — inside one standing
// 3-host world. It is the transfer-path macro benchmark: with world
// construction amortised away, allocs/op tracks the whole stack's
// per-chunk SendChunk/DMA/flow-solver allocation cost.
func BenchmarkWorldPut1M(b *testing.B) {
	const size = 1 << 20
	buf := make([]byte, size)
	b.ReportAllocs()
	b.ResetTimer()
	w := newWorld(3, Options{})
	if err := w.Run(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, size)
		pe.BarrierAll(p)
		for i := 0; i < b.N; i++ {
			if pe.ID() == 0 {
				pe.PutBytes(p, 1, sym, buf)
			}
			pe.BarrierAll(p)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWorldPut64K measures one warm 64KiB put on a standing world
// pattern: world build + barrier + put per iteration, the inner loop of
// the Fig 9 sweeps.
func BenchmarkWorldPut64K(b *testing.B) {
	const size = 64 << 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := newWorld(3, Options{})
		if err := w.Run(func(p *sim.Proc, pe *PE) {
			sym := pe.MustMalloc(p, size)
			buf := make([]byte, size)
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				pe.PutBytes(p, 1, sym, buf)
			}
			pe.BarrierAll(p)
		}); err != nil {
			b.Fatal(err)
		}
	}
}
