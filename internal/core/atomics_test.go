package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestFetchAddAllPEsConverges(t *testing.T) {
	const perPE = 20
	w := newWorld(4, Options{})
	finals := make([]int64, 4)
	err := w.Run(func(p *sim.Proc, pe *PE) {
		ctr := pe.MustMalloc(p, 8)
		if pe.ID() == 0 {
			pe.LocalWrite(p, ctr, make([]byte, 8))
		}
		pe.BarrierAll(p)
		for i := 0; i < perPE; i++ {
			pe.FetchAddInt64(p, 0, ctr, 1)
		}
		pe.BarrierAll(p)
		finals[pe.ID()] = pe.FetchInt64(p, 0, ctr)
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range finals {
		if v != 4*perPE {
			t.Errorf("pe %d read final counter %d, want %d", id, v, 4*perPE)
		}
	}
}

func TestFetchAddReturnsUniqueTickets(t *testing.T) {
	w := newWorld(3, Options{})
	var tickets []int64
	err := w.Run(func(p *sim.Proc, pe *PE) {
		ctr := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		for i := 0; i < 10; i++ {
			tickets = append(tickets, pe.FetchAddInt64(p, 1, ctr, 1))
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, tk := range tickets {
		if seen[tk] {
			t.Fatalf("duplicate ticket %d", tk)
		}
		seen[tk] = true
	}
	if len(seen) != 30 {
		t.Fatalf("%d tickets, want 30", len(seen))
	}
}

func TestCompareSwapSemantics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		v := pe.MustMalloc(p, 8)
		if pe.ID() == 1 {
			LocalPut[int64](p, pe, v, []int64{100})
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			if old := pe.CompareSwapInt64(p, 1, v, 99, 1); old != 100 {
				t.Errorf("failed cswap returned %d, want 100", old)
			}
			if old := pe.CompareSwapInt64(p, 1, v, 100, 7); old != 100 {
				t.Errorf("successful cswap returned %d, want 100", old)
			}
			if got := pe.FetchInt64(p, 1, v); got != 7 {
				t.Errorf("value after cswap = %d, want 7", got)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSwapSetFetchInc(t *testing.T) {
	w := newWorld(3, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		v := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 2 {
			pe.SetInt64(p, 0, v, 41)
			if old := pe.SwapInt64(p, 0, v, 5); old != 41 {
				t.Errorf("swap old = %d", old)
			}
			pe.IncInt64(p, 0, v)
			if old := pe.FetchIncInt64(p, 0, v); old != 6 {
				t.Errorf("fetch-inc old = %d", old)
			}
			if got := pe.FetchInt64(p, 0, v); got != 7 {
				t.Errorf("final = %d", got)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitwiseAtomics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		v := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.SetInt64(p, 1, v, 0b1100)
			pe.AndInt64(p, 1, v, 0b1010)
			pe.OrInt64(p, 1, v, 0b0001)
			pe.XorInt64(p, 1, v, 0b1111)
			// 1100 & 1010 = 1000; | 0001 = 1001; ^ 1111 = 0110
			if got := pe.FetchInt64(p, 1, v); got != 0b0110 {
				t.Errorf("bitwise chain = %#b, want 0b0110", got)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInt32Atomics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		// Two adjacent int32 counters must not clobber each other.
		v := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.SetInt32(p, 1, v, -5)
			pe.SetInt32(p, 1, v+4, 1000)
			if old := pe.FetchAddInt32(p, 1, v, -3); old != -5 {
				t.Errorf("fetch-add32 old = %d", old)
			}
			if got := pe.FetchInt32(p, 1, v); got != -8 {
				t.Errorf("low counter = %d", got)
			}
			if got := pe.FetchInt32(p, 1, v+4); got != 1000 {
				t.Errorf("high counter clobbered: %d", got)
			}
			if old := pe.CompareSwapInt32(p, 1, v, -8, 3); old != -8 {
				t.Errorf("cswap32 old = %d", old)
			}
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfAtomics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		v := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		pe.SetInt64(p, pe.ID(), v, int64(pe.ID())*10)
		if got := pe.FetchAddInt64(p, pe.ID(), v, 1); got != int64(pe.ID())*10 {
			t.Errorf("pe %d self fetch-add old = %d", pe.ID(), got)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	w := newWorld(4, Options{})
	inCS := 0
	maxCS := 0
	total := 0
	err := w.Run(func(p *sim.Proc, pe *PE) {
		lock := pe.MustMalloc(p, 8)
		if pe.ID() == 0 {
			pe.LocalWrite(p, lock, make([]byte, 8))
		}
		pe.BarrierAll(p)
		for i := 0; i < 5; i++ {
			pe.SetLock(p, lock)
			inCS++
			if inCS > maxCS {
				maxCS = inCS
			}
			total++
			p.Sleep(50 * sim.Microsecond)
			inCS--
			pe.ClearLock(p, lock)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxCS != 1 {
		t.Fatalf("lock mutual exclusion violated: max in CS = %d", maxCS)
	}
	if total != 20 {
		t.Fatalf("critical sections run = %d, want 20", total)
	}
}

func TestTestLock(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		lock := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			if !pe.TestLock(p, lock) {
				t.Error("TestLock on free lock failed")
			}
			if pe.TestLock(p, lock) {
				t.Error("TestLock on held lock succeeded")
			}
			pe.ClearLock(p, lock)
			if !pe.TestLock(p, lock) {
				t.Error("TestLock after release failed")
			}
			pe.ClearLock(p, lock)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClearForeignLockPanics(t *testing.T) {
	w := newWorld(2, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) {
		lock := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.SetLock(p, lock)
		}
		pe.BarrierAll(p)
		if pe.ID() == 1 {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("clearing a foreign lock did not panic")
					}
				}()
				pe.ClearLock(p, lock)
			}()
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.ClearLock(p, lock)
		}
		pe.BarrierAll(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAMOOpStrings(t *testing.T) {
	for op, want := range map[AMOOp]string{
		AMOFetch: "fetch", AMOSet: "set", AMOAdd: "add", AMOSwap: "swap",
		AMOCSwap: "cswap", AMOAnd: "and", AMOOr: "or", AMOXor: "xor",
	} {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint8(op), got, want)
		}
	}
	if got := fmt.Sprint(AMOOp(99)); got != "amo(99)" {
		t.Errorf("unknown op prints %q", got)
	}
}
