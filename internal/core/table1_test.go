package core

import (
	"testing"

	"repro/internal/sim"
)

// TestTable1 exercises, in one program, exactly the essential API set of
// the paper's Table I:
//
//	shmem_init            — World.Run / initPE
//	my_pe                 — PE.ID
//	num_pes               — PE.NumPEs
//	shmem_malloc          — PE.Malloc
//	shmem_type_put        — Put[T]
//	shmem_type_get        — Get[T]
//	shmem_barrier_all     — PE.BarrierAll
//	shmem_finalize        — PE.Finalize
//
// It is the repository's conformance witness for the table; DESIGN.md
// points here.
func TestTable1(t *testing.T) {
	const hosts = 3
	type report struct {
		id, npes int
		got      []int64
	}
	reports := make([]report, hosts)

	w := newWorld(hosts, Options{})
	err := w.Run(func(p *sim.Proc, pe *PE) { // shmem_init happens inside
		id := pe.ID()               // my_pe
		npes := pe.NumPEs()         // num_pes
		sym, e := pe.Malloc(p, 4*8) // shmem_malloc
		if e != nil {
			t.Errorf("malloc: %v", e)
			return
		}
		pe.BarrierAll(p) // shmem_barrier_all

		// shmem_type_put: everyone puts its signature vector to its
		// right neighbour.
		right := (id + 1) % npes
		Put(p, pe, right, sym, []int64{int64(id), int64(id * 10), int64(id * 100), int64(id * 1000)})
		pe.BarrierAll(p)

		// shmem_type_get: read back what the left neighbour put here —
		// via a remote get from one's own PE to exercise the API.
		got := make([]int64, 4)
		Get(p, pe, id, sym, got)
		reports[id] = report{id, npes, got}

		pe.Finalize(p) // shmem_finalize
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range reports {
		if r.npes != hosts {
			t.Errorf("pe %d: num_pes = %d", id, r.npes)
		}
		from := (id - 1 + hosts) % hosts
		want := []int64{int64(from), int64(from * 10), int64(from * 100), int64(from * 1000)}
		for i := range want {
			if r.got[i] != want[i] {
				t.Errorf("pe %d slot %d = %d, want %d", id, i, r.got[i], want[i])
			}
		}
	}
}
