package core

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// Cluster-level failure injection: a put across a cut cable can never
// complete its stop-and-wait handshake, and the kernel's deadlock
// detector names the stuck process — the diagnosis an operator of the
// real system would assemble from hung ioctls.

func TestPutAcrossCutLinkHangsDetectably(t *testing.T) {
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(c, Options{})
	w.Launch(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 4096)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			c.CutLink(0) // sever 0 -> 1
			pe.PutBytes(p, 1, sym, make([]byte, 4096))
		}
		pe.BarrierAll(p)
	})
	err = s.Run()
	if err == nil {
		t.Fatal("put across a cut link completed")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "pe:0") {
		t.Fatalf("deadlock report should name the stuck PE: %v", err)
	}
}

func TestTrafficAvoidingCutLinkStillWorks(t *testing.T) {
	// With the 1->2 cable cut and shortest routing, PE 0's traffic to
	// PE 1 (one hop rightward) and to PE 2 (one hop leftward) never
	// touches the dead segment: puts deliver, and the round-trip gets
	// confirm it without any barrier (barrier tokens would have to
	// cross the dead cable).
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(c, Options{Routing: RouteShortest})
	var back1, back2 []byte
	w.Launch(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 8)
		pe.BarrierAll(p) // init-time traffic predates the cut
		if pe.ID() == 0 {
			c.CutLink(1) // sever 1 -> 2
			pe.PutBytes(p, 1, sym, []byte("to-host1"))
			pe.PutBytes(p, 2, sym, []byte("to-host2"))
			back1 = make([]byte, 8)
			back2 = make([]byte, 8)
			pe.GetBytes(p, 1, sym, back1)
			pe.GetBytes(p, 2, sym, back2)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if string(back1) != "to-host1" || string(back2) != "to-host2" {
		t.Fatalf("deliveries around the cut failed: %q, %q", back1, back2)
	}
}

func TestCutLinkUnderPipelinedProtocol(t *testing.T) {
	// With credits instead of ACK waits, a dead cable manifests as the
	// sender running out of credits (receiver's ACK doorbells vanish) or
	// its DMA wedging — either way the deadlock detector names it.
	s := sim.New()
	c, err := fabric.NewRing(s, model.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(c, Options{Pipeline: 2})
	w.Launch(func(p *sim.Proc, pe *PE) {
		sym := pe.MustMalloc(p, 256<<10)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			c.CutLink(0)
			// More chunks than credits: must block.
			pe.PutBytes(p, 1, sym, make([]byte, 256<<10))
		}
		pe.BarrierAll(p)
	})
	err = s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected detectable hang, got %v", err)
	}
}
