package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/driver"
	"repro/internal/sim"
)

// Differential testing: random SPMD programs executed on the simulated
// runtime and on a trivial sequential reference model, then compared.
//
// Program shape (per round):
//
//	write phase — every PE puts a round-tagged pattern into its own slot
//	of randomly chosen targets (blocking or NBI), and fires random
//	fetch-adds at per-host counters;
//	barrier;
//	read phase — every PE gets random slots and fetches counters, and
//	checks them against the reference;
//	barrier.
//
// Slot ownership (PE p only ever writes slot p) makes the reference
// model race-free, and fetch-add commutes, so the reference is exact.

type refModel struct {
	n        int
	slotSize int
	slots    [][]byte // slots[target*n+owner]
	counters []int64  // one per target
}

func newRefModel(n, slotSize int) *refModel {
	m := &refModel{n: n, slotSize: slotSize, counters: make([]int64, n)}
	m.slots = make([][]byte, n*n)
	for i := range m.slots {
		m.slots[i] = make([]byte, slotSize)
	}
	return m
}

func (m *refModel) put(target, owner int, tag byte) {
	for i := range m.slots[target*m.n+owner] {
		m.slots[target*m.n+owner][i] = tag
	}
}

// roundPlan is one PE's scripted actions for one round.
type roundPlan struct {
	putTargets []int // targets receiving this PE's slot pattern
	nbi        bool  // use the non-blocking put variant
	addTarget  int   // counter host for the fetch-add (-1: none)
	addDelta   int64
	getTarget  int // slot read in the read phase (-1: none)
	getOwner   int
	ctrTarget  int // counter read in the read phase (-1: none)
}

func buildPlans(rng *rand.Rand, n, rounds int) [][]roundPlan {
	plans := make([][]roundPlan, n)
	for p := 0; p < n; p++ {
		plans[p] = make([]roundPlan, rounds)
		for r := 0; r < rounds; r++ {
			plan := &plans[p][r]
			for t := 0; t < n; t++ {
				if t != p && rng.Intn(2) == 0 {
					plan.putTargets = append(plan.putTargets, t)
				}
			}
			plan.nbi = rng.Intn(2) == 0
			plan.addTarget = -1
			if rng.Intn(2) == 0 {
				plan.addTarget = rng.Intn(n)
				plan.addDelta = int64(rng.Intn(100) - 50)
			}
			plan.getTarget = -1
			if rng.Intn(2) == 0 {
				plan.getTarget = rng.Intn(n)
				plan.getOwner = rng.Intn(n)
			}
			plan.ctrTarget = -1
			if rng.Intn(3) == 0 {
				plan.ctrTarget = rng.Intn(n)
			}
		}
	}
	return plans
}

func tagFor(round, owner int) byte { return byte(round*31+owner*7) | 1 }

func runDifferential(t *testing.T, seed int64, opts Options, n, rounds, slotSize int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	plans := buildPlans(rng, n, rounds)

	// Sequential reference execution.
	ref := newRefModel(n, slotSize)
	type snapshot struct {
		slots    [][]byte
		counters []int64
	}
	snaps := make([]snapshot, rounds)
	for r := 0; r < rounds; r++ {
		for p := 0; p < n; p++ {
			plan := plans[p][r]
			for _, tgt := range plan.putTargets {
				ref.put(tgt, p, tagFor(r, p))
			}
			if plan.addTarget >= 0 {
				ref.counters[plan.addTarget] += plan.addDelta
			}
		}
		s := snapshot{counters: append([]int64(nil), ref.counters...)}
		for _, sl := range ref.slots {
			s.slots = append(s.slots, append([]byte(nil), sl...))
		}
		snaps[r] = s
	}

	// Simulated execution.
	w := newWorldOpts(n, opts)
	var failures []string
	err := w.Run(func(p *sim.Proc, pe *PE) {
		me := pe.ID()
		slots := pe.MustMalloc(p, n*slotSize)
		counter := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)

		mySlotPattern := make([]byte, slotSize)
		for r := 0; r < rounds; r++ {
			plan := plans[me][r]
			for i := range mySlotPattern {
				mySlotPattern[i] = tagFor(r, me)
			}
			for _, tgt := range plan.putTargets {
				dst := slots + SymAddr(me*slotSize)
				if plan.nbi {
					pe.PutBytesNBI(p, tgt, dst, mySlotPattern)
				} else {
					pe.PutBytes(p, tgt, dst, mySlotPattern)
				}
			}
			if plan.addTarget >= 0 {
				pe.FetchAddInt64(p, plan.addTarget, counter, plan.addDelta)
			}
			pe.BarrierAll(p)

			if plan.getTarget >= 0 {
				got := make([]byte, slotSize)
				pe.GetBytes(p, plan.getTarget, slots+SymAddr(plan.getOwner*slotSize), got)
				want := snaps[r].slots[plan.getTarget*n+plan.getOwner]
				if !bytes.Equal(got, want) {
					failures = append(failures, fmt.Sprintf(
						"round %d: pe %d get slot(%d,%d) = %d..., want %d...",
						r, me, plan.getTarget, plan.getOwner, got[0], want[0]))
				}
			}
			if plan.ctrTarget >= 0 {
				got := pe.FetchInt64(p, plan.ctrTarget, counter)
				if want := snaps[r].counters[plan.ctrTarget]; got != want {
					failures = append(failures, fmt.Sprintf(
						"round %d: pe %d counter[%d] = %d, want %d",
						r, me, plan.ctrTarget, got, want))
				}
			}
			pe.BarrierAll(p)
		}
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	for _, f := range failures {
		t.Errorf("seed %d: %s", seed, f)
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"dma-rightward-ring", Options{}},
		{"memcpy-rightward-ring", Options{Mode: driver.ModeCPU}},
		{"dma-shortest-ring", Options{Routing: RouteShortest}},
		{"dma-rightward-central", Options{Barrier: BarrierCentral}},
		{"dma-rightward-dissemination", Options{Barrier: BarrierDissemination}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				n := 3 + int(seed)%3 // 3..5 hosts
				runDifferential(t, seed, cfg.opts, n, 4, 3000)
			}
		})
	}
}

func TestDifferentialLargeRing(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential run in -short mode")
	}
	runDifferential(t, 99, Options{}, 8, 5, 2000)
	runDifferential(t, 100, Options{Routing: RouteShortest}, 8, 5, 2000)
}
