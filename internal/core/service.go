package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/driver"
	"repro/internal/ntb"
	"repro/internal/sim"
)

// serve is the per-host service thread of Fig 5. It sleeps until a
// DMAPUT/DMAGET doorbell queues work, pays the thread wake-up cost, and
// dispatches: under the paper's protocol it reads the transfer
// information from the scratchpads and handles one message; under the
// pipelined protocol it drains every in-order slot the doorbell (or a
// coalesced batch of doorbells) announced.
func (pe *PE) serve(p *sim.Proc) {
	for {
		port, ok := pe.svcQ.TryPop()
		if !ok {
			pe.setSvcActive(false)
			port = pe.svcQ.Pop(p)
			p.Sleep(pe.par.ServiceWake)
		}
		pe.setSvcActive(true)
		p.Sleep(pe.par.ISRCost)
		if rx := pe.rxByPort[port]; rx != nil {
			for {
				info, payload, ready := rx.Next(p)
				if !ready {
					break
				}
				pe.handle(p, info, payload, rx.Release)
			}
			continue
		}
		info := driver.ReadInfo(p, port)
		payload := port.Inbound(info.Region)[:info.Size]
		pe.handle(p, info, payload, func(pp *sim.Proc) { driver.Ack(pp, port) })
	}
}

// setSvcActive tracks whether the service thread is mid-message, for
// the barrier's inbound-drain wait.
func (pe *PE) setSvcActive(active bool) {
	pe.svcActive = active
	if !active {
		pe.svcIdle.Broadcast()
	}
}

// handle implements the Fig 5 decision tree for one arrived message.
// payload aliases the inbound window (or slot); every branch copies what
// it needs out before calling ack, because ack lets the sender reuse the
// space.
func (pe *PE) handle(p *sim.Proc, info driver.Info, payload []byte, ack func(*sim.Proc)) {
	if int(info.Dst) != pe.id {
		// Not for me: stage the payload, release the upstream link, and
		// queue the chunk for relay ("bypass data via transfer buffer").
		var data []byte
		if info.Size > 0 {
			data = pe.getBuf(int(info.Size))
			p.Sleep(sim.BytesAt(int(info.Size), pe.par.MemcpyBW))
			copy(data, payload)
		}
		ack(p)
		pe.enqueueForward(info, data)
		return
	}

	switch info.Kind {
	case driver.KindPut:
		// "Destination is me": copy from the incoming window into the
		// symmetric heap at the carried offset.
		pe.checkHeapRange(SymAddr(info.SymOff), int(info.Size))
		p.Sleep(sim.BytesAt(int(info.Size), pe.par.MemcpyBW))
		pe.writeHeapFrom(payload, SymAddr(info.SymOff))
		ack(p)
		pe.heapWrite.Broadcast()

	case driver.KindGetReq:
		// I own the requested data: stage the chunk from the symmetric
		// heap and send it back the way the request came.
		off, n := unpackGetAux(info.Aux)
		pe.checkHeapRange(SymAddr(info.SymOff+uint64(off)), n)
		data := pe.getBuf(n)
		p.Sleep(sim.BytesAt(n, pe.par.MemcpyBW))
		pe.heap.Read(int64(info.SymOff)+int64(off), data)
		ack(p)
		reply := driver.Info{
			Kind:   driver.KindGetData,
			Src:    uint16(pe.id),
			Dst:    info.Src,
			Dir:    oppositeDir(info.Dir),
			Size:   uint32(n),
			SymOff: info.SymOff,
			Tag:    info.Tag,
			Aux:    packGetAux(off, n),
		}
		pe.enqueueForward(reply, data)

	case driver.KindGetData:
		// A chunk of my own pending get arrived.
		req := pe.pending[info.Tag]
		if req == nil {
			panic(fmt.Sprintf("core: pe %d got data for unknown tag %d", pe.id, info.Tag))
		}
		off, n := unpackGetAux(info.Aux)
		p.Sleep(sim.BytesAt(n, pe.par.MemcpyBW))
		copy(req.buf[off:off+uint64(n)], payload[:n])
		ack(p)
		req.arrived += n
		req.cond.Broadcast()

	case driver.KindAMO:
		// Execute the atomic at the owner (our AMO extension): both
		// operands ride in the 16-byte window payload.
		var operands [16]byte
		copy(operands[:], payload[:info.Size])
		ack(p)
		old := pe.applyAMO(p, info, operands)
		reply := driver.Info{
			Kind: driver.KindAMOReply,
			Src:  uint16(pe.id),
			Dst:  info.Src,
			Dir:  oppositeDir(info.Dir),
			Tag:  info.Tag,
			Aux:  old,
		}
		pe.enqueueForward(reply, nil)
		pe.heapWrite.Broadcast()

	case driver.KindAMOReply:
		req := pe.pending[info.Tag]
		if req == nil {
			panic(fmt.Sprintf("core: pe %d got AMO reply for unknown tag %d", pe.id, info.Tag))
		}
		ack(p)
		req.value = info.Aux
		req.replied = true
		req.cond.Broadcast()

	case driver.KindBarrierCtl:
		ack(p)
		if pe.ctl == nil {
			pe.ctl = make(map[uint32]int)
		}
		pe.ctl[info.Tag]++
		pe.ctlCond.Broadcast()

	default:
		panic(fmt.Sprintf("core: pe %d received unknown kind %v", pe.id, info.Kind))
	}
}

// enqueueForward hands a message to the forwarder thread. Callable from
// process or scheduler context.
func (pe *PE) enqueueForward(info driver.Info, data []byte) {
	pe.fwdBusy++
	pe.fwdQ.Push(&fwdMsg{info: info, data: data})
}

// forward is the relay half of the service path: it pushes staged chunks
// one hop onward in their recorded direction. Relays are stop-and-wait
// like first-hop sends, but the unbounded staging queue decouples them
// from upstream ACKs, so rings cannot deadlock on store-and-forward
// cycles.
func (pe *PE) forward(p *sim.Proc) {
	for {
		m, ok := pe.fwdQ.TryPop()
		if !ok {
			m = pe.fwdQ.Pop(p)
			p.Sleep(pe.par.ServiceWake)
		}
		tx, nextHop := pe.txToward(m.info.Dir)
		info := m.info
		info.Region = pe.regionFor(int(info.Dst), nextHop)
		tx.SendChunk(p, info, driver.Payload{Buf: m.data, N: len(m.data)}, pe.mode)
		if m.data != nil {
			pe.putBuf(m.data)
		}
		pe.stats.ChunksForwarded++
		pe.fwdBusy--
		if pe.fwdBusy == 0 {
			pe.fwdIdle.Broadcast()
		}
	}
}

// drainForwarder blocks until every staged chunk on this host has been
// relayed. The barrier protocols call it before propagating their tokens,
// which is what makes "barrier implies prior puts are delivered" hold on
// the ring (the paper's "check previous DMA transfer completed" step).
func (pe *PE) drainForwarder(p *sim.Proc) {
	for pe.fwdBusy > 0 {
		pe.fwdIdle.Wait(p)
	}
}

// drainService blocks until the service thread has consumed every
// queued inbound message and gone idle. Under the pipelined protocol a
// sender's chunks may still sit unprocessed in this host's window when a
// barrier token arrives, so the token must not be propagated past them.
func (pe *PE) drainService(p *sim.Proc) {
	for pe.svcQ.Len() > 0 || pe.svcActive {
		pe.svcIdle.Wait(p)
	}
}

// drainLocal flushes this host's inbound service work and then its relay
// queue — the full "everything that reached me has moved on" step the
// barrier protocols interpose before propagating tokens. Service
// handling can enqueue relay work but never the reverse, so this order
// suffices.
func (pe *PE) drainLocal(p *sim.Proc) {
	pe.drainService(p)
	pe.drainForwarder(p)
}

// txToward returns the transmit channel and next-hop host Id for a
// direction.
func (pe *PE) txToward(d driver.Dir) (driver.Sender, int) {
	if d == driver.DirLeft {
		return pe.txLeftS, pe.host.LeftNeighbor()
	}
	return pe.txRightS, pe.host.RightNeighbor()
}

// regionFor picks the inbound window at the next hop: the data window
// when the next hop is the final destination, the bypass window when the
// chunk must be relayed again (Fig 4).
func (pe *PE) regionFor(finalDst, nextHop int) ntb.Region {
	if finalDst == nextHop {
		return ntb.RegionData
	}
	return ntb.RegionBypass
}

// dirTo returns the routing direction from this PE toward dst. Under
// the paper's policy data always travels rightward; under RouteShortest
// it takes the shorter arc (ties rightward). Once chosen at the origin,
// the direction is carried in the message and forwarding never reverses
// it.
func (pe *PE) dirTo(dst int) driver.Dir {
	if pe.world.opts.Routing == RouteShortest {
		n := pe.NumPEs()
		right := (dst - pe.id + n) % n
		if left := n - right; left < right {
			return driver.DirLeft
		}
	}
	return driver.DirRight
}

func oppositeDir(d driver.Dir) driver.Dir {
	if d == driver.DirLeft {
		return driver.DirRight
	}
	return driver.DirLeft
}

// packGetAux packs a get chunk's (offset, length) into the Aux register
// pair (40 bits of offset, 24 bits of length); unpackGetAux reverses it.
func packGetAux(off uint64, n int) uint64 {
	return off<<24 | uint64(n)
}

func unpackGetAux(aux uint64) (off uint64, n int) {
	return aux >> 24, int(aux & (1<<24 - 1))
}

// writeHeapFrom copies raw bytes into the symmetric heap and is shared by
// the put delivery path and local puts.
func (pe *PE) writeHeapFrom(src []byte, dst SymAddr) {
	pe.heap.Write(int64(dst), src)
}

// le is the byte order of every multi-byte value the runtime moves.
var le = binary.LittleEndian
