package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/driver"
	"repro/internal/sim"
)

// handle implements the Fig 5 decision tree for one message delivered to
// this PE by its fabric link. payload aliases fabric-owned space (an
// inbound window, a pipeline slot, or the sender's buffer on a
// load/store fabric); every branch copies what it needs out before
// calling ack, because ack lets the sender reuse the space. Transit
// traffic never reaches here — store-and-forward relaying is the link's
// business (the ring's bypass path).
func (pe *PE) handle(p *sim.Proc, info driver.Info, payload []byte, ack func(*sim.Proc)) {
	if int(info.Dst) != pe.id {
		panic(fmt.Sprintf("core: pe %d delivered a message addressed to pe %d", pe.id, info.Dst))
	}

	switch info.Kind {
	case driver.KindPut:
		// "Destination is me": copy from the incoming window into the
		// symmetric heap at the carried offset.
		pe.checkHeapRange(SymAddr(info.SymOff), int(info.Size))
		p.Sleep(sim.BytesAt(int(info.Size), pe.par.MemcpyBW))
		pe.writeHeapFrom(payload, SymAddr(info.SymOff))
		ack(p)
		pe.heapWrite.Broadcast()

	case driver.KindGetReq:
		// I own the requested data: stage the chunk from the symmetric
		// heap and send it back the way the request came.
		off, n := unpackGetAux(info.Aux)
		pe.checkHeapRange(SymAddr(info.SymOff+uint64(off)), n)
		data := pe.link.GetBuf(n)
		p.Sleep(sim.BytesAt(n, pe.par.MemcpyBW))
		pe.heap.Read(int64(info.SymOff)+int64(off), data)
		ack(p)
		reply := driver.Info{
			Kind:   driver.KindGetData,
			Src:    uint16(pe.id),
			Dst:    info.Src,
			Size:   uint32(n),
			SymOff: info.SymOff,
			Tag:    info.Tag,
			Aux:    packGetAux(off, n),
		}
		pe.link.Reply(p, info, reply, data)

	case driver.KindGetData:
		// A chunk of my own pending get arrived.
		req := pe.pending[info.Tag]
		if req == nil {
			panic(fmt.Sprintf("core: pe %d got data for unknown tag %d", pe.id, info.Tag))
		}
		off, n := unpackGetAux(info.Aux)
		p.Sleep(sim.BytesAt(n, pe.par.MemcpyBW))
		copy(req.buf[off:off+uint64(n)], payload[:n])
		ack(p)
		req.arrived += n
		req.cond.Broadcast()

	case driver.KindAMO:
		// Execute the atomic at the owner (our AMO extension): both
		// operands ride in the 16-byte window payload.
		var operands [16]byte
		copy(operands[:], payload[:info.Size])
		ack(p)
		old := pe.applyAMO(p, info, operands)
		reply := driver.Info{
			Kind: driver.KindAMOReply,
			Src:  uint16(pe.id),
			Dst:  info.Src,
			Tag:  info.Tag,
			Aux:  old,
		}
		pe.link.Reply(p, info, reply, nil)
		pe.heapWrite.Broadcast()

	case driver.KindAMOReply:
		req := pe.pending[info.Tag]
		if req == nil {
			panic(fmt.Sprintf("core: pe %d got AMO reply for unknown tag %d", pe.id, info.Tag))
		}
		ack(p)
		req.value = info.Aux
		req.replied = true
		req.cond.Broadcast()

	case driver.KindBarrierCtl:
		ack(p)
		if pe.ctl == nil {
			pe.ctl = make(map[uint32]int)
		}
		pe.ctl[info.Tag]++
		pe.ctlCond.Broadcast()

	default:
		panic(fmt.Sprintf("core: pe %d received unknown kind %v", pe.id, info.Kind))
	}
}

// packGetAux packs a get chunk's (offset, length) into the Aux register
// pair (40 bits of offset, 24 bits of length); unpackGetAux reverses it.
func packGetAux(off uint64, n int) uint64 {
	return off<<24 | uint64(n)
}

func unpackGetAux(aux uint64) (off uint64, n int) {
	return aux >> 24, int(aux & (1<<24 - 1))
}

// writeHeapFrom copies raw bytes into the symmetric heap and is shared by
// the put delivery path and local puts.
func (pe *PE) writeHeapFrom(src []byte, dst SymAddr) {
	pe.heap.Write(int64(dst), src)
}

// le is the byte order of every multi-byte value the runtime moves.
var le = binary.LittleEndian
