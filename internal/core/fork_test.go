package core

import (
	"testing"

	"repro/internal/sim"
)

// Fork-equivalence property tests: a world forked from a snapshot must
// execute the snapshot's future bit-identically to the captured world
// continuing in place — which, since the captured world ran its prefix
// from t=0, makes the fork byte-identical to a fresh world running
// prefix-then-body from t=0 with the same seed. The bench prefix cache
// forks sweep points on the strength of this property.

// traceRunForked is traceRun for the post-fork phase: body runs without
// the shmem_init prefix (the forked state already contains it).
func traceRunForked(t *testing.T, w *World, body func(p *sim.Proc, pe *PE)) ([]OpEvent, sim.Time, Stats) {
	t.Helper()
	var trace []OpEvent
	w.SetOpTrace(func(ev OpEvent) { trace = append(trace, ev) })
	if err := w.RunKeepForked(body); err != nil {
		t.Fatal(err)
	}
	w.SetOpTrace(nil)
	return trace, w.Cluster.Sim.Now(), w.PEs()[0].Stats()
}

// compareTraces fails the test on the first diverging event.
func compareTraces(t *testing.T, label string, got, want []OpEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  fork: %+v\n  ref:  %+v", label, i, got[i], want[i])
		}
	}
}

func TestForkEquivalentToFreshRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"pipelined-shortest", Options{Pipeline: 4, Routing: RouteShortest}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prefix := resetScript(23, 3, 6)
			body := resetScript(61, 2, 5)

			// Reference: a fresh world runs prefix from t=0, then continues
			// with body on the same timeline — the ground truth a forked
			// child claims to reproduce.
			ref := newWorld(4, tc.opts)
			traceRun(t, ref, prefix)
			snap := ref.Snapshot()
			refEvents := ref.Cluster.Sim.EventsExecuted()
			wantTrace, wantEnd, wantStats := traceRunForked(t, ref, body)
			bodyEvents := ref.Cluster.Sim.EventsExecuted() - refEvents
			ref.Cluster.Sim.Shutdown()

			if snap.Events() != refEvents {
				t.Errorf("snapshot records %d prefix events, prefix executed %d", snap.Events(), refEvents)
			}

			// Forked child: fresh world, no prefix replay.
			child := newWorld(4, tc.opts)
			child.Fork(snap)
			if now := child.Cluster.Sim.Now(); now != snap.Time() {
				t.Fatalf("forked world starts at t=%v, snapshot taken at %v", now, snap.Time())
			}
			gotTrace, gotEnd, gotStats := traceRunForked(t, child, body)
			if got := child.Cluster.Sim.EventsExecuted(); got != bodyEvents {
				t.Errorf("forked body executed %d virtual events, continuation executed %d", got, bodyEvents)
			}
			child.Cluster.Sim.Shutdown()

			if gotEnd != wantEnd {
				t.Errorf("completion time: fork %v, continuation %v", gotEnd, wantEnd)
			}
			if gotStats != wantStats {
				t.Errorf("pe 0 stats: fork %+v, continuation %+v", gotStats, wantStats)
			}
			compareTraces(t, "fork vs continuation", gotTrace, wantTrace)
		})
	}
}

func TestForkManyChildrenDiverge(t *testing.T) {
	// Several children forked from one snapshot run different futures;
	// each must match its own continuation reference, and later forks
	// must not see earlier children's writes (CoW isolation).
	prefix := resetScript(5, 2, 6)
	futures := []func(p *sim.Proc, pe *PE){
		resetScript(100, 2, 4),
		resetScript(200, 1, 9),
		resetScript(300, 3, 3),
	}

	parent := newWorld(3, Options{})
	traceRun(t, parent, prefix)
	snap := parent.Snapshot()
	parent.Cluster.Sim.Shutdown()

	type result struct {
		trace []OpEvent
		end   sim.Time
		stats Stats
	}
	want := make([]result, len(futures))
	for i, fut := range futures {
		// Reference for each future: fresh world, prefix then future.
		ref := newWorld(3, Options{})
		traceRun(t, ref, prefix)
		trace, end, stats := traceRunForked(t, ref, fut)
		ref.Cluster.Sim.Shutdown()
		want[i] = result{trace, end, stats}
	}
	for i, fut := range futures {
		child := newWorld(3, Options{})
		child.Fork(snap)
		trace, end, stats := traceRunForked(t, child, fut)
		child.Cluster.Sim.Shutdown()
		if end != want[i].end || stats != want[i].stats {
			t.Errorf("future %d: end %v stats %+v, want %v %+v", i, end, stats, want[i].end, want[i].stats)
		}
		compareTraces(t, "divergent future", trace, want[i].trace)
	}
}

func TestForkAfterFork(t *testing.T) {
	// Snapshot a forked world mid-flight and fork again: the grandchild
	// must match the child's continuation exactly.
	prefix := resetScript(11, 2, 5)
	mid := resetScript(12, 2, 5)
	body := resetScript(13, 2, 5)

	parent := newWorld(3, Options{})
	traceRun(t, parent, prefix)
	snap1 := parent.Snapshot()
	parent.Cluster.Sim.Shutdown()

	child := newWorld(3, Options{})
	child.Fork(snap1)
	traceRunForked(t, child, mid)
	snap2 := child.Snapshot()
	wantTrace, wantEnd, wantStats := traceRunForked(t, child, body)
	child.Cluster.Sim.Shutdown()

	grand := newWorld(3, Options{})
	grand.Fork(snap2)
	gotTrace, gotEnd, gotStats := traceRunForked(t, grand, body)
	grand.Cluster.Sim.Shutdown()

	if gotEnd != wantEnd || gotStats != wantStats {
		t.Errorf("grandchild end %v stats %+v, child continuation %v %+v", gotEnd, gotStats, wantEnd, wantStats)
	}
	compareTraces(t, "fork-after-fork", gotTrace, wantTrace)
}

func TestForkThenReset(t *testing.T) {
	// A forked world must remain poolable: Reset returns it to t=0 and a
	// subsequent from-scratch run matches a fresh world byte-for-byte.
	prefix := resetScript(31, 2, 6)
	body := resetScript(32, 1, 6)
	replay := resetScript(33, 3, 4)

	parent := newWorld(3, Options{})
	traceRun(t, parent, prefix)
	snap := parent.Snapshot()
	parent.Cluster.Sim.Shutdown()

	w := newWorld(3, Options{})
	w.Fork(snap)
	traceRunForked(t, w, body)
	w.Reset()
	if now := w.Cluster.Sim.Now(); now != 0 {
		t.Fatalf("reset-after-fork world starts at t=%v, want 0", now)
	}
	gotTrace, gotEnd, gotStats := traceRun(t, w, replay)
	w.Cluster.Sim.Shutdown()

	fresh := newWorld(3, Options{})
	wantTrace, wantEnd, wantStats := traceRun(t, fresh, replay)
	fresh.Cluster.Sim.Shutdown()

	if gotEnd != wantEnd || gotStats != wantStats {
		t.Errorf("reset-after-fork end %v stats %+v, fresh %v %+v", gotEnd, gotStats, wantEnd, wantStats)
	}
	compareTraces(t, "fork-then-reset replay", gotTrace, wantTrace)
}

func TestForkIntoRecycledWorld(t *testing.T) {
	// The bench pool forks into recycled worlds, not fresh ones; a world
	// that already lived a different life must fork identically to a
	// fresh child.
	prefix := resetScript(41, 2, 6)
	body := resetScript(42, 2, 4)
	otherLife := resetScript(43, 3, 7)

	parent := newWorld(3, Options{})
	traceRun(t, parent, prefix)
	snap := parent.Snapshot()
	parent.Cluster.Sim.Shutdown()

	fresh := newWorld(3, Options{})
	fresh.Fork(snap)
	wantTrace, wantEnd, wantStats := traceRunForked(t, fresh, body)
	fresh.Cluster.Sim.Shutdown()

	recycled := newWorld(3, Options{})
	traceRun(t, recycled, otherLife)
	recycled.Reset()
	recycled.Fork(snap)
	gotTrace, gotEnd, gotStats := traceRunForked(t, recycled, body)
	recycled.Cluster.Sim.Shutdown()

	if gotEnd != wantEnd || gotStats != wantStats {
		t.Errorf("recycled fork end %v stats %+v, fresh fork %v %+v", gotEnd, gotStats, wantEnd, wantStats)
	}
	compareTraces(t, "fork into recycled world", gotTrace, wantTrace)
}

func TestForkShapeAsserts(t *testing.T) {
	parent := newWorld(3, Options{})
	traceRun(t, parent, resetScript(51, 1, 3))
	snap := parent.Snapshot()
	parent.Cluster.Sim.Shutdown()

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	w4 := newWorld(4, Options{})
	defer w4.Cluster.Sim.Shutdown()
	mustPanic("PE-count mismatch", func() { w4.Fork(snap) })

	wOpts := newWorld(3, Options{Pipeline: 4, Routing: RouteShortest})
	defer wOpts.Cluster.Sim.Shutdown()
	mustPanic("options mismatch", func() { wOpts.Fork(snap) })
}
