package sim

import (
	"fmt"
	"sync/atomic"
)

// This file implements the kernel's default event queue: a ladder queue
// (Tang, Goh & Thng, "Ladder queue: An O(1) priority queue structure for
// large-scale discrete event simulation", ACM TOMACS 2005), adapted to
// this kernel's guarantees. The binary heap in heap.go remains as the
// reference implementation, selectable via NewWith(SchedulerHeap) for
// differential testing.
//
// Structure. Pending events live in one of three tiers:
//
//   - bottom: a small (t, seq) binary heap holding the earliest events.
//     Pops always come from here, so dispatch order is exactly the
//     heap's — the ladder changes *when* events are sorted, never *how*.
//   - rungs: bucket arrays subdividing the near future. rungs[0] is the
//     coarsest (latest) span; each deeper rung refines one bucket of its
//     parent. Only the last (finest, earliest) rung is drained.
//   - top: an unsorted overflow list for the far future, bounded below
//     by topStart.
//
// The virtual time axis is partitioned between the tiers:
//
//	[0, bottomLimit)             -> bottom
//	[bottomLimit, rung spans...) -> the rungs, finest first
//	[topStart, infinity)         -> top
//
// Enqueue walks that partition (O(#rungs), and #rungs is bounded by a
// small constant); dequeue pops the bottom heap, refilling it from the
// front bucket when it runs dry. Each event is touched a constant number
// of times between enqueue and dispatch, which is the ladder's O(1)
// amortised bound.
//
// Ordering invariant. The kernel never schedules into the past
// (scheduleEvent panics on t < now) and breaks timestamp ties by a
// monotone sequence number. Bucket boundaries are pure functions of t, so
// two events with equal t always land in the same bucket, move to the
// bottom heap in the same transfer, and are ordered there by seq —
// dispatch order is therefore bit-identical to the reference heap's
// (t, seq) order. The differential tests in ladder_test.go and
// internal/bench assert exactly this.
//
// Small queues — and every queue starts small — take a fast path: while
// the rungs and top are empty and the bottom holds fewer than
// ladderBottomMax events, enqueues go straight into the bottom heap, so
// a 3-PE world pays nothing for the machinery a 1024-PE world needs.

// eventQueue is the scheduler's pending-event store. Implementations
// must dispatch in exact (t, seq) order and support pooled reuse via
// reset (retaining backing storage, releasing event references).
type eventQueue interface {
	Len() int
	push(e event)
	pop() event
	peek() *event
	reset()
}

// SchedulerKind selects the event-queue implementation behind a
// Simulator.
type SchedulerKind int32

const (
	// SchedulerLadder is the default: the ladder queue above, O(1)
	// amortised under the heavy pending-event load of many-PE worlds.
	SchedulerLadder SchedulerKind = iota
	// SchedulerHeap is the reference binary min-heap, kept for
	// differential testing and as a fallback.
	SchedulerHeap
)

func (k SchedulerKind) String() string {
	if k == SchedulerHeap {
		return "heap"
	}
	return "ladder"
}

// ParseScheduler converts a flag value ("ladder" or "heap") into a
// SchedulerKind.
func ParseScheduler(name string) (SchedulerKind, error) {
	switch name {
	case "ladder":
		return SchedulerLadder, nil
	case "heap":
		return SchedulerHeap, nil
	default:
		return SchedulerLadder, fmt.Errorf("sim: unknown scheduler %q (want \"ladder\" or \"heap\")", name)
	}
}

// defaultScheduler backs New()'s queue choice; harness flags flip it
// process-wide before any worlds are built.
var defaultScheduler atomic.Int32

// SetDefaultScheduler selects the event queue New() gives subsequent
// simulators. Existing simulators are unaffected.
func SetDefaultScheduler(k SchedulerKind) { defaultScheduler.Store(int32(k)) }

// DefaultScheduler reports the event queue New() currently selects.
func DefaultScheduler() SchedulerKind { return SchedulerKind(defaultScheduler.Load()) }

// Ladder geometry. bottomMax bounds the sorted front (and gates the
// small-queue fast path); spawnMax is the bucket size above which a
// bucket is refined into a child rung instead of being heap-sorted;
// maxRungs bounds refinement depth so enqueue's partition walk stays
// O(1); the bucket-count clamps size each rung to its population.
const (
	ladderBottomMax  = 48
	ladderSpawnMax   = 48
	ladderMaxRungs   = 8
	ladderMinBuckets = 16
	ladderMaxBuckets = 1024
)

// rung is one refinement level: buckets of width virtual nanoseconds
// starting at start. Buckets before cur have been drained or refined.
type rung struct {
	start   Time
	width   Duration
	cur     int
	buckets [][]event
}

// activeStart is the lower time bound of the rung's undrained region.
func (r *rung) activeStart() Time { return r.start.Add(Duration(r.cur) * r.width) }

// insert files e into its bucket. The caller guarantees e.t lies inside
// the rung's active region.
//
//ntblint:allocfree
func (r *rung) insert(e event) {
	idx := int(Duration(e.t-r.start) / r.width)
	if idx >= len(r.buckets) {
		idx = len(r.buckets) - 1 // unreachable by construction; stay safe
	}
	r.buckets[idx] = append(r.buckets[idx], e)
}

// ladderQueue implements eventQueue; see the file comment for the
// design. The zero value is an empty queue.
type ladderQueue struct {
	size        int
	bottom      eventHeap
	bottomLimit Time // events with t < bottomLimit belong in bottom
	rungs       []rung
	top         []event
	topStart    Time // events with t >= topStart belong in top
	topMin      Time
	topMax      Time
}

func (q *ladderQueue) Len() int { return q.size }

//ntblint:allocfree
func (q *ladderQueue) push(e event) {
	q.size++
	if e.t < q.bottomLimit {
		q.bottom.push(e)
		return
	}
	if len(q.rungs) == 0 && len(q.top) == 0 && q.bottom.Len() < ladderBottomMax {
		// Small-queue fast path: keep the sorted front directly, and
		// ratchet the partition boundary past the new event so later
		// earlier-time enqueues still find the bottom.
		q.bottom.push(e)
		if lim := e.t + 1; lim > q.bottomLimit {
			q.bottomLimit = lim
		}
		if q.bottomLimit > q.topStart {
			q.topStart = q.bottomLimit
		}
		return
	}
	if e.t >= q.topStart {
		if len(q.top) == 0 || e.t < q.topMin {
			q.topMin = e.t
		}
		if len(q.top) == 0 || e.t > q.topMax {
			q.topMax = e.t
		}
		q.top = append(q.top, e)
		return
	}
	// The rungs' active regions tile [bottomLimit, topStart) in
	// descending time order: rungs[0] is the latest span, the last rung
	// the earliest.
	for i := range q.rungs {
		r := &q.rungs[i]
		if e.t >= r.activeStart() {
			r.insert(e)
			return
		}
	}
	// Below every rung's active region (possible in the sliver between
	// bottomLimit updates and rung starts): the bottom heap absorbs it —
	// a heap needs no range discipline, only that pops drain it first.
	q.bottom.push(e)
}

//ntblint:allocfree
func (q *ladderQueue) pop() event {
	if q.bottom.Len() == 0 {
		q.advance()
	}
	q.size--
	return q.bottom.pop()
}

func (q *ladderQueue) peek() *event {
	if q.size == 0 {
		return nil
	}
	if q.bottom.Len() == 0 {
		q.advance()
	}
	return q.bottom.peek()
}

// advance refills the empty bottom heap from the earliest non-empty
// bucket, refining overfull buckets into child rungs on the way down.
// The queue must not be empty.
func (q *ladderQueue) advance() {
	for {
		if n := len(q.rungs); n > 0 {
			r := &q.rungs[n-1]
			for r.cur < len(r.buckets) && len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			if r.cur == len(r.buckets) {
				// Rung drained; its bucket arrays stay behind in the
				// slice's capacity for the next spawn to reuse.
				q.rungs = q.rungs[:n-1]
				continue
			}
			b := r.buckets[r.cur]
			bucketStart := r.start.Add(Duration(r.cur) * r.width)
			if len(b) > ladderSpawnMax && r.width > 1 && len(q.rungs) < ladderMaxRungs {
				q.spawnRung(bucketStart, r.width, b)
				q.clearBucket(r, r.cur)
				continue
			}
			for i := range b {
				q.bottom.push(b[i])
			}
			q.bottomLimit = bucketStart.Add(r.width)
			q.clearBucket(r, r.cur)
			return
		}
		if len(q.top) == 0 {
			panic("sim: ladder advance on an empty queue")
		}
		if len(q.top) <= ladderBottomMax {
			for i := range q.top {
				q.bottom.push(q.top[i])
				q.top[i] = event{}
			}
			q.top = q.top[:0]
			q.bottomLimit = q.topMax + 1
			q.topStart = q.topMax + 1
			return
		}
		q.spawnRung(q.topMin, Duration(q.topMax-q.topMin)+1, q.top)
		for i := range q.top {
			q.top[i] = event{}
		}
		q.top = q.top[:0]
	}
}

// clearBucket releases the transferred bucket's event references and
// advances the rung cursor past it.
//
//ntblint:allocfree
func (q *ladderQueue) clearBucket(r *rung, idx int) {
	b := r.buckets[idx]
	for i := range b {
		b[i] = event{}
	}
	r.buckets[idx] = b[:0]
	r.cur = idx + 1
}

// spawnRung pushes a new finest rung covering [start, start+span) and
// distributes events into its buckets. Bucket count tracks the event
// population; bucket width subdivides span exactly. Popped rungs leave
// their bucket arrays in the rungs slice's spare capacity, so steady-
// state spawning reuses them instead of allocating.
func (q *ladderQueue) spawnRung(start Time, span Duration, events []event) {
	nb := len(events) / 4
	if nb < ladderMinBuckets {
		nb = ladderMinBuckets
	}
	if nb > ladderMaxBuckets {
		nb = ladderMaxBuckets
	}
	if Duration(nb) > span {
		nb = int(span) // width floors at one virtual nanosecond
	}
	width := (span-1)/Duration(nb) + 1
	if len(q.rungs) < cap(q.rungs) {
		// Reuse the retained rung slot — and its bucket arrays — beyond
		// the current length.
		q.rungs = q.rungs[:len(q.rungs)+1]
	} else {
		q.rungs = append(q.rungs, rung{})
	}
	r := &q.rungs[len(q.rungs)-1]
	r.start, r.width, r.cur = start, width, 0
	if cap(r.buckets) >= nb {
		r.buckets = r.buckets[:nb]
	} else {
		r.buckets = make([][]event, nb)
	}
	// New rung becomes the finest: its span refines what was previously
	// the front, so the partition boundary moves down to its start.
	q.bottomLimit = start
	for i := range events {
		r.insert(events[i])
	}
}

// reset empties the queue for pooled reuse, releasing event references
// while retaining every backing array (bottom items, top list, rung
// buckets) so a recycled world's first run allocates nothing here.
func (q *ladderQueue) reset() {
	q.size = 0
	q.bottom.reset()
	q.bottomLimit = 0
	for i := range q.top {
		q.top[i] = event{}
	}
	q.top = q.top[:0]
	q.topStart, q.topMin, q.topMax = 0, 0, 0
	for i := range q.rungs {
		r := &q.rungs[i]
		for j := range r.buckets {
			b := r.buckets[j]
			for k := range b {
				b[k] = event{}
			}
			r.buckets[j] = b[:0]
		}
		r.start, r.width, r.cur = 0, 0, 0
	}
	q.rungs = q.rungs[:0]
}
