// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel provides a virtual clock, a time-ordered event queue, and
// coroutine-style processes. Processes are backed by goroutines but are
// strictly sequentialised: exactly one process (or the scheduler) runs at
// any instant, and control transfers through channel handshakes, so
// simulations are deterministic and race-free by construction.
//
// All latencies and throughputs reported by this repository are measured
// in the kernel's virtual time, never in wall-clock time. This is what
// makes the reproduced figures stable across machines and runs.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Microseconds returns the time as a floating-point count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Seconds returns the time as a floating-point count of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return fmt.Sprintf("%.3fus", float64(t)/1e3) }

// Microseconds returns the duration as a floating-point count of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

// Seconds returns the duration as a floating-point count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }

// Microseconds constructs a Duration from a floating-point microsecond count.
// Fractional nanoseconds are truncated.
func Microseconds(us float64) Duration { return Duration(us * 1e3) }

// Nanoseconds constructs a Duration from an integer nanosecond count.
func Nanoseconds(ns int64) Duration { return Duration(ns) }

// BytesAt returns the time needed to move n bytes at rate bytesPerSecond.
// A zero or negative rate yields zero duration (infinite bandwidth), which
// callers use to disable a cost component.
func BytesAt(n int, bytesPerSecond float64) Duration {
	if bytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSecond * 1e9)
}
