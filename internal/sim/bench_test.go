package sim

import (
	"testing"
)

// BenchmarkSimEventThroughput drives the kernel's hot path — the
// park/wake handshake plus timer events — and reports wall-clock
// events/sec and allocs/op. This is the host-side speed of the
// simulator itself, tracked alongside the virtual-time metrics: the
// ROADMAP's "as fast as the hardware allows" applies to how quickly a
// world simulates, not only to the modelled numbers.
func BenchmarkSimEventThroughput(b *testing.B) {
	const eventsPerIter = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		s.Go("worker", func(p *Proc) {
			for e := 0; e < eventsPerIter/2; e++ {
				p.Sleep(Microsecond) // timer wake: one event
				p.Yield()            // same-timestamp wake: one event
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		s.Shutdown()
	}
	b.ReportMetric(float64(b.N)*eventsPerIter/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimPingPong measures the two-process handshake pattern every
// kernel primitive reduces to: a producer pushing into a Queue and a
// consumer popping, alternating at the same timestamp.
func BenchmarkSimPingPong(b *testing.B) {
	const rounds = 500
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		q := NewQueue[int]("ping")
		r := NewQueue[int]("pong")
		s.Go("producer", func(p *Proc) {
			for n := 0; n < rounds; n++ {
				q.Push(n)
				r.Pop(p)
			}
		})
		s.Go("consumer", func(p *Proc) {
			for n := 0; n < rounds; n++ {
				q.Pop(p)
				r.Push(n)
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		s.Shutdown()
	}
	b.ReportMetric(float64(b.N)*rounds/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkLadderQueueChurn measures the ladder queue's steady state in
// isolation: one pop plus one re-push per op against a standing
// population large enough to keep events flowing through rungs and the
// top tier. After warm-up the churn must be allocation-free — bucket
// arrays, rung slots, and the bottom heap's backing are all reused.
func BenchmarkLadderQueueChurn(b *testing.B) {
	const standing = 4096
	const stride = Duration(257) // odd stride scatters events across buckets
	var q ladderQueue
	var seq uint64
	for i := 0; i < standing; i++ {
		q.push(event{t: Time(i) * 997, seq: seq})
		seq++
	}
	// Warm one full churn cycle so every tier has spawned and settled
	// its backing storage before the measured (and gated) window.
	for i := 0; i < standing*4; i++ {
		e := q.pop()
		q.push(event{t: e.t.Add(stride * standing), seq: seq})
		seq++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		q.push(event{t: e.t.Add(stride * standing), seq: seq})
		seq++
	}
}
