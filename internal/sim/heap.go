package sim

// event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (seq breaks ties), which keeps runs deterministic.
//
// The overwhelmingly common event — wake a parked process — carries the
// *Proc directly instead of a freshly allocated closure; fn is only used
// for scheduler-context callbacks (After). Components that schedule many
// cancellable or parameterised timers (the flow network's completion
// events, doorbell interrupt delivery) implement Ticker and carry an
// opaque argument instead, so their timers allocate nothing either.
type event struct {
	t      Time
	seq    uint64
	proc   *Proc  // non-nil: dispatch this process
	fn     func() // non-nil: run this callback in scheduler context
	ticker Ticker // non-nil: call ticker.Tick(targ) in scheduler context
	targ   uint64
}

// eventHeap is a binary min-heap of events ordered by (t, seq). It is
// hand-rolled rather than built on container/heap to avoid the interface
// boxing on what is the hottest structure in the kernel.
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

//ntblint:allocfree
func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//ntblint:allocfree
func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = event{} // release fn for GC
	h.items = h.items[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) peek() *event {
	if len(h.items) == 0 {
		return nil
	}
	return &h.items[0]
}

// reset empties the heap for pooled reuse, releasing event references
// while keeping the backing array warm.
func (h *eventHeap) reset() {
	for i := range h.items {
		h.items[i] = event{}
	}
	h.items = h.items[:0]
}

//ntblint:allocfree
func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
