package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestDaemonDoesNotDeadlockRun(t *testing.T) {
	s := New()
	q := NewQueue[int]("work")
	served := 0
	s.GoDaemon("server", func(p *Proc) {
		for {
			q.Pop(p)
			served++
		}
	})
	s.Go("client", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Push(i)
			p.Sleep(Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run with parked daemon should succeed: %v", err)
	}
	if served != 5 {
		t.Fatalf("daemon served %d, want 5", served)
	}
	if s.LiveProcs() != 1 {
		t.Fatalf("daemon should still be live: %d", s.LiveProcs())
	}
}

func TestNonDaemonStillDeadlocks(t *testing.T) {
	s := New()
	q := NewQueue[int]("never")
	s.GoDaemon("ok-daemon", func(p *Proc) { q.Pop(p) })
	s.Go("stuck-app", func(p *Proc) { q.Pop(p) })
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	if !strings.Contains(err.Error(), "stuck-app") {
		t.Fatalf("report should name the app: %v", err)
	}
	if strings.Contains(err.Error(), "ok-daemon") {
		t.Fatalf("report should not blame the daemon: %v", err)
	}
}

func TestDaemonPanicStillPropagates(t *testing.T) {
	s := New()
	s.GoDaemon("bad", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("daemon exploded")
	})
	s.Go("app", func(p *Proc) { p.Sleep(10 * Microsecond) })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "daemon exploded") {
		t.Fatalf("daemon panic lost: %v", err)
	}
}

func TestRunAfterRunContinues(t *testing.T) {
	// Run to completion, schedule more, run again — the clock keeps
	// monotonic time across runs.
	s := New()
	var first, second Time
	s.Go("a", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		first = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Go("b", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		second = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if second <= first {
		t.Fatalf("clock went backwards: %v then %v", first, second)
	}
}

func TestYieldOrdersWithSameTimeEvents(t *testing.T) {
	s := New()
	var order []string
	s.Go("yielder", func(p *Proc) {
		s.After(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "after-yield")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "after-yield" {
		t.Fatalf("yield ordering: %v", order)
	}
}

func TestQueuePointerItemsReleased(t *testing.T) {
	// Popping must zero the vacated slot so large buffers become
	// collectable; observable via TryPop returning distinct items.
	s := New()
	q := NewQueue[*[]byte]("bufs")
	s.Go("t", func(p *Proc) {
		a, b := &[]byte{1}, &[]byte{2}
		q.Push(a)
		q.Push(b)
		x, _ := q.TryPop()
		y, _ := q.TryPop()
		if x != a || y != b {
			t.Error("queue order broken for pointer items")
		}
		if _, ok := q.TryPop(); ok {
			t.Error("queue should be empty")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceMisusePanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanic("zero capacity", func() { NewResource("r", 0) })
	r := NewResource("r", 2)
	assertPanic("over-release", func() { r.Release(3) })
	s := New()
	s.Go("big", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("over-capacity acquire should panic")
			}
		}()
		r2 := NewResource("r2", 1)
		r2.Acquire(p, 5)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	// Cost of scheduling and firing one event.
	s := New()
	s.Go("loop", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkQueueHandoff(b *testing.B) {
	s := New()
	q := NewQueue[int]("q")
	s.GoDaemon("consumer", func(p *Proc) {
		for {
			q.Pop(p)
		}
	})
	s.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			p.Yield()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s := New()
		q := NewQueue[int]("work")
		for d := 0; d < 4; d++ {
			s.GoDaemon(fmt.Sprintf("daemon%d", d), func(p *Proc) {
				for {
					q.Pop(p)
				}
			})
		}
		s.Go("app", func(p *Proc) {
			q.Push(1)
			p.Sleep(Microsecond)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		s.Shutdown()
		s.Shutdown() // idempotent
	}
	// Give exiting goroutines a moment to be accounted.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+10; i++ {
		runtime.Gosched()
	}
	after := runtime.NumGoroutine()
	if after > before+10 {
		t.Fatalf("goroutines leaked across shutdowns: %d -> %d", before, after)
	}
}

func TestShutdownRunsUserDefers(t *testing.T) {
	s := New()
	cleaned := false
	c := NewCond("never")
	s.GoDaemon("holder", func(p *Proc) {
		defer func() { cleaned = true }()
		c.Wait(p)
	})
	s.Go("app", func(p *Proc) { p.Sleep(Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if !cleaned {
		t.Fatal("user defer did not run during Shutdown")
	}
}

func TestShutdownIgnoresRecover(t *testing.T) {
	// A recover in user code must not intercept the teardown.
	s := New()
	resumed := false
	c := NewCond("never")
	s.GoDaemon("recoverer", func(p *Proc) {
		defer func() {
			recover() // must be a no-op during Goexit
			resumed = true
		}()
		c.Wait(p)
		t.Error("process continued past a killed park")
	})
	s.Go("app", func(p *Proc) { p.Sleep(Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if !resumed {
		t.Fatal("defer with recover did not run")
	}
}

func TestShutdownSurvivesBlockingDefers(t *testing.T) {
	// A process parked mid-operation whose defers themselves block (a
	// deferred Sleep) must not hang Shutdown.
	s := New()
	c := NewCond("never")
	deferRan := false
	s.GoDaemon("blocker", func(p *Proc) {
		defer func() {
			defer func() { recover(); deferRan = true }()
			p.Sleep(Microsecond) // blocking call during teardown
			t.Error("blocking defer completed normally during teardown")
		}()
		c.Wait(p)
	})
	s.Go("app", func(p *Proc) { p.Sleep(Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a blocking defer")
	}
	if !deferRan {
		t.Fatal("teardown defer did not complete")
	}
}
