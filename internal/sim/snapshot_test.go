package sim

import "testing"

// phaseLoad spawns a deterministic mix of processes; used as both a
// warm-up prefix and a divergent future in the snapshot tests.
func phaseLoad(s *Simulator, procs, hops int, step Duration) {
	for i := 0; i < procs; i++ {
		i := i
		s.Go("load", func(p *Proc) {
			for h := 0; h < hops; h++ {
				p.Sleep(step + Duration(i)*3)
			}
		})
	}
}

func TestSnapshotRestoreContinuesBitIdentically(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedulerLadder, SchedulerHeap} {
		orig := NewWith(kind)
		phaseLoad(orig, 4, 16, 100)
		if err := orig.Run(); err != nil {
			t.Fatal(err)
		}
		snap := orig.Snapshot()
		if snap.Now() != orig.Now() {
			t.Fatalf("%v: snapshot time %v, sim at %v", kind, snap.Now(), orig.Now())
		}

		// The forked kernel restored from the snapshot and the original
		// continuing in place must execute the same future identically.
		prefixEvents := orig.EventsExecuted()
		fork := NewWith(kind)
		fork.Restore(snap)
		phaseLoad(orig, 3, 9, 77)
		phaseLoad(fork, 3, 9, 77)
		if err := orig.Run(); err != nil {
			t.Fatal(err)
		}
		if err := fork.Run(); err != nil {
			t.Fatal(err)
		}
		if orig.Now() != fork.Now() {
			t.Fatalf("%v: continued sim at %v, forked sim at %v", kind, orig.Now(), fork.Now())
		}
		if got := orig.EventsExecuted() - prefixEvents; got != fork.EventsExecuted() {
			t.Fatalf("%v: continued sim executed %d events past the snapshot, forked %d", kind, got, fork.EventsExecuted())
		}
	}
}

func TestSnapshotAssertsQuiescence(t *testing.T) {
	s := New()
	phaseLoad(s, 1, 1, 10)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot after Shutdown did not panic")
		}
	}()
	s.Snapshot()
}

func TestRestoreThenResetReturnsToZero(t *testing.T) {
	s := New()
	phaseLoad(s, 2, 4, 50)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	fresh := New()
	fresh.Restore(snap)
	fresh.Reset()
	if fresh.Now() != 0 {
		t.Fatalf("reset-after-restore clock at %v, want 0", fresh.Now())
	}
	phaseLoad(fresh, 2, 4, 50)
	if err := fresh.Run(); err != nil {
		t.Fatal(err)
	}
	if fresh.Now() != s.Now() {
		t.Fatalf("replay after reset ends at %v, original at %v", fresh.Now(), s.Now())
	}
}
