package sim

import (
	"math/rand"
	"testing"
)

// The differential property the ladder queue must satisfy: for any
// stream of pushes and pops that respects the simulator's discipline
// (pushes never in the past of the last pop, seq strictly increasing),
// the ladder dispatches the exact (t, seq) sequence the reference heap
// does. These tests drive both queues with identical streams and fail
// on the first divergence.

// queueStream drives lq and hq with a seeded random mix of pushes and
// pops, comparing every popped (t, seq) pair, then drains both.
func queueStream(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var lq ladderQueue
	var hq eventHeap
	var seq uint64
	var now Time
	push := func() {
		// Mix of horizons: ties at now, near-future, mid, and far — the
		// far pushes land in the top tier, the mid ones in rungs.
		var at Time
		switch rng.Intn(4) {
		case 0:
			at = now
		case 1:
			at = now.Add(Duration(rng.Int63n(64)))
		case 2:
			at = now.Add(Duration(rng.Int63n(100_000)))
		default:
			at = now.Add(Duration(rng.Int63n(2_000_000_000)))
		}
		e := event{t: at, seq: seq}
		seq++
		lq.push(e)
		hq.push(e)
	}
	popBoth := func() {
		le, he := lq.pop(), hq.pop()
		if le.t != he.t || le.seq != he.seq {
			t.Fatalf("seed %d: divergence at pop: ladder (t=%d seq=%d) vs heap (t=%d seq=%d)",
				seed, le.t, le.seq, he.t, he.seq)
		}
		if le.t < now {
			t.Fatalf("seed %d: time went backwards: %d after %d", seed, le.t, now)
		}
		now = le.t
	}
	for op := 0; op < ops; op++ {
		if lq.Len() != hq.Len() {
			t.Fatalf("seed %d: length divergence: ladder %d vs heap %d", seed, lq.Len(), hq.Len())
		}
		if rng.Intn(3) != 0 || lq.Len() == 0 {
			push()
		} else {
			popBoth()
		}
	}
	for lq.Len() > 0 {
		popBoth()
	}
	if hq.Len() != 0 {
		t.Fatalf("seed %d: heap has %d events after ladder drained", seed, hq.Len())
	}
}

func TestLadderMatchesHeapRandomStreams(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 31, 99} {
		queueStream(t, seed, 20_000)
	}
}

func TestLadderSameTimestampFIFO(t *testing.T) {
	// Thousands of events at one timestamp force the spawn guard (a
	// width-1 bucket can never split further); the pops must come back
	// in exact submission order.
	var lq ladderQueue
	const n = 10_000
	const at = Time(12345)
	for i := uint64(0); i < n; i++ {
		lq.push(event{t: at, seq: i})
	}
	// A far event above them, to keep the tie burst inside the ladder
	// structure rather than the small-queue fast path.
	lq.push(event{t: at + 5_000_000, seq: n})
	for i := uint64(0); i <= n; i++ {
		e := lq.pop()
		if e.seq != i {
			t.Fatalf("pop %d returned seq %d: same-timestamp FIFO broken", i, e.seq)
		}
	}
}

func TestLadderResetThenRerun(t *testing.T) {
	// A reset ladder must replay an identical stream identically — the
	// invariant the bench world pool leans on.
	run := func(lq *ladderQueue) []event {
		rng := rand.New(rand.NewSource(7))
		var seq uint64
		var now Time
		var popped []event
		for op := 0; op < 5_000; op++ {
			if rng.Intn(3) != 0 || lq.Len() == 0 {
				lq.push(event{t: now.Add(Duration(rng.Int63n(1_000_000))), seq: seq})
				seq++
			} else {
				e := lq.pop()
				now = e.t
				popped = append(popped, e)
			}
		}
		for lq.Len() > 0 {
			popped = append(popped, lq.pop())
		}
		return popped
	}
	var lq ladderQueue
	first := run(&lq)
	lq.reset()
	if lq.Len() != 0 {
		t.Fatalf("reset left %d events", lq.Len())
	}
	second := run(&lq)
	if len(first) != len(second) {
		t.Fatalf("rerun popped %d events, first run %d", len(second), len(first))
	}
	for i := range first {
		if first[i].t != second[i].t || first[i].seq != second[i].seq {
			t.Fatalf("pop %d: first (t=%d seq=%d) vs rerun (t=%d seq=%d)",
				i, first[i].t, first[i].seq, second[i].t, second[i].seq)
		}
	}
}

func TestSchedulerKindParse(t *testing.T) {
	for _, c := range []struct {
		name string
		want SchedulerKind
		ok   bool
	}{
		{"ladder", SchedulerLadder, true},
		{"heap", SchedulerHeap, true},
		{"fibonacci", 0, false},
		{"", 0, false},
	} {
		got, err := ParseScheduler(c.name)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseScheduler(%q) = %v, %v", c.name, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScheduler(%q) accepted", c.name)
		}
	}
	if SchedulerLadder.String() != "ladder" || SchedulerHeap.String() != "heap" {
		t.Error("SchedulerKind.String broken")
	}
}
