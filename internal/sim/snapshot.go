package sim

// Snapshot is a frozen image of a quiescent simulator: the virtual clock
// and the event sequence counter. Nothing else needs capture — at
// quiescence the event queue is empty by definition and parked daemon
// goroutines carry their own state, so "restoring" a simulator means
// positioning another quiescent kernel (whose daemons are parked in the
// same places) at the same (now, seq) point and letting the next run's
// events wake everything exactly as a continuation of the original
// would.
type Snapshot struct {
	now Time
	seq uint64
}

// Now returns the virtual time at which the snapshot was captured.
func (sn Snapshot) Now() Time { return sn.now }

// Snapshot captures the kernel clock of a quiescent simulator. The same
// preconditions as Reset apply: not running, not shut down, no captured
// panic, no live non-daemon processes, no pending events.
func (s *Simulator) Snapshot() Snapshot {
	s.assertQuiescent("Snapshot")
	return Snapshot{now: s.now, seq: s.seq}
}

// Restore positions a quiescent simulator at the snapshot's clock so the
// next run continues the captured world's future. The event queue is
// rewound empty (the ladder queue accepts pushes at any absolute time
// after reset, so no event cloning is needed) and the per-run executed
// counter restarts, mirroring Reset. Restoring seq as well keeps
// same-timestamp tie-breaking — and therefore the dispatch trace —
// bit-identical to the world the snapshot was taken from continuing in
// place.
func (s *Simulator) Restore(sn Snapshot) {
	s.assertQuiescent("Restore")
	s.now = sn.now
	s.seq = sn.seq
	s.executed = 0
	s.events.reset()
	s.ready = s.ready[:0]
	s.readyHead = 0
}
