package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Simulator is a deterministic discrete-event scheduler.
//
// The zero value is not ready for use; call New. The scheduler itself runs
// in the goroutine that calls Run; process goroutines run one at a time,
// handing control back to the scheduler whenever they block on a kernel
// primitive (Sleep, Queue.Pop, Resource.Acquire, Cond.Wait, ...).
type Simulator struct {
	now    Time
	seq    uint64
	sched  SchedulerKind // reset: keep; snap: keep — construction identity
	events eventQueue    // points at ladderQ or heapQ below

	// The queue backings live inside the Simulator so selecting one via
	// the interface field costs no extra allocation. Only the one events
	// points at is ever non-empty; Reset rewinds it through the
	// interface.
	ladderQ ladderQueue // reset: keep; snap: keep — reset via events; empty at quiescence
	heapQ   eventHeap   // reset: keep; snap: keep — reset via events; empty at quiescence

	// ready is the same-timestamp fast path: events scheduled for the
	// current instant never touch the heap. Because seq grows
	// monotonically, any event scheduled at the current time sorts after
	// every event already in the heap at that time, so a plain FIFO
	// (drained only once the heap holds nothing at now) preserves the
	// exact (t, seq) global order the heap alone would produce.
	ready     []event
	readyHead int

	// yielded carries control back from a running process to the
	// scheduler. Exactly one process may be between resume and yield at
	// any moment, so an unbuffered channel suffices.
	yielded chan struct{} // reset: keep; snap: keep — the handshake channel outlives runs

	procs map[*Proc]struct{} // reset: keep — parked daemons survive a reset by design

	fatal   error // first panic captured from a process; Reset refuses a failed sim
	running bool  // reset: keep — Reset panics unless false
	killed  bool  // reset: keep — Shutdown is terminal; Reset panics if set

	// Sharded execution (see shard.go). group and shard are construction
	// identity: a member simulator belongs to its ShardGroup for life.
	// windowEnd is only meaningful inside runWindow; Reset rezeroes it.
	group     *ShardGroup // reset: keep; snap: keep — construction identity
	shard     int         // reset: keep; snap: keep — construction identity
	windowEnd Time // snap: keep — only live inside runWindow; zero at any snapshot point

	executed uint64 // events dispatched since New or Reset; snap: keep — Restore rezeroes it, the world snapshot records its own event count
}

// errKilled aborts a blocking call issued from a defer while Shutdown is
// unwinding the goroutine.
var errKilled = fmt.Errorf("sim: blocking call during Shutdown teardown")

// New returns an empty simulator positioned at virtual time zero, using
// the process-default scheduler (see SetDefaultScheduler).
func New() *Simulator {
	return NewWith(DefaultScheduler())
}

// NewWith returns an empty simulator backed by the given event-queue
// implementation. Dispatch order is identical for every kind; the choice
// only affects host-side speed.
func NewWith(kind SchedulerKind) *Simulator {
	s := &Simulator{
		sched:   kind,
		ready:   make([]event, 0, 64),
		yielded: make(chan struct{}),
		procs:   make(map[*Proc]struct{}),
	}
	if kind == SchedulerHeap {
		s.heapQ.items = make([]event, 0, 128)
		s.events = &s.heapQ
	} else {
		s.ladderQ.bottom.items = make([]event, 0, 128)
		s.events = &s.ladderQ
	}
	return s
}

// Scheduler reports which event-queue implementation backs s.
func (s *Simulator) Scheduler() SchedulerKind { return s.sched }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// EventsExecuted returns the number of events dispatched since New or the
// last Reset. It is the kernel-level cost of a run — a stable, virtual
// measure benchmark harnesses can use to order work largest-first without
// consulting the wall clock.
func (s *Simulator) EventsExecuted() uint64 { return s.executed }

// schedule enqueues fn to run at time t. Panics if t is in the past.
func (s *Simulator) schedule(t Time, fn func()) {
	s.scheduleEvent(t, event{fn: fn})
}

// scheduleProc enqueues a wake of p at time t without allocating a
// closure — the kernel's hottest operation.
//
//ntblint:allocfree
func (s *Simulator) scheduleProc(t Time, p *Proc) {
	s.scheduleEvent(t, event{proc: p})
}

//ntblint:allocfree
func (s *Simulator) scheduleEvent(t Time, ev event) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, s.now))
	}
	s.seq++
	ev.t, ev.seq = t, s.seq
	if t == s.now {
		s.ready = append(s.ready, ev)
		return
	}
	s.events.push(ev)
}

// After enqueues fn to run d from now. A negative d is treated as zero.
// fn executes in scheduler context: it must not block on kernel
// primitives; to run blocking code, have fn spawn or wake a process.
func (s *Simulator) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now.Add(d), fn)
}

// Ticker is a timer target for AfterTick. Tick runs in scheduler
// context under the same rules as an After callback: it must not block
// on kernel primitives.
type Ticker interface {
	Tick(arg uint64)
}

// AfterTick enqueues tk.Tick(arg) to run d from now, like After but
// without allocating a closure: the event carries the receiver and one
// opaque argument inline. Components that arm a timer per chunk or per
// solve (doorbell interrupt delivery, flow-completion wakeups) use this
// so the timer path stays allocation-free; the argument typically
// carries a generation stamp for stale-event detection or a small
// payload such as doorbell bits.
//
//ntblint:allocfree
func (s *Simulator) AfterTick(d Duration, tk Ticker, arg uint64) {
	if tk == nil {
		panic("sim: AfterTick with nil Ticker")
	}
	if d < 0 {
		d = 0
	}
	s.scheduleEvent(s.now.Add(d), event{ticker: tk, targ: arg})
}

// Go spawns a new process executing body and schedules it to start now.
// The name is used in deadlock reports and traces.
func (s *Simulator) Go(name string, body func(p *Proc)) *Proc {
	return s.GoAfter(name, 0, body)
}

// GoDaemon spawns a service process that is allowed to outlive the
// workload: a simulation whose only remaining parked processes are
// daemons is complete, not deadlocked. Use it for device engines and
// interrupt dispatchers that loop forever.
func (s *Simulator) GoDaemon(name string, body func(p *Proc)) *Proc {
	p := s.GoAfter(name, 0, body)
	p.daemon = true
	return p
}

// GoAfter spawns a new process that starts d from now.
func (s *Simulator) GoAfter(name string, d Duration, body func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
		dead:   make(chan struct{}),
	}
	s.procs[p] = struct{}{}
	go func() {
		defer close(p.dead)
		<-p.resume // wait for first dispatch
		if s.killed {
			return // released by Shutdown before ever starting
		}
		defer func() {
			r := recover()
			if s.killed {
				// Shutdown is releasing this goroutine; the scheduler
				// is not listening, so exit without the handshake.
				return
			}
			if r != nil {
				if s.fatal == nil {
					if err, ok := r.(error); ok {
						// Preserve typed panics (e.g. a runtime's
						// global-exit) for errors.As at the caller.
						s.fatal = fmt.Errorf("sim: process %q panicked: %w", p.name, err)
					} else {
						s.fatal = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
					}
				}
			}
			p.exited = true
			delete(s.procs, p)
			s.yielded <- struct{}{}
		}()
		body(p)
	}()
	if d < 0 {
		d = 0
	}
	s.scheduleProc(s.now.Add(d), p)
	return p
}

// dispatch transfers control to p until it parks or exits. It must only be
// called from scheduler context (inside an event callback).
func (s *Simulator) dispatch(p *Proc) {
	if p.exited {
		return
	}
	p.resume <- struct{}{}
	<-s.yielded
}

// Run executes events until the queue drains or a process panics.
// It returns an error if a process panicked, or a deadlock error if
// processes remain parked with no pending events. A simulation in which
// all processes ran to completion returns nil.
func (s *Simulator) Run() error {
	return s.run(-1)
}

// RunUntil executes events with time ≤ deadline. Parked processes at the
// deadline are not a deadlock; the clock simply stops advancing.
func (s *Simulator) RunUntil(deadline Time) error {
	return s.run(deadline)
}

func (s *Simulator) run(deadline Time) error {
	if s.group != nil {
		return fmt.Errorf("sim: Run on shard %d of a %d-shard group; drive the world through ShardGroup.Run", s.shard, len(s.group.members))
	}
	return s.runFree(deadline)
}

func (s *Simulator) runFree(deadline Time) error {
	if s.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()

loop:
	for s.fatal == nil {
		var ev event
		next := s.events.peek()
		switch {
		case next != nil && next.t == s.now:
			// Heap events at the current instant were scheduled before
			// time advanced here, so they precede everything in ready.
			ev = s.events.pop()
		case s.readyHead < len(s.ready):
			// Same-timestamp fast path: FIFO dispatch, no re-heapify.
			ev = s.ready[s.readyHead]
			s.ready[s.readyHead] = event{} // release fn/proc for GC
			s.readyHead++
			if s.readyHead == len(s.ready) {
				s.ready = s.ready[:0]
				s.readyHead = 0
			}
		case next != nil:
			if deadline >= 0 && next.t > deadline {
				s.now = deadline
				return nil
			}
			ev = s.events.pop()
			s.now = ev.t
		default:
			break loop
		}
		s.executed++
		switch {
		case ev.proc != nil:
			s.dispatch(ev.proc)
		case ev.ticker != nil:
			ev.ticker.Tick(ev.targ)
		default:
			ev.fn()
		}
	}
	if s.fatal != nil {
		return s.fatal
	}
	if deadline < 0 && s.nondaemonProcs() > 0 {
		return s.deadlockError()
	}
	return nil
}

// runWindow executes events with time strictly below end (as possibly
// shrunk by Post, see windowEnd). Unlike RunUntil it never advances the
// clock to the boundary: now stays at the last dispatched event, so a
// later, larger window continues seamlessly. Parked processes are not a
// deadlock here — cross-shard mail merged between windows may wake them.
// The caller (ShardGroup.Run, possibly via a worker goroutine) inspects
// member state only between windows, so process code still observes the
// one-process-at-a-time kernel guarantee.
func (s *Simulator) runWindow(end Time) error {
	if s.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	s.running = true
	s.windowEnd = end
	defer func() { s.running = false }()

	for s.fatal == nil {
		var ev event
		next := s.events.peek()
		switch {
		case next != nil && next.t == s.now:
			ev = s.events.pop()
		case s.readyHead < len(s.ready):
			ev = s.ready[s.readyHead]
			s.ready[s.readyHead] = event{} // release fn/proc for GC
			s.readyHead++
			if s.readyHead == len(s.ready) {
				s.ready = s.ready[:0]
				s.readyHead = 0
			}
		case next != nil:
			if next.t >= s.windowEnd {
				return nil
			}
			ev = s.events.pop()
			s.now = ev.t
		default:
			return nil
		}
		s.executed++
		switch {
		case ev.proc != nil:
			s.dispatch(ev.proc)
		case ev.ticker != nil:
			ev.ticker.Tick(ev.targ)
		default:
			ev.fn()
		}
	}
	return s.fatal
}

// nextTime reports the timestamp of the earliest pending event, or false
// when the queue is empty. Events parked in the ready FIFO are at now by
// construction.
func (s *Simulator) nextTime() (Time, bool) {
	if s.readyHead < len(s.ready) {
		return s.now, true
	}
	if ev := s.events.peek(); ev != nil {
		return ev.t, true
	}
	return 0, false
}

func (s *Simulator) nondaemonProcs() int {
	n := 0
	for p := range s.procs {
		if !p.daemon {
			n++
		}
	}
	return n
}

func (s *Simulator) deadlockError() error {
	names := make([]string, 0, len(s.procs))
	//ntblint:ordered — the report is sorted below, so iteration order never shows
	for p := range s.procs {
		if p.daemon {
			continue
		}
		names = append(names, fmt.Sprintf("%s (blocked on %s)", p.name, p.blockedOn))
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at %v: %d process(es) parked with no pending events: %s",
		s.now, len(names), strings.Join(names, ", "))
}

// LiveProcs reports the number of processes that have been spawned and have
// not yet exited.
func (s *Simulator) LiveProcs() int { return len(s.procs) }

// Reset rewinds a finished simulator to virtual time zero so its world
// can run again without rebuilding the object graph. Parked daemon
// processes stay parked — they resume service when the next run's events
// wake them — which is exactly what a pooled world wants: device engines
// and dispatchers remain installed. Everything else must have drained;
// Reset panics if the simulator is running, was Shut down, captured a
// panic, or still holds non-daemon processes or pending events. The event
// heap's and ready queue's backing arrays are retained, so a reset
// allocates nothing.
func (s *Simulator) Reset() {
	s.assertQuiescent("Reset")
	s.now = 0
	s.seq = 0
	s.executed = 0
	s.windowEnd = 0
	s.events.reset()
	s.ready = s.ready[:0]
	s.readyHead = 0
}

// assertQuiescent panics unless the simulator is between runs with every
// non-daemon process exited and no events pending — the precondition
// shared by Reset, Snapshot, and Restore.
func (s *Simulator) assertQuiescent(op string) {
	if s.running {
		panic("sim: " + op + " during Run")
	}
	if s.killed {
		panic("sim: " + op + " after Shutdown")
	}
	if s.fatal != nil {
		panic("sim: " + op + " of a failed simulation: " + s.fatal.Error())
	}
	if n := s.nondaemonProcs(); n > 0 {
		panic(fmt.Sprintf("sim: %s with %d non-daemon process(es) live", op, n))
	}
	if s.events.Len() > 0 || s.readyHead < len(s.ready) {
		panic("sim: " + op + " with pending events")
	}
}

// Shutdown releases every parked process goroutine (daemons included) and
// drops pending events, so a finished simulation's entire object graph —
// window buffers, heaps, queues — becomes collectable. Harnesses that
// build many simulators in one process (benchmarks, fuzzers) must call it
// between instances or the parked goroutines pin their worlds' memory.
// The simulator must not be running; after Shutdown it must not be used
// except to read the clock.
func (s *Simulator) Shutdown() {
	if s.running {
		panic("sim: Shutdown during Run")
	}
	if s.killed {
		return
	}
	s.killed = true
	//ntblint:ordered — teardown runs after the last observable event; release order is invisible
	for p := range s.procs {
		if !p.exited {
			// Sequential teardown: each goroutine fully unwinds (its
			// user defers may touch state shared with sibling
			// processes) before the next is released.
			p.resume <- struct{}{}
			<-p.dead
		}
	}
	s.procs = make(map[*Proc]struct{})
	s.ladderQ = ladderQueue{}
	s.heapQ = eventHeap{}
	s.events = &s.heapQ
	s.ready, s.readyHead = nil, 0
}
