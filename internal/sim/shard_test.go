package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// pingTrace records one cross-shard delivery: who got what, when.
type pingTrace struct {
	At  Time
	Dst int
	Hop int
}

// runPingWorld builds n members that bounce a token around the group:
// member i receives hop h at t, works locally for a member-dependent
// spell, then posts hop h+1 to member (i+1)%n one lookahead out. Local
// work is interleaved with same-shard events so windows hold a mix of
// local and merged activity. Each member logs deliveries privately; the
// combined log (in shard-major order) is the determinism witness.
func runPingWorld(t *testing.T, n, hops int) ([][]pingTrace, *ShardGroup) {
	t.Helper()
	const L = 100 * Nanosecond
	members := make([]*Simulator, n)
	for i := range members {
		members[i] = New()
	}
	g := NewShardGroup(L, members...)
	logs := make([][]pingTrace, n)

	var bounce func(dst, hop int) func()
	bounce = func(dst, hop int) func() {
		return func() {
			s := members[dst]
			logs[dst] = append(logs[dst], pingTrace{At: s.Now(), Dst: dst, Hop: hop})
			if hop >= hops {
				return
			}
			// Local same-shard churn before forwarding, so the merge
			// competes with resident events.
			s.After(Duration(10+dst), func() {})
			s.After(Duration(25+3*hop%17), func() {
				s.Post(members[(dst+1)%n], L+Duration(hop%7), bounce((dst+1)%n, hop+1))
			})
		}
	}
	members[0].After(0, bounce(0, 0))
	if err := g.Run(); err != nil {
		t.Fatalf("sharded ping world: %v", err)
	}
	return logs, g
}

// TestShardGroupDeterministic reruns the identical sharded world from
// fresh members and from Reset, at several shard counts, and requires
// the delivery logs to match exactly.
func TestShardGroupDeterministic(t *testing.T) {
	for _, n := range []int{2, 4} {
		ref, _ := runPingWorld(t, n, 200)
		again, g := runPingWorld(t, n, 200)
		if !reflect.DeepEqual(ref, again) {
			t.Fatalf("n=%d: two fresh runs diverged", n)
		}
		g.Reset()
		if got := g.EventsExecuted(); got != 0 {
			t.Fatalf("n=%d: %d events survived Reset", n, got)
		}
		g.Shutdown()
	}
}

// TestShardGroupMatchesMonolithic runs the same logical token bounce on
// one unsharded simulator and requires the same delivery times in the
// same order.
func TestShardGroupMatchesMonolithic(t *testing.T) {
	const n, hops = 3, 120
	sharded, g := runPingWorld(t, n, hops)
	defer g.Shutdown()
	var flat []pingTrace
	for hop := 0; hop <= hops; hop++ {
		flat = append(flat, sharded[hop%n][hop/n])
	}

	s := New()
	var mono []pingTrace
	var bounce func(dst, hop int) func()
	bounce = func(dst, hop int) func() {
		return func() {
			mono = append(mono, pingTrace{At: s.Now(), Dst: dst, Hop: hop})
			if hop >= hops {
				return
			}
			s.After(Duration(10+dst), func() {})
			s.After(Duration(25+3*hop%17), func() {
				s.After(100*Nanosecond+Duration(hop%7), bounce((dst+1)%n, hop+1))
			})
		}
	}
	s.After(0, bounce(0, 0))
	if err := s.Run(); err != nil {
		t.Fatalf("monolithic ping world: %v", err)
	}
	if !reflect.DeepEqual(flat, mono) {
		t.Fatalf("sharded delivery log diverged from monolithic:\nsharded:    %v\nmonolithic: %v", flat, mono)
	}
}

// TestShardGroupSoloHorizon drives a world where only shard 0 has
// events for long stretches: the solo fast path must still deliver its
// posts (the dynamic horizon shrink), and replies must come back.
func TestShardGroupSoloHorizon(t *testing.T) {
	const L = 100 * Nanosecond
	a, b := New(), New()
	g := NewShardGroup(L, a, b)
	defer g.Shutdown()

	var got []Time
	a.Go("driver", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Microseconds(50)) // run far ahead of idle shard 1
			echo := NewCompletion("echo")
			a.Post(b, L, func() {
				b.Post(a, L, func() {
					got = append(got, a.Now())
					echo.Complete()
				})
			})
			echo.Wait(p)
		}
	})
	if err := g.Run(); err != nil {
		t.Fatalf("solo-horizon world: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d echoes, want 5", len(got))
	}
	for i, at := range got {
		want := Time(Duration(i+1) * (Microseconds(50) + 2*L))
		if at != want {
			t.Fatalf("echo %d at %v, want %v", i, at, want)
		}
	}
}

// TestShardGroupDeadlockReport requires the combined report to name the
// parked process on every member.
func TestShardGroupDeadlockReport(t *testing.T) {
	a, b := New(), New()
	g := NewShardGroup(Microseconds(1), a, b)
	defer g.Shutdown()
	a.Go("stuck-a", func(p *Proc) { NewCond("never-a").Wait(p) })
	b.Go("stuck-b", func(p *Proc) { NewCond("never-b").Wait(p) })
	err := g.Run()
	if err == nil {
		t.Fatal("want deadlock error")
	}
	for _, frag := range []string{"shard 0", "shard 1", "stuck-a", "stuck-b"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("deadlock report %q missing %q", err, frag)
		}
	}
	g.Shutdown()
	if err := g.Run(); err == nil || !strings.Contains(err.Error(), "Shutdown") {
		t.Fatalf("Run after Shutdown: %v", err)
	}
}

// TestShardGroupPostValidation checks the contract panics: lookahead
// violations and cross-group posts must fail loudly.
func TestShardGroupPostValidation(t *testing.T) {
	a, b := New(), New()
	g := NewShardGroup(Microseconds(1), a, b)
	defer g.Shutdown()
	mustPanic(t, "below the group lookahead", func() {
		a.Post(b, 10*Nanosecond, func() {})
	})
	loner := New()
	mustPanic(t, "do not share a shard group", func() {
		a.Post(loner, Microseconds(2), func() {})
	})
	mustPanic(t, "already belongs", func() {
		NewShardGroup(Microseconds(1), a, New())
	})
	if err := a.Run(); err == nil || !strings.Contains(err.Error(), "ShardGroup.Run") {
		t.Fatalf("direct Run on a member: %v", err)
	}
}

func mustPanic(t *testing.T, frag string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", frag)
		}
		if !strings.Contains(fmt.Sprint(r), frag) {
			t.Fatalf("panic %v, want mention of %q", r, frag)
		}
	}()
	fn()
}
