package sim

import (
	"runtime"
)

// Proc is a simulation process: a coroutine scheduled on virtual time.
// A Proc's body runs in its own goroutine, but the kernel guarantees that
// only one process executes at a time, so process code needs no locking
// when touching simulation state.
//
// All blocking methods must be called from the process's own body.
type Proc struct {
	sim    *Simulator
	name   string
	resume chan struct{}
	dead   chan struct{} // closed when the goroutine exits

	exited    bool
	daemon    bool   // daemons may remain parked at end of simulation
	blockedOn string // human-readable label for deadlock reports
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this process belongs to.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// park hands control back to the scheduler until some event wakes this
// process. Every park must be paired with exactly one wake.
//
//ntblint:allocfree
func (p *Proc) park(label string) {
	if p.sim.killed {
		// A deferred call running during teardown tried to block (for
		// example a deferred symmetric Free sleeping for its software
		// cost). The scheduler is gone; abort the call. The spawn
		// wrapper swallows this, and per Go's recover-during-Goexit
		// semantics the goroutine still terminates even if user code
		// recovers it.
		panic(errKilled)
	}
	p.blockedOn = label
	p.sim.yielded <- struct{}{}
	<-p.resume
	if p.sim.killed {
		// Shutdown is tearing the simulation down: terminate this
		// goroutine, running user defers on the way out. Goexit (not a
		// panic) so a recover in user code cannot intercept it.
		runtime.Goexit()
	}
	p.blockedOn = ""
}

// wake schedules p to resume at the current virtual time. It must only be
// used by kernel primitives that know p is parked and not yet woken.
//
//ntblint:allocfree
func (p *Proc) wake() {
	p.sim.scheduleProc(p.sim.now, p)
}

// wakeAfter schedules p to resume d from now.
//
//ntblint:allocfree
func (p *Proc) wakeAfter(d Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.scheduleProc(p.sim.now.Add(d), p)
}

// Sleep suspends the process for d of virtual time. A non-positive d
// yields the processor for one scheduling round (other events at the same
// timestamp run first).
//
//ntblint:allocfree
func (p *Proc) Sleep(d Duration) {
	p.wakeAfter(d)
	// A static label: a sleeper always has its wake event pending, so it
	// can never appear in a deadlock report, and formatting the duration
	// here would put fmt.Sprintf on the kernel's hottest path.
	p.park("sleep")
}

// Yield lets every other event already scheduled at the current instant
// run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
