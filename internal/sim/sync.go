package sim

// This file provides virtual-time synchronisation primitives. They follow
// the same discipline as the kernel: no real locking is needed because at
// most one process executes at a time; blocking is expressed by parking the
// calling process and waking it from a scheduled event.

// Cond is a condition variable on virtual time. The usual pattern applies:
//
//	for !predicate() {
//		cond.Wait(p)
//	}
//
// Signal and Broadcast may be called from process or scheduler context.
type Cond struct {
	name      string
	parkLabel string // "cond " + name, built once instead of per Wait
	waiters   []*Proc
}

// NewCond returns a condition variable labelled name for deadlock reports.
func NewCond(name string) *Cond { return &Cond{name: name, parkLabel: "cond " + name} }

// Wait parks the calling process until a Signal or Broadcast wakes it.
//
//ntblint:allocfree
func (c *Cond) Wait(p *Proc) {
	if c.parkLabel == "" { // zero-value Cond (e.g. inside Completion)
		//ntblint:allocok — one-time lazy label init for zero-value Conds
		c.parkLabel = "cond " + c.name
	}
	c.waiters = append(c.waiters, p)
	p.park(c.parkLabel)
}

// Signal wakes the longest-waiting process, if any.
//
//ntblint:allocfree
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	w.wake()
}

// Broadcast wakes every currently waiting process.
//
//ntblint:allocfree
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		w.wake()
	}
	c.waiters = c.waiters[:0]
}

// Waiters reports how many processes are parked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Completion is a one-shot latch: processes that Wait before Complete is
// called park until it fires; afterwards Wait returns immediately.
// The zero value is an incomplete latch, usable once given a name via
// NewCompletion (the name only affects diagnostics).
type Completion struct {
	name string // reset: keep — diagnostic identity
	done bool
	cond Cond
}

// NewCompletion returns an unfired latch labelled name.
func NewCompletion(name string) *Completion {
	return &Completion{name: name, cond: Cond{name: name}}
}

// Done reports whether the latch has fired.
func (c *Completion) Done() bool { return c.done }

// Complete fires the latch and wakes all waiters. Firing twice is a no-op.
func (c *Completion) Complete() {
	if c.done {
		return
	}
	c.done = true
	c.cond.Broadcast()
}

// Wait parks until the latch fires.
func (c *Completion) Wait(p *Proc) {
	for !c.done {
		c.cond.Wait(p)
	}
}

// Reset rearms a fired latch so the record can be pooled and reused.
// The caller must guarantee no process still holds the latch from the
// previous cycle: resetting with parked waiters, or before Complete has
// fired, is a lifecycle bug and panics.
func (c *Completion) Reset() {
	if !c.done {
		panic("sim: Reset of an unfired completion: " + c.name)
	}
	if len(c.cond.waiters) != 0 {
		panic("sim: Reset of a completion with parked waiters: " + c.name)
	}
	c.done = false
}

// queueWaiter is a parked consumer with a handoff slot.
type queueWaiter[T any] struct {
	p     *Proc
	item  T
	ready bool
}

// Queue is an unbounded FIFO channel in virtual time. Push never blocks;
// Pop blocks until an item is available. Items are handed directly to the
// longest-waiting consumer, so wake order is FIFO and no consumer can
// starve.
type Queue[T any] struct {
	name      string
	parkLabel string
	items     []T
	waiters   []*queueWaiter[T]
	// wpool recycles waiter records: a waiter's lifetime is confined to
	// one Pop call, so the record is returned here as Pop unblocks and
	// the steady-state park path allocates nothing.
	wpool []*queueWaiter[T]
}

// NewQueue returns an empty queue labelled name.
func NewQueue[T any](name string) *Queue[T] {
	return &Queue[T]{name: name, parkLabel: "queue " + name}
}

// Len reports the number of buffered (not yet handed off) items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends an item, waking the longest-waiting consumer if present.
// It is safe to call from scheduler context.
//
//ntblint:allocfree
func (q *Queue[T]) Push(item T) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		w.item = item
		w.ready = true
		w.p.wake()
		return
	}
	q.items = append(q.items, item)
}

// Pop removes and returns the oldest item, blocking while the queue is
// empty.
//
//ntblint:allocfree
func (q *Queue[T]) Pop(p *Proc) T {
	if len(q.items) > 0 {
		item := q.items[0]
		copy(q.items, q.items[1:])
		var zero T
		q.items[len(q.items)-1] = zero
		q.items = q.items[:len(q.items)-1]
		return item
	}
	var w *queueWaiter[T]
	if last := len(q.wpool) - 1; last >= 0 {
		w = q.wpool[last]
		q.wpool = q.wpool[:last]
	} else {
		//ntblint:allocok — pool refill; amortised to zero in steady state
		w = new(queueWaiter[T])
	}
	w.p = p
	q.waiters = append(q.waiters, w)
	p.park(q.parkLabel)
	if !w.ready {
		panic("sim: queue waiter woken without item: " + q.name)
	}
	item := w.item
	*w = queueWaiter[T]{}
	q.wpool = append(q.wpool, w)
	return item
}

// TryPop removes and returns the oldest item without blocking. The second
// result reports whether an item was available.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	return item, true
}

// resourceWaiter is a parked acquirer and the amount it needs.
type resourceWaiter struct {
	p       *Proc
	n       int64
	granted bool
}

// Resource is a FIFO-fair counting semaphore in virtual time. It models
// finite facilities such as DMA engine descriptor slots or a link's
// outstanding-transaction budget. Waiters are served strictly in arrival
// order; a large request at the head blocks smaller later ones, which
// preserves fairness and keeps timing deterministic.
type Resource struct {
	name      string
	parkLabel string
	capacity  int64
	free      int64
	waiters   []*resourceWaiter
	wpool     []*resourceWaiter // recycled waiter records, as in Queue
}

// NewResource returns a resource with the given capacity, all free.
func NewResource(name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{name: name, parkLabel: "resource " + name, capacity: capacity, free: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// Free returns the currently available capacity.
func (r *Resource) Free() int64 { return r.free }

// Acquire blocks until n units are available and takes them. n must not
// exceed the resource's capacity.
//
//ntblint:allocfree
func (r *Resource) Acquire(p *Proc, n int64) {
	if n > r.capacity {
		panic("sim: acquire exceeds capacity of resource " + r.name)
	}
	if len(r.waiters) == 0 && r.free >= n {
		r.free -= n
		return
	}
	var w *resourceWaiter
	if last := len(r.wpool) - 1; last >= 0 {
		w = r.wpool[last]
		r.wpool = r.wpool[:last]
	} else {
		//ntblint:allocok — pool refill; amortised to zero in steady state
		w = new(resourceWaiter)
	}
	w.p, w.n, w.granted = p, n, false
	r.waiters = append(r.waiters, w)
	p.park(r.parkLabel)
	if !w.granted {
		panic("sim: resource waiter woken without grant: " + r.name)
	}
	*w = resourceWaiter{}
	r.wpool = append(r.wpool, w)
}

// Release returns n units and serves queued waiters in FIFO order.
// It is safe to call from scheduler context.
//
//ntblint:allocfree
func (r *Resource) Release(n int64) {
	r.free += n
	if r.free > r.capacity {
		panic("sim: release overflows capacity of resource " + r.name)
	}
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if r.free < head.n {
			return
		}
		r.free -= head.n
		head.granted = true
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		head.p.wake()
	}
}

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff.
type Mutex struct{ r *Resource }

// NewMutex returns an unlocked mutex labelled name.
func NewMutex(name string) *Mutex { return &Mutex{r: NewResource(name, 1)} }

// Lock blocks until the mutex is held by the caller.
func (m *Mutex) Lock(p *Proc) { m.r.Acquire(p, 1) }

// Unlock releases the mutex, handing it to the longest waiter if any.
func (m *Mutex) Unlock() { m.r.Release(1) }
