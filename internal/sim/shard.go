package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Conservative parallel-DES sharding (PROTOCOL.md §14).
//
// A ShardGroup ties N sibling Simulators into one simulated world that
// executes across N goroutines. Each member owns a private event queue
// and advances inside a conservative safe-time window derived from the
// group's lookahead L — the minimum virtual latency of any cross-shard
// interaction (for the NTB fabrics, the cheapest operation that crosses
// a cable). Members never touch each other's state directly; a member
// that wants to affect another schedules the effect through Post, which
// lands in a per-(src,dst) mailbox and is merged into the destination's
// queue at the next window boundary in deterministic (t, src, seq)
// order. Correctness is the classic conservative-synchronisation
// argument: with m the global minimum next-event time, no event executed
// in the window [m, m+L) can create an effect earlier than m+L, so every
// member may execute its sub-m+L events without hearing from the others.
type ShardGroup struct {
	members   []*Simulator
	lookahead Duration // reset: keep — construction identity

	// mail is the cross-shard mailbox matrix, indexed [src*n + dst].
	// During a window only src's worker appends to row src; the
	// coordinator drains every box between windows. The window barrier
	// (WaitGroup + channel handshake) orders those accesses, so the
	// boxes need no locks.
	mail    [][]post
	postSeq []uint64 // per-source issue counter; orders same-instant posts
	merged  []post   // reset: keep — merge scratch, empty between runs
	times   []Time   // reset: keep — per-member next-event scratch, rewritten every window

	// Persistent window workers, spawned on the first parallel window.
	// work[i] carries the window end; wg counts outstanding windows.
	work      []chan Time    // reset: keep — workers persist across runs
	wg        sync.WaitGroup // reset: keep — zero between windows by construction
	workersUp bool           // reset: keep — worker lifetime spans runs
	killed    bool           // reset: keep — Shutdown is terminal, like Simulator.killed
}

// post is one cross-shard effect awaiting merge: run fn on the
// destination member at time t. src and seq make the merge order — and
// therefore the destination's event sequence — deterministic.
type post struct {
	t   Time
	src int
	seq uint64
	fn  func()
}

// timeInf is the window bound of a shard running with no other shard
// active: effectively unbounded, shrunk dynamically by Post.
const timeInf = Time(1<<63 - 1)

// NewShardGroup joins the given simulators into one sharded world.
// lookahead is the conservative bound: no member may affect another in
// less than this much virtual time, and every Post must respect it. The
// members must be freshly built (time zero, never run, not already
// grouped); member order fixes shard indices and all merge tie-breaks.
func NewShardGroup(lookahead Duration, members ...*Simulator) *ShardGroup {
	if lookahead <= 0 {
		panic("sim: shard group needs a positive lookahead")
	}
	if len(members) < 2 {
		panic("sim: shard group needs at least two members")
	}
	g := &ShardGroup{
		members:   members,
		lookahead: lookahead,
		mail:      make([][]post, len(members)*len(members)),
		postSeq:   make([]uint64, len(members)),
		times:     make([]Time, len(members)),
		work:      make([]chan Time, len(members)),
	}
	for i, s := range members {
		if s.group != nil {
			panic("sim: simulator already belongs to a shard group")
		}
		if s.killed || s.running || s.now != 0 || s.seq != 0 {
			panic("sim: shard group member must be fresh")
		}
		s.group, s.shard = g, i
	}
	return g
}

// Members returns the member simulators in shard order.
func (g *ShardGroup) Members() []*Simulator { return g.members }

// Lookahead returns the group's conservative synchronisation bound.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// Group returns the shard group s belongs to, or nil.
func (s *Simulator) Group() *ShardGroup { return s.group }

// Shard returns s's index within its shard group (0 when ungrouped).
func (s *Simulator) Shard() int { return s.shard }

// Post schedules fn to run on dst's timeline d from now. When dst is s
// itself this is plain After; across members it is the only sanctioned
// cross-shard channel, and d must be at least the group lookahead — the
// promise the safe-window computation is built on. fn runs in dst's
// scheduler context under the usual After rules (no blocking).
func (s *Simulator) Post(dst *Simulator, d Duration, fn func()) {
	if dst == s {
		s.After(d, fn)
		return
	}
	g := s.group
	if g == nil || dst.group != g {
		panic("sim: Post between simulators that do not share a shard group")
	}
	if d < g.lookahead {
		panic(fmt.Sprintf("sim: Post %v ahead of now, below the group lookahead %v", d, g.lookahead))
	}
	t := s.now.Add(d)
	// A solo shard may be running far beyond the other members (their
	// queues were empty). The moment it seeds an event at t on another
	// member, that member can reply as early as t+L, so the poster's own
	// window must shrink to that horizon.
	if horizon := t.Add(g.lookahead); horizon < s.windowEnd {
		s.windowEnd = horizon
	}
	g.postSeq[s.shard]++
	box := &g.mail[s.shard*len(g.members)+dst.shard]
	*box = append(*box, post{t: t, src: s.shard, seq: g.postSeq[s.shard], fn: fn})
}

// mergeMail drains every mailbox into the destination queues. Posts for
// one destination are ordered by (t, src, seq) — a total order fixed by
// virtual time and issue order, independent of which goroutines ran the
// windows — so the destination assigns event sequence numbers
// deterministically.
func (g *ShardGroup) mergeMail() {
	n := len(g.members)
	for dst := 0; dst < n; dst++ {
		g.merged = g.merged[:0]
		for src := 0; src < n; src++ {
			box := &g.mail[src*n+dst]
			for i := range *box {
				g.merged = append(g.merged, (*box)[i])
				(*box)[i].fn = nil // release for GC
			}
			*box = (*box)[:0]
		}
		if len(g.merged) == 0 {
			continue
		}
		sort.Slice(g.merged, func(i, j int) bool {
			a, b := &g.merged[i], &g.merged[j]
			if a.t != b.t {
				return a.t < b.t
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		d := g.members[dst]
		for i := range g.merged {
			p := &g.merged[i]
			// The safe-window invariant guarantees t > d.now here; let
			// scheduleEvent's own check catch any violation.
			d.scheduleEvent(p.t, event{fn: p.fn})
			p.fn = nil
		}
	}
}

// Run drives the sharded world to completion: merge mail, compute the
// safe window from the global minimum next-event time, execute every
// member that has events inside it (in parallel when more than one
// does), repeat. It returns the first member error (lowest shard index)
// if any process panicked, a combined deadlock report if processes
// remain parked with no pending events anywhere, and nil when every
// non-daemon process ran to completion.
func (g *ShardGroup) Run() error {
	if g.killed {
		return fmt.Errorf("sim: Run after Shutdown")
	}
	for {
		g.mergeMail()

		// Global minimum and second-minimum pending event times.
		m, m2 := timeInf, timeInf
		argmin := -1
		for i, s := range g.members {
			t, ok := s.nextTime()
			if !ok {
				g.times[i] = timeInf
				continue
			}
			g.times[i] = t
			if t < m {
				m2 = m
				m, argmin = t, i
			} else if t < m2 {
				m2 = t
			}
		}
		if argmin < 0 {
			return g.finish()
		}

		end := m.Add(g.lookahead)
		active := 0
		for _, t := range g.times {
			if t < end {
				active++
			}
		}
		if active == 1 {
			// Solo fast path: every other member's horizon is m2, so the
			// lone runnable shard may advance clear to m2+L inline on
			// this goroutine — no worker handoff. Post shrinks the bound
			// if the shard seeds events elsewhere along the way.
			soloEnd := timeInf
			if m2 < timeInf {
				soloEnd = m2.Add(g.lookahead)
			}
			g.members[argmin].runWindow(soloEnd) //nolint:errcheck — fatal is re-read below
		} else {
			g.runParallel(end)
		}
		for _, s := range g.members {
			if s.fatal != nil {
				return s.fatal
			}
		}
	}
}

// runParallel executes one safe window on every member with events
// inside it, each on its persistent worker goroutine, and waits for all
// of them. The WaitGroup handshake publishes every member's state (and
// its mailbox rows) back to the coordinator.
func (g *ShardGroup) runParallel(end Time) {
	if !g.workersUp {
		for i := range g.members {
			g.work[i] = make(chan Time, 1)
			go g.worker(i)
		}
		g.workersUp = true
	}
	for i := range g.members {
		if g.times[i] < end {
			g.wg.Add(1)
			g.work[i] <- end
		}
	}
	g.wg.Wait()
}

// worker is one member's persistent window executor.
func (g *ShardGroup) worker(i int) {
	s := g.members[i]
	for end := range g.work[i] {
		s.runWindow(end) //nolint:errcheck — fatal is read by the coordinator
		g.wg.Done()
	}
}

// finish classifies an empty-queue group: complete, or deadlocked with
// a combined per-member report.
func (g *ShardGroup) finish() error {
	var reports []string
	for i, s := range g.members {
		if s.nondaemonProcs() > 0 {
			reports = append(reports, fmt.Sprintf("shard %d: %v", i, s.deadlockError()))
		}
	}
	if len(reports) > 0 {
		return fmt.Errorf("sim: sharded world deadlocked: %s", strings.Join(reports, "; "))
	}
	return nil
}

// EventsExecuted sums the members' dispatched-event counts — the same
// kernel-level cost measure Simulator.EventsExecuted reports for an
// unsharded world.
func (g *ShardGroup) EventsExecuted() uint64 {
	var n uint64
	for _, s := range g.members {
		n += s.EventsExecuted()
	}
	return n
}

// Reset rewinds every member to virtual time zero (members must be
// individually quiescent) and rezeroes the post counters so a rerun
// issues the identical merge sequence.
func (g *ShardGroup) Reset() {
	for _, s := range g.members {
		s.Reset()
	}
	for i := range g.postSeq {
		g.postSeq[i] = 0
	}
	for i := range g.mail {
		if len(g.mail[i]) != 0 {
			panic("sim: ShardGroup.Reset with undelivered cross-shard mail")
		}
	}
}

// Shutdown stops the window workers and shuts every member down, in
// shard order. Like Simulator.Shutdown it is terminal and idempotent.
func (g *ShardGroup) Shutdown() {
	if !g.killed {
		g.killed = true
		if g.workersUp {
			for i := range g.work {
				close(g.work[i])
			}
			g.workersUp = false
		}
	}
	for _, s := range g.members {
		s.Shutdown()
	}
}
