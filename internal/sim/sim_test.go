package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	if err := s.Run(); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", s.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var end Time
	s.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(7 * Microsecond)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(12 * Microsecond); end != want {
		t.Fatalf("end time = %v, want %v", end, want)
	}
}

func TestEventOrderingFIFOAtSameTime(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(3*Microsecond, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, got, i, order)
		}
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var times []Time
	delays := []Duration{9, 1, 5, 3, 7, 2, 8, 4, 6, 0}
	for _, d := range delays {
		s.After(d*Microsecond, func() { times = append(times, s.Now()) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("events out of order: %v", times)
		}
	}
	if len(times) != len(delays) {
		t.Fatalf("ran %d events, want %d", len(times), len(delays))
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	// Property: for any set of delays, events fire in nondecreasing time
	// order and same-time events fire in insertion order.
	f := func(raw []uint16) bool {
		s := New()
		type firing struct {
			t   Time
			idx int
		}
		var fired []firing
		for i, r := range raw {
			i := i
			s.After(Duration(r)*Nanosecond, func() {
				fired = append(fired, firing{s.Now(), i})
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].t < fired[i-1].t {
				return false
			}
			if fired[i].t == fired[i-1].t && fired[i].idx < fired[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlyOneProcRunsAtATime(t *testing.T) {
	// With many interleaved sleepers mutating a shared counter without
	// locks, determinism and -race cleanliness demonstrate the
	// single-execution guarantee.
	s := New()
	counter := 0
	trace := make([]int, 0, 300)
	for i := 0; i < 3; i++ {
		i := i
		s.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 100; j++ {
				counter++
				trace = append(trace, i)
				p.Sleep(Duration(i+1) * Microsecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 300 {
		t.Fatalf("counter = %d, want 300", counter)
	}
	if len(trace) != 300 {
		t.Fatalf("trace len = %d", len(trace))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		q := NewQueue[int]("q")
		for i := 0; i < 4; i++ {
			i := i
			s.Go(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(i*3+j) * Microsecond)
					q.Push(i*100 + j)
				}
			})
		}
		for i := 0; i < 2; i++ {
			i := i
			s.Go(fmt.Sprintf("cons%d", i), func(p *Proc) {
				for j := 0; j < 10; j++ {
					v := q.Pop(p)
					log = append(log, fmt.Sprintf("c%d@%v:%d", i, p.Now(), v))
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	c := NewCond("never")
	s.Go("stuck", func(p *Proc) { c.Wait(p) })
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("unhelpful deadlock error: %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New()
	s.Go("boom", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("kapow")
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "kapow") {
		t.Fatalf("panic not propagated: %v", err)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New()
	reached := false
	s.Go("late", func(p *Proc) {
		p.Sleep(100 * Microsecond)
		reached = true
	})
	if err := s.RunUntil(Time(50 * Microsecond)); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("event past deadline executed")
	}
	if s.Now() != Time(50*Microsecond) {
		t.Fatalf("clock = %v, want 50us", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatal("event never ran after resuming")
	}
}

func TestGoAfterDelaysStart(t *testing.T) {
	s := New()
	var start Time
	s.GoAfter("delayed", 42*Microsecond, func(p *Proc) { start = p.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if start != Time(42*Microsecond) {
		t.Fatalf("start = %v, want 42us", start)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := New()
	c := NewCond("c")
	var woke []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Go(name, func(p *Proc) {
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	s.Go("signaler", func(p *Proc) {
		p.Sleep(Microsecond) // let everyone park
		c.Signal()
		p.Sleep(Microsecond)
		c.Signal()
		p.Sleep(Microsecond)
		c.Signal()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(woke, ""); got != "abc" {
		t.Fatalf("wake order = %q, want abc", got)
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New()
	c := NewCond("c")
	n := 0
	for i := 0; i < 5; i++ {
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	s.Go("b", func(p *Proc) {
		p.Sleep(Microsecond)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("woke %d, want 5", n)
	}
}

func TestCompletionBeforeAndAfter(t *testing.T) {
	s := New()
	done := NewCompletion("done")
	var early, late Time
	s.Go("early", func(p *Proc) {
		done.Wait(p)
		early = p.Now()
	})
	s.Go("firer", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		done.Complete()
		done.Complete() // idempotent
	})
	s.Go("late", func(p *Proc) {
		p.Sleep(20 * Microsecond)
		done.Wait(p) // already complete: returns immediately
		late = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if early != Time(10*Microsecond) {
		t.Fatalf("early woke at %v, want 10us", early)
	}
	if late != Time(20*Microsecond) {
		t.Fatalf("late woke at %v, want 20us", late)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	s := New()
	q := NewQueue[int]("q")
	var got []int
	s.Go("producer", func(p *Proc) {
		for i := 0; i < 50; i++ {
			q.Push(i)
			if i%7 == 0 {
				p.Sleep(Microsecond)
			}
		}
	})
	s.Go("consumer", func(p *Proc) {
		for i := 0; i < 50; i++ {
			got = append(got, q.Pop(p))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	s := New()
	q := NewQueue[string]("q")
	s.Go("p", func(p *Proc) {
		if _, ok := q.TryPop(); ok {
			t.Error("TryPop on empty queue succeeded")
		}
		q.Push("x")
		v, ok := q.TryPop()
		if !ok || v != "x" {
			t.Errorf("TryPop = %q, %v", v, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueManyConsumersFIFOWake(t *testing.T) {
	s := New()
	q := NewQueue[int]("q")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.GoAfter(fmt.Sprintf("c%d", i), Duration(i)*Microsecond, func(p *Proc) {
			v := q.Pop(p)
			order = append(order, i*1000+v)
		})
	}
	s.GoAfter("p", 10*Microsecond, func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Push(i)
			p.Sleep(Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1001, 2002, 3003} // consumer i receives item i
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceBlocksAtCapacity(t *testing.T) {
	s := New()
	r := NewResource("r", 2)
	var acquired []Time
	for i := 0; i < 4; i++ {
		s.Go(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			acquired = append(acquired, p.Now())
			p.Sleep(10 * Microsecond)
			r.Release(1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(acquired) != 4 {
		t.Fatalf("acquired %d times", len(acquired))
	}
	// Two immediately, two after the first pair releases at t=10us.
	if acquired[0] != 0 || acquired[1] != 0 {
		t.Fatalf("first two should acquire at t=0: %v", acquired)
	}
	if acquired[2] != Time(10*Microsecond) || acquired[3] != Time(10*Microsecond) {
		t.Fatalf("last two should acquire at t=10us: %v", acquired)
	}
	if r.Free() != r.Capacity() {
		t.Fatalf("resource not fully released: free=%d cap=%d", r.Free(), r.Capacity())
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	// A big request queued ahead of small ones must be served first even
	// though the small ones could proceed; FIFO fairness is part of the
	// determinism contract.
	s := New()
	r := NewResource("r", 4)
	var order []string
	s.Go("hog", func(p *Proc) {
		r.Acquire(p, 4)
		p.Sleep(10 * Microsecond)
		r.Release(4)
	})
	s.GoAfter("big", Microsecond, func(p *Proc) {
		r.Acquire(p, 3)
		order = append(order, "big")
		r.Release(3)
	})
	s.GoAfter("small", 2*Microsecond, func(p *Proc) {
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestResourcePropertyConservation(t *testing.T) {
	// Property: after any pattern of acquire/hold/release, free == capacity.
	f := func(holds []uint8) bool {
		s := New()
		r := NewResource("r", 3)
		for i, h := range holds {
			h := Duration(h)
			s.Go(fmt.Sprintf("u%d", i), func(p *Proc) {
				n := int64(1 + (h % 3))
				r.Acquire(p, n)
				p.Sleep(h * Microsecond)
				r.Release(n)
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return r.Free() == r.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	s := New()
	m := NewMutex("m")
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		s.Go(fmt.Sprintf("u%d", i), func(p *Proc) {
			for j := 0; j < 5; j++ {
				m.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(Microsecond)
				inside--
				m.Unlock()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: max inside = %d", maxInside)
	}
}

func TestBytesAt(t *testing.T) {
	cases := []struct {
		n    int
		rate float64
		want Duration
	}{
		{0, 1e9, 0},
		{1000, 1e9, Microsecond},
		{1 << 20, 0, 0},  // zero rate disables the cost
		{1 << 20, -5, 0}, // negative rate disables the cost
		{1e9, 1e9, Second},
	}
	for _, c := range cases {
		if got := BytesAt(c.n, c.rate); got != c.want {
			t.Errorf("BytesAt(%d, %g) = %v, want %v", c.n, c.rate, got, c.want)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * Nanosecond)
	if tm.Microseconds() != 1.5 {
		t.Errorf("Microseconds = %v", tm.Microseconds())
	}
	if d := tm.Sub(Time(500)); d != 1000 {
		t.Errorf("Sub = %v", d)
	}
	if Duration(2*Second).Seconds() != 2.0 {
		t.Errorf("Seconds failed")
	}
	if Microseconds(2.5) != 2500*Nanosecond {
		t.Errorf("Microseconds ctor = %v", Microseconds(2.5))
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Go("p", func(p *Proc) { p.Sleep(10 * Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.schedule(Time(5*Microsecond), func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	ran := false
	s.Go("p", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		s.After(-5*Microsecond, func() { ran = true })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}
