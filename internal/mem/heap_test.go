package mem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBumpsInOrder(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Errorf("first alloc at %d, want 0", a)
	}
	if b != 104 { // 100 rounded to 8-byte alignment
		t.Errorf("second alloc at %d, want 104", b)
	}
}

func TestAllocAlignment(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	for _, size := range []int{1, 3, 7, 8, 9, 15, 17, 100, 1000} {
		off, err := h.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		if off%8 != 0 {
			t.Errorf("alloc(%d) at %d: not 8-byte aligned", size, off)
		}
	}
}

func TestAllocRejectsBadSize(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	if _, err := h.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-5); err == nil {
		t.Error("Alloc(-5) succeeded")
	}
}

func TestGrowOnDemandAndExhaustion(t *testing.T) {
	h := NewHeap(4096, 3*4096)
	if h.Chunks() != 0 {
		t.Fatal("heap should start with no chunks")
	}
	offs := make([]int64, 0, 3)
	for i := 0; i < 3; i++ {
		off, err := h.Alloc(4096)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		offs = append(offs, off)
	}
	if h.Chunks() != 3 {
		t.Fatalf("chunks = %d, want 3", h.Chunks())
	}
	if _, err := h.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	// Freeing one makes room again.
	if err := h.Free(offs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(4096); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestAllocationSpansChunks(t *testing.T) {
	// A single allocation larger than one chunk must still work: the
	// virtual space is contiguous even though storage is scattered.
	h := NewHeap(4096, 1<<20)
	off, err := h.Alloc(3*4096 + 17)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*4096+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	h.Write(off, data)
	got := make([]byte, len(data))
	h.Read(off, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk write/read mismatch")
	}
	// The physical backing really is scattered.
	segs := 0
	h.Segments(off, len(data), func(seg []byte) { segs++ })
	if segs < 4 {
		t.Fatalf("expected >=4 physical segments, got %d", segs)
	}
}

func TestFreeCoalesces(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	a, _ := h.Alloc(1000)
	b, _ := h.Alloc(1000)
	c, _ := h.Alloc(1000)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(c); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	// Everything free again: a max-size alloc within one chunk must
	// land back at offset 0.
	off, err := h.Alloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Fatalf("post-coalesce alloc at %d, want 0", off)
	}
}

func TestFreeErrors(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	off, _ := h.Alloc(64)
	if err := h.Free(off + 8); !errors.Is(err, ErrBadFree) {
		t.Errorf("interior free: got %v", err)
	}
	if err := h.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(off); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: got %v", err)
	}
}

func TestBlockOf(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	off, _ := h.Alloc(100)
	base, size, ok := h.BlockOf(off + 50)
	if !ok || base != off || size != 104 {
		t.Fatalf("BlockOf = (%d, %d, %v), want (%d, 104, true)", base, size, ok, off)
	}
	if _, _, ok := h.BlockOf(off + 104); ok {
		t.Error("BlockOf found a block past the allocation")
	}
	h.Free(off)
	if _, _, ok := h.BlockOf(off); ok {
		t.Error("BlockOf found a freed block")
	}
}

func TestReadWriteRoundTripRandomOffsets(t *testing.T) {
	h := NewHeap(4096, 1<<22)
	off, err := h.Alloc(300_000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	shadow := make([]byte, 300_000)
	for i := 0; i < 200; i++ {
		start := rng.Intn(len(shadow) - 1)
		n := 1 + rng.Intn(len(shadow)-start)
		patch := make([]byte, n)
		rng.Read(patch)
		copy(shadow[start:], patch)
		h.Write(off+int64(start), patch)
	}
	got := make([]byte, len(shadow))
	h.Read(off, got)
	if !bytes.Equal(got, shadow) {
		t.Fatal("random patch round trip diverged from shadow copy")
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	h := NewHeap(4096, 1<<20)
	h.Alloc(100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range read did not panic")
		}
	}()
	h.Read(h.Size(), make([]byte, 1))
}

// TestPropertyAllocationsNeverOverlap drives random alloc/free sequences
// and checks the core allocator invariants: no two live allocations
// overlap, accounting matches, and every byte written is read back.
func TestPropertyAllocationsNeverOverlap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		h := NewHeap(4096, 1<<22)
		rng := rand.New(rand.NewSource(seed))
		type allocation struct {
			off  int64
			size int
			tag  byte
		}
		var live []allocation
		for _, op := range ops {
			if len(live) > 0 && op%3 == 0 {
				// Free a random live allocation.
				i := rng.Intn(len(live))
				if err := h.Free(live[i].off); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := int(op%5000) + 1
			off, err := h.Alloc(size)
			if errors.Is(err, ErrOutOfMemory) {
				continue
			}
			if err != nil {
				return false
			}
			tag := byte(rng.Intn(256))
			fill := bytes.Repeat([]byte{tag}, size)
			h.Write(off, fill)
			live = append(live, allocation{off, size, tag})
		}
		// Invariant: live accounting matches.
		if h.Live() != len(live) {
			return false
		}
		// Invariant: no overlaps.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.off < b.off+int64(b.size) && b.off < a.off+int64(a.size) {
					return false
				}
			}
		}
		// Invariant: contents intact (no allocation scribbled on another).
		for _, a := range live {
			buf := make([]byte, a.size)
			h.Read(a.off, buf)
			for _, by := range buf {
				if by != a.tag {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFullFreeRestoresEmptyHeap checks that freeing everything, in
// any order, always coalesces back to completely reusable space.
func TestPropertyFullFreeRestoresEmptyHeap(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		h := NewHeap(4096, 1<<22)
		rng := rand.New(rand.NewSource(seed))
		var offs []int64
		for _, s := range sizes {
			off, err := h.Alloc(int(s%3000) + 1)
			if errors.Is(err, ErrOutOfMemory) {
				continue
			}
			if err != nil {
				return false
			}
			offs = append(offs, off)
		}
		rng.Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
		for _, off := range offs {
			if err := h.Free(off); err != nil {
				return false
			}
		}
		if h.Live() != 0 || h.LiveBytes() != 0 {
			return false
		}
		// The whole grown extent must now be one allocatable run.
		if h.Size() > 0 {
			off, err := h.Alloc(int(h.Size()))
			if err != nil || off != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOffsetsAcrossHeaps(t *testing.T) {
	// The SPMD symmetry guarantee: two heaps fed the same alloc/free
	// sequence hand out identical offsets.
	a := NewHeap(8192, 1<<22)
	b := NewHeap(8192, 1<<22)
	seq := []int{100, 5000, 64, 9000, 1, 333}
	var aOffs, bOffs []int64
	for _, s := range seq {
		x, err := a.Alloc(s)
		if err != nil {
			t.Fatal(err)
		}
		y, err := b.Alloc(s)
		if err != nil {
			t.Fatal(err)
		}
		aOffs = append(aOffs, x)
		bOffs = append(bOffs, y)
	}
	a.Free(aOffs[2])
	b.Free(bOffs[2])
	x, _ := a.Alloc(64)
	y, _ := b.Alloc(64)
	if x != y {
		t.Fatalf("post-free allocs diverge: %d vs %d", x, y)
	}
	for i := range aOffs {
		if aOffs[i] != bOffs[i] {
			t.Fatalf("offset %d diverges: %d vs %d", i, aOffs[i], bOffs[i])
		}
	}
}
