package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocAlignedBasic(t *testing.T) {
	h := NewHeap(1<<16, 1<<22)
	// Disturb natural alignment first.
	if _, err := h.Alloc(24); err != nil {
		t.Fatal(err)
	}
	for _, align := range []int{8, 64, 256, 4096} {
		off, err := h.AllocAligned(100, align)
		if err != nil {
			t.Fatalf("align %d: %v", align, err)
		}
		if off%int64(align) != 0 {
			t.Fatalf("align %d: offset %d not aligned", align, off)
		}
	}
}

func TestAllocAlignedRejectsBadAlignment(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	for _, align := range []int{0, -8, 3, 24, 100} {
		if _, err := h.AllocAligned(64, align); err == nil {
			t.Errorf("alignment %d accepted", align)
		}
	}
}

func TestAllocAlignedSmallAlignmentRoundsUp(t *testing.T) {
	h := NewHeap(1<<16, 1<<20)
	off, err := h.AllocAligned(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if off%8 != 0 {
		t.Fatalf("sub-minimum alignment produced offset %d", off)
	}
}

func TestAllocAlignedExhaustion(t *testing.T) {
	h := NewHeap(4096, 2*4096)
	if _, err := h.AllocAligned(2*4096+1, 64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestPropertyAlignedAllocationsSound(t *testing.T) {
	// Property: mixed aligned/unaligned allocations never overlap, all
	// results are properly aligned, and freeing everything coalesces
	// back to a fully usable heap.
	f := func(ops []uint16, seed int64) bool {
		h := NewHeap(4096, 1<<22)
		rng := rand.New(rand.NewSource(seed))
		type allocation struct {
			off  int64
			size int
		}
		var live []allocation
		aligns := []int{8, 16, 64, 512, 4096}
		for _, op := range ops {
			if len(live) > 0 && op%4 == 0 {
				i := rng.Intn(len(live))
				if h.Free(live[i].off) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := int(op%3000) + 1
			align := aligns[int(op)%len(aligns)]
			off, err := h.AllocAligned(size, align)
			if errors.Is(err, ErrOutOfMemory) {
				continue
			}
			if err != nil || off%int64(align) != 0 {
				return false
			}
			live = append(live, allocation{off, size})
		}
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.off < b.off+int64(b.size) && b.off < a.off+int64(a.size) {
					return false
				}
			}
		}
		for _, a := range live {
			if h.Free(a.off) != nil {
				return false
			}
		}
		if h.Live() != 0 || h.LiveBytes() != 0 {
			return false
		}
		if h.Size() > 0 {
			off, err := h.Alloc(int(h.Size()))
			if err != nil || off != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReallocShrinkGrowMove(t *testing.T) {
	h := NewHeap(4096, 1<<20)
	a, _ := h.Alloc(1000)
	fill := make([]byte, 1000)
	for i := range fill {
		fill[i] = byte(i)
	}
	h.Write(a, fill)

	// Shrink in place.
	b, err := h.Realloc(a, 400)
	if err != nil || b != a {
		t.Fatalf("shrink: off=%d err=%v", b, err)
	}
	buf := make([]byte, 400)
	h.Read(b, buf)
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatal("shrink lost data")
		}
	}

	// Grow in place into the freed tail.
	c, err := h.Realloc(b, 900)
	if err != nil || c != b {
		t.Fatalf("grow-in-place: off=%d err=%v", c, err)
	}
	h.Read(c, buf)
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatal("grow lost prefix")
		}
	}

	// Block the tail and force a move.
	blocker, _ := h.Alloc(64)
	_ = blocker
	d, err := h.Realloc(c, 10_000)
	if err != nil {
		t.Fatalf("move: %v", err)
	}
	if d == c {
		t.Fatal("expected a moved reallocation")
	}
	h.Read(d, buf)
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatal("move lost prefix")
		}
	}
	// Old block must be gone.
	if _, _, ok := h.BlockOf(c); ok {
		t.Fatal("old block still live after move")
	}
}

func TestReallocErrors(t *testing.T) {
	h := NewHeap(4096, 2*4096)
	a, _ := h.Alloc(64)
	if _, err := h.Realloc(a+8, 100); err == nil {
		t.Error("interior realloc accepted")
	}
	if _, err := h.Realloc(a, 0); err == nil {
		t.Error("zero-size realloc accepted")
	}
	if _, err := h.Realloc(a, 1<<30); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized realloc: %v", err)
	}
	// Failure must not destroy the original.
	if _, _, ok := h.BlockOf(a); !ok {
		t.Fatal("failed realloc freed the original")
	}
}

func TestPropertyReallocPreservesPrefix(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		h := NewHeap(4096, 1<<22)
		rng := rand.New(rand.NewSource(seed))
		off, err := h.Alloc(512)
		if err != nil {
			return false
		}
		shadow := make([]byte, 512)
		rng.Read(shadow)
		h.Write(off, shadow)
		cur := 512
		for _, s := range sizes {
			next := int(s%6000) + 1
			newOff, err := h.Realloc(off, next)
			if errors.Is(err, ErrOutOfMemory) {
				continue
			}
			if err != nil {
				return false
			}
			off = newOff
			keep := cur
			if next < keep {
				keep = next
			}
			buf := make([]byte, keep)
			h.Read(off, buf)
			for i := 0; i < keep; i++ {
				if buf[i] != shadow[i] {
					return false
				}
			}
			// Refresh the shadow to the new size.
			ns := make([]byte, next)
			copy(ns, shadow[:keep])
			rng.Read(ns[keep:])
			h.Write(off, ns)
			shadow = ns
			cur = next
		}
		return h.Live() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHeapAllocFree(b *testing.B) {
	h := NewHeap(1<<20, 1<<28)
	offs := make([]int64, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := h.Alloc(1000)
		if err != nil {
			b.Fatal(err)
		}
		offs = append(offs, off)
		if len(offs) == 64 {
			for _, o := range offs {
				if err := h.Free(o); err != nil {
					b.Fatal(err)
				}
			}
			offs = offs[:0]
		}
	}
}

func BenchmarkHeapReadWrite(b *testing.B) {
	h := NewHeap(1<<20, 1<<24)
	off, _ := h.Alloc(64 << 10)
	buf := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Write(off, buf)
		h.Read(off, buf)
	}
}
