package mem

import (
	"fmt"
	"sync/atomic"
)

// Copy-on-write heap snapshots. A snapshot freezes the heap's allocator
// state and takes ownership of every chunk overlapping the written
// extent; the heap itself and any number of forked heaps then share
// those frozen pages, and the mutating access paths (Write, Segments)
// privatize a shared chunk — one chunk-sized copy — the first time it
// is written. Capturing a snapshot therefore costs O(chunks) flag
// updates, not O(bytes), and a forked sweep point pays copy cost only
// for the pages its divergent future actually touches.
//
// Invariant: a frozen page is immutable forever. Writers privatize
// before touching it, and Reset detaches shared chunks (swapping in a
// zero page from the spare pool) instead of clearing them, so a
// snapshot's contents survive any number of fork/reset cycles of the
// heaps referencing it.

// cowCopies counts chunk privatizations (copy-on-write page copies)
// across every heap in the process, for the fork-stats report.
var cowCopies atomic.Uint64

// CowCopies reports how many chunk-sized copy-on-write copies heaps have
// performed process-wide since start.
func CowCopies() uint64 { return cowCopies.Load() }

// HeapSnapshot is a frozen image of a heap: the allocator's block list
// and counters plus read-only pages for every chunk that overlapped the
// written extent at capture time. It is immutable and safe to fork from
// concurrently (forks of one snapshot only ever read it).
type HeapSnapshot struct {
	chunkSize int64
	size      int64    // virtual extent at capture
	frozen    [][]byte // chunks overlapping [0, written), shared read-only
	blocks    []block
	live      int
	liveBytes int64
	written   int64
}

// Written reports the snapshot's written high-water mark, for tests.
func (s *HeapSnapshot) Written() int64 { return s.written }

// Snapshot captures the heap's current state. The heap's own chunks in
// the written extent become shared pages (privatized again on the next
// write), so the capture itself copies no data; snapshotting a heap that
// is already sharing pages with an older snapshot re-shares those same
// pages.
func (h *Heap) Snapshot() *HeapSnapshot {
	s := &HeapSnapshot{
		chunkSize: h.chunkSize,
		size:      h.Size(),
		blocks:    append([]block(nil), h.blocks...),
		live:      h.live,
		liveBytes: h.liveBytes,
		written:   h.written,
	}
	n := int((h.written + h.chunkSize - 1) / h.chunkSize)
	if n == 0 {
		return s
	}
	if h.shared == nil {
		h.shared = make([]bool, len(h.chunks))
	}
	s.frozen = make([][]byte, n)
	for ci := 0; ci < n; ci++ {
		s.frozen[ci] = h.chunks[ci]
		h.shared[ci] = true
	}
	return s
}

// Fork points a freshly Reset heap at the snapshot's state: allocator
// metadata is restored and the snapshot's frozen pages are aliased
// rather than copied. The heap's displaced (all-zero) chunks park in the
// spare pool, ready to back later privatizations without allocating.
// The heap must have the snapshot's geometry and be in its power-on
// state — forking over live allocations would leak them.
func (h *Heap) Fork(s *HeapSnapshot) {
	if h.chunkSize != s.chunkSize {
		panic(fmt.Sprintf("mem: fork of a chunk-size-%d heap from a chunk-size-%d snapshot", h.chunkSize, s.chunkSize))
	}
	if s.size > h.maxSize {
		panic(fmt.Sprintf("mem: fork of a max-%d heap from a %d-byte snapshot", h.maxSize, s.size))
	}
	if h.written != 0 || h.live != 0 {
		panic("mem: fork of a heap that is not freshly Reset")
	}
	// Grow the heap to at least the snapshot's extent, then alias the
	// frozen pages, displacing the heap's own zero chunks into the spare
	// pool for later privatizations.
	for h.Size() < s.size {
		h.chunks = append(h.chunks, h.takeSpare())
		if h.shared != nil {
			h.shared = append(h.shared, false)
		}
	}
	if h.shared == nil {
		h.shared = make([]bool, len(h.chunks))
	}
	for ci := range s.frozen {
		if h.shared[ci] {
			panic("mem: fork found a shared chunk on a reset heap")
		}
		h.spare = append(h.spare, h.chunks[ci])
		h.chunks[ci] = s.frozen[ci]
		h.shared[ci] = true
	}
	h.blocks = append(h.blocks[:0], s.blocks...)
	// A pre-grown heap larger than the snapshot keeps its tail as free
	// space, exactly as a demand-grown continuation would produce it.
	if extra := h.Size() - s.size; extra > 0 {
		if n := len(h.blocks); n > 0 && h.blocks[n-1].free {
			h.blocks[n-1].size += extra
		} else {
			h.blocks = append(h.blocks, block{off: s.size, size: extra, free: true})
		}
	}
	h.live = s.live
	h.liveBytes = s.liveBytes
	h.written = s.written
}

// ensurePrivate privatizes every shared chunk overlapping [off, off+n)
// ahead of a write. Heaps that never met a snapshot skip it on a nil
// check.
func (h *Heap) ensurePrivate(off int64, n int) {
	if h.shared == nil || n <= 0 {
		return
	}
	last := (off + int64(n) - 1) / h.chunkSize
	for ci := off / h.chunkSize; ci <= last; ci++ {
		if int(ci) < len(h.shared) && h.shared[ci] {
			h.privatize(int(ci))
		}
	}
}

// privatize replaces the shared chunk ci with a private copy — the
// copy-on-write fault path. Only the chunk's slice of [0, written) is
// copied: a frozen page is zero beyond the written watermark it was
// captured under (writers privatize before raising it), and spare pages
// are all-zero already, so the tail needs no copy.
func (h *Heap) privatize(ci int) {
	priv := h.takeSpare()
	n := h.written - int64(ci)*h.chunkSize
	if n > h.chunkSize {
		n = h.chunkSize
	}
	if n > 0 {
		copy(priv[:n], h.chunks[ci][:n])
	}
	h.chunks[ci] = priv
	h.shared[ci] = false
	cowCopies.Add(1)
}

// takeSpare pops a zero chunk from the spare pool or allocates one.
// Every chunk entering the pool is all-zero (displaced from a freshly
// Reset heap at fork time), so callers needing zero pages (Reset's
// detach) and callers overwriting the whole chunk (privatize) both use
// it directly.
func (h *Heap) takeSpare() []byte {
	if last := len(h.spare) - 1; last >= 0 {
		c := h.spare[last]
		h.spare[last] = nil
		h.spare = h.spare[:last]
		return c
	}
	return make([]byte, h.chunkSize)
}
