package mem

import "testing"

const (
	testChunk = 4096
	testMax   = 64 * testChunk
)

// fillPattern writes a deterministic byte pattern over [off, off+n).
func fillPattern(h *Heap, off int64, n int, salt byte) {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i)*3 + salt
	}
	h.Write(off, buf)
}

// checkPattern verifies the pattern written by fillPattern.
func checkPattern(t *testing.T, h *Heap, off int64, n int, salt byte) {
	t.Helper()
	buf := make([]byte, n)
	h.Read(off, buf)
	for i := range buf {
		if want := byte(i)*3 + salt; buf[i] != want {
			t.Fatalf("byte %d at offset %d: got %#x want %#x (salt %#x)", i, off, buf[i], want, salt)
		}
	}
}

func TestSnapshotForkSharesPagesAndPrivatizesOnWrite(t *testing.T) {
	parent := NewHeap(testChunk, testMax)
	off, err := parent.Alloc(3 * testChunk) // spans multiple chunks
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(parent, off, 3*testChunk, 0x11)
	snap := parent.Snapshot()
	if snap.Written() != parent.written {
		t.Fatalf("snapshot written %d, heap written %d", snap.Written(), parent.written)
	}

	childA := NewHeap(testChunk, testMax)
	childA.Fork(snap)
	childB := NewHeap(testChunk, testMax)
	childB.Fork(snap)
	checkPattern(t, childA, off, 3*testChunk, 0x11)
	checkPattern(t, childB, off, 3*testChunk, 0x11)
	if childA.Live() != parent.Live() || childA.LiveBytes() != parent.LiveBytes() {
		t.Fatalf("fork allocator state live=%d/%d bytes=%d/%d", childA.Live(), parent.Live(), childA.LiveBytes(), parent.LiveBytes())
	}

	// Child A diverges: its write privatizes only the touched chunk and
	// must not be visible to the parent or child B.
	before := CowCopies()
	fillPattern(childA, off, testChunk/2, 0x77)
	if got := CowCopies() - before; got != 1 {
		t.Fatalf("half-chunk write privatized %d chunks, want 1", got)
	}
	checkPattern(t, childA, off, testChunk/2, 0x77)
	checkPattern(t, parent, off, 3*testChunk, 0x11)
	checkPattern(t, childB, off, 3*testChunk, 0x11)
}

func TestParentWritesAfterSnapshotDoNotLeakIntoForks(t *testing.T) {
	parent := NewHeap(testChunk, testMax)
	off, err := parent.Alloc(testChunk)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(parent, off, testChunk, 0x21)
	snap := parent.Snapshot()
	// The parent keeps running after the capture; its writes fault the
	// shared page into a private copy.
	fillPattern(parent, off, testChunk, 0x42)

	child := NewHeap(testChunk, testMax)
	child.Fork(snap)
	checkPattern(t, child, off, testChunk, 0x21)
	checkPattern(t, parent, off, testChunk, 0x42)
}

func TestForkResetForkRecyclesSpares(t *testing.T) {
	parent := NewHeap(testChunk, testMax)
	off, err := parent.Alloc(2 * testChunk)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(parent, off, 2*testChunk, 0x09)
	snap := parent.Snapshot()

	child := NewHeap(testChunk, testMax)
	for cycle := 0; cycle < 3; cycle++ {
		child.Fork(snap)
		checkPattern(t, child, off, 2*testChunk, 0x09)
		fillPattern(child, off, testChunk, byte(cycle))
		child.Reset()
		// After detaching, the child must read all-zero and the snapshot
		// must be intact for the next cycle.
		buf := make([]byte, 2*testChunk)
		child.Read(0, buf)
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("cycle %d: byte %d nonzero (%#x) after Reset", cycle, i, b)
			}
		}
	}
	// The spare pool cycles chunks; the child never grows past the
	// snapshot extent plus its own original chunks.
	if child.Chunks() != 2 {
		t.Fatalf("child holds %d chunks after 3 fork cycles, want 2", child.Chunks())
	}
	checkPattern(t, parent, off, 2*testChunk, 0x09)
}

func TestSnapshotOfForkedHeap(t *testing.T) {
	parent := NewHeap(testChunk, testMax)
	off, err := parent.Alloc(testChunk)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(parent, off, testChunk, 0x05)
	snap := parent.Snapshot()

	child := NewHeap(testChunk, testMax)
	child.Fork(snap)
	off2, err := child.Alloc(testChunk)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(child, off2, testChunk, 0x50)
	snap2 := child.Snapshot()

	grand := NewHeap(testChunk, testMax)
	grand.Fork(snap2)
	checkPattern(t, grand, off, testChunk, 0x05)
	checkPattern(t, grand, off2, testChunk, 0x50)
}

func TestForkAsserts(t *testing.T) {
	parent := NewHeap(testChunk, testMax)
	if _, err := parent.Alloc(64); err != nil {
		t.Fatal(err)
	}
	fillPattern(parent, 0, 64, 0x01)
	snap := parent.Snapshot()

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("geometry mismatch", func() {
		h := NewHeap(testChunk/2, testMax)
		h.Fork(snap)
	})
	mustPanic("fork over live allocations", func() {
		h := NewHeap(testChunk, testMax)
		if _, err := h.Alloc(8); err != nil {
			t.Fatal(err)
		}
		h.Fork(snap)
	})
}

func TestForkIntoPreGrownHeap(t *testing.T) {
	// A pooled heap that grew larger in a previous life keeps its tail as
	// free space after Fork, matching what a demand-grown continuation
	// would produce for the next allocation.
	big := NewHeap(testChunk, testMax)
	if _, err := big.Alloc(4 * testChunk); err != nil {
		t.Fatal(err)
	}
	fillPattern(big, 0, 4*testChunk, 0x13)
	big.Reset()

	parent := NewHeap(testChunk, testMax)
	off, err := parent.Alloc(testChunk)
	if err != nil {
		t.Fatal(err)
	}
	fillPattern(parent, off, testChunk, 0x13)
	snap := parent.Snapshot()

	big.Fork(snap)
	checkPattern(t, big, off, testChunk, 0x13)
	off2, err := big.Alloc(testChunk)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewHeap(testChunk, testMax)
	fresh.Fork(snap)
	off2Fresh, err := fresh.Alloc(testChunk)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off2Fresh {
		t.Fatalf("pre-grown fork allocates at %d, fresh fork at %d", off2, off2Fresh)
	}
}
