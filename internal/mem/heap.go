// Package mem implements host memory for the simulated cluster, chiefly
// the paper's symmetric heap design (§III-B.2): a virtually contiguous
// address space assembled from scattered, fixed-size physical chunks that
// are allocated on demand and concatenated at the virtual level.
//
// Real OpenSHMEM implementations guarantee that a symmetric object lives
// at the same offset in every PE's symmetric heap. As in the paper, that
// property falls out of SPMD execution: every PE performs the same
// allocation sequence, and the allocator here is deterministic.
package mem

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when an allocation cannot fit even after
// growing the heap to its configured maximum.
var ErrOutOfMemory = errors.New("mem: symmetric heap exhausted")

// ErrBadFree is returned when Free is handed an address that is not the
// base of a live allocation.
var ErrBadFree = errors.New("mem: free of unallocated address")

// allocAlign is the alignment of every Alloc result. Eight bytes covers
// every type the typed put/get layer moves.
const allocAlign = 8

// block is a run of the virtual address space, either free or live.
type block struct {
	off  int64
	size int64
	free bool
}

// Heap is a symmetric heap: offsets handed out by Alloc are virtual
// addresses within a contiguous space whose backing storage is a list of
// scattered chunkSize slabs, grown on demand up to maxSize.
//
// Heap is not safe for concurrent use; in this repository all access is
// serialised by the simulation kernel.
type Heap struct {
	chunkSize int64 // reset: keep — construction geometry
	maxSize   int64 // reset: keep; snap: keep — construction geometry
	chunks    [][]byte
	blocks    []block // sorted by offset, covering [0, len(chunks)*chunkSize)
	live      int     // number of live allocations
	liveBytes int64

	// written is the high-water mark of bytes that may have been modified
	// since construction or the last Reset. Every mutating access path
	// (Write, and the writable aliases handed out by Segments) raises it,
	// so Reset can restore the fresh-heap all-zero guarantee by clearing
	// only [0, written) instead of the whole grown extent.
	written int64

	// shared flags chunks that alias a HeapSnapshot's frozen pages (one
	// flag per chunk; nil until the heap first meets a snapshot). Shared
	// chunks are immutable: writers privatize them first (see
	// snapshot.go), and Reset detaches them instead of clearing.
	shared []bool
	// spare pools all-zero chunks displaced by Fork, recycled by
	// privatize and Reset's detach path. snap: keep — scratch pool.
	spare [][]byte // reset: keep — refilled/drained by fork cycles
}

// NewHeap returns an empty heap that grows in chunkSize steps up to
// maxSize total.
func NewHeap(chunkSize, maxSize int) *Heap {
	if chunkSize <= 0 || maxSize < chunkSize {
		panic(fmt.Sprintf("mem: bad heap geometry chunk=%d max=%d", chunkSize, maxSize))
	}
	return &Heap{chunkSize: int64(chunkSize), maxSize: int64(maxSize)}
}

// Size returns the current virtual extent of the heap in bytes.
func (h *Heap) Size() int64 { return int64(len(h.chunks)) * h.chunkSize }

// Live returns the number of live allocations.
func (h *Heap) Live() int { return h.live }

// LiveBytes returns the total bytes currently allocated.
func (h *Heap) LiveBytes() int64 { return h.liveBytes }

// Chunks returns how many physical chunks back the heap — the paper's
// "scattered but virtually continuative" regions.
func (h *Heap) Chunks() int { return len(h.chunks) }

// grow appends one physical chunk and extends (or creates) the trailing
// free block. It fails if the heap is at its maximum.
func (h *Heap) grow() error {
	if h.Size()+h.chunkSize > h.maxSize {
		return ErrOutOfMemory
	}
	start := h.Size()
	h.chunks = append(h.chunks, make([]byte, h.chunkSize))
	if h.shared != nil {
		h.shared = append(h.shared, false)
	}
	if n := len(h.blocks); n > 0 && h.blocks[n-1].free {
		h.blocks[n-1].size += h.chunkSize
		return nil
	}
	h.blocks = append(h.blocks, block{off: start, size: h.chunkSize, free: true})
	return nil
}

// Alloc reserves size bytes and returns the virtual offset of the
// allocation. The result is always allocAlign-aligned. A zero or negative
// size is an error.
func (h *Heap) Alloc(size int) (int64, error) {
	return h.AllocAligned(size, allocAlign)
}

// AllocAligned reserves size bytes at an offset that is a multiple of
// align (shmem_align). align must be a power of two; alignments below
// the heap's base alignment are rounded up to it.
func (h *Heap) AllocAligned(size, align int) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("mem: invalid allocation size %d", size)
	}
	if align <= 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("mem: alignment %d is not a power of two", align)
	}
	if align < allocAlign {
		align = allocAlign
	}
	a := int64(align)
	need := (int64(size) + allocAlign - 1) &^ (allocAlign - 1)
	for {
		// First fit over the free list, as the paper allocates
		// "in order from the start address of the symmetric heap".
		for i := range h.blocks {
			b := &h.blocks[i]
			if !b.free {
				continue
			}
			// Leading pad to reach alignment within this block.
			pad := (a - b.off%a) % a
			if b.size < pad+need {
				continue
			}
			if pad > 0 {
				// Split the pad off as a free block and retry on the
				// aligned remainder (now at index i+1).
				rest := block{off: b.off + pad, size: b.size - pad, free: true}
				b.size = pad
				h.blocks = append(h.blocks, block{})
				copy(h.blocks[i+2:], h.blocks[i+1:])
				h.blocks[i+1] = rest
			}
			blk := &h.blocks[i]
			if pad > 0 {
				blk = &h.blocks[i+1]
			}
			if blk.size > need {
				rest := block{off: blk.off + need, size: blk.size - need, free: true}
				blk.size = need
				idx := i
				if pad > 0 {
					idx = i + 1
				}
				h.blocks = append(h.blocks, block{})
				copy(h.blocks[idx+2:], h.blocks[idx+1:])
				h.blocks[idx+1] = rest
				blk = &h.blocks[idx]
			}
			blk.free = false
			h.live++
			h.liveBytes += need
			return blk.off, nil
		}
		if err := h.grow(); err != nil {
			return 0, err
		}
	}
}

// Realloc resizes the allocation at off to newSize, preserving the
// prefix contents, and returns the (possibly moved) base offset. It
// mirrors shmem_realloc: grow-in-place when the next block is free and
// large enough, otherwise allocate-copy-free.
func (h *Heap) Realloc(off int64, newSize int) (int64, error) {
	if newSize <= 0 {
		return 0, fmt.Errorf("mem: invalid reallocation size %d", newSize)
	}
	base, size, ok := h.BlockOf(off)
	if !ok || base != off {
		return 0, fmt.Errorf("%w: realloc of offset %d", ErrBadFree, off)
	}
	need := (int64(newSize) + allocAlign - 1) &^ (allocAlign - 1)
	if need <= size {
		// Shrink (or same): split the tail off as a free block.
		for i := range h.blocks {
			b := &h.blocks[i]
			if b.off != off {
				continue
			}
			if rest := b.size - need; rest > 0 {
				b.size = need
				h.liveBytes -= rest
				tail := block{off: b.off + need, size: rest, free: true}
				h.blocks = append(h.blocks, block{})
				copy(h.blocks[i+2:], h.blocks[i+1:])
				h.blocks[i+1] = tail
				// Coalesce the tail with a following free block.
				if i+2 < len(h.blocks) && h.blocks[i+2].free {
					h.blocks[i+1].size += h.blocks[i+2].size
					h.blocks = append(h.blocks[:i+2], h.blocks[i+3:]...)
				}
			}
			return off, nil
		}
	}
	// Grow in place when the next block is free and large enough.
	for i := range h.blocks {
		b := &h.blocks[i]
		if b.off != off {
			continue
		}
		if i+1 < len(h.blocks) && h.blocks[i+1].free && b.size+h.blocks[i+1].size >= need {
			extra := need - b.size
			h.blocks[i+1].off += extra
			h.blocks[i+1].size -= extra
			b.size = need
			h.liveBytes += extra
			if h.blocks[i+1].size == 0 {
				h.blocks = append(h.blocks[:i+1], h.blocks[i+2:]...)
			}
			return off, nil
		}
		break
	}
	// Move: allocate, copy the prefix, free the original.
	newOff, err := h.Alloc(newSize)
	if err != nil {
		return 0, err
	}
	keep := size
	if int64(newSize) < keep {
		keep = int64(newSize)
	}
	buf := make([]byte, keep)
	h.Read(off, buf)
	h.Write(newOff, buf)
	if err := h.Free(off); err != nil {
		return 0, err
	}
	return newOff, nil
}

// Free releases the allocation whose base offset is off, coalescing with
// free neighbours.
func (h *Heap) Free(off int64) error {
	for i := range h.blocks {
		b := &h.blocks[i]
		if b.off != off || b.free {
			continue
		}
		b.free = true
		h.live--
		h.liveBytes -= b.size
		// Coalesce with the next block, then the previous.
		if i+1 < len(h.blocks) && h.blocks[i+1].free {
			b.size += h.blocks[i+1].size
			h.blocks = append(h.blocks[:i+1], h.blocks[i+2:]...)
		}
		if i > 0 && h.blocks[i-1].free {
			h.blocks[i-1].size += h.blocks[i].size
			h.blocks = append(h.blocks[:i], h.blocks[i+1:]...)
		}
		return nil
	}
	return fmt.Errorf("%w: offset %d", ErrBadFree, off)
}

// checkRange panics when [off, off+n) lies outside the grown heap; callers
// of Read/Write/Segments must stay within allocations they own, and an
// out-of-range access is a library bug, not user input.
func (h *Heap) checkRange(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > h.Size() {
		panic(fmt.Sprintf("mem: access [%d, %d) outside heap of size %d", off, off+int64(n), h.Size()))
	}
}

// Segments invokes fn over the physical byte runs backing the virtual
// range [off, off+n), in address order. It is the zero-copy access path:
// the slices alias heap storage, so the range is conservatively recorded
// as written (use Read for a non-marking copy).
func (h *Heap) Segments(off int64, n int, fn func(seg []byte)) {
	h.ensurePrivate(off, n)
	h.markWritten(off, n)
	h.segments(off, n, fn)
}

func (h *Heap) markWritten(off int64, n int) {
	if end := off + int64(n); end > h.written {
		h.written = end
	}
}

func (h *Heap) segments(off int64, n int, fn func(seg []byte)) {
	h.checkRange(off, n)
	for n > 0 {
		ci := off / h.chunkSize
		co := off % h.chunkSize
		run := h.chunkSize - co
		if int64(n) < run {
			run = int64(n)
		}
		fn(h.chunks[ci][co : co+run])
		off += run
		n -= int(run)
	}
}

// Write copies data into the heap at virtual offset off.
func (h *Heap) Write(off int64, data []byte) {
	h.ensurePrivate(off, len(data))
	h.markWritten(off, len(data))
	h.segments(off, len(data), func(seg []byte) {
		copy(seg, data[:len(seg)])
		data = data[len(seg):]
	})
}

// Read copies len(buf) bytes from virtual offset off into buf.
func (h *Heap) Read(off int64, buf []byte) {
	h.segments(off, len(buf), func(seg []byte) {
		copy(buf[:len(seg)], seg)
		buf = buf[len(seg):]
	})
}

// Reset drops every allocation and rezeroes the written extent, returning
// the heap to a state indistinguishable from freshly constructed while
// keeping the physical chunks. Because grow costs nothing in virtual time
// and first-fit over a single leading free block assigns the same offsets
// a demand-grown fresh heap would, an allocation sequence replayed after
// Reset yields byte-identical placement — the property pooled simulation
// worlds rely on.
func (h *Heap) Reset() {
	remaining := h.written
	for ci := 0; remaining > 0; ci++ {
		chunk := h.chunks[ci]
		n := int64(len(chunk))
		if remaining < n {
			n = remaining
		}
		if h.shared != nil && h.shared[ci] {
			// The chunk belongs to a snapshot: detach it (swap in a zero
			// page) rather than clearing the frozen contents out from
			// under the snapshot's other forks.
			h.chunks[ci] = h.takeSpare()
			h.shared[ci] = false
		} else {
			clear(chunk[:n])
		}
		remaining -= n
	}
	h.written = 0
	h.live = 0
	h.liveBytes = 0
	h.blocks = h.blocks[:0]
	if size := h.Size(); size > 0 {
		h.blocks = append(h.blocks, block{off: 0, size: size, free: true})
	}
}

// BlockOf returns the base offset and size of the live allocation
// containing off, for bounds validation by the runtime.
func (h *Heap) BlockOf(off int64) (base, size int64, ok bool) {
	for i := range h.blocks {
		b := &h.blocks[i]
		if !b.free && off >= b.off && off < b.off+b.size {
			return b.off, b.size, true
		}
	}
	return 0, 0, false
}
