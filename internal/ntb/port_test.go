package ntb

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// pair builds two connected ports on separate hosts.
func pair(t testing.TB) (*sim.Simulator, *Port, *Port, *model.Params) {
	t.Helper()
	par := model.Default()
	s := sim.New()
	net := pcie.NewNetwork(s)
	rcA := pcie.NewServer("rcA", par.RootComplexBW)
	rcB := pcie.NewServer("rcB", par.RootComplexBW)
	a := NewPort("A", s, net, par, rcA)
	b := NewPort("B", s, net, par, rcB)
	Connect(a, b)
	return s, a, b, par
}

func TestConnectWiring(t *testing.T) {
	_, a, b, _ := pair(t)
	if a.Peer() != b || b.Peer() != a {
		t.Fatal("peers not wired")
	}
	if !a.Connected() || !b.Connected() {
		t.Fatal("Connected() false after Connect")
	}
}

func TestConnectTwicePanics(t *testing.T) {
	s := sim.New()
	par := model.Default()
	net := pcie.NewNetwork(s)
	rc := pcie.NewServer("rc", par.RootComplexBW)
	a := NewPort("a", s, net, par, rc)
	b := NewPort("b", s, net, par, rc)
	c := NewPort("c", s, net, par, rc)
	Connect(a, b)
	defer func() {
		if recover() == nil {
			t.Fatal("double connect did not panic")
		}
	}()
	Connect(a, c)
}

func TestSpadPeerVisibility(t *testing.T) {
	s, a, b, par := pair(t)
	s.Go("writer", func(p *sim.Proc) {
		a.PeerSpadWrite(p, 3, 0xDEADBEEF)
		if got := b.SpadRead(p, 3); got != 0xDEADBEEF {
			t.Errorf("peer spad = %#x", got)
		}
		// Reading it back across the link costs a round trip.
		before := p.Now()
		if got := a.PeerSpadRead(p, 3); got != 0xDEADBEEF {
			t.Errorf("peer spad readback = %#x", got)
		}
		if p.Now().Sub(before) < par.MMIORead {
			t.Error("peer read did not pay the round-trip cost")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoorbellInterruptDelivery(t *testing.T) {
	s, a, b, par := pair(t)
	var fired []uint16
	var firedAt sim.Time
	b.SetISR(func(bits uint16) {
		fired = append(fired, bits)
		firedAt = s.Now()
	})
	s.Go("ringer", func(p *sim.Proc) {
		a.PeerDBSet(p, 0b0100)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 0b0100 {
		t.Fatalf("ISR fired = %v, want [4]", fired)
	}
	want := sim.Time(0).Add(par.MMIOWrite + par.InterruptLatency)
	if firedAt != want {
		t.Fatalf("ISR at %v, want %v", firedAt, want)
	}
}

func TestDoorbellLatchesAndClears(t *testing.T) {
	s, a, b, _ := pair(t)
	s.Go("t", func(p *sim.Proc) {
		a.PeerDBSet(p, 0b0011)
		p.Sleep(sim.Microseconds(10))
		if got := b.DBRead(p); got != 0b0011 {
			t.Errorf("db = %#b, want 0b11", got)
		}
		b.DBClear(p, 0b0001)
		if got := b.DBRead(p); got != 0b0010 {
			t.Errorf("db after clear = %#b, want 0b10", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoorbellMasking(t *testing.T) {
	s, a, b, _ := pair(t)
	var fired []uint16
	b.SetISR(func(bits uint16) { fired = append(fired, bits) })
	s.Go("t", func(p *sim.Proc) {
		b.DBSetMask(p, 0b0001)
		a.PeerDBSet(p, 0b0001) // masked: latches, no ISR
		p.Sleep(sim.Microseconds(10))
		if len(fired) != 0 {
			t.Errorf("masked doorbell fired ISR: %v", fired)
		}
		if got := b.DBRead(p); got != 0b0001 {
			t.Errorf("masked bit did not latch: %#b", got)
		}
		// Unmasking a latched pending bit fires immediately.
		b.DBClearMask(p, 0b0001)
		if len(fired) != 1 || fired[0] != 0b0001 {
			t.Errorf("pending bit on unmask: fired=%v", fired)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUWriteLandsInPeerWindow(t *testing.T) {
	s, a, b, _ := pair(t)
	payload := []byte("through the looking glass")
	s.Go("w", func(p *sim.Proc) {
		a.CPUWrite(p, RegionData, 100, payload)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Inbound(RegionData)[100 : 100+len(payload)]; !bytes.Equal(got, payload) {
		t.Fatalf("window contents = %q", got)
	}
}

func TestCPUReadPullsFromPeerWindow(t *testing.T) {
	s, a, b, par := pair(t)
	copy(b.Inbound(RegionBypass)[8:], "hidden")
	var elapsed sim.Duration
	s.Go("r", func(p *sim.Proc) {
		buf := make([]byte, 6)
		start := p.Now()
		a.CPURead(p, RegionBypass, 8, buf)
		elapsed = p.Now().Sub(start)
		if string(buf) != "hidden" {
			t.Errorf("read %q", buf)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Uncached reads are far slower than writes for the same size.
	s2, a2, _, _ := pair(t)
	var writeElapsed sim.Duration
	s2.Go("w", func(p *sim.Proc) {
		start := p.Now()
		a2.CPUWrite(p, RegionBypass, 8, make([]byte, 6))
		writeElapsed = p.Now().Sub(start)
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	_ = par
	if elapsed <= writeElapsed {
		t.Fatalf("read (%v) should be slower than write (%v)", elapsed, writeElapsed)
	}
}

func TestDMATransferMovesDataAndCosts(t *testing.T) {
	s, a, b, par := pair(t)
	const n = 256 << 10
	src := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(src)
	var elapsed sim.Duration
	s.Go("dma", func(p *sim.Proc) {
		start := p.Now()
		done := a.DMA().Submit(p, Desc{Region: RegionData, Off: 0, Src: src, Bytes: n})
		done.Wait(p)
		elapsed = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Inbound(RegionData)[:n], src) {
		t.Fatal("DMA data mismatch")
	}
	// Expected: setup + n/engineBW (engine is the bottleneck).
	want := par.DMASetup + sim.BytesAt(n, par.DMAEngineBW)
	tol := sim.Microseconds(3)
	if d := elapsed - want; d > tol || d < -tol {
		t.Fatalf("DMA 256KiB took %v, want ~%v", elapsed, want)
	}
}

func TestDMAFromHeapSource(t *testing.T) {
	s, a, b, _ := pair(t)
	h := mem.NewHeap(4096, 1<<20)
	off, err := h.Alloc(10000)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	h.Write(off, data)
	s.Go("dma", func(p *sim.Proc) {
		a.DMA().Submit(p, Desc{Region: RegionBypass, Off: 64, SrcHeap: h, SrcOff: off, Bytes: 10000}).Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Inbound(RegionBypass)[64:64+10000], data) {
		t.Fatal("heap-sourced DMA mismatch")
	}
}

func TestDMADescriptorsProcessInOrder(t *testing.T) {
	s, a, b, _ := pair(t)
	var order []byte
	s.Go("dma", func(p *sim.Proc) {
		var last *sim.Completion
		for i := byte(0); i < 5; i++ {
			src := []byte{i}
			last = a.DMA().Submit(p, Desc{Region: RegionData, Off: 0, Src: src, Bytes: 1})
			// Capture window value at each completion via a watcher.
			done := last
			i := i
			s.Go("watch", func(wp *sim.Proc) {
				done.Wait(wp)
				order = append(order, b.Inbound(RegionData)[0], i)
			})
		}
		last.Wait(p)
		if a.DMA().Pending() != 0 {
			t.Errorf("pending = %d after final completion", a.DMA().Pending())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 5; i++ {
		if order[2*i] != i || order[2*i+1] != i {
			t.Fatalf("completion order wrong: %v", order)
		}
	}
}

func TestDMAIsFasterThanCPUWriteForBulk(t *testing.T) {
	// The Fig 9 premise: for large transfers DMA beats programmed I/O.
	const n = 512 << 10
	src := make([]byte, n)

	time1 := func(f func(p *sim.Proc, a *Port)) sim.Duration {
		s, a, _, _ := pair(t)
		var d sim.Duration
		s.Go("x", func(p *sim.Proc) {
			start := p.Now()
			f(p, a)
			d = p.Now().Sub(start)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	dma := time1(func(p *sim.Proc, a *Port) {
		a.DMA().Submit(p, Desc{Region: RegionData, Src: src, Bytes: n}).Wait(p)
	})
	cpu := time1(func(p *sim.Proc, a *Port) {
		a.CPUWrite(p, RegionData, 0, src)
	})
	if dma >= cpu {
		t.Fatalf("DMA (%v) not faster than CPU write (%v) at 512KiB", dma, cpu)
	}
}

func TestWindowBoundsChecked(t *testing.T) {
	s, a, _, par := pair(t)
	s.Go("x", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversized window write did not panic")
			}
		}()
		a.CPUWrite(p, RegionData, par.WindowSize-10, make([]byte, 20))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySpadRoundTrip(t *testing.T) {
	// Property: any value written to any valid peer spad reads back
	// identically from both sides.
	f := func(vals []uint32) bool {
		s, a, b, par := pair(t)
		ok := true
		s.Go("w", func(p *sim.Proc) {
			for i, v := range vals {
				idx := i % par.SpadCount
				a.PeerSpadWrite(p, idx, v)
				if b.SpadRead(p, idx) != v || a.PeerSpadRead(p, idx) != v {
					ok = false
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDoorbellSetClearAlgebra(t *testing.T) {
	// Property: after an arbitrary sequence of peer sets and local
	// clears, the status register equals the fold of the same ops on a
	// plain uint16.
	f := func(ops []uint16) bool {
		s, a, b, _ := pair(t)
		var shadow uint16
		match := true
		s.Go("t", func(p *sim.Proc) {
			for i, op := range ops {
				bits := op & 0xFFFF
				if i%2 == 0 {
					a.PeerDBSet(p, bits)
					shadow |= bits
					p.Sleep(sim.Microseconds(5)) // let the interrupt land
				} else {
					b.DBClear(p, bits)
					shadow &^= bits
				}
			}
			if b.DBRead(p) != shadow {
				match = false
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
