// Package ntb models a PCIe Non-Transparent Bridge endpoint after the PLX
// PEX 8733/8749 parts the paper's adapters are built on.
//
// Each Port exposes the register surface the paper's library programs:
//
//   - eight 32-bit ScratchPad registers, readable and writable by both
//     link partners (peer access crosses the link at MMIO cost);
//   - a 16-bit Doorbell register with a mask, where a peer-side set
//     delivers an interrupt to the local host;
//   - two inbound memory windows (the shmem data window and the bypass
//     window), which the peer reaches through its outgoing BAR; and
//   - a DMA engine that moves bulk data through the link.
//
// Bulk transfers are priced by the pcie fluid-flow network (engine rate,
// wire, both root complexes); register accesses are priced with fixed
// MMIO latencies from the model profile.
package ntb

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// TraceEvent is one observable device action, delivered to an attached
// trace hook. Dur is zero for instantaneous events (register accesses,
// doorbell rings) and the occupancy time for transfers.
type TraceEvent struct {
	T     sim.Time
	Dur   sim.Duration
	Cat   string // "dma", "pio", "doorbell", "spad"
	Name  string // e.g. "xfer", "ring", "deliver", "peer-write"
	Port  string
	Bytes int
}

// TraceFunc receives device trace events; see Port.SetTrace.
type TraceFunc func(TraceEvent)

// Region selects one of a port's inbound memory windows.
type Region int

const (
	// RegionData is the shmem transfer window: puts to a neighbour land
	// here before the service thread copies them into the symmetric heap.
	RegionData Region = iota
	// RegionBypass is the store-and-forward window used when the local
	// host is not the final destination (paper §III-B.1, third step).
	RegionBypass
	numRegions
)

func (r Region) String() string {
	switch r {
	case RegionData:
		return "data"
	case RegionBypass:
		return "bypass"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// Port is one NTB endpoint. A switchless-ring host installs two of these
// (left and right adapters). All methods taking a *sim.Proc block that
// process for the modelled duration of the operation.
type Port struct {
	name string         // reset: keep; snap: keep — identity
	par  *model.Params  // reset: keep; snap: keep — construction identity
	sim  *sim.Simulator // reset: keep; snap: keep — construction identity
	net  *pcie.Network  // reset: keep; snap: keep — construction identity

	peer     *Port        // reset: keep; snap: keep — cabling survives recycling
	wire     *pcie.Server // reset: keep; snap: keep — interned flow-network server
	localRC  *pcie.Server // reset: keep; snap: keep — interned flow-network server
	route    *pcie.Route  // reset: keep; snap: keep — interned path to the peer, built at Connect
	linkDown *bool        // reset: keep; snap: keep — shared cable state; snapshots require healthy links

	engineBW float64 // reset: keep; snap: keep — this adapter's DMA engine rate (chipset-dependent)

	spads  []uint32
	db     uint16
	dbMask uint16
	isr    func(bits uint16) // reset: keep; snap: keep — registered handler survives, like a driver's ISR

	inbound [numRegions][]byte
	// winDirty brackets the bytes of each inbound window that writes may
	// have touched since construction or the last Reset. Every mutation
	// path (CPUWrite stores, the DMA engine's copy-in) records its extent;
	// in-place protocol edits such as a pipelined receiver clearing a
	// slot's valid byte land inside an extent some transfer already
	// dirtied. Reset rezeroes only these brackets, so a world that never
	// touched a window pays nothing to recycle it.
	winDirty [numRegions]extent

	// Requester-ID lookup table (the paper's "LUT entry mapping for NTB
	// device identification"): when enforced, inbound window
	// transactions are accepted only from registered requester IDs.
	reqID       uint16          // reset: keep; snap: keep — assigned identity, reused at re-boot
	lut         map[uint16]bool // reset: keep; snap: keep — boot reprograms the same entries (see Reset doc)
	lutEnforced bool            // reset: keep; snap: keep — see Reset doc: an enforced LUT admits what boot admits

	// Cross-shard cabling (PROTOCOL.md §14): when the peer lives on a
	// different shard's simulator, peer state is never touched directly —
	// every effect crosses via sim.Post at >= the group lookahead. The
	// sender-side mirror of the peer's LUT lets admission checks stay
	// local; it is maintained by posts from the peer's LUTAdd and, like
	// lut itself, is reprogrammed identically by every boot.
	remote          bool            // reset: keep; snap: keep — cabling identity
	lag             sim.Duration    // reset: keep; snap: keep — group lookahead, cached at ConnectRemote
	peerLUT         map[uint16]bool // reset: keep; snap: keep — same rationale as lut
	peerLUTEnforced bool            // reset: keep; snap: keep — same rationale as lutEnforced

	dma   *Engine
	trace TraceFunc // reset: keep; snap: keep — installed trace hook survives recycling
}

// NewPort creates an unconnected port. localRC is the owning host's root
// complex server in the flow network.
func NewPort(name string, s *sim.Simulator, net *pcie.Network, par *model.Params, localRC *pcie.Server) *Port {
	p := &Port{
		name:     name,
		par:      par,
		sim:      s,
		net:      net,
		localRC:  localRC,
		engineBW: par.DMAEngineBW,
		spads:    make([]uint32, par.SpadCount),
	}
	// Inbound windows are allocated on first touch (see window): a fresh
	// slice is zeroed either way, and most worlds never address most
	// regions, so eager allocation would spend the bulk of world
	// construction zeroing megabytes nobody reads.
	p.dma = newEngine(p)
	return p
}

// Connect joins two ports with a cable whose wire capacity comes from the
// model profile. Both ports must be unconnected and share one flow
// network. Each direction's flow-network route (local root complex, the
// cable, the peer's root complex) is interned here, once, so per-transfer
// pricing never rebuilds the server list.
func Connect(a, b *Port) {
	checkCable(a, b)
	wire := pcie.NewServer("wire:"+a.name+"<->"+b.name, a.par.EffectiveWireBW())
	cable(a, b, wire)
	a.wire, b.wire = wire, wire
}

// ConnectVia joins two ports whose traffic crosses the given chain of
// shared flow-network servers instead of a dedicated cable — how a PCIe
// switch presents: each direction's route runs local root complex, the
// via chain (in path order), then the peer's root complex. The servers
// may be shared with other port pairs, which is the point: contention at
// a common switch core prices itself in the flow network.
func ConnectVia(a, b *Port, via ...*pcie.Server) {
	checkCable(a, b)
	cable(a, b, via...)
}

// ConnectRemote joins two ports whose hosts live on different shards of
// a sharded world (sim.ShardGroup): the ports run on different
// simulators and price traffic on different shard-local flow networks.
// All peer effects cross via sim.Post, so the group lookahead must not
// exceed the cheapest cross-cable operation: MMIOWrite for posted
// writes, and half of MMIORead so a non-posted read fits a there-and-back
// pair of posts. Each direction is priced entirely inside the sender's
// network: the sender's real root complex, a dedicated wire at the
// cable rate, and a shadow of the receiver's root complex at its full
// rate. That shadow cannot see the receiver's unrelated flows, so
// pricing is exact whenever the remote root complex is not the
// bottleneck — true for all register traffic and for CPU-mode window
// writes — and conservative-optimistic for concurrent cross-boundary
// DMA (documented in PROTOCOL.md §14).
func ConnectRemote(a, b *Port) {
	if a.peer != nil || b.peer != nil {
		panic("ntb: port already connected")
	}
	if a.par != b.par {
		panic("ntb: ports built from different profiles")
	}
	if a.sim == b.sim || a.net == b.net {
		panic("ntb: ConnectRemote joins ports on different shards; use Connect inside one shard")
	}
	g := a.sim.Group()
	if g == nil || b.sim.Group() != g {
		panic("ntb: remote ports must belong to one sim.ShardGroup")
	}
	lag := g.Lookahead()
	if lag > a.par.MMIOWrite || 2*lag > a.par.MMIORead {
		panic(fmt.Sprintf("ntb: shard lookahead %v exceeds the cross-cable bound min(MMIOWrite=%v, MMIORead/2=%v)",
			lag, a.par.MMIOWrite, a.par.MMIORead/2))
	}
	a.remote, b.remote = true, true
	a.lag, b.lag = lag, lag
	a.peer, b.peer = b, a
	a.route = remoteRoute(a, b)
	b.route = remoteRoute(b, a)
	// Per-side flags: a cross-shard cable cannot be unplugged (failure
	// injection requires an unsharded world), so these stay false.
	a.linkDown, b.linkDown = new(bool), new(bool)
}

// remoteRoute interns the sender-side route for one direction of a
// cross-shard cable, entirely within src's flow network.
func remoteRoute(src, dst *Port) *pcie.Route {
	wire := pcie.NewServer("wire:"+src.name+"->"+dst.name, src.par.EffectiveWireBW())
	shadow := pcie.NewServer("shadow-rc:"+dst.name, src.par.RootComplexBW)
	return src.net.NewRoute(src.localRC, wire, shadow)
}

// Remote reports whether the port's peer lives on another shard.
func (p *Port) Remote() bool { return p.remote }

// checkCable validates that two ports can be joined.
func checkCable(a, b *Port) {
	if a.peer != nil || b.peer != nil {
		panic("ntb: port already connected")
	}
	if a.par != b.par {
		panic("ntb: ports built from different profiles")
	}
	if a.net != b.net {
		panic("ntb: ports priced on different flow networks")
	}
}

// cable peers two checked ports and interns both directions' routes
// through the via chain.
func cable(a, b *Port, via ...*pcie.Server) {
	a.peer, b.peer = b, a
	fwd := make([]*pcie.Server, 0, len(via)+2)
	fwd = append(fwd, a.localRC)
	fwd = append(fwd, via...)
	fwd = append(fwd, b.localRC)
	a.route = a.net.NewRoute(fwd...)
	rev := make([]*pcie.Server, 0, len(via)+2)
	rev = append(rev, b.localRC)
	for i := len(via) - 1; i >= 0; i-- {
		rev = append(rev, via[i])
	}
	rev = append(rev, a.localRC)
	b.route = b.net.NewRoute(rev...)
	down := new(bool)
	a.linkDown, b.linkDown = down, down
}

// Unplug fails the cable between this port and its peer, for failure
// injection. After Unplug, posted writes (scratchpads, doorbells, window
// stores) are silently dropped, non-posted reads return the PCIe
// master-abort value (all ones) after a timeout, and in-flight or new
// DMA descriptors never complete — exactly how a yanked PCIe cable
// manifests to software.
func (p *Port) Unplug() {
	if p.linkDown == nil {
		panic("ntb: unplug of an unconnected port")
	}
	if p.remote {
		panic("ntb: failure injection on a cross-shard cable requires an unsharded world (-shards 1)")
	}
	*p.linkDown = true
}

// LinkUp reports whether the cable is intact.
func (p *Port) LinkUp() bool { return p.linkDown != nil && !*p.linkDown }

// abortTimeout is how long a non-posted read to a dead link stalls
// before the root complex synthesises the master-abort completion.
const abortTimeout = 50 * sim.Microsecond

// Name returns the port's diagnostic label.
func (p *Port) Name() string { return p.name }

// Par returns the platform profile the port was built with.
func (p *Port) Par() *model.Params { return p.par }

// Peer returns the link partner, or nil before Connect.
func (p *Port) Peer() *Port { return p.peer }

// Connected reports whether the port has a link partner.
func (p *Port) Connected() bool { return p.peer != nil }

// DMA returns the port's DMA engine.
func (p *Port) DMA() *Engine { return p.dma }

// SetRequesterID assigns the PCIe requester ID this port's outbound
// transactions carry (the fabric derives it from host and side).
func (p *Port) SetRequesterID(id uint16) { p.reqID = id }

// RequesterID returns the port's requester ID.
func (p *Port) RequesterID() uint16 { return p.reqID }

// LUTAdd registers a peer requester ID in the port's lookup table and
// enables enforcement: from then on, inbound window transactions from
// unregistered requesters are rejected, as on the PEX parts. It is a
// local register write.
func (p *Port) LUTAdd(pr *sim.Proc, reqID uint16) {
	pr.Sleep(p.par.LocalMMIO)
	if p.lut == nil {
		p.lut = make(map[uint16]bool)
	}
	p.lut[reqID] = true
	p.lutEnforced = true
	if p.remote {
		// Refresh the sender-side mirror on the far end of the cable.
		// The mirror lands one lookahead out — before any admission
		// check can race it: the peer only transmits after this host
		// publishes its Id (a PeerSpadWrite issued after LUTAdd, in
		// flight for MMIOWrite >= the lookahead).
		peer := p.peer
		p.sim.Post(peer.sim, p.lag, func() {
			if peer.peerLUT == nil {
				peer.peerLUT = make(map[uint16]bool)
			}
			peer.peerLUT[reqID] = true
			peer.peerLUTEnforced = true
		})
	}
}

// LUTContains reports whether a requester ID is registered.
func (p *Port) LUTContains(reqID uint16) bool { return p.lut[reqID] }

// admit panics when an enforced LUT rejects the peer's requester ID —
// in simulation a rejected transaction is a protocol-ordering bug (the
// boot exchange programs LUTs before any data flows), so it fails loudly
// rather than silently dropping as the hardware would.
func (p *Port) admit(from *Port) {
	if p.lutEnforced && !p.lut[from.reqID] {
		panic(fmt.Sprintf("ntb: %s rejected transaction from requester %#x (%s): not in LUT",
			p.name, from.reqID, from.name))
	}
}

// admitRemote is the cross-shard admit: the sender checks its local
// mirror of the peer's LUT instead of reaching into the peer.
func (p *Port) admitRemote() {
	if p.peerLUTEnforced && !p.peerLUT[p.reqID] {
		panic(fmt.Sprintf("ntb: %s rejected transaction from requester %#x (%s): not in LUT mirror",
			p.peer.name, p.reqID, p.name))
	}
}

// SetTrace attaches a trace hook; nil detaches. The hook runs inline on
// the simulation's virtual timeline and must not block.
func (p *Port) SetTrace(fn TraceFunc) { p.trace = fn }

func (p *Port) emit(cat, name string, dur sim.Duration, bytes int) {
	if p.trace != nil {
		p.trace(TraceEvent{T: p.sim.Now(), Dur: dur, Cat: cat, Name: name, Port: p.name, Bytes: bytes})
	}
}

// SetEngineBW overrides the adapter's DMA engine rate, which the fabric
// uses to model the paper's mixed PEX 8733/8749 chipsets. Must be set
// before any transfer.
func (p *Port) SetEngineBW(bw float64) {
	if bw <= 0 {
		panic("ntb: non-positive engine bandwidth")
	}
	p.engineBW = bw
}

// EngineBW returns the adapter's DMA engine rate.
func (p *Port) EngineBW() float64 { return p.engineBW }

// Inbound returns the backing store of an inbound window. The slice
// aliases device memory; the service thread copies out of it.
func (p *Port) Inbound(r Region) []byte { return p.window(r) }

// window returns region r's backing store, materialising it on first
// touch. Lazily allocated windows read as zeros exactly like eagerly
// allocated ones, so virtual-time behaviour is unchanged.
func (p *Port) window(r Region) []byte {
	if p.inbound[r] == nil {
		p.inbound[r] = make([]byte, p.par.WindowSize)
	}
	return p.inbound[r]
}

// extent is a half-open dirty range [lo, hi) within a window; lo == hi
// means untouched.
type extent struct{ lo, hi int }

// markDirty widens region r's dirty extent to cover [off, off+n).
//
//ntblint:allocfree
func (p *Port) markDirty(r Region, off, n int) {
	if n <= 0 {
		return
	}
	d := &p.winDirty[r]
	if d.lo == d.hi {
		d.lo, d.hi = off, off+n
		return
	}
	if off < d.lo {
		d.lo = off
	}
	if end := off + n; end > d.hi {
		d.hi = end
	}
}

// Reset returns the port's register surface and windows to power-on
// state — scratchpads, doorbell status, and doorbell mask cleared, dirty
// window extents rezeroed — without releasing any storage. The LUT is
// retained: boot reprograms it with the same entries, and no window
// transaction precedes boot, so an already-enforced LUT admits exactly
// what a not-yet-enforced one would. The ISR registration and DMA engine
// (with its parked daemon) survive as well.
func (p *Port) Reset() {
	clear(p.spads)
	p.db, p.dbMask = 0, 0
	for r := range p.inbound {
		d := &p.winDirty[r]
		if d.hi > d.lo {
			clear(p.inbound[r][d.lo:d.hi])
		}
		*d = extent{}
	}
	p.dma.reset()
}

func (p *Port) mustPeer() *Port {
	if p.peer == nil {
		panic("ntb: " + p.name + " is not connected")
	}
	return p.peer
}

// ---- ScratchPad registers ----

// SpadWrite writes a local scratchpad register.
func (p *Port) SpadWrite(pr *sim.Proc, idx int, val uint32) {
	pr.Sleep(p.par.LocalMMIO)
	p.spads[idx] = val
}

// SpadRead reads a local scratchpad register.
func (p *Port) SpadRead(pr *sim.Proc, idx int) uint32 {
	pr.Sleep(p.par.LocalMMIO)
	return p.spads[idx]
}

// PeerSpadWrite writes the peer's scratchpad register idx across the link
// (a posted write; silently dropped if the cable is down).
func (p *Port) PeerSpadWrite(pr *sim.Proc, idx int, val uint32) {
	if p.remote {
		// Launch the posted write now so it lands at exactly
		// t+MMIOWrite — the same instant the monolithic path stores it.
		peer := p.mustPeer()
		p.sim.Post(peer.sim, p.par.MMIOWrite, func() { peer.spads[idx] = val })
		pr.Sleep(p.par.MMIOWrite)
		p.emit("spad", "peer-write", 0, 4)
		return
	}
	pr.Sleep(p.par.MMIOWrite)
	p.emit("spad", "peer-write", 0, 4)
	if *p.mustPeerLink() {
		return
	}
	p.peer.spads[idx] = val
}

// PeerSpadRead reads the peer's scratchpad register idx across the link
// (a non-posted read that waits for the completion TLP). On a dead link
// it stalls for the abort timeout and returns all ones.
func (p *Port) PeerSpadRead(pr *sim.Proc, idx int) uint32 {
	if p.remote {
		return p.peerSpadReadRemote(pr, idx)
	}
	if *p.mustPeerLink() {
		pr.Sleep(abortTimeout)
		return ^uint32(0)
	}
	pr.Sleep(p.par.MMIORead)
	p.emit("spad", "peer-read", 0, 4)
	return p.peer.spads[idx]
}

// peerSpadReadRemote models the non-posted read as a request post that
// samples the peer register at t+MMIORead-L and a completion post that
// wakes the caller at exactly t+MMIORead. The caller's blocking time is
// exact; the sampled value may be up to one lookahead staler than the
// monolithic read would see, a window far below the polling periods the
// boot and heartbeat protocols read spads at.
func (p *Port) peerSpadReadRemote(pr *sim.Proc, idx int) uint32 {
	peer := p.mustPeer()
	var val uint32
	done := sim.NewCompletion("spad-read:" + p.name)
	lag := p.lag
	p.sim.Post(peer.sim, p.par.MMIORead-lag, func() {
		v := peer.spads[idx]
		peer.sim.Post(p.sim, lag, func() {
			val = v
			done.Complete()
		})
	})
	done.Wait(pr)
	p.emit("spad", "peer-read", 0, 4)
	return val
}

// mustPeerLink returns the shared link-down flag, panicking when the
// port was never cabled.
func (p *Port) mustPeerLink() *bool {
	p.mustPeer()
	return p.linkDown
}

// ---- Doorbell registers ----

// SetISR registers the host's interrupt handler. The handler runs in
// scheduler context after the modelled interrupt latency; it must not
// block (real handlers queue work for the service thread, and so do ours).
func (p *Port) SetISR(fn func(bits uint16)) { p.isr = fn }

// PeerDBSet rings doorbell bits on the peer port: a posted MMIO write,
// then interrupt delivery on the far host after the interrupt latency.
// Dropped silently on a dead link.
//
//ntblint:allocfree
func (p *Port) PeerDBSet(pr *sim.Proc, bits uint16) {
	if p.remote {
		p.peerDBSetRemote(pr, bits)
		return
	}
	pr.Sleep(p.par.MMIOWrite)
	if *p.mustPeerLink() {
		return
	}
	p.emit("doorbell", "ring", 0, 0)
	// The peer port is its own delivery timer (sim.Ticker): doorbells
	// ring once per protocol chunk, and carrying the bits in the event
	// argument keeps that path closure- and allocation-free.
	p.sim.AfterTick(p.par.InterruptLatency, p.peer, uint64(bits))
}

// peerDBSetRemote posts the ring across the shard boundary: it reaches
// the peer at t+MMIOWrite (exactly when the monolithic path arms the
// delivery timer there) and the interrupt fires InterruptLatency later,
// on the peer's own timeline. The cross-shard ring allocates its post
// closure — doorbells off the local shard are inherently not the
// allocation-free hot path.
func (p *Port) peerDBSetRemote(pr *sim.Proc, bits uint16) {
	peer := p.mustPeer()
	arg := uint64(bits)
	p.sim.Post(peer.sim, p.par.MMIOWrite, func() {
		peer.sim.AfterTick(p.par.InterruptLatency, peer, arg)
	})
	pr.Sleep(p.par.MMIOWrite)
	p.emit("doorbell", "ring", 0, 0)
}

// Tick implements sim.Ticker: scheduled interrupt delivery, arg carrying
// the doorbell bits rung InterruptLatency ago. Not for direct use.
//
//ntblint:allocfree
func (p *Port) Tick(arg uint64) { p.raise(uint16(arg)) }

// raise latches bits into the doorbell register and, for unmasked bits,
// invokes the ISR.
//
//ntblint:allocfree
func (p *Port) raise(bits uint16) {
	p.emit("doorbell", "deliver", 0, 0)
	p.db |= bits
	if deliver := bits &^ p.dbMask; deliver != 0 && p.isr != nil {
		p.isr(deliver)
	}
}

// ClearInISR clears doorbell bits from interrupt context (the handler has
// already paid the ISR cost; a separate MMIO charge would double-count).
func (p *Port) ClearInISR(bits uint16) { p.db &^= bits }

// DBRead returns the doorbell status register.
func (p *Port) DBRead(pr *sim.Proc) uint16 {
	pr.Sleep(p.par.LocalMMIO)
	return p.db
}

// DBClear clears the given doorbell bits.
func (p *Port) DBClear(pr *sim.Proc, bits uint16) {
	pr.Sleep(p.par.LocalMMIO)
	p.db &^= bits
}

// DBSetMask masks the given doorbell bits: masked bits still latch into
// the status register but do not raise interrupts.
func (p *Port) DBSetMask(pr *sim.Proc, bits uint16) {
	pr.Sleep(p.par.LocalMMIO)
	p.dbMask |= bits
}

// DBClearMask unmasks bits; any already-latched newly-unmasked bits fire
// the ISR immediately, as on the PEX parts.
func (p *Port) DBClearMask(pr *sim.Proc, bits uint16) {
	pr.Sleep(p.par.LocalMMIO)
	p.dbMask &^= bits
	if pending := p.db &^ p.dbMask & bits; pending != 0 && p.isr != nil {
		p.isr(pending)
	}
}

// ---- Memory windows ----

// Route returns the interned flow-network route a transfer to the peer
// crosses, built at Connect time.
func (p *Port) Route() *pcie.Route {
	p.mustPeer()
	return p.route
}

// checkWindow validates a window write destination.
func (p *Port) checkWindow(r Region, off, n int) {
	if r < 0 || r >= numRegions {
		panic(fmt.Sprintf("ntb: bad region %d", r))
	}
	if off < 0 || n < 0 || off+n > p.par.WindowSize {
		panic(fmt.Sprintf("ntb: window access [%d,%d) exceeds window size %d", off, off+n, p.par.WindowSize))
	}
}

// CPUWrite moves data into the peer's inbound window with programmed I/O:
// the calling process performs write-combining stores through its
// outgoing BAR. It blocks for the full transfer.
func (p *Port) CPUWrite(pr *sim.Proc, r Region, off int, data []byte) {
	p.checkWindow(r, off, len(data))
	peer := p.mustPeer()
	if p.remote {
		p.admitRemote()
		start := pr.Now()
		p.net.TransferRoute(pr, int64(len(data)), p.par.WindowWriteBW, p.route)
		p.emit("pio", "window-write", pr.Now().Sub(start), len(data))
		p.postWindowCopy(peer, r, off, len(data), data, nil, 0)
		return
	}
	peer.admit(p)
	start := pr.Now()
	p.net.TransferRoute(pr, int64(len(data)), p.par.WindowWriteBW, p.route)
	p.emit("pio", "window-write", pr.Now().Sub(start), len(data))
	if *p.linkDown {
		return // posted stores to a dead link vanish
	}
	peer.markDirty(r, off, len(data))
	copy(peer.window(r)[off:], data)
}

// postWindowCopy lands a completed transfer's bytes in the remote peer's
// inbound window one lookahead after local completion. The payload is
// staged into a private copy first: the sender reuses its buffer the
// moment the transfer completes, while the posted closure runs later on
// the peer's timeline. Delivery at t+L instead of t is observationally
// exact — a receiver never reads window bytes before the doorbell
// interrupt that announces them, which trails local completion by
// MMIOWrite+InterruptLatency > L.
func (p *Port) postWindowCopy(peer *Port, r Region, off, n int, src []byte, heap *mem.Heap, heapOff int64) {
	buf := make([]byte, n)
	if heap != nil {
		heap.Read(heapOff, buf)
	} else {
		copy(buf, src[:n])
	}
	p.sim.Post(peer.sim, p.lag, func() {
		peer.markDirty(r, off, n)
		copy(peer.window(r)[off:], buf)
	})
}

// CPURead pulls data from the peer's inbound window with uncached loads
// across the link. The paper's library never bulk-reads through the
// window — this method exists to let tests demonstrate why (WindowReadBW
// is catastrophically low).
func (p *Port) CPURead(pr *sim.Proc, r Region, off int, buf []byte) {
	p.checkWindow(r, off, len(buf))
	peer := p.mustPeer()
	if p.remote {
		// The runtime never bulk-reads through the window (see above);
		// nothing needs this across shards, so fail loudly rather than
		// model a flow whose completion depends on remote state.
		panic("ntb: CPURead across a shard boundary is not supported; run with -shards 1")
	}
	peer.admit(p)
	if *p.linkDown {
		pr.Sleep(abortTimeout)
		for i := range buf {
			buf[i] = 0xFF // master-abort data
		}
		return
	}
	start := pr.Now()
	p.net.TransferRoute(pr, int64(len(buf)), p.par.WindowReadBW, p.route)
	p.emit("pio", "window-read", pr.Now().Sub(start), len(buf))
	copy(buf, peer.window(r)[off:off+len(buf)])
}

// ---- DMA engine ----

// Desc is one DMA descriptor: move Bytes bytes from the host-resident
// source (either Src or, when SrcHeap is non-nil, heap range [SrcOff,
// SrcOff+Bytes)) into the peer's inbound window r at Off.
type Desc struct {
	Region  Region
	Off     int
	Src     []byte
	SrcHeap *mem.Heap
	SrcOff  int64
	Bytes   int
}

// Engine is a per-adapter DMA engine. Descriptors are processed strictly
// in submission order; each costs the setup time plus the flow-network
// transfer time.
type Engine struct {
	port  *Port
	queue *sim.Queue[*engineJob]
	busy  int
	// jpool recycles job records whose lifetime is confined to one
	// SubmitWait call, keeping the per-chunk descriptor path
	// allocation-free.
	jpool []*engineJob // reset: keep — warm record pool
}

type engineJob struct {
	desc Desc
	done *sim.Completion
}

func newEngine(p *Port) *Engine {
	e := &Engine{
		port:  p,
		queue: sim.NewQueue[*engineJob]("dma:" + p.name),
	}
	p.sim.GoDaemon("dma-engine:"+p.name, e.run)
	return e
}

// Submit enqueues a descriptor and returns a completion that fires when
// the data is visible in the peer window. Submit itself costs one local
// register write (ringing the engine) when called from process context;
// pass nil to submit from scheduler context at zero cost.
func (e *Engine) Submit(pr *sim.Proc, d Desc) *sim.Completion {
	e.port.checkWindow(d.Region, d.Off, d.Bytes)
	if d.SrcHeap == nil && len(d.Src) < d.Bytes {
		panic("ntb: DMA descriptor source shorter than Bytes")
	}
	if pr != nil {
		pr.Sleep(e.port.par.LocalMMIO)
	}
	job := &engineJob{desc: d, done: sim.NewCompletion("dma-done:" + e.port.name)}
	e.busy++
	e.queue.Push(job)
	return job.done
}

// SubmitWait enqueues a descriptor and blocks the caller until the data
// is visible in the peer window — Submit followed by Wait, except that
// the completion is never exposed, so the engine recycles the job record
// and the per-chunk descriptor path allocates nothing. This is the form
// the driver's chunk senders use.
//
//ntblint:allocfree
func (e *Engine) SubmitWait(pr *sim.Proc, d Desc) {
	e.port.checkWindow(d.Region, d.Off, d.Bytes)
	if d.SrcHeap == nil && len(d.Src) < d.Bytes {
		panic("ntb: DMA descriptor source shorter than Bytes")
	}
	pr.Sleep(e.port.par.LocalMMIO)
	var job *engineJob
	if last := len(e.jpool) - 1; last >= 0 {
		job = e.jpool[last]
		e.jpool = e.jpool[:last]
		job.done.Reset()
	} else {
		//ntblint:allocok — job-pool miss; record is recycled forever after
		job = &engineJob{done: sim.NewCompletion("dma-done:" + e.port.name)}
	}
	job.desc = d
	e.busy++
	e.queue.Push(job)
	job.done.Wait(pr)
	job.desc = Desc{} // release the source buffer/heap references
	e.jpool = append(e.jpool, job)
}

// Pending reports descriptors submitted but not yet completed.
func (e *Engine) Pending() int { return e.busy }

// reset asserts the engine is idle — a wedged or mid-descriptor engine
// cannot be pooled — and keeps the warm job pool for the next run.
func (e *Engine) reset() {
	e.assertIdle("reset")
}

// assertIdle panics unless the engine has no descriptors queued or in
// flight; shared by reset and the port snapshot/restore paths.
func (e *Engine) assertIdle(op string) {
	if e.busy != 0 || e.queue.Len() != 0 {
		panic(fmt.Sprintf("ntb: %s of %s with %d descriptor(s) outstanding", op, e.port.name, e.busy))
	}
}

func (e *Engine) run(pr *sim.Proc) {
	par := e.port.par
	for {
		job := e.queue.Pop(pr)
		d := &job.desc
		start := pr.Now()
		pr.Sleep(par.DMASetup)
		if *e.port.linkDown {
			// The engine wedges on a dead link: the descriptor never
			// completes and the engine processes nothing further, as on
			// real parts until a driver-level reset.
			pr.Sleep(par.DMASetup)
			wedge := sim.NewCompletion("dma-wedged:" + e.port.name)
			wedge.Wait(pr) // parks forever
		}
		peer := e.port.mustPeer()
		if e.port.remote {
			e.port.admitRemote()
			e.port.net.TransferRoute(pr, int64(d.Bytes), e.port.engineBW, e.port.route)
			e.port.postWindowCopy(peer, d.Region, d.Off, d.Bytes, d.Src, d.SrcHeap, d.SrcOff)
		} else {
			peer.admit(e.port)
			e.port.net.TransferRoute(pr, int64(d.Bytes), e.port.engineBW, e.port.route)
			peer.markDirty(d.Region, d.Off, d.Bytes)
			dst := peer.window(d.Region)[d.Off : d.Off+d.Bytes]
			if d.SrcHeap != nil {
				d.SrcHeap.Read(d.SrcOff, dst)
			} else {
				copy(dst, d.Src[:d.Bytes])
			}
		}
		e.port.emit("dma", "xfer", pr.Now().Sub(start), d.Bytes)
		e.busy--
		job.done.Complete()
	}
}
