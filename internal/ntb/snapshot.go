package ntb

// PortSnapshot is a frozen image of a port's guest-visible device state:
// the scratchpad file, doorbell status and mask registers, and the dirty
// extent of each inbound memory window. Window bytes are copied at
// capture time — after a quiescent prefix the dirty residue is small
// protocol state (pipelined slot headers, boot spad mirrors), not bulk
// payload, and Inbound() hands out long-lived aliases that rule out the
// heap's page-granular copy-on-write here. The DMA engine must be idle
// at capture, so its queue needs no image.
type PortSnapshot struct {
	spads  []uint32
	db     uint16
	dbMask uint16
	win    [numRegions][]byte // dirty-extent contents, captured copies
	dirty  [numRegions]extent
}

// Snapshot captures the port's register surface and window residue.
func (p *Port) Snapshot() *PortSnapshot {
	p.dma.assertIdle("snapshot")
	s := &PortSnapshot{db: p.db, dbMask: p.dbMask}
	s.spads = append([]uint32(nil), p.spads...)
	for r := range p.inbound {
		d := p.winDirty[r]
		s.dirty[r] = d
		if d.hi > d.lo {
			s.win[r] = append([]byte(nil), p.inbound[r][d.lo:d.hi]...)
		}
	}
	return s
}

// Restore writes a snapshot's state back onto a freshly Reset port: the
// register surface is replaced and each window's captured dirty extent
// is copied in (the rest of the window is already zero, as it was when
// the snapshot was taken). The LUT is intentionally not part of the
// snapshot for the same reason Reset retains it: boot reprograms the
// same entries, so enforced-vs-fresh is indistinguishable to window
// transactions.
func (p *Port) Restore(s *PortSnapshot) {
	p.dma.assertIdle("restore")
	copy(p.spads, s.spads)
	p.db, p.dbMask = s.db, s.dbMask
	for r := range p.inbound {
		d := s.dirty[r]
		p.winDirty[r] = d
		if d.hi > d.lo {
			copy(p.window(Region(r))[d.lo:d.hi], s.win[r])
		}
	}
}
