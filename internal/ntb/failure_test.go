package ntb

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func TestUnplugDropsPostedWrites(t *testing.T) {
	s, a, b, _ := pair(t)
	s.Go("t", func(p *sim.Proc) {
		a.PeerSpadWrite(p, 2, 0x1234)
		a.Unplug()
		a.PeerSpadWrite(p, 2, 0x9999) // dropped
		if got := b.SpadRead(p, 2); got != 0x1234 {
			t.Errorf("spad = %#x after dead-link write", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnplugReadsReturnMasterAbort(t *testing.T) {
	s, a, b, par := pair(t)
	_ = b
	s.Go("t", func(p *sim.Proc) {
		a.Unplug()
		start := p.Now()
		if got := a.PeerSpadRead(p, 0); got != ^uint32(0) {
			t.Errorf("dead-link read = %#x, want all ones", got)
		}
		if p.Now().Sub(start) < par.MMIORead {
			t.Error("dead-link read returned implausibly fast")
		}
		buf := make([]byte, 4)
		a.CPURead(p, RegionData, 0, buf)
		for _, by := range buf {
			if by != 0xFF {
				t.Errorf("dead-link window read = %v", buf)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnplugDropsDoorbells(t *testing.T) {
	s, a, b, _ := pair(t)
	fired := 0
	b.SetISR(func(bits uint16) { fired++ })
	s.Go("t", func(p *sim.Proc) {
		a.PeerDBSet(p, 1)
		p.Sleep(10 * sim.Microsecond)
		a.Unplug()
		a.PeerDBSet(p, 1)
		p.Sleep(10 * sim.Microsecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("ISR fired %d times; the post-unplug ring should vanish", fired)
	}
}

func TestUnplugWedgesDMA(t *testing.T) {
	s, a, _, _ := pair(t)
	s.Go("t", func(p *sim.Proc) {
		a.Unplug()
		done := a.DMA().Submit(p, Desc{Region: RegionData, Src: make([]byte, 64), Bytes: 64})
		done.Wait(p) // never completes
		t.Error("DMA on a dead link completed")
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected a deadlock report for the wedged waiter, got %v", err)
	}
}

func TestUnplugBothSidesSeeIt(t *testing.T) {
	s, a, b, _ := pair(t)
	_ = s
	if !a.LinkUp() || !b.LinkUp() {
		t.Fatal("fresh link should be up")
	}
	b.Unplug()
	if a.LinkUp() || b.LinkUp() {
		t.Fatal("unplug must be visible from both ends")
	}
}

func TestUnplugUnconnectedPanics(t *testing.T) {
	s := sim.New()
	par := model.Default()
	orphan := NewPort("orphan", s, pcie.NewNetwork(s), par, pcie.NewServer("rc", par.RootComplexBW))
	defer func() {
		if recover() == nil {
			t.Fatal("unplug of unconnected port did not panic")
		}
	}()
	orphan.Unplug()
}

func TestLUTEnforcement(t *testing.T) {
	s, a, b, _ := pair(t)
	a.SetRequesterID(0x11)
	b.SetRequesterID(0x22)
	s.Go("t", func(p *sim.Proc) {
		// Unenforced: everything flows.
		a.CPUWrite(p, RegionData, 0, []byte{1})
		// B enforces and admits only requester 0x99.
		b.LUTAdd(p, 0x99)
		if !b.LUTContains(0x99) || b.LUTContains(0x11) {
			t.Error("LUT contents wrong")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unregistered requester admitted (CPU write)")
				}
			}()
			a.CPUWrite(p, RegionData, 0, []byte{2})
		}()
		// Admitting A unblocks it.
		b.LUTAdd(p, a.RequesterID())
		a.CPUWrite(p, RegionData, 0, []byte{3})
		if b.Inbound(RegionData)[0] != 3 {
			t.Error("admitted write did not land")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLUTGatesDMA(t *testing.T) {
	s, a, b, _ := pair(t)
	a.SetRequesterID(0x11)
	s.Go("t", func(p *sim.Proc) {
		b.LUTAdd(p, 0x77) // enforce, A not admitted
		done := a.DMA().Submit(p, Desc{Region: RegionData, Src: make([]byte, 64), Bytes: 64})
		_ = done
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "LUT") {
		t.Fatalf("DMA from unregistered requester should fail the engine: %v", err)
	}
}
