package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
)

func TestSizesSweep(t *testing.T) {
	s := Sizes()
	if s[0] != 1<<10 || s[len(s)-1] != 512<<10 {
		t.Fatalf("sweep endpoints: %v", s)
	}
	if len(s) != 10 {
		t.Fatalf("sweep length = %d, want 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] != 2*s[i-1] {
			t.Fatalf("sweep not powers of two: %v", s)
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		512:       "512B",
		1 << 10:   "1KB",
		512 << 10: "512KB",
		1 << 20:   "1MB",
		1500:      "1500B",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestMBps(t *testing.T) {
	if got := MBps(1e6, 1e9); got != 1 {
		t.Errorf("1MB in 1s = %g MB/s", got)
	}
	if got := MBps(1e6, 0); got != 0 {
		t.Errorf("zero time should yield 0, got %g", got)
	}
}

func TestFigureTableAndCSV(t *testing.T) {
	f := &Figure{
		ID: "T", Title: "test", XLabel: "Request Size", Unit: "MB/s",
		Series: []Series{
			{Label: "a", Points: []Point{{1 << 10, 1.5}, {2 << 10, 2.5}}},
			{Label: "b", Points: []Point{{1 << 10, 3}, {2 << 10, 4}}},
		},
	}
	tbl := f.Table()
	for _, want := range []string{"1KB", "2KB", "1.50", "4.00", "MB/s"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "Request Size,a,b\n1024,1.5,3\n") {
		t.Errorf("csv format:\n%s", csv)
	}
	if f.SeriesByLabel("b") == nil || f.SeriesByLabel("zzz") != nil {
		t.Error("SeriesByLabel broken")
	}
	if v, err := f.Series[0].At(2 << 10); err != nil || v != 2.5 {
		t.Errorf("At = %v, %v", v, err)
	}
	if _, err := f.Series[0].At(77); err == nil {
		t.Error("At missing point should error")
	}
}

func TestFig8IndependentBeatsRing(t *testing.T) {
	par := model.Default()
	const size = 256 << 10
	ring := Fig8Ring(par, 3, size)
	anyDiminished := false
	for i, r := range ring {
		indep := Fig8Independent(par, i, size)
		if indep < 2000 || indep > 3400 {
			t.Fatalf("independent link %d 256KB throughput %f MB/s outside the paper's 20-30Gb/s band", i, indep)
		}
		// Simultaneous ring traffic never beats the isolated link and
		// drops at most "slightly" (the paper's observation); links whose
		// chipset engine is the bottleneck may match it exactly.
		if r > indep+1 {
			t.Fatalf("ring link %d (%f) should not exceed independent (%f)", i, r, indep)
		}
		if r < 0.80*indep {
			t.Fatalf("ring link %d (%f) dropped more than the paper's 'slight' diminution vs %f", i, r, indep)
		}
		if r < 0.99*indep {
			anyDiminished = true
		}
	}
	if !anyDiminished {
		t.Fatal("no link showed the ring-contention diminution at all")
	}
}

func TestFig8SmallTransfersSlower(t *testing.T) {
	par := model.Default()
	small := Fig8Independent(par, 0, 1<<10)
	big := Fig8Independent(par, 0, 512<<10)
	if small >= big/3 {
		t.Fatalf("1KB rate (%f) should sit far below 512KB rate (%f)", small, big)
	}
}

func TestFig8TotalGrowsWithHosts(t *testing.T) {
	// The paper: overall network throughput increases with ring size.
	par := model.Default()
	sum := func(n int) float64 {
		var s float64
		for _, v := range Fig8Ring(par, n, 128<<10) {
			s += v
		}
		return s
	}
	if s3, s4 := sum(3), sum(4); s4 <= s3 {
		t.Fatalf("total throughput should grow with hosts: n=3 %f, n=4 %f", s3, s4)
	}
}

func TestMeasureShmemOpBasics(t *testing.T) {
	par := model.Default()
	put := MeasureShmemOp(par, OpPut, driver.ModeDMA, 1, 64<<10, 3)
	get := MeasureShmemOp(par, OpGet, driver.ModeDMA, 1, 64<<10, 3)
	if put <= 0 || get <= 0 {
		t.Fatal("non-positive latency")
	}
	if get < 2*put {
		t.Fatalf("get (%f us) should be well above put (%f us)", get, put)
	}
}

func TestCheckFig9ShapesOnRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 9 grid in -short mode")
	}
	figs := RunFig9(model.Default())
	if len(figs) != 4 {
		t.Fatalf("%d figures", len(figs))
	}
	if bad := CheckFig9Shapes(figs); len(bad) != 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	// Every series covers the full sweep.
	for _, f := range figs {
		for _, s := range f.Series {
			if len(s.Points) != len(Sizes()) {
				t.Fatalf("%s series %q has %d points", f.ID, s.Label, len(s.Points))
			}
		}
	}
}

func TestBarrierAfterPutFlat(t *testing.T) {
	par := model.Default()
	small := MeasureBarrierAfterPut(par, driver.ModeDMA, 1, 1<<10, 4)
	big := MeasureBarrierAfterPut(par, driver.ModeDMA, 1, 512<<10, 4)
	if small < 400 || small > 4000 {
		t.Fatalf("barrier latency %f us outside the paper's band", small)
	}
	ratio := big / small
	if ratio > 1.5 {
		t.Fatalf("barrier latency should be sustained across sizes: 1KB %f, 512KB %f", small, big)
	}
}

func TestAblationBarrierAlgoScaling(t *testing.T) {
	// The paper's ring start/end protocol costs 2N sequential
	// application wake-ups, so it scales linearly; dissemination runs
	// ceil(log2 N) rounds and must win decisively at larger rings.
	par := model.Default()
	ring3 := MeasureBarrierLatency(par, core.BarrierRing, 3, 5)
	ring6 := MeasureBarrierLatency(par, core.BarrierRing, 6, 5)
	if r := ring6 / ring3; r < 1.6 || r > 2.4 {
		t.Fatalf("ring barrier should scale ~linearly: n=3 %f, n=6 %f", ring3, ring6)
	}
	diss8 := MeasureBarrierLatency(par, core.BarrierDissemination, 8, 5)
	ring8 := MeasureBarrierLatency(par, core.BarrierRing, 8, 5)
	if diss8 >= ring8 {
		t.Fatalf("dissemination (%f) should beat the ring protocol (%f) at n=8", diss8, ring8)
	}
	central8 := MeasureBarrierLatency(par, core.BarrierCentral, 8, 5)
	if central8 <= 0 || central8 <= diss8 {
		t.Fatalf("central (%f) should cost more than dissemination (%f) at n=8", central8, diss8)
	}
}

func TestAblationGetChunkMonotoneRegion(t *testing.T) {
	// Bigger stop-and-wait chunks amortise the round trip: throughput at
	// 64KB chunks must beat 4KB chunks.
	par := model.Default()
	small := par.Clone()
	small.GetChunk = 4 << 10
	big := par.Clone()
	big.GetChunk = 64 << 10
	latSmall := MeasureShmemOp(small, OpGet, driver.ModeDMA, 1, 256<<10, 3)
	latBig := MeasureShmemOp(big, OpGet, driver.ModeDMA, 1, 256<<10, 3)
	if latBig >= latSmall {
		t.Fatalf("64KB-chunk get (%f us) should beat 4KB-chunk get (%f us)", latBig, latSmall)
	}
}

func TestAblationBroadcastCrossover(t *testing.T) {
	// Small payloads favour the native store-and-forward fanout; large
	// ones the ring pipeline (payload crosses the root's link once).
	par := model.Default()
	linSmall, pipeSmall := MeasureBroadcast(par, 6, 32<<10)
	if linSmall >= pipeSmall {
		t.Fatalf("at 32KB linear (%f) should beat pipeline (%f)", linSmall, pipeSmall)
	}
	linBig, pipeBig := MeasureBroadcast(par, 6, 4<<20)
	if pipeBig >= linBig {
		t.Fatalf("at 4MB pipeline (%f) should beat linear (%f)", pipeBig, linBig)
	}
}

func TestAblationPipelineImproves(t *testing.T) {
	// The future-work protocol must deliver: deeper pipelines raise put
	// throughput well above the paper's stop-and-wait, and get stays
	// round-trip bound.
	par := model.Default()
	put1, get1 := MeasurePipelined(par, 1, 512<<10, 3)
	put8, get8 := MeasurePipelined(par, 8, 512<<10, 3)
	if put8 >= put1/2 {
		t.Fatalf("depth-8 put latency (%f us) should be far below stop-and-wait (%f us)", put8, put1)
	}
	if ratio := get8 / get1; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("get latency should be pipeline-insensitive: depth1 %f, depth8 %f", get1, get8)
	}
}

func TestAppKernelsVerifyAndComplete(t *testing.T) {
	// The kernels self-verify (they panic into the sim on wrong
	// answers), so completion with plausible times is the assertion.
	par := model.Default()
	heat := AppHeat1D(par, core.Options{}, 3, 300, 10)
	mm := AppMatmul(par, core.Options{}, 3, 48)
	is := AppIntSort(par, core.Options{}, 3, 5000)
	for name, v := range map[string]float64{"heat1d": heat, "matmul": mm, "intsort": is} {
		if v <= 0 || v > 1e9 {
			t.Errorf("%s kernel time %f us implausible", name, v)
		}
	}
	// The pipelined protocol must not slow any kernel down materially.
	heatP := AppHeat1D(par, core.Options{Pipeline: 8}, 3, 300, 10)
	if heatP > 1.05*heat {
		t.Errorf("pipelined heat1d (%f) slower than stop-and-wait (%f)", heatP, heat)
	}
}

func TestAblationWakeCostLinearForDataOps(t *testing.T) {
	// Put and get scale linearly with the service-thread wake cost
	// (E4's dominant component); the ring barrier does not use the
	// service thread on its hot path and must stay flat.
	par := model.Default()
	fast := par.Clone()
	fast.ServiceWake = par.ServiceWake / 7
	putSlow := MeasureShmemOp(par, OpPut, driver.ModeDMA, 1, 512<<10, 3)
	putFast := MeasureShmemOp(fast, OpPut, driver.ModeDMA, 1, 512<<10, 3)
	if putFast >= 0.6*putSlow {
		t.Fatalf("put should track the wake cost: %.1f -> %.1f us", putSlow, putFast)
	}
	barSlow := MeasureBarrierLatency(par, core.BarrierRing, 3, 3)
	barFast := MeasureBarrierLatency(fast, core.BarrierRing, 3, 3)
	if rel := barFast / barSlow; rel < 0.95 || rel > 1.05 {
		t.Fatalf("ring barrier should be wake-insensitive: %.1f vs %.1f us", barSlow, barFast)
	}
}

func TestCollectiveLatencyScales(t *testing.T) {
	par := model.Default()
	l3 := MeasureCollectives(par, 3, 8<<10)
	l6 := MeasureCollectives(par, 6, 8<<10)
	for _, k := range []string{"reduce", "fcollect", "alltoall", "broadcast"} {
		if l3[k] <= 0 || l6[k] <= 0 {
			t.Fatalf("%s latency missing: n3=%f n6=%f", k, l3[k], l6[k])
		}
		if l6[k] <= l3[k] {
			t.Errorf("%s should cost more on a larger ring: n3=%f n6=%f", k, l3[k], l6[k])
		}
	}
}
