package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// Extension figure E6: the same OpenSHMEM workload measured over every
// fabric backend. One runtime, three interconnect models — the paper's
// switchless NTB ring, a PCIe switch with true peer-to-peer paths
// sharing one switch core, and a CXL.mem-style mapped window — so the
// figure isolates what the interconnect itself costs: the ring pays
// store-and-forward hops, the switch pays core contention, CXL pays
// neither but serialises on the target's home agent.

// crossFabricHosts is the cluster size of the E6 sweep: large enough
// that the ring has a multi-hop transfer and the switch has contending
// pairs, small enough that every backend supports it.
const crossFabricHosts = 4

// crossFabricReps averages each point over this many put rounds.
const crossFabricReps = 5

// MeasureCrossFabricPut runs the E6 workload on the currently selected
// fabric backend (see SetFabric): every PE simultaneously puts size
// bytes to its right neighbour, reps rounds, all n hosts sending at
// once. It returns the per-PE put throughput in MB/s observed at PE 0.
// With every host transmitting, the fabrics diverge exactly where their
// models differ: ring cables each carry two flows, the switch core
// carries all of them, and the CXL window serialises writes per target.
func MeasureCrossFabricPut(par *model.Params, n, size, reps int) float64 {
	var mbps float64
	label := fmt.Sprintf("crossfabric %s/n=%d/size=%d", Fabric(), n, size)
	runRingWorld(label, par, n, core.Options{}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, size)
		buf := make([]byte, size)
		pe.BarrierAll(p)
		start := p.Now()
		for r := 0; r < reps; r++ {
			pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, buf)
		}
		if pe.ID() == 0 {
			us := p.Now().Sub(start).Microseconds()
			mbps = MBps(int64(reps)*int64(size), int64(us*1e3))
		}
		pe.BarrierAll(p)
	})
	return mbps
}

// RunCrossFabric produces extension figure E6: neighbour-put throughput
// under full contention, by request size, one series per fabric backend.
// Kinds are swept serially (the backend selector is process-global);
// sizes within a kind fan across workers as usual. The two-host pair
// fabric, if requested, runs at its only legal size and is labelled so.
func RunCrossFabric(par *model.Params, kinds []fabric.Kind) *Figure {
	f := &Figure{
		ID:     "E6",
		Title:  "OpenSHMEM put throughput per PE by fabric backend (all hosts sending, DMA)",
		XLabel: "Request Size",
		Unit:   "MB/s",
	}
	sizes := Sizes()
	prev := Fabric()
	defer SetFabric(prev)
	for _, k := range kinds {
		n, label := crossFabricHosts, k.String()
		if k == fabric.KindNTBPair {
			n, label = 2, "ntb-pair (2 hosts)"
		}
		SetFabric(k)
		vals := runPointsCost(sizes, func(_ int, size int) float64 {
			return float64(size)
		}, func(size int) float64 {
			return MeasureCrossFabricPut(par, n, size, crossFabricReps)
		})
		s := Series{Label: label}
		for i, size := range sizes {
			s.Points = append(s.Points, Point{size, vals[i]})
		}
		f.Series = append(f.Series, s)
	}
	return f
}
