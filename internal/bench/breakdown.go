package bench

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Latency breakdowns (extension E4): an analytical decomposition of one
// put chunk cycle and one get chunk cycle into the platform model's cost
// components — the "where does the time go" analysis the paper's
// discussion gestures at. The decomposition is validated against the
// simulator: TestBreakdownMatchesSimulation asserts that the component
// sum reproduces the measured per-chunk latency, so the table is not a
// separate model that can drift.

// Component is one step of a protocol cycle and its cost.
type Component struct {
	Name string
	US   float64
}

// Total sums a component list in microseconds.
func Total(cs []Component) float64 {
	var t float64
	for _, c := range cs {
		t += c.US
	}
	return t
}

// FormatComponents renders a breakdown as an aligned table with a
// percentage column.
func FormatComponents(title string, cs []Component) string {
	var b strings.Builder
	total := Total(cs)
	fmt.Fprintf(&b, "%s (total %.2f us)\n", title, total)
	for _, c := range cs {
		fmt.Fprintf(&b, "  %-28s %9.2f us  %5.1f%%\n", c.Name, c.US, 100*c.US/total)
	}
	return b.String()
}

func us(d interface{ Microseconds() float64 }) float64 { return d.Microseconds() }

// PutChunkBreakdown decomposes one stop-and-wait put chunk cycle (DMA
// mode, one hop): the sender's critical path from issuing the chunk to
// receiving the ACK that frees the window for the next chunk.
func PutChunkBreakdown(par *model.Params) []Component {
	chunk := float64(par.PutChunk)
	return []Component{
		{"DMA descriptor ring (MMIO)", us(par.LocalMMIO)},
		{"DMA engine setup", us(par.DMASetup)},
		{"DMA transfer (PutChunk)", chunk / par.DMAEngineBW * 1e6},
		{"info record (7 spad writes)", 7 * us(par.MMIOWrite)},
		{"doorbell ring (MMIO)", us(par.MMIOWrite)},
		{"interrupt delivery", us(par.InterruptLatency)},
		{"service thread wake", us(par.ServiceWake)},
		{"interrupt service routine", us(par.ISRCost)},
		{"info read (7 spad reads)", 7 * us(par.LocalMMIO)},
		{"window->heap copy", chunk / par.MemcpyBW * 1e6},
		{"ACK doorbell + delivery", us(par.MMIOWrite) + us(par.InterruptLatency)},
	}
}

// GetChunkBreakdown decomposes one get chunk cycle (DMA mode, one hop):
// request to the owner, staging, reply, delivery, and the application
// wake-up — the round trip that bounds Fig 9's Get curves.
func GetChunkBreakdown(par *model.Params) []Component {
	chunk := float64(par.GetChunk)
	reqAndAck := func(stage string) []Component {
		return []Component{
			{stage + ": info record (7 spad writes)", 7 * us(par.MMIOWrite)},
			{stage + ": doorbell + delivery", us(par.MMIOWrite) + us(par.InterruptLatency)},
			{stage + ": service thread wake", us(par.ServiceWake)},
			{stage + ": interrupt service routine", us(par.ISRCost)},
			{stage + ": info read (7 spad reads)", 7 * us(par.LocalMMIO)},
			{stage + ": ACK doorbell + delivery", us(par.MMIOWrite) + us(par.InterruptLatency)},
		}
	}
	out := reqAndAck("request")
	out = append(out,
		Component{"owner: heap->staging copy", chunk / par.MemcpyBW * 1e6},
		Component{"owner: forwarder wake", us(par.ServiceWake)},
		Component{"reply: DMA ring + setup", us(par.LocalMMIO) + us(par.DMASetup)},
		Component{"reply: DMA transfer (GetChunk)", chunk / par.DMAEngineBW * 1e6},
	)
	out = append(out, reqAndAck("reply")...)
	out = append(out,
		Component{"requester: window->buffer copy", chunk / par.MemcpyBW * 1e6},
		Component{"requester: application wake", us(par.AppWake)},
	)
	return out
}

// RunBreakdown renders both decompositions (the E4 text artefact).
func RunBreakdown(par *model.Params) string {
	var b strings.Builder
	b.WriteString("E4 — Per-chunk latency decomposition (DMA, 1 hop)\n\n")
	b.WriteString(FormatComponents(
		fmt.Sprintf("Put cycle, %s chunk", SizeLabel(par.PutChunk)), PutChunkBreakdown(par)))
	b.WriteString("\n")
	b.WriteString(FormatComponents(
		fmt.Sprintf("Get cycle, %s chunk", SizeLabel(par.GetChunk)), GetChunkBreakdown(par)))
	return b.String()
}
