package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/sim"
)

// Fig 10: latency of shmem_barrier_all when each barrier follows Put
// operations of varying size, for the same four {DMA, memcpy} x {1, 2
// hops} configurations as Fig 9. The paper's observation: barrier cost
// is substantial relative to small transfers but sustained (flat) as the
// put size grows.

const fig10Reps = 10

// MeasureBarrierAfterPut returns the mean latency in microseconds of a
// BarrierAll issued immediately after a put of the given size.
func MeasureBarrierAfterPut(par *model.Params, mode driver.Mode, hops, size, reps int) float64 {
	var total sim.Duration
	label := fmt.Sprintf("barrier-after-put %s/hops=%d/size=%d", mode, hops, size)
	runRingWorld(label, par, 3, core.Options{Mode: mode}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, size)
		buf := make([]byte, size)
		pe.BarrierAll(p)
		for r := 0; r < reps; r++ {
			if pe.ID() == 0 {
				pe.PutBytes(p, hops, sym, buf)
			}
			start := p.Now()
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				total += p.Now().Sub(start)
			}
		}
	})
	return total.Microseconds() / float64(reps)
}

// RunFig10 reproduces Fig 10.
func RunFig10(par *model.Params) *Figure {
	f := &Figure{
		ID:     "Fig 10",
		Title:  "Latency of OpenSHMEM Barrier Library",
		XLabel: "Request Size",
		Unit:   "us",
	}
	grid := fig9Grid()
	sizes := Sizes()
	type cellKey struct {
		gi   int
		size int
	}
	keys := make([]cellKey, 0, len(grid)*len(sizes))
	for gi := range grid {
		for _, size := range sizes {
			keys = append(keys, cellKey{gi, size})
		}
	}
	vals := runPointsCost(keys, func(_ int, k cellKey) float64 {
		return float64(k.size) * float64(1+grid[k.gi].hops)
	}, func(k cellKey) float64 {
		cfg := grid[k.gi]
		return MeasureBarrierAfterPut(par, cfg.mode, cfg.hops, k.size, fig10Reps)
	})
	for gi, cfg := range grid {
		series := Series{Label: cfg.label, Points: make([]Point, 0, len(sizes))}
		for si, size := range sizes {
			series.Points = append(series.Points, Point{size, vals[gi*len(sizes)+si]})
		}
		f.Series = append(f.Series, series)
	}
	return f
}
