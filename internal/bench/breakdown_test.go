package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/model"
)

func TestBreakdownMatchesSimulation(t *testing.T) {
	// The analytical decomposition must reproduce the simulator's
	// measured per-chunk cycle, or the E4 table is fiction.
	par := model.Default()

	// Put: one PutChunk-sized put is exactly one cycle plus the per-call
	// software cost.
	putMeasured := MeasureShmemOp(par, OpPut, driver.ModeDMA, 1, par.PutChunk, 4)
	putAnalytic := Total(PutChunkBreakdown(par)) + par.PutSoftware.Microseconds()
	if rel := math.Abs(putMeasured-putAnalytic) / putMeasured; rel > 0.02 {
		t.Fatalf("put breakdown drifted: measured %.2f us, analytic %.2f us (%.1f%%)",
			putMeasured, putAnalytic, 100*rel)
	}

	// Get: one GetChunk-sized get is one round-trip cycle plus software.
	getMeasured := MeasureShmemOp(par, OpGet, driver.ModeDMA, 1, par.GetChunk, 4)
	getAnalytic := Total(GetChunkBreakdown(par)) + par.GetSoftware.Microseconds()
	if rel := math.Abs(getMeasured-getAnalytic) / getMeasured; rel > 0.02 {
		t.Fatalf("get breakdown drifted: measured %.2f us, analytic %.2f us (%.1f%%)",
			getMeasured, getAnalytic, 100*rel)
	}
}

func TestBreakdownDominantComponents(t *testing.T) {
	// The calibrated profile's story: the service-thread wake dominates
	// the put cycle's overhead, and the wake/round-trip machinery — not
	// the wire — dominates the get cycle.
	par := model.Default()
	put := PutChunkBreakdown(par)
	var wake, transfer float64
	for _, c := range put {
		switch {
		case strings.Contains(c.Name, "service thread wake"):
			wake = c.US
		case strings.Contains(c.Name, "DMA transfer"):
			transfer = c.US
		}
	}
	if wake <= transfer {
		t.Fatalf("put overhead should be wake-dominated: wake %.2f vs transfer %.2f", wake, transfer)
	}
	get := GetChunkBreakdown(par)
	var wire, overhead float64
	for _, c := range get {
		if strings.Contains(c.Name, "DMA transfer") {
			wire += c.US
		} else {
			overhead += c.US
		}
	}
	if overhead < 5*wire {
		t.Fatalf("get should be overhead-bound: overhead %.2f vs wire %.2f", overhead, wire)
	}
}

func TestBreakdownRendering(t *testing.T) {
	out := RunBreakdown(model.Default())
	for _, want := range []string{"Put cycle", "Get cycle", "service thread wake", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown output missing %q:\n%s", want, out)
		}
	}
	if Total(nil) != 0 {
		t.Fatal("empty total")
	}
}
