package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// The world pool. PR 2's profiling showed world construction dominated by
// buffer setup, and most sweeps run dozens of points over an identical
// world shape (same params, host count, options). The pool keeps cleanly
// finished worlds warm, keyed by that shape, so runRingWorld pays
// construction once per shape per worker instead of once per point.
//
// A pooled world's daemons stay parked on live goroutines, so a world
// must never be silently dropped: every world that leaves the pool is
// either recycled through Reset or released with Shutdown. That is why
// this is an explicit bounded structure rather than a sync.Pool — a
// GC-evicted entry would leak its goroutines permanently.

// maxPooledWorlds bounds how many warm worlds the pool retains across all
// shapes. Overflow check-ins are shut down instead of pooled; the cap
// only matters for sweeps that touch many distinct shapes (per-point
// params clones), where pooling has no wins to offer anyway.
const maxPooledWorlds = 32

// maxPooledPEs bounds the pool by total parked PEs rather than world
// count alone: a single 1024-PE world holds ~2k daemon goroutines and
// megabytes of per-PE state, so weighting the budget by PEs keeps the
// scaling sweep from pinning 32 such worlds (64k goroutines) in memory.
// Worlds over the per-world budget are still poolable — one at a time.
const maxPooledPEs = 4096

// worldPoolOn gates the pool; see SetWorldPool. Defaults to enabled.
var worldPoolOn atomic.Bool

func init() { worldPoolOn.Store(true) }

var worldPool struct {
	mu     sync.Mutex
	worlds map[string][]*core.World
	total  int // pooled worlds
	pes    int // pooled PEs (sum of world sizes), budgeted by maxPooledPEs
	hits   uint64
	misses uint64
}

// worldFingerprint keys the pool by everything that shapes a world: the
// full params value (params are mutated per point by some sweeps, so
// pointer identity is useless), host count, runtime options, the
// event-scheduler kind the world's simulator was built with — an A/B
// sweep over schedulers must not hand a heap-scheduled world to a
// ladder-scheduled measurement — and the fabric backend, so a
// cross-fabric sweep never recycles a switch-topology world into a ring
// measurement — and the shard count, so a conservative-DES sweep never
// hands a 4-shard world to a single-simulator measurement or vice versa.
func worldFingerprint(par *model.Params, n int, opts core.Options, sched sim.SchedulerKind, fab fabric.Kind, shards int) string {
	return fmt.Sprintf("%+v|n=%d|%+v|sched=%s|fab=%s|shards=%d", *par, n, opts, sched, fab, shards)
}

// SetWorldPool enables or disables world pooling for subsequent
// runRingWorld calls — the A/B switch for measuring what pooling buys.
// Disabling drains the pool.
func SetWorldPool(on bool) {
	worldPoolOn.Store(on)
	if !on {
		DrainWorldPool()
	}
}

// WorldPoolEnabled reports whether runRingWorld recycles worlds.
func WorldPoolEnabled() bool { return worldPoolOn.Load() }

// WorldPoolStats returns how many checkouts were served warm (hits) and
// how many built fresh worlds (misses) since process start.
func WorldPoolStats() (hits, misses uint64) {
	worldPool.mu.Lock()
	defer worldPool.mu.Unlock()
	return worldPool.hits, worldPool.misses
}

// DrainWorldPool shuts down and discards every pooled world, releasing
// their daemon goroutines. Benchmarks and tests that account for memory
// or goroutines call this between phases.
func DrainWorldPool() {
	worldPool.mu.Lock()
	var all []*core.World
	//ntblint:ordered — worlds are independent simulators being shut down post-run;
	for _, ws := range worldPool.worlds {
		all = append(all, ws...)
	}
	worldPool.worlds = nil
	worldPool.total = 0
	worldPool.pes = 0
	worldPool.mu.Unlock()
	for _, w := range all {
		w.Cluster.ShutdownSim()
	}
}

// checkoutWorld fetches a warm world matching the requested shape.
// It returns (nil, false) when pooling is disabled, and (nil, true) on a
// pool miss — the caller builds a fresh world and checks it in after a
// clean run. A checked-out world was keyed by its params value at
// check-in time; if the params object it references was mutated since
// (a sweep reusing one clone across points), the stale world is shut
// down and the checkout degrades to a miss.
func checkoutWorld(par *model.Params, n int, opts core.Options) (*core.World, bool) {
	if !worldPoolOn.Load() {
		return nil, false
	}
	key := worldFingerprint(par, n, opts, sim.DefaultScheduler(), Fabric(), effectiveShards(n, opts))
	worldPool.mu.Lock()
	var w *core.World
	if ws := worldPool.worlds[key]; len(ws) > 0 {
		w = ws[len(ws)-1]
		ws[len(ws)-1] = nil
		worldPool.worlds[key] = ws[:len(ws)-1]
		worldPool.total--
		worldPool.pes -= n
		worldPool.hits++
	} else {
		worldPool.misses++
	}
	worldPool.mu.Unlock()
	if w != nil && worldFingerprint(w.Cluster.Par, n, opts, w.Cluster.Sim.Scheduler(), w.Cluster.Kind(), w.Cluster.Shards()) != key {
		w.Cluster.ShutdownSim()
		return nil, true
	}
	return w, true
}

// checkinWorld returns a freshly Reset world to the pool. If pooling was
// disabled mid-run or the pool is full, the world is shut down instead.
func checkinWorld(w *core.World, n int, opts core.Options) {
	if !worldPoolOn.Load() {
		w.Cluster.ShutdownSim()
		return
	}
	key := worldFingerprint(w.Cluster.Par, n, opts, w.Cluster.Sim.Scheduler(), w.Cluster.Kind(), w.Cluster.Shards())
	worldPool.mu.Lock()
	// Admit if both budgets hold; a world bigger than the whole PE
	// budget is still admitted when the pool is empty, so thousand-PE
	// sweeps keep exactly one warm world instead of rebuilding per point.
	if worldPool.total >= maxPooledWorlds ||
		(worldPool.pes+n > maxPooledPEs && worldPool.total > 0) {
		worldPool.mu.Unlock()
		w.Cluster.ShutdownSim()
		return
	}
	if worldPool.worlds == nil {
		worldPool.worlds = make(map[string][]*core.World)
	}
	worldPool.worlds[key] = append(worldPool.worlds[key], w)
	worldPool.total++
	worldPool.pes += n
	worldPool.mu.Unlock()
}
