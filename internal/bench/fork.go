package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/sim"
)

// The fork-prefix cache. Every sweep point a figure runs starts with the
// same warm-up — at minimum shmem_init's boot exchange and init barrier,
// for prefix-heavy workloads a whole steady-state fill — and PR 3's
// world pool still replayed that prefix per point. Here the pool grows a
// snapshot cache: the first point of a (shape, prefix, seed) key runs
// the prefix once and captures a core.WorldSnapshot; every later point
// checks out a pooled world, Forks it onto the snapshot (copy-on-write
// heap pages, copied device registers), and runs only its divergent
// body. Fork equivalence (internal/core/fork_test.go) guarantees the
// simulated futures — and therefore the results/ CSVs — are
// byte-identical to the replay path.

// forkOn gates the fork path; see SetWorldFork. Defaults to enabled.
var forkOn atomic.Bool

func init() { forkOn.Store(true) }

// SetWorldFork enables or disables prefix forking for subsequent sweep
// points — the A/B switch for measuring what forking buys. Disabling
// drops the snapshot cache.
func SetWorldFork(on bool) {
	forkOn.Store(on)
	if !on {
		DrainSnapshots()
	}
}

// WorldForkEnabled reports whether sweep points fork cached prefixes.
func WorldForkEnabled() bool { return forkOn.Load() }

// Fork statistics, cumulative since process start.
var (
	forkForks        atomic.Uint64 // sweep points served by forking a snapshot
	forkPrefixBuilds atomic.Uint64 // prefix runs captured into the cache
	forkEventsSaved  atomic.Uint64 // virtual events forks skipped replaying
)

// ForkStats reports how many sweep points forked a cached snapshot, how
// many prefix runs were captured, and how many virtual events the forks
// avoided re-simulating. CoW page-copy counts live in mem.CowCopies.
func ForkStats() (forks, prefixBuilds, eventsSaved uint64) {
	return forkForks.Load(), forkPrefixBuilds.Load(), forkEventsSaved.Load()
}

// CowPagesCopied reports the process-wide copy-on-write page-copy count
// (re-exported from internal/mem so harnesses need only this package).
func CowPagesCopied() uint64 { return mem.CowCopies() }

// maxCachedSnapshots bounds the snapshot cache. Snapshots are plain data
// (no goroutines), so eviction is just a dropped reference; the bound
// only matters for sweeps touching many distinct shapes, which fall back
// to replaying.
const maxCachedSnapshots = 16

// initPrefixKey names the implicit warm-up every world executes anyway:
// shmem_init (boot exchange, match-table setup, init barrier). It is
// seedless — boot takes no workload randomness.
const initPrefixKey = "init"

var snapCache struct {
	mu sync.Mutex
	m  map[string]*core.WorldSnapshot
	// buildMu serializes prefix captures so workers racing to a cold key
	// replay the prefix once, not once per worker.
	buildMu sync.Mutex
}

// snapshotFingerprint extends the world-pool fingerprint with the
// workload-prefix key and seed. Params enter by value, so a sweep that
// mutates its params object between points can never be served a
// stale-prefix snapshot — the mutated value is a different key (the
// same guarantee checkoutWorld enforces for pooled worlds).
func snapshotFingerprint(par *model.Params, n int, opts core.Options, sched sim.SchedulerKind, fab fabric.Kind, prefixKey string, seed int64) string {
	// The cache only ever serves single-simulator worlds (sharded sweep
	// points replay; see runRingWorldPrefixed), hence the fixed shards=1.
	return worldFingerprint(par, n, opts, sched, fab, 1) + fmt.Sprintf("|prefix=%s|seed=%d", prefixKey, seed)
}

// DrainSnapshots discards every cached prefix snapshot.
func DrainSnapshots() {
	snapCache.mu.Lock()
	snapCache.m = nil
	snapCache.mu.Unlock()
}

// cachedSnapshot returns the snapshot for key, or nil.
func cachedSnapshot(key string) *core.WorldSnapshot {
	snapCache.mu.Lock()
	defer snapCache.mu.Unlock()
	return snapCache.m[key]
}

// storeSnapshot inserts snap under key if the cache has room.
func storeSnapshot(key string, snap *core.WorldSnapshot) {
	snapCache.mu.Lock()
	if snapCache.m == nil {
		snapCache.m = make(map[string]*core.WorldSnapshot)
	}
	if len(snapCache.m) < maxCachedSnapshots {
		snapCache.m[key] = snap
	}
	snapCache.mu.Unlock()
}

// prefixSnapshot returns the cached snapshot for the given shape and
// prefix, capturing it on first use by running the prefix on a pooled
// (or fresh) world. A nil prefix is the bare shmem_init warm-up.
func prefixSnapshot(label string, par *model.Params, n int, opts core.Options, prefixKey string, seed int64, prefix func(p *sim.Proc, pe *core.PE)) *core.WorldSnapshot {
	key := snapshotFingerprint(par, n, opts, sim.DefaultScheduler(), Fabric(), prefixKey, seed)
	if snap := cachedSnapshot(key); snap != nil {
		return snap
	}
	snapCache.buildMu.Lock()
	defer snapCache.buildMu.Unlock()
	if snap := cachedSnapshot(key); snap != nil {
		return snap
	}

	worldCount.Add(1)
	forkPrefixBuilds.Add(1)
	w, poolable := checkoutWorld(par, n, opts)
	if w == nil {
		w = buildRingWorld(label, par, n, opts)
		// Park the fresh world's daemon-spawn events and reset, so the
		// snapshot's event count — the replay cost every fork of it
		// reports saving — matches what a recycled pooled world would
		// record. Whether a prefix build hits the pool depends on worker
		// timing; the counts must not.
		if err := w.Cluster.RunSim(); err != nil {
			w.Cluster.ShutdownSim()
			panic(fmt.Sprintf("bench: %s: prefix %q daemon boot: %v", label, prefixKey, err))
		}
		w.Reset()
	}
	run := prefix
	if run == nil {
		run = func(p *sim.Proc, pe *core.PE) {}
	}
	err := w.RunKeep(run)
	worldEvents.Add(w.Cluster.EventsExecuted())
	if err != nil {
		w.Cluster.ShutdownSim()
		panic(fmt.Sprintf("bench: %s: prefix %q: %v", label, prefixKey, err))
	}
	snap := w.Snapshot()
	w.Reset()
	if poolable {
		checkinWorld(w, n, opts)
	} else {
		w.Cluster.ShutdownSim()
	}
	storeSnapshot(key, snap)
	return snap
}

// forkProbeSeed seeds the probe workload's fill data; frozen like every
// other workload seed so A/B runs compare identical simulations.
const forkProbeSeed int64 = 7

// ForkProbePoint runs one point of the prefix-heavy probe workload the
// fork A/B measures: a steady-state fill prefix — rounds of fill-byte
// ring puts with barriers, shared by every point of the sweep — then a
// small divergent body whose put size varies per point. With forking
// enabled the fill simulates once per sweep; without it, every point
// replays the fill from t=0. This is the workload shape the ROADMAP's
// Monte-Carlo campaigns have: a long shared warm-up, a short divergent
// future.
func ForkProbePoint(par *model.Params, n, rounds, fill, point int) {
	label := fmt.Sprintf("fork-probe:%d", point)
	prefixKey := fmt.Sprintf("fill:r=%d:b=%d", rounds, fill)
	prefix := func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, fill)
		rng := SeededRNG(forkProbeSeed + int64(pe.ID())*7919)
		buf := make([]byte, fill)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		pe.BarrierAll(p)
		for r := 0; r < rounds; r++ {
			pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, buf)
			pe.BarrierAll(p)
		}
	}
	body := func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 512)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1%pe.NumPEs(), sym, make([]byte, 64+32*(point%8)))
		}
		pe.BarrierAll(p)
	}
	runRingWorldPrefixed(label, par, n, core.Options{}, prefixKey, forkProbeSeed, prefix, body)
}

// runForked serves one sweep point from the prefix cache: fork a pooled
// world onto the snapshot and run only the divergent body.
func runForked(label string, par *model.Params, n int, opts core.Options, prefixKey string, seed int64, prefix, body func(p *sim.Proc, pe *core.PE)) {
	snap := prefixSnapshot(label, par, n, opts, prefixKey, seed, prefix)
	worldCount.Add(1)
	w, poolable := checkoutWorld(par, n, opts)
	if w == nil {
		w = buildRingWorld(label, par, n, opts)
	}
	w.Fork(snap)
	err := w.RunKeepForked(body)
	forkForks.Add(1)
	forkEventsSaved.Add(snap.Events())
	worldEvents.Add(w.Cluster.EventsExecuted())
	recordPointCost(label, w.Cluster.EventsExecuted())
	if err != nil {
		w.Cluster.ShutdownSim()
		if label != "" {
			panic(fmt.Sprintf("bench: %s: %v", label, err))
		}
		panic(err)
	}
	if !poolable {
		w.Cluster.ShutdownSim()
		return
	}
	w.Reset()
	checkinWorld(w, n, opts)
}
