package bench

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/sim"
)

// The ring-scaling axis. The paper's testbed stops at three hosts; this
// sweep drives the same runtime at 3 → 1024 PEs to measure how the
// simulator itself scales (events/s, worlds/s) as the world grows. The
// workload here is deterministic and wall-clock free — host-side timing
// lives in the cmd layer (cmd/scaleperf, cmd/reproduce -scaling), where
// wall-clock reads are allowed.

// ScalePEs is the default PE-count ladder for the scaling sweep.
func ScalePEs() []int { return []int{3, 16, 64, 256, 1024} }

// scaleRounds is how many neighbour puts each PE issues per world. More
// than one round keeps the inter-barrier phase — the part a sharded
// world executes concurrently — a meaningful fraction of the run.
const scaleRounds = 3

// ScaleWorkload runs one n-PE ring world through the pool: every PE
// allocates a symmetric block, barriers, puts putBytes to its right
// neighbour scaleRounds times (one hop under the paper's rightward
// routing, so total traffic grows linearly with n), and barriers again.
// The world runs in the paper's memcpy mode: CPU-mode window writes are
// in the conservative sharding's exactness domain (PROTOCOL.md §14), so
// this workload's virtual timeline is identical at every -shards
// setting — the property the scaleperf determinism check rides on. The
// world's virtual events and world count accrue to the package tallies,
// which the cmd layer samples around calls to compute events/s.
func ScaleWorkload(par *model.Params, n, putBytes int) {
	ScaleWorkloadTime(par, n, putBytes)
}

// ScaleWorkloadTime runs the scaling workload and returns PE 0's final
// virtual time — the cross-shard determinism witness cmd/scaleperf
// prints and the sharding tests compare across shard counts.
func ScaleWorkloadTime(par *model.Params, n, putBytes int) sim.Time {
	var end sim.Time
	label := "scale/n=" + strconv.Itoa(n)
	runRingWorld(label, par, n, core.Options{Mode: driver.ModeCPU}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, putBytes)
		buf := make([]byte, putBytes)
		pe.BarrierAll(p)
		for r := 0; r < scaleRounds; r++ {
			pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, buf)
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			end = p.Now()
		}
	})
	return end
}
