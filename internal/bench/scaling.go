package bench

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// The ring-scaling axis. The paper's testbed stops at three hosts; this
// sweep drives the same runtime at 3 → 1024 PEs to measure how the
// simulator itself scales (events/s, worlds/s) as the world grows. The
// workload here is deterministic and wall-clock free — host-side timing
// lives in the cmd layer (cmd/scaleperf, cmd/reproduce -scaling), where
// wall-clock reads are allowed.

// ScalePEs is the default PE-count ladder for the scaling sweep.
func ScalePEs() []int { return []int{3, 16, 64, 256, 1024} }

// ScaleWorkload runs one n-PE ring world through the pool: every PE
// allocates a symmetric block, barriers, puts putBytes to its right
// neighbour (one hop under the paper's rightward routing, so total
// traffic grows linearly with n), and barriers again. The world's
// virtual events and world count accrue to the package tallies, which
// the cmd layer samples around calls to compute events/s.
func ScaleWorkload(par *model.Params, n, putBytes int) {
	label := "scale/n=" + strconv.Itoa(n)
	runRingWorld(label, par, n, core.Options{}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, putBytes)
		buf := make([]byte, putBytes)
		pe.BarrierAll(p)
		pe.PutBytes(p, (pe.ID()+1)%pe.NumPEs(), sym, buf)
		pe.BarrierAll(p)
	})
}
