package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/sim"
)

// Application kernels (extension figure E3): three self-verifying mini
// applications — halo-exchange stencil, ring-rotation matmul, bucketed
// integer sort — timed end to end across link-protocol configurations.
// The paper evaluates only microbenchmarks; this measures what its
// prototype would mean for real SPMD codes, and how much the pipelined
// protocol (A6) buys them.

// AppConfig names one runtime configuration for the kernel sweep.
type AppConfig struct {
	Name string
	Opts core.Options
}

// AppConfigs returns the standard sweep: the paper's protocol in both
// transfer modes, plus the pipelined protocol.
func AppConfigs() []AppConfig {
	return []AppConfig{
		{"DMA stop-and-wait", core.Options{}},
		{"memcpy stop-and-wait", core.Options{Mode: driver.ModeCPU}},
		{"DMA pipelined x8", core.Options{Pipeline: 8}},
	}
}

// runApp executes body on an n-host ring and returns the virtual time
// from the post-init barrier to job completion, in microseconds.
func runApp(label string, par *model.Params, n int, opts core.Options, body func(p *sim.Proc, pe *core.PE)) float64 {
	var start, end sim.Time
	runRingWorld(label, par, n, opts, func(p *sim.Proc, pe *core.PE) {
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start = p.Now()
		}
		body(p, pe)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			end = p.Now()
		}
	})
	return end.Sub(start).Microseconds()
}

// AppHeat1D runs a halo-exchange stencil: cells points, steps
// iterations, neighbour halos exchanged with one-sided puts each step.
// It self-verifies conservation (the explicit scheme preserves the
// total) and returns the kernel's virtual time in microseconds.
func AppHeat1D(par *model.Params, opts core.Options, hosts, cells, steps int) float64 {
	if cells%hosts != 0 {
		panic("bench: cells must divide among hosts")
	}
	local := cells / hosts
	label := fmt.Sprintf("app heat1d/hosts=%d/pipeline=%d/%s", hosts, opts.Pipeline, opts.Mode)
	return runApp(label, par, hosts, opts, func(p *sim.Proc, pe *core.PE) {
		n := pe.NumPEs()
		field := pe.MustMalloc(p, (local+2)*8)
		u := make([]float64, local+2)
		for i := 0; i < local; i++ {
			if pe.ID()*local+i == cells/2 {
				u[i+1] = 1000
			}
		}
		core.LocalPut(p, pe, field, u)
		pe.BarrierAll(p)
		left := (pe.ID() - 1 + n) % n
		right := (pe.ID() + 1) % n
		for s := 0; s < steps; s++ {
			core.LocalGet(p, pe, field, u)
			core.Put(p, pe, left, field+core.SymAddr((local+1)*8), u[1:2])
			core.Put(p, pe, right, field, u[local:local+1])
			pe.BarrierAll(p)
			core.LocalGet(p, pe, field, u)
			next := make([]float64, local+2)
			copy(next, u)
			for i := 1; i <= local; i++ {
				next[i] = u[i] + 0.25*(u[i-1]-2*u[i]+u[i+1])
			}
			core.LocalPut(p, pe, field, next)
			pe.BarrierAll(p)
		}
		// Verify conservation via a reduction.
		sum := pe.MustMalloc(p, 8)
		total := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		core.LocalGet(p, pe, field, u)
		var mine float64
		for i := 1; i <= local; i++ {
			mine += u[i]
		}
		core.LocalPut(p, pe, sum, []float64{mine})
		core.Reduce[float64](p, pe, core.OpSum, total, sum, 1)
		var out [1]float64
		core.LocalGet(p, pe, total, out[:])
		if d := out[0] - 1000; d > 1e-6 || d < -1e-6 {
			panic(fmt.Sprintf("bench: heat1d lost energy: total %v", out[0]))
		}
	})
}

// AppMatmul runs the ring-rotation SUMMA matmul on dim x dim matrices
// and self-verifies a probe row against a serial computation. Returns
// virtual microseconds.
func AppMatmul(par *model.Params, opts core.Options, hosts, dim int) float64 {
	if dim%hosts != 0 {
		panic("bench: dim must divide among hosts")
	}
	mb := dim / hosts
	rng := SeededRNG(matmulSeed)
	A := make([]float64, dim*dim)
	B := make([]float64, dim*dim)
	for i := range A {
		A[i] = rng.Float64() - 0.5
		B[i] = rng.Float64() - 0.5
	}
	// Serial probe: row 0 of the product.
	probe := make([]float64, dim)
	for k := 0; k < dim; k++ {
		a := A[k]
		for j := 0; j < dim; j++ {
			probe[j] += a * B[k*dim+j]
		}
	}
	label := fmt.Sprintf("app matmul/hosts=%d/pipeline=%d/%s", hosts, opts.Pipeline, opts.Mode)
	return runApp(label, par, hosts, opts, func(p *sim.Proc, pe *core.PE) {
		me, n := pe.ID(), pe.NumPEs()
		stripe := mb * dim
		next := pe.MustMalloc(p, stripe*8)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		aLocal := A[me*mb*dim : (me+1)*mb*dim]
		cLocal := make([]float64, stripe)
		bStripe := make([]float64, stripe)
		copy(bStripe, B[me*mb*dim:(me+1)*mb*dim])
		left := (me - 1 + n) % n
		for step := 0; step < n; step++ {
			owner := (me + step) % n
			for i := 0; i < mb; i++ {
				for k := 0; k < mb; k++ {
					a := aLocal[i*dim+owner*mb+k]
					for j := 0; j < dim; j++ {
						cLocal[i*dim+j] += a * bStripe[k*dim+j]
					}
				}
			}
			if step == n-1 {
				break
			}
			core.Put(p, pe, left, next, bStripe)
			pe.AddInt64(p, left, sig, 1)
			pe.WaitUntilInt64(p, sig, core.CmpGE, int64(step+1))
			core.LocalGet(p, pe, next, bStripe)
			pe.BarrierAll(p)
		}
		if me == 0 {
			for j := 0; j < dim; j++ {
				if d := cLocal[j] - probe[j]; d > 1e-9 || d < -1e-9 {
					panic(fmt.Sprintf("bench: matmul probe diverged at %d: %v vs %v", j, cLocal[j], probe[j]))
				}
			}
		}
	})
}

// AppIntSort runs the NPB-IS-style bucket sort over hosts*perPE keys and
// self-verifies the bucket boundaries. Returns virtual microseconds.
func AppIntSort(par *model.Params, opts core.Options, hosts, perPE int) float64 {
	const keyRange = 1 << 16
	label := fmt.Sprintf("app intsort/hosts=%d/pipeline=%d/%s", hosts, opts.Pipeline, opts.Mode)
	return runApp(label, par, hosts, opts, func(p *sim.Proc, pe *core.PE) {
		n := pe.NumPEs()
		me := pe.ID()
		rng := peRNG(intsortStride, me)
		mine := make([]int32, perPE)
		for i := range mine {
			mine[i] = int32(rng.Intn(keyRange))
		}
		width := keyRange / n
		buckets := make([][]int32, n)
		for _, k := range mine {
			owner := int(k) / width
			if owner >= n {
				owner = n - 1
			}
			buckets[owner] = append(buckets[owner], k)
		}
		countsSym := pe.MustMalloc(p, n*n*4)
		myCounts := make([]int32, n)
		for d := range buckets {
			myCounts[d] = int32(len(buckets[d]))
		}
		core.LocalPut(p, pe, countsSym+core.SymAddr(me*n*4), myCounts)
		pe.BarrierAll(p)
		pe.FCollectBytes(p, countsSym+core.SymAddr(me*n*4), countsSym, n*4)
		allCounts := make([]int32, n*n)
		core.LocalGet(p, pe, countsSym, allCounts)
		maxRecv := 1
		for dst := 0; dst < n; dst++ {
			total := 0
			for src := 0; src < n; src++ {
				total += int(allCounts[src*n+dst])
			}
			if total > maxRecv {
				maxRecv = total
			}
		}
		recvSym := pe.MustMalloc(p, maxRecv*4)
		sig := pe.MustMalloc(p, 8)
		pe.BarrierAll(p)
		for dst := 0; dst < n; dst++ {
			off := 0
			for src := 0; src < me; src++ {
				off += int(allCounts[src*n+dst])
			}
			if dst == me {
				myOff := 0
				for src := 0; src < me; src++ {
					myOff += int(allCounts[src*n+me])
				}
				core.LocalPut(p, pe, recvSym+core.SymAddr(myOff*4), buckets[me])
				continue
			}
			if len(buckets[dst]) > 0 {
				core.Put(p, pe, dst, recvSym+core.SymAddr(off*4), buckets[dst])
			}
			pe.AddInt64(p, dst, sig, 1)
		}
		pe.WaitUntilInt64(p, sig, core.CmpGE, int64(n-1))
		recvTotal := 0
		for src := 0; src < n; src++ {
			recvTotal += int(allCounts[src*n+me])
		}
		got := make([]int32, recvTotal)
		core.LocalGet(p, pe, recvSym, got)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		lo, hi := int32(me*width), int32((me+1)*width)
		if me == n-1 {
			hi = keyRange
		}
		for _, k := range got {
			if k < lo || k >= hi {
				panic(fmt.Sprintf("bench: pe %d holds out-of-bucket key %d", me, k))
			}
		}
	})
}

// RunAppKernels produces the E3 figure: kernel completion times per
// configuration.
func RunAppKernels(par *model.Params) *Figure {
	f := &Figure{
		ID:     "E3",
		Title:  "Application kernels: completion time by link configuration (4 hosts)",
		XLabel: "Kernel",
		Unit:   "us",
		XNames: map[int]string{1: "heat1d", 2: "matmul", 3: "intsort"},
	}
	cfgs := AppConfigs()
	kernels := []func(cfg AppConfig) float64{
		func(cfg AppConfig) float64 { return AppHeat1D(par, cfg.Opts, 4, 2048, 50) },
		func(cfg AppConfig) float64 { return AppMatmul(par, cfg.Opts, 4, 64) },
		func(cfg AppConfig) float64 { return AppIntSort(par, cfg.Opts, 4, 40_000) },
	}
	type cellKey struct{ ci, ki int }
	var keys []cellKey
	for ci := range cfgs {
		for ki := range kernels {
			keys = append(keys, cellKey{ci, ki})
		}
	}
	vals := runPoints(keys, func(k cellKey) float64 {
		return kernels[k.ki](cfgs[k.ci])
	})
	for ci, cfg := range cfgs {
		series := Series{Label: cfg.Name, Points: make([]Point, 0, len(kernels))}
		for ki := range kernels {
			series.Points = append(series.Points, Point{ki + 1, vals[ci*len(kernels)+ki]})
		}
		f.Series = append(f.Series, series)
	}
	return f
}
