package bench

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fabric"
	"repro/internal/model"
)

// crossFabricGoldenKinds is the backend set archived in results/e6.csv —
// the default -fabric sweep of cmd/reproduce.
func crossFabricGoldenKinds() []fabric.Kind {
	return []fabric.Kind{fabric.KindNTBRing, fabric.KindPCIeSwitch, fabric.KindCXL}
}

// TestGoldenCrossFabric regenerates the E6 cross-fabric figure and
// byte-compares it against the archived results/e6.csv, once per
// snapshot-fork mode: every backend must produce identical virtual-time
// results whether its warm-up prefix is replayed from t=0 or forked
// from a cached snapshot, at any worker count.
func TestGoldenCrossFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-fabric golden sweep in -short mode")
	}
	wasOn := WorldForkEnabled()
	defer SetWorldFork(wasOn)
	for _, forkOn := range []bool{false, true} {
		t.Run(map[bool]string{false: "replay", true: "fork"}[forkOn], func(t *testing.T) {
			SetWorldFork(forkOn)
			DrainWorldPool()
			DrainSnapshots()
			f := RunCrossFabric(model.Default(), crossFabricGoldenKinds())
			name := CSVFileName(f.ID)
			want, err := os.ReadFile(filepath.Join("..", "..", "results", name))
			if err != nil {
				t.Fatalf("%s: no archived golden: %v", f.ID, err)
			}
			got := f.CSV()
			if got != string(want) {
				t.Errorf("%s: regenerated CSV differs from results/%s:\n%s",
					f.ID, name, firstDiff(string(want), got))
			}
		})
	}
}

// TestCrossFabricShapes checks the qualitative relationships the E6
// figure exists to show: every backend moves data (no zero or negative
// throughput anywhere), and at the largest request the load/store CXL
// window — which pays no doorbell interrupts, service-thread wake-ups,
// or stop-and-wait chunk ACKs — beats the multi-hop ring.
func TestCrossFabricShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-fabric sweep in -short mode")
	}
	f := RunCrossFabric(model.Default(), crossFabricGoldenKinds())
	if len(f.Series) != 3 {
		t.Fatalf("expected 3 series, got %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != len(Sizes()) {
			t.Errorf("series %q: %d points, want %d", s.Label, len(s.Points), len(Sizes()))
		}
		for _, pt := range s.Points {
			if pt.Value <= 0 {
				t.Errorf("series %q at %d: non-positive throughput %f", s.Label, pt.Size, pt.Value)
			}
		}
	}
	const big = 512 << 10
	ring, err := f.SeriesByLabel("ntb-ring").At(big)
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := f.SeriesByLabel("cxl").At(big)
	if err != nil {
		t.Fatal(err)
	}
	if cxl <= ring {
		t.Errorf("CXL window (%f MB/s) not faster than the NTB ring (%f MB/s) at 512KB", cxl, ring)
	}
}

// BenchmarkSwitchWorld runs the E6 workload on a pooled 4-host
// PCIe-switch world per op and reports engine throughput as events/s —
// the benchgate floor keeping the switch fabric's flow-network routing
// (per-host uplinks through a shared core) from regressing into
// per-event re-solves.
func BenchmarkSwitchWorld(b *testing.B) {
	DrainWorldPool()
	prev := Fabric()
	SetFabric(fabric.KindPCIeSwitch)
	defer func() {
		SetFabric(prev)
		DrainWorldPool()
	}()
	par := model.Default()
	MeasureCrossFabricPut(par, crossFabricHosts, 64<<10, 2) // build + pool outside the timer
	e0 := VirtualEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeasureCrossFabricPut(par, crossFabricHosts, 64<<10, 2)
	}
	b.StopTimer()
	b.ReportMetric(float64(VirtualEvents()-e0)/b.Elapsed().Seconds(), "events/s")
}
