// Package bench is the experiment harness: for every figure in the
// paper's evaluation (Fig 8: raw NTB transfer rates, Fig 9: OpenSHMEM
// Put/Get latency and throughput, Fig 10: barrier latency) it builds the
// matching workload on the simulated platform and emits the same series
// the paper plots, plus the ablation studies DESIGN.md calls out.
package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// Sizes returns the paper's request-size sweep: 1 KiB to 512 KiB in
// powers of two.
func Sizes() []int {
	out := make([]int, 0, 10)
	for s := 1 << 10; s <= 512<<10; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// SizeLabel formats a byte count the way the paper's axes do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Point is one measurement: Value at request size Size (or at parameter
// X for non-size sweeps).
type Point struct {
	Size  int
	Value float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced table/figure: an identifier matching the paper,
// a set of series over a common sweep, and the measured unit.
type Figure struct {
	ID     string // e.g. "Fig 9(a)"
	Title  string
	XLabel string
	Unit   string         // e.g. "us", "MB/s"
	XNames map[int]string // optional display names for sweep values
	Series []Series
}

// sizeAxis reports whether the figure's sweep axis is byte-size-like;
// hoisted out of the per-row loops so rendering does not re-lowercase
// the axis label for every row.
func (f *Figure) sizeAxis() bool {
	return strings.Contains(strings.ToLower(f.XLabel), "size")
}

// xLabel formats a sweep value; size-like sweeps use KB/MB labels, and
// XNames overrides everything.
func (f *Figure) xLabel(v int, sizeAxis bool) string {
	if name, ok := f.XNames[v]; ok {
		return name
	}
	if sizeAxis {
		return SizeLabel(v)
	}
	return strconv.Itoa(v)
}

// Table renders the figure as an aligned text table, one row per sweep
// value and one column per series — the form EXPERIMENTS.md embeds.
func (f *Figure) Table() string {
	var b strings.Builder
	if len(f.Series) > 0 {
		b.Grow((len(f.Series[0].Points) + 2) * (11 + 17*len(f.Series)))
	}
	fmt.Fprintf(&b, "%s — %s (%s)\n", f.ID, f.Title, f.Unit)
	// Header.
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	sizeAxis := f.sizeAxis()
	for i, pt := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-10s", f.xLabel(pt.Size, sizeAxis))
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %16.2f", s.Points[i].Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	if len(f.Series) > 0 {
		b.Grow((len(f.Series[0].Points) + 1) * (8 + 12*len(f.Series)))
	}
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, pt := range f.Series[0].Points {
		b.WriteString(strconv.Itoa(pt.Size))
		for _, s := range f.Series {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(s.Points[i].Value, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVFileName maps a figure ID to the file name cmd/reproduce archives
// its CSV under in results/ (e.g. "Fig 9 (DMA)" → "fig9_dma.csv"). The
// golden regression test resolves checked-in files with the same rule,
// so the mapping must stay in one place.
func CSVFileName(id string) string {
	return strings.ToLower(strings.NewReplacer(" ", "", "(", "_", ")", "").Replace(id)) + ".csv"
}

// SeriesByLabel returns the series with the given label, or nil.
func (f *Figure) SeriesByLabel(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// At returns the series value at sweep value x (exact match), or an
// error if absent — used by the shape checks in tests and EXPERIMENTS.
func (s *Series) At(x int) (float64, error) {
	for _, pt := range s.Points {
		if pt.Size == x {
			return pt.Value, nil
		}
	}
	return 0, fmt.Errorf("bench: series %q has no point at %d", s.Label, x)
}

// MBps converts (bytes, duration-in-ns) to the paper's MB/s unit
// (decimal megabytes, as PLX and the paper use).
func MBps(bytes int64, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(bytes) / (float64(ns) / 1e9) / 1e6
}
