package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
)

// Golden-number regression tests: EXPERIMENTS.md cites these exact
// virtual-time results; any change to the model, the protocols, or the
// simulator that moves them must be deliberate (update both the table
// and this file in the same change).

func golden(t *testing.T, what string, got, want, tolPct float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero golden value", what)
	}
	if rel := math.Abs(got-want) / want * 100; rel > tolPct {
		t.Errorf("%s drifted: got %.2f, golden %.2f (%.2f%% > %.1f%%) — update EXPERIMENTS.md if intended",
			what, got, want, rel, tolPct)
	}
}

func TestGoldenNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep in -short mode")
	}
	par := model.Default()

	// Fig 8: raw link peak and 1KB point (MB/s).
	golden(t, "fig8 independent 512KB", Fig8Independent(par, 0, 512<<10), 2850.80, 0.5)
	golden(t, "fig8 independent 1KB", Fig8Independent(par, 0, 1<<10), 294.76, 0.5)
	golden(t, "fig8 ring 512KB", Fig8Ring(par, 3, 512<<10)[0], 2705.71, 0.5)

	// Fig 9: put and get anchors (us).
	golden(t, "put DMA 1hop 512KB", MeasureShmemOp(par, OpPut, driver.ModeDMA, 1, 512<<10, 5), 1562.10, 0.5)
	golden(t, "put memcpy 1hop 512KB", MeasureShmemOp(par, OpPut, driver.ModeCPU, 1, 512<<10, 5), 1750.82, 0.5)
	golden(t, "get DMA 1hop 512KB", MeasureShmemOp(par, OpGet, driver.ModeDMA, 1, 512<<10, 5), 13343.77, 0.5)
	golden(t, "get DMA 2hop 512KB", MeasureShmemOp(par, OpGet, driver.ModeDMA, 2, 512<<10, 5), 23087.13, 0.5)

	// Fig 10: barrier latency (us), flat across sizes.
	golden(t, "barrier after 1KB put", MeasureBarrierAfterPut(par, driver.ModeDMA, 1, 1<<10, 5), 1093.80, 1.0)
	golden(t, "barrier after 512KB put", MeasureBarrierAfterPut(par, driver.ModeDMA, 1, 512<<10, 5), 1093.80, 1.0)

	// A6: the pipelined protocol's headline (MB/s at depth 8).
	put8, _ := MeasurePipelined(par, 8, 512<<10, 5)
	golden(t, "pipelined put depth 8", MBps(512<<10, int64(put8*1e3)), 1725.11, 2.0)

	// A1: barrier algorithms at n=8 (us).
	golden(t, "ring barrier n=8", MeasureBarrierLatency(par, core.BarrierRing, 8, 5), 2916.80, 1.0)
	golden(t, "dissemination barrier n=8", MeasureBarrierLatency(par, core.BarrierDissemination, 8, 5), 1225.28, 1.0)
}

// TestGoldenCSVs regenerates the Fig 8, Fig 9, and A6 figure groups and
// byte-compares their CSV renderings against the archived files in
// results/. Unlike TestGoldenNumbers' tolerance bands, this diff is
// exact: the incremental flow solver, solve coalescing, and every other
// hot-path rewrite must not move any virtual-time figure by even one
// nanosecond. A mismatch prints a line-level diff of the first divergent
// figure. The sweep runs once per snapshot-fork mode: the fork path must
// reproduce the replay path's archived bytes, not merely its own.
func TestGoldenCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden CSV sweep in -short mode")
	}
	wasOn := WorldForkEnabled()
	defer SetWorldFork(wasOn)
	for _, forkOn := range []bool{false, true} {
		t.Run(map[bool]string{false: "replay", true: "fork"}[forkOn], func(t *testing.T) {
			SetWorldFork(forkOn)
			DrainWorldPool()
			DrainSnapshots()
			par := model.Default()
			var figs []*Figure
			figs = append(figs, RunFig8(par)...)
			figs = append(figs, RunFig9(par)...)
			figs = append(figs, RunAblationPipeline(par))
			for _, f := range figs {
				name := CSVFileName(f.ID)
				want, err := os.ReadFile(filepath.Join("..", "..", "results", name))
				if err != nil {
					t.Errorf("%s: no archived golden: %v", f.ID, err)
					continue
				}
				got := f.CSV()
				if got == string(want) {
					continue
				}
				t.Errorf("%s: regenerated CSV differs from results/%s:\n%s",
					f.ID, name, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff renders the first line where two CSV bodies diverge.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return "(contents equal?)"
}
