package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// measuredPoint runs one 3-host sweep point through runRingWorld and
// returns a barrier-delimited duration measured on PE 0 — the same
// post-warm-up measurement shape every figure uses, so it must be
// byte-identical between the fork and replay paths.
func measuredPoint(par *model.Params, bytes int) sim.Duration {
	var dur sim.Duration
	runRingWorld(fmt.Sprintf("fork-test:%d", bytes), par, 3, core.Options{}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 4096)
		pe.BarrierAll(p)
		start := p.Now()
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym, make([]byte, bytes))
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			dur = p.Now().Sub(start)
		}
	})
	return dur
}

func TestForkMatchesReplay(t *testing.T) {
	if !WorldForkEnabled() {
		t.Fatal("world forking should be enabled by default")
	}
	par := model.Default()
	sizes := []int{256, 1024, 3000}

	SetWorldFork(false)
	DrainWorldPool()
	want := make([]sim.Duration, len(sizes))
	for i, b := range sizes {
		want[i] = measuredPoint(par, b)
	}

	SetWorldFork(true)
	DrainWorldPool()
	for i, b := range sizes {
		if got := measuredPoint(par, b); got != want[i] {
			t.Errorf("%d-byte point: fork path measured %v, replay path %v", b, got, want[i])
		}
	}
}

func TestForkCacheServesRepeatPoints(t *testing.T) {
	SetWorldFork(true)
	DrainSnapshots()
	DrainWorldPool()
	par := model.Default()

	f0, b0, s0 := ForkStats()
	measuredPoint(par, 512)
	f1, b1, s1 := ForkStats()
	if f1 != f0+1 || b1 != b0+1 {
		t.Fatalf("cold point: forks %d->%d builds %d->%d, want one of each", f0, f1, b0, b1)
	}
	measuredPoint(par, 768)
	f2, b2, s2 := ForkStats()
	if f2 != f1+1 || b2 != b1 {
		t.Fatalf("warm point: forks %d->%d builds %d->%d, want a fork and no build", f1, f2, b1, b2)
	}
	if s1 <= s0 || s2 <= s1 {
		t.Fatalf("events-saved did not advance: %d -> %d -> %d", s0, s1, s2)
	}
}

func TestForkCacheDetectsMutatedParams(t *testing.T) {
	// The PR 3 stale-params scenario, fork edition: a sweep reusing one
	// params clone mutates it between points. The snapshot key carries
	// the params by value, so the mutated point must capture a new
	// prefix — never fork the stale one — and still measure exactly what
	// the replay path measures for the mutated params.
	SetWorldFork(true)
	DrainSnapshots()
	DrainWorldPool()
	par := model.Default().Clone()

	measuredPoint(par, 512)
	par.PutChunk *= 2
	_, b0, _ := ForkStats()
	got := measuredPoint(par, 512)
	_, b1, _ := ForkStats()
	if b1 != b0+1 {
		t.Fatalf("mutated params did not force a new prefix capture (builds %d->%d)", b0, b1)
	}

	SetWorldFork(false)
	defer SetWorldFork(true)
	DrainWorldPool()
	if want := measuredPoint(par, 512); got != want {
		t.Fatalf("mutated-params fork measured %v, replay path %v", got, want)
	}
}

func TestForkProbePointBothPaths(t *testing.T) {
	par := model.Default()
	SetWorldFork(true)
	DrainSnapshots()
	DrainWorldPool()
	f0, _, _ := ForkStats()
	for pt := 0; pt < 3; pt++ {
		ForkProbePoint(par, 3, 2, 8192, pt)
	}
	if f1, _, _ := ForkStats(); f1 != f0+3 {
		t.Fatalf("probe points forked %d times, want 3", f1-f0)
	}
	SetWorldFork(false)
	defer SetWorldFork(true)
	for pt := 0; pt < 3; pt++ {
		ForkProbePoint(par, 3, 2, 8192, pt)
	}
}

// BenchmarkWorldFork measures fork-path sweep-point throughput on the
// prefix-heavy probe: each iteration checks out a pooled world, forks it
// onto the cached fill snapshot, and runs one divergent body. Gated in
// bench_baseline.json on allocs/op and forks/s.
func BenchmarkWorldFork(b *testing.B) {
	par := model.Default()
	SetWorldFork(true)
	DrainSnapshots()
	DrainWorldPool()
	defer DrainWorldPool()
	// Warm the snapshot cache and the world pool.
	ForkProbePoint(par, 3, 4, 32768, 0)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForkProbePoint(par, 3, 4, 32768, 1)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "forks/s")
}
