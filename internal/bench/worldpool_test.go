package bench

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// runTinyWorld drives one labelled 3-host world through runRingWorld
// and returns the completion time observed by PE 0.
func runTinyWorld(par *model.Params, opts core.Options) sim.Time {
	var end sim.Time
	runRingWorld("worldpool-test", par, 3, opts, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, 4096)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			pe.PutBytes(p, 1, sym, make([]byte, 4096))
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			end = p.Now()
		}
	})
	return end
}

func TestWorldPoolRecyclesAndMatchesFresh(t *testing.T) {
	if !WorldPoolEnabled() {
		t.Fatal("world pool should be enabled by default")
	}
	// Pin the replay path: this test asserts the pool's own hit/miss
	// accounting, which the fork path overlays with prefix-build traffic
	// (covered by the fork cache tests).
	SetWorldFork(false)
	defer SetWorldFork(true)
	DrainWorldPool()
	par := model.Default()

	h0, m0 := WorldPoolStats()
	first := runTinyWorld(par, core.Options{})
	h1, m1 := WorldPoolStats()
	if h1 != h0 || m1 != m0+1 {
		t.Fatalf("first run: hits %d->%d misses %d->%d, want one miss", h0, h1, m0, m1)
	}
	second := runTinyWorld(par, core.Options{})
	h2, m2 := WorldPoolStats()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("second run: hits %d->%d misses %d->%d, want one hit", h1, h2, m1, m2)
	}
	if first != second {
		t.Fatalf("recycled world diverged: fresh %v, pooled %v", first, second)
	}

	// Pool disabled: same virtual result, no pool traffic.
	SetWorldPool(false)
	defer SetWorldPool(true)
	h3, m3 := WorldPoolStats()
	bare := runTinyWorld(par, core.Options{})
	if h4, m4 := WorldPoolStats(); h4 != h3 || m4 != m3 {
		t.Fatalf("disabled pool still counted traffic: hits %d->%d misses %d->%d", h3, h4, m3, m4)
	}
	if bare != first {
		t.Fatalf("pool on/off diverged: %v vs %v", first, bare)
	}
}

func TestWorldPoolDetectsMutatedParams(t *testing.T) {
	SetWorldFork(false)
	defer SetWorldFork(true)
	DrainWorldPool()
	par := model.Default().Clone()
	runTinyWorld(par, core.Options{})

	// A sweep reusing one clone across points mutates it between runs;
	// the pooled world's own params fingerprint no longer matches and
	// checkout must treat it as a miss, not hand back a stale world.
	par.PutChunk *= 2
	h0, m0 := WorldPoolStats()
	runTinyWorld(par, core.Options{})
	h1, m1 := WorldPoolStats()
	if h1 != h0 {
		t.Fatalf("stale-params world was reused (hits %d->%d)", h0, h1)
	}
	if m1 != m0+1 {
		t.Fatalf("stale-params checkout not counted as a miss (%d->%d)", m0, m1)
	}
}

func TestRunPointsOrderedCostOrderIsInvisible(t *testing.T) {
	points := []int{10, 20, 30, 40, 50}
	fn := func(x int) int { return x * x }
	want := RunPoints(context.Background(), 1, points, fn)

	for _, costs := range [][]float64{
		{1, 2, 3, 4, 5}, // ascending: claims run reverse
		{5, 4, 3, 2, 1}, // descending: claims run forward
		{3, 3, 3, 3, 3}, // ties: stable order by index
		{2, 9},          // wrong length: ignored
		nil,             // absent
	} {
		for _, par := range []int{1, 4} {
			got := RunPointsOrdered(context.Background(), par, points, costs, fn)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("costs=%v par=%d: result[%d] = %d, want %d", costs, par, i, got[i], want[i])
				}
			}
		}
	}
}
