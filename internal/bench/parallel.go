package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// The parallel experiment engine. Every figure, ablation, and extension
// is produced by running many independent deterministic worlds; each
// world stays single-threaded and bit-identical, and parallelism is
// strictly across worlds. Results are slotted by point index, never by
// completion order, so a sweep's output is byte-for-byte identical at
// any worker count.

// parallelism is the worker count used by the Run* sweeps; zero means
// "use runtime.GOMAXPROCS(0)".
var parallelism atomic.Int64

// SetParallelism sets the worker count for subsequent figure sweeps.
// n < 1 resets to the default (one worker per available CPU).
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the worker count figure sweeps will use.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	// The one sanctioned core-count read: host parallelism is bench
	// policy (how many worlds run at once), never simulation state —
	// results stay byte-identical at any worker count.
	//ntblint:cpupolicy
	return runtime.GOMAXPROCS(0)
}

// benchShards holds the requested conservative-DES shard count for
// subsequent world builds; values below 2 mean "one shard" (the
// ordinary single-simulator world). The request is a ceiling, not a
// mandate: effectiveShards decides per world whether sharding applies.
var benchShards atomic.Int64

// SetShards requests that subsequent world builds split each world
// across n conservative-DES shards (see fabric.Config.Shards and
// sim.ShardGroup). n < 2 restores the default single-simulator world.
// Small worlds, non-shardable fabrics, and pipelined-protocol worlds
// silently stay unsharded — see effectiveShards for the policy.
func SetShards(n int) {
	if n < 2 {
		n = 1
	}
	benchShards.Store(int64(n))
}

// Shards reports the requested shard count (1 when unset).
func Shards() int {
	if n := int(benchShards.Load()); n > 1 {
		return n
	}
	return 1
}

// ValidateShards checks a -shards flag value at the command layer, so a
// bad combination is reported with flag context instead of surfacing as
// a mid-sweep panic or being silently ignored. shards == 1 is always
// valid; higher counts need a point-to-point fabric.
func ValidateShards(shards int, kind fabric.Kind) error {
	if shards < 1 {
		return fmt.Errorf("-shards=%d: need at least 1 shard", shards)
	}
	if shards == 1 {
		return nil
	}
	if !fabric.Shardable(kind) {
		return fmt.Errorf("-shards=%d: the %s fabric cannot shard (shared fabric core); run with -shards 1", shards, kind)
	}
	return nil
}

// minShardHosts is the smallest world the bench layer will shard. Below
// it the per-window coordination overhead outweighs any parallelism, and
// keeping the paper-scale figure worlds (≤ 8 hosts) on one simulator
// means their golden CSVs are produced by literally the same code path
// at any -shards setting.
const minShardHosts = 16

// effectiveShards resolves the requested shard count for one world
// shape: 1 unless sharding was requested, the world is at least
// minShardHosts, the selected fabric has point-to-point cables to cut
// (fabric.Shardable), and the link protocol is the stop-and-wait
// scratchpad exchange (the pipelined header-in-window protocol's
// timing is only exact on a shared simulator). The result is clamped
// to the host count.
func effectiveShards(n int, opts core.Options) int {
	s := Shards()
	if s < 2 || n < minShardHosts || opts.Pipeline >= 2 || !fabric.Shardable(Fabric()) {
		return 1
	}
	if s > n {
		s = n
	}
	return s
}

// benchFabric selects which fabric backend subsequent world builds use;
// the zero value is fabric.KindNTBRing, the reference topology every
// golden CSV was produced over.
var benchFabric atomic.Int64

// SetFabric selects the fabric backend for subsequent figure sweeps.
// Pooled worlds and cached prefix snapshots are keyed by fabric kind, so
// flipping the backend mid-process can never hand a sweep a world of the
// wrong topology.
func SetFabric(k fabric.Kind) { benchFabric.Store(int64(k)) }

// Fabric reports the fabric backend sweeps will build worlds over.
func Fabric() fabric.Kind { return fabric.Kind(benchFabric.Load()) }

// worldCount tallies simulated worlds across all sweeps, for the
// harness's worlds-per-second summary.
var worldCount atomic.Uint64

// WorldsSimulated reports how many simulation worlds have been built and
// run by this package since process start (or the last reset).
func WorldsSimulated() uint64 { return worldCount.Load() }

// ResetWorldCount zeroes the world tally (test/tool hook).
func ResetWorldCount() { worldCount.Store(0) }

// CountWorld records one externally simulated world in the tally. The
// bench package's own helpers count automatically; commands that build
// worlds outside this package can keep the summary honest with this.
func CountWorld() { worldCount.Add(1) }

// worldEvents tallies virtual events dispatched across all bench worlds —
// the kernel-level cost of everything simulated so far.
var worldEvents atomic.Uint64

// VirtualEvents reports the total virtual events executed by worlds run
// through this package since process start.
func VirtualEvents() uint64 { return worldEvents.Load() }

// pointCosts records the measured virtual-event count of each labelled
// world run, keyed by the runRingWorld label. Sweeps consult these to
// sanity-check the static cost estimates they hand RunPointsOrdered.
var pointCosts struct {
	sync.Mutex
	m map[string]uint64
}

func recordPointCost(label string, events uint64) {
	if label == "" {
		return
	}
	pointCosts.Lock()
	if pointCosts.m == nil {
		pointCosts.m = make(map[string]uint64)
	}
	pointCosts.m[label] += events
	pointCosts.Unlock()
}

// PointCosts returns a copy of the per-label virtual-event tallies
// accumulated by labelled world runs.
func PointCosts() map[string]uint64 {
	pointCosts.Lock()
	defer pointCosts.Unlock()
	out := make(map[string]uint64, len(pointCosts.m))
	for k, v := range pointCosts.m {
		out[k] = v
	}
	return out
}

// RunPoints fans fn over points across par workers and returns the
// results in point order. fn must be safe to call concurrently for
// distinct points (the Run* sweeps satisfy this: every point builds its
// own simulator). A cancelled ctx stops new points from being claimed;
// results for unclaimed points are left as zero values. A panic in fn is
// re-raised on the calling goroutine after all workers have stopped.
func RunPoints[T, R any](ctx context.Context, par int, points []T, fn func(T) R) []R {
	return RunPointsOrdered(ctx, par, points, nil, fn)
}

// RunPointsOrdered is RunPoints with cost-aware claiming: costs[i]
// estimates point i's simulation cost (any monotone proxy — bytes moved,
// virtual events from a previous run), and workers claim points
// largest-estimate-first so no worker is left grinding through the
// heaviest point after its siblings have drained the cheap ones. Results
// are still slotted by original point index, so the returned slice — and
// any figure built from it — is byte-identical to RunPoints at any
// worker count and any cost vector. A nil or mis-sized costs falls back
// to claim-in-index-order.
func RunPointsOrdered[T, R any](ctx context.Context, par int, points []T, costs []float64, fn func(T) R) []R {
	results := make([]R, len(points))
	if len(points) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if par < 1 {
		par = 1
	}
	if par > len(points) {
		par = len(points)
	}
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	if len(costs) == len(points) {
		sort.SliceStable(order, func(a, b int) bool {
			return costs[order[a]] > costs[order[b]]
		})
	}
	if par == 1 {
		// Serial fast path: no goroutines, same claim order.
		for _, i := range order {
			if ctx.Err() != nil {
				break
			}
			results[i] = fn(points[i])
		}
		return results
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(order) || ctx.Err() != nil {
					return
				}
				i := order[c]
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("bench: point %d panicked: %v", i, r))
						}
					}()
					results[i] = fn(points[i])
				}()
				if panicked.Load() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return results
}

// runPoints is RunPoints with the package's configured worker count and
// no cancellation — the form every figure sweep uses.
func runPoints[T, R any](points []T, fn func(T) R) []R {
	return RunPoints(context.Background(), Parallelism(), points, fn)
}

// runPointsCost is runPoints with a per-point cost estimate, for sweeps
// whose points have predictably uneven weight (latency sweeps over block
// sizes, mostly). cost receives the point's index and value.
func runPointsCost[T, R any](points []T, cost func(i int, pt T) float64, fn func(T) R) []R {
	costs := make([]float64, len(points))
	for i, pt := range points {
		costs[i] = cost(i, pt)
	}
	return RunPointsOrdered(context.Background(), Parallelism(), points, costs, fn)
}

// runRingWorld drives body on every PE of an n-host ring world to
// completion. With the world pool enabled (the default) it checks out a
// warm world for the (params, n, options) shape — or builds one on a
// miss — and after a clean run resets and returns it; reset worlds are
// indistinguishable from fresh ones (see core.World.Reset), so results
// do not depend on pool state. With the pool disabled every run builds
// and tears down its own world, as the pre-pool engine did.
//
// label names the figure/point for panic attribution and the per-point
// virtual-event record. runRingWorld panics on simulation error
// (measurement harnesses have no recovery story) and counts the world
// for the throughput summary.
func runRingWorld(label string, par *model.Params, n int, opts core.Options, body func(p *sim.Proc, pe *core.PE)) {
	runRingWorldPrefixed(label, par, n, opts, initPrefixKey, 0, nil, body)
}

// runRingWorldPrefixed drives prefix-then-body on an n-host ring world.
// With forking enabled (the default) the prefix — implicitly including
// shmem_init — is simulated once per (shape, prefixKey, seed) and every
// further point forks the captured snapshot, running only body; with it
// disabled the whole prefix replays from t=0 per point, which is the
// PR 3 behaviour and the A/B baseline. A nil prefix means the bare
// shmem_init warm-up. prefixKey with seed must uniquely name what
// prefix simulates; two different prefix closures must never share a
// key for the same shape.
func runRingWorldPrefixed(label string, par *model.Params, n int, opts core.Options, prefixKey string, seed int64, prefix, body func(p *sim.Proc, pe *core.PE)) {
	// The fork-prefix cache serves single-simulator worlds only: forking
	// is a per-shape warm-up amortisation, and a sharded world's whole
	// point is to spend its cores inside one big run, so sharded points
	// replay from t=0 (core.Fork itself works sharded — see
	// internal/core/sharddiff_test.go — but the cache stays simple).
	if forkOn.Load() && effectiveShards(n, opts) == 1 {
		runForked(label, par, n, opts, prefixKey, seed, prefix, body)
		return
	}
	combined := body
	if prefix != nil {
		combined = func(p *sim.Proc, pe *core.PE) {
			prefix(p, pe)
			body(p, pe)
		}
	}
	runRingWorldReplay(label, par, n, opts, combined)
}

// buildRingWorld constructs a fresh n-host world over the selected
// fabric backend (the ring by default — the name survives from when the
// ring was the only topology), panicking with the point label on
// topology errors.
func buildRingWorld(label string, par *model.Params, n int, opts core.Options) *core.World {
	cfg := fabric.Config{Par: par, Hosts: n, Kind: Fabric(), Shards: effectiveShards(n, opts)}
	if cfg.Shards == 1 {
		// A sharded cluster builds its member simulators itself; only the
		// single-simulator world takes one from the caller.
		cfg.Sim = sim.New()
	}
	c, err := fabric.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", label, err))
	}
	return core.NewWorld(c, opts)
}

// runRingWorldReplay is the no-fork path: simulate everything from t=0.
func runRingWorldReplay(label string, par *model.Params, n int, opts core.Options, body func(p *sim.Proc, pe *core.PE)) {
	worldCount.Add(1)
	w, poolable := checkoutWorld(par, n, opts)
	if w == nil {
		w = buildRingWorld(label, par, n, opts)
	}
	err := w.RunKeep(body)
	worldEvents.Add(w.Cluster.EventsExecuted())
	recordPointCost(label, w.Cluster.EventsExecuted())
	if err != nil {
		// A failed world is not resettable; release its goroutines
		// before surfacing the failure with its point label.
		w.Cluster.ShutdownSim()
		if label != "" {
			panic(fmt.Sprintf("bench: %s: %v", label, err))
		}
		panic(err)
	}
	if !poolable {
		w.Cluster.ShutdownSim()
		return
	}
	w.Reset()
	checkinWorld(w, n, opts)
}
