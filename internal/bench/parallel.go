package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/sim"
)

// The parallel experiment engine. Every figure, ablation, and extension
// is produced by running many independent deterministic worlds; each
// world stays single-threaded and bit-identical, and parallelism is
// strictly across worlds. Results are slotted by point index, never by
// completion order, so a sweep's output is byte-for-byte identical at
// any worker count.

// parallelism is the worker count used by the Run* sweeps; zero means
// "use runtime.GOMAXPROCS(0)".
var parallelism atomic.Int64

// SetParallelism sets the worker count for subsequent figure sweeps.
// n < 1 resets to the default (one worker per available CPU).
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the worker count figure sweeps will use.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// worldCount tallies simulated worlds across all sweeps, for the
// harness's worlds-per-second summary.
var worldCount atomic.Uint64

// WorldsSimulated reports how many simulation worlds have been built and
// run by this package since process start (or the last reset).
func WorldsSimulated() uint64 { return worldCount.Load() }

// ResetWorldCount zeroes the world tally (test/tool hook).
func ResetWorldCount() { worldCount.Store(0) }

// CountWorld records one externally simulated world in the tally. The
// bench package's own helpers count automatically; commands that build
// worlds outside this package can keep the summary honest with this.
func CountWorld() { worldCount.Add(1) }

// RunPoints fans fn over points across par workers and returns the
// results in point order. fn must be safe to call concurrently for
// distinct points (the Run* sweeps satisfy this: every point builds its
// own simulator). A cancelled ctx stops new points from being claimed;
// results for unclaimed points are left as zero values. A panic in fn is
// re-raised on the calling goroutine after all workers have stopped.
func RunPoints[T, R any](ctx context.Context, par int, points []T, fn func(T) R) []R {
	results := make([]R, len(points))
	if len(points) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if par < 1 {
		par = 1
	}
	if par > len(points) {
		par = len(points)
	}
	if par == 1 {
		// Serial fast path: no goroutines, same claim order.
		for i, pt := range points {
			if ctx.Err() != nil {
				break
			}
			results[i] = fn(pt)
		}
		return results
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) || ctx.Err() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("bench: point %d panicked: %v", i, r))
						}
					}()
					results[i] = fn(points[i])
				}()
				if panicked.Load() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return results
}

// runPoints is RunPoints with the package's configured worker count and
// no cancellation — the form every figure sweep uses.
func runPoints[T, R any](points []T, fn func(T) R) []R {
	return RunPoints(context.Background(), Parallelism(), points, fn)
}

// runRingWorld builds an n-host ring world, drives body on every PE to
// completion, and tears the simulator down. It panics on simulation
// error (measurement harnesses have no recovery story) and counts the
// world for the throughput summary.
func runRingWorld(par *model.Params, n int, opts core.Options, body func(p *sim.Proc, pe *core.PE)) {
	worldCount.Add(1)
	s := sim.New()
	c := fabric.NewRing(s, par, n)
	w := core.NewWorld(c, opts)
	if err := w.Run(body); err != nil {
		panic(err)
	}
}
