package bench

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// Black-box scheduler differential: the same seeded multi-process
// workload must produce the identical dispatch trace — which process
// ran, at what virtual time, in what order — under the ladder queue and
// the reference heap. This is the whole-simulator complement to the
// queue-level property test in internal/sim.

type dispatchEntry struct {
	proc int
	step int
	now  sim.Time
}

// schedTrace runs nProcs processes of steps seeded sleep/yield rounds
// on a simulator with the given scheduler and returns the dispatch
// trace. Sleeps mix zero (same-timestamp ties through the ready FIFO),
// short, and long horizons so events cross every queue tier.
func schedTrace(kind sim.SchedulerKind, seed int64, nProcs, steps int, reset bool) []dispatchEntry {
	s := sim.NewWith(kind)
	spawn := func(tr *[]dispatchEntry) {
		for i := 0; i < nProcs; i++ {
			i := i
			rng := SeededRNG(seed + int64(i)*intsortStride)
			s.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
				for step := 0; step < steps; step++ {
					var d sim.Duration
					switch rng.Intn(4) {
					case 0:
						d = 0 // tie: exercises same-timestamp FIFO order
					case 1:
						d = sim.Duration(rng.Int63n(100))
					case 2:
						d = sim.Duration(rng.Int63n(50_000))
					default:
						d = sim.Duration(rng.Int63n(10_000_000))
					}
					p.Sleep(d)
					*tr = append(*tr, dispatchEntry{i, step, p.Now()})
				}
			})
		}
	}
	var tr []dispatchEntry
	spawn(&tr)
	if err := s.Run(); err != nil {
		panic(err)
	}
	if reset {
		// Rerun the identical workload on the reset simulator; the
		// second trace replaces the first and must match a fresh run.
		s.Reset()
		tr = tr[:0]
		spawn(&tr)
		if err := s.Run(); err != nil {
			panic(err)
		}
	}
	s.Shutdown()
	return tr
}

func diffTraces(t *testing.T, label string, want, got []dispatchEntry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: trace length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: dispatch %d diverged: %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

func TestSchedulersDispatchIdentically(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		ladder := schedTrace(sim.SchedulerLadder, seed, 12, 400, false)
		heap := schedTrace(sim.SchedulerHeap, seed, 12, 400, false)
		diffTraces(t, fmt.Sprintf("seed %d ladder-vs-heap", seed), heap, ladder)
	}
}

func TestSchedulerResetRerunEquivalence(t *testing.T) {
	for _, kind := range []sim.SchedulerKind{sim.SchedulerLadder, sim.SchedulerHeap} {
		fresh := schedTrace(kind, 42, 8, 300, false)
		rerun := schedTrace(kind, 42, 8, 300, true)
		diffTraces(t, fmt.Sprintf("%v reset-rerun", kind), fresh, rerun)
	}
}

// TestThousandPEWorld is the scaling acceptance check: a 1024-PE ring
// world constructs, runs the scaling workload, resets, and recycles
// through the world pool.
func TestThousandPEWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-PE world in -short mode")
	}
	DrainWorldPool()
	h0, m0 := WorldPoolStats()
	ScaleWorkload(model.Default(), 1024, 1024)
	ScaleWorkload(model.Default(), 1024, 1024)
	h1, m1 := WorldPoolStats()
	if h1-h0 < 1 {
		t.Errorf("second 1024-PE run missed the pool (hits %d, misses %d): PE budget rejects big worlds", h1-h0, m1-m0)
	}
	DrainWorldPool()
}

// BenchmarkScaleWorld256 runs the scaling workload on a pooled 256-PE
// ring world per op and reports engine throughput as events/s. The
// benchgate floor on that metric is the scaling guard: it fails CI if
// per-event dispatch cost at 256 PEs regresses by an order of
// magnitude (a super-linear scheduler would).
func BenchmarkScaleWorld256(b *testing.B) {
	DrainWorldPool()
	par := model.Default()
	ScaleWorkload(par, 256, 4096) // build + pool the world outside the timer
	e0 := VirtualEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScaleWorkload(par, 256, 4096)
	}
	b.StopTimer()
	b.ReportMetric(float64(VirtualEvents()-e0)/b.Elapsed().Seconds(), "events/s")
	DrainWorldPool()
}
