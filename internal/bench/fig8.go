package bench

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/ntb"
	"repro/internal/sim"
)

// Fig 8: raw data-transfer rate of the PCIe NTB fabric, independent
// two-host link versus all links of the three-host ring transferring
// simultaneously, for block sizes 1 KiB - 512 KiB moved by the NTB DMA
// engine. The paper plots each host pair (a-c) and the network total (d).

// fig8Reps is how many blocks each sender moves per measurement; enough
// to amortise start-up transients at every size.
const fig8Reps = 50

// rawDMA moves reps blocks of size bytes from host src's right adapter
// and returns the achieved throughput in MB/s.
func rawDMAStream(p *sim.Proc, port *ntb.Port, size, reps int) float64 {
	src := make([]byte, size)
	start := p.Now()
	for r := 0; r < reps; r++ {
		port.DMA().Submit(p, ntb.Desc{Region: ntb.RegionData, Off: 0, Src: src, Bytes: size}).Wait(p)
	}
	return MBps(int64(size)*int64(reps), int64(p.Now().Sub(start)))
}

// Fig8Independent measures one isolated NTB link (two hosts, single
// cable) at the given block size. linkIdx selects which of the ring's
// chipset-pairings the isolated link uses, so each Fig 8 sub-plot
// compares a pair against itself as the paper does.
func Fig8Independent(par *model.Params, linkIdx, size int) float64 {
	pp := par.Clone()
	pp.DMAEngineBW = par.LinkEngineBW(linkIdx)
	pp.ChipsetSpread = nil
	worldCount.Add(1)
	s := sim.New()
	c, err := fabric.NewPair(s, pp)
	if err != nil {
		panic(fmt.Sprintf("bench: fig8-independent link=%d: %v", linkIdx, err))
	}
	var tput float64
	s.Go("sender", func(p *sim.Proc) {
		tput = rawDMAStream(p, c.Hosts[0].Right, size, fig8Reps)
	})
	if err := s.Run(); err != nil {
		panic(fmt.Sprintf("bench: fig8-independent link=%d size=%d: %v", linkIdx, size, err))
	}
	worldEvents.Add(s.EventsExecuted())
	s.Shutdown()
	return tput
}

// Fig8Ring measures all n links of an n-host ring transferring
// simultaneously (host i -> host i+1) at the given block size. It
// returns the per-link throughputs in link order.
func Fig8Ring(par *model.Params, n, size int) []float64 {
	worldCount.Add(1)
	s := sim.New()
	c, err := fabric.NewRing(s, par, n)
	if err != nil {
		panic(fmt.Sprintf("bench: fig8-ring n=%d: %v", n, err))
	}
	tputs := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		s.Go(fmt.Sprintf("sender%d", i), func(p *sim.Proc) {
			tputs[i] = rawDMAStream(p, c.Hosts[i].Right, size, fig8Reps)
		})
	}
	if err := s.Run(); err != nil {
		panic(fmt.Sprintf("bench: fig8-ring n=%d size=%d: %v", n, size, err))
	}
	worldEvents.Add(s.EventsExecuted())
	s.Shutdown()
	return tputs
}

// RunFig8 reproduces Fig 8(a)-(c) (per-pair transfer rate, independent
// vs ring) and Fig 8(d) (total network transfer rate).
func RunFig8(par *model.Params) []*Figure {
	sizes := Sizes()
	indepPerLink := make([][]Point, 3)
	ringPerLink := make([][]Point, 3)
	totalIndep := make([]Point, 0, len(sizes))
	totalRing := make([]Point, 0, len(sizes))

	// One parallel cell per block size: the ring measurement plus the
	// three isolated-link baselines.
	type cell struct {
		ring  []float64
		indep [3]float64
	}
	cells := runPointsCost(sizes, func(_ int, size int) float64 {
		return float64(size)
	}, func(size int) cell {
		var c cell
		c.ring = Fig8Ring(par, 3, size)
		for l := 0; l < 3; l++ {
			c.indep[l] = Fig8Independent(par, l, size)
		}
		return c
	})
	for si, size := range sizes {
		c := cells[si]
		var sumI, sumR float64
		for l := 0; l < 3; l++ {
			indepPerLink[l] = append(indepPerLink[l], Point{size, c.indep[l]})
			ringPerLink[l] = append(ringPerLink[l], Point{size, c.ring[l]})
			sumI += c.indep[l]
			sumR += c.ring[l]
		}
		totalIndep = append(totalIndep, Point{size, sumI})
		totalRing = append(totalRing, Point{size, sumR})
	}

	var figs []*Figure
	pairNames := []string{"Host0 and Host1", "Host1 and Host2", "Host2 and Host0"}
	for l, name := range pairNames {
		figs = append(figs, &Figure{
			ID:     fmt.Sprintf("Fig 8(%c)", 'a'+l),
			Title:  "Data Transfer Rate between " + name + " (Independent vs. Ring)",
			XLabel: "Request Size",
			Unit:   "MB/s",
			Series: []Series{
				{Label: "Independent", Points: indepPerLink[l]},
				{Label: "Ring", Points: ringPerLink[l]},
			},
		})
	}
	figs = append(figs, &Figure{
		ID:     "Fig 8(d)",
		Title:  "Total Data Transfer Rate of the Network",
		XLabel: "Request Size",
		Unit:   "MB/s",
		Series: []Series{
			{Label: "Independent x3", Points: totalIndep},
			{Label: "Ring total", Points: totalRing},
		},
	})
	return figs
}
