package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/sim"
)

// Ablation studies beyond the paper's evaluation, indexed in DESIGN.md:
//
//	A1: barrier-algorithm choice (the paper argues the ring start/end
//	    protocol suits the switchless fabric; we price the alternatives);
//	A2: Get stop-and-wait chunk size (the protocol constant that sets
//	    the paper's Get throughput ceiling);
//	A3: ring-size scaling of put/get latency (hop sensitivity beyond the
//	    3-host testbed).

// MeasureBarrierLatency returns the mean barrier latency (us) for a ring
// of n hosts under the given algorithm.
func MeasureBarrierLatency(par *model.Params, algo core.BarrierAlgo, n, reps int) float64 {
	var total sim.Duration
	label := fmt.Sprintf("barrier %s/n=%d", algo, n)
	runRingWorld(label, par, n, core.Options{Barrier: algo}, func(p *sim.Proc, pe *core.PE) {
		pe.BarrierAll(p)
		for r := 0; r < reps; r++ {
			start := p.Now()
			pe.BarrierAll(p)
			if pe.ID() == 0 {
				total += p.Now().Sub(start)
			}
		}
	})
	return total.Microseconds() / float64(reps)
}

// RunAblationBarrierAlgo sweeps barrier algorithms over ring sizes 2-8.
func RunAblationBarrierAlgo(par *model.Params) *Figure {
	f := &Figure{
		ID:     "A1",
		Title:  "Barrier algorithm latency vs ring size",
		XLabel: "Hosts",
		Unit:   "us",
	}
	algos := []core.BarrierAlgo{core.BarrierRing, core.BarrierCentral, core.BarrierDissemination}
	type cellKey struct {
		algo core.BarrierAlgo
		n    int
	}
	var keys []cellKey
	for _, algo := range algos {
		for n := 2; n <= 8; n++ {
			keys = append(keys, cellKey{algo, n})
		}
	}
	vals := runPoints(keys, func(k cellKey) float64 {
		return MeasureBarrierLatency(par, k.algo, k.n, 10)
	})
	for ai, algo := range algos {
		series := Series{Label: algo.String(), Points: make([]Point, 0, 7)}
		for ni := 0; ni < 7; ni++ {
			series.Points = append(series.Points, Point{ni + 2, vals[ai*7+ni]})
		}
		f.Series = append(f.Series, series)
	}
	return f
}

// RunAblationGetChunk sweeps the Get protocol's stop-and-wait chunk size
// and reports Get throughput at 512 KiB, 1 hop, DMA mode.
func RunAblationGetChunk(par *model.Params) *Figure {
	f := &Figure{
		ID:     "A2",
		Title:  "Get throughput vs stop-and-wait chunk size (512KB, 1 hop, DMA)",
		XLabel: "Chunk Size",
		Unit:   "MB/s",
	}
	series := Series{Label: "Get 512KB"}
	const size = 512 << 10
	var chunks []int
	for chunk := 2 << 10; chunk <= 256<<10; chunk <<= 1 {
		chunks = append(chunks, chunk)
	}
	vals := runPoints(chunks, func(chunk int) float64 {
		p2 := par.Clone()
		p2.GetChunk = chunk
		return MeasureShmemOp(p2, OpGet, driver.ModeDMA, 1, size, 5)
	})
	for i, chunk := range chunks {
		series.Points = append(series.Points, Point{chunk, MBps(size, int64(vals[i]*1e3))})
	}
	f.Series = append(f.Series, series)
	return f
}

// RunAblationRingSize measures put and get latency (64 KiB, DMA) from PE
// 0 to the farthest PE as the ring grows, exposing the linear hop cost
// of the switchless topology.
func RunAblationRingSize(par *model.Params) *Figure {
	f := &Figure{
		ID:     "A3",
		Title:  "Put/Get latency to farthest PE vs ring size (64KB, DMA)",
		XLabel: "Hosts",
		Unit:   "us",
	}
	put := Series{Label: "put"}
	get := Series{Label: "get"}
	const size = 64 << 10
	ns := []int{2, 3, 4, 5, 6, 7, 8}
	type pg struct{ put, get float64 }
	vals := runPoints(ns, func(n int) pg {
		pl, gl := MeasureFarthest(par, n, size)
		return pg{pl, gl}
	})
	for i, n := range ns {
		put.Points = append(put.Points, Point{n, vals[i].put})
		get.Points = append(get.Points, Point{n, vals[i].get})
	}
	f.Series = append(f.Series, put, get)
	return f
}

// RunGenerationComparison is extension figure E1: raw link rate and
// OpenSHMEM put/get throughput at 512 KiB across PCIe generations — what
// the prototype would deliver on older or wider links.
func RunGenerationComparison() *Figure {
	f := &Figure{
		ID:     "E1",
		Title:  "Raw link and OpenSHMEM throughput by PCIe profile (512KB, DMA, 1 hop)",
		XLabel: "Profile",
		Unit:   "MB/s",
	}
	f.XNames = make(map[int]string)
	raw := Series{Label: "raw NTB link"}
	put := Series{Label: "shmem put"}
	get := Series{Label: "shmem get"}
	const size = 512 << 10
	names := model.Names()
	type cell struct{ raw, putMBps, getMBps float64 }
	cells := runPoints(names, func(name string) cell {
		par, err := model.Profile(name)
		if err != nil {
			panic(err)
		}
		pl := MeasureShmemOp(par, OpPut, driver.ModeDMA, 1, size, 5)
		gl := MeasureShmemOp(par, OpGet, driver.ModeDMA, 1, size, 5)
		return cell{
			raw:     Fig8Independent(par, 0, size),
			putMBps: MBps(size, int64(pl*1e3)),
			getMBps: MBps(size, int64(gl*1e3)),
		}
	})
	for i, name := range names {
		f.XNames[i+1] = name
		x := i + 1 // ordinal; the table prints names separately
		raw.Points = append(raw.Points, Point{x, cells[i].raw})
		put.Points = append(put.Points, Point{x, cells[i].putMBps})
		get.Points = append(get.Points, Point{x, cells[i].getMBps})
	}
	f.Series = append(f.Series, raw, put, get)
	return f
}

// RunAblationBroadcast is ablation A5: the linear root-fanout broadcast
// (each destination a separate ring transfer) against the ring-pipelined
// broadcast, by payload size on a 6-host ring.
func RunAblationBroadcast(par *model.Params) *Figure {
	f := &Figure{
		ID:     "A5",
		Title:  "Broadcast algorithm latency (6 hosts, DMA)",
		XLabel: "Request Size",
		Unit:   "us",
	}
	linear := Series{Label: "linear fanout"}
	pipe := Series{Label: "ring pipeline"}
	// Sweep past the paper's 512KB to expose the crossover: small
	// payloads favour the transport's native store-and-forward fanout
	// (relays run on hot service threads), large ones the pipeline
	// (payload crosses the root's link once instead of n-1 times).
	var sizes []int
	for size := 16 << 10; size <= 8<<20; size <<= 1 {
		sizes = append(sizes, size)
	}
	type lp struct{ linear, pipe float64 }
	vals := runPointsCost(sizes, func(_ int, size int) float64 {
		return float64(size)
	}, func(size int) lp {
		l, pl := MeasureBroadcast(par, 6, size)
		return lp{l, pl}
	})
	for i, size := range sizes {
		linear.Points = append(linear.Points, Point{size, vals[i].linear})
		pipe.Points = append(pipe.Points, Point{size, vals[i].pipe})
	}
	f.Series = append(f.Series, linear, pipe)
	return f
}

// MeasureBroadcast returns (linear, pipelined) broadcast latencies in
// microseconds for one payload size on an n-host ring, measured at the
// root from call to collective completion.
func MeasureBroadcast(par *model.Params, n, size int) (linearUS, pipeUS float64) {
	run := func(pipelined bool) float64 {
		var us float64
		label := fmt.Sprintf("broadcast pipelined=%v/n=%d/size=%d", pipelined, n, size)
		runRingWorld(label, par, n, core.Options{}, func(p *sim.Proc, pe *core.PE) {
			sym := pe.MustMalloc(p, size)
			pe.BarrierAll(p)
			start := p.Now()
			if pipelined {
				pe.BroadcastBytesPipelined(p, 0, sym, size)
			} else {
				pe.BroadcastBytes(p, 0, sym, size)
			}
			if pe.ID() == 0 {
				us = p.Now().Sub(start).Microseconds()
			}
		})
		return us
	}
	return run(false), run(true)
}

// RunCollectiveLatency is extension figure E5: latency of the collective
// operations (reduce, fcollect, all-to-all, broadcast) versus ring size
// at a fixed 8 KiB payload — the collectives' scaling story on the
// switchless ring.
func RunCollectiveLatency(par *model.Params) *Figure {
	f := &Figure{
		ID:     "E5",
		Title:  "Collective latency vs ring size (8KB contribution, DMA)",
		XLabel: "Hosts",
		Unit:   "us",
	}
	kinds := []string{"reduce", "fcollect", "alltoall", "broadcast"}
	series := make([]Series, len(kinds))
	for i, k := range kinds {
		series[i].Label = k
	}
	ns := []int{2, 3, 4, 5, 6, 7, 8}
	lats := runPoints(ns, func(n int) map[string]float64 {
		return MeasureCollectives(par, n, 8<<10)
	})
	for ni, n := range ns {
		for i, k := range kinds {
			series[i].Points = append(series[i].Points, Point{n, lats[ni][k]})
		}
	}
	f.Series = append(f.Series, series...)
	return f
}

// MeasureCollectives returns per-collective mean latencies (us) on an
// n-host ring with `size`-byte contributions.
func MeasureCollectives(par *model.Params, n, size int) map[string]float64 {
	out := map[string]float64{}
	elems := size / 8
	label := fmt.Sprintf("collectives n=%d/size=%d", n, size)
	runRingWorld(label, par, n, core.Options{}, func(p *sim.Proc, pe *core.PE) {
		src := pe.MustMalloc(p, size)
		dst := pe.MustMalloc(p, size*n)
		pe.BarrierAll(p)
		measure := func(name string, op func()) {
			start := p.Now()
			op()
			if pe.ID() == 0 {
				out[name] = p.Now().Sub(start).Microseconds()
			}
		}
		measure("reduce", func() { core.Reduce[int64](p, pe, core.OpSum, src, src, elems) })
		measure("fcollect", func() { pe.FCollectBytes(p, src, dst, size) })
		measure("alltoall", func() {
			// Use size/n-byte blocks so the total matches the others.
			blk := size / n
			if blk == 0 {
				blk = 8
			}
			pe.AllToAllBytes(p, dst, dst, blk)
		})
		measure("broadcast", func() { pe.BroadcastBytes(p, 0, src, size) })
	})
	return out
}

// RunAblationWakeCost is ablation A7: sensitivity of every headline
// metric to the service-thread wake cost, the component E4 shows
// dominating all protocol cycles. The sweep quantifies what faster
// interrupt handling (busy-polling service threads, interrupt
// moderation) would buy the paper's prototype without touching the
// fabric.
func RunAblationWakeCost(par *model.Params) *Figure {
	f := &Figure{
		ID:     "A7",
		Title:  "Sensitivity to service-thread wake cost (512KB put/get us, barrier us)",
		XLabel: "Wake (us)",
		Unit:   "us",
	}
	put := Series{Label: "put 512KB"}
	get := Series{Label: "get 512KB"}
	barrier := Series{Label: "barrier"}
	const size = 512 << 10
	wakes := []int{10, 35, 70, 140, 280}
	type cell struct{ put, get, barrier float64 }
	cells := runPoints(wakes, func(wakeUS int) cell {
		p2 := par.Clone()
		p2.ServiceWake = sim.Microseconds(float64(wakeUS))
		return cell{
			put:     MeasureShmemOp(p2, OpPut, driver.ModeDMA, 1, size, 5),
			get:     MeasureShmemOp(p2, OpGet, driver.ModeDMA, 1, size, 5),
			barrier: MeasureBarrierLatency(p2, core.BarrierRing, 3, 5),
		}
	})
	for i, wakeUS := range wakes {
		put.Points = append(put.Points, Point{wakeUS, cells[i].put})
		get.Points = append(get.Points, Point{wakeUS, cells[i].get})
		barrier.Points = append(barrier.Points, Point{wakeUS, cells[i].barrier})
	}
	f.Series = append(f.Series, put, get, barrier)
	return f
}

// RunAblationPipeline is ablation A6: put and get throughput (512 KiB,
// 1 hop, DMA) versus link-protocol pipeline depth. Depth "1" is the
// paper's stop-and-wait scratchpad protocol; deeper configurations use
// the header-in-window credit protocol (the paper's future-work latency
// reduction, implemented).
func RunAblationPipeline(par *model.Params) *Figure {
	f := &Figure{
		ID:     "A6",
		Title:  "Throughput vs link-protocol pipeline depth (512KB, 1 hop, DMA)",
		XLabel: "Pipeline Depth",
		Unit:   "MB/s",
	}
	put := Series{Label: "put"}
	get := Series{Label: "get"}
	const size = 512 << 10
	depths := []int{1, 2, 4, 8}
	type pg struct{ put, get float64 }
	vals := runPoints(depths, func(depth int) pg {
		pl, gl := MeasurePipelined(par, depth, size, 5)
		return pg{pl, gl}
	})
	for i, depth := range depths {
		put.Points = append(put.Points, Point{depth, MBps(size, int64(vals[i].put*1e3))})
		get.Points = append(get.Points, Point{depth, MBps(size, int64(vals[i].get*1e3))})
	}
	f.Series = append(f.Series, put, get)
	return f
}

// MeasurePipelined returns (put, get) mean latencies in microseconds at
// the given pipeline depth (1 = the paper's stop-and-wait protocol).
func MeasurePipelined(par *model.Params, depth, size, reps int) (putUS, getUS float64) {
	opt := core.Options{}
	if depth >= 2 {
		opt.Pipeline = depth
	}
	label := fmt.Sprintf("pipelined depth=%d/size=%d", depth, size)
	runRingWorld(label, par, 3, opt, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, size)
		buf := make([]byte, size)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			for r := 0; r < reps; r++ {
				pe.PutBytes(p, 1, sym, buf)
			}
			// Pipelined puts are locally complete on return; include the
			// drain (via barrier-free quiesce through a final blocking
			// get of one byte) so throughput reflects delivered data.
			pe.GetBytes(p, 1, sym, buf[:1])
			putUS = p.Now().Sub(start).Microseconds() / float64(reps)
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			for r := 0; r < reps; r++ {
				pe.GetBytes(p, 1, sym, buf)
			}
			getUS = p.Now().Sub(start).Microseconds() / float64(reps)
		}
		pe.BarrierAll(p)
	})
	return putUS, getUS
}

// RunTwoSidedComparison is extension figure E2: latency of the
// one-sided put against the two-sided tagged send/recv built on top of
// it, per message size — quantifying the rendezvous overhead the
// paper's introduction holds against message passing.
func RunTwoSidedComparison(par *model.Params) *Figure {
	f := &Figure{
		ID:     "E2",
		Title:  "One-sided put vs two-sided send/recv latency (1 hop, DMA)",
		XLabel: "Request Size",
		Unit:   "us",
	}
	put := Series{Label: "shmem put"}
	send := Series{Label: "send/recv"}
	sizes := Sizes()
	type ps struct{ put, send float64 }
	vals := runPointsCost(sizes, func(_ int, size int) float64 {
		return float64(size)
	}, func(size int) ps {
		pl, sl := MeasureTwoSided(par, size, 5)
		return ps{pl, sl}
	})
	for i, size := range sizes {
		put.Points = append(put.Points, Point{size, vals[i].put})
		send.Points = append(send.Points, Point{size, vals[i].send})
	}
	f.Series = append(f.Series, put, send)
	return f
}

// MeasureTwoSided returns (put, send) mean latencies in microseconds for
// one-hop transfers of the given size.
func MeasureTwoSided(par *model.Params, size, reps int) (putUS, sendUS float64) {
	label := fmt.Sprintf("two-sided size=%d", size)
	runRingWorld(label, par, 3, core.Options{}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, size)
		data := make([]byte, size)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			for r := 0; r < reps; r++ {
				pe.PutBytes(p, 1, sym, data)
			}
			putUS = p.Now().Sub(start).Microseconds() / float64(reps)
		}
		pe.BarrierAll(p)
		switch pe.ID() {
		case 1:
			buf := make([]byte, size)
			for r := 0; r < reps; r++ {
				pe.Recv(p, 0, int64(r), buf)
			}
		case 0:
			start := p.Now()
			for r := 0; r < reps; r++ {
				pe.Send(p, 1, int64(r), data)
			}
			sendUS = p.Now().Sub(start).Microseconds() / float64(reps)
		}
		pe.BarrierAll(p)
	})
	return putUS, sendUS
}

// RunAblationRouting compares the paper's rightward routing against
// shortest-arc routing (A4): mean get latency from PE 0 to every peer of
// a 7-host ring. Shortest routing folds the latency curve in half at the
// ring's midpoint, at the price of a doubled (bidirectional) barrier.
func RunAblationRouting(par *model.Params) *Figure {
	f := &Figure{
		ID:     "A4",
		Title:  "Routing policy: get latency by destination (7 hosts, 64KB, DMA)",
		XLabel: "Destination PE",
		Unit:   "us",
	}
	const n = 7
	const size = 64 << 10
	routings := []core.Routing{core.RouteRightward, core.RouteShortest}
	type cellKey struct {
		routing core.Routing
		dst     int
	}
	var keys []cellKey
	for _, routing := range routings {
		for dst := 1; dst < n; dst++ {
			keys = append(keys, cellKey{routing, dst})
		}
	}
	vals := runPoints(keys, func(k cellKey) float64 {
		return MeasureGetRouted(par, k.routing, n, k.dst, size)
	})
	for ri, routing := range routings {
		series := Series{Label: routing.String(), Points: make([]Point, 0, n-1)}
		for di := 0; di < n-1; di++ {
			series.Points = append(series.Points, Point{di + 1, vals[ri*(n-1)+di]})
		}
		f.Series = append(f.Series, series)
	}
	return f
}

// MeasureGetRouted measures mean get latency (us) from PE 0 to dst on an
// n-host ring under the given routing policy.
func MeasureGetRouted(par *model.Params, routing core.Routing, n, dst, size int) float64 {
	var us float64
	label := fmt.Sprintf("get-routed %s/n=%d/dst=%d/size=%d", routing, n, dst, size)
	runRingWorld(label, par, n, core.Options{Routing: routing}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, size)
		buf := make([]byte, size)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			for r := 0; r < 5; r++ {
				pe.GetBytes(p, dst, sym, buf)
			}
			us = p.Now().Sub(start).Microseconds() / 5
		}
		pe.BarrierAll(p)
	})
	return us
}

// MeasureFarthest measures put and get latency (us) from PE 0 to the
// farthest PE of an n-host ring at the given size (5-rep averages).
func MeasureFarthest(par *model.Params, n, size int) (putUS, getUS float64) {
	label := fmt.Sprintf("farthest n=%d/size=%d", n, size)
	runRingWorld(label, par, n, core.Options{}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, size)
		buf := make([]byte, size)
		pe.BarrierAll(p)
		target := n - 1 // farthest rightward
		if pe.ID() == 0 {
			start := p.Now()
			for r := 0; r < 5; r++ {
				pe.PutBytes(p, target, sym, buf)
			}
			putUS = p.Now().Sub(start).Microseconds() / 5
		}
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			start := p.Now()
			for r := 0; r < 5; r++ {
				pe.GetBytes(p, target, sym, buf)
			}
			getUS = p.Now().Sub(start).Microseconds() / 5
		}
		pe.BarrierAll(p)
	})
	return putUS, getUS
}
