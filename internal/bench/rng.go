package bench

import "math/rand"

// Workload data generation must be deterministic and independent of the
// host: every generator is derived here from fixed base seeds, never
// from the process-global math/rand source (whose use the simdet
// analyzer forbids in this package). Centralising the derivation keeps
// the seeding policy in one place and greppable.
//
// The seed values are frozen: they reproduce the exact matrix and key
// streams of the published results, so results/*.csv stay
// byte-identical across refactors.

// Base seeds for the application kernels' data generation.
const (
	// matmulSeed seeds AppMatmul's matrix entries (one stream, drawn
	// host-side before the world runs).
	matmulSeed int64 = 99
	// intsortStride spaces AppIntSort's per-PE key streams: PE me draws
	// from seed me*intsortStride, so streams are disjoint per PE and
	// independent of execution order.
	intsortStride int64 = 31
)

// SeededRNG returns a private deterministic generator for the given
// seed. It is the only sanctioned way to obtain randomness in workload
// code; harnesses outside this package (cmd/selftest) use it too.
func SeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// peRNG returns PE me's private generator for a kernel whose streams
// are spaced by stride. The data a PE generates is identical at any
// worker count or PE interleaving.
func peRNG(stride int64, me int) *rand.Rand { return SeededRNG(stride * int64(me)) }
