package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/model"
)

// Bench-layer sharding policy and throughput. The op-level equivalence
// proofs live in internal/core/sharddiff_test.go; here the concern is
// the knob plumbing: which worlds actually shard, and that the scaling
// workload's virtual timeline is shard-invariant when driven through
// the pool exactly as cmd/scaleperf drives it.

func TestEffectiveShardsPolicy(t *testing.T) {
	prev := Shards()
	prevFab := Fabric()
	defer func() { SetShards(prev); SetFabric(prevFab) }()

	SetFabric(fabric.KindNTBRing)
	SetShards(4)
	if got := effectiveShards(8, core.Options{}); got != 1 {
		t.Errorf("8-host figure world sharded to %d; paper-scale worlds must stay on one simulator", got)
	}
	if got := effectiveShards(256, core.Options{}); got != 4 {
		t.Errorf("256-host world got %d shards, want 4", got)
	}
	if got := effectiveShards(16, core.Options{Pipeline: 4}); got != 1 {
		t.Errorf("pipelined-protocol world sharded to %d; pipeline timing needs one simulator", got)
	}
	SetShards(64)
	if got := effectiveShards(16, core.Options{}); got != 16 {
		t.Errorf("16-host world got %d shards, want clamp to 16", got)
	}
	SetFabric(fabric.KindPCIeSwitch)
	if got := effectiveShards(256, core.Options{}); got != 1 {
		t.Errorf("switch-fabric world sharded to %d; the shared fabric core cannot shard", got)
	}
	SetFabric(fabric.KindNTBRing)
	SetShards(1)
	if got := effectiveShards(256, core.Options{}); got != 1 {
		t.Errorf("unrequested sharding: got %d shards", got)
	}
}

func TestValidateShards(t *testing.T) {
	if err := ValidateShards(1, fabric.KindCXL); err != nil {
		t.Errorf("shards=1 on cxl: %v", err)
	}
	if err := ValidateShards(4, fabric.KindNTBRing); err != nil {
		t.Errorf("shards=4 on ring: %v", err)
	}
	if err := ValidateShards(0, fabric.KindNTBRing); err == nil {
		t.Error("shards=0 accepted")
	}
	if err := ValidateShards(2, fabric.KindPCIeSwitch); err == nil {
		t.Error("shards=2 on pcie-switch accepted")
	}
}

// TestScaleWorkloadShardInvariant drives the scaling workload through
// the full bench path (pool, fingerprints, replay fallback) at several
// shard counts and requires the identical final virtual time.
func TestScaleWorkloadShardInvariant(t *testing.T) {
	prev := Shards()
	defer func() { SetShards(prev); DrainWorldPool() }()
	DrainWorldPool()
	par := model.Default()
	SetShards(1)
	ref := ScaleWorkloadTime(par, 32, 2048)
	if ref == 0 {
		t.Fatal("scaling workload reported virtual end 0")
	}
	for _, s := range []int{2, 4} {
		SetShards(s)
		if got := ScaleWorkloadTime(par, 32, 2048); got != ref {
			t.Fatalf("virtual end at %d shards: %v, want %v (1 shard)", s, got, ref)
		}
	}
}

// TestShardedWorldPoolRecycling: a sharded world round-trips through
// the pool — the second run of the same shape must be a pool hit, and
// a different shard count must not be served the sharded world.
func TestShardedWorldPoolRecycling(t *testing.T) {
	prev := Shards()
	defer func() { SetShards(prev); DrainWorldPool() }()
	DrainWorldPool()
	par := model.Default()
	SetShards(2)
	h0, _ := WorldPoolStats()
	ScaleWorkload(par, 16, 512)
	ScaleWorkload(par, 16, 512)
	h1, _ := WorldPoolStats()
	if h1-h0 < 1 {
		t.Errorf("second sharded run missed the pool (hits delta %d)", h1-h0)
	}
	SetShards(1)
	ScaleWorkload(par, 16, 512) // must build fresh, not reuse the 2-shard world
	SetShards(4)
	ScaleWorkload(par, 16, 512)
}

// BenchmarkShardedWorld256 is BenchmarkScaleWorld256 at 4 shards: one
// 256-PE world recycled through the pool, its events dispatched by the
// conservative shard group. The benchgate floor on events/s guards the
// sharded dispatch path against order-of-magnitude regressions (floors
// are set far below measured rates to absorb loaded CI runners; the
// 1-vs-4-shard speedup itself is a multicore property recorded in
// BENCH.json's sharding section, not gated here).
func BenchmarkShardedWorld256(b *testing.B) {
	prev := Shards()
	defer func() { SetShards(prev); DrainWorldPool() }()
	DrainWorldPool()
	SetShards(4)
	par := model.Default()
	ScaleWorkload(par, 256, 4096) // build + pool the sharded world outside the timer
	e0 := VirtualEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScaleWorkload(par, 256, 4096)
	}
	b.StopTimer()
	b.ReportMetric(float64(VirtualEvents()-e0)/b.Elapsed().Seconds(), "events/s")
}
