package bench

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

func TestRunPointsPreservesOrder(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, par := range []int{1, 2, 8, 200} {
		got := RunPoints(context.Background(), par, points, func(v int) int { return v * v })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: result[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestRunPointsEmpty(t *testing.T) {
	if got := RunPoints(context.Background(), 4, nil, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty points returned %v", got)
	}
}

func TestRunPointsPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	RunPoints(context.Background(), 4, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(v int) int {
		if v == 3 {
			panic("boom")
		}
		return v
	})
}

func TestRunPointsCancelStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	points := make([]int, 1000)
	RunPoints(ctx, 2, points, func(v int) int {
		if ran.Add(1) == 3 {
			cancel()
		}
		return v
	})
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the sweep (ran %d points)", n)
	}
}

// TestFig9DeterministicAcrossParallelism is the determinism regression
// gate for the parallel experiment engine: the same figure produced
// serially and with 8 workers must be identical to the last bit of every
// virtual-time value, because parallelism exists only across worlds and
// each world is a single-threaded deterministic simulation.
func TestFig9DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 9 grid twice in -short mode")
	}
	par := model.Default()
	defer SetParallelism(0)

	SetParallelism(1)
	serial := RunFig9(par)
	SetParallelism(8)
	parallel := RunFig9(par)

	if len(serial) != len(parallel) {
		t.Fatalf("figure count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s differs between par=1 and par=8:\nserial:\n%s\nparallel:\n%s",
				serial[i].ID, serial[i].Table(), parallel[i].Table())
		}
	}
}

// TestFig10DeterministicAcrossParallelism covers the second figure shape
// (config-major sweep assembly) the same way.
func TestFig10DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig 10 twice in -short mode")
	}
	par := model.Default()
	defer SetParallelism(0)

	SetParallelism(1)
	serial := RunFig10(par)
	SetParallelism(8)
	parallel := RunFig10(par)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Fig 10 differs between par=1 and par=8:\nserial:\n%s\nparallel:\n%s",
			serial.Table(), parallel.Table())
	}
}

func TestWorldCountAdvances(t *testing.T) {
	// Replay path: one point, one world. (The fork path may add a second
	// world for a cold prefix capture; its accounting has its own tests.)
	SetWorldFork(false)
	defer SetWorldFork(true)
	before := WorldsSimulated()
	MeasureBarrierLatency(model.Default(), 0, 2, 1)
	if after := WorldsSimulated(); after != before+1 {
		t.Fatalf("world count %d -> %d, want +1", before, after)
	}
}

func TestParallelismDefaultsAndOverride(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(5)
	if got := Parallelism(); got != 5 {
		t.Fatalf("Parallelism() = %d after SetParallelism(5)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
}
