package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/sim"
)

// Fig 9: latency and throughput of the OpenSHMEM Put and Get operations
// over the three-host ring, for the four configurations the paper
// sweeps: {DMA, memcpy} x {1 hop, 2 hops}, request sizes 1 KiB - 512 KiB.

// fig9Reps averages each point over this many operations.
const fig9Reps = 10

// Op selects the measured operation.
type Op int

const (
	// OpPut measures shmem_put.
	OpPut Op = iota
	// OpGet measures shmem_get.
	OpGet
)

func (o Op) String() string {
	if o == OpGet {
		return "get"
	}
	return "put"
}

// MeasureShmemOp runs one (op, mode, hops, size) cell on a fresh 3-host
// ring and returns the mean per-operation latency in microseconds.
func MeasureShmemOp(par *model.Params, op Op, mode driver.Mode, hops, size, reps int) float64 {
	var mean float64
	label := fmt.Sprintf("shmem-op %s/%s/hops=%d/size=%d", op, mode, hops, size)
	runRingWorld(label, par, 3, core.Options{Mode: mode}, func(p *sim.Proc, pe *core.PE) {
		sym := pe.MustMalloc(p, size)
		buf := make([]byte, size)
		pe.BarrierAll(p)
		if pe.ID() == 0 {
			target := hops // PE k is k rightward hops from PE 0
			start := p.Now()
			for r := 0; r < reps; r++ {
				if op == OpPut {
					pe.PutBytes(p, target, sym, buf)
				} else {
					pe.GetBytes(p, target, sym, buf)
				}
			}
			// A put is locally blocking; the paper measures exactly that
			// latency, so no quiesce inside the timed region.
			mean = p.Now().Sub(start).Microseconds() / float64(reps)
		}
		pe.BarrierAll(p)
	})
	return mean
}

// fig9Configs is the paper's series grid in plot order.
type fig9Config struct {
	label string
	mode  driver.Mode
	hops  int
}

func fig9Grid() []fig9Config {
	return []fig9Config{
		{"DMA 1 hop", driver.ModeDMA, 1},
		{"DMA 2 hops", driver.ModeDMA, 2},
		{"memcpy 1 hop", driver.ModeCPU, 1},
		{"memcpy 2 hops", driver.ModeCPU, 2},
	}
}

// RunFig9 reproduces Fig 9(a)-(d): Put latency, Get latency, Put
// throughput, Get throughput.
func RunFig9(par *model.Params) []*Figure {
	sizes := Sizes()
	grid := fig9Grid()

	mkFig := func(id, title, unit string) *Figure {
		f := &Figure{ID: id, Title: title, XLabel: "Request Size", Unit: unit}
		for _, cfg := range grid {
			f.Series = append(f.Series, Series{Label: cfg.label})
		}
		return f
	}
	putLat := mkFig("Fig 9(a)", "Latency of OpenSHMEM Put with one-sided communication", "us")
	getLat := mkFig("Fig 9(b)", "Latency of OpenSHMEM Get with one-sided communication", "us")
	putTput := mkFig("Fig 9(c)", "Throughput of OpenSHMEM Put with one-sided communication", "MB/s")
	getTput := mkFig("Fig 9(d)", "Throughput of OpenSHMEM Get with one-sided communication", "MB/s")

	// Fan the (size, config) grid across workers; each cell builds its
	// own worlds, and results are slotted by index so the emitted series
	// are identical at any parallelism.
	type cellKey struct {
		size int
		gi   int
	}
	keys := make([]cellKey, 0, len(sizes)*len(grid))
	for _, size := range sizes {
		for gi := range grid {
			keys = append(keys, cellKey{size, gi})
		}
	}
	type cellVal struct{ putLat, getLat float64 }
	// Large requests simulate many more chunk cycles than small ones;
	// claiming them first keeps the parallel tail short.
	cells := runPointsCost(keys, func(_ int, k cellKey) float64 {
		return float64(k.size) * float64(1+grid[k.gi].hops)
	}, func(k cellKey) cellVal {
		cfg := grid[k.gi]
		return cellVal{
			putLat: MeasureShmemOp(par, OpPut, cfg.mode, cfg.hops, k.size, fig9Reps),
			getLat: MeasureShmemOp(par, OpGet, cfg.mode, cfg.hops, k.size, fig9Reps),
		}
	})
	for i, k := range keys {
		pl, gl := cells[i].putLat, cells[i].getLat
		putLat.Series[k.gi].Points = append(putLat.Series[k.gi].Points, Point{k.size, pl})
		getLat.Series[k.gi].Points = append(getLat.Series[k.gi].Points, Point{k.size, gl})
		putTput.Series[k.gi].Points = append(putTput.Series[k.gi].Points, Point{k.size, MBps(int64(k.size), int64(pl*1e3))})
		getTput.Series[k.gi].Points = append(getTput.Series[k.gi].Points, Point{k.size, MBps(int64(k.size), int64(gl*1e3))})
	}
	return []*Figure{putLat, getLat, putTput, getTput}
}

// CheckFig9Shapes validates the qualitative relationships the paper
// reports, returning a list of violations (empty means the shape holds):
//
//  1. Put latency is nearly hop-insensitive; Get latency is strongly
//     hop-sensitive.
//  2. Get is much slower than Put at every size.
//  3. DMA beats memcpy for large puts.
func CheckFig9Shapes(figs []*Figure) []string {
	var bad []string
	putLat, getLat := figs[0], figs[1]
	at := func(f *Figure, label string, size int) float64 {
		v, err := f.SeriesByLabel(label).At(size)
		if err != nil {
			panic(err)
		}
		return v
	}
	const big = 512 << 10
	if r := at(putLat, "DMA 2 hops", big) / at(putLat, "DMA 1 hop", big); r > 1.15 {
		bad = append(bad, fmt.Sprintf("put latency hop ratio %.2f > 1.15", r))
	}
	if r := at(getLat, "DMA 2 hops", big) / at(getLat, "DMA 1 hop", big); r < 1.25 {
		bad = append(bad, fmt.Sprintf("get latency hop ratio %.2f < 1.25", r))
	}
	for _, size := range []int{1 << 10, 64 << 10, big} {
		if r := at(getLat, "DMA 1 hop", size) / at(putLat, "DMA 1 hop", size); r < 2 {
			bad = append(bad, fmt.Sprintf("get/put ratio %.2f < 2 at %s", r, SizeLabel(size)))
		}
	}
	if at(putLat, "DMA 1 hop", big) >= at(putLat, "memcpy 1 hop", big) {
		bad = append(bad, "DMA put not faster than memcpy put at 512KB")
	}
	return bad
}
