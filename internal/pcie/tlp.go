package pcie

import "fmt"

// Transaction-layer packet (TLP) accounting.
//
// The fluid-flow network prices transfers with an *effective* wire
// bandwidth; this file derives that efficiency from first principles —
// the same arithmetic the model.Params documentation cites — so tests
// can pin the fluid model to the packet-level ground truth, and tools
// can report how a transfer decomposes into packets.
//
// PCIe framing per TLP (Gen1-3, 32-bit addressing):
//
//	1 byte  STP framing
//	2 bytes sequence number
//	12 bytes memory-write header (3DW) or 16 bytes with 4DW addressing
//	0-4096 bytes payload (bounded by MaxPayload)
//	4 bytes LCRC
//	1 byte  END framing
//
// plus data-link-layer traffic (ACK/NAK DLLPs, flow-control updates)
// that consumes a few percent of the link in each direction.

// TLPOverheadBytes is the per-packet framing cost for a 3DW memory
// request: STP+seq (3) + header (12) + LCRC+END (5) = 20 bytes, plus a
// 6-byte allowance for the DLLP traffic each packet induces. It matches
// model.Params.TLPOverhead's default of 26.
const TLPOverheadBytes = 26

// MemWriteTLPs returns how many memory-write TLPs a payload of n bytes
// needs under the given MaxPayload, and the total bytes on the wire
// (payload + per-TLP overhead).
func MemWriteTLPs(n, maxPayload int) (packets, wireBytes int) {
	if maxPayload <= 0 {
		panic(fmt.Sprintf("pcie: bad MaxPayload %d", maxPayload))
	}
	if n <= 0 {
		return 0, 0
	}
	packets = (n + maxPayload - 1) / maxPayload
	wireBytes = n + packets*TLPOverheadBytes
	return packets, wireBytes
}

// PayloadEfficiency returns the fraction of wire bytes that are payload
// for a bulk stream of maxPayload-sized memory writes. This is the exact
// quantity model.Params.ProtocolEfficiency approximates, and the
// TestFluidModelMatchesTLPAccounting test pins them together.
func PayloadEfficiency(maxPayload int) float64 {
	_, wire := MemWriteTLPs(maxPayload, maxPayload)
	return float64(maxPayload) / float64(wire)
}

// ReadRoundTrip describes the packet cost of a single memory read: one
// read-request TLP (no payload) out, one or more completion TLPs (with
// data) back. Completions are split at the read-completion boundary,
// which equals MaxPayload here.
func ReadRoundTrip(n, maxPayload int) (requestBytes, completionBytes int) {
	if n <= 0 {
		return 0, 0
	}
	requestBytes = TLPOverheadBytes + 0 // header-only request
	packets := (n + maxPayload - 1) / maxPayload
	completionBytes = n + packets*TLPOverheadBytes
	return requestBytes, completionBytes
}

// CreditUnits returns the flow-control credits a payload consumes: PCIe
// counts header credits per TLP and data credits in 16-byte units.
func CreditUnits(n, maxPayload int) (headerCredits, dataCredits int) {
	packets, _ := MemWriteTLPs(n, maxPayload)
	headerCredits = packets
	dataCredits = (n + 15) / 16
	return headerCredits, dataCredits
}
