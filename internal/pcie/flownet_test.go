package pcie

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// within asserts |got-want| <= tol, with tol in virtual nanoseconds.
func within(t *testing.T, what string, got, want sim.Time, tol sim.Duration) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if sim.Duration(d) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestSingleFlowPrivateLimit(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 8e9)
	var end sim.Time
	s.Go("xfer", func(p *sim.Proc) {
		n.Transfer(p, 1<<20, 1e9, srv)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 MiB at 1e9 B/s = 1048.576us.
	within(t, "single flow", end, sim.Time(1048576), 100)
}

func TestSingleFlowServerLimit(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 0.5e9)
	var end sim.Time
	s.Go("xfer", func(p *sim.Proc) {
		n.Transfer(p, 1<<20, math.Inf(1), srv)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, "server-limited flow", end, sim.Time(2097152), 100)
}

func TestZeroByteTransferIsInstant(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	s.Go("xfer", func(p *sim.Proc) {
		n.Transfer(p, 0, 1e9, srv)
		if p.Now() != 0 {
			t.Errorf("zero-byte transfer took time: %v", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	ends := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Go(fmt.Sprintf("xfer%d", i), func(p *sim.Proc) {
			n.Transfer(p, 1<<20, math.Inf(1), srv)
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Each gets 0.5e9: both finish at 2097.152us.
	within(t, "flow 0", ends[0], sim.Time(2097152), 200)
	within(t, "flow 1", ends[1], sim.Time(2097152), 200)
}

func TestAsymmetricLimits(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	var slowEnd, fastEnd sim.Time
	s.Go("slow", func(p *sim.Proc) {
		n.Transfer(p, 200_000, 0.2e9, srv) // always capped at 0.2e9
		slowEnd = p.Now()
	})
	s.Go("fast", func(p *sim.Proc) {
		n.Transfer(p, 800_000, math.Inf(1), srv) // gets the remaining 0.8e9
		fastEnd = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, "slow flow", slowEnd, sim.Time(1_000_000), 200)
	within(t, "fast flow", fastEnd, sim.Time(1_000_000), 200)
}

func TestStaggeredJoinAndLeave(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("wire", 1e9)
	var aEnd, bEnd sim.Time
	s.Go("a", func(p *sim.Proc) {
		n.Transfer(p, 1<<20, math.Inf(1), srv)
		aEnd = p.Now()
	})
	s.GoAfter("b", 500*sim.Microsecond, func(p *sim.Proc) {
		n.Transfer(p, 1<<20, math.Inf(1), srv)
		bEnd = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Worked example in the package tests: A alone for 500us (moves
	// 500000 B), shares 0.5e9 until it drains at 1597.152us; B then
	// finishes its last 500000 B at full rate at 2097.152us.
	within(t, "flow A", aEnd, sim.Time(1597152), 300)
	within(t, "flow B", bEnd, sim.Time(2097152), 300)
}

func TestMultiServerPath(t *testing.T) {
	// A flow crossing three servers is bound by the slowest.
	s := sim.New()
	n := NewNetwork(s)
	a := NewServer("src-rc", 5e9)
	b := NewServer("wire", 2e9)
	c := NewServer("dst-rc", 5e9)
	var end sim.Time
	s.Go("x", func(p *sim.Proc) {
		n.Transfer(p, 2_000_000, math.Inf(1), a, b, c)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, "path flow", end, sim.Time(1_000_000), 200)
}

func TestRingContentionScenario(t *testing.T) {
	// The Fig 8 situation: three hosts, each host's root complex carries
	// its outgoing and its incoming flow. Engines cap each flow at
	// 2.9e9; root complexes at 5.5e9 shared by two flows → 2.75e9 each.
	s := sim.New()
	n := NewNetwork(s)
	rc := make([]*Server, 3)
	for i := range rc {
		rc[i] = NewServer(fmt.Sprintf("rc%d", i), 5.5e9)
	}
	wire := make([]*Server, 3)
	for i := range wire {
		wire[i] = NewServer(fmt.Sprintf("wire%d", i), 7.2e9)
	}
	const bytes = 10 << 20
	ends := make([]sim.Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		src, dst := i, (i+1)%3
		s.Go(fmt.Sprintf("flow%d", i), func(p *sim.Proc) {
			n.Transfer(p, bytes, 2.9e9, rc[src], wire[i], rc[dst])
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	byteCount := float64(bytes)
	want := sim.Time(byteCount / 2.75e9 * 1e9)
	for i, e := range ends {
		within(t, fmt.Sprintf("ring flow %d", i), e, want, 1000)
	}

	// Sanity: the same flow alone runs at the full engine rate.
	s2 := sim.New()
	n2 := NewNetwork(s2)
	rcA, rcB := NewServer("rcA", 5.5e9), NewServer("rcB", 5.5e9)
	w := NewServer("w", 7.2e9)
	var aloneEnd sim.Time
	s2.Go("alone", func(p *sim.Proc) {
		n2.Transfer(p, bytes, 2.9e9, rcA, w, rcB)
		aloneEnd = p.Now()
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	wantAlone := sim.Time(byteCount / 2.9e9 * 1e9)
	within(t, "independent flow", aloneEnd, wantAlone, 1000)
	if aloneEnd >= ends[0] {
		t.Fatal("independent transfer should beat ring transfer")
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: for any set of flows through one server, the last
	// completion time equals total bytes / capacity (work conservation),
	// and no flow finishes before bytes/capacity of its own size.
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		s := sim.New()
		n := NewNetwork(s)
		srv := NewServer("wire", 1e9)
		var total int64
		var last sim.Time
		for i, raw := range sizes {
			sz := int64(raw)*64 + 64
			total += sz
			s.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				n.Transfer(p, sz, math.Inf(1), srv)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		want := float64(total) / 1e9 * 1e9
		return math.Abs(float64(last)-want) < float64(len(sizes))*1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveFlowsBookkeeping(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("w", 1e9)
	s.Go("x", func(p *sim.Proc) {
		tr := n.Start(1000, math.Inf(1), srv)
		if n.ActiveFlows() != 1 {
			t.Errorf("active = %d, want 1", n.ActiveFlows())
		}
		tr.Wait(p)
		if !tr.Done() {
			t.Error("transfer not done after Wait")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// After the wait the completion event has fired and advanced flows.
	if n.ActiveFlows() != 0 {
		t.Errorf("active after drain = %d, want 0", n.ActiveFlows())
	}
}

func TestStartPanicsOnBadArgs(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s)
	srv := NewServer("w", 1e9)
	assertPanics(t, "negative size", func() { n.Start(-1, 1e9, srv) })
	assertPanics(t, "zero limit", func() { n.Start(10, 0, srv) })
	assertPanics(t, "bad server", func() { NewServer("x", 0) })
}

func assertPanics(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}
