package pcie

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// The solver benchmarks exercise the transfer hot path the runtime pays
// for every protocol chunk: start a flow over a three-server route
// (source root complex, wire, destination root complex), run it to
// completion, repeat. FlowSolve{1,3,16} fix the concurrency level;
// FlowNetChurn staggers sizes so starts and finishes interleave at a
// high rate, the worst case for the re-solve machinery.

// benchServers builds the shared three-server topology used by every
// solver benchmark.
func benchServers() (rcA, wire, rcB *Server) {
	return NewServer("rcA", 5.5e9), NewServer("wire", 7.2e9), NewServer("rcB", 5.5e9)
}

func benchConcurrentFlows(b *testing.B, procs int, size func(i int) int64) {
	b.ReportAllocs()
	s := sim.New()
	n := NewNetwork(s)
	rcA, wire, rcB := benchServers()
	route := n.NewRoute(rcA, wire, rcB)
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		i := i
		s.Go(fmt.Sprintf("flow%d", i), func(p *sim.Proc) {
			for j := 0; j < per; j++ {
				n.TransferRoute(p, size(i), 2.9e9, route)
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	s.Shutdown()
}

func BenchmarkFlowSolve1Flows(b *testing.B) {
	benchConcurrentFlows(b, 1, func(int) int64 { return 32 << 10 })
}

func BenchmarkFlowSolve3Flows(b *testing.B) {
	benchConcurrentFlows(b, 3, func(int) int64 { return 32 << 10 })
}

func BenchmarkFlowSolve16Flows(b *testing.B) {
	benchConcurrentFlows(b, 16, func(int) int64 { return 32 << 10 })
}

// BenchmarkFlowNetChurn is the start/finish-heavy case: sixteen
// concurrent senders with co-prime sizes, so nearly every completion
// lands at a distinct instant and forces a re-solve of the remaining
// flow set.
func BenchmarkFlowNetChurn(b *testing.B) {
	benchConcurrentFlows(b, 16, func(i int) int64 {
		return 4<<10 + int64(i*977)%(60<<10)
	})
}
