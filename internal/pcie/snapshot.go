package pcie

import "fmt"

// NetSnapshot marks a flow network captured at quiescence. The network
// holds no absolute-time state between transfers — per-flow progress
// clocks live on the Transfer records, and at quiescence there are none
// — so the snapshot carries nothing; it exists so Cluster snapshots
// assert the network really was idle at capture, and so Restore can
// quarantine stale completion events the same way Reset does.
type NetSnapshot struct{}

// Snapshot asserts the network is quiescent and returns its (empty)
// captured state.
func (n *Network) Snapshot() NetSnapshot {
	if len(n.flows) != 0 {
		panic(fmt.Sprintf("pcie: Snapshot with %d active flow(s)", len(n.flows)))
	}
	if n.solvePending {
		panic("pcie: Snapshot with a solve pending")
	}
	return NetSnapshot{}
}

// Restore prepares a quiescent network to serve a forked world's future.
// Bumping the generation quarantines any completion event a previous
// life scheduled for this instant, exactly as Reset does.
func (n *Network) Restore(NetSnapshot) {
	if len(n.flows) != 0 {
		panic(fmt.Sprintf("pcie: Restore with %d active flow(s)", len(n.flows)))
	}
	if n.solvePending {
		panic("pcie: Restore with a solve pending")
	}
	n.gen++
}
